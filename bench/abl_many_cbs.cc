/**
 * @file
 * Section 6.8: when the number of CBs exceeds N (the mesh dimension),
 * the knight-move placement minimizes co-row/column/diagonal CBs and
 * the scoring policy still applies (DAZ-DAZ and CAZ-CAZ overlaps now
 * possible). This bench compares knight-move against row-major and
 * random placements for 10 and 12 CBs on an 8x8 mesh, then runs the
 * design flow on top.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/design_flow.hh"
#include "core/hotzone.hh"
#include "core/nqueen.hh"

using namespace eqx;

namespace {

std::vector<Coord>
rowMajor(int n, int count)
{
    std::vector<Coord> cbs;
    for (int i = 0; i < count; ++i)
        cbs.push_back({i % n, i / n});
    return cbs;
}

std::vector<Coord>
randomPlacement(int n, int count, Rng &rng)
{
    std::vector<Coord> all;
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            all.push_back({x, y});
    rng.shuffle(all);
    all.resize(static_cast<std::size_t>(count));
    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_many_cbs: more CBs than N (knight-move placement)",
                "EquiNox (HPCA'20) Section 6.8");

    Rng rng(static_cast<std::uint64_t>(cfg.getInt("seed", 1)));
    std::printf("\nhot-zone penalty on an 8x8 mesh:\n");
    std::printf("%8s %12s %12s %12s\n", "#CBs", "knight", "row-major",
                "random");
    for (int count : {9, 10, 12}) {
        int knight = placementPenalty(knightPlacement(8, count), 8, 8);
        int rowm = placementPenalty(rowMajor(8, count), 8, 8);
        int rnd = placementPenalty(randomPlacement(8, count, rng), 8, 8);
        std::printf("%8d %12d %12d %12d\n", count, knight, rowm, rnd);
    }

    std::printf("\nfull design flow with 10 CBs (knight placement):\n");
    DesignParams dp;
    dp.numCbs = 10;
    dp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    std::printf("%s", d.ascii().c_str());
    std::printf("eirs=%d crossings=%d layers=%d penalty=%d "
                "score=%.3f\n",
                d.numEirs(), d.rdl.crossings, d.rdl.layersNeeded,
                d.placementPenalty, d.eval.score);
    return 0;
}
