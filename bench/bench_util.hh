/**
 * @file
 * Shared helpers for the bench harness: key=value argument parsing and
 * run-scale defaults. Every bench binary accepts:
 *   scale=<f>     instruction-count scale (default varies per bench)
 *   benchmarks=<n> use only the first n workloads
 *   seed=<n>
 *   scheme=<key>[,<key>...]  restrict the sweep to these schemes
 *                 (SchemeRegistry names or aliases, any case; an
 *                 unknown key aborts listing the registered schemes)
 * and the matrix benches additionally accept the sweep-engine knobs:
 *   workers=<n>   pool worker threads (default 0 = all hardware
 *                 threads; results are identical for any value)
 *   timeout=<s>   per-job wall-clock timeout, 0 = off
 *   retries=<n>   retries after a non-completed attempt
 *   progress=1    stderr progress ticker
 *   jsonl=<path>  stream per-cell JSONL records
 *   warmup=<n>    reset NoC stats at core cycle n (0 = off)
 *   metrics=1     per-router/per-NI observability snapshot per cell
 * and the sweep-fabric knobs (src/sweep, see DESIGN.md §13):
 *   cache=<dir>   consult/populate the content-addressed cell cache;
 *                 a repeated run serves every cell without simulating
 *   journal=<p>   write-ahead journal: one record per finished cell
 *   resume=1     recover an existing journal instead of truncating it
 *   shard=<i/N>   run only this shard's cells (deterministic split;
 *                 merge the journals with `sweep merge=...`)
 *

 * and the traffic-model knobs (src/traffic, see DESIGN.md §16):
 *   traffic=<key>      TrafficRegistry model (synthetic, storm-diurnal,
 *                      storm-flash, storm-hotspot, coherence, or an
 *                      alias; an unknown key aborts listing the
 *                      registered models)
 *   trace=<spec>       capture:<path> and/or replay:<path>, comma
 *                      separated (closed-loop models only)
 *   storm_rate=<f>     offered arrivals / 1000 cycles / endpoint
 *   storm_horizon=<n>  arrival-generation window in core cycles
 *   storm_queue=<n>    per-endpoint backlog cap (drops beyond = loss)
 *   storm_trough=<f>   off-peak rate fraction (diurnal/flash)
 *   storm_write=<f>    write fraction of storm requests
 *   storm_hot_cbs=<n>  hotspot: CBs the hot fraction concentrates on
 *   storm_hot_frac=<f> hotspot: fraction aimed at the hot CBs
 *   coh_vcs=<n>        dedicated coherence-class VCs (classVcs
 *                      networks; needs vcsPerPort >= n + 2)
 *   coh_region=<n>     cache lines per tracked sharer region
 *
 * Fault-campaign benches additionally accept (see EXPERIMENTS.md):
 *   fault_rate=<f>     expected fault events / 1000 ticks / network
 *   fault_types=<s>    stall,corrupt,link_kill,router_kill or the
 *                      groups transient / permanent / all
 *   retx_timeout=<n>   initial end-to-end retransmission timeout
 *   retx_max=<n>       attempts before a packet is declared lost
 *                      (0 = unlimited)
 *   fault_seed=<n>     fault stream seed (0 = derive from seed=)
 *   fault_horizon=<n>  tick range random fault times are drawn from
 *   detect_latency=<n> kill-to-port-mask detection delay in ticks
 *   ack_latency=<n>    out-of-band ack path latency in ticks
 */

#ifndef EQX_BENCH_UTIL_HH
#define EQX_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sweep/shard.hh"
#include "sweep/sweep_runner.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

inline Config
parseBenchArgs(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);
    return cfg;
}

/**
 * Parse a comma-separated scheme= list into registry keys. Lookup is
 * case-insensitive over names and aliases; unknown keys are fatal and
 * print the registered key list. Returns canonical names.
 */
inline std::vector<std::string>
parseSchemeList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        std::string key =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!key.empty())
            out.push_back(SchemeRegistry::instance().byName(key).name());
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty())
        eqx_fatal("empty scheme list; registered schemes: ",
                  SchemeRegistry::instance().keyList());
    return out;
}

/** Apply the shared scheme= restriction, when given. */
inline void
applySchemeArg(ExperimentConfig &ec, const Config &cfg)
{
    std::string spec = cfg.getString("scheme", "");
    if (!spec.empty())
        ec.schemes = parseSchemeList(spec);
}

/**
 * Apply the shared traffic-model arguments. traffic= is validated
 * against the TrafficRegistry up front (fatal with the key list on an
 * unknown model) and stored canonically; every other knob defaults to
 * the current TrafficConfig value, so an untouched command line leaves
 * the config — and therefore the sweep digest and record schema —
 * byte-identical to a pre-traffic build.
 */
inline void
applyTrafficArgs(TrafficConfig &tc, const Config &cfg)
{
    std::string model = cfg.getString("traffic", "");
    if (!model.empty())
        tc.model = TrafficRegistry::instance().byName(model).name();
    tc.trace = cfg.getString("trace", tc.trace);
    tc.stormRatePerK = cfg.getDouble("storm_rate", tc.stormRatePerK);
    tc.stormHorizon = static_cast<std::uint64_t>(cfg.getInt(
        "storm_horizon", static_cast<long>(tc.stormHorizon)));
    tc.stormQueueCap =
        static_cast<int>(cfg.getInt("storm_queue", tc.stormQueueCap));
    tc.stormTrough = cfg.getDouble("storm_trough", tc.stormTrough);
    tc.stormWriteFrac = cfg.getDouble("storm_write", tc.stormWriteFrac);
    tc.stormHotCbs =
        static_cast<int>(cfg.getInt("storm_hot_cbs", tc.stormHotCbs));
    tc.stormHotFrac = cfg.getDouble("storm_hot_frac", tc.stormHotFrac);
    tc.coherenceVcs =
        static_cast<int>(cfg.getInt("coh_vcs", tc.coherenceVcs));
    tc.cohRegionLines =
        static_cast<int>(cfg.getInt("coh_region", tc.cohRegionLines));
}

/** Apply the shared sweep-engine arguments to a matrix experiment. */
inline void
applySweepArgs(ExperimentConfig &ec, const Config &cfg)
{
    applySchemeArg(ec, cfg);
    applyTrafficArgs(ec.traffic, cfg);
    ec.workers = static_cast<int>(cfg.getInt("workers", 0));
    ec.jobTimeoutSec = cfg.getDouble("timeout", 0);
    ec.jobRetries = static_cast<int>(cfg.getInt("retries", 1));
    ec.progress = cfg.getBool("progress", false);
    ec.jsonlPath = cfg.getString("jsonl", "");
    ec.warmupCycles = static_cast<Cycle>(cfg.getInt("warmup", 0));
    ec.collectMetrics = cfg.getBool("metrics", false);
}

/** Parse the sweep-fabric arguments (cache= journal= resume= shard=). */
inline SweepOptions
parseFabricArgs(const Config &cfg)
{
    SweepOptions so;
    so.cacheDir = cfg.getString("cache", "");
    so.journalPath = cfg.getString("journal", "");
    so.resume = cfg.getBool("resume", false);
    std::string shard = cfg.getString("shard", "");
    if (!shard.empty() &&
        !parseShardSpec(shard, so.shardIndex, so.shardCount))
        eqx_fatal("bad shard= spec '", shard,
                  "' (want i/N with 0 <= i < N)");
    if (so.resume && so.journalPath.empty())
        eqx_fatal("resume=1 needs journal=<path>");
    return so;
}

/**
 * Run the matrix, through the sweep fabric when any of its knobs is
 * set (printing the served/simulated split) and directly otherwise.
 */
inline std::vector<CellResult>
runMatrixOrSweep(const ExperimentConfig &ec, const SweepOptions &so)
{
    if (!so.enabled()) {
        ExperimentRunner runner(ec);
        return runner.runMatrix();
    }
    SweepOutcome out = runSweep(ec, so);
    std::printf("sweep fabric: %zu/%zu cells (shard %d/%d), "
                "%zu journal + %zu cache served, %zu simulated, "
                "%zu failed\n",
                out.shardCells, out.totalCells, so.shardIndex,
                so.shardCount, out.journalHits, out.cacheHits,
                out.simulated, out.failed);
    return std::move(out.cells);
}

inline std::vector<CellResult>
runMatrixOrSweep(const ExperimentConfig &ec, const Config &cfg)
{
    return runMatrixOrSweep(ec, parseFabricArgs(cfg));
}

/** Apply the fault-injection arguments to a fault config. */
inline void
applyFaultArgs(FaultConfig &fc, const Config &cfg)
{
    fc.ratePerKTick = cfg.getDouble("fault_rate", fc.ratePerKTick);
    std::string types = cfg.getString("fault_types", "");
    if (!types.empty() && !parseFaultKinds(types, fc.kinds))
        eqx_fatal("unknown fault_types spec: '", types, "'");
    fc.retxTimeout = static_cast<Cycle>(
        cfg.getInt("retx_timeout", static_cast<long>(fc.retxTimeout)));
    fc.retxMax = static_cast<int>(cfg.getInt("retx_max", fc.retxMax));
    fc.seed = static_cast<std::uint64_t>(
        cfg.getInt("fault_seed", static_cast<long>(fc.seed)));
    fc.horizonTicks = static_cast<Cycle>(cfg.getInt(
        "fault_horizon", static_cast<long>(fc.horizonTicks)));
    fc.detectLatency = static_cast<Cycle>(cfg.getInt(
        "detect_latency", static_cast<long>(fc.detectLatency)));
    fc.ackLatency = static_cast<Cycle>(
        cfg.getInt("ack_latency", static_cast<long>(fc.ackLatency)));
}

/**
 * Per-scheme observability digest printed by the matrix benches when
 * metrics=1: hottest router, credit-stall totals and the measured
 * max-EIR load next to the MCTS-predicted one.
 */
inline void
printMetricsDigest(const std::vector<CellResult> &cells,
                   const std::vector<std::string> &schemes)
{
    std::printf("\nobservability digest (metrics=1)\n");
    std::printf("%-18s %12s %14s %14s %12s\n", "scheme", "hot-router",
                "hot-flits", "credit-stalls", "max-eir-load");
    for (const std::string &s : schemes) {
        int hot_router = -1;
        double hot_flits = 0, stalls = 0;
        std::uint64_t max_eir = 0;
        for (const auto &c : cells) {
            if (c.scheme != s)
                continue;
            max_eir = std::max(max_eir, c.result.maxEirLoadPackets);
            for (const auto &[k, v] : c.result.metrics.all()) {
                // keys look like "<net>.router.<id>.flits"
                auto r = k.find(".router.");
                if (r == std::string::npos)
                    continue;
                auto tail = k.substr(r + 8);
                auto dot = tail.find('.');
                if (dot == std::string::npos)
                    continue;
                if (tail.substr(dot) == ".flits" && v > hot_flits) {
                    hot_flits = v;
                    hot_router = std::atoi(tail.c_str());
                }
                if (tail.substr(dot) == ".credit_stall")
                    stalls += v;
            }
        }
        std::printf("%-18s %12d %14.0f %14.0f %12llu\n", s.c_str(),
                    hot_router, hot_flits, stalls,
                    static_cast<unsigned long long>(max_eir));
    }
}

inline void
printHeader(const char *title, const char *paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==================================================\n");
}

} // namespace eqx

#endif // EQX_BENCH_UTIL_HH
