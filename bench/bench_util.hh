/**
 * @file
 * Shared helpers for the bench harness: key=value argument parsing and
 * run-scale defaults. Every bench binary accepts:
 *   scale=<f>     instruction-count scale (default varies per bench)
 *   benchmarks=<n> use only the first n workloads
 *   seed=<n>
 */

#ifndef EQX_BENCH_UTIL_HH
#define EQX_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"

namespace eqx {

inline Config
parseBenchArgs(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);
    return cfg;
}

inline void
printHeader(const char *title, const char *paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==================================================\n");
}

} // namespace eqx

#endif // EQX_BENCH_UTIL_HH
