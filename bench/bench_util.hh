/**
 * @file
 * Shared helpers for the bench harness: key=value argument parsing and
 * run-scale defaults. Every bench binary accepts:
 *   scale=<f>     instruction-count scale (default varies per bench)
 *   benchmarks=<n> use only the first n workloads
 *   seed=<n>
 * and the matrix benches additionally accept the sweep-engine knobs:
 *   workers=<n>   pool worker threads (default 0 = all hardware
 *                 threads; results are identical for any value)
 *   timeout=<s>   per-job wall-clock timeout, 0 = off
 *   retries=<n>   retries after a non-completed attempt
 *   progress=1    stderr progress ticker
 *   jsonl=<path>  stream per-cell JSONL records
 */

#ifndef EQX_BENCH_UTIL_HH
#define EQX_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"

namespace eqx {

inline Config
parseBenchArgs(int argc, char **argv)
{
    Config cfg;
    std::vector<std::string> toks;
    for (int i = 1; i < argc; ++i)
        toks.emplace_back(argv[i]);
    cfg.parseArgs(toks);
    return cfg;
}

/** Apply the shared sweep-engine arguments to a matrix experiment. */
inline void
applySweepArgs(ExperimentConfig &ec, const Config &cfg)
{
    ec.workers = static_cast<int>(cfg.getInt("workers", 0));
    ec.jobTimeoutSec = cfg.getDouble("timeout", 0);
    ec.jobRetries = static_cast<int>(cfg.getInt("retries", 1));
    ec.progress = cfg.getBool("progress", false);
    ec.jsonlPath = cfg.getString("jsonl", "");
}

inline void
printHeader(const char *title, const char *paper_ref)
{
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==================================================\n");
}

} // namespace eqx

#endif // EQX_BENCH_UTIL_HH
