/**
 * @file
 * Section 2.2: the traffic-mix measurement motivating the work —
 * reply traffic (read + write replies) accounts for 72.7% of NoC bits
 * across the suite, request traffic for 27.3%.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("t_traffic_mix: request vs reply bits",
                "EquiNox (HPCA'20) Section 2.2");

    ExperimentConfig ec;
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.2);
    ec.schemes = {"SeparateBase"};
    ec.workloads = workloadSubset(
        static_cast<std::size_t>(cfg.getInt("benchmarks", 12)));
    applyTrafficArgs(ec.traffic, cfg);

    ExperimentRunner runner(ec);
    auto cells = runner.runMatrix();

    std::printf("\n%-16s %14s %14s %8s\n", "benchmark", "req bits",
                "reply bits", "reply%");
    std::uint64_t req = 0, rep = 0;
    for (const auto &c : cells) {
        req += c.result.requestBits;
        rep += c.result.replyBits;
        std::printf("%-16s %14llu %14llu %7.1f%%\n",
                    c.benchmark.c_str(),
                    static_cast<unsigned long long>(
                        c.result.requestBits),
                    static_cast<unsigned long long>(c.result.replyBits),
                    100.0 * static_cast<double>(c.result.replyBits) /
                        static_cast<double>(c.result.requestBits +
                                            c.result.replyBits));
    }
    std::printf("\nsuite total: reply %.1f%% of bits (paper: 72.7%%), "
                "request %.1f%% (paper: 27.3%%)\n",
                100.0 * static_cast<double>(rep) /
                    static_cast<double>(req + rep),
                100.0 * static_cast<double>(req) /
                    static_cast<double>(req + rep));
    return 0;
}
