/**
 * @file
 * Section 6.6: ubump area of Interposer-CMesh vs EquiNox. Paper:
 * CMesh needs 128 unidirectional 256-bit die-interposer links =
 * 32,768 ubumps; EquiNox needs 24 unidirectional 128-bit links with
 * 2 bumps per wire = 6,144 ubumps — an 81.25% reduction. Here both
 * the paper-parameter arithmetic and the counts from our actually
 * constructed link plans are reported.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/design_flow.hh"
#include "interposer/ubump.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("t_ubump_area: ubump cost comparison",
                "EquiNox (HPCA'20) Section 6.6");

    UbumpModel bumps;

    // Interposer-CMesh: 16 overlay routers x 4 concentrated tiles,
    // bidirectional 256-bit attachment links = 128 unidirectional
    // links; each wire drops onto the die once.
    int cmesh_links = 16 * 4 * 2;
    InterposerLink cmesh_link{{0, 0}, {1, 0}, 256, false};
    int cmesh_bumps =
        cmesh_links * bumps.bumpsForLink(cmesh_link, false);
    std::printf("\nInterposer-CMesh: %d x 256-bit links -> %d ubumps "
                "(paper: 32768), %.2f mm^2\n",
                cmesh_links, cmesh_bumps,
                bumps.areaForBumps(cmesh_bumps));

    // EquiNox paper parameters: 24 links, 128-bit, 2 bumps per wire.
    int paper_eq_bumps = 24 * 128 * 2;
    std::printf("EquiNox (paper params): 24 x 128-bit links -> %d "
                "ubumps (paper: 6144), %.2f mm^2\n",
                paper_eq_bumps, bumps.areaForBumps(paper_eq_bumps));
    std::printf("paper reduction: 81.25%% -> computed: %.2f%%\n",
                100.0 * (1.0 - static_cast<double>(paper_eq_bumps) /
                                   cmesh_bumps));

    // Our actually synthesized design.
    DesignParams dp;
    dp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    std::printf("\nour MCTS design: %d EIR links -> %d ubumps, "
                "%.2f mm^2 (%.2f%% below CMesh)\n",
                static_cast<int>(d.plan.size()), d.rdl.numUbumps,
                d.rdl.ubumpAreaMm2,
                100.0 * (1.0 - static_cast<double>(d.rdl.numUbumps) /
                                   cmesh_bumps));
    std::printf("RDL layers: CMesh 1, EquiNox %d (both avoid "
                "crossings)\n",
                d.rdl.layersNeeded);

    // Per-link area figure from Section 3.2.3 (40 um pitch).
    InterposerLink bidir{{0, 0}, {2, 0}, 128, true};
    std::printf("\n128-bit bidirectional link ubump area at 40 um "
                "pitch: %.2f mm^2 (paper: ~0.34 mm^2 for one drop per "
                "wire: %.2f mm^2)\n",
                bumps.areaForBumps(bumps.bumpsForLink(bidir, true)),
                bumps.areaForBumps(bumps.bumpsForLink(bidir, false)));
    return 0;
}
