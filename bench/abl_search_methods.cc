/**
 * @file
 * Ablation for Section 4.3's search-method discussion: MCTS vs
 * greedy, random sampling, simulated annealing and a genetic
 * algorithm, all on the same placement, evaluation function and
 * budget ballpark. The paper argues MCTS fits the problem
 * representation best; this bench quantifies it.
 *
 * The two result tables are deterministic (seeded searches over the
 * incremental evaluator, which scores bit-identically to the
 * from-scratch path); the trailing "evaluation throughput" section and
 * the jsonl wall_ms field are the only timing-dependent output.
 *
 * Arguments (besides the shared seed= / iters=):
 *   jsonl=<path>  one JSON record per method row; every field except
 *                 wall_ms is deterministic for a given seed
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/design_flow.hh"
#include "core/nqueen.hh"
#include "core/search.hh"

using namespace eqx;

namespace {

using Clock = std::chrono::steady_clock;

struct MethodRow
{
    std::string method;
    double score = 0;
    int eirs = 0;
    int crossings = 0;
    int h3 = 0;
    double maxLoad = 0;
    std::uint64_t evaluations = 0;
    double wallMs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_search_methods: MCTS vs GA/SA/greedy/random",
                "EquiNox (HPCA'20) Section 4.3 discussion");

    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    std::string jsonl = cfg.getString("jsonl", "");
    Rng rng(seed);
    auto placement = bestNQueenPlacement(8, 8, rng);
    EirProblem prob(8, 8, placement.cbs, 3, 4);
    EirEvaluator eval(&prob);

    std::printf("\n%-10s %10s %8s %8s %8s %10s %12s\n", "method",
                "score", "eirs", "cross", "3hop", "maxLoad", "evals");

    std::vector<MethodRow> rows;
    auto report = [&](const SearchResult &r, double wall_ms) {
        MethodRow row;
        row.method = r.method;
        row.score = r.eval.score;
        row.crossings = r.eval.crossings;
        row.maxLoad = r.eval.maxLoad;
        row.evaluations = r.evaluations;
        row.wallMs = wall_ms;
        for (std::size_t i = 0; i < r.selection.size(); ++i) {
            for (const auto &e : r.selection[i]) {
                ++row.eirs;
                if (manhattan(placement.cbs[i], e) > 2)
                    ++row.h3;
            }
        }
        std::printf("%-10s %10.3f %8d %8d %8d %10.1f %12llu\n",
                    r.method.c_str(), r.eval.score, row.eirs,
                    r.eval.crossings, row.h3, r.eval.maxLoad,
                    static_cast<unsigned long long>(r.evaluations));
        rows.push_back(std::move(row));
    };
    auto timed = [&](auto &&run) {
        auto t0 = Clock::now();
        SearchResult r = run();
        auto t1 = Clock::now();
        report(r,
               std::chrono::duration<double>(t1 - t0).count() * 1e3);
    };

    MctsParams mp;
    mp.seed = seed;
    mp.iterationsPerLevel = static_cast<int>(cfg.getInt("iters", 600));
    timed([&] { return mctsSearch(prob, eval, mp); });
    timed([&] { return greedySearch(prob, eval, 2048); });
    timed([&] { return randomSearch(prob, eval, 4000, seed); });
    AnnealParams ap;
    ap.seed = seed;
    ap.steps = 4000;
    timed([&] { return annealSearch(prob, eval, ap); });
    GeneticParams gp;
    gp.seed = seed;
    timed([&] { return geneticSearch(prob, eval, gp); });

    // And each method followed by the same polish pass, as the design
    // flow applies.
    std::printf("\nwith best-response polish:\n");
    for (auto method : {SearchMethod::Mcts, SearchMethod::Greedy,
                        SearchMethod::Random, SearchMethod::Anneal,
                        SearchMethod::Genetic}) {
        timed([&] {
            SearchResult r;
            switch (method) {
              case SearchMethod::Mcts:
                r = mctsSearch(prob, eval, mp);
                break;
              case SearchMethod::Greedy:
                r = greedySearch(prob, eval, 2048);
                break;
              case SearchMethod::Random:
                r = randomSearch(prob, eval, 4000, seed);
                break;
              case SearchMethod::Anneal:
                r = annealSearch(prob, eval, ap);
                break;
              case SearchMethod::Genetic:
                r = geneticSearch(prob, eval, gp);
                break;
            }
            auto polished = polishSelection(prob, eval, r.selection);
            polished.method =
                std::string(searchMethodName(method)) + "+p";
            polished.evaluations += r.evaluations;
            return polished;
        });
    }

    // Timing-dependent output only below this line; the CI golden
    // check strips from here on (sed '/^evaluation throughput/,$d'),
    // so no blank line may precede the marker.
    std::printf("evaluation throughput\n");
    std::printf("%-10s %10s %14s\n", "method", "wall_ms", "evals/sec");
    for (const auto &row : rows)
        std::printf("%-10s %10.1f %14.0f\n", row.method.c_str(),
                    row.wallMs,
                    static_cast<double>(row.evaluations) /
                        (row.wallMs / 1e3));

    if (!jsonl.empty()) {
        std::FILE *f = std::fopen(jsonl.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         jsonl.c_str());
            return 1;
        }
        for (const auto &row : rows)
            std::fprintf(
                f,
                "{\"bench\": \"abl_search_methods\", "
                "\"seed\": %llu, \"method\": \"%s\", "
                "\"score\": %.6f, \"eirs\": %d, \"crossings\": %d, "
                "\"h3\": %d, \"max_load\": %.3f, "
                "\"evaluations\": %llu, \"wall_ms\": %.1f}\n",
                static_cast<unsigned long long>(seed),
                row.method.c_str(), row.score, row.eirs,
                row.crossings, row.h3, row.maxLoad,
                static_cast<unsigned long long>(row.evaluations),
                row.wallMs);
        std::fclose(f);
        std::printf("wrote %s\n", jsonl.c_str());
    }
    return 0;
}
