/**
 * @file
 * Ablation for Section 4.3's search-method discussion: MCTS vs
 * greedy, random sampling, simulated annealing and a genetic
 * algorithm, all on the same placement, evaluation function and
 * budget ballpark. The paper argues MCTS fits the problem
 * representation best; this bench quantifies it.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/design_flow.hh"
#include "core/nqueen.hh"
#include "core/search.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_search_methods: MCTS vs GA/SA/greedy/random",
                "EquiNox (HPCA'20) Section 4.3 discussion");

    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    Rng rng(seed);
    auto placement = bestNQueenPlacement(8, 8, rng);
    EirProblem prob(8, 8, placement.cbs, 3, 4);
    EirEvaluator eval(&prob);

    std::printf("\n%-10s %10s %8s %8s %8s %10s %12s\n", "method",
                "score", "eirs", "cross", "3hop", "maxLoad", "evals");

    auto report = [&](const SearchResult &r) {
        int eirs = 0, h3 = 0;
        for (std::size_t i = 0; i < r.selection.size(); ++i) {
            for (const auto &e : r.selection[i]) {
                ++eirs;
                if (manhattan(placement.cbs[i], e) > 2)
                    ++h3;
            }
        }
        std::printf("%-10s %10.3f %8d %8d %8d %10.1f %12llu\n",
                    r.method.c_str(), r.eval.score, eirs,
                    r.eval.crossings, h3, r.eval.maxLoad,
                    static_cast<unsigned long long>(r.evaluations));
    };

    MctsParams mp;
    mp.seed = seed;
    mp.iterationsPerLevel = static_cast<int>(cfg.getInt("iters", 600));
    report(mctsSearch(prob, eval, mp));
    report(greedySearch(prob, eval, 2048));
    report(randomSearch(prob, eval, 4000, seed));
    AnnealParams ap;
    ap.seed = seed;
    ap.steps = 4000;
    report(annealSearch(prob, eval, ap));
    GeneticParams gp;
    gp.seed = seed;
    report(geneticSearch(prob, eval, gp));

    // And each method followed by the same polish pass, as the design
    // flow applies.
    std::printf("\nwith best-response polish:\n");
    for (auto method : {SearchMethod::Mcts, SearchMethod::Greedy,
                        SearchMethod::Random, SearchMethod::Anneal,
                        SearchMethod::Genetic}) {
        SearchResult r;
        switch (method) {
          case SearchMethod::Mcts:
            r = mctsSearch(prob, eval, mp);
            break;
          case SearchMethod::Greedy:
            r = greedySearch(prob, eval, 2048);
            break;
          case SearchMethod::Random:
            r = randomSearch(prob, eval, 4000, seed);
            break;
          case SearchMethod::Anneal:
            r = annealSearch(prob, eval, ap);
            break;
          case SearchMethod::Genetic:
            r = geneticSearch(prob, eval, gp);
            break;
        }
        auto polished = polishSelection(prob, eval, r.selection);
        polished.method = std::string(searchMethodName(method)) + "+p";
        polished.evaluations += r.evaluations;
        report(polished);
    }
    return 0;
}
