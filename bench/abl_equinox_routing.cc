/**
 * @file
 * Ablation: reply-network routing in the EquiNox scheme. Compares
 * SeparateBase against EquiNox under its default minimal-adaptive
 * reply routing and against the registry-only EquiNox-XY variant
 * (identical EIR wiring, dimension-ordered reply routing). Isolates
 * how much of EquiNox's win needs adaptivity on the reply path versus
 * the EIR injection structure alone. EquiNox-XY exists purely as a
 * SchemeRegistry entry — no simulator-core support.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_equinox_routing: EquiNox reply-routing ablation",
                "EquiNox (HPCA'20) Section 5 (routing sensitivity)");

    ExperimentConfig ec;
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.15);
    ec.workloads = workloadSubset(
        static_cast<std::size_t>(cfg.getInt("benchmarks", 2)));
    applySweepArgs(ec, cfg);
    // Fixed rows: the ablation contrasts exactly these three.
    ec.schemes = {"SeparateBase", "EquiNox", "EquiNox-XY"};

    ExperimentRunner runner(ec);
    auto cells = runner.runMatrix();

    auto exec = [](const RunResult &r) { return r.execNs; };
    printNormalizedTable(cells, ec.schemes, "execution time", exec,
                         "SeparateBase");

    double eq = schemeGeomean(cells, "EquiNox", exec);
    double xy = schemeGeomean(cells, "EquiNox-XY", exec);
    std::printf("\nreply latency ns/packet (queue + network):\n");
    for (const std::string &s : ec.schemes) {
        double q = 0, n = 0;
        int cnt = 0;
        for (const auto &c : cells) {
            if (c.scheme != s)
                continue;
            q += c.result.repQueueNs;
            n += c.result.repNetNs;
            ++cnt;
        }
        std::printf("  %-14s q=%7.2f net=%7.2f\n", s.c_str(),
                    cnt ? q / cnt : 0.0, cnt ? n / cnt : 0.0);
    }
    if (eq > 0)
        std::printf("\nEquiNox-XY exec vs EquiNox (adaptive): %+.1f%%\n",
                    100.0 * (xy / eq - 1.0));

    if (ec.collectMetrics)
        printMetricsDigest(cells, ec.schemes);
    return 0;
}
