/**
 * @file
 * Figure 10: NoC packet latency decomposed into queuing/non-queuing
 * parts for request and reply traffic, in ns, normalized to
 * SingleBase. Paper headline: EquiNox reduces request/reply/total
 * packet latency by 44.6% / 40.6% / 45.8% vs SingleBase, and the
 * request latency exceeds the reply latency everywhere (parking-lot
 * backpressure).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig10_latency: packet latency decomposition",
                "EquiNox (HPCA'20) Figure 10");

    ExperimentConfig ec;
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.25);
    ec.workloads = workloadSubset(
        static_cast<std::size_t>(cfg.getInt("benchmarks", 8)));
    applySweepArgs(ec, cfg);

    auto cells = runMatrixOrSweep(ec, cfg);

    if (ec.collectMetrics) {
        printMetricsDigest(cells, ec.schemes);
        // Tail latency per scheme (ns, averaged over benchmarks).
        std::printf("\n%-18s %9s %9s %9s %9s %9s %9s\n", "scheme",
                    "req-p50", "req-p95", "req-p99", "rep-p50",
                    "rep-p95", "rep-p99");
        for (const std::string &s : ec.schemes) {
            double p[6] = {0, 0, 0, 0, 0, 0};
            int n = 0;
            for (const auto &c : cells) {
                if (c.scheme != s)
                    continue;
                p[0] += c.result.reqP50Ns;
                p[1] += c.result.reqP95Ns;
                p[2] += c.result.reqP99Ns;
                p[3] += c.result.repP50Ns;
                p[4] += c.result.repP95Ns;
                p[5] += c.result.repP99Ns;
                ++n;
            }
            std::printf("%-18s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                        s.c_str(), p[0] / n, p[1] / n, p[2] / n,
                        p[3] / n, p[4] / n, p[5] / n);
        }
    }

    // Per-scheme averages over benchmarks (ns per packet).
    std::printf("\n%-18s %10s %10s %10s %10s %10s %8s\n", "scheme",
                "req-queue", "req-net", "rep-queue", "rep-net", "total",
                "norm");
    double base_total = 0;
    for (const std::string &s : ec.schemes) {
        double rq = 0, rn = 0, pq = 0, pn = 0;
        int n = 0;
        for (const auto &c : cells) {
            if (c.scheme != s)
                continue;
            rq += c.result.reqQueueNs;
            rn += c.result.reqNetNs;
            pq += c.result.repQueueNs;
            pn += c.result.repNetNs;
            ++n;
        }
        rq /= n;
        rn /= n;
        pq /= n;
        pn /= n;
        double total = rq + rn + pq + pn;
        if (s == "SingleBase")
            base_total = total;
        std::printf("%-18s %10.2f %10.2f %10.2f %10.2f %10.2f %8.3f\n",
                    s.c_str(), rq, rn, pq, pn, total,
                    total / base_total);
    }

    auto avg = [&](const std::string &s, auto metric) {
        double v = 0;
        int n = 0;
        for (const auto &c : cells)
            if (c.scheme == s) {
                v += metric(c.result);
                ++n;
            }
        return v / n;
    };
    auto req = [](const RunResult &r) { return r.reqQueueNs + r.reqNetNs; };
    auto rep = [](const RunResult &r) { return r.repQueueNs + r.repNetNs; };
    auto tot = [&](const RunResult &r) { return req(r) + rep(r); };

    std::printf("\nEquiNox latency reductions vs SingleBase "
                "(paper -> measured):\n");
    std::printf("request: 44.6%% -> %.1f%%\n",
                100.0 * (1.0 - avg("EquiNox", req) /
                                   avg("SingleBase", req)));
    std::printf("reply  : 40.6%% -> %.1f%%\n",
                100.0 * (1.0 - avg("EquiNox", rep) /
                                   avg("SingleBase", rep)));
    std::printf("total  : 45.8%% -> %.1f%%\n",
                100.0 * (1.0 - avg("EquiNox", tot) /
                                   avg("SingleBase", tot)));
    std::printf("\nrequest latency exceeds reply latency "
                "(backpressure, paper Section 6.4):\n");
    for (const std::string &s : ec.schemes)
        std::printf("  %-18s req=%.2f ns rep=%.2f ns %s\n",
                    s.c_str(), avg(s, req), avg(s, rep),
                    avg(s, req) > avg(s, rep) ? "[req > rep]" : "");
    return 0;
}
