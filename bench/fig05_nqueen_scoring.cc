/**
 * @file
 * Figure 5 / Section 4.2: the N-Queen scoring policy. Enumerates all
 * 92 8x8 N-Queen solutions, scores each with the hot-zone penalty,
 * prints the distribution and the winning placement, and reproduces
 * the paper's worked example (a tile with two overlap neighbours
 * scores 1+2 = 3).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "core/hotzone.hh"
#include "core/nqueen.hh"
#include "core/placement.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig05_nqueen_scoring: N-Queen placement scoring",
                "EquiNox (HPCA'20) Figure 5 / Section 4.2");

    auto sols = solveNQueens(8, 1000000);
    std::printf("8x8 N-Queen solutions: %zu (paper: 92)\n", sols.size());

    std::vector<int> scores;
    int best = -1;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < sols.size(); ++i) {
        int p = placementPenalty(sols[i], 8, 8);
        scores.push_back(p);
        if (best < 0 || p < best) {
            best = p;
            best_idx = i;
        }
    }
    std::sort(scores.begin(), scores.end());
    std::printf("penalty min=%d median=%d max=%d\n", scores.front(),
                scores[scores.size() / 2], scores.back());

    std::printf("\nleast-penalized N-Queen placement (penalty %d):\n%s",
                best, placementAscii(sols[best_idx], 8, 8).c_str());

    std::printf("classic placements under the same policy:\n");
    for (auto kind : {PlacementKind::Top, PlacementKind::Side,
                      PlacementKind::Diagonal, PlacementKind::Diamond}) {
        auto cbs = makePlacement(kind, 8, 8, 8);
        std::printf("  %-9s penalty = %d\n", placementName(kind),
                    placementPenalty(cbs, 8, 8));
    }

    // Paper worked example: a node with two hot-zone-overlap direct
    // neighbours carries penalty 1+2 = 3.
    HotZoneMap map({{2, 2}, {4, 2}, {2, 4}}, 8, 8);
    std::printf("\nworked example: tile (3,3) penalty = %d (paper: "
                "two overlap neighbours -> 3)\n",
                tilePenalty(map, {3, 3}));

    // Larger boards: sampled solutions.
    Rng rng(static_cast<std::uint64_t>(cfg.getInt("seed", 1)));
    for (int n : {12, 16}) {
        ScoredPlacement sp = bestNQueenPlacement(n, 8, rng, 128);
        std::printf("%dx%d: best sampled N-Queen (8 CBs) penalty = %d\n",
                    n, n, sp.penalty);
    }
    return 0;
}
