/**
 * @file
 * NoC hot-loop runner: times the network-cycle kernels (idle and
 * loaded 8x8/16x16 meshes) under the activity-driven tick scheduler and
 * under the exhaustive fallback loop, and writes the before/after
 * comparison to BENCH_noc_hotloop.json. The CI perf-smoke job uploads
 * that file so scheduler regressions are visible per commit.
 *
 * Arguments:
 *   out=<path>     output JSON (default BENCH_noc_hotloop.json)
 *   min_time=<s>   minimum measured wall time per kernel (default 0.2)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "noc/network.hh"

namespace eqx {
namespace {

using Clock = std::chrono::steady_clock;

struct KernelResult
{
    std::string name;
    double beforeNs = 0; ///< ns per core cycle, exhaustive loop
    double afterNs = 0;  ///< ns per core cycle, activity scheduler
    double itemsPerSec = 0; ///< node-cycles per second, after
};

/**
 * Run @p fn (one core cycle per call) until at least @p min_time
 * seconds have been measured, growing the batch geometrically so the
 * timing overhead amortises. Returns ns per call.
 */
template <typename F>
double
timeKernel(F &&fn, double min_time)
{
    std::uint64_t iters = 0;
    double elapsed = 0;
    std::uint64_t batch = 64;
    while (elapsed < min_time) {
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < batch; ++i)
            fn();
        auto t1 = Clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();
        iters += batch;
        if (batch < (std::uint64_t{1} << 30))
            batch *= 2;
    }
    return elapsed * 1e9 / static_cast<double>(iters);
}

double
idleKernel(int side, bool exhaustive, double min_time)
{
    NetworkSpec spec;
    spec.params.width = spec.params.height = side;
    spec.params.exhaustiveTick = exhaustive;
    Network net(spec);
    Cycle clock = 0;
    return timeKernel([&] { net.coreTick(++clock); }, min_time);
}

double
loadedKernel(int side, bool exhaustive, double min_time,
             TopologyKind kind = TopologyKind::Mesh)
{
    NetworkSpec spec;
    spec.params.width = spec.params.height = side;
    spec.params.exhaustiveTick = exhaustive;
    spec.params.topo.kind = kind;
    if (kind == TopologyKind::Torus)
        spec.params.vcsPerPort = 3; // dateline + Duato escape pair
    Network net(spec);
    Rng rng(1);
    Cycle clock = 0;
    const NodeId nodes = static_cast<NodeId>(side * side);
    return timeKernel(
        [&] {
            for (NodeId n = 0; n < nodes; ++n) {
                if (!rng.chance(0.05))
                    continue;
                NodeId d = static_cast<NodeId>(rng.nextBounded(nodes));
                if (d != n)
                    net.inject(
                        n, makePacket(PacketType::ReadReply, n, d, 640));
            }
            net.coreTick(++clock);
        },
        min_time);
}

} // namespace
} // namespace eqx

int
main(int argc, char **argv)
{
    using namespace eqx;
    Config cfg = parseBenchArgs(argc, argv);
    std::string out = cfg.getString("out", "BENCH_noc_hotloop.json");
    double min_time = cfg.getDouble("min_time", 0.2);

    printHeader("NoC hot-loop before/after",
                "activity-driven tick scheduling (DESIGN.md #10)");

    std::vector<KernelResult> results;
    for (int side : {8, 16}) {
        KernelResult r;
        r.name = "network_cycle_idle_" + std::to_string(side) + "x" +
                 std::to_string(side);
        r.beforeNs = idleKernel(side, /*exhaustive=*/true, min_time);
        r.afterNs = idleKernel(side, /*exhaustive=*/false, min_time);
        r.itemsPerSec = side * side * 1e9 / r.afterNs;
        results.push_back(r);
    }
    for (int side : {8, 16}) {
        KernelResult r;
        r.name = "network_cycle_loaded_" + std::to_string(side) + "x" +
                 std::to_string(side);
        r.beforeNs = loadedKernel(side, /*exhaustive=*/true, min_time);
        r.afterNs = loadedKernel(side, /*exhaustive=*/false, min_time);
        r.itemsPerSec = side * side * 1e9 / r.afterNs;
        results.push_back(r);
    }
    {
        // Wrap-link fabric (DESIGN.md §17): same load on a 16x16
        // torus, so the dateline-VC route compute and the extra wrap
        // channels show up in the per-cycle cost.
        KernelResult r;
        r.name = "network_cycle_loaded_torus_16x16";
        r.beforeNs = loadedKernel(16, /*exhaustive=*/true, min_time,
                                  TopologyKind::Torus);
        r.afterNs = loadedKernel(16, /*exhaustive=*/false, min_time,
                                 TopologyKind::Torus);
        r.itemsPerSec = 16 * 16 * 1e9 / r.afterNs;
        results.push_back(r);
    }

    std::printf("%-26s %14s %14s %9s\n", "kernel", "before ns/cyc",
                "after ns/cyc", "speedup");
    for (const auto &r : results)
        std::printf("%-26s %14.1f %14.1f %8.2fx\n", r.name.c_str(),
                    r.beforeNs, r.afterNs, r.beforeNs / r.afterNs);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"noc_hotloop\",\n  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", "
                     "\"before_ns_per_cycle\": %.3f, "
                     "\"after_ns_per_cycle\": %.3f, "
                     "\"speedup\": %.3f, "
                     "\"items_per_second\": %.0f}%s\n",
                     r.name.c_str(), r.beforeNs, r.afterNs,
                     r.beforeNs / r.afterNs, r.itemsPerSec,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
