/**
 * @file
 * Open-loop overload campaign (DESIGN.md §16): drives every scheme
 * with rate-controlled storm traffic instead of the closed-loop PE
 * window, sweeping offered load to find the saturation point, then
 * re-running the spike under an armed fault plane (degraded-mode
 * delivery), and finishing with trace-replay and coherence-flow rows.
 *
 * mode=grid   (default) offered-load sweep + storm-under-fault +
 *             trace round-trip + coherence rows
 * mode=smoke  one flash-crowd point (CI asserts the storm columns are
 *             populated and deterministic across two runs)
 *
 * Knobs: the shared sweep/traffic/fault arguments (bench_util.hh),
 * plus trace_file=<path> for the round-trip scratch trace.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

namespace {

void
printStormPoint(const char *label, const std::vector<std::string> &schemes,
                const std::vector<CellResult> &cells)
{
    for (const std::string &s : schemes) {
        std::uint64_t off = 0, inj = 0, del = 0, drop = 0;
        double p99 = 0;
        int n = 0;
        bool completed = true;
        for (const auto &c : cells) {
            if (c.scheme != s)
                continue;
            const RunResult &r = c.result;
            off += r.stormOffered;
            inj += r.stormInjected;
            del += r.stormDelivered;
            drop += r.stormDropped;
            p99 += r.repP99Ns;
            completed &= r.completed;
            ++n;
        }
        double dr = off ? static_cast<double>(del) /
                              static_cast<double>(off)
                        : 0.0;
        std::printf("%-16s %-14s %9llu %9llu %9llu %8llu %7.4f %4s"
                    " %10.2f %4s\n",
                    label, s.c_str(),
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(inj),
                    static_cast<unsigned long long>(del),
                    static_cast<unsigned long long>(drop), dr,
                    drop ? "yes" : "no", n ? p99 / n : 0.0,
                    completed ? "yes" : "NO");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_storm_overload: open-loop storms, replay, coherence",
                "EquiNox (HPCA'20) under overload, DESIGN.md §16");

    std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    double scale = cfg.getDouble("scale", 0.1);
    std::string mode = cfg.getString("mode", "grid");
    std::string trace_file =
        cfg.getString("trace_file", "abl_storm_trace.json");
    std::string jsonl_base = cfg.getString("jsonl", "");

    std::vector<std::string> schemes = {"SeparateBase", "EquiNox"};
    if (cfg.has("scheme"))
        schemes = parseSchemeList(cfg.getString("scheme"));

    // Baseline config shared by every point. Storm cells ignore the
    // workload profile (the PEs are replaced), but the matrix still
    // names its rows after one.
    auto makeBase = [&](const std::string &jsonl_suffix) {
        ExperimentConfig ec;
        ec.seed = seed;
        ec.instScale = scale;
        ec.workloads = workloadSubset(1);
        applySweepArgs(ec, cfg);
        ec.schemes = schemes;
        if (!jsonl_base.empty())
            ec.jsonlPath = jsonl_base + jsonl_suffix;
        else
            ec.jsonlPath.clear();
        // The horizon bounds the run; keep a generous drain margin.
        ec.tweak = [](SystemConfig &sc) { sc.maxCycles = 400'000; };
        return ec;
    };
    TrafficConfig user_tc;
    applyTrafficArgs(user_tc, cfg);
    if (!cfg.has("storm_horizon"))
        user_tc.stormHorizon = 20'000; // bench-speed default

    std::printf("\n%-16s %-14s %9s %9s %9s %8s %7s %4s %10s %4s\n",
                "point", "scheme", "offered", "injected", "delivered",
                "dropped", "deliv", "sat", "rep_p99_ns", "done");

    if (mode == "smoke") {
        ExperimentConfig ec = makeBase("");
        ec.traffic = user_tc;
        ec.traffic.model = "storm-flash";
        ExperimentRunner runner(ec);
        printStormPoint("flash-smoke", schemes, runner.runMatrix());
        return 0;
    }

    // 1) Offered-load sweep: flash-crowd spikes of increasing rate.
    //    The saturation point is the first rate with drops (sat=yes).
    for (double rate : {16.0, 64.0, 256.0}) {
        char label[32], suffix[32];
        std::snprintf(label, sizeof(label), "flash rate=%g", rate);
        std::snprintf(suffix, sizeof(suffix), ".r%g", rate);
        ExperimentConfig ec = makeBase(suffix);
        ec.traffic = user_tc;
        ec.traffic.model = "storm-flash";
        ec.traffic.stormRatePerK = rate;
        ExperimentRunner runner(ec);
        printStormPoint(label, schemes, runner.runMatrix());
    }

    // 2) Hotspot concentration at the middle rate.
    {
        ExperimentConfig ec = makeBase(".hot");
        ec.traffic = user_tc;
        ec.traffic.model = "storm-hotspot";
        ec.traffic.stormRatePerK = 64.0;
        ExperimentRunner runner(ec);
        printStormPoint("hotspot rate=64", schemes, runner.runMatrix());
    }

    // 3) Storm + fault: the same flash spike with a transient fault
    //    plane armed — degraded-mode delivery under overload.
    {
        ExperimentConfig ec = makeBase(".fault");
        ec.traffic = user_tc;
        ec.traffic.model = "storm-flash";
        ec.traffic.stormRatePerK = 64.0;
        applyFaultArgs(ec.fault, cfg);
        if (ec.fault.ratePerKTick <= 0)
            ec.fault.ratePerKTick = 4;
        ec.fault.kinds = kTransientFaultKinds;
        ExperimentRunner runner(ec);
        printStormPoint("flash+fault", schemes, runner.runMatrix());
    }

    // 4) Trace round-trip rows: capture the synthetic stream once
    //    (scheme-independent bytes), then replay it through every
    //    scheme — closed-loop numbers from a recorded workload.
    std::printf("\n%-16s %-14s %12s %9s %10s %4s\n", "point", "scheme",
                "cycles", "ipc", "rep_p99_ns", "done");
    {
        ExperimentConfig ec = makeBase("");
        ec.schemes = {schemes.front()};
        ec.workers = 1; // one cell writes the trace file
        ec.jsonlPath.clear();
        ec.traffic.trace = "capture:" + trace_file;
        ExperimentRunner runner(ec);
        runner.runMatrix();
    }
    {
        ExperimentConfig ec = makeBase(".replay");
        ec.traffic.trace = "replay:" + trace_file;
        ExperimentRunner runner(ec);
        for (const auto &c : runner.runMatrix())
            std::printf("%-16s %-14s %12llu %9.4f %10.2f %4s\n",
                        "trace-replay", c.scheme.c_str(),
                        static_cast<unsigned long long>(c.result.cycles),
                        c.result.ipc, c.result.repP99Ns,
                        c.result.completed ? "yes" : "NO");
    }

    // 5) Coherence-flow rows: invalidation/ack multicast on top of the
    //    closed-loop streams.
    std::printf("\n%-16s %-14s %12s %12s %10s %4s\n", "point", "scheme",
                "invals", "inv_acks", "rep_p99_ns", "done");
    {
        ExperimentConfig ec = makeBase(".coh");
        ec.traffic = user_tc;
        ec.traffic.model = "coherence";
        ExperimentRunner runner(ec);
        for (const auto &c : runner.runMatrix())
            std::printf("%-16s %-14s %12llu %12llu %10.2f %4s\n",
                        "coherence", c.scheme.c_str(),
                        static_cast<unsigned long long>(
                            c.result.cohInvalidations),
                        static_cast<unsigned long long>(
                            c.result.cohInvAcks),
                        c.result.repP99Ns,
                        c.result.completed ? "yes" : "NO");
    }
    return 0;
}
