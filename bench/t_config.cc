/**
 * @file
 * Table 1: the key simulation parameters, as configured in this
 * reproduction, side by side with the paper's values.
 */

#include <cstdio>

#include "bench_util.hh"
#include "power/power_model.hh"
#include "sim/scheme.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    (void)parseBenchArgs(argc, argv);
    printHeader("t_config: key simulation parameters",
                "EquiNox (HPCA'20) Table 1");

    SystemConfig sc;
    PowerParams pp;

    std::printf("\n%-28s %-24s %s\n", "parameter", "paper", "this repo");
    std::printf("%-28s %-24s %dx%d (also 12x12, 16x16)\n",
                "Network size", "8x8, 12x12, 16x16", sc.width,
                sc.height);
    std::printf("%-28s %-24s %s\n", "Network routing",
                "Minimum adaptive",
                "minimal adaptive + escape VC (XY in single nets)");
    std::printf("%-28s %-24s %d/port, %d flits (1 pkt)/VC\n",
                "Virtual channels", "2/port, 1 pkt/VC", sc.vcsPerPort,
                sc.vcDepthFlits);
    std::printf("%-28s %-24s %s\n", "Allocator",
                "Separable input first", "separable input-first");
    std::printf("%-28s %-24s %.0f MHz\n", "PE frequency", "1126 MHz",
                pp.freqGhz * 1000);
    std::printf("%-28s %-24s %ld KB\n", "L1 cache / PE", "16 KB",
                static_cast<long>(sc.pe.l1.sizeBytes / 1024));
    std::printf("%-28s %-24s %ld MB\n", "L2 (LLC) per bank", "2 MB",
                static_cast<long>(sc.cb.l2.sizeBytes / 1024 / 1024));
    std::printf("%-28s %-24s %d\n", "# of LLC banks", "8", sc.numCbs);
    std::printf("%-28s %-24s %d channels x %d banks, FR-FCFS\n",
                "HBM / memory controllers", "8 MCs, FR-FCFS",
                sc.cb.hbm.channels, sc.cb.hbm.banksPerChannel);
    std::printf("%-28s %-24s %d bits\n", "Flit / link width", "128 bit",
                sc.flitBits);
    std::printf("%-28s %-24s read req %d / write req %d / read reply "
                "%d / write reply %d bits\n",
                "Packet sizes", "(64 B lines)",
                sc.sizes.readRequestBits, sc.sizes.writeRequestBits,
                sc.sizes.readReplyBits, sc.sizes.writeReplyBits);
    std::printf("%-28s %-24s 29 synthetic profiles "
                "(Rodinia + CUDA SDK names)\n",
                "Benchmarks", "29 (Rodinia + CUDA SDK)");
    return 0;
}
