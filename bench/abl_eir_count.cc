/**
 * @file
 * Ablation for Section 3.2.1: how many EIRs per group? Sweeps the
 * per-CB group-size cap (1 = the existing single-injection-router
 * architecture) and, for contrast, the MultiPort port count. The
 * paper argues for a middle ground: one EIR regresses to the
 * baseline, while "all PEs as EIRs" wastes interposer links.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_eir_count: EIRs per group / MultiPort ports",
                "EquiNox (HPCA'20) Section 3.2.1 trade-off");

    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    double scale = cfg.getDouble("scale", 0.15);
    std::size_t nbench =
        static_cast<std::size_t>(cfg.getInt("benchmarks", 2));
    auto exec = [](const RunResult &r) { return r.execNs; };

    ExperimentConfig base;
    base.seed = seed;
    base.instScale = scale;
    base.workloads = workloadSubset(nbench);
    applySweepArgs(base, cfg);
    base.schemes = {"SeparateBase"}; // fixed: the ablation baseline
    base.jsonlPath.clear(); // per-point runners would clobber one file
    ExperimentRunner base_runner(base);
    double sep = schemeGeomean(base_runner.runMatrix(),
                               "SeparateBase", exec);

    std::printf("\nEquiNox group-size cap sweep (exec normalized to "
                "SeparateBase = 1.0):\n");
    std::printf("%10s %6s %8s %12s\n", "maxGroup", "eirs", "links",
                "exec");
    for (int cap : {1, 2, 3, 4, 6}) {
        DesignParams dp;
        dp.seed = seed;
        dp.maxPerGroup = cap;
        EquiNoxDesign design = buildEquiNoxDesign(dp);

        ExperimentConfig ec;
        ec.seed = seed;
        ec.instScale = scale;
        ec.workloads = workloadSubset(nbench);
        ec.tweak = [&](SystemConfig &sc) { sc.preDesign = &design; };
        applySweepArgs(ec, cfg);
        ec.schemes = {"EquiNox"};
        if (!ec.jsonlPath.empty())
            ec.jsonlPath += ".cap" + std::to_string(cap);
        ExperimentRunner runner(ec);
        double eq =
            schemeGeomean(runner.runMatrix(), "EquiNox", exec);
        std::printf("%10d %6d %8d %12.3f\n", cap, design.numEirs(),
                    static_cast<int>(design.plan.size()), eq / sep);
    }

    std::printf("\nMultiPort injection-port sweep (same metric):\n");
    std::printf("%10s %12s\n", "ports", "exec");
    for (int ports : {2, 4, 6}) {
        ExperimentConfig ec;
        ec.seed = seed;
        ec.instScale = scale;
        ec.workloads = workloadSubset(nbench);
        ec.tweak = [&](SystemConfig &sc) {
            sc.multiPortInjPorts = ports;
        };
        applySweepArgs(ec, cfg);
        ec.schemes = {"MultiPort"};
        if (!ec.jsonlPath.empty())
            ec.jsonlPath += ".ports" + std::to_string(ports);
        ExperimentRunner runner(ec);
        double mp =
            schemeGeomean(runner.runMatrix(), "MultiPort", exec);
        std::printf("%10d %12.3f\n", ports, mp / sep);
    }
    return 0;
}
