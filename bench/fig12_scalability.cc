/**
 * @file
 * Figure 12: scalability of EquiNox. The same N-Queen + MCTS flow is
 * run for 8x8, 12x12 and 16x16 networks and EquiNox's average-IPC
 * improvement over SeparateBase is reported. Paper: 1.23x (8x8),
 * 1.31x (12x12), 1.30x (16x16) — larger meshes suffer the injection
 * bottleneck more, so EquiNox helps at least as much.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig12_scalability: 8x8 / 12x12 / 16x16",
                "EquiNox (HPCA'20) Figure 12");

    // size= accepts a comma list (e.g. size=16,32); the topology
    // variants (scheme=SeparateBase,EquiNox-Torus or
    // SeparateBase,SeparateBase-CMesh) ride the shared scheme= arg —
    // the reply fabric is part of the scheme name, so extending the
    // scalability rows per topology needs no new simulator surface.
    std::vector<int> sizes = {8, 12, 16};
    if (cfg.has("size")) {
        sizes.clear();
        std::string spec = cfg.getString("size", "");
        std::size_t start = 0;
        while (start <= spec.size()) {
            std::size_t comma = spec.find(',', start);
            std::string tok = spec.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            if (!tok.empty())
                sizes.push_back(std::atoi(tok.c_str()));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        if (sizes.empty())
            eqx_fatal("size= needs at least one mesh side");
    }

    std::size_t nbench =
        static_cast<std::size_t>(cfg.getInt("benchmarks", 2));
    double paper[3] = {1.23, 1.31, 1.30};

    std::printf("\n%8s %14s %14s %10s %10s\n", "mesh", "SepBase IPC",
                "EquiNox IPC", "speedup", "paper");
    int idx = 0;
    for (int n : sizes) {
        ExperimentConfig ec;
        ec.width = ec.height = n;
        ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
        // Per-PE work is kept constant, so larger meshes carry more
        // total demand into the same 8 CBs — the intensifying
        // injection bottleneck the paper's scalability argument rests
        // on.
        ec.instScale = cfg.getDouble("scale", 0.15);
        ec.schemes = {"SeparateBase", "EquiNox"};
        ec.workloads = workloadSubset(nbench);
        ec.tweak = [](SystemConfig &sc) {
            sc.design.mcts.iterationsPerLevel = 300;
        };
        applySweepArgs(ec, cfg);
        // One journal per mesh size: the loop would otherwise reopen
        // (and truncate) the same file three times.
        SweepOptions so = parseFabricArgs(cfg);
        if (!so.journalPath.empty())
            so.journalPath += ".s" + std::to_string(n);
        auto cells = runMatrixOrSweep(ec, so);
        auto ipc = [](const RunResult &r) { return r.ipc; };
        // First scheme = baseline, last = variant: the default pair is
        // the paper's SeparateBase/EquiNox, and scheme= overrides
        // (e.g. topology variants) report their own speedup column.
        double sep = schemeGeomean(cells, ec.schemes.front(), ipc);
        double eq = schemeGeomean(cells, ec.schemes.back(), ipc);
        std::printf("%5dx%-3d %14.2f %14.2f %9.2fx %9.2fx\n", n, n, sep,
                    eq, eq / sep, idx < 3 ? paper[idx] : 0.0);
        ++idx;
    }
    std::printf("\n(EquiNox speedup should hold or grow with mesh "
                "size.)\n");
    return 0;
}
