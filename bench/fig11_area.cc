/**
 * @file
 * Figure 11: NoC area of the seven schemes (no simulation needed —
 * computed from the constructed hardware). Paper headlines: single
 * networks cheapest except Interposer-CMesh (extra 2x-port overlay
 * routers); MultiPort and EquiNox cost more than SeparateBase via the
 * extra ports, with EquiNox at +4.6% over SeparateBase.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/system.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig11_area: NoC area comparison",
                "EquiNox (HPCA'20) Figure 11");

    WorkloadProfile wp = workloadByName("kmeans");
    wp.instsPerPe = 8; // construction only; no run

    // The paper's seven by default; scheme= swaps in any registered
    // set (registry keys, e.g. scheme=SeparateBase,EquiNox-XY).
    std::vector<std::string> schemes = paperSchemeNames();
    if (cfg.has("scheme"))
        schemes = parseSchemeList(cfg.getString("scheme"));

    double single = 0, separate = 0, equinox = 0;
    std::printf("\n%-18s %10s %8s\n", "scheme", "area mm^2", "norm");
    std::vector<std::pair<std::string, double>> rows;
    for (const std::string &s : schemes) {
        SystemConfig sc;
        sc.schemeKey = s;
        sc.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
        System sys(sc, wp);
        double a = sys.areaMm2();
        rows.emplace_back(s, a);
        if (s == "SingleBase")
            single = a;
        if (s == "SeparateBase")
            separate = a;
        if (s == "EquiNox")
            equinox = a;
    }
    for (const auto &[s, a] : rows)
        std::printf("%-18s %10.2f %8.3f\n", s.c_str(), a,
                    single > 0 ? a / single : 0.0);

    if (separate > 0 && equinox > 0)
        std::printf("\nEquiNox die-area overhead vs SeparateBase "
                    "(paper: +4.6%%): %+.1f%%\n",
                    100.0 * (equinox / separate - 1.0));
    return 0;
}
