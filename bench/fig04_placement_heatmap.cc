/**
 * @file
 * Figure 4: heat maps of per-router average flit residence under
 * few-to-many reply traffic for the Top / Side / Diagonal / Diamond /
 * N-Queen CB placements, with the across-router variance the paper
 * reports under each sub-figure (N-Queen: 0.54, 35.7% below Diamond,
 * 96.7% below Top).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/nqueen.hh"
#include "core/placement.hh"
#include "sim/synthetic.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig04_placement_heatmap: CB placement heat maps",
                "EquiNox (HPCA'20) Figure 4");

    double rate = cfg.getDouble("rate", 0.22);
    Cycle measure = static_cast<Cycle>(cfg.getInt("cycles", 12000));
    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));

    struct Entry
    {
        const char *name;
        std::vector<Coord> cbs;
    };
    Rng rng(seed);
    std::vector<Entry> entries = {
        {"Top", makePlacement(PlacementKind::Top, 8, 8, 8)},
        {"Side", makePlacement(PlacementKind::Side, 8, 8, 8)},
        {"Diagonal", makePlacement(PlacementKind::Diagonal, 8, 8, 8)},
        {"Diamond", makePlacement(PlacementKind::Diamond, 8, 8, 8)},
        {"NQueen", bestNQueenPlacement(8, 8, rng).cbs},
    };

    double top_var = 0, diamond_var = 0, nq_var = 0;
    for (const auto &e : entries) {
        SyntheticParams sp;
        sp.cbs = e.cbs;
        sp.pattern = TrafficPattern::FewToMany;
        sp.injectionRate = rate;
        sp.warmupCycles = 2000;
        sp.measureCycles = measure;
        sp.seed = seed;
        SyntheticResult r = runSynthetic(sp);
        std::printf("\n%s placement (variance = %.2f, mean latency = "
                    "%.1f cycles, delivered = %llu)\n",
                    e.name, r.heatVariance, r.avgTotalLatency,
                    static_cast<unsigned long long>(r.delivered));
        std::printf("%s", placementAscii(e.cbs, 8, 8).c_str());
        std::printf("router residence heat map (cycles/flit):\n%s",
                    heatAscii(r.routerHeat, 8, 8).c_str());
        if (std::string(e.name) == "Top")
            top_var = r.heatVariance;
        if (std::string(e.name) == "Diamond")
            diamond_var = r.heatVariance;
        if (std::string(e.name) == "NQueen")
            nq_var = r.heatVariance;
    }

    std::printf("\npaper: N-Queen variance 35.7%% below Diamond, 96.7%% "
                "below Top\n");
    if (diamond_var > 0 && top_var > 0)
        std::printf("measured: %.1f%% below Diamond, %.1f%% below Top\n",
                    100.0 * (1.0 - nq_var / diamond_var),
                    100.0 * (1.0 - nq_var / top_var));
    return 0;
}
