/**
 * @file
 * Figure 9 (a)(b)(c): execution time, NoC energy and EDP for the seven
 * schemes across the benchmark suite, each normalized to SingleBase.
 * The paper's headline numbers: EquiNox cuts execution time by 47.7 %
 * vs SingleBase and 23.5 % vs SeparateBase, energy by 15.0 % / 18.9 %,
 * and EDP by 55.0 % / 32.8 %.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig09_performance: execution time / energy / EDP",
                "EquiNox (HPCA'20) Figure 9(a)(b)(c)");

    ExperimentConfig ec;
    ec.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    ec.instScale = cfg.getDouble("scale", 0.20);
    std::size_t nbench = static_cast<std::size_t>(
        cfg.getInt("benchmarks", 29));
    ec.workloads = workloadSubset(nbench);
    ec.verbose = cfg.getBool("verbose", false);
    applySweepArgs(ec, cfg);

    auto cells = runMatrixOrSweep(ec, cfg);

    if (cfg.has("csv"))
        writeCellsCsv(cells, cfg.getString("csv"));
    if (ec.collectMetrics)
        printMetricsDigest(cells, ec.schemes);

    printNormalizedTable(cells, ec.schemes, "Fig 9(a) execution time",
                         [](const RunResult &r) { return r.execNs; },
                         "SingleBase");
    printNormalizedTable(cells, ec.schemes, "Fig 9(b) NoC energy",
                         [](const RunResult &r) { return r.energyPj; },
                         "SingleBase");
    printNormalizedTable(cells, ec.schemes, "Fig 9(c) EDP",
                         [](const RunResult &r) { return r.edp; },
                         "SingleBase");

    // Paper headline ratios.
    auto exec = [](const RunResult &r) { return r.execNs; };
    auto energy = [](const RunResult &r) { return r.energyPj; };
    auto edp = [](const RunResult &r) { return r.edp; };
    double eq_t = schemeGeomean(cells, "EquiNox", exec);
    double sb_t = schemeGeomean(cells, "SingleBase", exec);
    double sp_t = schemeGeomean(cells, "SeparateBase", exec);
    double eq_e = schemeGeomean(cells, "EquiNox", energy);
    double sb_e = schemeGeomean(cells, "SingleBase", energy);
    double sp_e = schemeGeomean(cells, "SeparateBase", energy);
    double eq_d = schemeGeomean(cells, "EquiNox", edp);
    double sb_d = schemeGeomean(cells, "SingleBase", edp);
    double sp_d = schemeGeomean(cells, "SeparateBase", edp);

    std::printf("\nheadline reductions (paper -> measured)\n");
    std::printf("exec vs SingleBase  : 47.7%% -> %.1f%%\n",
                100.0 * (1.0 - eq_t / sb_t));
    std::printf("exec vs SeparateBase: 23.5%% -> %.1f%%\n",
                100.0 * (1.0 - eq_t / sp_t));
    std::printf("energy vs SingleBase  : 15.0%% -> %.1f%%\n",
                100.0 * (1.0 - eq_e / sb_e));
    std::printf("energy vs SeparateBase: 18.9%% -> %.1f%%\n",
                100.0 * (1.0 - eq_e / sp_e));
    std::printf("EDP vs SingleBase  : 55.0%% -> %.1f%%\n",
                100.0 * (1.0 - eq_d / sb_d));
    std::printf("EDP vs SeparateBase: 32.8%% -> %.1f%%\n",
                100.0 * (1.0 - eq_d / sp_d));
    return 0;
}
