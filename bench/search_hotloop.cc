/**
 * @file
 * Search hot-loop bench: times the EIR evaluation kernels the design
 * searches spend their wall clock in, before (from-scratch
 * EirEvaluator::evaluate) and after (EvalAccumulator O(changed-CB)
 * stepping with the contribution memo), and writes the comparison to
 * BENCH_search_hotloop.json. The CI perf-smoke job asserts the
 * incremental-step speedup floors from that file, so evaluation-path
 * regressions are visible per commit (DESIGN.md §15).
 *
 * Kernels, at the paper scale (8x8 mesh, 8 CBs) and at 16x16:
 *   eval_scratch    one from-scratch evaluate() of a full selection
 *   eval_incr_step  one annealing-shaped neighbour probe: clear one
 *                   CB's group, set a pooled alternative, score —
 *                   all through the accumulator
 *   mcts_search     one full MCTS run (all levels, default params),
 *                   reported as wall time and evaluations/second
 *
 * Arguments:
 *   out=<path>     output JSON (default BENCH_search_hotloop.json)
 *   min_time=<s>   minimum measured wall time per kernel (default 0.2)
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "core/eval_accumulator.hh"
#include "core/nqueen.hh"
#include "core/search.hh"

namespace eqx {
namespace {

using Clock = std::chrono::steady_clock;

/** Time @p fn until @p min_time seconds measured; ns per call. */
template <typename F>
double
timeKernel(F &&fn, double min_time)
{
    std::uint64_t iters = 0;
    double elapsed = 0;
    std::uint64_t batch = 16;
    while (elapsed < min_time) {
        auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < batch; ++i)
            fn();
        auto t1 = Clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();
        iters += batch;
        if (batch < (std::uint64_t{1} << 28))
            batch *= 2;
    }
    return elapsed * 1e9 / static_cast<double>(iters);
}

struct ScaleSetup
{
    int side = 0;
    EirProblem prob;
    EirSelection sel;                         ///< the probed selection
    std::vector<std::vector<std::vector<Coord>>> pools; ///< per-CB alts
};

ScaleSetup
makeSetup(int side, int num_cbs)
{
    Rng rng(7);
    auto placed = bestNQueenPlacement(side, num_cbs, rng);
    ScaleSetup s{side, EirProblem(side, side, placed.cbs), {}, {}};

    // A deterministic full selection, drawn the way the searches do.
    TileMask taken(side, side);
    for (int cb = 0; cb < s.prob.numCbs(); ++cb) {
        auto g = randomGroup(s.prob, cb, taken, rng);
        for (const auto &t : g)
            taken.add(t);
        s.sel.push_back(std::move(g));
    }

    // 64 pooled alternative groups per CB, each legal against the
    // OTHER CBs' tiles, so a probe never collides.
    s.pools.resize(s.sel.size());
    for (int cb = 0; cb < s.prob.numCbs(); ++cb) {
        TileMask others(side, side);
        for (int o = 0; o < s.prob.numCbs(); ++o) {
            if (o == cb)
                continue;
            for (const auto &t : s.sel[static_cast<std::size_t>(o)])
                others.add(t);
        }
        auto &pool = s.pools[static_cast<std::size_t>(cb)];
        for (int k = 0; k < 64; ++k)
            pool.push_back(randomGroup(s.prob, cb, others, rng));
    }
    return s;
}

/** From-scratch neighbour probe: mutate the vector, full evaluate. */
double
scratchKernel(ScaleSetup &s, double min_time, double &sink)
{
    EirEvaluator eval(&s.prob);
    EirSelection sel = s.sel;
    int cb = 0;
    std::size_t k = 0;
    bool in_alt = false;
    return timeKernel(
        [&] {
            auto idx = static_cast<std::size_t>(cb);
            if (!in_alt) {
                sel[idx] = s.pools[idx][k];
                in_alt = true;
            } else {
                sel[idx] = s.sel[idx];
                in_alt = false;
                cb = (cb + 1) % s.prob.numCbs();
                if (cb == 0)
                    k = (k + 1) % s.pools[0].size();
            }
            sink += eval.evaluate(sel).score;
        },
        min_time);
}

/** Accumulator neighbour probe: two setGroups + score per call. */
double
incrKernel(ScaleSetup &s, double min_time, double &sink)
{
    EirEvaluator eval(&s.prob);
    EvalAccumulator acc(&eval);
    for (int cb = 0; cb < s.prob.numCbs(); ++cb)
        acc.push(cb, s.sel[static_cast<std::size_t>(cb)]);
    int cb = 0;
    std::size_t k = 0;
    bool in_alt = false;
    return timeKernel(
        [&] {
            auto idx = static_cast<std::size_t>(cb);
            acc.setGroup(cb, {});
            if (!in_alt) {
                acc.setGroup(cb, s.pools[idx][k]);
                in_alt = true;
            } else {
                acc.setGroup(cb, s.sel[idx]);
                in_alt = false;
                cb = (cb + 1) % s.prob.numCbs();
                if (cb == 0)
                    k = (k + 1) % s.pools[0].size();
            }
            sink += acc.score();
        },
        min_time);
}

struct MctsResult
{
    double wallMs = 0;
    std::uint64_t evaluations = 0;
    double evalsPerSec = 0;
};

MctsResult
mctsKernel(ScaleSetup &s)
{
    EirEvaluator eval(&s.prob);
    auto t0 = Clock::now();
    SearchResult r = mctsSearch(s.prob, eval, {});
    auto t1 = Clock::now();
    MctsResult m;
    m.wallMs = std::chrono::duration<double>(t1 - t0).count() * 1e3;
    m.evaluations = r.evaluations;
    m.evalsPerSec =
        static_cast<double>(r.evaluations) / (m.wallMs / 1e3);
    return m;
}

} // namespace
} // namespace eqx

int
main(int argc, char **argv)
{
    using namespace eqx;
    Config cfg = parseBenchArgs(argc, argv);
    std::string out = cfg.getString("out", "BENCH_search_hotloop.json");
    double min_time = cfg.getDouble("min_time", 0.2);

    printHeader("search hot-loop before/after",
                "incremental EIR evaluation (DESIGN.md #15)");

    struct Row
    {
        std::string scale;
        double scratchNs = 0;
        double incrNs = 0;
        MctsResult mcts;
    };
    std::vector<Row> rows;
    double sink = 0;
    for (int side : {8, 16}) {
        ScaleSetup s = makeSetup(side, 8);
        Row r;
        r.scale = std::to_string(side) + "x" + std::to_string(side);
        r.scratchNs = scratchKernel(s, min_time, sink);
        r.incrNs = incrKernel(s, min_time, sink);
        r.mcts = mctsKernel(s);
        rows.push_back(std::move(r));
    }

    std::printf("%-10s %16s %16s %9s %12s %12s\n", "scale",
                "scratch ns/eval", "incr ns/step", "speedup",
                "mcts wall_ms", "mcts evals/s");
    for (const auto &r : rows)
        std::printf("%-10s %16.1f %16.1f %8.2fx %12.1f %12.0f\n",
                    r.scale.c_str(), r.scratchNs, r.incrNs,
                    r.scratchNs / r.incrNs, r.mcts.wallMs,
                    r.mcts.evalsPerSec);

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"search_hotloop\",\n  \"kernels\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        std::fprintf(f,
                     "    {\"name\": \"eval_step_%s\", "
                     "\"scratch_ns_per_eval\": %.3f, "
                     "\"incr_ns_per_step\": %.3f, "
                     "\"speedup\": %.3f, "
                     "\"incr_evals_per_second\": %.0f},\n",
                     r.scale.c_str(), r.scratchNs, r.incrNs,
                     r.scratchNs / r.incrNs, 1e9 / r.incrNs);
        std::fprintf(f,
                     "    {\"name\": \"mcts_search_%s\", "
                     "\"wall_ms\": %.1f, "
                     "\"evaluations\": %llu, "
                     "\"evals_per_second\": %.0f}%s\n",
                     r.scale.c_str(), r.mcts.wallMs,
                     static_cast<unsigned long long>(
                         r.mcts.evaluations),
                     r.mcts.evalsPerSec,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    if (sink == -1)
        std::printf("%f\n", sink); // keep the kernels un-elided
    return 0;
}
