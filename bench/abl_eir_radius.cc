/**
 * @file
 * Ablation for Section 4.3's 2-hop claim: sweep the EIR distance
 * window (candidates within maxHops of the CB) and measure both the
 * design metrics and full-system execution time. The paper observes
 * that 2-hop EIRs bypass the DAZ/CAZ hot zone and that longer links
 * buy nothing while requiring repeaters.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_eir_radius: EIR distance window sweep",
                "EquiNox (HPCA'20) Section 4.3 (2-hop observation)");

    std::uint64_t seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    double scale = cfg.getDouble("scale", 0.15);
    std::size_t nbench =
        static_cast<std::size_t>(cfg.getInt("benchmarks", 2));

    // Baseline: SeparateBase execution time.
    ExperimentConfig base;
    base.seed = seed;
    base.instScale = scale;
    base.workloads = workloadSubset(nbench);
    applySweepArgs(base, cfg);
    base.schemes = {"SeparateBase"}; // fixed: the ablation baseline
    base.jsonlPath.clear(); // per-point runners would clobber one file
    ExperimentRunner base_runner(base);
    auto base_cells = base_runner.runMatrix();
    auto exec = [](const RunResult &r) { return r.execNs; };
    double sep = schemeGeomean(base_cells, "SeparateBase", exec);

    std::printf("\n%8s %6s %7s %7s %9s %11s %13s\n", "maxHops", "eirs",
                "cross", "maxSpan", "repeater", "exec vs Sep",
                "designScore");
    for (int radius : {2, 3, 4}) {
        DesignParams dp;
        dp.seed = seed;
        dp.maxHops = radius;
        EquiNoxDesign design = buildEquiNoxDesign(dp);

        ExperimentConfig ec;
        ec.seed = seed;
        ec.instScale = scale;
        ec.workloads = workloadSubset(nbench);
        ec.tweak = [&](SystemConfig &sc) { sc.preDesign = &design; };
        applySweepArgs(ec, cfg);
        ec.schemes = {"EquiNox"};
        if (!ec.jsonlPath.empty())
            ec.jsonlPath += ".hops" + std::to_string(radius);
        ExperimentRunner runner(ec);
        auto cells = runner.runMatrix();
        double eq = schemeGeomean(cells, "EquiNox", exec);

        std::printf("%8d %6d %7d %7d %9s %10.3f %13.3f\n", radius,
                    design.numEirs(), design.rdl.crossings,
                    design.rdl.maxHops,
                    design.rdl.needsRepeaters ? "yes" : "no", eq / sep,
                    design.eval.score);
    }
    std::printf("\n(the 2-hop window should match or beat larger "
                "windows, without repeaters)\n");
    return 0;
}
