/**
 * @file
 * google-benchmark micro-kernels for the performance-critical pieces:
 * router pipeline stages, whole-network cycles, NI dispatch, cache
 * and MSHR operations, N-Queen enumeration, crossing counting and the
 * MCTS evaluation function. These guard the simulator's own speed
 * (BookSim-class models live or die by their inner loops).
 */

#include <benchmark/benchmark.h>

#include "core/eval_accumulator.hh"
#include "core/evaluation.hh"
#include "core/nqueen.hh"
#include "core/search.hh"
#include "gpu/tag_array.hh"
#include "noc/network.hh"
#include "noc/topology.hh"
#include "sim/synthetic.hh"

namespace eqx {
namespace {

void
runNetworkCycleIdle(benchmark::State &state, bool exhaustive)
{
    NetworkSpec spec;
    spec.params.width = spec.params.height =
        static_cast<int>(state.range(0));
    spec.params.exhaustiveTick = exhaustive;
    Network net(spec);
    Cycle clock = 0;
    for (auto _ : state)
        net.coreTick(++clock);
    state.SetItemsProcessed(state.iterations() *
                            spec.params.numNodes());
}

void
BM_NetworkCycleIdle(benchmark::State &state)
{
    runNetworkCycleIdle(state, /*exhaustive=*/false);
}
BENCHMARK(BM_NetworkCycleIdle)->Arg(8)->Arg(16);

/** The pre-activity-scheduler loop, kept as the before/after baseline. */
void
BM_NetworkCycleIdleExhaustive(benchmark::State &state)
{
    runNetworkCycleIdle(state, /*exhaustive=*/true);
}
BENCHMARK(BM_NetworkCycleIdleExhaustive)->Arg(8)->Arg(16);

void
runNetworkCycleLoaded(benchmark::State &state, bool exhaustive)
{
    NetworkSpec spec;
    spec.params.width = spec.params.height = 8;
    spec.params.exhaustiveTick = exhaustive;
    Network net(spec);
    Rng rng(1);
    Cycle clock = 0;
    for (auto _ : state) {
        // Keep ~uniform random traffic flowing at a moderate rate.
        for (NodeId n = 0; n < 64; ++n) {
            if (!rng.chance(0.05))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(64));
            if (d != n)
                net.inject(n,
                           makePacket(PacketType::ReadReply, n, d, 640));
        }
        net.coreTick(++clock);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

void
BM_NetworkCycleLoaded(benchmark::State &state)
{
    runNetworkCycleLoaded(state, /*exhaustive=*/false);
}
BENCHMARK(BM_NetworkCycleLoaded);

void
BM_NetworkCycleLoadedExhaustive(benchmark::State &state)
{
    runNetworkCycleLoaded(state, /*exhaustive=*/true);
}
BENCHMARK(BM_NetworkCycleLoadedExhaustive);

void
BM_MinimalDirections(benchmark::State &state)
{
    // The RC-stage candidate computation with the fixed-capacity
    // RouteCandidates type: no heap traffic per route compute.
    Mesh2D topo(16, 16);
    Rng rng(7);
    std::vector<std::pair<Coord, Coord>> pairs;
    for (int i = 0; i < 256; ++i)
        pairs.push_back({topo.coord(rng.nextBounded(256)),
                         topo.coord(rng.nextBounded(256))});
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[cur, dst] = pairs[i++ & 255];
        benchmark::DoNotOptimize(topo.minimalRouterDirs(cur, dst));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinimalDirections);

/**
 * The pre-refactor shape of the same computation — a std::vector<Dir>
 * built per route compute — kept as the before/after delta the
 * RouteCandidates extraction is measured against.
 */
void
BM_MinimalDirectionsHeapVector(benchmark::State &state)
{
    Mesh2D topo(16, 16);
    Rng rng(7);
    std::vector<std::pair<Coord, Coord>> pairs;
    for (int i = 0; i < 256; ++i)
        pairs.push_back({topo.coord(rng.nextBounded(256)),
                         topo.coord(rng.nextBounded(256))});
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &[cur, dst] = pairs[i++ & 255];
        std::vector<Dir> dirs;
        if (dst.x != cur.x)
            dirs.push_back(dst.x > cur.x ? Dir::East : Dir::West);
        if (dst.y != cur.y)
            dirs.push_back(dst.y > cur.y ? Dir::South : Dir::North);
        benchmark::DoNotOptimize(dirs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinimalDirectionsHeapVector);

void
BM_SyntheticFewToMany(benchmark::State &state)
{
    for (auto _ : state) {
        SyntheticParams sp;
        sp.cbs = {{2, 0}, {5, 1}, {1, 2}, {4, 3},
                  {7, 4}, {0, 5}, {6, 6}, {3, 7}};
        sp.injectionRate = 0.05;
        sp.warmupCycles = 100;
        sp.measureCycles = 500;
        sp.drainCycles = 2000;
        benchmark::DoNotOptimize(runSynthetic(sp));
    }
}
BENCHMARK(BM_SyntheticFewToMany)->Unit(benchmark::kMillisecond);

void
BM_TagArrayProbe(benchmark::State &state)
{
    TagArray tags(CacheGeometry{2 * 1024 * 1024, 64, 16});
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        if (!tags.contains(i))
            tags.insert(static_cast<Addr>(i), false);
    for (auto _ : state) {
        Addr line = rng.nextBounded(20000);
        bool hit = tags.probe(line);
        if (!hit && !tags.contains(line))
            tags.insert(line, false);
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_TagArrayProbe);

void
BM_NQueenEnumerate8(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(solveNQueens(8, 1000000));
}
BENCHMARK(BM_NQueenEnumerate8)->Unit(benchmark::kMicrosecond);

void
BM_CrossingCount(benchmark::State &state)
{
    Rng rng(5);
    std::vector<Segment> segs;
    for (int i = 0; i < 24; ++i) {
        Coord a{static_cast<int>(rng.nextBounded(8)),
                static_cast<int>(rng.nextBounded(8))};
        Coord b{static_cast<int>(rng.nextBounded(8)),
                static_cast<int>(rng.nextBounded(8))};
        if (a == b)
            b.x = (b.x + 1) % 8;
        segs.push_back({a, b});
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(countCrossings(segs));
}
BENCHMARK(BM_CrossingCount);

void
BM_EirEvaluation(benchmark::State &state)
{
    Rng rng(1);
    auto cbs = bestNQueenPlacement(8, 8, rng).cbs;
    EirProblem prob(8, 8, cbs, 3, 4);
    EirEvaluator eval(&prob);
    EirSelection sel;
    for (int cb = 0; cb < prob.numCbs(); ++cb) {
        std::vector<Coord> taken;
        for (const auto &g : sel)
            taken.insert(taken.end(), g.begin(), g.end());
        sel.push_back(randomGroup(prob, cb, taken, rng));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.evaluate(sel));
}
BENCHMARK(BM_EirEvaluation);

void
BM_EirEvalIncrementalStep(benchmark::State &state)
{
    Rng rng(1);
    auto cbs = bestNQueenPlacement(8, 8, rng).cbs;
    EirProblem prob(8, 8, cbs, 3, 4);
    EirEvaluator eval(&prob);
    EvalAccumulator acc(&eval);
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        acc.push(cb, randomGroup(prob, cb, acc.takenMask(), rng));
    // One annealing-shaped neighbour probe: clear a CB's group, set an
    // alternative, score (bit-identical to a from-scratch evaluate).
    std::vector<Coord> alt;
    int cb = 0;
    for (auto _ : state) {
        std::vector<Coord> old = acc.group(cb);
        acc.setGroup(cb, {});
        acc.setGroup(cb, alt);
        benchmark::DoNotOptimize(acc.score());
        alt = std::move(old);
        cb = (cb + 1) % prob.numCbs();
    }
}
BENCHMARK(BM_EirEvalIncrementalStep);

void
BM_MctsLevel(benchmark::State &state)
{
    Rng rng(1);
    auto cbs = bestNQueenPlacement(8, 8, rng).cbs;
    EirProblem prob(8, 8, cbs, 3, 4);
    EirEvaluator eval(&prob);
    MctsParams mp;
    mp.iterationsPerLevel = 50;
    for (auto _ : state)
        benchmark::DoNotOptimize(mctsSearch(prob, eval, mp));
}
BENCHMARK(BM_MctsLevel)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace eqx

BENCHMARK_MAIN();
