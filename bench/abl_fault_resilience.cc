/**
 * @file
 * Fault-resilience campaign (DESIGN.md §11): sweeps fault rate x
 * fault-kind set over SeparateBase and EquiNox, then injects one
 * permanent EIR-link kill to exercise EquiNox's injection-port
 * fail-over. Reports delivered-throughput ratio, retransmission rate
 * and p99 latency under faults per (scheme, point).
 *
 * mode=grid      (default) fault_rate sweep with transient kinds,
 *                followed by the EIR-kill point
 * mode=transient one transient-only point at fault_rate (CI asserts
 *                exact-once delivery on its JSONL)
 * mode=eirkill   one permanent interposer-link kill on the reply
 *                network (CI asserts degraded-but-complete delivery)
 *
 * Extra knobs: the shared sweep + fault arguments (bench_util.hh),
 * plus kill_tick=<n> for the eirkill arming time.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace eqx;

namespace {

void
printPoint(const char *label, const std::vector<std::string> &schemes,
           const std::vector<CellResult> &cells)
{
    for (const std::string &s : schemes) {
        std::uint64_t seq = 0, del = 0, retx = 0, lost = 0, worms = 0;
        int masked = 0, n = 0;
        double p99 = 0;
        bool completed = true;
        for (const auto &c : cells) {
            if (c.scheme != s)
                continue;
            const RunResult &r = c.result;
            seq += r.faultSeqPackets;
            del += r.faultDelivered;
            retx += r.faultRetx;
            lost += r.faultLost;
            worms += r.faultWormsDropped;
            masked = std::max(masked, r.faultMaskedPorts);
            p99 += r.repP99Ns;
            completed &= r.completed;
            ++n;
        }
        double dr = seq ? static_cast<double>(del) /
                              static_cast<double>(seq)
                        : 1.0;
        double rr = seq ? static_cast<double>(retx) /
                              static_cast<double>(seq)
                        : 0.0;
        std::printf("%-14s %-14s %9.6f %9.6f %8llu %6llu %6d %10.2f"
                    " %4s\n",
                    label, s.c_str(), dr, rr,
                    static_cast<unsigned long long>(worms),
                    static_cast<unsigned long long>(lost), masked,
                    n ? p99 / n : 0.0, completed ? "yes" : "NO");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("abl_fault_resilience: NoC fault injection + recovery",
                "EquiNox (HPCA'20) injection redundancy, DESIGN.md §11");

    std::uint64_t seed =
        static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    double scale = cfg.getDouble("scale", 0.1);
    std::size_t nbench =
        static_cast<std::size_t>(cfg.getInt("benchmarks", 2));
    std::string mode = cfg.getString("mode", "grid");
    Cycle kill_tick = static_cast<Cycle>(cfg.getInt("kill_tick", 500));
    std::string jsonl_base = cfg.getString("jsonl", "");

    std::vector<std::string> schemes = {"SeparateBase", "EquiNox"};
    if (cfg.has("scheme"))
        schemes = parseSchemeList(cfg.getString("scheme"));

    auto runPoint = [&](const char *label, const FaultConfig &fc,
                        const std::string &jsonl_suffix) {
        ExperimentConfig ec;
        ec.seed = seed;
        ec.instScale = scale;
        ec.workloads = workloadSubset(nbench);
        applySweepArgs(ec, cfg);
        ec.schemes = schemes;
        ec.fault = fc;
        // A permanently faulted run must still terminate promptly.
        ec.tweak = [](SystemConfig &sc) { sc.maxCycles = 400'000; };
        if (!jsonl_base.empty())
            ec.jsonlPath = jsonl_base + jsonl_suffix;
        else
            ec.jsonlPath.clear();
        ExperimentRunner runner(ec);
        printPoint(label, schemes, runner.runMatrix());
    };

    FaultConfig base;
    applyFaultArgs(base, cfg);

    std::printf("\n%-14s %-14s %9s %9s %8s %6s %6s %10s %4s\n",
                "point", "scheme", "deliv", "retx/pkt", "worms",
                "lost", "masked", "p99_ns", "done");

    if (mode == "transient") {
        FaultConfig fc = base;
        if (fc.ratePerKTick <= 0)
            fc.ratePerKTick = 4;
        fc.kinds = kTransientFaultKinds;
        runPoint("transient", fc, "");
        return 0;
    }
    if (mode == "eirkill") {
        FaultConfig fc = base;
        fc.ratePerKTick = 0;
        FaultEvent kill;
        kill.tick = kill_tick;
        kill.kind = FaultKind::PermanentLinkKill;
        kill.wire = FaultEvent::kAnyInterposerWire;
        kill.net = "reply";
        fc.events.push_back(kill);
        runPoint("eir-kill", fc, "");
        return 0;
    }

    // Default grid: transient-rate sweep, then the EIR-kill point.
    for (double rate : {1.0, 4.0, 16.0}) {
        FaultConfig fc = base;
        fc.ratePerKTick = rate;
        fc.kinds = kTransientFaultKinds;
        char label[32];
        std::snprintf(label, sizeof(label), "rate=%g", rate);
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), ".r%g", rate);
        runPoint(label, fc, suffix);
    }
    {
        FaultConfig fc = base;
        fc.ratePerKTick = 0;
        FaultEvent kill;
        kill.tick = kill_tick;
        kill.kind = FaultKind::PermanentLinkKill;
        kill.wire = FaultEvent::kAnyInterposerWire;
        kill.net = "reply";
        fc.events.push_back(kill);
        runPoint("eir-kill", fc, ".eirkill");
    }
    return 0;
}
