/**
 * @file
 * Figures 6/7 / Section 4.3: the MCTS EIR search. Runs the full
 * design flow on 8x8 and prints the found design with the attributes
 * the paper highlights: EIRs two hops from their CBs (bypassing the
 * DAZ/CAZ hot zone), zero RDL crossings (one metal layer), and links
 * within the 1-cycle interposer reach; plus the searched fraction of
 * the design space.
 *
 * Arguments (besides the shared seed= / iters=):
 *   jsonl=<path>  one JSON record for the run; every field except
 *                 wall_ms is deterministic for a given seed
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "core/design_flow.hh"
#include "core/hotzone.hh"

using namespace eqx;

int
main(int argc, char **argv)
{
    Config cfg = parseBenchArgs(argc, argv);
    printHeader("fig07_mcts_eir: MCTS-selected EIR groups",
                "EquiNox (HPCA'20) Figures 6 and 7");

    DesignParams dp;
    dp.seed = static_cast<std::uint64_t>(cfg.getInt("seed", 1));
    dp.mcts.iterationsPerLevel =
        static_cast<int>(cfg.getInt("iters", 600));
    auto t0 = std::chrono::steady_clock::now();
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    auto t1 = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double>(t1 - t0).count() * 1e3;

    std::printf("placement penalty: %d\n", d.placementPenalty);
    std::printf("design (CBs upper case, their EIRs lower case):\n%s\n",
                d.ascii().c_str());

    int h2 = 0, h3 = 0, bypass = 0, total = 0;
    HotZoneMap hot(d.cbs, d.width, d.height);
    for (std::size_t i = 0; i < d.eirGroups.size(); ++i) {
        for (const auto &e : d.eirGroups[i]) {
            ++total;
            int h = manhattan(d.cbs[i], e);
            if (h == 2)
                ++h2;
            else
                ++h3;
            if (chebyshev(d.cbs[i], e) > 1)
                ++bypass;
        }
    }
    std::printf("EIRs: %d total (%d at exactly 2 hops, %d at 3 hops)\n",
                total, h2, h3);
    std::printf("all EIRs bypass their CB's DAZ/CAZ hot zone: %s\n",
                bypass == total ? "yes" : "NO");
    std::printf("RDL crossings: %d (paper: 0)  metal layers: %d "
                "(paper: 1)\n",
                d.rdl.crossings, d.rdl.layersNeeded);
    std::printf("max link span: %d hops -> repeaters needed: %s "
                "(paper: no, 2-hop links fit one cycle)\n",
                d.rdl.maxHops, d.rdl.needsRepeaters ? "yes" : "no");
    std::printf("evaluation: maxLoad=%.1f avgHops=%.2f score=%.3f\n",
                d.eval.maxLoad, d.eval.avgHops, d.eval.score);

    // Search-space coverage (paper: 1.7e10 combinations for 8x8 within
    // 3 hops; MCTS assessed 0.047% of its space).
    EirProblem prob(d.width, d.height, d.cbs, 3, 4);
    double space = 1.0;
    for (int i = 0; i < prob.numCbs(); ++i)
        space *= static_cast<double>(prob.groupsFor(i, {}).size());
    std::printf("\ndesign space (product of per-CB group counts): "
                "%.3g combinations\n",
                space);
    std::printf("evaluation-function invocations: %llu (%.3g%% of the "
                "space)\n",
                static_cast<unsigned long long>(d.evaluations),
                100.0 * static_cast<double>(d.evaluations) / space);

    std::printf("\nper-CB groups:\n");
    for (std::size_t i = 0; i < d.eirGroups.size(); ++i) {
        std::printf("  CB%zu (%d,%d):", i, d.cbs[i].x, d.cbs[i].y);
        for (const auto &e : d.eirGroups[i])
            std::printf(" (%d,%d)", e.x, e.y);
        std::printf("\n");
    }

    std::string jsonl = cfg.getString("jsonl", "");
    if (!jsonl.empty()) {
        std::FILE *f = std::fopen(jsonl.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         jsonl.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\"bench\": \"fig07_mcts_eir\", \"seed\": %llu, "
            "\"placement_penalty\": %d, \"eirs\": %d, "
            "\"crossings\": %d, \"metal_layers\": %d, "
            "\"max_link_hops\": %d, \"max_load\": %.3f, "
            "\"avg_hops\": %.6f, \"score\": %.6f, "
            "\"evaluations\": %llu, \"wall_ms\": %.1f}\n",
            static_cast<unsigned long long>(dp.seed),
            d.placementPenalty, total, d.rdl.crossings,
            d.rdl.layersNeeded, d.rdl.maxHops, d.eval.maxLoad,
            d.eval.avgHops, d.eval.score,
            static_cast<unsigned long long>(d.evaluations), wall_ms);
        std::fclose(f);
        std::printf("wrote %s\n", jsonl.c_str());
    }
    return 0;
}
