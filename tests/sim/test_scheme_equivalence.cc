/**
 * @file
 * Enum-vs-name construction equivalence: a System built through the
 * legacy SystemConfig::scheme enum and one built through the
 * SystemConfig::schemeKey registry string must be the same machine —
 * identical exported statistics (every router, NI, buffer and
 * activity counter) for all seven paper schemes.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "schemes/scheme_registry.hh"
#include "sim/system.hh"

namespace eqx {
namespace {

WorkloadProfile
tiny()
{
    WorkloadProfile wp = workloadByName("kmeans");
    wp.instsPerPe = 250;
    return wp;
}

SystemConfig
base()
{
    SystemConfig sc;
    sc.maxCycles = 300000;
    // keep the in-system EquiNox design flow cheap
    sc.design.mcts.iterationsPerLevel = 80;
    sc.design.polishPasses = 1;
    return sc;
}

RunResult
runCollected(System &sys)
{
    RunResult r = sys.run();
    r.metrics.reset();
    for (int i = 0; i < sys.numNetworks(); ++i)
        sys.network(i).exportStats(r.metrics,
                                   sys.network(i).params().name);
    return r;
}

TEST(SchemeEquivalence, EnumAndNameBuildsExportIdenticalStats)
{
    // Share one design so the two EquiNox builds (and the test) stay
    // cheap; both construction paths then deploy the identical map.
    DesignParams dp;
    dp.mcts.iterationsPerLevel = 80;
    dp.polishPasses = 1;
    EquiNoxDesign design = buildEquiNoxDesign(dp);

    for (Scheme s :
         {Scheme::SingleBase, Scheme::VcMono, Scheme::InterposerCMesh,
          Scheme::SeparateBase, Scheme::Da2Mesh, Scheme::MultiPort,
          Scheme::EquiNox}) {
        const SchemeModel &model = SchemeRegistry::instance().byEnum(s);

        SystemConfig via_enum = base();
        via_enum.scheme = s;
        if (model.usesEquiNoxDesign())
            via_enum.preDesign = &design;

        SystemConfig via_name = base();
        via_name.schemeKey = model.name();
        if (model.usesEquiNoxDesign())
            via_name.preDesign = &design;

        System se(via_enum, tiny());
        System sn(via_name, tiny());
        ASSERT_EQ(&se.schemeModel(), &sn.schemeModel()) << model.name();

        RunResult re = runCollected(se);
        RunResult rn = runCollected(sn);
        ASSERT_TRUE(re.completed) << model.name();
        EXPECT_EQ(re.cycles, rn.cycles) << model.name();
        EXPECT_EQ(re.totalInsts, rn.totalInsts) << model.name();
        EXPECT_EQ(re.energyPj, rn.energyPj) << model.name();
        EXPECT_EQ(re.areaMm2, rn.areaMm2) << model.name();
        EXPECT_EQ(re.maxEirLoadPackets, rn.maxEirLoadPackets)
            << model.name();
        // The full snapshot: every exported per-component statistic.
        EXPECT_EQ(re.metrics.all(), rn.metrics.all()) << model.name();
    }
}

TEST(SchemeEquivalence, SchemeKeyOverridesEnum)
{
    // When both are set, the registry key wins: the enum default
    // (SingleBase) must not leak through.
    SystemConfig sc = base();
    sc.scheme = Scheme::SingleBase;
    sc.schemeKey = "SeparateBase";
    System sys(sc, tiny());
    EXPECT_STREQ(sys.schemeModel().name(), "SeparateBase");
    EXPECT_EQ(sys.numNetworks(), 2);
}

TEST(SchemeEquivalence, RegistryOnlyVariantBuildsWithoutEnum)
{
    // EquiNox-XY exists only as a registry entry; a System still
    // builds and runs it through schemeKey alone.
    DesignParams dp;
    dp.mcts.iterationsPerLevel = 80;
    dp.polishPasses = 1;
    EquiNoxDesign design = buildEquiNoxDesign(dp);

    SystemConfig sc = base();
    sc.schemeKey = "equinox-xy"; // alias form, case-insensitive
    sc.preDesign = &design;
    System sys(sc, tiny());
    EXPECT_STREQ(sys.schemeModel().name(), "EquiNox-XY");
    EXPECT_EQ(sys.numNetworks(), 2);
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.maxEirLoadPackets, 0u);
}

} // namespace
} // namespace eqx
