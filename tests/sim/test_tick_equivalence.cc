/**
 * @file
 * Scheme-level equivalence of the activity-driven NoC scheduler
 * (DESIGN.md §10) against the exhaustive fallback loop: identical
 * JSONL cell records (modulo host wall-clock) and identical metric
 * snapshots, including warmup-reset and the EquiNox EIR groups.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/experiment.hh"

namespace eqx {
namespace {

/**
 * cellJsonRecord minus the "wall_ms" field — host wall-clock time is
 * the one value that legitimately differs between any two runs.
 */
std::string
stripWallMs(std::string json)
{
    auto pos = json.find("\"wall_ms\":");
    if (pos == std::string::npos)
        return json;
    auto end = json.find_first_of(",}", pos);
    if (end != std::string::npos && json[end] == ',')
        ++end; // swallow the trailing separator
    else if (pos > 0 && json[pos - 1] == ',')
        --pos; // last field: swallow the preceding comma instead
    json.erase(pos, end - pos);
    return json;
}

void
expectCellsIdentical(const std::vector<CellResult> &a,
                     const std::vector<CellResult> &e)
{
    ASSERT_EQ(a.size(), e.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(stripWallMs(cellJsonRecord(a[i])),
                  stripWallMs(cellJsonRecord(e[i])))
            << a[i].benchmark << "/" << a[i].scheme;
    }
}

/**
 * Baseline schemes (adaptive routing, vcMono, multi-port) with warmup
 * reset and the full metric snapshot riding in each record, so the
 * string comparison is a digest over every exported statistic.
 */
ExperimentConfig
baselineMatrix(bool exhaustive)
{
    ExperimentConfig ec;
    ec.workloads = workloadSubset(2);
    ec.instScale = 0.04;
    ec.schemes = {"SingleBase", "VC-Mono", "MultiPort"};
    ec.collectMetrics = true;
    ec.warmupCycles = 20;
    ec.tweak = [exhaustive](SystemConfig &sc) {
        sc.exhaustiveNocTick = exhaustive;
    };
    return ec;
}

TEST(TickEquivalence, BaselineSchemesJsonlRecordsIdentical)
{
    ExperimentRunner act(baselineMatrix(false));
    ExperimentRunner exh(baselineMatrix(true));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    expectCellsIdentical(ca, ce);
}

ExperimentConfig
equinoxCell(bool exhaustive)
{
    ExperimentConfig ec;
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.04;
    ec.schemes = {"EquiNox"};
    ec.collectMetrics = true;
    ec.warmupCycles = 20;
    ec.tweak = [exhaustive](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.design.polishPasses = 1;
        sc.exhaustiveNocTick = exhaustive;
    };
    return ec;
}

TEST(TickEquivalence, EquiNoxEirGroupsJsonlRecordIdentical)
{
    // EquiNox routes reply traffic through remote-injection EIR
    // groups: exercises the interposer wires and multi-buffer CB NIs
    // under both tick schedulers.
    ExperimentRunner act(equinoxCell(false));
    ExperimentRunner exh(equinoxCell(true));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    ASSERT_EQ(ca.size(), 1u);
    ASSERT_TRUE(ca[0].result.completed);
    expectCellsIdentical(ca, ce);
    // The snapshot rode along (metric digest, not just scalars).
    EXPECT_NE(cellJsonRecord(ca[0]).find("\"m.reply.act.link_flits\":"),
              std::string::npos);
}

/**
 * Loaded 16x16: constant per-PE work on 256 PEs drives the same 8 CBs,
 * so the request path saturates — the regime the SoA router hot path
 * and the global time wheel (timeSkip defaults on for the adaptive
 * run; the exhaustive oracle suppresses it) must not perturb.
 */
ExperimentConfig
loaded16Matrix(bool exhaustive, bool fault_armed)
{
    ExperimentConfig ec;
    ec.width = ec.height = 16;
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.03;
    ec.schemes = {"SeparateBase"};
    ec.collectMetrics = true;
    ec.warmupCycles = 20;
    if (fault_armed) {
        ec.fault.ratePerKTick = 4.0;
        ec.fault.seed = 3;
    }
    ec.tweak = [exhaustive](SystemConfig &sc) {
        sc.exhaustiveNocTick = exhaustive;
    };
    return ec;
}

TEST(TickEquivalence, Loaded16x16JsonlRecordsIdentical)
{
    ExperimentRunner act(loaded16Matrix(false, false));
    ExperimentRunner exh(loaded16Matrix(true, false));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    ASSERT_EQ(ca.size(), 1u);
    ASSERT_TRUE(ca[0].result.completed);
    expectCellsIdentical(ca, ce);
}

/**
 * Wrap-fabric variants (DESIGN.md §17): the reply network is a
 * dateline-VC torus or a concentrated mesh. Both tick schedulers must
 * stay bit-identical when wrap links (and, for CMesh, slot-indexed
 * concentrated ejection) are in play.
 */
ExperimentConfig
topoVariantCell(const char *scheme, bool exhaustive)
{
    ExperimentConfig ec;
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.04;
    ec.schemes = {scheme};
    ec.collectMetrics = true;
    ec.warmupCycles = 20;
    ec.tweak = [exhaustive](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.design.polishPasses = 1;
        sc.exhaustiveNocTick = exhaustive;
    };
    return ec;
}

TEST(TickEquivalence, TorusReplyFabricJsonlRecordIdentical)
{
    ExperimentRunner act(topoVariantCell("EquiNox-Torus", false));
    ExperimentRunner exh(topoVariantCell("EquiNox-Torus", true));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    ASSERT_EQ(ca.size(), 1u);
    ASSERT_TRUE(ca[0].result.completed);
    expectCellsIdentical(ca, ce);
}

TEST(TickEquivalence, CmeshReplyFabricJsonlRecordIdentical)
{
    ExperimentRunner act(topoVariantCell("SeparateBase-CMesh", false));
    ExperimentRunner exh(topoVariantCell("SeparateBase-CMesh", true));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    ASSERT_EQ(ca.size(), 1u);
    ASSERT_TRUE(ca[0].result.completed);
    expectCellsIdentical(ca, ce);
}

TEST(TickEquivalence, Loaded16x16FaultArmedJsonlRecordsIdentical)
{
    // Fault-armed: the plane ticks every cycle (skip suppressed), the
    // retransmission machinery adds traffic, and the fault.* metric
    // block rides in the record — all must still match exactly.
    ExperimentRunner act(loaded16Matrix(false, true));
    ExperimentRunner exh(loaded16Matrix(true, true));
    auto ca = act.runMatrix();
    auto ce = exh.runMatrix();
    ASSERT_EQ(ca.size(), 1u);
    ASSERT_TRUE(ca[0].result.completed);
    EXPECT_TRUE(ca[0].result.faultArmed);
    expectCellsIdentical(ca, ce);
}

} // namespace
} // namespace eqx
