/** @file Cross-scheme behavioural shape (paper Figs. 9 and 10). */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace eqx {
namespace {

/**
 * One shared mini-matrix over the suite's most bandwidth-hungry
 * benchmark. Built lazily once per process; the assertions are grouped
 * into a few TESTs so ctest's per-test processes do not each pay the
 * full simulation cost.
 */
const std::vector<CellResult> &
cells()
{
    static const std::vector<CellResult> kCells = [] {
        ExperimentConfig ec;
        ec.workloads = {workloadByName("kmeans")};
        ec.instScale = 0.15;
        ec.tweak = [](SystemConfig &sc) {
            sc.design.mcts.iterationsPerLevel = 150;
        };
        ExperimentRunner runner(ec);
        return runner.runMatrix();
    }();
    return kCells;
}

const RunResult &
result(Scheme s)
{
    for (const auto &c : cells())
        if (c.scheme == schemeName(s))
            return c.result;
    throw std::logic_error("scheme missing");
}

TEST(SchemeShape, PerformanceOrdering)
{
    // Everyone finishes.
    for (const auto &c : cells())
        ASSERT_TRUE(c.result.completed) << c.scheme;

    // Fig 9(a): separate networks beat the shared network...
    EXPECT_LT(result(Scheme::SeparateBase).execNs,
              result(Scheme::SingleBase).execNs);

    // ...VC-Mono is a slight win over SingleBase (paper: ~3.6%)...
    EXPECT_LE(result(Scheme::VcMono).execNs,
              result(Scheme::SingleBase).execNs * 1.02);

    // ...and EquiNox is the fastest scheme overall, by a solid margin
    // over SeparateBase (paper: 23.5%).
    double eq = result(Scheme::EquiNox).execNs;
    for (Scheme s :
         {Scheme::SingleBase, Scheme::VcMono, Scheme::InterposerCMesh,
          Scheme::SeparateBase, Scheme::Da2Mesh})
        EXPECT_LT(eq, result(s).execNs) << schemeName(s);
    EXPECT_LT(eq, result(Scheme::SeparateBase).execNs * 0.95);
}

TEST(SchemeShape, LatencyDecomposition)
{
    // Fig 10's parking-lot effect: congestion lives at reply injection
    // but surfaces as request latency.
    for (Scheme s : {Scheme::SingleBase, Scheme::SeparateBase}) {
        const RunResult &r = result(s);
        EXPECT_GT(r.reqQueueNs + r.reqNetNs, r.repQueueNs + r.repNetNs)
            << schemeName(s);
    }

    // EquiNox relieves both the reply queueing and, through the
    // released backpressure, the request latency.
    const RunResult &eq = result(Scheme::EquiNox);
    const RunResult &sep = result(Scheme::SeparateBase);
    EXPECT_LT(eq.repQueueNs, sep.repQueueNs);
    EXPECT_LT(eq.reqQueueNs + eq.reqNetNs,
              sep.reqQueueNs + sep.reqNetNs);
}

TEST(SchemeShape, EnergyAndEdp)
{
    // Fig 9(b): two physical networks burn more energy than one;
    // EquiNox claws it back through its shorter runtime.
    EXPECT_GT(result(Scheme::SeparateBase).energyPj,
              result(Scheme::SingleBase).energyPj * 0.95);
    EXPECT_LT(result(Scheme::EquiNox).energyPj,
              result(Scheme::SeparateBase).energyPj);

    // Fig 9(c): EquiNox has the best EDP among separate-type schemes.
    double eq = result(Scheme::EquiNox).edp;
    EXPECT_LT(eq, result(Scheme::SeparateBase).edp);
    EXPECT_LT(eq, result(Scheme::Da2Mesh).edp);
}

} // namespace
} // namespace eqx
