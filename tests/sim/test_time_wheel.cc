/**
 * @file
 * Global time wheel (DESIGN.md §14): TimeWheel mechanics, the
 * network's next-due / skip-to arithmetic, and the system-level
 * oracle — a run that fast-forwards over dead cycles must produce a
 * bit-identical RunResult to one that steps every cycle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/time_wheel.hh"
#include "fault/fault_model.hh"
#include "sim/system.hh"

namespace eqx {
namespace {

TEST(TimeWheel, EmptyEpochReportsNever)
{
    TimeWheel w;
    w.beginEpoch(100);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.nextDue(), kNeverCycle);
    w.post(kNeverCycle); // no-op by contract
    EXPECT_TRUE(w.empty());
}

TEST(TimeWheel, NearHorizonKeepsMinimum)
{
    TimeWheel w;
    w.beginEpoch(1000);
    w.post(1040);
    w.post(1003);
    w.post(1064); // exactly now + kHorizon: still near
    EXPECT_EQ(w.nextDue(), 1003u);
}

TEST(TimeWheel, FarPostsFallBackToMinimum)
{
    TimeWheel w;
    w.beginEpoch(50);
    w.post(50 + TimeWheel::kHorizon + 200);
    w.post(50 + TimeWheel::kHorizon + 7);
    EXPECT_EQ(w.nextDue(), 50 + TimeWheel::kHorizon + 7);
    // A near post beats any far post.
    w.post(52);
    EXPECT_EQ(w.nextDue(), 52u);
}

TEST(TimeWheel, BeginEpochDropsPriorPosts)
{
    TimeWheel w;
    w.beginEpoch(0);
    w.post(5);
    w.beginEpoch(10);
    EXPECT_EQ(w.nextDue(), kNeverCycle);
    EXPECT_EQ(w.epoch(), 10u);
}

/** Network skipTo must advance ticks exactly as stepped cycles do. */
TEST(TimeWheel, NetworkSkipMatchesSteppedTickCount)
{
    // Two networks with a 2.5x clock ratio (ticks alternate 3/2), one
    // stepped cycle by cycle, one fast-forwarded in one jump.
    auto make = [] {
        NetworkSpec spec;
        spec.params.width = 4;
        spec.params.height = 4;
        spec.params.ticksEvenCycle = 3;
        spec.params.ticksOddCycle = 2;
        return std::make_unique<Network>(spec);
    };
    auto stepped = make(), skipped = make();
    for (Cycle c = 1; c <= 37; ++c)
        stepped->coreTick(c);
    skipped->skipTo(37);
    EXPECT_EQ(stepped->currentTick(), skipped->currentTick());
    EXPECT_EQ(skipped->nextDueCycle(37), kNeverCycle); // idle, drained
}

WorkloadProfile
wheelWorkload()
{
    WorkloadProfile wp = workloadByName("kmeans");
    wp.instsPerPe = 400;
    return wp;
}

SystemConfig
wheelConfig(bool skip)
{
    SystemConfig sc;
    sc.scheme = Scheme::SeparateBase;
    sc.maxCycles = 300000;
    sc.warmupCycles = 50;
    sc.collectMetrics = true;
    sc.timeSkip = skip;
    // Memory-bound shape: a tiny latency-tolerance window makes every
    // PE spend most cycles window-stalled on DRAM, so the run has real
    // dead time for the wheel to skip.
    sc.pe.maxOutstanding = 2;
    sc.pe.l1 = CacheGeometry{1024, 64, 2};
    return sc;
}

/** Flatten the scalar fields + full metric snapshot to one string. */
std::string
digest(const RunResult &r)
{
    std::ostringstream os;
    os << r.completed << ' ' << r.cycles << ' ' << r.totalInsts << ' '
       << r.ipc << ' ' << r.energyPj << ' ' << r.reqQueueNs << ' '
       << r.reqNetNs << ' ' << r.repQueueNs << ' ' << r.repNetNs << ' '
       << r.reqPackets << ' ' << r.repPackets << ' ' << r.reqP99Ns
       << ' ' << r.repP99Ns << '\n';
    for (const auto &[k, v] : r.metrics.all())
        os << k << '=' << v << '\n';
    return os.str();
}

TEST(TimeWheel, SkippingRunIsBitIdenticalToSteppedRun)
{
    System fast(wheelConfig(true), wheelWorkload());
    System slow(wheelConfig(false), wheelWorkload());
    RunResult rf = fast.run();
    RunResult rs = slow.run();
    ASSERT_TRUE(rf.completed);
    EXPECT_EQ(digest(rf), digest(rs));
    // The workload leaves real dead time (DRAM waits, drain tail):
    // the wheel must actually have skipped some of it.
    EXPECT_GT(fast.cyclesSkipped(), 0u);
    EXPECT_EQ(slow.cyclesSkipped(), 0u);
}

TEST(TimeWheel, SkipSuppressedWhileFaultPlaneArmed)
{
    SystemConfig sc = wheelConfig(true);
    sc.fault.ratePerKTick = 8;
    sc.fault.kinds = kTransientFaultKinds;
    sc.fault.horizonTicks = 50'000;
    System sys(sc, wheelWorkload());
    RunResult r = sys.run();
    EXPECT_TRUE(r.faultArmed);
    EXPECT_EQ(sys.cyclesSkipped(), 0u);
}

} // namespace
} // namespace eqx
