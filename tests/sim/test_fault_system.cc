/**
 * @file
 * System- and experiment-level fault injection (DESIGN.md §11): the
 * transient-only exactly-once audit, prompt cancellation of a run that
 * can never drain, and worker-count-independent determinism of a
 * faulted sweep including its JSONL export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace eqx {
namespace {

WorkloadProfile
tiny(const char *name = "kmeans", std::uint64_t insts = 400)
{
    WorkloadProfile wp = workloadByName(name);
    wp.instsPerPe = insts;
    return wp;
}

TEST(FaultSystem, TransientOnlyDeliversEveryPacketExactlyOnce)
{
    SystemConfig sc;
    sc.scheme = Scheme::SeparateBase;
    sc.maxCycles = 400'000;
    sc.fault.ratePerKTick = 16;
    sc.fault.kinds = kTransientFaultKinds;
    sc.fault.horizonTicks = 400'000;

    System sys(sc, tiny());
    RunResult r = sys.run();
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.faultArmed);

    // The sequence audit: every packet that entered the protocol was
    // delivered, none were declared lost, and the worms the faults
    // destroyed were all recovered by retransmission.
    EXPECT_GT(r.faultSeqPackets, 0u);
    EXPECT_EQ(r.faultDelivered, r.faultSeqPackets);
    EXPECT_EQ(r.faultLost, 0u);
    EXPECT_GT(r.faultWormsDropped, 0u);
    EXPECT_GE(r.faultRetx, r.faultWormsDropped);
    // Credit reconciliation kept the books balanced.
    EXPECT_EQ(r.faultCreditsReconciled, r.faultFlitsDropped);
    // Transient faults never mask ports.
    EXPECT_EQ(r.faultMaskedPorts, 0);
    EXPECT_FALSE(r.degraded);
}

TEST(FaultSystem, CancelTokenStopsAnUndeliverableRunPromptly)
{
    // Kill node 0's injection wire on both networks at tick 1 with
    // unlimited retransmissions: some packet retries forever, so the
    // run can only end through the cancel token (maxCycles is set far
    // beyond what the test could ever simulate).
    SystemConfig sc;
    sc.scheme = Scheme::SeparateBase;
    sc.maxCycles = 2'000'000'000;
    FaultEvent kill;
    kill.tick = 1;
    kill.kind = FaultKind::PermanentLinkKill;
    kill.wire = -1;
    kill.ni = 0;
    kill.buf = 0;
    sc.fault.events.push_back(kill);
    sc.fault.retxTimeout = 64;

    CancelToken token;
    sc.cancel = &token;
    System sys(sc, tiny());
    std::thread canceller([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        token.cancel();
    });
    RunResult r = sys.run();
    canceller.join();

    EXPECT_TRUE(sys.cancelled());
    EXPECT_FALSE(r.completed);
    EXPECT_TRUE(r.faultArmed);
}

/** Field-by-field equality, fault columns included (==, no tolerance). */
bool
sameFaultedResult(const RunResult &a, const RunResult &b)
{
    return a.completed == b.completed && a.cycles == b.cycles &&
           a.execNs == b.execNs && a.totalInsts == b.totalInsts &&
           a.ipc == b.ipc && a.energyPj == b.energyPj &&
           a.reqPackets == b.reqPackets &&
           a.repPackets == b.repPackets &&
           a.faultArmed == b.faultArmed && a.degraded == b.degraded &&
           a.faultSeqPackets == b.faultSeqPackets &&
           a.faultDelivered == b.faultDelivered &&
           a.faultDuplicates == b.faultDuplicates &&
           a.faultRetx == b.faultRetx && a.faultLost == b.faultLost &&
           a.faultWormsDropped == b.faultWormsDropped &&
           a.faultFlitsDropped == b.faultFlitsDropped &&
           a.faultCreditsReconciled == b.faultCreditsReconciled &&
           a.faultMaskedPorts == b.faultMaskedPorts;
}

std::vector<std::string>
sortedJsonlModuloWall(const std::string &path)
{
    // wall_ms is wall-clock measurement noise, the one legitimately
    // nondeterministic column; everything else must be byte-identical.
    static const std::regex wall("\"wall_ms\":[^,}]*,?");
    std::vector<std::string> lines;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(std::regex_replace(line, wall, ""));
    std::sort(lines.begin(), lines.end());
    return lines;
}

TEST(FaultSystem, FaultedSweepBitIdenticalAcrossWorkerCounts)
{
    auto makeConfig = [](int workers, const std::string &jsonl) {
        ExperimentConfig ec;
        ec.workloads = workloadSubset(2);
        ec.instScale = 0.04;
        ec.schemes = {"SeparateBase", "MultiPort"};
        ec.workers = workers;
        ec.jsonlPath = jsonl;
        ec.fault.ratePerKTick = 8;
        ec.fault.kinds = kTransientFaultKinds;
        ec.fault.horizonTicks = 50'000;
        return ec;
    };
    std::string p1 = ::testing::TempDir() + "eqx_fault_w1.jsonl";
    std::string pn = ::testing::TempDir() + "eqx_fault_wn.jsonl";
    ExperimentRunner r1(makeConfig(1, p1)), rn(makeConfig(6, pn));
    auto c1 = r1.runMatrix();
    auto cn = rn.runMatrix();

    ASSERT_EQ(c1.size(), 4u);
    ASSERT_EQ(cn.size(), c1.size());
    std::uint64_t drops = 0;
    for (std::size_t i = 0; i < c1.size(); ++i) {
        EXPECT_EQ(c1[i].scheme, cn[i].scheme) << i;
        EXPECT_EQ(c1[i].benchmark, cn[i].benchmark) << i;
        EXPECT_TRUE(sameFaultedResult(c1[i].result, cn[i].result))
            << c1[i].benchmark << "/" << c1[i].scheme;
        drops += c1[i].result.faultWormsDropped;
    }
    // The schedule fired, so this compared real recovery activity.
    EXPECT_GT(drops, 0u);

    // The exported JSONL (the artifact campaigns actually consume) is
    // identical too, up to record order, which is completion order.
    auto l1 = sortedJsonlModuloWall(p1);
    auto ln = sortedJsonlModuloWall(pn);
    EXPECT_EQ(l1, ln);
    EXPECT_EQ(l1.size(), 4u);
    std::remove(p1.c_str());
    std::remove(pn.c_str());
}

} // namespace
} // namespace eqx
