/** @file System construction and run-result consistency. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/system.hh"

namespace eqx {
namespace {

WorkloadProfile
tiny(const char *name = "kmeans", std::uint64_t insts = 200)
{
    WorkloadProfile wp = workloadByName(name);
    wp.instsPerPe = insts;
    return wp;
}

SystemConfig
cfg(Scheme s)
{
    SystemConfig sc;
    sc.scheme = s;
    sc.maxCycles = 300000;
    // keep in-system design flow cheap for tests
    sc.design.mcts.iterationsPerLevel = 120;
    sc.design.polishPasses = 2;
    return sc;
}

TEST(System, StructureCountsPerScheme)
{
    struct Case
    {
        Scheme s;
        int nets;
    };
    for (Case c : {Case{Scheme::SingleBase, 1}, Case{Scheme::VcMono, 1},
                   Case{Scheme::InterposerCMesh, 2},
                   Case{Scheme::SeparateBase, 2},
                   Case{Scheme::Da2Mesh, 9}, Case{Scheme::MultiPort, 2},
                   Case{Scheme::EquiNox, 2}}) {
        System sys(cfg(c.s), tiny());
        EXPECT_EQ(sys.numNetworks(), c.nets) << schemeName(c.s);
        EXPECT_EQ(sys.numPes(), 56) << schemeName(c.s);
        EXPECT_EQ(sys.numCacheBanks(), 8) << schemeName(c.s);
    }
}

TEST(System, AreaOrderingsMatchPaperFig11)
{
    auto area = [](Scheme s) {
        System sys(cfg(s), tiny());
        return sys.areaMm2();
    };
    double single = area(Scheme::SingleBase);
    double separate = area(Scheme::SeparateBase);
    double cmesh = area(Scheme::InterposerCMesh);
    double multi = area(Scheme::MultiPort);
    double equinox = area(Scheme::EquiNox);
    double da2 = area(Scheme::Da2Mesh);

    EXPECT_GT(separate, single);     // two networks cost more
    EXPECT_GT(cmesh, single);        // extra 2x-port overlay routers
    EXPECT_GT(multi, separate);      // extra CB ports
    EXPECT_GT(equinox, separate);    // EIR ports + split NI
    // Narrow subnets stay comparable. (Deviation from paper Fig. 11:
    // our model charges per-subnet allocator/NI overheads, landing
    // DA2Mesh slightly above SeparateBase instead of slightly below.)
    EXPECT_LT(da2, separate * 1.40);
    // Paper: EquiNox costs ~4.6% over SeparateBase - small, not 2x.
    EXPECT_LT(equinox, separate * 1.20);
}

TEST(System, EquiNoxUsesProvidedDesign)
{
    DesignParams dp;
    dp.mcts.iterationsPerLevel = 120;
    dp.polishPasses = 2;
    EquiNoxDesign design = buildEquiNoxDesign(dp);
    SystemConfig sc = cfg(Scheme::EquiNox);
    sc.preDesign = &design;
    System sys(sc, tiny());
    EXPECT_EQ(sys.design(), &design);
    EXPECT_EQ(sys.cbPlacement(), design.cbs);
    // Reply network carries the EIR remote ports.
    EXPECT_EQ(sys.network(1).numRemoteInjPorts(), design.numEirs());
}

TEST(System, RunResultInternallyConsistent)
{
    System sys(cfg(Scheme::SeparateBase), tiny());
    RunResult r = sys.run();
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_NEAR(r.execNs, static_cast<double>(r.cycles) / 1.126, 1.0);
    EXPECT_GT(r.totalInsts, 0u);
    EXPECT_NEAR(r.ipc,
                static_cast<double>(r.totalInsts) /
                    static_cast<double>(r.cycles),
                1e-9);
    EXPECT_GT(r.energyPj, 0.0);
    EXPECT_NEAR(r.edp, r.energyPj * r.execNs, r.edp * 1e-9);
    // Conservation: every request produced exactly one reply.
    EXPECT_EQ(r.reqPackets, r.repPackets);
    EXPECT_GT(r.reqPackets, 0u);
}

TEST(System, ReplyTrafficDominatesBits)
{
    // Paper Section 2.2: replies are ~72.7% of NoC bits.
    System sys(cfg(Scheme::SeparateBase), tiny("kmeans", 400));
    RunResult r = sys.run();
    double frac = static_cast<double>(r.replyBits) /
                  static_cast<double>(r.requestBits + r.replyBits);
    EXPECT_GT(frac, 0.60);
    EXPECT_LT(frac, 0.85);
}

TEST(System, StepAdvancesOneCycle)
{
    System sys(cfg(Scheme::SingleBase), tiny());
    EXPECT_EQ(sys.now(), 0u);
    sys.step();
    sys.step();
    EXPECT_EQ(sys.now(), 2u);
    EXPECT_FALSE(sys.finished());
}

TEST(System, ComputeBoundWorkloadBarelyTouchesNoc)
{
    System mem_sys(cfg(Scheme::SeparateBase), tiny("kmeans", 300));
    System alu_sys(cfg(Scheme::SeparateBase), tiny("myocyte", 300));
    RunResult rm = mem_sys.run();
    RunResult ra = alu_sys.run();
    EXPECT_LT(static_cast<double>(ra.reqPackets),
              static_cast<double>(rm.reqPackets) * 0.5);
}

TEST(System, WarmupOnlyTrafficYieldsZeroMeasuredPackets)
{
    // Learn how long the run takes, then replay it with the warmup
    // boundary past the drain point: every packet then ejects during
    // warmup and the measured stats must be empty.
    SystemConfig sc = cfg(Scheme::SeparateBase);
    System ref(sc, tiny());
    RunResult rr = ref.run();
    ASSERT_TRUE(rr.completed);
    ASSERT_GT(rr.reqPackets, 0u);

    sc.warmupCycles = rr.cycles + 10;
    System sys(sc, tiny());
    // step() keeps advancing past drain, so drive it by hand up to the
    // warmup boundary (which triggers the stats reset)...
    while (sys.now() < sc.warmupCycles)
        sys.step();
    // ...then run() finds the system already drained and just collects.
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.reqPackets, 0u);
    EXPECT_EQ(r.repPackets, 0u);
    EXPECT_EQ(r.requestBits, 0u);
    EXPECT_EQ(r.replyBits, 0u);
    EXPECT_DOUBLE_EQ(r.reqP99Ns, 0.0);
    EXPECT_DOUBLE_EQ(r.repQueueNs, 0.0);
}

TEST(System, WarmupExcludesEarlyPacketsButNotBehaviour)
{
    SystemConfig sc = cfg(Scheme::SeparateBase);
    System base_sys(sc, tiny());
    RunResult base = base_sys.run();
    ASSERT_TRUE(base.completed);

    // Measure only the second half of the run: the simulation itself
    // (cycles, instructions) is untouched; the packet accounting
    // shrinks by whatever ejected during warmup.
    sc.warmupCycles = base.cycles / 2;
    System warm_sys(sc, tiny());
    RunResult warm = warm_sys.run();
    EXPECT_TRUE(warm.completed);
    EXPECT_EQ(warm.cycles, base.cycles);
    EXPECT_EQ(warm.totalInsts, base.totalInsts);
    EXPECT_GT(warm.reqPackets, 0u);
    EXPECT_LT(warm.reqPackets, base.reqPackets);
}

TEST(System, MaxEirLoadEqualsMaxOverBufferCounters)
{
    SystemConfig sc = cfg(Scheme::EquiNox);
    sc.collectMetrics = true;
    System sys(sc, tiny());
    RunResult r = sys.run();
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.maxEirLoadPackets, 0u);

    // Acceptance check: the headline max-EIR load is exactly the max
    // over the per-buffer counters of the reply network, both read
    // directly from the NIs and through the exported snapshot.
    std::uint64_t direct = 0;
    const Network &rep = sys.network(1);
    for (NodeId n = 0; n < rep.topology().numNodes(); ++n) {
        const NetworkInterface &ni = rep.ni(n);
        for (int b = 0; b < ni.numInjBuffers(); ++b)
            direct = std::max(direct, ni.injBuffer(b).packetsInjected);
    }
    EXPECT_EQ(r.maxEirLoadPackets, direct);

    double exported = 0;
    for (const auto &[key, val] : r.metrics.all()) {
        if (key.compare(0, 9, "reply.ni.") != 0)
            continue;
        if (key.size() < 8 ||
            key.compare(key.size() - 8, 8, ".packets") != 0)
            continue;
        exported = std::max(exported, val);
    }
    EXPECT_DOUBLE_EQ(exported,
                     static_cast<double>(r.maxEirLoadPackets));
}

TEST(System, MetricsSnapshotOptIn)
{
    SystemConfig sc = cfg(Scheme::SeparateBase);
    System off(sc, tiny());
    EXPECT_TRUE(off.run().metrics.all().empty());

    sc.collectMetrics = true;
    System on(sc, tiny());
    RunResult r = on.run();
    EXPECT_FALSE(r.metrics.all().empty());
    // Both networks export under their own prefix.
    EXPECT_GT(r.metrics.get("request.act.link_flits"), 0.0);
    EXPECT_GT(r.metrics.get("reply.act.link_flits"), 0.0);
    EXPECT_GT(r.metrics.get("reply.lat.rep.p95"), 0.0);
}

TEST(System, DeterministicAcrossRuns)
{
    SystemConfig sc = cfg(Scheme::SeparateBase);
    System a(sc, tiny());
    System b(sc, tiny());
    RunResult ra = a.run();
    RunResult rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.reqPackets, rb.reqPackets);
    EXPECT_DOUBLE_EQ(ra.energyPj, rb.energyPj);
}

} // namespace
} // namespace eqx
