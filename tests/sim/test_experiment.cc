/** @file Experiment runner: caching, tweaks, matrix shape. */

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "sim/experiment.hh"

namespace eqx {
namespace {

ExperimentConfig
quick()
{
    ExperimentConfig ec;
    ec.workloads = workloadSubset(2);
    ec.instScale = 0.05;
    ec.schemes = {"SingleBase", "EquiNox"};
    ec.tweak = [](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.design.polishPasses = 1;
    };
    return ec;
}

TEST(Experiment, MatrixCoversSchemesTimesWorkloads)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    EXPECT_EQ(cells.size(), 4u);
    for (const auto &c : cells)
        EXPECT_TRUE(c.result.completed)
            << c.scheme << "/" << c.benchmark;
}

TEST(Experiment, EquiNoxDesignCachedAcrossRuns)
{
    ExperimentRunner runner(quick());
    const EquiNoxDesign &a = runner.equinoxDesign();
    const EquiNoxDesign &b = runner.equinoxDesign();
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.numEirs(), 0);
}

TEST(Experiment, TweakPinnedDesignWins)
{
    // An ablation that pins its own design must not be overridden by
    // the runner's cached one.
    DesignParams dp;
    dp.maxPerGroup = 1;
    dp.mcts.iterationsPerLevel = 80;
    dp.polishPasses = 1;
    EquiNoxDesign own = buildEquiNoxDesign(dp);

    ExperimentConfig ec = quick();
    ec.schemes = {"EquiNox"};
    ec.tweak = [&](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.preDesign = &own;
    };
    ExperimentRunner runner(ec);
    WorkloadProfile wp = workloadSubset(1)[0];
    wp.instsPerPe = 80;
    // Build one system through the same path runOne uses.
    RunResult r = runner.runOne("EquiNox", wp);
    EXPECT_TRUE(r.completed);
    // The pinned 1-EIR-per-CB design has at most 8 EIRs: its cached
    // runner design (unpinned) would have far more remote ports, so
    // verify via a direct System construction that the pin holds.
    SystemConfig sc;
    sc.schemeKey = "EquiNox";
    sc.preDesign = &own;
    System sys(sc, wp);
    EXPECT_LE(sys.network(1).numRemoteInjPorts(), 8);
}

TEST(Experiment, InstScaleShrinksWork)
{
    ExperimentConfig big = quick();
    big.schemes = {"SingleBase"};
    big.instScale = 0.10;
    ExperimentConfig small = big;
    small.instScale = 0.05;
    ExperimentRunner rb(big), rs(small);
    auto cb = rb.runMatrix();
    auto cs = rs.runMatrix();
    EXPECT_GT(cb[0].result.totalInsts, cs[0].result.totalInsts);
}

TEST(Experiment, CsvExportRoundTrips)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    std::string path = ::testing::TempDir() + "eqx_cells.csv";
    writeCellsCsv(cells, path);
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[512];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_NE(std::string(line).find("benchmark,scheme"),
              std::string::npos);
    int rows = 0;
    while (std::fgets(line, sizeof(line), f))
        ++rows;
    std::fclose(f);
    EXPECT_EQ(rows, static_cast<int>(cells.size()));
    std::remove(path.c_str());
}

TEST(Experiment, CsvExportBadPathIsFatal)
{
    EXPECT_THROW(writeCellsCsv({}, "/nonexistent_dir_xyz/out.csv"),
                 std::runtime_error);
}

bool
sameRunResult(const RunResult &a, const RunResult &b)
{
    // Bit-for-bit: every field compared with ==, no tolerance.
    return a.completed == b.completed && a.cycles == b.cycles &&
           a.execNs == b.execNs && a.totalInsts == b.totalInsts &&
           a.ipc == b.ipc && a.energyPj == b.energyPj &&
           a.energy.buffer == b.energy.buffer &&
           a.energy.crossbar == b.energy.crossbar &&
           a.energy.allocators == b.energy.allocators &&
           a.energy.links == b.energy.links &&
           a.energy.interposerLinks == b.energy.interposerLinks &&
           a.energy.leakage == b.energy.leakage && a.edp == b.edp &&
           a.areaMm2 == b.areaMm2 && a.reqQueueNs == b.reqQueueNs &&
           a.reqNetNs == b.reqNetNs && a.repQueueNs == b.repQueueNs &&
           a.repNetNs == b.repNetNs && a.reqPackets == b.reqPackets &&
           a.repPackets == b.repPackets &&
           a.requestBits == b.requestBits && a.replyBits == b.replyBits;
}

ExperimentConfig
smallMatrix()
{
    // A 4x4 matrix (4 schemes x 4 workloads) that avoids the
    // expensive EquiNox design flow — determinism of the pool is
    // what's under test, not the design search.
    ExperimentConfig ec;
    ec.workloads = workloadSubset(4);
    ec.instScale = 0.04;
    ec.schemes = {"SingleBase", "VC-Mono", "SeparateBase",
                  "MultiPort"};
    return ec;
}

TEST(Experiment, ParallelMatrixBitIdenticalToSerial)
{
    ExperimentConfig serial = smallMatrix();
    serial.workers = 1;
    ExperimentConfig parallel = smallMatrix();
    parallel.workers = 8;

    ExperimentRunner rs(serial), rp(parallel);
    auto cs = rs.runMatrix();
    auto cp = rp.runMatrix();

    ASSERT_EQ(cs.size(), 16u);
    ASSERT_EQ(cp.size(), cs.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
        EXPECT_EQ(cs[i].scheme, cp[i].scheme) << i;
        EXPECT_EQ(cs[i].benchmark, cp[i].benchmark) << i;
        EXPECT_TRUE(sameRunResult(cs[i].result, cp[i].result))
            << cs[i].benchmark << "/" << cs[i].scheme;
    }
}

TEST(Experiment, DecorrelatedSeedsChangeResultsDeterministically)
{
    ExperimentConfig base = smallMatrix();
    base.workloads = workloadSubset(1);
    base.schemes = {"SingleBase"};

    ExperimentConfig dec = base;
    dec.decorrelateSeeds = true;
    dec.workers = 4;
    ExperimentConfig dec_serial = base;
    dec_serial.decorrelateSeeds = true;

    ExperimentRunner rb(base), rd(dec), rds(dec_serial);
    auto cb = rb.runMatrix();
    auto cd = rd.runMatrix();
    auto cds = rds.runMatrix();
    // A different stream seed gives a different (but still
    // deterministic and worker-count-independent) run.
    EXPECT_FALSE(sameRunResult(cb[0].result, cd[0].result));
    EXPECT_TRUE(sameRunResult(cd[0].result, cds[0].result));
}

TEST(Experiment, TimedOutCellReportedNotFatal)
{
    ExperimentConfig ec = smallMatrix();
    ec.workloads = workloadSubset(1);
    ec.schemes = {"SingleBase"};
    ec.instScale = 50.0;       // far too much work for the timeout
    ec.jobTimeoutSec = 0.05;
    ec.jobRetries = 1;
    ec.workers = 2;
    ExperimentRunner runner(ec);
    auto cells = runner.runMatrix();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].failed);
    EXPECT_FALSE(cells[0].result.completed);
    EXPECT_EQ(cells[0].attempts, 2);
}

TEST(Experiment, JsonlStreamsOneRecordPerCell)
{
    std::string path = ::testing::TempDir() + "eqx_cells.jsonl";
    ExperimentConfig ec = smallMatrix();
    ec.workloads = workloadSubset(2);
    ec.schemes = {"SingleBase", "SeparateBase"};
    ec.workers = 4;
    ec.jsonlPath = path;
    ExperimentRunner runner(ec);
    auto cells = runner.runMatrix();

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[2048];
    int rows = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++rows;
        std::string s(line);
        EXPECT_EQ(s.front(), '{');
        EXPECT_NE(s.find("\"benchmark\":"), std::string::npos);
        EXPECT_NE(s.find("\"cycles\":"), std::string::npos);
        EXPECT_NE(s.find("\"reply_bits\":"), std::string::npos);
    }
    std::fclose(f);
    EXPECT_EQ(rows, static_cast<int>(cells.size()));
    std::remove(path.c_str());
}

TEST(Experiment, JsonlCarriesMetricsWhenEnabled)
{
    std::string path = ::testing::TempDir() + "eqx_metrics.jsonl";
    ExperimentConfig ec = quick();
    ec.workloads = workloadSubset(1);
    ec.schemes = {"EquiNox"};
    ec.collectMetrics = true;
    ec.warmupCycles = 10;
    ec.jsonlPath = path;
    ExperimentRunner runner(ec);
    auto cells = runner.runMatrix();
    ASSERT_EQ(cells.size(), 1u);
    ASSERT_TRUE(cells[0].result.completed);

    // Metrics lines run to tens of kilobytes: read whole lines.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    int rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        EXPECT_NE(line.find("\"req_p50_ns\":"), std::string::npos);
        EXPECT_NE(line.find("\"rep_p99_ns\":"), std::string::npos);
        EXPECT_NE(line.find("\"max_eir_load\":"), std::string::npos);
        // Snapshot keys ride along under the "m." prefix.
        EXPECT_NE(line.find("\"m.reply.act.link_flits\":"),
                  std::string::npos);
        EXPECT_NE(line.find("\"m.reply.router.0.flits\":"),
                  std::string::npos);
        EXPECT_NE(line.find(".buf0.packets\":"), std::string::npos);
    }
    in.close();
    EXPECT_EQ(rows, 1);
    std::remove(path.c_str());
}

TEST(Experiment, MetricsOffKeepsJsonlLean)
{
    std::string path = ::testing::TempDir() + "eqx_lean.jsonl";
    ExperimentConfig ec = smallMatrix();
    ec.workloads = workloadSubset(1);
    ec.schemes = {"SingleBase"};
    ec.jsonlPath = path;
    ExperimentRunner runner(ec);
    runner.runMatrix();

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
    // Scalar percentile columns are always present; the bulky "m."
    // snapshot only appears with collectMetrics.
    EXPECT_NE(line.find("\"req_p50_ns\":"), std::string::npos);
    EXPECT_EQ(line.find("\"m."), std::string::npos);
    in.close();
    std::remove(path.c_str());
}

TEST(Experiment, CellJsonRecordSchema)
{
    CellResult c;
    c.scheme = "EquiNox";
    c.benchmark = "bfs";
    c.result.completed = true;
    c.result.cycles = 1234;
    c.result.ipc = 0.5;
    std::string json = cellJsonRecord(c);
    EXPECT_NE(json.find("\"scheme\":\"EquiNox\""), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\":\"bfs\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"completed\":true"), std::string::npos);
    EXPECT_NE(json.find("\"failed\":false"), std::string::npos);
}

TEST(Experiment, GeomeanHelper)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    double g = schemeGeomean(cells, "SingleBase",
                             [](const RunResult &r) { return r.execNs; });
    EXPECT_GT(g, 0.0);
}

} // namespace
} // namespace eqx
