/** @file Experiment runner: caching, tweaks, matrix shape. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace eqx {
namespace {

ExperimentConfig
quick()
{
    ExperimentConfig ec;
    ec.workloads = workloadSubset(2);
    ec.instScale = 0.05;
    ec.schemes = {Scheme::SingleBase, Scheme::EquiNox};
    ec.tweak = [](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.design.polishPasses = 1;
    };
    return ec;
}

TEST(Experiment, MatrixCoversSchemesTimesWorkloads)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    EXPECT_EQ(cells.size(), 4u);
    for (const auto &c : cells)
        EXPECT_TRUE(c.result.completed)
            << schemeName(c.scheme) << "/" << c.benchmark;
}

TEST(Experiment, EquiNoxDesignCachedAcrossRuns)
{
    ExperimentRunner runner(quick());
    const EquiNoxDesign &a = runner.equinoxDesign();
    const EquiNoxDesign &b = runner.equinoxDesign();
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.numEirs(), 0);
}

TEST(Experiment, TweakPinnedDesignWins)
{
    // An ablation that pins its own design must not be overridden by
    // the runner's cached one.
    DesignParams dp;
    dp.maxPerGroup = 1;
    dp.mcts.iterationsPerLevel = 80;
    dp.polishPasses = 1;
    EquiNoxDesign own = buildEquiNoxDesign(dp);

    ExperimentConfig ec = quick();
    ec.schemes = {Scheme::EquiNox};
    ec.tweak = [&](SystemConfig &sc) {
        sc.design.mcts.iterationsPerLevel = 80;
        sc.preDesign = &own;
    };
    ExperimentRunner runner(ec);
    WorkloadProfile wp = workloadSubset(1)[0];
    wp.instsPerPe = 80;
    // Build one system through the same path runOne uses.
    RunResult r = runner.runOne(Scheme::EquiNox, wp);
    EXPECT_TRUE(r.completed);
    // The pinned 1-EIR-per-CB design has at most 8 EIRs: its cached
    // runner design (unpinned) would have far more remote ports, so
    // verify via a direct System construction that the pin holds.
    SystemConfig sc;
    sc.scheme = Scheme::EquiNox;
    sc.preDesign = &own;
    System sys(sc, wp);
    EXPECT_LE(sys.network(1).numRemoteInjPorts(), 8);
}

TEST(Experiment, InstScaleShrinksWork)
{
    ExperimentConfig big = quick();
    big.schemes = {Scheme::SingleBase};
    big.instScale = 0.10;
    ExperimentConfig small = big;
    small.instScale = 0.05;
    ExperimentRunner rb(big), rs(small);
    auto cb = rb.runMatrix();
    auto cs = rs.runMatrix();
    EXPECT_GT(cb[0].result.totalInsts, cs[0].result.totalInsts);
}

TEST(Experiment, CsvExportRoundTrips)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    std::string path = ::testing::TempDir() + "eqx_cells.csv";
    writeCellsCsv(cells, path);
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[512];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_NE(std::string(line).find("benchmark,scheme"),
              std::string::npos);
    int rows = 0;
    while (std::fgets(line, sizeof(line), f))
        ++rows;
    std::fclose(f);
    EXPECT_EQ(rows, static_cast<int>(cells.size()));
    std::remove(path.c_str());
}

TEST(Experiment, CsvExportBadPathIsFatal)
{
    EXPECT_THROW(writeCellsCsv({}, "/nonexistent_dir_xyz/out.csv"),
                 std::runtime_error);
}

TEST(Experiment, GeomeanHelper)
{
    ExperimentRunner runner(quick());
    auto cells = runner.runMatrix();
    double g = schemeGeomean(cells, Scheme::SingleBase,
                             [](const RunResult &r) { return r.execNs; });
    EXPECT_GT(g, 0.0);
}

} // namespace
} // namespace eqx
