/** @file Synthetic traffic harness (Fig. 4 machinery). */

#include <gtest/gtest.h>

#include "core/nqueen.hh"
#include "core/placement.hh"
#include "sim/synthetic.hh"

namespace eqx {
namespace {

SyntheticParams
quick(TrafficPattern pattern, std::vector<Coord> cbs)
{
    SyntheticParams sp;
    sp.pattern = pattern;
    sp.cbs = std::move(cbs);
    sp.injectionRate = 0.03;
    sp.warmupCycles = 300;
    sp.measureCycles = 2500;
    sp.drainCycles = 8000;
    return sp;
}

TEST(Synthetic, FewToManyDeliversAndMeasures)
{
    auto sp = quick(TrafficPattern::FewToMany,
                    makePlacement(PlacementKind::Diamond, 8, 8, 8));
    SyntheticResult r = runSynthetic(sp);
    EXPECT_GT(r.injected, 0u);
    EXPECT_EQ(r.delivered, r.injected); // nothing lost
    EXPECT_GT(r.avgTotalLatency, 0.0);
    EXPECT_EQ(r.routerHeat.size(), 64u);
}

TEST(Synthetic, UniformAndManyToFewRun)
{
    for (auto pattern :
         {TrafficPattern::Uniform, TrafficPattern::ManyToFew}) {
        auto sp = quick(pattern,
                        makePlacement(PlacementKind::Diamond, 8, 8, 8));
        sp.packetBits = 128;
        SyntheticResult r = runSynthetic(sp);
        EXPECT_GT(r.delivered, 0u) << static_cast<int>(pattern);
    }
}

TEST(Synthetic, TopPlacementMoreImbalancedThanNQueen)
{
    // The core observation behind paper Fig. 4: Top placement yields a
    // far higher per-router residence variance than N-Queen.
    auto top = quick(TrafficPattern::FewToMany,
                     makePlacement(PlacementKind::Top, 8, 8, 8));
    top.injectionRate = 0.06;
    Rng rng(1);
    auto nq_cbs = bestNQueenPlacement(8, 8, rng).cbs;
    auto nq = quick(TrafficPattern::FewToMany, nq_cbs);
    nq.injectionRate = 0.06;
    SyntheticResult rt = runSynthetic(top);
    SyntheticResult rq = runSynthetic(nq);
    EXPECT_GT(rt.heatVariance, rq.heatVariance);
}

TEST(Synthetic, EirsReduceInjectionQueueing)
{
    Rng rng(1);
    auto cbs = bestNQueenPlacement(8, 8, rng).cbs;
    auto base = quick(TrafficPattern::FewToMany, cbs);
    base.injectionRate = 0.12; // stress the injection points

    auto eir = base;
    // Hand-build axis EIR groups two hops out where in bounds.
    Mesh2D topo(8, 8);
    for (const auto &cb : cbs) {
        std::vector<NodeId> group;
        for (Coord d : {Coord{2, 0}, Coord{-2, 0}, Coord{0, 2},
                        Coord{0, -2}}) {
            Coord e{cb.x + d.x, cb.y + d.y};
            if (topo.inBounds(e))
                group.push_back(topo.node(e));
        }
        eir.eirGroups[topo.node(cb)] = group;
    }
    SyntheticResult rb = runSynthetic(base);
    SyntheticResult re = runSynthetic(eir);
    EXPECT_LT(re.avgQueueLatency, rb.avgQueueLatency);
    EXPECT_LT(re.avgTotalLatency, rb.avgTotalLatency);
}

TEST(Synthetic, ThroughputTracksOfferedLoadWhenUncongested)
{
    auto sp = quick(TrafficPattern::Uniform,
                    makePlacement(PlacementKind::Diamond, 8, 8, 8));
    sp.packetBits = 128;
    sp.injectionRate = 0.01;
    SyntheticResult r = runSynthetic(sp);
    double offered_total = 0.01 * 64;
    EXPECT_NEAR(r.throughput, offered_total, offered_total * 0.25);
}

TEST(Synthetic, HeatAsciiShape)
{
    std::vector<double> heat(16, 1.5);
    std::string art = heatAscii(heat, 4, 4);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
    EXPECT_NE(art.find("1.5"), std::string::npos);
}

} // namespace
} // namespace eqx
