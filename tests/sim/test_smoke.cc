/**
 * @file
 * End-to-end smoke: every scheme completes a small benchmark run and
 * conserves packets (every request answered, every PE finished).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/synthetic.hh"

namespace eqx {
namespace {

WorkloadProfile
tinyWorkload()
{
    WorkloadProfile wp = workloadByName("kmeans");
    wp.instsPerPe = 300;
    return wp;
}

TEST(Smoke, SyntheticFewToManyRuns)
{
    SyntheticParams sp;
    sp.cbs = {{0, 2}, {3, 5}, {5, 1}, {6, 6}};
    sp.injectionRate = 0.02;
    sp.warmupCycles = 200;
    sp.measureCycles = 1000;
    SyntheticResult r = runSynthetic(sp);
    EXPECT_GT(r.delivered, 0u);
    EXPECT_GT(r.avgTotalLatency, 0.0);
}

class SchemeSmoke : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSmoke, CompletesAndConserves)
{
    SystemConfig sc;
    sc.scheme = GetParam();
    sc.maxCycles = 400000;
    System sys(sc, tinyWorkload());
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed) << schemeName(GetParam());
    EXPECT_GT(r.totalInsts, 0u);
    EXPECT_GT(r.ipc, 0.0);
    // Conservation: every PE drained all outstanding accesses.
    for (int i = 0; i < sys.numPes(); ++i)
        EXPECT_EQ(sys.pe(i).outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSmoke,
    ::testing::Values(Scheme::SingleBase, Scheme::VcMono,
                      Scheme::InterposerCMesh, Scheme::SeparateBase,
                      Scheme::Da2Mesh, Scheme::MultiPort,
                      Scheme::EquiNox),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

} // namespace
} // namespace eqx
