/** @file Config table parsing and typed access. */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace eqx {
namespace {

TEST(Config, TypedRoundTrip)
{
    Config c;
    c.set("i", 42L);
    c.set("d", 2.5);
    c.set("b", true);
    c.set("s", std::string("hello"));
    EXPECT_EQ(c.getInt("i"), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getString("s"), "hello");
}

TEST(Config, Fallbacks)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, ParseArgs)
{
    Config c;
    c.parseArgs({"width=8", "rate=0.25", "name=test", "on=true"});
    EXPECT_EQ(c.getInt("width"), 8);
    EXPECT_DOUBLE_EQ(c.getDouble("rate"), 0.25);
    EXPECT_EQ(c.getString("name"), "test");
    EXPECT_TRUE(c.getBool("on"));
}

TEST(Config, BadTokenIsFatal)
{
    Config c;
    EXPECT_THROW(c.parseArgs({"no_equals"}), std::runtime_error);
    EXPECT_THROW(c.parseArgs({"=value"}), std::runtime_error);
}

TEST(Config, BadTypeIsFatal)
{
    Config c;
    c.set("s", std::string("abc"));
    EXPECT_THROW(c.getInt("s"), std::runtime_error);
    EXPECT_THROW(c.getDouble("s"), std::runtime_error);
    EXPECT_THROW(c.getBool("s"), std::runtime_error);
}

TEST(Config, BoolSpellings)
{
    Config c;
    c.parseArgs({"a=1", "b=yes", "d=0", "e=no"});
    EXPECT_TRUE(c.getBool("a"));
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_FALSE(c.getBool("d"));
    EXPECT_FALSE(c.getBool("e"));
}

TEST(Config, OverrideKeepsLatest)
{
    Config c;
    c.parseArgs({"k=1", "k=2"});
    EXPECT_EQ(c.getInt("k"), 2);
}

} // namespace
} // namespace eqx
