/** @file Coordinates, directions and packet-type helpers. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace eqx {
namespace {

TEST(Types, ManhattanAndChebyshev)
{
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
    EXPECT_EQ(chebyshev({0, 0}, {3, 4}), 4);
    EXPECT_EQ(chebyshev({1, 1}, {2, 2}), 1);
    EXPECT_EQ(manhattan({1, 1}, {1, 1}), 0);
}

TEST(Types, DirStepRoundTrip)
{
    for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
        Coord s = dirStep(d);
        Coord o = dirStep(opposite(d));
        EXPECT_EQ(s.x + o.x, 0);
        EXPECT_EQ(s.y + o.y, 0);
    }
    EXPECT_EQ(opposite(Dir::North), Dir::South);
    EXPECT_EQ(opposite(Dir::East), Dir::West);
}

TEST(Types, YGrowsSouth)
{
    EXPECT_EQ(dirStep(Dir::South).y, 1);
    EXPECT_EQ(dirStep(Dir::North).y, -1);
}

TEST(Types, PacketClassPredicates)
{
    EXPECT_TRUE(isRequest(PacketType::ReadRequest));
    EXPECT_TRUE(isRequest(PacketType::WriteRequest));
    EXPECT_FALSE(isRequest(PacketType::ReadReply));
    EXPECT_FALSE(isRequest(PacketType::WriteReply));
    EXPECT_TRUE(isReply(PacketType::WriteReply));
}

TEST(Types, Names)
{
    EXPECT_STREQ(dirName(Dir::North), "N");
    EXPECT_STREQ(dirName(Dir::Local), "L");
    EXPECT_STREQ(packetTypeName(PacketType::ReadReply), "ReadReply");
}

TEST(Types, CoordOrderingAndHash)
{
    Coord a{1, 2}, b{2, 1};
    EXPECT_TRUE(b < a); // row-major: y first
    EXPECT_NE(std::hash<Coord>{}(a), std::hash<Coord>{}(b));
    EXPECT_TRUE(a == (Coord{1, 2}));
    EXPECT_TRUE(a != b);
}

} // namespace
} // namespace eqx
