/** @file Deterministic RNG behaviour. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace eqx {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BurstLengthRespectsCap)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i) {
        int len = r.burstLength(0.9, 5);
        EXPECT_GE(len, 1);
        EXPECT_LE(len, 5);
    }
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(31);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == child.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicForSeed)
{
    // Same seed -> same fork: per-job streams derived by forking are
    // reproducible run-to-run.
    Rng a(97), b(97);
    Rng fa = a.fork(), fb = b.fork();
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(fa.next(), fb.next());
    // And the parents stay in lockstep after forking.
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SiblingForksShareNoLongPrefix)
{
    // Sibling forks from one parent must be decorrelated streams: no
    // overlap window of any alignment in their first outputs.
    Rng parent(12345);
    Rng c1 = parent.fork();
    Rng c2 = parent.fork();
    Rng c3 = parent.fork();

    auto draw = [](Rng &r, int n) {
        std::vector<std::uint64_t> v;
        for (int i = 0; i < n; ++i)
            v.push_back(r.next());
        return v;
    };
    auto s1 = draw(c1, 512), s2 = draw(c2, 512), s3 = draw(c3, 512);

    auto collisions = [](const std::vector<std::uint64_t> &a,
                         const std::vector<std::uint64_t> &b) {
        std::set<std::uint64_t> sa(a.begin(), a.end());
        int hits = 0;
        for (std::uint64_t x : b)
            if (sa.count(x))
                ++hits;
        return hits;
    };
    // 512 draws from a 64-bit generator: any shared value at all is
    // overwhelming evidence of stream overlap.
    EXPECT_EQ(collisions(s1, s2), 0);
    EXPECT_EQ(collisions(s1, s3), 0);
    EXPECT_EQ(collisions(s2, s3), 0);

    // Element-wise long-prefix check as well (alignment 0).
    int prefix = 0;
    while (prefix < 512 && s1[static_cast<std::size_t>(prefix)] ==
                               s2[static_cast<std::size_t>(prefix)])
        ++prefix;
    EXPECT_EQ(prefix, 0);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace eqx
