/** @file RunningStat / Histogram / StatGroup behaviour. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace eqx {
namespace {

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7 - 3;
        if (i % 2)
            a.add(x);
        else
            b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // copy
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 5); // [0,50) + overflow
    h.add(0);
    h.add(9.99);
    h.add(10);
    h.add(49);
    h.add(50);
    h.add(1000);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i);
    double p50 = h.percentile(0.5);
    double p90 = h.percentile(0.9);
    EXPECT_LT(p50, p90);
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p90, 90.0, 2.0);
}

TEST(StatGroup, IncSetGet)
{
    StatGroup g;
    EXPECT_FALSE(g.has("x"));
    g.inc("x");
    g.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.5);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
}

TEST(StatGroup, MergeAdds)
{
    StatGroup a, b;
    a.inc("x", 1);
    b.inc("x", 2);
    b.inc("y", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries ignored.
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0, 0.0, -3.0}), 2.0);
}

} // namespace
} // namespace eqx
