/** @file RunningStat / Histogram / StatGroup behaviour. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace eqx {
namespace {

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7 - 3;
        if (i % 2)
            a.add(x);
        else
            b.add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 1u);
    b.merge(a); // copy
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

// Parallel-reduction coverage: merging per-worker accumulators must
// behave like one stream regardless of which side is empty and (up to
// fp tolerance) of merge order.

TEST(RunningStat, MergeEmptyIntoFullPreservesEverything)
{
    RunningStat full, empty;
    for (double x : {1.0, -2.5, 7.75, 0.25})
        full.add(x);
    RunningStat before = full;
    full.merge(empty);
    EXPECT_EQ(full.count(), before.count());
    EXPECT_DOUBLE_EQ(full.mean(), before.mean());
    EXPECT_DOUBLE_EQ(full.variance(), before.variance());
    EXPECT_DOUBLE_EQ(full.min(), before.min());
    EXPECT_DOUBLE_EQ(full.max(), before.max());
}

TEST(RunningStat, MergeFullIntoEmptyEqualsCopy)
{
    RunningStat full, empty;
    for (double x : {4.0, 8.0, -1.0})
        full.add(x);
    empty.merge(full);
    EXPECT_EQ(empty.count(), full.count());
    EXPECT_DOUBLE_EQ(empty.mean(), full.mean());
    EXPECT_DOUBLE_EQ(empty.variance(), full.variance());
    EXPECT_DOUBLE_EQ(empty.min(), full.min());
    EXPECT_DOUBLE_EQ(empty.max(), full.max());
}

TEST(RunningStat, MergeCommutativeWithinTolerance)
{
    RunningStat a1, b1, a2, b2;
    for (int i = 0; i < 40; ++i) {
        double x = i * 1.37 - 11.0;
        (i % 3 ? a1 : b1).add(x);
        (i % 3 ? a2 : b2).add(x);
    }
    a1.merge(b1); // a ∪ b
    b2.merge(a2); // b ∪ a
    EXPECT_EQ(a1.count(), b2.count());
    EXPECT_NEAR(a1.mean(), b2.mean(), 1e-12);
    EXPECT_NEAR(a1.variance(), b2.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a1.min(), b2.min());
    EXPECT_DOUBLE_EQ(a1.max(), b2.max());
}

TEST(RunningStat, SumMatchesDirectSummation)
{
    // The sum must be carried explicitly: reconstructing it as
    // mean * n drifts away from left-to-right summation over long
    // accumulations with a large offset, which is exactly the shape of
    // multi-million-cycle latency totals.
    RunningStat s;
    double direct = 0.0;
    for (int i = 0; i < 200000; ++i) {
        double x = 1.0e9 + 0.1 * (i % 97);
        s.add(x);
        direct += x;
    }
    EXPECT_DOUBLE_EQ(s.sum(), direct); // bit-identical, not just NEAR
}

TEST(RunningStat, MergedSumIsExactSumOfParts)
{
    RunningStat a, b;
    double da = 0.0, db = 0.0;
    for (int i = 0; i < 5000; ++i) {
        double x = 7.0e7 + 0.25 * (i % 13);
        if (i % 2) {
            a.add(x);
            da += x;
        } else {
            b.add(x);
            db += x;
        }
    }
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.sum(), da + db);
}

TEST(RunningStat, ResetClearsSum)
{
    RunningStat s;
    s.add(42.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    s.add(1.5);
    EXPECT_DOUBLE_EQ(s.sum(), 1.5);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 5); // [0,50) + overflow
    h.add(0);
    h.add(9.99);
    h.add(10);
    h.add(49);
    h.add(50);
    h.add(1000);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket)
{
    Histogram h(1.0, 4);
    h.add(-5.0);
    EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i);
    double p50 = h.percentile(0.5);
    double p90 = h.percentile(0.9);
    EXPECT_LT(p50, p90);
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p90, 90.0, 2.0);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h(1.0, 8);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileExtremeQuantiles)
{
    Histogram h(1.0, 10);
    for (int i = 2; i < 7; ++i) // samples in buckets 2..6
        h.add(i + 0.5);
    // q=0: lower edge of the first populated bucket.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
    // q=1: upper edge of the last populated bucket.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.0);
    // Out-of-range q clamps rather than extrapolating.
    EXPECT_DOUBLE_EQ(h.percentile(-0.3), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(1.7), h.percentile(1.0));
}

TEST(Histogram, AllOverflowSaturatesAtRangeEdge)
{
    Histogram h(2.0, 4); // tracked range [0, 8)
    h.add(100);
    h.add(1000);
    EXPECT_EQ(h.overflow(), 2u);
    // Every quantile reports the tightest known lower bound: the
    // tracked-range upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(Histogram, PartialOverflowQuantilesSplitAtBoundary)
{
    Histogram h(1.0, 4); // [0, 4)
    h.add(0.5);
    h.add(1.5);
    h.add(100); // overflow
    h.add(200); // overflow
    // p25 lands inside the tracked range; p99 in the overflow tail.
    EXPECT_LT(h.percentile(0.25), 4.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 4.0);
}

TEST(Histogram, HugeValueCountsAsOverflowSafely)
{
    // Values whose bucket quotient exceeds the size_t range must land
    // in overflow (the unpatched cast was undefined behaviour).
    Histogram h(1.0, 4);
    h.add(1.0e300);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NanLandsInBucketZero)
{
    Histogram h(1.0, 4);
    h.add(std::nan(""));
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, ResetClearsCountsKeepsGeometry)
{
    Histogram h(2.5, 6);
    for (int i = 0; i < 10; ++i)
        h.add(i * 3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (int i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucket(i), 0u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 2.5);
    EXPECT_EQ(h.numBuckets(), 6);
    h.add(1.0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(1.0, 4), b(1.0, 4);
    a.add(0.5);
    a.add(10); // overflow
    b.add(0.7);
    b.add(2.5);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.bucket(0), 2u);
    EXPECT_EQ(a.bucket(2), 1u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(StatGroup, IncSetGet)
{
    StatGroup g;
    EXPECT_FALSE(g.has("x"));
    g.inc("x");
    g.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.5);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
}

TEST(StatGroup, MergeAdds)
{
    StatGroup a, b;
    a.inc("x", 1);
    b.inc("x", 2);
    b.inc("y", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
}

TEST(StatGroup, MergeEmptyEitherDirection)
{
    StatGroup full, empty;
    full.inc("pkts", 12);
    full.set("ipc", 0.75);

    StatGroup copy = full;
    copy.merge(empty); // empty-into-full: unchanged
    EXPECT_DOUBLE_EQ(copy.get("pkts"), 12);
    EXPECT_DOUBLE_EQ(copy.get("ipc"), 0.75);
    EXPECT_EQ(copy.all().size(), full.all().size());

    empty.merge(full); // full-into-empty: exact copy
    EXPECT_DOUBLE_EQ(empty.get("pkts"), 12);
    EXPECT_DOUBLE_EQ(empty.get("ipc"), 0.75);
    EXPECT_EQ(empty.all().size(), full.all().size());
}

TEST(StatGroup, MergeCommutative)
{
    StatGroup a1, b1, a2, b2;
    a1.inc("x", 1.5);
    a1.inc("y", 2.0);
    b1.inc("y", 3.0);
    b1.inc("z", 4.25);
    a2 = a1;
    b2 = b1;

    a1.merge(b1); // a ∪ b
    b2.merge(a2); // b ∪ a
    EXPECT_EQ(a1.all().size(), b2.all().size());
    for (const auto &[k, v] : a1.all())
        EXPECT_NEAR(v, b2.get(k), 1e-12) << k;
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries ignored.
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0, 0.0, -3.0}), 2.0);
}

} // namespace
} // namespace eqx
