/** @file Exact segment-intersection predicates (RDL crossing rules). */

#include <gtest/gtest.h>

#include "common/geometry.hh"

namespace eqx {
namespace {

TEST(Geometry, OrientSigns)
{
    EXPECT_GT(orient({0, 0}, {1, 0}, {1, 1}), 0);
    EXPECT_LT(orient({0, 0}, {1, 0}, {1, -1}), 0);
    EXPECT_EQ(orient({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(Geometry, ProperCrossing)
{
    Segment a{{0, 0}, {2, 2}};
    Segment b{{0, 2}, {2, 0}};
    EXPECT_TRUE(segmentsIntersect(a, b));
    EXPECT_TRUE(segmentsCross(a, b));
}

TEST(Geometry, DisjointSegments)
{
    Segment a{{0, 0}, {1, 0}};
    Segment b{{0, 2}, {1, 2}};
    EXPECT_FALSE(segmentsIntersect(a, b));
    EXPECT_FALSE(segmentsCross(a, b));
}

TEST(Geometry, SharedEndpointIsNotACrossing)
{
    // Two wires fanning out of the same ubump do not need a new layer.
    Segment a{{0, 0}, {2, 0}};
    Segment b{{0, 0}, {0, 2}};
    EXPECT_TRUE(segmentsIntersect(a, b));
    EXPECT_FALSE(segmentsCross(a, b));
}

TEST(Geometry, TTouchMidSegmentIsACrossing)
{
    // One wire ending on the middle of another must be separated.
    Segment a{{0, 0}, {4, 0}};
    Segment b{{2, 0}, {2, 3}};
    EXPECT_TRUE(segmentsCross(a, b));
}

TEST(Geometry, CollinearOverlapIsACrossing)
{
    Segment a{{0, 0}, {4, 0}};
    Segment b{{2, 0}, {6, 0}};
    EXPECT_TRUE(segmentsCross(a, b));
}

TEST(Geometry, CollinearTouchingAtSharedEndpointOnly)
{
    Segment a{{0, 0}, {2, 0}};
    Segment b{{2, 0}, {4, 0}};
    EXPECT_TRUE(segmentsIntersect(a, b));
    EXPECT_FALSE(segmentsCross(a, b));
}

TEST(Geometry, CollinearContainmentThroughSharedEndpoint)
{
    // Shares endpoint (0,0) but b continues inside a: real overlap.
    Segment a{{0, 0}, {4, 0}};
    Segment b{{0, 0}, {2, 0}};
    EXPECT_TRUE(segmentsCross(a, b));
}

TEST(Geometry, CountCrossingsPairwise)
{
    // The paper's Figure 3 example shape: three crossing pairs need
    // at least two metal layers.
    std::vector<Segment> segs = {
        {{0, 1}, {4, 1}}, // horizontal
        {{1, 0}, {1, 3}}, // vertical crossing it
        {{3, 0}, {3, 3}}, // another vertical crossing it
        {{0, 2}, {4, 2}}, // horizontal crossing both verticals
    };
    // pairs: h1-v1, h1-v2, h2-v1, h2-v2 = 4 crossings
    EXPECT_EQ(countCrossings(segs), 4);
    EXPECT_EQ(rdlLayersNeeded(segs), 2);
}

TEST(Geometry, LayersForNonCrossingSetIsOne)
{
    std::vector<Segment> segs = {
        {{0, 0}, {2, 0}},
        {{0, 1}, {2, 1}},
        {{0, 2}, {2, 2}},
    };
    EXPECT_EQ(countCrossings(segs), 0);
    EXPECT_EQ(rdlLayersNeeded(segs), 1);
}

TEST(Geometry, LayersEmptySet)
{
    EXPECT_EQ(rdlLayersNeeded({}), 0);
}

TEST(Geometry, MutualCrossingsNeedThreeLayers)
{
    // Three segments pairwise crossing at distinct points: a triangle
    // of crossings forces three layers under proper colouring.
    std::vector<Segment> segs = {
        {{0, 0}, {6, 2}},
        {{0, 2}, {6, 0}},
        {{3, -2}, {3, 4}},
    };
    EXPECT_EQ(countCrossings(segs), 3);
    EXPECT_EQ(rdlLayersNeeded(segs), 3);
}

TEST(Geometry, SegmentLength)
{
    EXPECT_DOUBLE_EQ(segmentLength({{0, 0}, {3, 4}}), 5.0);
    EXPECT_DOUBLE_EQ(segmentLength({{1, 1}, {1, 1}}), 0.0);
}

} // namespace
} // namespace eqx
