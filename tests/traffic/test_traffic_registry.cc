/**
 * @file
 * TrafficRegistry contract (mirrors the SchemeRegistry tests): the
 * default instance registers the five models, string keys are
 * case-insensitive over names and aliases, unknown keys are null for
 * find() and fatal-with-key-list for byName(), and duplicate
 * registrations are rejected atomically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "traffic/traffic_model.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {
namespace {

TEST(TrafficRegistry, DefaultInstanceRegistersTheFiveModels)
{
    auto &reg = TrafficRegistry::instance();
    for (const char *name :
         {"synthetic", "storm-diurnal", "storm-flash", "storm-hotspot",
          "coherence"}) {
        const TrafficModel *m = reg.find(name);
        ASSERT_NE(m, nullptr) << name;
        EXPECT_EQ(m->name(), name);
        EXPECT_FALSE(m->describe().empty()) << name;
    }
    EXPECT_EQ(allTrafficModelNames().size(), 5u);
}

TEST(TrafficRegistry, LookupIsCaseInsensitiveOverNamesAndAliases)
{
    auto &reg = TrafficRegistry::instance();
    const TrafficModel *syn = reg.find("synthetic");
    ASSERT_NE(syn, nullptr);
    EXPECT_EQ(reg.find("SYNTHETIC"), syn);
    EXPECT_EQ(reg.find("Default"), syn);

    EXPECT_EQ(reg.find("diurnal"), reg.find("storm-diurnal"));
    EXPECT_EQ(reg.find("flash"), reg.find("storm-flash"));
    EXPECT_EQ(reg.find("flash-crowd"), reg.find("storm-flash"));
    EXPECT_EQ(reg.find("hotspot"), reg.find("storm-hotspot"));
    EXPECT_EQ(reg.find("mesi"), reg.find("coherence"));
}

TEST(TrafficRegistry, UnknownKeyFindsNullAndByNameIsFatalWithKeyList)
{
    auto &reg = TrafficRegistry::instance();
    EXPECT_EQ(reg.find("no-such-model"), nullptr);
    try {
        reg.byName("no-such-model");
        FAIL() << "byName should be fatal on an unknown key";
    } catch (const std::runtime_error &e) {
        // The fatal message must name the fix: every registered key.
        std::string msg = e.what();
        EXPECT_NE(msg.find("no-such-model"), std::string::npos);
        EXPECT_NE(msg.find("synthetic"), std::string::npos);
        EXPECT_NE(msg.find("storm-flash"), std::string::npos);
        EXPECT_NE(msg.find("coherence"), std::string::npos);
    }
}

TEST(TrafficRegistry, DefaultConstructedRegistryIsEmpty)
{
    TrafficRegistry reg;
    EXPECT_TRUE(reg.names().empty());
    EXPECT_EQ(reg.find("synthetic"), nullptr);
}

class StubModel : public TrafficModel
{
  public:
    StubModel(std::string name, std::vector<std::string> aliases)
        : name_(std::move(name)), aliases_(std::move(aliases))
    {
    }
    std::string name() const override { return name_; }
    std::vector<std::string> aliases() const override { return aliases_; }
    std::string describe() const override { return "stub"; }
    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &) const override
    {
        return std::make_unique<TrafficInstance>();
    }

  private:
    std::string name_;
    std::vector<std::string> aliases_;
};

TEST(TrafficRegistry, DuplicateRegistrationIsRejectedAtomically)
{
    TrafficRegistry reg;
    reg.add(std::make_unique<StubModel>(
        "alpha", std::vector<std::string>{"a"}));
    // Key collision on the alias: the whole add must be rejected, so
    // neither "beta" nor its non-colliding alias appears afterwards.
    EXPECT_FALSE(reg.add(std::make_unique<StubModel>(
        "beta", std::vector<std::string>{"b", "A"})));
    EXPECT_EQ(reg.find("beta"), nullptr);
    EXPECT_EQ(reg.find("b"), nullptr);
    EXPECT_NE(reg.find("alpha"), nullptr);
}

} // namespace
} // namespace eqx
