/**
 * @file
 * Full-system traffic-model behaviour: capture -> replay -> capture
 * byte-identity across schemes and tick modes, replay equivalence to
 * the synthetic stream it recorded, storm determinism / saturation /
 * open-loop loss, coherence invalidation fan-out and drain, and the
 * fatal composition rules.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace eqx {
namespace {

WorkloadProfile
tiny(const char *name = "kmeans", std::uint64_t insts = 200)
{
    WorkloadProfile wp = workloadByName(name);
    wp.instsPerPe = insts;
    return wp;
}

SystemConfig
cfg(const char *scheme_key)
{
    SystemConfig sc;
    sc.schemeKey = scheme_key;
    sc.maxCycles = 300000;
    // keep the in-system EquiNox design flow cheap for tests
    sc.design.mcts.iterationsPerLevel = 120;
    sc.design.polishPasses = 2;
    return sc;
}

std::string
slurp(const std::string &p)
{
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class TraceSystemFixture : public ::testing::Test
{
  protected:
    std::string
    path(const char *name)
    {
        std::string p =
            ::testing::TempDir() + "eqx_systrace_" + name + ".json";
        paths_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto &p : paths_)
            std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

TEST_F(TraceSystemFixture, CaptureReplayCaptureIsByteIdenticalAcrossSchemes)
{
    std::string first = path("first");

    // Capture the synthetic stream once, on SeparateBase.
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.trace = "capture:" + first;
    RunResult direct = System(sc, tiny()).run();
    ASSERT_TRUE(direct.completed);
    std::string first_bytes = slurp(first);
    ASSERT_FALSE(first_bytes.empty());

    // Replaying and re-capturing must reproduce the bytes exactly —
    // through the same scheme and through a different one (the file is
    // a pure function of the op streams, not of the NoC under them).
    for (const char *scheme : {"SeparateBase", "SingleBase"}) {
        std::string again = path("again");
        SystemConfig rc = cfg(scheme);
        rc.traffic.trace =
            "replay:" + first + ",capture:" + again;
        RunResult rr = System(rc, tiny()).run();
        EXPECT_TRUE(rr.completed) << scheme;
        EXPECT_EQ(slurp(again), first_bytes) << scheme;
    }

    // Replay on the capturing scheme is the recorded run, exactly.
    SystemConfig rc = cfg("SeparateBase");
    rc.traffic.trace = "replay:" + first;
    RunResult replayed = System(rc, tiny()).run();
    EXPECT_EQ(replayed.cycles, direct.cycles);
    EXPECT_EQ(replayed.totalInsts, direct.totalInsts);
    EXPECT_EQ(replayed.reqPackets, direct.reqPackets);
    EXPECT_EQ(replayed.repPackets, direct.repPackets);
}

TEST_F(TraceSystemFixture, ReplayIsBitIdenticalAcrossTickModes)
{
    std::string trace = path("tickmodes");
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.trace = "capture:" + trace;
    ASSERT_TRUE(System(sc, tiny()).run().completed);

    RunResult results[2];
    for (int exhaustive = 0; exhaustive < 2; ++exhaustive) {
        SystemConfig rc = cfg("SeparateBase");
        rc.traffic.trace = "replay:" + trace;
        rc.exhaustiveNocTick = exhaustive == 1;
        rc.timeSkip = exhaustive == 0;
        results[exhaustive] = System(rc, tiny()).run();
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].reqPackets, results[1].reqPackets);
    EXPECT_EQ(results[0].repPackets, results[1].repPackets);
    EXPECT_EQ(results[0].reqNetNs, results[1].reqNetNs);
    EXPECT_EQ(results[0].repNetNs, results[1].repNetNs);
}

TEST_F(TraceSystemFixture, ReplayRejectsPeCountMismatch)
{
    // Capture on an 8x8 (56 PEs), replay into a 4x4 (12 PEs): fatal.
    std::string trace = path("mismatch");
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.trace = "capture:" + trace;
    ASSERT_TRUE(System(sc, tiny()).run().completed);

    SystemConfig rc = cfg("SeparateBase");
    rc.width = 4;
    rc.height = 4;
    rc.numCbs = 4;
    rc.traffic.trace = "replay:" + trace;
    WorkloadProfile wp = tiny();
    EXPECT_THROW(System(rc, wp), std::runtime_error);
}

TEST_F(TraceSystemFixture, ReplayRejectsMissingFile)
{
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.trace = "replay:" + path("no-such-trace");
    WorkloadProfile wp = tiny();
    EXPECT_THROW(System(sc, wp), std::runtime_error);
}

TEST(TrafficSystem, TraceComposesOnlyWithClosedLoopModels)
{
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.model = "storm-flash";
    sc.traffic.trace = "capture:/tmp/eqx_never_written.json";
    WorkloadProfile wp = tiny();
    EXPECT_THROW(System(sc, wp), std::runtime_error);
}

TEST(TrafficSystem, UnknownModelIsFatalWithKeyList)
{
    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.model = "no-such-model";
    WorkloadProfile wp = tiny();
    try {
        System sys(sc, wp);
        FAIL() << "unknown traffic model must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("synthetic"),
                  std::string::npos);
    }
}

SystemConfig
stormCfg(const char *scheme_key, const char *model, double rate,
         std::uint64_t horizon = 2000)
{
    SystemConfig sc = cfg(scheme_key);
    sc.traffic.model = model;
    sc.traffic.stormRatePerK = rate;
    sc.traffic.stormHorizon = horizon;
    return sc;
}

TEST(StormSystem, ReplacesPesAndRunsToCompletion)
{
    SystemConfig sc = stormCfg("SeparateBase", "storm-flash", 32.0);
    System sys(sc, tiny());
    EXPECT_EQ(sys.numPes(), 0); // storms replace the PEs
    RunResult r = sys.run();
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.stormArmed);
    EXPECT_GT(r.stormOffered, 0u);
    EXPECT_EQ(r.stormDelivered, r.stormInjected); // all replies return
    EXPECT_EQ(r.stormOffered, r.stormInjected + r.stormDropped);
    EXPECT_GT(r.reqPackets, 0u);
    EXPECT_EQ(r.totalInsts, 0u); // no PEs, no instructions
}

TEST(StormSystem, IsDeterministicAcrossRunsAndTickModes)
{
    RunResult runs[3];
    for (int i = 0; i < 3; ++i) {
        SystemConfig sc = stormCfg("SeparateBase", "storm-diurnal", 32.0);
        if (i == 2) {
            sc.exhaustiveNocTick = true;
            sc.timeSkip = false;
        }
        runs[i] = System(sc, tiny()).run();
    }
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(runs[i].cycles, runs[0].cycles) << i;
        EXPECT_EQ(runs[i].stormOffered, runs[0].stormOffered) << i;
        EXPECT_EQ(runs[i].stormInjected, runs[0].stormInjected) << i;
        EXPECT_EQ(runs[i].stormDelivered, runs[0].stormDelivered) << i;
        EXPECT_EQ(runs[i].stormDropped, runs[0].stormDropped) << i;
        EXPECT_EQ(runs[i].repNetNs, runs[0].repNetNs) << i;
    }
}

TEST(StormSystem, OverloadSaturatesTheBoundedBacklog)
{
    // A small backlog under a hot, heavy spike must drop arrivals —
    // the open-loop loss signal — while a light load drops nothing.
    SystemConfig light = stormCfg("SeparateBase", "storm-flash", 8.0);
    RunResult lr = System(light, tiny()).run();
    EXPECT_EQ(lr.stormDropped, 0u);
    EXPECT_EQ(lr.stormDelivered, lr.stormOffered);

    SystemConfig heavy = stormCfg("SeparateBase", "storm-hotspot", 512.0);
    heavy.traffic.stormQueueCap = 4;
    RunResult hr = System(heavy, tiny()).run();
    EXPECT_TRUE(hr.completed);
    EXPECT_GT(hr.stormDropped, 0u);
    EXPECT_LT(hr.stormDelivered, hr.stormOffered);
}

TEST(StormSystem, SeedChangesTheArrivalPattern)
{
    SystemConfig a = stormCfg("SeparateBase", "storm-hotspot", 32.0);
    SystemConfig b = a;
    b.seed = 7;
    RunResult ra = System(a, tiny()).run();
    RunResult rb = System(b, tiny()).run();
    // Rate profiles are deterministic, so offered counts match; the
    // address / write-mix draws do not.
    EXPECT_EQ(ra.stormOffered, rb.stormOffered);
    EXPECT_NE(ra.requestBits, rb.requestBits);
}

TEST(CoherenceSystem, InvalidationsFanOutAndDrain)
{
    // A shared-heavy, write-heavy profile so cross-PE sharing occurs.
    WorkloadProfile wp = tiny("kmeans", 300);
    wp.sharedFrac = 0.8;
    wp.readFrac = 0.5;

    SystemConfig sc = cfg("SeparateBase");
    sc.traffic.model = "coherence";
    RunResult r = System(sc, wp).run();
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.cohArmed);
    EXPECT_GT(r.cohInvalidations, 0u);
    // Every Invalidate is acked fire-and-forget and the system drained,
    // so the ack count must match the fan-out exactly.
    EXPECT_EQ(r.cohInvAcks, r.cohInvalidations);
}

TEST(CoherenceSystem, IsDeterministicAndOffByDefault)
{
    WorkloadProfile wp = tiny("kmeans", 300);
    wp.sharedFrac = 0.8;
    wp.readFrac = 0.5;

    SystemConfig sc = cfg("SeparateBase");
    RunResult base = System(sc, wp).run();
    EXPECT_FALSE(base.cohArmed);
    EXPECT_EQ(base.cohInvalidations, 0u);

    sc.traffic.model = "coherence";
    RunResult a = System(sc, wp).run();
    RunResult b = System(sc, wp).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cohInvalidations, b.cohInvalidations);
    EXPECT_EQ(a.cohInvAcks, b.cohInvAcks);
    // The invalidation flows add real packets on top of the base run.
    EXPECT_GT(a.reqPackets + a.repPackets,
              base.reqPackets + base.repPackets);
}

TEST(CoherenceSystem, DedicatedCoherenceVcsCarryTheFlows)
{
    WorkloadProfile wp = tiny("kmeans", 300);
    wp.sharedFrac = 0.8;
    wp.readFrac = 0.5;

    // Single network with class VCs: carve one coherence VC. Needs
    // vcsPerPort >= coherenceVcs + 2.
    SystemConfig sc = cfg("SingleBase");
    sc.vcsPerPort = 4;
    sc.traffic.model = "coherence";
    sc.traffic.coherenceVcs = 1;
    RunResult r = System(sc, wp).run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.cohInvalidations, 0u);
    EXPECT_EQ(r.cohInvAcks, r.cohInvalidations);
}

TEST(CoherenceSystem, CoherenceVcsWithoutHeadroomIsRejected)
{
    SystemConfig sc = cfg("SingleBase");
    sc.vcsPerPort = 2; // needs >= 3 for coherenceVcs=1
    sc.traffic.model = "coherence";
    sc.traffic.coherenceVcs = 1;
    WorkloadProfile wp = tiny();
    EXPECT_THROW(System(sc, wp), std::logic_error);
}

} // namespace
} // namespace eqx
