/**
 * @file
 * Trace wire-format contract: spec parsing, capture -> file -> reader
 * round trips, strict rejection of truncated or corrupt files (any
 * cut point must fail with an error naming the line), and exact
 * replay of a captured stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "traffic/trace_io.hh"

namespace eqx {
namespace {

class TraceFileFixture : public ::testing::Test
{
  protected:
    std::string
    path(const char *name)
    {
        std::string p =
            ::testing::TempDir() + "eqx_trace_" + name + ".json";
        paths_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto &p : paths_)
            std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

TEST(TraceSpec, ParsesCaptureReplayAndBoth)
{
    TraceSpec s = parseTraceSpec("capture:/tmp/a.json");
    EXPECT_EQ(s.capturePath, "/tmp/a.json");
    EXPECT_TRUE(s.replayPath.empty());

    s = parseTraceSpec("replay:/tmp/b.json");
    EXPECT_EQ(s.replayPath, "/tmp/b.json");
    EXPECT_TRUE(s.capturePath.empty());

    // Both (the round-trip shape), in either order.
    s = parseTraceSpec("replay:/tmp/a.json,capture:/tmp/b.json");
    EXPECT_EQ(s.replayPath, "/tmp/a.json");
    EXPECT_EQ(s.capturePath, "/tmp/b.json");
    s = parseTraceSpec("capture:/tmp/b.json,replay:/tmp/a.json");
    EXPECT_EQ(s.replayPath, "/tmp/a.json");
    EXPECT_EQ(s.capturePath, "/tmp/b.json");
}

TEST(TraceSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseTraceSpec(""), std::runtime_error);
    EXPECT_THROW(parseTraceSpec("capture:"), std::runtime_error);
    EXPECT_THROW(parseTraceSpec("replay:"), std::runtime_error);
    EXPECT_THROW(parseTraceSpec("record:/tmp/a"), std::runtime_error);
    EXPECT_THROW(parseTraceSpec("/tmp/a.json"), std::runtime_error);
    EXPECT_THROW(parseTraceSpec("capture:/a,capture:/b"),
                 std::runtime_error);
    EXPECT_THROW(parseTraceSpec("replay:/a,replay:/b"),
                 std::runtime_error);
}

/** A small two-PE capture used by the file tests. */
TraceCapture
makeCapture()
{
    TraceCapture cap(2, "bfs");
    TraceOp op;
    // PE 0: gap 2, read, gap 0, write, tail 1.
    op = TraceOp{};
    cap.record(0, op);
    cap.record(0, op);
    op.isMem = true;
    op.isWrite = false;
    op.addr = 0x1000;
    cap.record(0, op);
    op.isWrite = true;
    op.addr = 0x2040;
    cap.record(0, op);
    op = TraceOp{};
    cap.record(0, op);
    // PE 1: one read, no gaps.
    op = TraceOp{};
    op.isMem = true;
    op.addr = 0x80;
    cap.record(1, op);
    return cap;
}

TEST_F(TraceFileFixture, CaptureRoundTripsThroughReader)
{
    std::string p = path("roundtrip");
    TraceCapture cap = makeCapture();
    std::string err;
    ASSERT_TRUE(cap.writeFile(p, err)) << err;

    TraceData data;
    ASSERT_TRUE(readTraceFile(p, data, err)) << err;
    EXPECT_EQ(data.workload, "bfs");
    ASSERT_EQ(data.pes.size(), 2u);

    const PeTrace &pe0 = data.pes[0];
    ASSERT_EQ(pe0.ops.size(), 2u);
    EXPECT_EQ(pe0.ops[0].gap, 2u);
    EXPECT_FALSE(pe0.ops[0].isWrite);
    EXPECT_EQ(pe0.ops[0].addr, 0x1000u);
    EXPECT_EQ(pe0.ops[1].gap, 0u);
    EXPECT_TRUE(pe0.ops[1].isWrite);
    EXPECT_EQ(pe0.ops[1].addr, 0x2040u);
    EXPECT_EQ(pe0.tail, 1u);
    EXPECT_EQ(pe0.insts, 5u);

    const PeTrace &pe1 = data.pes[1];
    ASSERT_EQ(pe1.ops.size(), 1u);
    EXPECT_EQ(pe1.ops[0].addr, 0x80u);
    EXPECT_EQ(pe1.insts, 1u);
}

TEST_F(TraceFileFixture, RewritingParsedDataIsByteIdentical)
{
    std::string p1 = path("orig"), p2 = path("rewrite");
    std::string err;
    ASSERT_TRUE(makeCapture().writeFile(p1, err)) << err;

    // Reader -> capture -> writer reproduces the original bytes: the
    // file is a pure function of the op streams.
    TraceData data;
    ASSERT_TRUE(readTraceFile(p1, data, err)) << err;
    TraceCapture cap2(2, data.workload);
    for (int pe = 0; pe < 2; ++pe) {
        ReplaySource src(&data.pes[static_cast<std::size_t>(pe)]);
        TraceOp op;
        while (src.next(op))
            cap2.record(pe, op);
    }
    ASSERT_TRUE(cap2.writeFile(p2, err)) << err;

    std::ifstream a(p1), b(p2);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str());
}

TEST_F(TraceFileFixture, TruncationAtEveryLineIsRejected)
{
    std::string p = path("full");
    std::string err;
    ASSERT_TRUE(makeCapture().writeFile(p, err)) << err;

    std::vector<std::string> lines;
    {
        std::ifstream in(p);
        std::string l;
        while (std::getline(in, l))
            lines.push_back(l);
    }
    ASSERT_GE(lines.size(), 4u);

    // Every proper prefix must be rejected — the counting footers and
    // the end marker make truncation detectable at any cut.
    for (std::size_t keep = 0; keep < lines.size(); ++keep) {
        std::string cut = path("cut");
        {
            std::ofstream out(cut);
            for (std::size_t i = 0; i < keep; ++i)
                out << lines[i] << "\n";
        }
        TraceData data;
        std::string cut_err;
        EXPECT_FALSE(readTraceFile(cut, data, cut_err))
            << "kept " << keep << " of " << lines.size() << " lines";
        EXPECT_FALSE(cut_err.empty());
    }
}

TEST_F(TraceFileFixture, CorruptFilesAreRejectedWithClearErrors)
{
    std::string base = path("base");
    std::string err;
    ASSERT_TRUE(makeCapture().writeFile(base, err)) << err;
    std::vector<std::string> lines;
    {
        std::ifstream in(base);
        std::string l;
        while (std::getline(in, l))
            lines.push_back(l);
    }

    auto writeLines = [&](const std::vector<std::string> &ls) {
        std::string p = path("corrupt");
        std::ofstream out(p);
        for (const auto &l : ls)
            out << l << "\n";
        return p;
    };
    auto expectReject = [&](std::vector<std::string> ls,
                            const char *what) {
        TraceData data;
        std::string e;
        EXPECT_FALSE(readTraceFile(writeLines(ls), data, e)) << what;
        EXPECT_FALSE(e.empty()) << what;
        // Errors name the offending line so a cut file is debuggable.
        EXPECT_NE(e.find("line"), std::string::npos) << what << ": " << e;
    };

    { // wrong version
        auto ls = lines;
        ls[0] = R"({"_eqx_trace":2,"pes":2,"workload":"bfs"})";
        expectReject(ls, "wrong version");
    }
    { // malformed JSON mid-file
        auto ls = lines;
        ls[1] = "{not json";
        expectReject(ls, "malformed line");
    }
    { // miscounted footer
        auto ls = lines;
        for (auto &l : ls)
            if (l.find("\"mem\"") != std::string::npos &&
                l.find("\"pe\":0") != std::string::npos)
                l = R"({"pe":0,"tail":1,"mem":3,"insts":5})";
        expectReject(ls, "footer op count mismatch");
    }
    { // data after the end marker
        auto ls = lines;
        ls.push_back(R"({"pe":0,"gap":0,"w":0,"addr":64})");
        expectReject(ls, "trailing data");
    }
    { // missing file
        TraceData data;
        std::string e;
        EXPECT_FALSE(
            readTraceFile(path("never-written"), data, e));
        EXPECT_FALSE(e.empty());
    }
}

TEST(ReplaySource, ReproducesTheRecordedInstructionStream)
{
    PeTrace t;
    t.ops = {{2, false, 0x40}, {0, true, 0x80}, {1, false, 0xc0}};
    t.tail = 2;
    t.insts = 8;

    ReplaySource src(&t);
    EXPECT_EQ(src.total(), 8u);

    // Expected instruction-for-instruction expansion.
    struct Step
    {
        bool isMem;
        bool isWrite;
        Addr addr;
    };
    std::vector<Step> want = {{false, false, 0}, {false, false, 0},
                              {true, false, 0x40}, {true, true, 0x80},
                              {false, false, 0},  {true, false, 0xc0},
                              {false, false, 0},  {false, false, 0}};
    TraceOp op;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(src.remaining(), want.size() - i);
        ASSERT_TRUE(src.next(op)) << i;
        EXPECT_EQ(op.isMem, want[i].isMem) << i;
        if (want[i].isMem) {
            EXPECT_EQ(op.isWrite, want[i].isWrite) << i;
            EXPECT_EQ(op.addr, want[i].addr) << i;
        }
    }
    EXPECT_FALSE(src.next(op));
    EXPECT_EQ(src.remaining(), 0u);
}

} // namespace
} // namespace eqx
