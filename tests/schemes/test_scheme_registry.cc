/**
 * @file
 * SchemeRegistry contract: every legacy enum resolves, string keys are
 * case-insensitive over names and aliases, duplicate registrations are
 * rejected atomically, and the name / single-network facts match the
 * table the pre-registry simulator hardcoded.
 */

#include <gtest/gtest.h>

#include <memory>

#include "schemes/scheme_registry.hh"

namespace eqx {
namespace {

TEST(SchemeRegistry, EveryLegacyEnumResolves)
{
    for (Scheme s :
         {Scheme::SingleBase, Scheme::VcMono, Scheme::InterposerCMesh,
          Scheme::SeparateBase, Scheme::Da2Mesh, Scheme::MultiPort,
          Scheme::EquiNox}) {
        const SchemeModel &m = SchemeRegistry::instance().byEnum(s);
        ASSERT_TRUE(m.legacyEnum().has_value());
        EXPECT_EQ(*m.legacyEnum(), s);
        // Round trip: the canonical name resolves back to the model.
        EXPECT_EQ(SchemeRegistry::instance().find(m.name()), &m);
    }
}

TEST(SchemeRegistry, NamesAndTopologyMatchPreRefactorTable)
{
    // The exact (schemeName, isSingleNetwork) table the simulator
    // hardcoded in switch statements before the registry existed.
    struct Row
    {
        Scheme s;
        const char *name;
        bool single;
    };
    for (const Row &r :
         {Row{Scheme::SingleBase, "SingleBase", true},
          Row{Scheme::VcMono, "VC-Mono", true},
          Row{Scheme::InterposerCMesh, "Interposer-CMesh", true},
          Row{Scheme::SeparateBase, "SeparateBase", false},
          Row{Scheme::Da2Mesh, "DA2Mesh", false},
          Row{Scheme::MultiPort, "MultiPort", false},
          Row{Scheme::EquiNox, "EquiNox", false}}) {
        EXPECT_STREQ(schemeName(r.s), r.name);
        EXPECT_EQ(isSingleNetwork(r.s), r.single) << r.name;
        EXPECT_EQ(SchemeRegistry::instance().byEnum(r.s).singleNetwork(),
                  r.single)
            << r.name;
    }
}

TEST(SchemeRegistry, LookupIsCaseInsensitiveOverNamesAndAliases)
{
    auto &reg = SchemeRegistry::instance();
    const SchemeModel *eq = reg.find("EquiNox");
    ASSERT_NE(eq, nullptr);
    EXPECT_EQ(reg.find("equinox"), eq);
    EXPECT_EQ(reg.find("EQUINOX"), eq);

    // Aliases resolve to the same model as the canonical name.
    EXPECT_EQ(reg.find("single"), reg.find("SingleBase"));
    EXPECT_EQ(reg.find("vcmono"), reg.find("VC-Mono"));
    EXPECT_EQ(reg.find("cmesh"), reg.find("Interposer-CMesh"));
    EXPECT_EQ(reg.find("separate"), reg.find("SeparateBase"));
    EXPECT_EQ(reg.find("da2"), reg.find("DA2Mesh"));
    EXPECT_EQ(reg.find("equinoxxy"), reg.find("EquiNox-XY"));
}

TEST(SchemeRegistry, UnknownKeyFindsNullAndByNameIsFatal)
{
    EXPECT_EQ(SchemeRegistry::instance().find("no-such-scheme"),
              nullptr);
    EXPECT_THROW(SchemeRegistry::instance().byName("no-such-scheme"),
                 std::runtime_error);
}

TEST(SchemeRegistry, PaperListExcludesRegistryOnlyVariants)
{
    auto paper = paperSchemeNames();
    ASSERT_EQ(paper.size(), 7u);
    EXPECT_EQ(paper.front(), "SingleBase");
    EXPECT_EQ(paper.back(), "EquiNox");

    // Variant TUs (EquiNox-XY, the topology variants): present in the
    // full listing, absent from the paper's seven, no legacy enum.
    auto all = allSchemeNames();
    EXPECT_EQ(all.size(), 10u);
    for (const char *key :
         {"EquiNox-XY", "EquiNox-Torus", "SeparateBase-CMesh"}) {
        const SchemeModel *m = SchemeRegistry::instance().find(key);
        ASSERT_NE(m, nullptr) << key;
        EXPECT_FALSE(m->legacyEnum().has_value()) << key;
        EXPECT_FALSE(m->singleNetwork()) << key;
    }
}

/** Minimal model for exercising add() collisions on a private registry. */
class StubModel : public SchemeModel
{
  public:
    StubModel(const char *name, std::vector<std::string> aliases,
              std::optional<Scheme> e)
        : name_(name), aliases_(std::move(aliases)), enum_(e)
    {}

    const char *name() const override { return name_; }
    std::vector<std::string> aliases() const override { return aliases_; }
    const char *summary() const override { return "stub"; }
    std::optional<Scheme> legacyEnum() const override { return enum_; }
    bool singleNetwork() const override { return true; }
    const char *replyNetName() const override { return "single"; }
    std::vector<NetworkSpec>
    networkSpecs(const SchemeBuild &) const override
    {
        return {};
    }
    std::unique_ptr<PacketInjector>
    makeInjector(const SchemeBuild &,
                 const std::vector<std::unique_ptr<Network>> &, NodeId,
                 bool) const override
    {
        return nullptr;
    }

  private:
    const char *name_;
    std::vector<std::string> aliases_;
    std::optional<Scheme> enum_;
};

TEST(SchemeRegistry, DuplicateRegistrationRejected)
{
    SchemeRegistry reg; // private empty registry
    EXPECT_TRUE(reg.add(std::make_unique<StubModel>(
        "Alpha", std::vector<std::string>{"a"}, std::nullopt)));

    // Same name (any case) is rejected.
    EXPECT_FALSE(reg.add(std::make_unique<StubModel>(
        "alpha", std::vector<std::string>{}, std::nullopt)));
    // A colliding alias is rejected, and rejects atomically: the
    // model's fresh name must not have been registered either.
    EXPECT_FALSE(reg.add(std::make_unique<StubModel>(
        "Beta", std::vector<std::string>{"A"}, std::nullopt)));
    EXPECT_EQ(reg.find("Beta"), nullptr);
    // A colliding legacy enum value is rejected too.
    EXPECT_TRUE(reg.add(std::make_unique<StubModel>(
        "Gamma", std::vector<std::string>{}, Scheme::SingleBase)));
    EXPECT_FALSE(reg.add(std::make_unique<StubModel>(
        "Delta", std::vector<std::string>{}, Scheme::SingleBase)));
    EXPECT_EQ(reg.find("Delta"), nullptr);

    EXPECT_EQ(reg.models().size(), 2u);
}

} // namespace
} // namespace eqx
