/** @file Cache bank: L2 service, miss handling, reply backpressure. */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/cache_bank.hh"

namespace eqx {
namespace {

class CapturingInjector : public PacketInjector
{
  public:
    bool
    tryInject(const PacketPtr &pkt) override
    {
        if (!accepting)
            return false;
        sent.push_back(pkt);
        return true;
    }

    bool accepting = true;
    std::vector<PacketPtr> sent;
};

struct Fixture
{
    explicit Fixture(CbParams p = CbParams{})
        : cb(5, p, &inj, &sizes)
    {}

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            cb.tick(++clock);
    }

    PacketPtr
    request(Addr addr, bool write = false, NodeId src = 1)
    {
        return makePacket(write ? PacketType::WriteRequest
                                : PacketType::ReadRequest,
                          src, 5,
                          write ? sizes.writeRequestBits
                                : sizes.readRequestBits,
                          addr);
    }

    CapturingInjector inj;
    PacketSizes sizes;
    Cycle clock = 0;
    CacheBank cb;
};

TEST(CacheBank, ColdReadMissProducesReadReply)
{
    Fixture f;
    auto req = f.request(0x4000);
    ASSERT_TRUE(f.cb.canAccept(req));
    f.cb.accept(req, 0);
    f.run(300);
    ASSERT_EQ(f.inj.sent.size(), 1u);
    const auto &rep = f.inj.sent[0];
    EXPECT_EQ(rep->type, PacketType::ReadReply);
    EXPECT_EQ(rep->src, 5);
    EXPECT_EQ(rep->dst, 1);
    EXPECT_EQ(rep->addr, 0x4000u);
    EXPECT_TRUE(f.cb.drained());
    EXPECT_EQ(f.cb.stats().get("l2_read_misses"), 1.0);
}

TEST(CacheBank, SecondAccessHitsAndIsFaster)
{
    Fixture f;
    f.cb.accept(f.request(0x4000), 0);
    f.run(300);
    Cycle miss_done = f.clock;
    (void)miss_done;
    f.inj.sent.clear();
    Cycle start = f.clock;
    f.cb.accept(f.request(0x4000, false, 2), f.clock);
    f.run(300);
    ASSERT_EQ(f.inj.sent.size(), 1u);
    EXPECT_EQ(f.cb.stats().get("l2_read_hits"), 1.0);
    // A hit completes in about the L2 pipeline latency.
    EXPECT_LE(f.inj.sent[0]->cycleCreated, start + 30);
}

TEST(CacheBank, ConcurrentMissesMerge)
{
    Fixture f;
    f.cb.accept(f.request(0x8000, false, 1), 0);
    f.cb.accept(f.request(0x8000, false, 2), 0);
    f.cb.accept(f.request(0x8000, false, 3), 0);
    f.run(400);
    EXPECT_EQ(f.inj.sent.size(), 3u); // one reply per requester
    EXPECT_EQ(f.cb.stats().get("l2_miss_merges"), 2.0);
    EXPECT_EQ(f.cb.stats().get("fills"), 1.0);
    // Only one memory access went to the HBM stack.
    EXPECT_EQ(f.cb.hbm().stats().get("reads"), 1.0);
}

TEST(CacheBank, WriteMissAllocatesAndAcks)
{
    Fixture f;
    f.cb.accept(f.request(0xC000, true), 0);
    f.run(400);
    ASSERT_EQ(f.inj.sent.size(), 1u);
    EXPECT_EQ(f.inj.sent[0]->type, PacketType::WriteReply);
    EXPECT_EQ(f.cb.stats().get("l2_write_misses"), 1.0);
    // Line is now resident and dirty; a read hits it.
    f.inj.sent.clear();
    f.cb.accept(f.request(0xC000), f.clock);
    f.run(50);
    ASSERT_EQ(f.inj.sent.size(), 1u);
    EXPECT_EQ(f.inj.sent[0]->type, PacketType::ReadReply);
    EXPECT_EQ(f.cb.stats().get("l2_read_hits"), 1.0);
}

TEST(CacheBank, InputQueueBoundsAcceptance)
{
    CbParams p;
    p.inputQueuePackets = 2;
    Fixture f(p);
    f.cb.accept(f.request(0x1000), 0);
    f.cb.accept(f.request(0x2000), 0);
    EXPECT_FALSE(f.cb.canAccept(f.request(0x3000)));
    f.run(300);
    EXPECT_TRUE(f.cb.canAccept(f.request(0x3000)));
}

TEST(CacheBank, BlockedReplyInjectionBackpressuresRequests)
{
    // The parking-lot mechanism: replies cannot inject, so the reply
    // queue fills, hits stall, the input queue fills, and canAccept
    // goes false - propagating pressure into the request network.
    CbParams p;
    p.inputQueuePackets = 4;
    p.replyQueuePackets = 2;
    Fixture f(p);
    f.inj.accepting = false;

    // Warm a line so subsequent requests are hits (hit path is the
    // one gated by the reply queue).
    f.cb.accept(f.request(0x0), 0);
    f.run(300);

    for (int i = 0; i < 12; ++i) {
        auto req = f.request(0x0, false, static_cast<NodeId>(i + 1));
        if (f.cb.canAccept(req))
            f.cb.accept(req, f.clock);
        f.run(20);
    }
    EXPECT_FALSE(f.cb.canAccept(f.request(0x0)));
    EXPECT_GT(f.cb.stats().get("stall_reply_queue"), 0.0);

    // Release the injection: everything drains.
    f.inj.accepting = true;
    f.run(600);
    EXPECT_TRUE(f.cb.drained());
    EXPECT_TRUE(f.cb.canAccept(f.request(0x0)));
}

TEST(CacheBank, DirtyEvictionWritesBack)
{
    // Tiny L2 so we can overflow a set quickly.
    CbParams p;
    p.l2 = CacheGeometry{2 * 64 * 4, 64, 2}; // 4 sets x 2 ways
    Fixture f(p);
    // Dirty a line, then evict it with two more lines in the same set.
    Addr base = 0;
    Addr stride = 4 * 64; // same set (4 sets)
    f.cb.accept(f.request(base, true), 0);
    f.run(300);
    f.cb.accept(f.request(base + stride), f.clock);
    f.run(300);
    f.cb.accept(f.request(base + 2 * stride), f.clock);
    f.run(500);
    EXPECT_GE(f.cb.hbm().stats().get("writes"), 1.0);
    EXPECT_GE(f.cb.stats().get("writebacks_done"), 1.0);
    EXPECT_TRUE(f.cb.drained());
}

TEST(CacheBank, ReplyDelivModeRejectsReplies)
{
    Fixture f;
    auto reply = makePacket(PacketType::ReadReply, 2, 5, 640);
    EXPECT_THROW(f.cb.canAccept(reply), std::logic_error);
}

} // namespace
} // namespace eqx
