/** @file MSHR allocation, merging and completion. */

#include <gtest/gtest.h>

#include "gpu/mshr.hh"

namespace eqx {
namespace {

TEST(Mshr, NewEntryThenMerge)
{
    MshrTable m(2, 4);
    EXPECT_EQ(m.allocate(10, 1), MshrTable::Alloc::NewEntry);
    EXPECT_TRUE(m.pending(10));
    EXPECT_EQ(m.allocate(10, 2), MshrTable::Alloc::Merged);
    EXPECT_EQ(m.occupancy(), 1);
}

TEST(Mshr, EntryLimit)
{
    MshrTable m(2, 4);
    m.allocate(1, 0);
    m.allocate(2, 0);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.allocate(3, 0), MshrTable::Alloc::Full);
    // Merging into an existing line still works when full.
    EXPECT_EQ(m.allocate(1, 1), MshrTable::Alloc::Merged);
}

TEST(Mshr, TargetLimit)
{
    MshrTable m(4, 2);
    m.allocate(5, 0);
    m.allocate(5, 1);
    EXPECT_EQ(m.allocate(5, 2), MshrTable::Alloc::Full);
}

TEST(Mshr, CompleteReturnsAllTargetsInOrder)
{
    MshrTable m(4, 8);
    m.allocate(7, 11);
    m.allocate(7, 22);
    m.allocate(7, 33);
    auto targets = m.complete(7);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0], 11u);
    EXPECT_EQ(targets[2], 33u);
    EXPECT_FALSE(m.pending(7));
    EXPECT_EQ(m.occupancy(), 0);
}

TEST(Mshr, CompleteUnknownLinePanics)
{
    MshrTable m(2, 2);
    EXPECT_THROW(m.complete(99), std::logic_error);
}

TEST(Mshr, FreedEntryReusable)
{
    MshrTable m(1, 2);
    m.allocate(1, 0);
    EXPECT_EQ(m.allocate(2, 0), MshrTable::Alloc::Full);
    m.complete(1);
    EXPECT_EQ(m.allocate(2, 0), MshrTable::Alloc::NewEntry);
}

} // namespace
} // namespace eqx
