/** @file Set-associative tag array with LRU. */

#include <gtest/gtest.h>

#include "gpu/tag_array.hh"

namespace eqx {
namespace {

CacheGeometry
tiny()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return {512, 64, 2};
}

TEST(TagArray, GeometryChecks)
{
    TagArray t(tiny());
    EXPECT_EQ(t.geometry().numSets(), 4);
    // Inconsistent size panics.
    CacheGeometry bad{500, 64, 2};
    EXPECT_THROW(TagArray{bad}, std::logic_error);
}

TEST(TagArray, MissThenHit)
{
    TagArray t(tiny());
    EXPECT_FALSE(t.probe(10));
    t.insert(10, false);
    EXPECT_TRUE(t.probe(10));
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(TagArray, LruEviction)
{
    TagArray t(tiny());
    // Lines 0, 4, 8 map to set 0 (line % 4).
    t.insert(0, false);
    t.insert(4, false);
    t.probe(0); // 0 now MRU, 4 is LRU
    auto v = t.insert(8, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.line, 4u);
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(8));
    EXPECT_FALSE(t.contains(4));
}

TEST(TagArray, VictimCarriesDirtyBit)
{
    TagArray t(tiny());
    t.insert(0, false);
    t.markDirty(0);
    t.insert(4, false);
    auto v = t.insert(8, false); // evicts 0 (LRU) which is dirty
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.line, 0u);
    EXPECT_TRUE(v.dirty);
}

TEST(TagArray, InsertIntoFreeWayHasNoVictim)
{
    TagArray t(tiny());
    auto v = t.insert(3, true);
    EXPECT_FALSE(v.valid);
}

TEST(TagArray, MarkDirtyOnAbsentLineFails)
{
    TagArray t(tiny());
    EXPECT_FALSE(t.markDirty(42));
}

TEST(TagArray, InvalidateReportsDirty)
{
    TagArray t(tiny());
    t.insert(5, false);
    t.markDirty(5);
    bool dirty = false;
    EXPECT_TRUE(t.invalidate(5, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_FALSE(t.contains(5));
    EXPECT_FALSE(t.invalidate(5));
}

TEST(TagArray, DoubleInsertPanics)
{
    TagArray t(tiny());
    t.insert(1, false);
    EXPECT_THROW(t.insert(1, false), std::logic_error);
}

TEST(TagArray, SetsAreIndependent)
{
    TagArray t(tiny());
    // Fill set 0 beyond capacity; set 1 lines unaffected.
    t.insert(0, false);
    t.insert(4, false);
    t.insert(1, false); // set 1
    t.insert(8, false); // evicts within set 0
    EXPECT_TRUE(t.contains(1));
}

} // namespace
} // namespace eqx
