/** @file PE model: issue, L1 behaviour, stalls, reply handling. */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/pe.hh"

namespace eqx {
namespace {

class CapturingInjector : public PacketInjector
{
  public:
    bool
    tryInject(const PacketPtr &pkt) override
    {
        if (!accepting)
            return false;
        sent.push_back(pkt);
        return true;
    }

    bool accepting = true;
    std::vector<PacketPtr> sent;
};

struct Fixture
{
    explicit Fixture(WorkloadProfile wp, PeParams pp = PeParams{})
        : amap{64, {10, 20}},
          pe(0, pp, PeTraceGen(wp, 0, 1), &amap, &inj, &sizes)
    {}

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            pe.tick(++clock);
    }

    PacketPtr
    replyFor(const PacketPtr &req)
    {
        bool read = req->type == PacketType::ReadRequest;
        return makePacket(read ? PacketType::ReadReply
                               : PacketType::WriteReply,
                          req->dst, req->src,
                          read ? sizes.readReplyBits
                               : sizes.writeReplyBits,
                          req->addr);
    }

    AddressMap amap;
    CapturingInjector inj;
    PacketSizes sizes;
    Cycle clock = 0;
    ProcessingElement pe;
};

WorkloadProfile
aluOnly()
{
    WorkloadProfile wp;
    wp.instsPerPe = 100;
    wp.memRatio = 0.0;
    return wp;
}

WorkloadProfile
readStream(int lines = 4096)
{
    WorkloadProfile wp;
    wp.instsPerPe = 20;
    wp.memRatio = 1.0;
    wp.readFrac = 1.0;
    wp.privateLines = lines;
    wp.sharedFrac = 0.0;
    wp.seqProb = 1.0;
    return wp;
}

TEST(Pe, AluOnlyFinishesWithoutTraffic)
{
    Fixture f(aluOnly());
    f.run(200);
    EXPECT_TRUE(f.pe.done());
    EXPECT_EQ(f.pe.instsIssued(), 100u);
    EXPECT_TRUE(f.inj.sent.empty());
}

TEST(Pe, ReadMissSendsRequestToMappedCb)
{
    Fixture f(readStream());
    f.run(2);
    ASSERT_FALSE(f.inj.sent.empty());
    const auto &pkt = f.inj.sent.front();
    EXPECT_EQ(pkt->type, PacketType::ReadRequest);
    EXPECT_EQ(pkt->src, 0);
    EXPECT_EQ(pkt->dst, f.amap.cbNodeOf(pkt->addr));
    EXPECT_GT(f.pe.outstanding(), 0);
    EXPECT_FALSE(f.pe.done());
}

TEST(Pe, RepliesCompleteTheRun)
{
    Fixture f(readStream());
    for (int round = 0; round < 50 && !f.pe.done(); ++round) {
        f.run(5);
        for (auto &req : f.inj.sent)
            f.pe.accept(f.replyFor(req), f.clock);
        f.inj.sent.clear();
    }
    EXPECT_TRUE(f.pe.done());
    EXPECT_EQ(f.pe.outstanding(), 0);
    EXPECT_EQ(f.pe.instsIssued(), 20u);
}

TEST(Pe, SecondAccessToSameLineHitsInL1)
{
    // One-line working set: after the fill, everything is an L1 hit.
    Fixture f(readStream(1));
    f.run(2);
    ASSERT_EQ(f.inj.sent.size(), 1u);
    f.pe.accept(f.replyFor(f.inj.sent[0]), f.clock);
    f.inj.sent.clear();
    f.run(50);
    EXPECT_TRUE(f.pe.done());
    EXPECT_TRUE(f.inj.sent.empty()); // no further misses
    EXPECT_GT(f.pe.stats().get("l1_read_hits"), 0.0);
}

TEST(Pe, MshrMergesSameLineMisses)
{
    // Same line, merges instead of duplicate requests. The reply
    // completes every merged target.
    PeParams pp;
    pp.issueWidth = 4;
    Fixture f(readStream(1), pp);
    f.pe.tick(++f.clock); // issues several ops to the same line
    EXPECT_EQ(f.inj.sent.size(), 1u);
    EXPECT_GE(f.pe.outstanding(), 2);
    f.pe.accept(f.replyFor(f.inj.sent[0]), f.clock);
    EXPECT_EQ(f.pe.outstanding(), 0);
}

TEST(Pe, InjectorRefusalStallsWithoutLoss)
{
    Fixture f(readStream());
    f.inj.accepting = false;
    f.run(20);
    EXPECT_TRUE(f.inj.sent.empty());
    EXPECT_GT(f.pe.stats().get("stall_inject"), 0.0);
    f.inj.accepting = true;
    for (int round = 0; round < 50 && !f.pe.done(); ++round) {
        f.run(5);
        for (auto &req : f.inj.sent)
            f.pe.accept(f.replyFor(req), f.clock);
        f.inj.sent.clear();
    }
    EXPECT_TRUE(f.pe.done());
}

TEST(Pe, OutstandingWindowLimitsIssue)
{
    PeParams pp;
    pp.maxOutstanding = 2;
    pp.issueWidth = 4;
    WorkloadProfile wp = readStream(4096);
    wp.seqProb = 0.0; // jump around: all distinct lines
    Fixture f(wp, pp);
    f.run(10);
    EXPECT_LE(f.pe.outstanding(), 2);
    EXPECT_GT(f.pe.stats().get("stall_window"), 0.0);
}

TEST(Pe, WritesAreWriteThrough)
{
    WorkloadProfile wp = readStream(8);
    wp.readFrac = 0.0; // all writes
    Fixture f(wp);
    f.run(3);
    ASSERT_FALSE(f.inj.sent.empty());
    EXPECT_EQ(f.inj.sent.front()->type, PacketType::WriteRequest);
    int before = f.pe.outstanding();
    EXPECT_GT(before, 0);
    f.pe.accept(f.replyFor(f.inj.sent.front()), f.clock);
    EXPECT_EQ(f.pe.outstanding(), before - 1);
}

TEST(Pe, RequestDeliveryToPePanics)
{
    Fixture f(readStream());
    auto req = makePacket(PacketType::ReadRequest, 5, 0, 128);
    EXPECT_THROW(f.pe.accept(req, 0), std::logic_error);
}

} // namespace
} // namespace eqx
