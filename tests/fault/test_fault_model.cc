/** @file Fault taxonomy, schedule generation and the fault plane. */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fault/fault_model.hh"
#include "fault/fault_plane.hh"

namespace eqx {
namespace {

std::vector<FaultWireDesc>
mixedWires()
{
    // Two on-die NI feeds and two interposer EIR links.
    return {
        {0, 0, 0, false, 0},
        {1, 0, 1, false, 0},
        {2, 1, 5, true, 2},
        {2, 2, 7, true, 3},
    };
}

TEST(FaultKinds, ParseTokensAndGroups)
{
    std::uint32_t k = 0;
    ASSERT_TRUE(parseFaultKinds("stall,corrupt", k));
    EXPECT_EQ(k, kTransientFaultKinds);
    ASSERT_TRUE(parseFaultKinds("link_kill", k));
    EXPECT_EQ(k, faultBit(FaultKind::PermanentLinkKill));
    ASSERT_TRUE(parseFaultKinds("transient,router_kill", k));
    EXPECT_EQ(k, kTransientFaultKinds |
                     faultBit(FaultKind::PermanentRouterInjKill));
    ASSERT_TRUE(parseFaultKinds("all", k));
    EXPECT_EQ(k, kAllFaultKinds);
    EXPECT_FALSE(parseFaultKinds("meltdown", k));
}

TEST(FaultSchedule, DeterministicForSeedAndDecorrelatedAcrossSeeds)
{
    FaultConfig cfg;
    cfg.ratePerKTick = 50;
    cfg.kinds = kAllFaultKinds;
    cfg.horizonTicks = 10'000;
    auto wires = mixedWires();

    auto a = generateFaultSchedule(cfg, wires, 42);
    auto b = generateFaultSchedule(cfg, wires, 42);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 100u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tick, b[i].tick);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].wire, b[i].wire);
    }

    auto c = generateFaultSchedule(cfg, wires, 43);
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].tick != c[i].tick || a[i].kind != c[i].kind ||
                  a[i].wire != c[i].wire;
    EXPECT_TRUE(differs);
}

TEST(FaultSchedule, SortedRatedAndKindMasked)
{
    FaultConfig cfg;
    cfg.ratePerKTick = 10;
    cfg.kinds = faultBit(FaultKind::TransientCorrupt);
    cfg.horizonTicks = 100'000;
    auto sched = generateFaultSchedule(cfg, mixedWires(), 7);

    // Expected count = rate * horizon / 1000 = 1000, +-1 from the
    // fractional Bernoulli draw (here exact, so equality).
    EXPECT_NEAR(static_cast<double>(sched.size()), 1000.0, 1.0);
    Cycle prev = 0;
    for (const auto &e : sched) {
        EXPECT_EQ(e.kind, FaultKind::TransientCorrupt);
        EXPECT_GE(e.tick, prev);
        EXPECT_GE(e.tick, 1u);
        EXPECT_LE(e.tick, cfg.horizonTicks);
        prev = e.tick;
    }
}

TEST(FaultSchedule, PermanentKillsRestrictedToInterposerWires)
{
    FaultConfig cfg;
    cfg.ratePerKTick = 20;
    cfg.kinds = kAllFaultKinds;
    cfg.horizonTicks = 20'000;
    auto wires = mixedWires();
    auto sched = generateFaultSchedule(cfg, wires, 3);
    int kills = 0;
    for (const auto &e : sched) {
        if (!(faultBit(e.kind) & kPermanentFaultKinds))
            continue;
        ++kills;
        EXPECT_TRUE(wires[static_cast<std::size_t>(e.wire)].interposer)
            << "kill targeted on-die wire " << e.wire;
    }
    EXPECT_GT(kills, 0);
}

TEST(FaultSchedule, KillsFallBackToAllWiresWithoutInterposer)
{
    FaultConfig cfg;
    cfg.ratePerKTick = 20;
    cfg.kinds = faultBit(FaultKind::PermanentLinkKill);
    cfg.horizonTicks = 10'000;
    std::vector<FaultWireDesc> wires = {{0, 0, 0, false, 0},
                                        {1, 0, 1, false, 0}};
    auto sched = generateFaultSchedule(cfg, wires, 9);
    EXPECT_GT(sched.size(), 0u);
    for (const auto &e : sched)
        EXPECT_LT(e.wire, 2);
}

TEST(FaultModel, FlitFcsDistinguishesFields)
{
    Flit a;
    a.index = 1;
    a.vc = 0;
    Flit b = a;
    b.index = 2;
    EXPECT_NE(flitFcs(a), flitFcs(b));
    Flit c = a;
    c.vc = 1;
    EXPECT_NE(flitFcs(a), flitFcs(c));
    Flit d = a;
    d.isTail = true;
    EXPECT_NE(flitFcs(a), flitFcs(d));
}

/** Records every host callback with its arrival order. */
struct RecordingHost : FaultPlaneHost
{
    std::vector<std::tuple<NodeId, NodeId, std::uint32_t>> acks;
    std::vector<std::tuple<NodeId, int, int>> credits;
    std::vector<std::pair<NodeId, int>> masks;

    void
    faultDeliverAck(NodeId ni, NodeId peer, std::uint32_t seq) override
    {
        acks.emplace_back(ni, peer, seq);
    }
    void
    faultReturnCredit(NodeId ni, int buf, int vc) override
    {
        credits.emplace_back(ni, buf, vc);
    }
    void
    faultMaskBuffer(NodeId ni, int buf) override
    {
        masks.emplace_back(ni, buf);
    }
};

FaultPlane
makePlane(const FaultConfig &cfg, RecordingHost &host,
          const std::string &net = "reply")
{
    FaultPlane plane(cfg, net, &host);
    for (const auto &w : mixedWires())
        plane.addWire(w.ni, w.buf, w.router, w.interposer, w.spanHops,
                      /*credit_latency=*/2);
    return plane;
}

TEST(FaultPlane, StallCoversExactlyDurationTicks)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    FaultEvent e;
    e.tick = 5;
    e.kind = FaultKind::TransientStall;
    e.wire = 0;
    e.duration = 3;
    cfg.events.push_back(e);
    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);

    for (Cycle t = 1; t <= 10; ++t) {
        plane.tick(t);
        bool stalled = plane.wireStalled(0, t);
        EXPECT_EQ(stalled, t >= 5 && t < 8) << "tick " << t;
        EXPECT_FALSE(plane.wireStalled(1, t));
    }
    EXPECT_EQ(plane.stats().stallEvents, 1u);
}

TEST(FaultPlane, CorruptPerturbsWholeWormsOnly)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    FaultEvent e;
    e.tick = 1;
    e.kind = FaultKind::TransientCorrupt;
    e.wire = 2;
    e.worms = 1;
    cfg.events.push_back(e);
    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);
    plane.tick(1);

    auto flit = [](bool head, bool tail, int idx) {
        Flit f;
        f.isHead = head;
        f.isTail = tail;
        f.index = idx;
        f.fcs = flitFcs(f);
        return f;
    };
    // Worm 1: every flit (head, body, tail) must arrive corrupted.
    for (int i = 0; i < 3; ++i) {
        Flit f = flit(i == 0, i == 2, i);
        plane.touchFlit(2, f);
        EXPECT_NE(f.fcs, flitFcs(f)) << "worm 1 flit " << i;
    }
    // Worm 2: the corruption budget is spent; clean end to end.
    for (int i = 0; i < 3; ++i) {
        Flit f = flit(i == 0, i == 2, i);
        plane.touchFlit(2, f);
        EXPECT_EQ(f.fcs, flitFcs(f)) << "worm 2 flit " << i;
    }
}

TEST(FaultPlane, ChecksumDropSchedulesCreditReconciliation)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);

    Flit f;
    f.isHead = true;
    f.vc = 1;
    plane.onChecksumDrop(2, f, /*now=*/10);
    EXPECT_FALSE(plane.quiescent());
    plane.tick(11); // creditLatency = 2: not yet due
    EXPECT_TRUE(host.credits.empty());
    plane.tick(12);
    ASSERT_EQ(host.credits.size(), 1u);
    EXPECT_EQ(host.credits[0], std::make_tuple(NodeId{2}, 1, 1));
    EXPECT_TRUE(plane.quiescent());
    EXPECT_EQ(plane.stats().wormsDropped, 1u);
    EXPECT_EQ(plane.stats().flitsDropped, 1u);
    EXPECT_EQ(plane.stats().creditsReconciled, 1u);
}

TEST(FaultPlane, AckDeliveredAfterAckLatency)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    cfg.ackLatency = 4;
    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);

    plane.scheduleAck(/*to=*/1, /*peer=*/2, /*seq=*/7, /*now=*/100);
    plane.tick(103);
    EXPECT_TRUE(host.acks.empty());
    plane.tick(104);
    ASSERT_EQ(host.acks.size(), 1u);
    EXPECT_EQ(host.acks[0],
              std::make_tuple(NodeId{1}, NodeId{2}, std::uint32_t{7}));
    EXPECT_EQ(plane.stats().acks, 1u);
}

TEST(FaultPlane, RouterKillMasksEveryWireOfThatRouterOnce)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    cfg.detectLatency = 3;
    FaultEvent e;
    e.tick = 10;
    e.kind = FaultKind::PermanentRouterInjKill;
    e.wire = 0; // router 0 owns exactly wire 0
    cfg.events.push_back(e);
    FaultEvent e2 = e;
    e2.tick = 11;
    e2.kind = FaultKind::PermanentLinkKill; // re-kill: idempotent
    cfg.events.push_back(e2);
    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);

    for (Cycle t = 1; t <= 20; ++t)
        plane.tick(t);
    EXPECT_EQ(plane.stats().killEvents, 1u);
    ASSERT_EQ(host.masks.size(), 1u);
    EXPECT_EQ(host.masks[0], std::make_pair(NodeId{0}, 0));
}

TEST(FaultPlane, ExplicitEventsFilterByNetAndResolveTargets)
{
    FaultConfig cfg;
    cfg.forceProtocol = true;
    FaultEvent other;
    other.tick = 1;
    other.net = "request"; // not this plane's network: dropped
    other.wire = 0;
    cfg.events.push_back(other);
    FaultEvent by_ni;
    by_ni.tick = 2;
    by_ni.wire = -1; // resolve by (ni, buf)
    by_ni.ni = 2;
    by_ni.buf = 2;
    cfg.events.push_back(by_ni);
    FaultEvent any_ip;
    any_ip.tick = 3;
    any_ip.wire = FaultEvent::kAnyInterposerWire;
    cfg.events.push_back(any_ip);
    FaultEvent absent;
    absent.tick = 4;
    absent.wire = -1;
    absent.ni = 99; // structure absent on this network: dropped
    absent.buf = 0;
    cfg.events.push_back(absent);

    RecordingHost host;
    FaultPlane plane = makePlane(cfg, host);
    plane.finalize(1);

    ASSERT_EQ(plane.schedule().size(), 2u);
    EXPECT_EQ(plane.schedule()[0].wire, 3); // (ni 2, buf 2)
    EXPECT_EQ(plane.schedule()[1].wire, 2); // first interposer wire
}

} // namespace
} // namespace eqx
