/**
 * @file
 * Network-level fault injection and recovery (DESIGN.md §11): worm
 * drops with exactly-once delivery, stall semantics, permanent-kill
 * masking + fail-over, bounded loss with retxMax, and bit-equivalence
 * of the two tick loops under an identical fault schedule.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/network.hh"

namespace eqx {
namespace {

class CountingSink : public PacketSink
{
  public:
    bool canAccept(const PacketPtr &) override { return true; }
    void
    accept(const PacketPtr &pkt, Cycle) override
    {
        ++delivered;
        last = pkt;
    }
    int delivered = 0;
    PacketPtr last;
};

NetworkSpec
meshSpec(int w, int h)
{
    NetworkSpec spec;
    spec.params.width = w;
    spec.params.height = h;
    return spec;
}

FaultEvent
eventAt(Cycle tick, FaultKind kind, NodeId ni, int buf)
{
    FaultEvent e;
    e.tick = tick;
    e.kind = kind;
    e.wire = -1;
    e.ni = ni;
    e.buf = buf;
    return e;
}

TEST(Resilience, CorruptWormsRedeliverExactlyOnce)
{
    FaultConfig fc;
    fc.retxTimeout = 64;
    FaultEvent e = eventAt(1, FaultKind::TransientCorrupt, 0, 0);
    e.worms = 3;
    fc.events.push_back(e);

    Network net(meshSpec(4, 4));
    net.armFaults(fc, "req", 1);
    CountingSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    for (int i = 0; i < 6; ++i) {
        auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
        while (!net.inject(0, pkt))
            net.coreTick(++clock);
    }
    for (int c = 0; c < 2000 && !net.drained(); ++c)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());

    // The first three worms dropped on the wire; retransmission
    // recovered each one, and the receiver deduped, so the sink saw
    // every packet exactly once.
    EXPECT_EQ(sink.delivered, 6);
    const FaultStats &st = net.faultPlane()->stats();
    EXPECT_EQ(st.seqPackets, 6u);
    EXPECT_EQ(st.delivered, 6u);
    EXPECT_EQ(st.wormsDropped, 3u);
    EXPECT_GE(st.retransmissions, 3u);
    EXPECT_EQ(st.lost, 0u);
    // Credit reconciliation: every dropped flit's debit was restored
    // (or the VC would have leaked a slot per drop).
    EXPECT_GT(st.flitsDropped, 0u);
    EXPECT_EQ(st.creditsReconciled, st.flitsDropped);
}

TEST(Resilience, StallDelaysDeliveryWithoutLoss)
{
    FaultConfig fc;
    FaultEvent e = eventAt(1, FaultKind::TransientStall, 0, 0);
    e.duration = 100;
    fc.events.push_back(e);

    Network net(meshSpec(4, 4));
    net.armFaults(fc, "req", 1);
    CountingSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
    ASSERT_TRUE(net.inject(0, pkt));
    for (int c = 0; c < 400 && !net.drained(); ++c)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());

    // Nothing is lost on a stall; the worm just waits out the window.
    EXPECT_EQ(sink.delivered, 1);
    const FaultStats &st = net.faultPlane()->stats();
    EXPECT_EQ(st.stallEvents, 1u);
    EXPECT_EQ(st.wormsDropped, 0u);
    EXPECT_EQ(st.lost, 0u);
    // An unstalled 4x4 corner-to-corner trip takes ~30 cycles
    // (Network.SinglePacketDelivery); the 100-tick stall dominates.
    EXPECT_GT(pkt->cycleEjected - pkt->cycleInjected, 100u);
}

TEST(Resilience, PermanentEirKillMasksPortAndDeliveryContinues)
{
    FaultConfig fc;
    fc.retxTimeout = 64;
    FaultEvent kill;
    kill.tick = 50;
    kill.kind = FaultKind::PermanentLinkKill;
    kill.wire = FaultEvent::kAnyInterposerWire;
    fc.events.push_back(kill);

    NetworkSpec spec = meshSpec(8, 8);
    spec.eirGroups[{27}] = {11, 25, 29, 43};
    Network net(spec);
    net.armFaults(fc, "reply", 3);
    std::vector<CountingSink> sinks(64);
    for (NodeId i = 0; i < 64; ++i)
        net.setSink(i, &sinks[static_cast<std::size_t>(i)]);

    // CB traffic to every quadrant, spanning the kill and the
    // detection window, so the surviving EIRs absorb the shift.
    Rng rng(5);
    Cycle clock = 0;
    int sent = 0;
    for (int c = 0; c < 600; ++c) {
        if (c % 3 == 0 && net.canInject(27)) {
            NodeId d = static_cast<NodeId>(rng.nextBounded(64));
            if (d != 27) {
                ASSERT_TRUE(net.inject(
                    27, makePacket(PacketType::ReadReply, 27, d, 640)));
                ++sent;
            }
        }
        net.coreTick(++clock);
    }
    for (int c = 0; c < 4000 && !net.drained(); ++c)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());

    const FaultStats &st = net.faultPlane()->stats();
    EXPECT_EQ(st.killEvents, 1u);
    EXPECT_EQ(st.maskEvents, 1u);
    EXPECT_EQ(net.maskedInjBuffers(), 1);
    int got = 0;
    for (const auto &s : sinks)
        got += s.delivered;
    // Worms in flight toward the dead wire at kill time dropped and
    // were retransmitted; nothing is lost end to end.
    EXPECT_EQ(got, sent);
    EXPECT_EQ(st.delivered, static_cast<std::uint64_t>(sent));
    EXPECT_EQ(st.lost, 0u);
}

TEST(Resilience, RetxMaxBoundsLossAndNetworkStillDrains)
{
    FaultConfig fc;
    fc.retxTimeout = 32;
    fc.retxMax = 1;
    fc.detectLatency = 1;
    fc.events.push_back(
        eventAt(1, FaultKind::PermanentLinkKill, 0, 0));

    Network net(meshSpec(4, 4));
    net.armFaults(fc, "req", 1);
    CountingSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    for (int i = 0; i < 3; ++i) {
        auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
        while (!net.inject(0, pkt))
            net.coreTick(++clock);
    }
    for (int c = 0; c < 2000 && !net.drained(); ++c)
        net.coreTick(++clock);

    // Node 0's only injection wire is dead: every attempt (original +
    // one retransmission each) drops, then the NI gives up. The run
    // terminates cleanly instead of wedging on unackable packets.
    ASSERT_TRUE(net.drained());
    EXPECT_EQ(sink.delivered, 0);
    const FaultStats &st = net.faultPlane()->stats();
    EXPECT_EQ(st.lost, 3u);
    EXPECT_EQ(st.retransmissions, 3u);
    EXPECT_EQ(st.delivered, 0u);
    EXPECT_EQ(st.creditsReconciled, st.flitsDropped);
    EXPECT_EQ(net.maskedInjBuffers(), 1);
}

TEST(Resilience, TickLoopsBitIdenticalUnderIdenticalFaultSchedule)
{
    FaultConfig fc;
    fc.ratePerKTick = 20;
    fc.kinds = kTransientFaultKinds;
    fc.horizonTicks = 2000;
    fc.retxTimeout = 64;
    fc.stallTicks = 8;

    NetworkSpec spec = meshSpec(6, 6);
    spec.eirGroups[{21}] = {9, 19, 23, 33};
    NetworkSpec specEx = spec;
    specEx.params.exhaustiveTick = true;

    Network act(spec), exh(specEx);
    act.armFaults(fc, "reply", 17);
    exh.armFaults(fc, "reply", 17);
    int n = act.params().numNodes();
    std::vector<CountingSink> actSinks(static_cast<std::size_t>(n));
    std::vector<CountingSink> exhSinks(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
        act.setSink(i, &actSinks[static_cast<std::size_t>(i)]);
        exh.setSink(i, &exhSinks[static_cast<std::size_t>(i)]);
    }

    auto drive = [n](Network &net, Rng &rng, Cycle &clock, int cycles) {
        for (int c = 0; c < cycles; ++c) {
            for (NodeId s = 0; s < n; ++s) {
                if (!rng.chance(0.05))
                    continue;
                NodeId d = static_cast<NodeId>(rng.nextBounded(n));
                if (d != s && net.canInject(s))
                    net.inject(
                        s, makePacket(PacketType::ReadReply, s, d, 640));
            }
            net.coreTick(++clock);
        }
    };
    Rng ra(11), re(11);
    Cycle ca = 0, ce = 0;
    drive(act, ra, ca, 1000);
    drive(exh, re, ce, 1000);
    for (int c = 0; c < 8000 && !(act.drained() && exh.drained()); ++c) {
        act.coreTick(++ca);
        exh.coreTick(++ce);
    }
    ASSERT_TRUE(act.drained());
    ASSERT_TRUE(exh.drained());

    // The schedule actually fired (otherwise this test proves nothing).
    EXPECT_GT(act.faultPlane()->stats().stallEvents +
                  act.faultPlane()->stats().corruptEvents,
              0u);

    for (NodeId i = 0; i < n; ++i)
        EXPECT_EQ(actSinks[static_cast<std::size_t>(i)].delivered,
                  exhSinks[static_cast<std::size_t>(i)].delivered)
            << "node " << i;
    StatGroup sa, se;
    act.exportStats(sa, "net");
    exh.exportStats(se, "net");
    ASSERT_EQ(sa.all().size(), se.all().size());
    auto ia = sa.all().begin();
    auto ie = se.all().begin();
    for (; ia != sa.all().end(); ++ia, ++ie) {
        EXPECT_EQ(ia->first, ie->first);
        EXPECT_EQ(ia->second, ie->second) << ia->first;
    }
}

} // namespace
} // namespace eqx
