/** @file Router pipeline: RC/VA/SA stages, atomic VCs, credits. */

#include <gtest/gtest.h>

#include <memory>

#include "noc/router.hh"

namespace eqx {
namespace {

/**
 * A single router wired by hand: one Geo input (from the "west"
 * neighbour), one Geo output (to the "east"), plus the local ejection
 * port. The test drives flits in via acceptFlit and steps the stages
 * in the same order the network does (SA, VA, RC per tick).
 */
class RouterHarness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = makeTopology(3, 3);
        router = std::make_unique<Router>(4 /*centre (1,1)*/, topo.get(),
                                          &params, &activity);
        inCredit = std::make_unique<Channel<Credit>>(1);
        outFlits = std::make_unique<Channel<Flit>>(1);
        ejFlits = std::make_unique<Channel<Flit>>(1);
        inPort = router->addInputPort(PortKind::Geo, Dir::West,
                                      inCredit.get());
        outPort = router->addOutputPort(PortKind::Geo, Dir::East,
                                        outFlits.get(),
                                        params.vcDepthFlits);
        ejPort = router->addOutputPort(PortKind::LocalEj, Dir::Local,
                                       ejFlits.get(),
                                       params.vcDepthFlits);
    }

    /** Run one internal tick worth of stages. */
    void
    tick()
    {
        ++now;
        router->switchAllocStage(now);
        router->vcAllocStage(now);
        router->routeComputeStage(now);
    }

    /** Send a whole packet into input VC @p vc. */
    PacketPtr
    sendPacket(NodeId dst, int vc, int flits = 1)
    {
        auto pkt = makePacket(flits > 1 ? PacketType::ReadReply
                                        : PacketType::ReadRequest,
                              3, dst, flits * params.flitBits);
        for (int i = 0; i < flits; ++i) {
            Flit f;
            f.pkt = pkt;
            f.index = i;
            f.isHead = i == 0;
            f.isTail = i == flits - 1;
            f.vc = vc;
            router->acceptFlit(inPort, std::move(f), now);
        }
        return pkt;
    }

    const VcBuffer &
    inVc(int vc) const
    {
        return router->inputPort(inPort).vcs[static_cast<std::size_t>(
            vc)];
    }

    int
    drainOut(Channel<Flit> &ch)
    {
        Flit f;
        int n = 0;
        while (ch.receive(now + 2, f))
            ++n;
        return n;
    }

    NocParams params;
    NetworkActivity activity;
    std::unique_ptr<const Topology> topo;
    std::unique_ptr<Router> router;
    std::unique_ptr<Channel<Credit>> inCredit;
    std::unique_ptr<Channel<Flit>> outFlits;
    std::unique_ptr<Channel<Flit>> ejFlits;
    int inPort = -1, outPort = -1, ejPort = -1;
    Cycle now = 0;
};

TEST_F(RouterHarness, RcRoutesEjectionForLocalDest)
{
    sendPacket(4 /*this node*/, 0);
    tick(); // RC
    EXPECT_EQ(inVc(0).state, VcState::RouteComputed);
    ASSERT_EQ(inVc(0).routeCandidates.size(), 1u);
    EXPECT_EQ(inVc(0).routeCandidates[0], ejPort);
}

TEST_F(RouterHarness, RcRoutesEastForEastDest)
{
    sendPacket(5 /*(2,1)*/, 0);
    tick();
    ASSERT_FALSE(inVc(0).routeCandidates.empty());
    EXPECT_EQ(inVc(0).routeCandidates[0], outPort);
}

TEST_F(RouterHarness, FullPipelineTraversesInThreeTicks)
{
    sendPacket(5, 0);
    tick(); // RC
    tick(); // VA
    EXPECT_EQ(inVc(0).state, VcState::Active);
    tick(); // SA + ST: flit on the output channel
    EXPECT_EQ(drainOut(*outFlits), 1);
    EXPECT_EQ(inVc(0).state, VcState::Idle); // tail released it
    EXPECT_EQ(router->flitsForwarded(), 1u);
}

TEST_F(RouterHarness, CreditReturnedUpstreamOnTraversal)
{
    sendPacket(5, 0);
    tick();
    tick();
    tick();
    Credit c;
    ASSERT_TRUE(inCredit->receive(now + 2, c));
    EXPECT_EQ(c.vc, 0);
}

TEST_F(RouterHarness, AtomicVcSecondPacketWaitsForDownstreamDrain)
{
    // First multi-flit packet wins output VC 0; a second packet in the
    // other input VC must not be granted any output VC on that port
    // until the downstream buffer is empty again (credits return).
    sendPacket(5, 0, 3);
    sendPacket(5, 1, 3);
    tick(); // RC both
    tick(); // VA: both request; only one wins (distinct out VCs okay,
            // but out VC 1 is also free - so both may become Active).
    // Drive until the first packet fully leaves.
    int sent = 0;
    for (int i = 0; i < 20 && sent < 6; ++i) {
        tick();
        sent += drainOut(*outFlits);
    }
    EXPECT_EQ(sent, 6); // both packets eventually traverse

    // Now occupy out VC 0 downstream: no credits returned.
    sendPacket(5, 0, 3);
    tick();
    tick();
    // out VC 0 and 1 both show fewer than full credits only while
    // occupied; with no creditArrived calls the third packet can only
    // be granted a VC whose credits are still full.
    if (inVc(0).state == VcState::Active)
        EXPECT_EQ(router->outputPort(outPort)
                      .vcs[static_cast<std::size_t>(inVc(0).outVc)]
                      .busy,
                  true);
}

TEST_F(RouterHarness, NoCreditsNoTraversal)
{
    // Exhaust the credits of *both* output VCs (no credits are ever
    // returned in this harness): two 5-flit packets fill the adaptive
    // and escape VC budgets, then a third packet must stall in VA.
    sendPacket(5, 0, 5);
    for (int i = 0; i < 12; ++i)
        tick();
    sendPacket(5, 1, 5);
    for (int i = 0; i < 12; ++i)
        tick();
    EXPECT_EQ(drainOut(*outFlits), 10);

    sendPacket(5, 0, 5);
    for (int i = 0; i < 12; ++i)
        tick();
    EXPECT_EQ(drainOut(*outFlits), 0); // fully out of credits
    EXPECT_EQ(inVc(0).state, VcState::RouteComputed); // VA stalled

    // Return credits on VC 0: traffic resumes.
    for (int i = 0; i < 5; ++i)
        router->creditArrived(outPort, 0);
    for (int i = 0; i < 12; ++i)
        tick();
    EXPECT_EQ(drainOut(*outFlits), 5);
}

TEST_F(RouterHarness, EscapeVcSticksToEscapeAndXy)
{
    // params default to MinimalAdaptive; VC 1 is the escape VC. A
    // packet arriving *in* the escape VC may only request the escape
    // VC of the XY output port.
    sendPacket(5, 1); // east is also the XY direction here
    tick();
    tick();
    EXPECT_EQ(inVc(1).state, VcState::Active);
    EXPECT_EQ(inVc(1).outVc, 1);
    EXPECT_EQ(inVc(1).outPort, outPort);
}

TEST_F(RouterHarness, AdaptivePacketFallsIntoEscapeWhenBlocked)
{
    // Block the adaptive out VC (0) by marking it busy via a first
    // packet that cannot drain (no credits returned after 5 flits).
    sendPacket(5, 0, 5);
    for (int i = 0; i < 10; ++i)
        tick();
    drainOut(*outFlits);
    // Adaptive VC 0 downstream is now full and still busy; next packet
    // in adaptive input VC 0 must fall into the escape VC 1.
    sendPacket(5, 0, 1);
    tick();
    tick();
    EXPECT_EQ(inVc(0).state, VcState::Active);
    EXPECT_EQ(inVc(0).outVc, 1);
}

TEST_F(RouterHarness, ResidenceStatTracksBufferTime)
{
    sendPacket(5, 0);
    tick();
    tick();
    tick();
    EXPECT_EQ(router->residenceStat().count(), 1u);
    EXPECT_NEAR(router->residenceStat().mean(), 3.0, 1.01);
}

TEST_F(RouterHarness, HasBufferedFlitsReflectsOccupancy)
{
    EXPECT_FALSE(router->hasBufferedFlits());
    sendPacket(5, 0);
    EXPECT_TRUE(router->hasBufferedFlits());
    for (int i = 0; i < 5; ++i)
        tick();
    drainOut(*outFlits);
    EXPECT_FALSE(router->hasBufferedFlits());
}

} // namespace
} // namespace eqx
