/**
 * @file
 * Topology layer (DESIGN.md §17): coordinate/router mapping, wrap
 * wiring and wrapped distance on the torus, dateline VC classes,
 * CMesh concentration geometry — plus whole-network wrap-link
 * correctness: torus all-pairs delivery under both routing modes,
 * high-load drain with bit-identical activity under both tick
 * schedulers, and concentrated slot-indexed ejection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hh"
#include "noc/topology.hh"

namespace eqx {
namespace {

TEST(Topology, MeshMatchesLegacyGridGeometry)
{
    Mesh2D t(8, 8);
    EXPECT_STREQ(t.name(), "mesh");
    EXPECT_EQ(t.numNodes(), 64);
    EXPECT_EQ(t.numRouters(), 64);
    EXPECT_FALSE(t.wraps());
    EXPECT_FALSE(t.concentrated());

    // Tile and router spaces coincide at concentration 1.
    for (NodeId n = 0; n < 64; ++n) {
        EXPECT_EQ(t.routerOf(n), n);
        EXPECT_EQ(t.tileSlot(n), 0);
        EXPECT_EQ(t.node(t.coord(n)), n);
    }

    // distance is plain Manhattan and dimOrderDir is the legacy XY
    // rule — the byte-identity contract for every mesh experiment.
    for (NodeId a = 0; a < 64; ++a) {
        for (NodeId b = 0; b < 64; ++b) {
            Coord ca = t.coord(a), cb = t.coord(b);
            EXPECT_EQ(t.distance(ca, cb), manhattan(ca, cb));
            EXPECT_EQ(t.dimOrderDir(ca, cb), xyDirection(ca, cb));
            EXPECT_EQ(t.wrapClass(ca, cb, Dir::East), 1);
        }
    }

    // Edges have no links.
    EXPECT_EQ(t.neighbor(0, Dir::North), -1);
    EXPECT_EQ(t.neighbor(0, Dir::West), -1);
    EXPECT_EQ(t.neighbor(0, Dir::East), 1);
    EXPECT_EQ(t.neighbor(0, Dir::South), 8);
    EXPECT_EQ(t.neighbor(63, Dir::East), -1);
    EXPECT_EQ(t.neighbor(63, Dir::South), -1);
}

TEST(Topology, TorusNeighborWrapsEveryRing)
{
    Torus2D t(8, 8);
    EXPECT_STREQ(t.name(), "torus");
    EXPECT_TRUE(t.wraps());

    // Interior links match the mesh; the edges close into rings.
    EXPECT_EQ(t.neighbor(0, Dir::East), 1);
    EXPECT_EQ(t.neighbor(0, Dir::West), 7);   // row 0 wraps x
    EXPECT_EQ(t.neighbor(0, Dir::North), 56); // col 0 wraps y
    EXPECT_EQ(t.neighbor(7, Dir::East), 0);
    EXPECT_EQ(t.neighbor(56, Dir::South), 0);
    EXPECT_EQ(t.neighbor(63, Dir::East), 56);
    EXPECT_EQ(t.neighbor(63, Dir::South), 7);

    // Every router has all four links; every link is reciprocal.
    constexpr Dir kOpp[4] = {Dir::South, Dir::West, Dir::North,
                             Dir::East};
    for (int r = 0; r < 64; ++r) {
        for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
            int n = t.neighbor(r, d);
            ASSERT_GE(n, 0);
            EXPECT_EQ(t.neighbor(n, kOpp[static_cast<int>(d)]), r);
        }
    }
}

TEST(Topology, TorusDistanceTakesWrapIffShorter)
{
    Torus2D t(8, 8);
    // Along one ring: 7 forward hops collapse to 1 via the wrap.
    EXPECT_EQ(t.distance({0, 0}, {7, 0}), 1);
    EXPECT_EQ(t.distance({0, 0}, {5, 0}), 3);
    // Exactly half-way: both paths cost the same.
    EXPECT_EQ(t.distance({0, 0}, {4, 0}), 4);
    // Inside the half-ring the inward path is minimal, as on a mesh.
    EXPECT_EQ(t.distance({0, 0}, {3, 0}), 3);
    // Both dimensions wrap independently.
    EXPECT_EQ(t.distance({1, 1}, {6, 6}), 6);
    EXPECT_EQ(t.distance({0, 0}, {7, 7}), 2);
    // Symmetric, and never longer than Manhattan.
    for (int a = 0; a < 64; ++a) {
        for (int b = 0; b < 64; ++b) {
            Coord ca = t.coord(a), cb = t.coord(b);
            EXPECT_EQ(t.distance(ca, cb), t.distance(cb, ca));
            EXPECT_LE(t.distance(ca, cb), manhattan(ca, cb));
        }
    }
}

TEST(Topology, TorusRouteComputeFollowsWrappedMinimum)
{
    Torus2D t(8, 8);
    // Wrap strictly shorter: go outward through the dateline.
    EXPECT_EQ(t.dimOrderDir({0, 0}, {7, 0}), Dir::West);
    EXPECT_EQ(t.dimOrderDir({7, 0}, {0, 0}), Dir::East);
    EXPECT_EQ(t.dimOrderDir({0, 0}, {0, 7}), Dir::North);
    // Inward strictly shorter: identical to the mesh rule.
    EXPECT_EQ(t.dimOrderDir({0, 0}, {3, 0}), Dir::East);
    // Even-ring tie: break toward East/South (the positive
    // direction the mesh prefers), wherever the tie sits.
    EXPECT_EQ(t.dimOrderDir({0, 0}, {4, 0}), Dir::East);
    EXPECT_EQ(t.dimOrderDir({5, 0}, {1, 0}), Dir::East);
    EXPECT_EQ(t.dimOrderDir({0, 0}, {0, 4}), Dir::South);
    // X resolves before Y, exactly as dimension order demands.
    EXPECT_EQ(t.dimOrderDir({1, 1}, {7, 6}), Dir::West);

    // The adaptive candidate set: one direction per unresolved
    // dimension, x first, each following the same wrapped minimum.
    RouteCandidates c = t.minimalRouterDirs({1, 1}, {7, 6});
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0], Dir::West);  // 1 -> 7 wraps (2 < 6)
    EXPECT_EQ(c[1], Dir::North); // 1 -> 6 wraps (3 < 5)
    c = t.minimalRouterDirs({0, 0}, {3, 0});
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0], Dir::East);
    EXPECT_TRUE(t.minimalRouterDirs({2, 5}, {2, 5}).empty());

    // Every candidate direction actually decreases the wrapped
    // distance by one — the "minimal" in minimal-adaptive.
    for (int a = 0; a < 64; ++a) {
        for (int b = 0; b < 64; ++b) {
            if (a == b)
                continue;
            Coord ca = t.coord(a), cb = t.coord(b);
            for (Dir d : t.minimalRouterDirs(ca, cb)) {
                int n = t.neighbor(a, d);
                ASSERT_GE(n, 0);
                EXPECT_EQ(t.distance(t.coord(n), cb),
                          t.distance(ca, cb) - 1);
            }
        }
    }
}

TEST(Topology, TorusWrapClassFlipsAtTheDateline)
{
    Torus2D t(8, 8);
    // Heading East from 6 toward 2: the wrap link (7 -> 0) is still
    // ahead, so the packet rides class 0.
    EXPECT_EQ(t.wrapClass({6, 0}, {2, 0}, Dir::East), 0);
    // Once wrapped (now at 0, dest 2) the same heading is class 1 —
    // the (router, class) order strictly increased, never to return.
    EXPECT_EQ(t.wrapClass({0, 0}, {2, 0}, Dir::East), 1);
    // Westbound mirror.
    EXPECT_EQ(t.wrapClass({1, 0}, {6, 0}, Dir::West), 0);
    EXPECT_EQ(t.wrapClass({7, 0}, {6, 0}, Dir::West), 1);
    // Y rings classify on y the same way.
    EXPECT_EQ(t.wrapClass({0, 6}, {0, 1}, Dir::South), 0);
    EXPECT_EQ(t.wrapClass({0, 0}, {0, 1}, Dir::South), 1);
    EXPECT_EQ(t.wrapClass({0, 1}, {0, 7}, Dir::North), 0);

    // The acyclicity argument is per ring: while the escape path
    // stays in one dimension the class never regresses 1 -> 0 (a
    // class-1 packet never takes that ring's wrap link). Dimension
    // order hands x-rings to y-rings acyclically, and the y-ring
    // restarts its own dateline classification.
    for (int a = 0; a < 64; ++a) {
        for (int b = 0; b < 64; ++b) {
            Coord cur = t.coord(a);
            Coord dst = t.coord(b);
            int cls = 0;
            bool in_x = true;
            int guard = 0;
            while (cur != dst) {
                Dir d = t.dimOrderDir(cur, dst);
                bool x_hop = d == Dir::East || d == Dir::West;
                if (in_x && !x_hop) {
                    in_x = false; // new ring, fresh dateline class
                    cls = 0;
                }
                EXPECT_EQ(x_hop, in_x) << "y-ring fed back into x";
                int next_cls = t.wrapClass(cur, dst, d);
                EXPECT_GE(next_cls, cls) << "class regressed in-ring";
                cls = next_cls;
                int n = t.neighbor(t.node(cur), d);
                ASSERT_GE(n, 0);
                cur = t.coord(static_cast<NodeId>(n));
                ASSERT_LT(++guard, 16) << "escape path did not converge";
            }
        }
    }
}

TEST(Topology, CMeshConcentratesTilesOntoRouterGrid)
{
    CMesh t(8, 8, 2);
    EXPECT_STREQ(t.name(), "cmesh");
    EXPECT_TRUE(t.concentrated());
    EXPECT_EQ(t.numNodes(), 64);  // tiles keep the full grid
    EXPECT_EQ(t.numRouters(), 16);
    EXPECT_EQ(t.routerCols(), 4);
    EXPECT_EQ(t.routerRows(), 4);

    // The 2x2 block at tiles (0,0)..(1,1) shares router 0; slots run
    // in ascending tile-id order — the ejection-port contract.
    EXPECT_EQ(t.routerOf(0), 0);
    EXPECT_EQ(t.routerOf(1), 0);
    EXPECT_EQ(t.routerOf(8), 0);
    EXPECT_EQ(t.routerOf(9), 0);
    EXPECT_EQ(t.tileSlot(0), 0);
    EXPECT_EQ(t.tileSlot(1), 1);
    EXPECT_EQ(t.tileSlot(8), 2);
    EXPECT_EQ(t.tileSlot(9), 3);
    // Next block over.
    EXPECT_EQ(t.routerOf(2), 1);
    EXPECT_EQ(t.routerOf(63), 15);
    EXPECT_EQ(t.tileSlot(63), 3);
    EXPECT_EQ(t.routerCoordOf(63).x, 3);
    EXPECT_EQ(t.routerCoordOf(63).y, 3);

    // Distance is router-grid Manhattan between the serving routers;
    // tiles under one router are 0 hops apart.
    EXPECT_EQ(t.distance({0, 0}, {1, 1}), 0);
    EXPECT_EQ(t.distance({0, 0}, {7, 7}), 6);
    EXPECT_EQ(t.distance({1, 0}, {2, 0}), 1);

    // Router links form a plain (non-wrapping) 4x4 mesh.
    EXPECT_EQ(t.neighbor(0, Dir::West), -1);
    EXPECT_EQ(t.neighbor(0, Dir::East), 1);
    EXPECT_EQ(t.neighbor(0, Dir::South), 4);
    EXPECT_EQ(t.neighbor(15, Dir::East), -1);
}

TEST(Topology, KindNamesRoundTripAndFactoryDispatches)
{
    for (TopologyKind k : {TopologyKind::Mesh, TopologyKind::Torus,
                           TopologyKind::CMesh}) {
        TopologyKind back;
        ASSERT_TRUE(parseTopologyKind(topologyKindName(k), back));
        EXPECT_EQ(back, k);
    }
    TopologyKind k;
    EXPECT_TRUE(parseTopologyKind("TORUS", k)); // case-insensitive
    EXPECT_EQ(k, TopologyKind::Torus);
    EXPECT_FALSE(parseTopologyKind("hypercube", k));

    EXPECT_STREQ(makeTopology(8, 8)->name(), "mesh");
    EXPECT_STREQ(
        makeTopology(8, 8, {TopologyKind::Torus, 1})->name(), "torus");
    auto cm = makeTopology(8, 8, {TopologyKind::CMesh, 2});
    EXPECT_STREQ(cm->name(), "cmesh");
    EXPECT_EQ(cm->numRouters(), 16);
}

// ---- whole-network wrap-link correctness ----

/** Sink that records deliveries. */
class TestSink : public PacketSink
{
  public:
    bool canAccept(const PacketPtr &) override { return true; }
    void
    accept(const PacketPtr &pkt, Cycle) override
    {
        delivered.push_back(pkt);
    }

    std::vector<PacketPtr> delivered;
};

NetworkSpec
topoSpec(int w, int h, TopologyKind kind, RoutingMode routing,
         int conc = 2)
{
    NetworkSpec spec;
    spec.params.width = w;
    spec.params.height = h;
    spec.params.routing = routing;
    spec.params.topo.kind = kind;
    spec.params.topo.concentration = conc;
    if (kind == TopologyKind::Torus) {
        // Dateline discipline: XY splits the VCs into class halves,
        // minimal-adaptive reserves a Duato escape pair on top.
        spec.params.vcsPerPort =
            routing == RoutingMode::XY ? 2 : 3;
        spec.params.classVcs = false;
    }
    return spec;
}

void
runCycles(Network &net, Cycle &clock, int n)
{
    for (int i = 0; i < n; ++i)
        net.coreTick(++clock);
}

TEST(TorusNetwork, WrapLinkShortensZeroLoadPath)
{
    // (0,0) -> (7,0) is 7 mesh hops but 1 torus hop: its zero-load
    // latency must match the 1-hop neighbor, not the 7-hop walk.
    Network net(topoSpec(8, 8, TopologyKind::Torus, RoutingMode::XY));
    TestSink sink;
    for (NodeId n = 0; n < 64; ++n)
        net.setSink(n, &sink);
    Cycle clock = 0;

    auto near = makePacket(PacketType::ReadRequest, 0, 1, 128);
    net.inject(0, near);
    runCycles(net, clock, 40);
    auto wrap = makePacket(PacketType::ReadRequest, 0, 7, 128);
    net.inject(0, wrap);
    runCycles(net, clock, 40);

    ASSERT_EQ(sink.delivered.size(), 2u);
    EXPECT_EQ(wrap->networkLatency(), near->networkLatency());
    EXPECT_TRUE(net.drained());
}

class TorusRoutingModes : public ::testing::TestWithParam<RoutingMode>
{};

TEST_P(TorusRoutingModes, AllPairsDeliveryAndDrain)
{
    Network net(topoSpec(4, 4, TopologyKind::Torus, GetParam()));
    std::vector<TestSink> sinks(16);
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, &sinks[static_cast<std::size_t>(n)]);
    Cycle clock = 0;
    int sent = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            auto pkt = makePacket(PacketType::ReadRequest, s, d, 128);
            while (!net.inject(s, pkt))
                net.coreTick(++clock);
            ++sent;
        }
    }
    for (int i = 0; i < 3000 && !net.drained(); ++i)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained()) << "torus wedged: wrap cycle?";
    int got = 0;
    for (NodeId d = 0; d < 16; ++d) {
        // Each tile hears from the 15 others exactly once.
        EXPECT_EQ(sinks[static_cast<std::size_t>(d)].delivered.size(),
                  15u);
        for (const auto &pkt :
             sinks[static_cast<std::size_t>(d)].delivered) {
            EXPECT_EQ(pkt->dst, d);
            ++got;
        }
    }
    EXPECT_EQ(got, sent); // conservation
}

INSTANTIATE_TEST_SUITE_P(XyAndAdaptive, TorusRoutingModes,
                         ::testing::Values(RoutingMode::XY,
                                           RoutingMode::MinimalAdaptive));

/**
 * High-load 8x8 torus: every tile fires a deterministic burst that
 * crosses the datelines both ways. The fabric must drain (deadlock
 * freedom under load) and both tick schedulers must agree on every
 * activity counter (bit-identity on wrap links).
 */
NetworkActivity
runTorusStorm(bool exhaustive, std::size_t &delivered_out)
{
    NetworkSpec spec =
        topoSpec(8, 8, TopologyKind::Torus, RoutingMode::MinimalAdaptive);
    spec.params.exhaustiveTick = exhaustive;
    Network net(spec);
    std::vector<TestSink> sinks(64);
    for (NodeId n = 0; n < 64; ++n)
        net.setSink(n, &sinks[static_cast<std::size_t>(n)]);
    Cycle clock = 0;
    for (int round = 1; round <= 6; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            // Deterministic scatter with plenty of dateline crossings.
            NodeId d = static_cast<NodeId>((s * 13 + round * 29) % 64);
            if (d == s)
                d = (d + 1) % 64;
            auto pkt = makePacket(PacketType::ReadRequest, s, d, 256);
            while (!net.inject(s, pkt))
                net.coreTick(++clock);
        }
    }
    for (int i = 0; i < 5000 && !net.drained(); ++i)
        net.coreTick(++clock);
    EXPECT_TRUE(net.drained()) << "torus storm wedged";
    delivered_out = 0;
    for (const auto &s : sinks)
        delivered_out += s.delivered.size();
    return net.activity();
}

TEST(TorusNetwork, HighLoadDrainsIdenticallyUnderBothTickModes)
{
    std::size_t da = 0, de = 0;
    NetworkActivity a = runTorusStorm(false, da);
    NetworkActivity e = runTorusStorm(true, de);
    EXPECT_EQ(da, 6u * 64u);
    EXPECT_EQ(da, de);
    EXPECT_EQ(a.bufferWrites, e.bufferWrites);
    EXPECT_EQ(a.bufferReads, e.bufferReads);
    EXPECT_EQ(a.xbarTraversals, e.xbarTraversals);
    EXPECT_EQ(a.vaGrants, e.vaGrants);
    EXPECT_EQ(a.saGrants, e.saGrants);
    EXPECT_EQ(a.linkFlits, e.linkFlits);
    EXPECT_EQ(a.creditsSent, e.creditsSent);
    EXPECT_EQ(a.requestBits, e.requestBits);
}

TEST(CmeshNetwork, ConcentratedEjectionReachesEveryTileInABlock)
{
    // All four tiles behind router 15 (tiles 54, 55, 62, 63) must be
    // reachable — slot-indexed ejection picks the right port.
    Network net(topoSpec(8, 8, TopologyKind::CMesh,
                         RoutingMode::XY, /*conc=*/2));
    std::vector<TestSink> sinks(64);
    for (NodeId n = 0; n < 64; ++n)
        net.setSink(n, &sinks[static_cast<std::size_t>(n)]);
    Cycle clock = 0;
    int sent = 0;
    for (NodeId d : {NodeId(54), NodeId(55), NodeId(62), NodeId(63),
                     NodeId(0), NodeId(9)}) {
        for (NodeId s : {NodeId(0), NodeId(1), NodeId(8), NodeId(28)}) {
            if (s == d)
                continue;
            auto pkt = makePacket(PacketType::ReadRequest, s, d, 128);
            while (!net.inject(s, pkt))
                net.coreTick(++clock);
            ++sent;
        }
    }
    for (int i = 0; i < 2000 && !net.drained(); ++i)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());
    int got = 0;
    for (NodeId d = 0; d < 64; ++d) {
        for (const auto &pkt :
             sinks[static_cast<std::size_t>(d)].delivered) {
            EXPECT_EQ(pkt->dst, d) << "ejected at the wrong tile";
            ++got;
        }
    }
    EXPECT_EQ(got, sent);
}

TEST(CmeshNetwork, AllPairsDelivery)
{
    Network net(topoSpec(4, 4, TopologyKind::CMesh, RoutingMode::XY));
    std::vector<TestSink> sinks(16);
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, &sinks[static_cast<std::size_t>(n)]);
    Cycle clock = 0;
    int sent = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            auto pkt = makePacket(PacketType::ReadRequest, s, d, 128);
            while (!net.inject(s, pkt))
                net.coreTick(++clock);
            ++sent;
        }
    }
    for (int i = 0; i < 3000 && !net.drained(); ++i)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());
    int got = 0;
    for (NodeId d = 0; d < 16; ++d) {
        EXPECT_EQ(sinks[static_cast<std::size_t>(d)].delivered.size(),
                  15u);
        got += static_cast<int>(
            sinks[static_cast<std::size_t>(d)].delivered.size());
    }
    EXPECT_EQ(got, sent);
}

} // namespace
} // namespace eqx
