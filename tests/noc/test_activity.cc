/**
 * @file
 * Activity-driven tick scheduling (DESIGN.md §10): active-set
 * invariants, exhaustive-loop bit-equivalence at the network level,
 * and the pooled packet allocator.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/network.hh"

namespace eqx {
namespace {

class CountingSink : public PacketSink
{
  public:
    bool canAccept(const PacketPtr &) override { return true; }
    void
    accept(const PacketPtr &, Cycle) override
    {
        ++delivered;
    }
    int delivered = 0;
};

NetworkSpec
meshSpec(int w, int h, bool exhaustive)
{
    NetworkSpec spec;
    spec.params.width = w;
    spec.params.height = h;
    spec.params.exhaustiveTick = exhaustive;
    return spec;
}

/** Drive @p net with seeded uniform-random traffic for @p cycles. */
void
randomTraffic(Network &net, Rng &rng, Cycle &clock, int cycles,
              double rate)
{
    int n = net.params().numNodes();
    for (int c = 0; c < cycles; ++c) {
        for (NodeId s = 0; s < n; ++s) {
            if (!rng.chance(rate))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(n));
            if (d != s && net.canInject(s))
                net.inject(s,
                           makePacket(PacketType::ReadReply, s, d, 640));
        }
        net.coreTick(++clock);
    }
}

TEST(Activity, ActiveSetsConsistentThroughoutRandomTraffic)
{
    NetworkSpec spec = meshSpec(8, 8, /*exhaustive=*/false);
    Network net(spec);
    CountingSink sinks[64];
    for (NodeId i = 0; i < 64; ++i)
        net.setSink(i, &sinks[i]);

    Rng rng(7);
    Cycle clock = 0;
    int n = net.params().numNodes();
    for (int c = 0; c < 1500; ++c) {
        for (NodeId s = 0; s < n; ++s) {
            if (!rng.chance(0.08))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(n));
            if (d != s && net.canInject(s))
                net.inject(s,
                           makePacket(PacketType::ReadReply, s, d, 640));
        }
        net.coreTick(++clock);
        // The invariant the scheduler's correctness rests on: no
        // component holding work ever leaves its active set.
        ASSERT_TRUE(net.activeSetsConsistent()) << "cycle " << c;
    }
    // Stop injecting; the network must fully drain through the active
    // path (nothing stranded by a premature deregistration).
    for (int c = 0; c < 2000 && !net.drained(); ++c)
        net.coreTick(++clock);
    EXPECT_TRUE(net.drained());
    EXPECT_TRUE(net.activeSetsConsistent());
    int total = 0;
    for (const auto &s : sinks)
        total += s.delivered;
    EXPECT_GT(total, 0);
}

TEST(Activity, ExhaustiveModeAlwaysConsistent)
{
    Network net(meshSpec(4, 4, /*exhaustive=*/true));
    Cycle clock = 0;
    net.inject(0, makePacket(PacketType::ReadRequest, 0, 15, 128));
    for (int c = 0; c < 50; ++c)
        net.coreTick(++clock);
    EXPECT_TRUE(net.activeSetsConsistent());
}

/**
 * Run the same seeded traffic through an activity-scheduled network
 * and an exhaustive-tick network and require every exported statistic
 * to match exactly (==, no tolerance): same arbitration, same
 * latencies, same occupancy means.
 */
void
expectModesBitIdentical(NetworkSpec spec, double rate, int cycles)
{
    spec.params.exhaustiveTick = false;
    NetworkSpec specEx = spec;
    specEx.params.exhaustiveTick = true;

    Network act(spec), exh(specEx);
    int n = act.params().numNodes();
    std::vector<CountingSink> actSinks(static_cast<std::size_t>(n));
    std::vector<CountingSink> exhSinks(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
        act.setSink(i, &actSinks[static_cast<std::size_t>(i)]);
        exh.setSink(i, &exhSinks[static_cast<std::size_t>(i)]);
    }

    Rng ra(11), re(11);
    Cycle ca = 0, ce = 0;
    randomTraffic(act, ra, ca, cycles, rate);
    randomTraffic(exh, re, ce, cycles, rate);
    for (int c = 0; c < 4000 && !(act.drained() && exh.drained()); ++c) {
        act.coreTick(++ca);
        exh.coreTick(++ce);
    }
    ASSERT_TRUE(act.drained());
    ASSERT_TRUE(exh.drained());

    for (NodeId i = 0; i < n; ++i)
        EXPECT_EQ(actSinks[static_cast<std::size_t>(i)].delivered,
                  exhSinks[static_cast<std::size_t>(i)].delivered)
            << "node " << i;

    StatGroup sa, se;
    act.exportStats(sa, "net");
    exh.exportStats(se, "net");
    ASSERT_EQ(sa.all().size(), se.all().size());
    auto ia = sa.all().begin();
    auto ie = se.all().begin();
    for (; ia != sa.all().end(); ++ia, ++ie) {
        EXPECT_EQ(ia->first, ie->first);
        EXPECT_EQ(ia->second, ie->second) << ia->first;
    }
}

/**
 * Per-stage SoA invariants (DESIGN.md §14): drive random traffic and
 * check every router's packed pipeline state each cycle — pending-mask
 * membership per stage (rc/va/sa), the vaPending_/vaBlocked_
 * partition with waiter registration for parked nominations, the
 * freeOutVcs_ mirror, busy-output ownership, and buffered-flit
 * conservation.
 */
void
expectPipelineConsistent(NetworkSpec spec, double rate, int cycles)
{
    Network net(spec);
    int n = net.params().numNodes();
    std::vector<CountingSink> sinks(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        net.setSink(i, &sinks[static_cast<std::size_t>(i)]);
    Rng rng(23);
    Cycle clock = 0;
    for (int c = 0; c < cycles; ++c) {
        for (NodeId s = 0; s < n; ++s) {
            if (!rng.chance(rate))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(n));
            if (d != s && net.canInject(s))
                net.inject(s,
                           makePacket(PacketType::ReadReply, s, d, 640));
        }
        net.coreTick(++clock);
        for (NodeId r = 0; r < n; ++r)
            ASSERT_TRUE(net.router(r).pipelineStateConsistent())
                << "cycle " << c << " router " << r;
    }
    for (int c = 0; c < 3000 && !net.drained(); ++c)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained());
    for (NodeId r = 0; r < n; ++r)
        EXPECT_TRUE(net.router(r).pipelineStateConsistent());
}

TEST(Activity, PipelineStateConsistent_AdaptiveWithVaParking)
{
    // Adaptive + uniform credits: the lazy-VA parking path is live.
    expectPipelineConsistent(meshSpec(8, 8, false), 0.10, 900);
}

TEST(Activity, PipelineStateConsistent_ClassVcsNoParking)
{
    // classVcs gates parking off (monopoly windows are
    // time-dependent): every nomination stays on vaPending_.
    NetworkSpec spec = meshSpec(6, 6, false);
    spec.params.classVcs = true;
    spec.params.routing = RoutingMode::XY;
    spec.params.vcMono = true;
    expectPipelineConsistent(spec, 0.08, 900);
}

TEST(Activity, PipelineStateConsistent_Loaded16x16)
{
    // The tentpole regime: a big mesh at high injection, SA/VA
    // saturated, direct-wheel sends active.
    expectPipelineConsistent(meshSpec(16, 16, false), 0.12, 400);
}

TEST(Activity, BitIdenticalToExhaustive_AdaptiveRouting)
{
    expectModesBitIdentical(meshSpec(8, 8, false), 0.08, 1200);
}

TEST(Activity, BitIdenticalToExhaustive_ClassVcsVcMono)
{
    NetworkSpec spec = meshSpec(6, 6, false);
    spec.params.classVcs = true;
    spec.params.routing = RoutingMode::XY;
    spec.params.vcMono = true;
    expectModesBitIdentical(spec, 0.06, 1000);
}

TEST(Activity, BitIdenticalToExhaustive_EirGroups)
{
    // EquiNox CB NI at node 27 with interposer links into four EIRs:
    // exercises the remote-injection wires and multi-buffer NI.
    NetworkSpec spec = meshSpec(8, 8, false);
    spec.eirGroups[{27}] = {11, 25, 29, 43};
    expectModesBitIdentical(spec, 0.05, 1000);
}

TEST(Activity, BitIdenticalToExhaustive_FastClockSubnet)
{
    // DA2Mesh-style 2.5x internal clock: multiple internal ticks per
    // core cycle must drain the event wheel identically.
    NetworkSpec spec = meshSpec(4, 4, false);
    spec.params.ticksEvenCycle = 3;
    spec.params.ticksOddCycle = 2;
    expectModesBitIdentical(spec, 0.10, 800);
}

TEST(Activity, ResetStatsMidRunKeepsModesIdentical)
{
    // Warmup-style stats reset while flits are in flight: occupancy
    // accounting restarts from the reset tick in both modes.
    NetworkSpec spec = meshSpec(6, 6, false);
    NetworkSpec specEx = spec;
    specEx.params.exhaustiveTick = true;
    Network act(spec), exh(specEx);
    CountingSink sink;
    for (NodeId i = 0; i < 36; ++i) {
        act.setSink(i, &sink);
        exh.setSink(i, &sink);
    }
    Rng ra(3), re(3);
    Cycle ca = 0, ce = 0;
    randomTraffic(act, ra, ca, 300, 0.08);
    randomTraffic(exh, re, ce, 300, 0.08);
    act.resetStats();
    exh.resetStats();
    randomTraffic(act, ra, ca, 300, 0.08);
    randomTraffic(exh, re, ce, 300, 0.08);
    StatGroup sa, se;
    act.exportStats(sa, "net");
    exh.exportStats(se, "net");
    ASSERT_EQ(sa.all(), se.all());
}

TEST(PacketPool, RefcountSemantics)
{
    PacketPtr p = makePacket(PacketType::ReadRequest, 1, 2, 128);
    EXPECT_EQ(p.useCount(), 1u);
    PacketPtr copy = p;
    EXPECT_EQ(p.useCount(), 2u);
    PacketPtr moved = std::move(copy);
    EXPECT_EQ(p.useCount(), 2u); // move steals, no bump
    EXPECT_EQ(copy, nullptr);    // NOLINT(bugprone-use-after-move)
    moved.reset();
    EXPECT_EQ(p.useCount(), 1u);
}

TEST(PacketPool, ReleaseRecyclesAndResets)
{
    std::size_t before = packetPoolFreeCount();
    PacketPtr p = makePacket(PacketType::WriteRequest, 3, 4, 640, 0xAB,
                             /*tag=*/99);
    p->cycleInjected = 123;
    Packet *raw = p.get();
    std::uint64_t id = p->id;
    p.reset();
    EXPECT_GE(packetPoolFreeCount(), before); // returned to the arena

    // LIFO freelist: the very next allocation reuses the same slot,
    // and the recycled packet is indistinguishable from a fresh one.
    PacketPtr q = makePacket(PacketType::ReadReply, 5, 6, 640);
    EXPECT_EQ(q.get(), raw);
    EXPECT_NE(q->id, id);
    EXPECT_EQ(q->tag, 0u);
    EXPECT_EQ(q->cycleInjected, 0u);
    EXPECT_EQ(q->src, 5);
    EXPECT_EQ(q->dst, 6);
    EXPECT_EQ(q.useCount(), 1u);
}

TEST(PacketPool, FlitMovesDoNotTouchRefcount)
{
    PacketPtr p = makePacket(PacketType::ReadReply, 0, 1, 640);
    Flit f;
    f.pkt = p; // one copy: the flit holds a reference
    EXPECT_EQ(p.useCount(), 2u);
    Flit g = std::move(f);
    EXPECT_EQ(p.useCount(), 2u); // moving the flit is refcount-free
    g.pkt.reset();
    EXPECT_EQ(p.useCount(), 1u);
}

} // namespace
} // namespace eqx
