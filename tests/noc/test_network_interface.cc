/** @file NI injection policies, including the paper's Buffer Selection. */

#include <gtest/gtest.h>

#include <memory>

#include "noc/network_interface.hh"

namespace eqx {
namespace {

/** Expose the protected dispatch policy and buffers for testing. */
template <typename Base>
class ExposedNi : public Base
{
  public:
    using Base::Base;
    using Base::selectBuffer;

    NetworkInterface::InjBuffer &
    buffer(int i)
    {
        return this->bufs_[static_cast<std::size_t>(i)];
    }

    void
    occupy(int i)
    {
        buffer(i).queue.push_back(
            makePacket(PacketType::ReadReply, 0, 1, 640));
    }
};

/** Test fixture wiring an NI at CB (3,3) with four axis EIRs. */
class EquiNoxNiTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        topo = makeTopology(8, 8);
        ni = std::make_unique<ExposedNi<EquiNoxNi>>(
            cb, topo.get(), &params, &activity, &latency);
        // Buffer 0: local; buffers 1..4: E(5,3), W(1,3), S(3,5), N(3,1).
        chans.reserve(5);
        for (int i = 0; i < 5; ++i)
            chans.push_back(std::make_unique<Channel<Flit>>(1));
        ni->addInjBuffer(1, chans[0].get(), cb, false);
        ni->addInjBuffer(1, chans[1].get(), topo->node({5, 3}), true);
        ni->addInjBuffer(1, chans[2].get(), topo->node({1, 3}), true);
        ni->addInjBuffer(1, chans[3].get(), topo->node({3, 5}), true);
        ni->addInjBuffer(1, chans[4].get(), topo->node({3, 1}), true);
    }

    PacketPtr
    replyTo(Coord dest)
    {
        return makePacket(PacketType::ReadReply, cb, topo->node(dest),
                          640);
    }

    NodeId cb = 27; // (3,3)
    NocParams params;
    NetworkActivity activity;
    LatencyStats latency;
    std::unique_ptr<const Topology> topo;
    std::vector<std::unique_ptr<Channel<Flit>>> chans;
    std::unique_ptr<ExposedNi<EquiNoxNi>> ni;
};

TEST_F(EquiNoxNiTest, AxisDestUsesTheOneShortestPathEir)
{
    // (7,3): due east; only the east EIR (buffer 1) is on a shortest
    // path.
    EXPECT_EQ(ni->selectBuffer(replyTo({7, 3})), 1);
    EXPECT_EQ(ni->selectBuffer(replyTo({0, 3})), 2);
    EXPECT_EQ(ni->selectBuffer(replyTo({3, 7})), 3);
    EXPECT_EQ(ni->selectBuffer(replyTo({3, 0})), 4);
}

TEST_F(EquiNoxNiTest, AxisDestFallsBackToLocalWhenEirBusy)
{
    ni->occupy(1);
    EXPECT_EQ(ni->selectBuffer(replyTo({7, 3})), 0);
}

TEST_F(EquiNoxNiTest, AxisDestRetriesWhenEirAndLocalBusy)
{
    ni->occupy(1);
    ni->occupy(0);
    EXPECT_EQ(ni->selectBuffer(replyTo({7, 3})), -1);
}

TEST_F(EquiNoxNiTest, QuadrantDestRoundRobinsBetweenTwoEirs)
{
    // (6,6): south-east quadrant; east and south EIRs both lie on
    // shortest paths.
    int a = ni->selectBuffer(replyTo({6, 6}));
    int b = ni->selectBuffer(replyTo({6, 6}));
    EXPECT_TRUE(a == 1 || a == 3);
    EXPECT_TRUE(b == 1 || b == 3);
    EXPECT_NE(a, b);
}

TEST_F(EquiNoxNiTest, QuadrantDestSingleFreeEirWins)
{
    ni->occupy(1);
    EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 3);
}

TEST_F(EquiNoxNiTest, QuadrantDestAllEirsBusyUsesLocal)
{
    ni->occupy(1);
    ni->occupy(3);
    EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 0);
}

TEST_F(EquiNoxNiTest, NearDestinationBehindEirUsesLocal)
{
    // (4,3) is 1 hop east: the east EIR at (5,3) would overshoot
    // (not on a shortest path), so the local router is used.
    EXPECT_EQ(ni->selectBuffer(replyTo({4, 3})), 0);
}

TEST(BasicNiTest, SingleBufferUntilFull)
{
    Mesh2D topo(4, 4);
    NocParams params;
    NetworkActivity act;
    LatencyStats lat;
    ExposedNi<BasicNi> ni(0, &topo, &params, &act, &lat);
    Channel<Flit> ch(1);
    ni.addInjBuffer(1, &ch, 0, false);
    auto pkt = makePacket(PacketType::ReadRequest, 0, 5, 128);
    EXPECT_EQ(ni.selectBuffer(pkt), 0);
    ni.occupy(0);
    EXPECT_EQ(ni.selectBuffer(pkt), -1);
}

TEST(MultiPortNiTest, RoundRobinSkipsFullBuffers)
{
    Mesh2D topo(4, 4);
    NocParams params;
    NetworkActivity act;
    LatencyStats lat;
    ExposedNi<MultiPortNi> ni(0, &topo, &params, &act, &lat);
    std::vector<std::unique_ptr<Channel<Flit>>> chans;
    for (int i = 0; i < 3; ++i) {
        chans.push_back(std::make_unique<Channel<Flit>>(1));
        ni.addInjBuffer(1, chans.back().get(), 0, false);
    }
    auto pkt = makePacket(PacketType::ReadReply, 0, 5, 640);
    int a = ni.selectBuffer(pkt);
    ni.occupy(a);
    int b = ni.selectBuffer(pkt);
    ni.occupy(b);
    int c = ni.selectBuffer(pkt);
    ni.occupy(c);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
    EXPECT_EQ(ni.selectBuffer(pkt), -1);
}

TEST_F(EquiNoxNiTest, QuadrantRoundRobinAlternatesStrictly)
{
    // Over many dispatches to the same quadrant, the two eligible EIRs
    // must alternate strictly (the paper's Buffer Selection 1 policy),
    // not drift toward one of them.
    int picks[2] = {0, 0};
    int prev = -1;
    for (int i = 0; i < 20; ++i) {
        int b = ni->selectBuffer(replyTo({6, 6}));
        ASSERT_TRUE(b == 1 || b == 3);
        EXPECT_NE(b, prev);
        prev = b;
        ++picks[b == 1 ? 0 : 1];
    }
    EXPECT_EQ(picks[0], 10);
    EXPECT_EQ(picks[1], 10);
}

TEST_F(EquiNoxNiTest, OppositeQuadrantsUseDisjointEirPairs)
{
    // North-west quadrant: only the west (2) and north (4) EIRs lie on
    // shortest paths; the pair must be disjoint from the south-east
    // pair {1, 3}.
    for (int i = 0; i < 4; ++i) {
        int b = ni->selectBuffer(replyTo({1, 1}));
        EXPECT_TRUE(b == 2 || b == 4) << b;
    }
}

TEST(MultiPortNiTest, RoundRobinFairUnderPermanentlyFullBuffer)
{
    // One buffer stays full; the remaining buffers must split the
    // dispatch stream evenly (no starvation, no bias).
    Mesh2D topo(4, 4);
    NocParams params;
    NetworkActivity act;
    LatencyStats lat;
    ExposedNi<MultiPortNi> ni(0, &topo, &params, &act, &lat);
    std::vector<std::unique_ptr<Channel<Flit>>> chans;
    for (int i = 0; i < 3; ++i) {
        chans.push_back(std::make_unique<Channel<Flit>>(1));
        ni.addInjBuffer(1, chans.back().get(), 0, false);
    }
    ni.occupy(0); // buffer 0 full for the whole test

    auto pkt = makePacket(PacketType::ReadReply, 0, 5, 640);
    int picked[3] = {0, 0, 0};
    for (int i = 0; i < 40; ++i) {
        int b = ni.selectBuffer(pkt);
        ASSERT_TRUE(b == 1 || b == 2) << b;
        ++picked[b];
        // Nothing is enqueued, so buffers 1 and 2 stay free; only the
        // round-robin pointer advances between queries.
    }
    EXPECT_EQ(picked[0], 0);
    EXPECT_EQ(picked[1], 20);
    EXPECT_EQ(picked[2], 20);
}

TEST_F(EquiNoxNiTest, OneMaskedEirShiftsToTheUnmaskedShortestPath)
{
    // (6,6): shortest-path EIRs are E(1) and S(3). Masking E must pin
    // every dispatch on S — still the legacy policy, no detours.
    ni->maskBuffer(1);
    EXPECT_EQ(ni->maskedBuffers(), 1);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 3);
}

TEST_F(EquiNoxNiTest, AllShortestPathEirsMaskedFailsOverFairly)
{
    // Masking both shortest-path EIRs of (6,6) enters degraded mode:
    // dispatch must rotate strictly over the survivors W(2) and N(4)
    // even though neither is on a shortest path.
    ni->maskBuffer(1);
    ni->maskBuffer(3);
    int picks[5] = {0, 0, 0, 0, 0};
    int prev = -1;
    for (int i = 0; i < 20; ++i) {
        int b = ni->selectBuffer(replyTo({6, 6}));
        ASSERT_TRUE(b == 2 || b == 4) << b;
        EXPECT_NE(b, prev);
        prev = b;
        ++picks[b];
    }
    EXPECT_EQ(picks[2], 10);
    EXPECT_EQ(picks[4], 10);
}

TEST_F(EquiNoxNiTest, ThreeMaskedEirsUseTheSoleSurvivor)
{
    ni->maskBuffer(1);
    ni->maskBuffer(3);
    ni->maskBuffer(4);
    EXPECT_EQ(ni->maskedBuffers(), 3);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 2);
}

TEST_F(EquiNoxNiTest, AllEirsMaskedDegradesToLocalWithoutLivelock)
{
    for (int b = 1; b <= 4; ++b)
        ni->maskBuffer(b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 0);
    // Local busy too: retry (-1), never an EIR and never a crash.
    ni->occupy(0);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), -1);
}

TEST_F(EquiNoxNiTest, MaskingIsIdempotentAndSurvivorsMustBeFree)
{
    ni->maskBuffer(1);
    ni->maskBuffer(1);
    EXPECT_EQ(ni->maskedBuffers(), 1);
    // Degraded mode still honours buffer occupancy: with the sole
    // shortest-path survivor masked and every other EIR busy, fall
    // back to local.
    ni->maskBuffer(3);
    ni->occupy(2);
    ni->occupy(4);
    EXPECT_EQ(ni->selectBuffer(replyTo({6, 6})), 0);
}

TEST(NiInjection, PerBufferLoadCountersTrackInjection)
{
    Mesh2D topo(4, 4);
    NocParams params;
    NetworkActivity act;
    LatencyStats lat;
    BasicNi ni(0, &topo, &params, &act, &lat);
    Channel<Flit> ch(1);
    ni.addInjBuffer(1, &ch, 0, false);
    auto pkt = makePacket(PacketType::ReadReply, 0, 5, 640); // 5 flits
    ASSERT_TRUE(ni.inject(pkt, 0));
    Cycle t = 0;
    for (int i = 0; i < 10; ++i)
        ni.tick(++t, t);
    EXPECT_EQ(ni.injBuffer(0).packetsInjected, 1u);
    EXPECT_EQ(ni.injBuffer(0).flitsInjected, 5u);

    ni.resetStats();
    EXPECT_EQ(ni.injBuffer(0).packetsInjected, 0u);
    EXPECT_EQ(ni.injBuffer(0).flitsInjected, 0u);
    EXPECT_EQ(ni.injBuffer(0).creditStallTicks, 0u);
}

TEST(NiInjection, CreditStallTicksCountStarvation)
{
    Mesh2D topo(4, 4);
    NocParams params;
    params.vcDepthFlits = 2;
    NetworkActivity act;
    LatencyStats lat;
    BasicNi ni(0, &topo, &params, &act, &lat);
    Channel<Flit> ch(1);
    ni.addInjBuffer(1, &ch, 0, false);
    // 640 bits = 5 flits but only 2 credits and nobody returns them:
    // after the buffer drains its credits, every further tick stalls.
    auto pkt = makePacket(PacketType::ReadReply, 0, 5, 640);
    ASSERT_TRUE(ni.inject(pkt, 0));
    Cycle t = 0;
    for (int i = 0; i < 10; ++i)
        ni.tick(++t, t);
    EXPECT_EQ(ni.injBuffer(0).flitsInjected, 2u);
    EXPECT_GE(ni.injBuffer(0).creditStallTicks, 6u);
}

TEST(NiInjection, SerializesAndStampsPacket)
{
    Mesh2D topo(4, 4);
    NocParams params;
    NetworkActivity act;
    LatencyStats lat;
    BasicNi ni(0, &topo, &params, &act, &lat);
    Channel<Flit> ch(1);
    ni.addInjBuffer(1, &ch, 0, false);
    auto pkt = makePacket(PacketType::ReadReply, 0, 5, 640); // 5 flits
    ASSERT_TRUE(ni.inject(pkt, 10));
    Cycle t = 10;
    for (int i = 0; i < 10; ++i)
        ni.tick(++t, t);
    // 5 flits must have been sent, head first.
    int n = 0;
    Flit f;
    bool saw_head = false, saw_tail = false;
    while (ch.receive(t + 1, f)) {
        if (n == 0)
            saw_head = f.isHead;
        saw_tail = f.isTail;
        ++n;
    }
    EXPECT_EQ(n, 5);
    EXPECT_TRUE(saw_head);
    EXPECT_TRUE(saw_tail);
    EXPECT_GE(pkt->cycleInjected, 10u);
    EXPECT_EQ(pkt->entryRouter, 0);
    EXPECT_EQ(act.replyBits, 640u);
}

TEST(NiInjection, CoreQueueCapacityBounds)
{
    Mesh2D topo(4, 4);
    NocParams params;
    params.niInjBufPackets = 2;
    NetworkActivity act;
    LatencyStats lat;
    BasicNi ni(0, &topo, &params, &act, &lat);
    Channel<Flit> ch(1);
    ni.addInjBuffer(1, &ch, 0, false);
    auto mk = [] {
        return makePacket(PacketType::ReadRequest, 0, 5, 128);
    };
    EXPECT_TRUE(ni.inject(mk(), 0));
    EXPECT_TRUE(ni.inject(mk(), 0));
    EXPECT_FALSE(ni.inject(mk(), 0)); // core queue full
    EXPECT_FALSE(ni.canInject());
}

} // namespace
} // namespace eqx
