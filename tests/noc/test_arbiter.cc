/** @file Round-robin arbiter fairness and rotation. */

#include <gtest/gtest.h>

#include "noc/arbiter.hh"

namespace eqx {
namespace {

TEST(Arbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, false, false}), -1);
    EXPECT_EQ(arb.grantList({}), -1);
}

TEST(Arbiter, SingleRequesterWins)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2);
}

TEST(Arbiter, RotatesAmongAll)
{
    RoundRobinArbiter arb(3);
    std::vector<bool> all{true, true, true};
    int a = arb.grant(all);
    int b = arb.grant(all);
    int c = arb.grant(all);
    int d = arb.grant(all);
    EXPECT_EQ(a, (d + 3) % 3 == a % 3 ? a : a); // rotation below
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(c, a);
    EXPECT_EQ(d, a); // full cycle
}

TEST(Arbiter, GrantListMatchesGrant)
{
    RoundRobinArbiter a1(5), a2(5);
    std::vector<bool> mask{true, false, true, false, true};
    std::vector<int> list{0, 2, 4};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a1.grant(mask), a2.grantList(list));
}

TEST(Arbiter, FairnessUnderContention)
{
    RoundRobinArbiter arb(4);
    std::vector<int> wins(4, 0);
    std::vector<bool> all{true, true, true, true};
    for (int i = 0; i < 400; ++i)
        ++wins[static_cast<std::size_t>(arb.grant(all))];
    for (int w : wins)
        EXPECT_EQ(w, 100);
}

TEST(Arbiter, ResizePreservesValidity)
{
    RoundRobinArbiter arb(2);
    arb.grant({true, true});
    arb.resize(6);
    int g = arb.grantList({5});
    EXPECT_EQ(g, 5);
}

} // namespace
} // namespace eqx
