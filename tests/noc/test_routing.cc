/** @file XY and minimal-adaptive route computation. */

#include <gtest/gtest.h>

#include "noc/routing.hh"

namespace eqx {
namespace {

TEST(Routing, XyPrefersXFirst)
{
    EXPECT_EQ(xyDirection({0, 0}, {3, 3}), Dir::East);
    EXPECT_EQ(xyDirection({5, 5}, {2, 7}), Dir::West);
    EXPECT_EQ(xyDirection({2, 2}, {2, 7}), Dir::South);
    EXPECT_EQ(xyDirection({2, 7}, {2, 2}), Dir::North);
    EXPECT_EQ(xyDirection({4, 4}, {4, 4}), Dir::Local);
}

TEST(Routing, MinimalDirectionsQuadrant)
{
    auto dirs = minimalDirections({2, 2}, {5, 0});
    ASSERT_EQ(dirs.size(), 2u);
    EXPECT_EQ(dirs[0], Dir::East);  // x candidate first (escape dir)
    EXPECT_EQ(dirs[1], Dir::North);
}

TEST(Routing, MinimalDirectionsAxis)
{
    auto dirs = minimalDirections({2, 2}, {2, 6});
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], Dir::South);
}

TEST(Routing, MinimalDirectionsAtDestination)
{
    EXPECT_TRUE(minimalDirections({3, 3}, {3, 3}).empty());
}

TEST(Routing, FirstCandidateMatchesXy)
{
    // The escape-VC discipline relies on candidates[0] == XY port.
    for (int sx = 0; sx < 4; ++sx) {
        for (int sy = 0; sy < 4; ++sy) {
            for (int dx = 0; dx < 4; ++dx) {
                for (int dy = 0; dy < 4; ++dy) {
                    Coord s{sx, sy}, d{dx, dy};
                    if (s == d)
                        continue;
                    auto dirs = minimalDirections(s, d);
                    ASSERT_FALSE(dirs.empty());
                    EXPECT_EQ(dirs[0], xyDirection(s, d));
                }
            }
        }
    }
}

TEST(Routing, IsMinimalStep)
{
    EXPECT_TRUE(isMinimalStep({2, 2}, {5, 5}, Dir::East));
    EXPECT_TRUE(isMinimalStep({2, 2}, {5, 5}, Dir::South));
    EXPECT_FALSE(isMinimalStep({2, 2}, {5, 5}, Dir::West));
    EXPECT_FALSE(isMinimalStep({2, 2}, {5, 5}, Dir::North));
}

} // namespace
} // namespace eqx
