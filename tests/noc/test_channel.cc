/** @file Pipelined channel latency and ordering. */

#include <gtest/gtest.h>

#include "noc/channel.hh"
#include "noc/packet.hh"

namespace eqx {
namespace {

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch(3);
    ch.send(42, 10);
    int out = 0;
    EXPECT_FALSE(ch.receive(12, out));
    EXPECT_TRUE(ch.receive(13, out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, FifoOrder)
{
    Channel<int> ch(1);
    ch.send(1, 0);
    ch.send(2, 1);
    ch.send(3, 2);
    int out = 0;
    ASSERT_TRUE(ch.receive(1, out));
    EXPECT_EQ(out, 1);
    ASSERT_TRUE(ch.receive(2, out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(ch.receive(2, out)); // 3 not due yet
    ASSERT_TRUE(ch.receive(3, out));
    EXPECT_EQ(out, 3);
}

TEST(Channel, LateDrainDeliversEverything)
{
    Channel<int> ch(2);
    for (int i = 0; i < 5; ++i)
        ch.send(i, static_cast<Cycle>(i));
    int out = 0, n = 0;
    while (ch.receive(100, out))
        ++n;
    EXPECT_EQ(n, 5);
}

TEST(Channel, ZeroLatencyRejected)
{
    EXPECT_THROW(Channel<int>(0), std::logic_error);
}

TEST(Channel, CarriesFlits)
{
    Channel<Flit> ch(1);
    Flit f;
    f.pkt = makePacket(PacketType::ReadReply, 1, 2, 640);
    f.isHead = true;
    ch.send(std::move(f), 5);
    Flit out;
    ASSERT_TRUE(ch.receive(6, out));
    EXPECT_TRUE(out.isHead);
    EXPECT_EQ(out.pkt->dst, 2);
}

TEST(Channel, InflightCount)
{
    Channel<int> ch(4);
    EXPECT_EQ(ch.inflightCount(), 0u);
    ch.send(1, 0);
    ch.send(2, 1);
    EXPECT_EQ(ch.inflightCount(), 2u);
}

} // namespace
} // namespace eqx
