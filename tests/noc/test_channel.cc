/** @file Pipelined channel latency and ordering. */

#include <gtest/gtest.h>

#include "noc/channel.hh"
#include "noc/packet.hh"

namespace eqx {
namespace {

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch(3);
    ch.send(42, 10);
    int out = 0;
    EXPECT_FALSE(ch.receive(12, out));
    EXPECT_TRUE(ch.receive(13, out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, FifoOrder)
{
    Channel<int> ch(1);
    ch.send(1, 0);
    ch.send(2, 1);
    ch.send(3, 2);
    int out = 0;
    ASSERT_TRUE(ch.receive(1, out));
    EXPECT_EQ(out, 1);
    ASSERT_TRUE(ch.receive(2, out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(ch.receive(2, out)); // 3 not due yet
    ASSERT_TRUE(ch.receive(3, out));
    EXPECT_EQ(out, 3);
}

TEST(Channel, LateDrainDeliversEverything)
{
    Channel<int> ch(2);
    for (int i = 0; i < 5; ++i)
        ch.send(i, static_cast<Cycle>(i));
    int out = 0, n = 0;
    while (ch.receive(100, out))
        ++n;
    EXPECT_EQ(n, 5);
}

TEST(Channel, ZeroLatencyRejected)
{
    EXPECT_THROW(Channel<int>(0), std::logic_error);
}

TEST(Channel, CarriesFlits)
{
    Channel<Flit> ch(1);
    Flit f;
    f.pkt = makePacket(PacketType::ReadReply, 1, 2, 640);
    f.isHead = true;
    ch.send(std::move(f), 5);
    Flit out;
    ASSERT_TRUE(ch.receive(6, out));
    EXPECT_TRUE(out.isHead);
    EXPECT_EQ(out.pkt->dst, 2);
}

TEST(Channel, InflightCount)
{
    Channel<int> ch(4);
    EXPECT_EQ(ch.inflightCount(), 0u);
    ch.send(1, 0);
    ch.send(2, 1);
    EXPECT_EQ(ch.inflightCount(), 2u);
}

TEST(Channel, SecondSendSameTickAsserts)
{
    // A physical link carries one item per tick; the event wheel also
    // relies on one due-event per (channel, tick).
    Channel<int> ch(2);
    ch.send(1, 5);
    EXPECT_THROW(ch.send(2, 5), std::logic_error);
    ch.send(3, 6); // the next tick is fine
    int out = 0;
    ASSERT_TRUE(ch.receive(7, out));
    EXPECT_EQ(out, 1); // the rejected send left no trace
    ASSERT_TRUE(ch.receive(8, out));
    EXPECT_EQ(out, 3);
}

TEST(Channel, SendTicksMustIncrease)
{
    Channel<int> ch(1);
    ch.send(1, 10);
    EXPECT_THROW(ch.send(2, 9), std::logic_error);
}

/** Scheduler hookup: every send posts exactly one (tag, due) event. */
TEST(Channel, PostsDueEventsToScheduler)
{
    struct Recorder : ChannelScheduler
    {
        std::vector<std::pair<std::uint32_t, Cycle>> events;
        void
        channelDue(std::uint32_t tag, Cycle due) override
        {
            events.emplace_back(tag, due);
        }
    };
    Recorder rec;
    Channel<int> ch(3);
    ch.setScheduler(&rec, 17);
    ch.send(1, 10);
    ch.send(2, 11);
    ASSERT_EQ(rec.events.size(), 2u);
    EXPECT_EQ(rec.events[0], (std::pair<std::uint32_t, Cycle>{17, 13}));
    EXPECT_EQ(rec.events[1], (std::pair<std::uint32_t, Cycle>{17, 14}));
}

} // namespace
} // namespace eqx
