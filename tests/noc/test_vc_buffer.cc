/** @file VC buffer FIFO semantics and state machine fields. */

#include <gtest/gtest.h>

#include "noc/vc_buffer.hh"

namespace eqx {
namespace {

Flit
flitOf(PacketPtr pkt, int idx, int n)
{
    Flit f;
    f.pkt = std::move(pkt);
    f.index = idx;
    f.isHead = idx == 0;
    f.isTail = idx == n - 1;
    return f;
}

TEST(VcBuffer, FifoOrder)
{
    VcBuffer vcb(5);
    auto pkt = makePacket(PacketType::ReadReply, 0, 1, 640);
    for (int i = 0; i < 5; ++i)
        vcb.push(flitOf(pkt, i, 5));
    EXPECT_TRUE(vcb.full());
    for (int i = 0; i < 5; ++i) {
        Flit f = vcb.pop();
        EXPECT_EQ(f.index, i);
    }
    EXPECT_TRUE(vcb.empty());
}

TEST(VcBuffer, OverflowPanics)
{
    VcBuffer vcb(1);
    auto pkt = makePacket(PacketType::ReadRequest, 0, 1, 128);
    vcb.push(flitOf(pkt, 0, 1));
    EXPECT_THROW(vcb.push(flitOf(pkt, 0, 1)), std::logic_error);
}

TEST(VcBuffer, PopEmptyPanics)
{
    VcBuffer vcb(1);
    EXPECT_THROW(vcb.pop(), std::logic_error);
}

TEST(VcBuffer, ReleaseResetsAllocationState)
{
    VcBuffer vcb(5);
    vcb.state = VcState::Active;
    vcb.outPort = 3;
    vcb.outVc = 1;
    vcb.routeCandidates = {1, 2};
    vcb.release();
    EXPECT_EQ(vcb.state, VcState::Idle);
    EXPECT_EQ(vcb.outPort, -1);
    EXPECT_EQ(vcb.outVc, -1);
    EXPECT_TRUE(vcb.routeCandidates.empty());
}

TEST(VcBuffer, OccupancyTracksPushPop)
{
    VcBuffer vcb(4);
    auto pkt = makePacket(PacketType::ReadRequest, 0, 1, 128);
    EXPECT_EQ(vcb.occupancy(), 0);
    vcb.push(flitOf(pkt, 0, 2));
    vcb.push(flitOf(pkt, 1, 2));
    EXPECT_EQ(vcb.occupancy(), 2);
    vcb.pop();
    EXPECT_EQ(vcb.occupancy(), 1);
    EXPECT_EQ(vcb.depth(), 4);
}

} // namespace
} // namespace eqx
