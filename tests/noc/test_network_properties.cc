/** @file Property sweeps: delivery/no-loss/drain across configs. */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"

namespace eqx {
namespace {

class CountingSink : public PacketSink
{
  public:
    bool
    canAccept(const PacketPtr &) override
    {
        return true;
    }
    void
    accept(const PacketPtr &pkt, Cycle) override
    {
        ++count;
        lastId = pkt->id;
    }
    int count = 0;
    std::uint64_t lastId = 0;
};

using NetCfg = std::tuple<int /*size*/, int /*vcs*/, RoutingMode,
                          bool /*classVcs*/>;

class NetworkProperties : public ::testing::TestWithParam<NetCfg> {};

TEST_P(NetworkProperties, RandomTrafficDeliveredAndDrained)
{
    auto [size, vcs, routing, class_vcs] = GetParam();
    NetworkSpec spec;
    spec.params.width = spec.params.height = size;
    spec.params.vcsPerPort = vcs;
    spec.params.routing = routing;
    spec.params.classVcs = class_vcs;
    Network net(spec);

    int n = net.topology().numNodes();
    std::vector<CountingSink> sinks(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        net.setSink(i, &sinks[static_cast<std::size_t>(i)]);

    Rng rng(static_cast<std::uint64_t>(size * 100 + vcs));
    Cycle clock = 0;
    int sent = 0;
    // Random mixed traffic at a bursty moderate rate for 2000 cycles.
    for (int cycle = 0; cycle < 2000; ++cycle) {
        for (NodeId s = 0; s < n; ++s) {
            if (!rng.chance(0.02))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(
                static_cast<std::uint64_t>(n)));
            if (d == s)
                continue;
            bool reply = rng.chance(0.5);
            auto pkt = makePacket(reply ? PacketType::ReadReply
                                        : PacketType::ReadRequest,
                                  s, d, reply ? 640 : 128);
            if (net.inject(s, pkt))
                ++sent;
        }
        net.coreTick(++clock);
    }
    // Drain.
    for (int i = 0; i < 30000 && !net.drained(); ++i)
        net.coreTick(++clock);

    ASSERT_TRUE(net.drained()) << "possible deadlock or livelock";
    int got = 0;
    for (const auto &s : sinks)
        got += s.count;
    EXPECT_EQ(got, sent); // conservation: nothing dropped or duplicated
    EXPECT_GT(sent, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkProperties,
    ::testing::Values(
        NetCfg{4, 2, RoutingMode::XY, false},
        NetCfg{4, 2, RoutingMode::MinimalAdaptive, false},
        NetCfg{4, 2, RoutingMode::XY, true},
        NetCfg{4, 4, RoutingMode::MinimalAdaptive, false},
        NetCfg{6, 2, RoutingMode::MinimalAdaptive, false},
        NetCfg{6, 3, RoutingMode::XY, true},
        NetCfg{8, 2, RoutingMode::MinimalAdaptive, false},
        NetCfg{8, 4, RoutingMode::XY, true}),
    [](const auto &info) {
        std::string name = "s" + std::to_string(std::get<0>(info.param)) +
                           "v" + std::to_string(std::get<1>(info.param));
        name += std::get<2>(info.param) == RoutingMode::XY ? "XY" : "AD";
        if (std::get<3>(info.param))
            name += "cls";
        return name;
    });

TEST(NetworkProperty, VcMonoConservesUnderMixedTraffic)
{
    NetworkSpec spec;
    spec.params.width = spec.params.height = 6;
    spec.params.classVcs = true;
    spec.params.vcMono = true;
    spec.params.vcMonoWindow = 8;
    Network net(spec);
    int n = net.topology().numNodes();
    std::vector<CountingSink> sinks(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        net.setSink(i, &sinks[static_cast<std::size_t>(i)]);

    Rng rng(77);
    Cycle clock = 0;
    int sent = 0;
    for (int cycle = 0; cycle < 3000; ++cycle) {
        for (NodeId s = 0; s < n; ++s) {
            // Reply-heavy phase then request-heavy phase, so
            // monopolization actually triggers.
            bool reply_phase = (cycle / 500) % 2 == 0;
            if (!rng.chance(0.03))
                continue;
            NodeId d = static_cast<NodeId>(rng.nextBounded(
                static_cast<std::uint64_t>(n)));
            if (d == s)
                continue;
            auto pkt = makePacket(reply_phase ? PacketType::ReadReply
                                              : PacketType::ReadRequest,
                                  s, d, reply_phase ? 640 : 128);
            if (net.inject(s, pkt))
                ++sent;
        }
        net.coreTick(++clock);
    }
    for (int i = 0; i < 50000 && !net.drained(); ++i)
        net.coreTick(++clock);
    ASSERT_TRUE(net.drained()) << "VC-Mono deadlocked";
    int got = 0;
    for (const auto &s : sinks)
        got += s.count;
    EXPECT_EQ(got, sent);
}

TEST(NetworkProperty, LongEirLinksTakeExtraCycles)
{
    // A 2-hop EIR link is a 1-cycle channel; a 4-hop link needs two.
    NetworkSpec near_spec;
    near_spec.params.width = near_spec.params.height = 8;
    near_spec.eirGroups[{0}] = {2}; // (2,0): span 2
    Network near_net(near_spec);

    NetworkSpec far_spec = near_spec;
    far_spec.eirGroups.clear();
    far_spec.eirGroups[{0}] = {4}; // (4,0): span 4
    Network far_net(far_spec);

    auto run = [](Network &net, NodeId eir) {
        CountingSink sink;
        net.setSink(7, &sink);
        Cycle clock = 0;
        auto pkt = makePacket(PacketType::ReadReply, 0, 7, 640);
        net.inject(0, pkt);
        for (int i = 0; i < 200; ++i)
            net.coreTick(++clock);
        EXPECT_EQ(sink.count, 1);
        EXPECT_EQ(pkt->entryRouter, eir);
        return pkt->networkLatency();
    };
    Cycle lat_near = run(near_net, 2);
    Cycle lat_far = run(far_net, 4);
    // The far EIR saves 2 router hops (~6 ticks) but its channel costs
    // +1 cycle; net effect: strictly less than the near-EIR latency,
    // by less than the full hop saving.
    EXPECT_LT(lat_far, lat_near);
    EXPECT_GT(lat_far + 6, lat_near);
}

} // namespace
} // namespace eqx
