/** @file Whole-network behaviour: delivery, latency, wiring, clocking. */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hh"

namespace eqx {
namespace {

/** Sink that records deliveries and can refuse (backpressure tests). */
class TestSink : public PacketSink
{
  public:
    bool
    canAccept(const PacketPtr &) override
    {
        return accepting;
    }
    void
    accept(const PacketPtr &pkt, Cycle) override
    {
        delivered.push_back(pkt);
    }

    bool accepting = true;
    std::vector<PacketPtr> delivered;
};

NetworkSpec
meshSpec(int w, int h, RoutingMode routing = RoutingMode::XY)
{
    NetworkSpec spec;
    spec.params.width = w;
    spec.params.height = h;
    spec.params.routing = routing;
    return spec;
}

void
runCycles(Network &net, Cycle &clock, int n)
{
    for (int i = 0; i < n; ++i)
        net.coreTick(++clock);
}

TEST(Network, SinglePacketDelivery)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
    ASSERT_TRUE(net.inject(0, pkt));
    runCycles(net, clock, 60);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_EQ(sink.delivered[0]->id, pkt->id);
    EXPECT_GE(pkt->cycleInjected, pkt->cycleCreated);
    EXPECT_GT(pkt->cycleEjected, pkt->cycleInjected);
    EXPECT_TRUE(net.drained());
}

TEST(Network, ZeroLoadLatencyScalesWithHops)
{
    // Per-hop cost is fixed (RC/VA + SA + link); compare 1 hop vs 6.
    Network net(meshSpec(8, 8));
    TestSink sink;
    for (NodeId n = 0; n < 64; ++n)
        net.setSink(n, &sink);
    Cycle clock = 0;

    auto near = makePacket(PacketType::ReadRequest, 0, 1, 128);
    net.inject(0, near);
    runCycles(net, clock, 40);
    auto far = makePacket(PacketType::ReadRequest, 0, 7, 128);
    net.inject(0, far);
    runCycles(net, clock, 80);

    // (0,0) -> (1,0) is 1 hop; (0,0) -> (7,0) is 7 hops: 6 extra.
    Cycle lat1 = near->networkLatency();
    Cycle lat7 = far->networkLatency();
    EXPECT_NEAR(static_cast<double>(lat7 - lat1), 6 * 3, 2.0);
}

TEST(Network, MultiFlitPacketArrivesWhole)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    net.setSink(12, &sink);
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadReply, 3, 12, 640); // 5 flits
    net.inject(3, pkt);
    runCycles(net, clock, 80);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_EQ(net.activity().replyBits, 640u);
}

class RoutingModes : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(RoutingModes, AllPairsDelivery)
{
    Network net(meshSpec(4, 4, GetParam()));
    std::vector<TestSink> sinks(16);
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, &sinks[static_cast<std::size_t>(n)]);
    Cycle clock = 0;
    int sent = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            // NI queue is finite: tick until accepted.
            auto pkt = makePacket(PacketType::ReadRequest, s, d, 128);
            while (!net.inject(s, pkt))
                net.coreTick(++clock);
            ++sent;
        }
    }
    for (int i = 0; i < 3000 && !net.drained(); ++i)
        net.coreTick(++clock);
    int got = 0;
    for (auto &sink : sinks)
        got += static_cast<int>(sink.delivered.size());
    EXPECT_EQ(got, sent);
    EXPECT_TRUE(net.drained());
}

INSTANTIATE_TEST_SUITE_P(Both, RoutingModes,
                         ::testing::Values(RoutingMode::XY,
                                           RoutingMode::MinimalAdaptive),
                         [](const auto &info) {
                             return info.param == RoutingMode::XY
                                        ? "XY"
                                        : "MinimalAdaptive";
                         });

TEST(Network, WrongClassInjectionPanics)
{
    NetworkSpec spec = meshSpec(4, 4);
    spec.params.classes = {true, false}; // request network
    Network net(spec);
    auto reply = makePacket(PacketType::ReadReply, 0, 5, 640);
    EXPECT_THROW(net.inject(0, reply), std::logic_error);
}

TEST(Network, EjectionBackpressureHoldsPackets)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    sink.accepting = false;
    net.setSink(5, &sink);
    Cycle clock = 0;
    for (int i = 0; i < 4; ++i) {
        auto pkt = makePacket(PacketType::ReadRequest, 0, 5, 128);
        while (!net.inject(0, pkt))
            net.coreTick(++clock);
    }
    runCycles(net, clock, 200);
    EXPECT_TRUE(sink.delivered.empty());
    EXPECT_FALSE(net.drained()); // packets parked inside the network
    sink.accepting = true;
    runCycles(net, clock, 200);
    EXPECT_EQ(sink.delivered.size(), 4u);
    EXPECT_TRUE(net.drained());
}

TEST(Network, LatencyStatsSplitByClass)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    net.setSink(10, &sink);
    Cycle clock = 0;
    auto req = makePacket(PacketType::ReadRequest, 0, 10, 128);
    auto rep = makePacket(PacketType::ReadReply, 0, 10, 640);
    net.inject(0, req);
    net.inject(0, rep);
    runCycles(net, clock, 100);
    EXPECT_EQ(net.latency().packets[0], 1u);
    EXPECT_EQ(net.latency().packets[1], 1u);
    EXPECT_GT(net.latency().netLat[1].mean(),
              net.latency().netLat[0].mean()); // more flits = longer
}

TEST(Network, EirWiringAddsRemotePortsAndBuffers)
{
    NetworkSpec spec = meshSpec(8, 8);
    spec.eirGroups[{27}] = {11, 25, 29, 43}; // CB at (3,3), axis EIRs
    Network net(spec);
    EXPECT_EQ(net.numRemoteInjPorts(), 4);
    EXPECT_EQ(net.ni(27).numInjBuffers(), 5); // local + 4 EIRs
    // Each EIR router gained one input port: 4 geo + 1 local + 1 EIR.
    EXPECT_EQ(net.router(29).numInputPorts(), 6);
    EXPECT_EQ(net.router(28).numInputPorts(), 5);
}

TEST(Network, EirInjectionEntersAtRemoteRouter)
{
    NetworkSpec spec = meshSpec(8, 8);
    spec.eirGroups[{27}] = {25, 29}; // west/east EIRs
    Network net(spec);
    TestSink sink;
    net.setSink(31, &sink); // same row, far east: shortest via 29
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadReply, 27, 31, 640);
    net.inject(27, pkt);
    runCycles(net, clock, 100);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_EQ(pkt->entryRouter, 29);
}

TEST(Network, MultiPortModsAddPorts)
{
    NetworkSpec spec = meshSpec(4, 4);
    NodeMods m;
    m.kind = NiKind::MultiPort;
    m.localInjPorts = 4;
    m.localEjPorts = 2;
    spec.mods[5] = m;
    Network net(spec);
    // node 5 interior: 4 geo in + 4 inj = 8; out: 4 geo + 2 ej = 6.
    EXPECT_EQ(net.router(5).numInputPorts(), 8);
    EXPECT_EQ(net.router(5).numOutputPorts(), 6);
    EXPECT_EQ(net.ni(5).numInjBuffers(), 4);
}

TEST(Network, FastClockRunsMoreTicks)
{
    NetworkSpec spec = meshSpec(4, 4);
    spec.params.ticksEvenCycle = 3;
    spec.params.ticksOddCycle = 2;
    Network net(spec);
    Cycle clock = 0;
    net.coreTick(++clock); // odd cycle: 2 ticks
    net.coreTick(++clock); // even cycle: 3 ticks
    EXPECT_EQ(net.currentTick(), 5u);
}

TEST(Network, ResidenceHeatPopulated)
{
    Network net(meshSpec(4, 4));
    Cycle clock = 0;
    for (int i = 0; i < 30; ++i) {
        auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
        while (!net.inject(0, pkt))
            net.coreTick(++clock);
    }
    runCycles(net, clock, 400);
    auto heat = net.routerResidenceMeans();
    ASSERT_EQ(heat.size(), 16u);
    EXPECT_GT(heat[0], 0.0); // source router saw traffic
    EXPECT_GE(net.residenceVariance(), 0.0);
}

TEST(Network, TooSmallMeshRejected)
{
    NetworkSpec spec = meshSpec(1, 4);
    EXPECT_THROW(Network net(spec), std::logic_error);
}

TEST(Network, ExportStatsCoversRoutersPortsAndNis)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
    ASSERT_TRUE(net.inject(0, pkt));
    runCycles(net, clock, 60);
    ASSERT_EQ(sink.delivered.size(), 1u);

    StatGroup sg;
    net.exportStats(sg, "t");
    EXPECT_GT(sg.get("t.act.link_flits"), 0.0);
    EXPECT_DOUBLE_EQ(sg.get("t.lat.req.packets"), 1.0);
    EXPECT_GT(sg.get("t.lat.req.p50"), 0.0);
    // The source router forwarded the packet's flits: port-level
    // accounting must agree with the router-level total.
    EXPECT_GT(sg.get("t.router.0.flits"), 0.0);
    EXPECT_EQ(sg.get("t.router.0.in.inj0.flits"),
              sg.get("t.router.0.flits"));
    // (0,0) -> (3,3) under XY leaves router 0 eastward.
    EXPECT_EQ(sg.get("t.router.0.out.E.flits"),
              sg.get("t.router.0.flits"));
    // Allocator accounting: grants never exceed requests.
    EXPECT_GT(sg.get("t.router.0.sa_grant"), 0.0);
    EXPECT_GE(sg.get("t.router.0.sa_req"),
              sg.get("t.router.0.sa_grant"));
    EXPECT_GE(sg.get("t.router.0.va_req"),
              sg.get("t.router.0.va_grant"));
    // NI buffer 0 injected the whole packet.
    EXPECT_DOUBLE_EQ(sg.get("t.ni.0.buf0.packets"), 1.0);
    EXPECT_GT(sg.get("t.ni.0.buf0.flits"), 0.0);
}

TEST(Network, ResetStatsClearsEveryCounter)
{
    Network net(meshSpec(4, 4));
    TestSink sink;
    net.setSink(15, &sink);
    Cycle clock = 0;
    auto pkt = makePacket(PacketType::ReadRequest, 0, 15, 128);
    ASSERT_TRUE(net.inject(0, pkt));
    runCycles(net, clock, 60);
    ASSERT_TRUE(net.drained());

    net.resetStats();
    StatGroup sg;
    net.exportStats(sg, "t");
    for (const auto &[key, val] : sg.all()) {
        // ".router" keys are wiring (the buffer's target router id),
        // not counters; everything else must read zero after a reset.
        if (key.size() > 7 && key.compare(key.size() - 7, 7, ".router") == 0)
            continue;
        EXPECT_EQ(val, 0.0) << key;
    }

    // The network keeps working after a reset and repopulates stats.
    auto pkt2 = makePacket(PacketType::ReadRequest, 0, 15, 128);
    ASSERT_TRUE(net.inject(0, pkt2));
    runCycles(net, clock, 60);
    EXPECT_EQ(sink.delivered.size(), 2u);
    StatGroup sg2;
    net.exportStats(sg2, "t");
    EXPECT_DOUBLE_EQ(sg2.get("t.lat.req.packets"), 1.0);
    EXPECT_GT(sg2.get("t.act.link_flits"), 0.0);
}

} // namespace
} // namespace eqx
