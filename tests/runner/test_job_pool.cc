/** @file JobPool scheduling, determinism, timeout/retry, reporting. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/job_pool.hh"
#include "runner/jsonl.hh"
#include "runner/stream_seed.hh"

namespace eqx {
namespace {

TEST(JobPool, RunsEveryJobExactlyOnce)
{
    JobPoolConfig pc;
    pc.workers = 4;
    JobPool pool(pc);
    std::vector<std::atomic<int>> hits(64);
    auto reports = pool.run(64, [&](const JobContext &ctx) {
        hits[ctx.index].fetch_add(1);
        return true;
    });
    ASSERT_EQ(reports.size(), 64u);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    for (const auto &r : reports) {
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.attempts, 1);
    }
    EXPECT_EQ(pool.completed(), 64u);
    EXPECT_EQ(pool.failed(), 0u);
}

TEST(JobPool, ResultsIndependentOfWorkerCount)
{
    // Each job computes a value from its index only; any worker count
    // must produce the identical output vector.
    auto sweep = [](int workers) {
        std::vector<std::uint64_t> out(40);
        JobPoolConfig pc;
        pc.workers = workers;
        JobPool pool(pc);
        pool.run(out.size(), [&](const JobContext &ctx) {
            out[ctx.index] =
                deriveStreamSeed(7, std::uint64_t(ctx.index));
            return true;
        });
        return out;
    };
    auto serial = sweep(1);
    EXPECT_EQ(serial, sweep(2));
    EXPECT_EQ(serial, sweep(8));
}

TEST(JobPool, NonCompletionRetriesOnceThenFails)
{
    std::vector<std::atomic<int>> tries(4);
    JobPoolConfig pc;
    pc.workers = 2;
    pc.retries = 1;
    JobPool pool(pc);
    auto reports = pool.run(4, [&](const JobContext &ctx) {
        tries[ctx.index].fetch_add(1);
        return ctx.index % 2 == 0; // odd jobs never complete
    });
    for (std::size_t i = 0; i < 4; ++i) {
        if (i % 2 == 0) {
            EXPECT_TRUE(reports[i].ok());
            EXPECT_EQ(tries[i].load(), 1);
        } else {
            EXPECT_EQ(reports[i].status, JobStatus::Failed);
            EXPECT_EQ(tries[i].load(), 2) << "one retry expected";
            EXPECT_EQ(reports[i].attempts, 2);
        }
    }
    EXPECT_EQ(pool.failed(), 2u);
}

TEST(JobPool, ThrowingJobIsReportedNotFatal)
{
    JobPoolConfig pc;
    pc.workers = 2;
    pc.retries = 0;
    JobPool pool(pc);
    auto reports = pool.run(3, [&](const JobContext &ctx) {
        if (ctx.index == 1)
            throw std::runtime_error("boom");
        return true;
    });
    EXPECT_TRUE(reports[0].ok());
    EXPECT_TRUE(reports[2].ok());
    EXPECT_EQ(reports[1].status, JobStatus::Failed);
    EXPECT_EQ(reports[1].error, "boom");
}

TEST(JobPool, WatchdogCancelsOverrunningJob)
{
    JobPoolConfig pc;
    pc.workers = 2;
    pc.timeoutSec = 0.08;
    pc.retries = 0;
    JobPool pool(pc);
    auto reports = pool.run(2, [&](const JobContext &ctx) {
        if (ctx.index == 0)
            return true; // fast job unaffected
        // Cooperative loop: spins until the watchdog trips the token.
        while (!ctx.cancel->cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return false;
    });
    EXPECT_TRUE(reports[0].ok());
    EXPECT_EQ(reports[1].status, JobStatus::TimedOut);
    EXPECT_GE(reports[1].wallMs, 50.0);
}

TEST(JobPool, TimedOutJobGetsFreshTokenOnRetry)
{
    std::atomic<int> attempts{0};
    JobPoolConfig pc;
    pc.workers = 1;
    pc.timeoutSec = 0.05;
    pc.retries = 1;
    JobPool pool(pc);
    auto reports = pool.run(1, [&](const JobContext &ctx) {
        attempts.fetch_add(1);
        EXPECT_FALSE(ctx.cancel->cancelled())
            << "token must be re-armed per attempt";
        if (ctx.attempt == 0) {
            while (!ctx.cancel->cancelled())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            return false;
        }
        return true; // retry completes quickly
    });
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_TRUE(reports[0].ok());
    EXPECT_EQ(reports[0].attempts, 2);
}

TEST(JobPool, OnJobDoneSerializedAndComplete)
{
    JobPoolConfig pc;
    pc.workers = 4;
    std::vector<int> done_order;
    pc.onJobDone = [&](std::size_t i, const JobReport &rep) {
        // Serialized by the pool: plain vector push is safe here.
        done_order.push_back(static_cast<int>(i));
        EXPECT_TRUE(rep.ok());
    };
    JobPool pool(pc);
    pool.run(32, [](const JobContext &) { return true; });
    ASSERT_EQ(done_order.size(), 32u);
    std::sort(done_order.begin(), done_order.end());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(done_order[static_cast<std::size_t>(i)], i);
}

TEST(JobPool, ZeroJobsIsFine)
{
    JobPool pool;
    auto reports = pool.run(0, [](const JobContext &) { return true; });
    EXPECT_TRUE(reports.empty());
    EXPECT_EQ(pool.total(), 0u);
}

TEST(JobPool, ResolveWorkerCount)
{
    EXPECT_EQ(resolveWorkerCount(3), 3);
    EXPECT_GE(resolveWorkerCount(0), 1);
}

TEST(StreamSeed, DeterministicAndTagSensitive)
{
    auto a = deriveStreamSeed(1, "EquiNox", "bfs");
    EXPECT_EQ(a, deriveStreamSeed(1, "EquiNox", "bfs"));
    EXPECT_NE(a, deriveStreamSeed(2, "EquiNox", "bfs"));
    EXPECT_NE(a, deriveStreamSeed(1, "SingleBase", "bfs"));
    EXPECT_NE(a, deriveStreamSeed(1, "EquiNox", "hotspot"));
    // Tag order matters: (x, y) and (y, x) are different streams.
    EXPECT_NE(deriveStreamSeed(1, "a", "b"), deriveStreamSeed(1, "b", "a"));
}

TEST(Jsonl, ObjectBuilderAndEscaping)
{
    JsonObject o;
    o.field("name", std::string("a\"b\\c\nd"))
        .field("pi", 3.5)
        .field("n", std::uint64_t{42})
        .field("neg", -7)
        .field("ok", true);
    EXPECT_EQ(o.str(), "{\"name\":\"a\\\"b\\\\c\\nd\",\"pi\":3.5,"
                       "\"n\":42,\"neg\":-7,\"ok\":true}");
}

TEST(Jsonl, WriterStreamsLines)
{
    std::string path = ::testing::TempDir() + "eqx_test.jsonl";
    {
        JsonlWriter w(path);
        JobPoolConfig pc;
        pc.workers = 4;
        JobPool pool(pc);
        pool.run(20, [&](const JobContext &ctx) {
            JsonObject o;
            o.field("i", static_cast<std::uint64_t>(ctx.index));
            w.write(o.str());
            return true;
        });
        EXPECT_EQ(w.lines(), 20u);
    }
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[256];
    int rows = 0;
    std::uint64_t index_sum = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++rows;
        unsigned long long v = 0;
        ASSERT_EQ(std::sscanf(line, "{\"i\":%llu}", &v), 1)
            << "unparseable line: " << line;
        index_sum += v;
    }
    std::fclose(f);
    EXPECT_EQ(rows, 20);
    EXPECT_EQ(index_sum, 190u); // 0 + 1 + ... + 19
    std::remove(path.c_str());
}

TEST(Jsonl, BadPathIsFatal)
{
    EXPECT_THROW(JsonlWriter("/nonexistent_dir_xyz/out.jsonl"),
                 std::runtime_error);
}

} // namespace
} // namespace eqx
