/** @file JSON escaping, object building and JSONL streaming. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "runner/jsonl.hh"

namespace eqx {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("bench/lud x=3"), "bench/lud x=3");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndNewlines)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    // Remaining control characters take the \uXXXX form.
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, EscapingIsIdempotentOnItsOutput)
{
    // Escaping the already-escaped form only doubles backslashes —
    // i.e. the output never contains a raw quote, newline or control
    // byte that would break out of a JSON string literal.
    std::string nasty = "line1\nline2 \"quoted\" back\\slash\t\x02";
    std::string once = jsonEscape(nasty);
    for (char c : once) {
        EXPECT_NE(c, '\n');
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
    // Every quote in the escaped form is preceded by a backslash.
    for (std::size_t i = 0; i < once.size(); ++i) {
        if (once[i] == '"') {
            EXPECT_EQ(once[i - 1], '\\');
        }
    }
}

TEST(JsonObject, FieldsKeepInsertionOrderAndTypes)
{
    JsonObject o;
    o.field("s", "x\ny").field("d", 1.5).field("i", -2).field("b", true);
    EXPECT_EQ(o.str(), "{\"s\":\"x\\ny\",\"d\":1.5,\"i\":-2,\"b\":true}");
}

TEST(JsonObject, NonFiniteDoublesBecomeNull)
{
    JsonObject o;
    o.field("nan", 0.0 / 0.0).field("inf", 1.0 / 0.0);
    EXPECT_EQ(o.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(JsonObject, MergeSplicesAndEmptyMergeIsNoop)
{
    JsonObject a;
    a.field("x", 1);
    JsonObject b;
    b.field("y", 2).field("z", "q\"r");
    JsonObject empty;
    EXPECT_TRUE(empty.empty());
    a.merge(b).merge(empty);
    EXPECT_EQ(a.str(), "{\"x\":1,\"y\":2,\"z\":\"q\\\"r\"}");

    // Merging into an empty object must not emit a leading comma.
    JsonObject c;
    c.merge(b);
    EXPECT_EQ(c.str(), "{\"y\":2,\"z\":\"q\\\"r\"}");
    EXPECT_FALSE(c.empty());
}

TEST(JsonlWriter, WritesOneRecordPerLine)
{
    std::string path = ::testing::TempDir() + "eqx_test_jsonl.jsonl";
    {
        JsonlWriter w(path);
        JsonObject o;
        o.field("name", "wl \"a\"\nb").field("v", 3);
        w.write(o.str());
        JsonObject p;
        p.field("v", 4);
        w.write(p.str());
        EXPECT_EQ(w.lines(), 2u);
    }
    std::ifstream in(path);
    std::string l1, l2, extra;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_FALSE(std::getline(in, extra));
    // The embedded newline stayed escaped: the record is one line.
    EXPECT_EQ(l1, "{\"name\":\"wl \\\"a\\\"\\nb\",\"v\":3}");
    EXPECT_EQ(l2, "{\"v\":4}");
    std::remove(path.c_str());
}

} // namespace
} // namespace eqx
