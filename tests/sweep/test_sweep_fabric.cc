/**
 * @file
 * Fabric end-to-end tests (DESIGN.md §13): the cache acceptance
 * criterion (second identical sweep simulates nothing and emits
 * byte-identical JSONL modulo wall_ms), crash-resume from journals
 * truncated at arbitrary byte offsets — including mid-record — and
 * shard split + merge reproducing the single-process output.
 *
 * All byte-compares run with workers=1: jsonlPath streams in
 * completion order, and only the sequential pool completes in
 * canonical order. (merge= output is always canonical — it sorts by
 * cell index — so sharded runs compare through the merge tool.)
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sweep/journal.hh"
#include "sweep/shard.hh"
#include "sweep/sweep_runner.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/eqx-fabric-test-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    f.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
}

/** Zero every "wall_ms" value: it is machine/load dependent and
 *  explicitly outside the byte-identity guarantee. */
std::string
normalizeWall(std::string s)
{
    const std::string key = "\"wall_ms\":";
    std::size_t pos = 0;
    while ((pos = s.find(key, pos)) != std::string::npos) {
        std::size_t vstart = pos + key.size();
        std::size_t vend = vstart;
        while (vend < s.size() && s[vend] != ',' && s[vend] != '}')
            ++vend;
        s.replace(vstart, vend - vstart, "0");
        pos = vstart;
    }
    return s;
}

/** 2 schemes x 2 benchmarks, tiny: 4 cells, sequential pool. */
ExperimentConfig
smallMatrix()
{
    ExperimentConfig ec;
    ec.schemes = {"SingleBase", "SeparateBase"};
    ec.workloads = workloadSubset(2);
    ec.instScale = 0.02;
    ec.workers = 1;
    return ec;
}

} // namespace

TEST(Fabric, SecondIdenticalSweepIsFullyCacheServed)
{
    std::string dir = makeTempDir();
    SweepOptions opt;
    opt.cacheDir = dir + "/cache";

    ExperimentConfig ec = smallMatrix();
    ec.jsonlPath = dir + "/first.jsonl";
    SweepOutcome first = runSweep(ec, opt);
    ASSERT_EQ(first.cells.size(), 4u);
    EXPECT_EQ(first.simulated, 4u);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.failed, 0u);
    EXPECT_EQ(first.stored, 4u);

    ec.jsonlPath = dir + "/second.jsonl";
    SweepOutcome second = runSweep(ec, opt);
    ASSERT_EQ(second.cells.size(), 4u);
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.cacheHits, 4u);
    for (const auto &cell : second.cells)
        EXPECT_TRUE(cell.fromCache);

    // The acceptance criterion: byte-identical modulo wall_ms.
    EXPECT_EQ(normalizeWall(readFile(dir + "/first.jsonl")),
              normalizeWall(readFile(dir + "/second.jsonl")));

    // Counters surface through the StatGroup too.
    EXPECT_EQ(second.stats.get("sweep.cache_hits"), 4.0);
    EXPECT_EQ(second.stats.get("sweep.simulated"), 0.0);
    EXPECT_EQ(second.stats.get("cache.hits"), 4.0);
}

TEST(Fabric, OnCellFiresForEveryCell)
{
    std::string dir = makeTempDir();
    SweepOptions opt;
    opt.cacheDir = dir + "/cache";
    std::vector<std::string> seen;
    opt.onCell = [&](const CellDigest &d, const CellResult &cell) {
        seen.push_back(cell.scheme + "/" + cell.benchmark + "@" +
                       d.hex());
    };
    SweepOutcome out = runSweep(smallMatrix(), opt);
    EXPECT_EQ(seen.size(), out.cells.size());
}

TEST(Fabric, CrashResumeFromArbitraryTruncationOffsets)
{
    std::string dir = makeTempDir();

    // A complete run whose journal is the crash-test corpus, and
    // whose merge output is the golden answer.
    SweepOptions opt;
    opt.journalPath = dir + "/full.jnl";
    SweepOutcome full = runSweep(smallMatrix(), opt);
    ASSERT_EQ(full.cells.size(), 4u);
    ASSERT_EQ(full.failed, 0u);

    MergeResult golden =
        mergeJournals({dir + "/full.jnl"}, dir + "/golden.jsonl");
    ASSERT_TRUE(golden.ok()) << golden.error;
    std::string goldenBytes = normalizeWall(readFile(dir + "/golden.jsonl"));

    std::string journal = readFile(dir + "/full.jnl");
    ASSERT_GT(journal.size(), 64u);

    // Crash points: almost-nothing, mid-record (one third / one half
    // of the file lands inside a record), and a torn final record.
    std::vector<std::size_t> offsets = {
        17, journal.size() / 3, journal.size() / 2, journal.size() - 3};
    for (std::size_t cut : offsets) {
        std::string jnl = dir + "/crash-" + std::to_string(cut) + ".jnl";
        writeFile(jnl, journal.substr(0, cut));

        std::size_t intact = loadJournal(jnl).records.size();
        ASSERT_LT(intact, 4u) << "cut " << cut
                              << " left the journal complete";

        SweepOptions ropt;
        ropt.journalPath = jnl;
        ropt.resume = true;
        SweepOutcome resumed = runSweep(smallMatrix(), ropt);
        ASSERT_EQ(resumed.cells.size(), 4u) << "cut " << cut;
        EXPECT_EQ(resumed.journalHits, intact) << "cut " << cut;
        EXPECT_EQ(resumed.simulated, 4u - intact) << "cut " << cut;

        MergeResult merged =
            mergeJournals({jnl}, dir + "/resumed.jsonl");
        ASSERT_TRUE(merged.ok()) << merged.error;
        EXPECT_EQ(normalizeWall(readFile(dir + "/resumed.jsonl")),
                  goldenBytes)
            << "cut " << cut;
    }
}

TEST(Fabric, LoadJournalToleratesTearingCorruptionAndDuplicates)
{
    std::string dir = makeTempDir();
    SweepOptions opt;
    opt.journalPath = dir + "/j.jnl";
    SweepOutcome out = runSweep(smallMatrix(), opt);
    ASSERT_EQ(out.cells.size(), 4u);
    std::string bytes = readFile(dir + "/j.jnl");

    { // Absent file: valid empty load.
        JournalLoad l = loadJournal(dir + "/nope.jnl");
        EXPECT_FALSE(l.existed);
        EXPECT_TRUE(l.records.empty());
    }
    { // Torn tail: the partial final line is excluded, cleanly.
        writeFile(dir + "/torn.jnl", bytes.substr(0, bytes.size() - 5));
        JournalLoad l = loadJournal(dir + "/torn.jnl");
        EXPECT_TRUE(l.existed);
        EXPECT_EQ(l.records.size(), 3u);
        EXPECT_FALSE(l.needsRewrite);
        // validBytes ends exactly after the last intact record.
        EXPECT_EQ(bytes.compare(0, l.validBytes,
                                readFile(dir + "/torn.jnl"), 0,
                                l.validBytes),
                  0);
    }
    { // Interior corruption: a complete line that does not parse.
        std::size_t firstNl = bytes.find('\n');
        std::string mangled = bytes;
        mangled.replace(firstNl / 2, 8, "XXXXXXXX");
        writeFile(dir + "/rot.jnl", mangled);
        JournalLoad l = loadJournal(dir + "/rot.jnl");
        EXPECT_EQ(l.records.size(), 3u);
        EXPECT_TRUE(l.needsRewrite);

        // Resume heals it: the journal is rewritten from the intact
        // records and the missing cell is re-simulated.
        SweepOptions ropt;
        ropt.journalPath = dir + "/rot.jnl";
        ropt.resume = true;
        SweepOutcome resumed = runSweep(smallMatrix(), ropt);
        EXPECT_EQ(resumed.journalHits, 3u);
        EXPECT_EQ(resumed.simulated, 1u);
        EXPECT_EQ(loadJournal(dir + "/rot.jnl").records.size(), 4u);
    }
    { // Duplicate digests: first occurrence wins, one record kept.
        std::size_t firstNl = bytes.find('\n');
        std::string doubled =
            bytes.substr(0, firstNl + 1) + bytes;
        writeFile(dir + "/dup.jnl", doubled);
        JournalLoad l = loadJournal(dir + "/dup.jnl");
        EXPECT_EQ(l.records.size(), 4u);
        EXPECT_FALSE(l.needsRewrite);
    }
}

TEST(Fabric, ShardSplitMergesToSingleProcessBytes)
{
    std::string dir = makeTempDir();

    // Unsharded golden run.
    SweepOptions opt;
    opt.journalPath = dir + "/all.jnl";
    SweepOutcome all = runSweep(smallMatrix(), opt);
    ASSERT_EQ(all.cells.size(), 4u);
    MergeResult golden = mergeJournals({dir + "/all.jnl"}, dir + "/a.jsonl");
    ASSERT_TRUE(golden.ok()) << golden.error;

    // The same matrix split across two shards.
    std::size_t shardTotal = 0;
    for (int i = 0; i < 2; ++i) {
        SweepOptions sopt;
        sopt.journalPath = dir + "/s" + std::to_string(i) + ".jnl";
        sopt.shardIndex = i;
        sopt.shardCount = 2;
        SweepOutcome out = runSweep(smallMatrix(), sopt);
        EXPECT_EQ(out.totalCells, 4u);
        EXPECT_EQ(out.cells.size(), out.shardCells);
        shardTotal += out.shardCells;
    }
    EXPECT_EQ(shardTotal, 4u); // disjoint and covering

    MergeResult merged = mergeJournals(
        {dir + "/s0.jnl", dir + "/s1.jnl"}, dir + "/b.jsonl");
    ASSERT_TRUE(merged.ok()) << merged.error;
    EXPECT_EQ(merged.cells, 4u);

    EXPECT_EQ(normalizeWall(readFile(dir + "/a.jsonl")),
              normalizeWall(readFile(dir + "/b.jsonl")));

    // Merge diagnostics: a missing input and an index gap are errors;
    // gaps are accepted only when asked for.
    EXPECT_FALSE(
        mergeJournals({dir + "/missing.jnl"}, dir + "/x.jsonl").ok());
    MergeResult gap = mergeJournals({dir + "/s0.jnl"}, dir + "/g.jsonl");
    if (loadJournal(dir + "/s0.jnl").records.size() < 4u) {
        EXPECT_FALSE(gap.ok());
        EXPECT_TRUE(
            mergeJournals({dir + "/s0.jnl"}, dir + "/g2.jsonl", true)
                .ok());
    }
}

TEST(Fabric, DigestListingMatchesMatrixAndShards)
{
    ExperimentConfig ec = smallMatrix();
    auto ids = listCellDigests(ec, 2);
    ASSERT_EQ(ids.size(), 4u);
    std::set<std::string> hexes;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(ids[i].index, i); // canonical order
        EXPECT_GE(ids[i].shard, 0);
        EXPECT_LT(ids[i].shard, 2);
        EXPECT_EQ(ids[i].shard,
                  cellShard(ec.seed, ids[i].scheme, ids[i].benchmark, 2));
        hexes.insert(ids[i].digest.hex());
    }
    EXPECT_EQ(hexes.size(), 4u); // all distinct

    // The listing is a pure function of the config.
    auto again = listCellDigests(ec, 2);
    for (std::size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(again[i].digest, ids[i].digest);
}
