/**
 * @file
 * Locale-fragility regression tests. The determinism contract — cache
 * records, digests, golden-JSONL byte identity — must not depend on
 * the process LC_NUMERIC. Historically the writers used
 * snprintf("%.17g") and the readers strtod/strtoull, all of which
 * honor LC_NUMERIC: under a comma-decimal locale (de_DE, fr_FR, ...)
 * the writer emits "1,5", the reader stops parsing at the '.', and
 * every byte-identity guarantee silently breaks. The conversions now
 * go through std::to_chars / std::from_chars, which are specified
 * locale-independent; these tests install a comma-decimal LC_NUMERIC
 * and re-check the contract end to end (record round trip, digest
 * stability, JSONL rendering, config parsing).
 *
 * When no comma-decimal locale is compiled into the host (minimal
 * containers often ship only C/C.utf8) the locale-dependent half
 * skips; CI generates de_DE.UTF-8 and runs one shard under it.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hh"
#include "runner/jsonl.hh"
#include "sim/config_serial.hh"
#include "sim/experiment.hh"
#include "sweep/digest.hh"
#include "sweep/record_io.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

/** RAII installer for a comma-decimal LC_NUMERIC; `active` stays
 *  false when the host has no such locale compiled. */
struct CommaLocale
{
    std::string saved;
    bool active = false;

    CommaLocale()
    {
        const char *prev = std::setlocale(LC_NUMERIC, nullptr);
        saved = prev ? prev : "C";
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
              "es_ES.UTF-8", "it_IT.UTF-8", "nl_NL.UTF-8", "de_DE",
              "fr_FR"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                const struct lconv *lc = std::localeconv();
                if (lc && lc->decimal_point && lc->decimal_point[0] == ',') {
                    active = true;
                    return;
                }
            }
        }
        std::setlocale(LC_NUMERIC, saved.c_str());
    }

    ~CommaLocale() { std::setlocale(LC_NUMERIC, saved.c_str()); }
};

/** A record with fraction- and exponent-bearing doubles on every
 *  layer a comma could leak into. */
CellRecord
fractionalRecord()
{
    ExperimentConfig ec;
    ec.schemes = {"SingleBase"};
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.02;
    ec.collectMetrics = true;
    ExperimentRunner runner(ec);

    CellRecord rec;
    rec.cell.scheme = "SingleBase";
    rec.cell.benchmark = ec.workloads[0].name;
    rec.cell.result = runner.runOne(rec.cell.scheme, ec.workloads[0]);
    rec.cell.attempts = 1;
    rec.cell.wallMs = 12.5;
    rec.cell.index = 0;
    rec.digest = digestBlob("locale-probe\n");
    return rec;
}

std::string
fractionalBlob()
{
    KvBlob b;
    b.add("half", 0.5);
    b.add("third", 1.0 / 3.0);
    b.add("big", 1.5e19);
    b.add("tiny", 5e-324);
    b.add("neg", -2.25);
    return b.canonical();
}

} // namespace

TEST(Locale, RecordContractHoldsUnderCommaDecimal)
{
    // C-locale reference first, then re-run everything under the
    // comma locale: every byte must match.
    const CellRecord rec = fractionalRecord();
    const std::string line_c = cellRecordLine(rec);
    const std::string blob_c = fractionalBlob();
    const CellDigest digest_c = digestBlob(blob_c);

    CommaLocale loc;
    if (!loc.active) {
        // CI generates de_DE.UTF-8 and sets this so a broken
        // locale-gen can't silently turn the regression test into a
        // skip; dev containers without locale data still skip.
        ASSERT_EQ(std::getenv("EQX_REQUIRE_COMMA_LOCALE"), nullptr)
            << "comma-decimal locale required but unavailable";
        GTEST_SKIP() << "no comma-decimal locale compiled on this host";
    }

    // Prove the locale is really in effect: printf-family formatting
    // is locale-dependent by design.
    char probe[16];
    std::snprintf(probe, sizeof(probe), "%.1f", 1.5);
    ASSERT_STREQ(probe, "1,5") << "LC_NUMERIC did not take effect";

    // Writer: record line and canonical blob are byte-identical.
    EXPECT_EQ(cellRecordLine(rec), line_c);
    EXPECT_EQ(fractionalBlob(), blob_c);
    EXPECT_EQ(digestBlob(fractionalBlob()).hex(), digest_c.hex());

    // Reader: the C-locale bytes parse back exactly.
    CellRecord back;
    ASSERT_TRUE(parseCellRecord(line_c, back));
    EXPECT_EQ(back.cell.wallMs, 12.5);
    EXPECT_EQ(cellRecordLine(back), line_c);

    // Raw JSON number parsing is exact (strtod would read "1.5" as 1).
    JsonFields f;
    ASSERT_TRUE(parseFlatJson(R"({"a":1.5,"b":2.5e-3})", f));
    EXPECT_EQ(f["a"].asDouble(), 1.5);
    EXPECT_EQ(f["b"].asDouble(), 2.5e-3);
}

TEST(Locale, JsonlAndConfigHoldUnderCommaDecimal)
{
    JsonObject ref;
    ref.field("x", 0.1).field("y", 1.5e3);
    const std::string ref_str = ref.str();

    CommaLocale loc;
    if (!loc.active) {
        // CI generates de_DE.UTF-8 and sets this so a broken
        // locale-gen can't silently turn the regression test into a
        // skip; dev containers without locale data still skip.
        ASSERT_EQ(std::getenv("EQX_REQUIRE_COMMA_LOCALE"), nullptr)
            << "comma-decimal locale required but unavailable";
        GTEST_SKIP() << "no comma-decimal locale compiled on this host";
    }

    JsonObject o;
    o.field("x", 0.1).field("y", 1.5e3);
    EXPECT_EQ(o.str(), ref_str);
    EXPECT_EQ(o.str().find(','), std::string::npos);

    Config c;
    c.set("rate", "0.25");
    c.set("scale", "1.5e-2");
    EXPECT_EQ(c.getDouble("rate"), 0.25);
    EXPECT_EQ(c.getDouble("scale"), 1.5e-2);
}

TEST(Locale, ToCharsMatchesC17gBytes)
{
    // The digest/golden-JSONL contract freezes the committed byte
    // form, which was produced by C-locale %.17g. to_chars(general,
    // 17) must reproduce it exactly (C locale here; the comma-locale
    // identity is covered above).
    for (double v : {0.0, -0.0, 0.5, 1.0 / 3.0, 1.5e3, 1e21, 5e-324,
                     123456789012345678.0, -2.25}) {
        char a[64];
        std::snprintf(a, sizeof(a), "%.17g", v);
        KvBlob b;
        b.add("v", v);
        EXPECT_EQ(b.canonical(), std::string("v=") + a + "\n");
    }
}
