/**
 * @file
 * Digest-layer tests (DESIGN.md §13): canonical-serialization
 * stability under field reordering, schema-salt invalidation, and —
 * the completeness contract — sensitivity of the digest to every
 * SystemConfig / WorkloadProfile / ExperimentConfig knob that can
 * change a result. A knob this suite misses is a knob that can alias
 * two different simulations onto one cache entry.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sim/config_serial.hh"
#include "sweep/digest.hh"
#include "sweep/shard.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

std::string
systemBlob(const SystemConfig &sc)
{
    KvBlob b;
    serializeSystemConfig(sc, b);
    return b.canonical();
}

ExperimentConfig
smallConfig()
{
    ExperimentConfig ec;
    ec.schemes = {"SingleBase"};
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.02;
    return ec;
}

CellDigest
digestOf(const ExperimentConfig &ec)
{
    ExperimentRunner runner(ec);
    return cellDigest(runner, ec.schemes.front(), ec.workloads.front());
}

} // namespace

TEST(KvBlob, CanonicalIsInsertionOrderFree)
{
    KvBlob a;
    a.add("alpha", 1);
    a.add("beta", 2.5);
    a.add("gamma", std::string("x"));

    KvBlob b;
    b.add("gamma", std::string("x"));
    b.add("alpha", 1);
    b.add("beta", 2.5);

    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.canonical(), "alpha=1\nbeta=2.5\ngamma=x\n");
}

TEST(KvBlob, RendersValueKindsDistinctly)
{
    KvBlob b;
    b.add("b_true", true);
    b.add("b_false", false);
    b.add("d", 0.1); // %.17g keeps the full round-trip form
    b.add("u", std::uint64_t(18446744073709551615ULL));
    EXPECT_EQ(b.canonical(), "b_false=0\nb_true=1\nd=0.10000000000000001\n"
                             "u=18446744073709551615\n");
}

TEST(Digest, HexRoundTrip)
{
    CellDigest d = digestBlob("some blob\n");
    EXPECT_EQ(d.hex().size(), 32u);
    CellDigest back;
    ASSERT_TRUE(CellDigest::fromHex(d.hex(), back));
    EXPECT_EQ(back, d);

    CellDigest junk;
    EXPECT_FALSE(CellDigest::fromHex("short", junk));
    EXPECT_FALSE(CellDigest::fromHex(std::string(32, 'g'), junk));
    EXPECT_FALSE(
        CellDigest::fromHex("ABCDEF0123456789ABCDEF0123456789", junk));
}

TEST(Digest, SchemaSaltBumpInvalidatesEveryDigest)
{
    std::string blob = systemBlob(SystemConfig{});
    EXPECT_EQ(digestBlob(blob, 1), digestBlob(blob, 1));
    EXPECT_NE(digestBlob(blob, 1), digestBlob(blob, 2));
}

TEST(Digest, SchemaVersionPinnedToCurrentBlobContract)
{
    // v3: the topology knobs (sc.reply_topo.*, dp.topo.*) entered the
    // serialized blob. Bump this pin ONLY together with a
    // kSweepSchemaVersion bump — a blob-content change without a salt
    // bump would let stale cache entries alias fresh configurations.
    EXPECT_EQ(kSweepSchemaVersion, 3);
    std::string blob = systemBlob(SystemConfig{});
    EXPECT_NE(blob.find("sc.reply_topo.kind=mesh"), std::string::npos);
    EXPECT_NE(blob.find("sc.reply_topo.conc=2"), std::string::npos);
    EXPECT_NE(blob.find("sc.design.topo.kind=mesh"), std::string::npos);
    EXPECT_NE(digestBlob(blob, kSweepSchemaVersion),
              digestBlob(blob, kSweepSchemaVersion - 1));
}

TEST(Digest, SensitiveToEverySystemConfigKnob)
{
    using Mut = void (*)(SystemConfig &);
    // One mutator per serialized SystemConfig knob. Adding a field to
    // SystemConfig trips the size guard in config_serial.cc; the new
    // field's mutator belongs here too.
    const std::vector<std::pair<const char *, Mut>> muts = {
        {"width", [](SystemConfig &s) { s.width = 12; }},
        {"height", [](SystemConfig &s) { s.height = 12; }},
        {"numCbs", [](SystemConfig &s) { s.numCbs = 4; }},
        {"schemeKey", [](SystemConfig &s) { s.schemeKey = "EquiNox-XY"; }},
        {"scheme", [](SystemConfig &s) { s.scheme = Scheme::SingleBase; }},
        {"seed", [](SystemConfig &s) { s.seed = 99; }},
        {"pe.l1.size", [](SystemConfig &s) { s.pe.l1.sizeBytes *= 2; }},
        {"pe.l1.line", [](SystemConfig &s) { s.pe.l1.lineBytes *= 2; }},
        {"pe.l1.ways", [](SystemConfig &s) { s.pe.l1.ways += 1; }},
        {"pe.l1Mshrs", [](SystemConfig &s) { s.pe.l1Mshrs += 1; }},
        {"pe.l1Targets",
         [](SystemConfig &s) { s.pe.l1TargetsPerMshr += 1; }},
        {"pe.maxOutstanding",
         [](SystemConfig &s) { s.pe.maxOutstanding += 1; }},
        {"pe.issueWidth", [](SystemConfig &s) { s.pe.issueWidth += 1; }},
        {"cb.l2.size", [](SystemConfig &s) { s.cb.l2.sizeBytes *= 2; }},
        {"cb.l2.line", [](SystemConfig &s) { s.cb.l2.lineBytes *= 2; }},
        {"cb.l2.ways", [](SystemConfig &s) { s.cb.l2.ways += 1; }},
        {"cb.mshrs", [](SystemConfig &s) { s.cb.mshrs += 1; }},
        {"cb.targets", [](SystemConfig &s) { s.cb.targetsPerMshr += 1; }},
        {"cb.inputQueue",
         [](SystemConfig &s) { s.cb.inputQueuePackets += 1; }},
        {"cb.replyQueue",
         [](SystemConfig &s) { s.cb.replyQueuePackets += 1; }},
        {"cb.l2HitLatency",
         [](SystemConfig &s) { s.cb.l2HitLatency += 1; }},
        {"cb.requestsPerCycle",
         [](SystemConfig &s) { s.cb.requestsPerCycle += 1; }},
        {"hbm.channels", [](SystemConfig &s) { s.cb.hbm.channels += 1; }},
        {"hbm.banks",
         [](SystemConfig &s) { s.cb.hbm.banksPerChannel += 1; }},
        {"hbm.queueDepth",
         [](SystemConfig &s) { s.cb.hbm.queueDepth += 1; }},
        {"hbm.line", [](SystemConfig &s) { s.cb.hbm.lineBytes *= 2; }},
        {"hbm.tRCD", [](SystemConfig &s) { s.cb.hbm.timing.tRCD += 1; }},
        {"hbm.tRP", [](SystemConfig &s) { s.cb.hbm.timing.tRP += 1; }},
        {"hbm.tCL", [](SystemConfig &s) { s.cb.hbm.timing.tCL += 1; }},
        {"hbm.tBL", [](SystemConfig &s) { s.cb.hbm.timing.tBL += 1; }},
        {"hbm.tWR", [](SystemConfig &s) { s.cb.hbm.timing.tWR += 1; }},
        {"sizes.readReq",
         [](SystemConfig &s) { s.sizes.readRequestBits += 8; }},
        {"sizes.writeReq",
         [](SystemConfig &s) { s.sizes.writeRequestBits += 8; }},
        {"sizes.readRep",
         [](SystemConfig &s) { s.sizes.readReplyBits += 8; }},
        {"sizes.writeRep",
         [](SystemConfig &s) { s.sizes.writeReplyBits += 8; }},
        {"vcsPerPort", [](SystemConfig &s) { s.vcsPerPort += 1; }},
        {"vcDepth", [](SystemConfig &s) { s.vcDepthFlits += 1; }},
        {"flitBits", [](SystemConfig &s) { s.flitBits *= 2; }},
        {"mpInjPorts", [](SystemConfig &s) { s.multiPortInjPorts += 1; }},
        {"mpEjPorts", [](SystemConfig &s) { s.multiPortEjPorts += 1; }},
        {"da2Subnets", [](SystemConfig &s) { s.da2Subnets /= 2; }},
        {"cmeshMinHops", [](SystemConfig &s) { s.cmeshMinHops += 1; }},
        {"cmeshFlitBits", [](SystemConfig &s) { s.cmeshFlitBits *= 2; }},
        {"design.maxHops", [](SystemConfig &s) { s.design.maxHops += 1; }},
        {"design.maxPerGroup",
         [](SystemConfig &s) { s.design.maxPerGroup += 1; }},
        {"design.method",
         [](SystemConfig &s) { s.design.method = SearchMethod::Greedy; }},
        {"design.seed", [](SystemConfig &s) { s.design.seed += 1; }},
        {"mcts.iters",
         [](SystemConfig &s) { s.design.mcts.iterationsPerLevel += 1; }},
        {"mcts.ucbC", [](SystemConfig &s) { s.design.mcts.ucbC += 0.25; }},
        {"mcts.maxChildren",
         [](SystemConfig &s) { s.design.mcts.maxChildrenPerNode += 1; }},
        {"mcts.seed", [](SystemConfig &s) { s.design.mcts.seed += 1; }},
        {"w.load", [](SystemConfig &s) { s.design.weights.load += 1; }},
        {"w.hops", [](SystemConfig &s) { s.design.weights.hops += 1; }},
        {"w.crossings",
         [](SystemConfig &s) { s.design.weights.crossings += 1; }},
        {"w.length", [](SystemConfig &s) { s.design.weights.length += 1; }},
        {"w.repeaters",
         [](SystemConfig &s) { s.design.weights.repeaters += 1; }},
        {"polish", [](SystemConfig &s) { s.design.polishPasses += 1; }},
        {"fixedPlacement",
         [](SystemConfig &s) { s.design.fixedPlacement = {{1, 2}}; }},
        {"maxCycles", [](SystemConfig &s) { s.maxCycles += 1; }},
        {"warmupCycles", [](SystemConfig &s) { s.warmupCycles = 500; }},
        {"collectMetrics",
         [](SystemConfig &s) { s.collectMetrics = true; }},
        {"fault.rate",
         [](SystemConfig &s) { s.fault.ratePerKTick = 1.5; }},
        {"fault.kinds", [](SystemConfig &s) { s.fault.kinds ^= 1; }},
        {"fault.horizon", [](SystemConfig &s) { s.fault.horizonTicks += 1; }},
        {"fault.seed", [](SystemConfig &s) { s.fault.seed = 7; }},
        {"fault.killOnlyInterposer",
         [](SystemConfig &s) {
             s.fault.killOnlyInterposer = !s.fault.killOnlyInterposer;
         }},
        {"fault.stallTicks",
         [](SystemConfig &s) { s.fault.stallTicks += 1; }},
        {"fault.retxTimeout",
         [](SystemConfig &s) { s.fault.retxTimeout += 1; }},
        {"fault.retxTimeoutCap",
         [](SystemConfig &s) { s.fault.retxTimeoutCap += 1; }},
        {"fault.retxMax", [](SystemConfig &s) { s.fault.retxMax += 1; }},
        {"fault.ackLatency",
         [](SystemConfig &s) { s.fault.ackLatency += 1; }},
        {"fault.detectLatency",
         [](SystemConfig &s) { s.fault.detectLatency += 1; }},
        {"fault.forceProtocol",
         [](SystemConfig &s) { s.fault.forceProtocol = true; }},
        {"fault.events",
         [](SystemConfig &s) {
             FaultEvent e;
             e.tick = 100;
             s.fault.events.push_back(e);
         }},
        {"sizes.inv",
         [](SystemConfig &s) { s.sizes.invalidateBits += 8; }},
        {"sizes.invAck", [](SystemConfig &s) { s.sizes.invAckBits += 8; }},
        {"traffic.model",
         [](SystemConfig &s) { s.traffic.model = "storm-flash"; }},
        {"traffic.trace",
         [](SystemConfig &s) { s.traffic.trace = "replay:/tmp/t.json"; }},
        {"traffic.stormRate",
         [](SystemConfig &s) { s.traffic.stormRatePerK += 1; }},
        {"traffic.stormHorizon",
         [](SystemConfig &s) { s.traffic.stormHorizon += 1; }},
        {"traffic.stormQueueCap",
         [](SystemConfig &s) { s.traffic.stormQueueCap += 1; }},
        {"traffic.stormTrough",
         [](SystemConfig &s) { s.traffic.stormTrough += 0.05; }},
        {"traffic.stormWriteFrac",
         [](SystemConfig &s) { s.traffic.stormWriteFrac += 0.05; }},
        {"traffic.stormHotCbs",
         [](SystemConfig &s) { s.traffic.stormHotCbs += 1; }},
        {"traffic.stormHotFrac",
         [](SystemConfig &s) { s.traffic.stormHotFrac += 0.05; }},
        {"traffic.coherenceVcs",
         [](SystemConfig &s) { s.traffic.coherenceVcs += 1; }},
        {"traffic.cohRegionLines",
         [](SystemConfig &s) { s.traffic.cohRegionLines += 1; }},
        {"replyTopo.kind",
         [](SystemConfig &s) { s.replyTopo.kind = TopologyKind::Torus; }},
        {"replyTopo.conc",
         [](SystemConfig &s) { s.replyTopo.concentration += 1; }},
        {"design.topo.kind",
         [](SystemConfig &s) {
             s.design.topo.kind = TopologyKind::Torus;
         }},
        {"design.topo.conc",
         [](SystemConfig &s) { s.design.topo.concentration += 1; }},
    };

    SystemConfig base;
    std::set<std::string> hexes;
    hexes.insert(digestBlob(systemBlob(base)).hex());
    for (const auto &[name, mut] : muts) {
        SystemConfig sc;
        mut(sc);
        std::string blob = systemBlob(sc);
        EXPECT_NE(blob, systemBlob(base)) << "knob not serialized: " << name;
        EXPECT_TRUE(hexes.insert(digestBlob(blob).hex()).second)
            << "digest collision via knob: " << name;
    }
    EXPECT_EQ(hexes.size(), muts.size() + 1);
}

TEST(Digest, ExhaustiveTickToggleIsDigestNeutral)
{
    // Both tick loops are bit-identical (DESIGN.md §10); either mode
    // may serve the other's cache entries, so the toggle must NOT
    // change the digest.
    SystemConfig a, b;
    b.exhaustiveNocTick = true;
    EXPECT_EQ(systemBlob(a), systemBlob(b));
}

TEST(Digest, SensitiveToEveryWorkloadKnob)
{
    using Mut = void (*)(WorkloadProfile &);
    const std::vector<std::pair<const char *, Mut>> muts = {
        {"name", [](WorkloadProfile &w) { w.name = "other"; }},
        {"instsPerPe", [](WorkloadProfile &w) { w.instsPerPe += 1; }},
        {"memRatio", [](WorkloadProfile &w) { w.memRatio += 0.01; }},
        {"readFrac", [](WorkloadProfile &w) { w.readFrac += 0.01; }},
        {"privateLines", [](WorkloadProfile &w) { w.privateLines += 1; }},
        {"sharedLines", [](WorkloadProfile &w) { w.sharedLines += 1; }},
        {"sharedFrac", [](WorkloadProfile &w) { w.sharedFrac += 0.01; }},
        {"seqProb", [](WorkloadProfile &w) { w.seqProb += 0.01; }},
    };

    auto blobOf = [](const WorkloadProfile &w) {
        KvBlob b;
        serializeWorkloadProfile(w, b);
        return b.canonical();
    };

    WorkloadProfile base;
    base.name = "base";
    std::set<std::string> blobs;
    blobs.insert(blobOf(base));
    for (const auto &[name, mut] : muts) {
        WorkloadProfile w = base;
        mut(w);
        EXPECT_TRUE(blobs.insert(blobOf(w)).second)
            << "workload knob not serialized: " << name;
    }
}

TEST(Digest, CellDigestTracksExperimentLevelKnobs)
{
    ExperimentConfig base = smallConfig();
    CellDigest d0 = digestOf(base);

    // Identical config -> identical digest, freshly derived.
    EXPECT_EQ(digestOf(smallConfig()), d0);

    {
        ExperimentConfig ec = smallConfig();
        ec.seed = 42;
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.instScale = 0.5; // post-scale instsPerPe is what's hashed
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.warmupCycles = 700;
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.collectMetrics = true;
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.decorrelateSeeds = true; // changes the effective seed
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.fault.ratePerKTick = 2.0;
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        // Traffic knobs flow through makeSystemConfig into the digest.
        ExperimentConfig ec = smallConfig();
        ec.traffic.model = "coherence";
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        ExperimentConfig ec = smallConfig();
        ec.traffic.stormRatePerK += 1;
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        // tweak hooks are hashed by *effect*: the digest covers the
        // post-tweak SystemConfig, no manual tagging needed.
        ExperimentConfig ec = smallConfig();
        ec.tweak = [](SystemConfig &sc) { sc.vcDepthFlits += 3; };
        EXPECT_NE(digestOf(ec), d0);
    }
    {
        // Engine knobs that cannot change results must NOT change
        // the digest.
        ExperimentConfig ec = smallConfig();
        ec.workers = 7;
        ec.progress = true;
        ec.jobRetries = 5;
        ec.verbose = true;
        EXPECT_EQ(digestOf(ec), d0);
    }
}

TEST(Shard, ParseSpec)
{
    int i = -1, n = -1;
    EXPECT_TRUE(parseShardSpec("0/1", i, n));
    EXPECT_EQ(i, 0);
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(parseShardSpec("3/8", i, n));
    EXPECT_EQ(i, 3);
    EXPECT_EQ(n, 8);

    EXPECT_FALSE(parseShardSpec("", i, n));
    EXPECT_FALSE(parseShardSpec("3", i, n));
    EXPECT_FALSE(parseShardSpec("/4", i, n));
    EXPECT_FALSE(parseShardSpec("4/", i, n));
    EXPECT_FALSE(parseShardSpec("4/4", i, n));  // index out of range
    EXPECT_FALSE(parseShardSpec("1/0", i, n));
    EXPECT_FALSE(parseShardSpec("-1/4", i, n));
    EXPECT_FALSE(parseShardSpec("a/b", i, n));
}

TEST(Shard, DeterministicDisjointPartition)
{
    const int n = 4;
    const std::uint64_t seed = 1;
    auto suite = workloadSubset(6);
    std::vector<std::string> schemes = {"SingleBase", "SeparateBase",
                                        "EquiNox"};
    std::size_t covered = 0;
    for (const auto &wp : suite)
        for (const auto &s : schemes) {
            int shard = cellShard(seed, s, wp.name, n);
            EXPECT_GE(shard, 0);
            EXPECT_LT(shard, n);
            // Pure function: same identity, same owner, every time.
            EXPECT_EQ(cellShard(seed, s, wp.name, n), shard);
            ++covered;
        }
    EXPECT_EQ(covered, suite.size() * schemes.size());
    // A different sweep seed redraws the partition.
    bool any_moved = false;
    for (const auto &wp : suite)
        if (cellShard(1, "EquiNox", wp.name, n) !=
            cellShard(2, "EquiNox", wp.name, n))
            any_moved = true;
    EXPECT_TRUE(any_moved);
    // shardCount 1 owns everything.
    EXPECT_EQ(cellShard(seed, "EquiNox", "bfs", 1), 0);
}
