/**
 * @file
 * sweepd protocol tests: an in-process server on a temp socket, a
 * minimal line client, and the full query surface — ping, a cells
 * query served cold (simulated) then warm (cached), stats, and a
 * graceful shutdown that unlinks the socket.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "sweep/record_io.hh"
#include "sweep/sweepd.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/eqx-sweepd-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

/** Send one query line; return every response line until EOF. */
std::vector<std::string>
query(const std::string &socket_path, const std::string &line)
{
    std::vector<std::string> lines;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::strcpy(addr.sun_path, socket_path.c_str());

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::string msg = line + '\n';
    EXPECT_EQ(::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(msg.size()));
    ::shutdown(fd, SHUT_WR);

    std::string buf;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
        buf.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);

    std::size_t pos = 0, nl;
    while ((nl = buf.find('\n', pos)) != std::string::npos) {
        lines.push_back(buf.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

JsonFields
parsed(const std::string &line)
{
    JsonFields f;
    EXPECT_TRUE(parseFlatJson(line, f)) << line;
    return f;
}

} // namespace

TEST(Sweepd, FullProtocolRound)
{
    std::string dir = makeTempDir();

    SweepdConfig cfg;
    cfg.socketPath = dir + "/d.sock";
    cfg.cacheDir = dir + "/cache";
    cfg.experiment.instScale = 0.02;
    cfg.experiment.workers = 1;

    SweepdServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ASSERT_TRUE(server.running());

    { // ping
        auto lines = query(server.socketPath(), R"({"cmd":"ping"})");
        ASSERT_EQ(lines.size(), 1u);
        EXPECT_TRUE(parsed(lines[0])["pong"].asBool());
    }

    std::string wp = workloadSubset(1)[0].name;
    std::string cells = std::string(R"({"cmd":"cells",)") +
                        R"("schemes":"SingleBase","benchmarks":")" + wp +
                        "\"}";
    std::string digest0;
    { // cold: the one cell is simulated, streamed, then cached
        auto lines = query(server.socketPath(), cells);
        ASSERT_EQ(lines.size(), 2u); // record + trailer
        CellRecord rec;
        ASSERT_TRUE(parseCellRecord(lines[0], rec));
        EXPECT_EQ(rec.cell.scheme, "SingleBase");
        EXPECT_EQ(rec.cell.benchmark, wp);
        digest0 = rec.digest.hex();

        JsonFields t = parsed(lines[1]);
        EXPECT_TRUE(t["done"].asBool());
        EXPECT_TRUE(t["ok"].asBool());
        EXPECT_EQ(t["cells"].asU64(), 1u);
        EXPECT_EQ(t["simulated"].asU64(), 1u);
        EXPECT_EQ(t["cached"].asU64(), 0u);
    }
    { // warm: the identical query is answered from the cache
        auto lines = query(server.socketPath(), cells);
        ASSERT_EQ(lines.size(), 2u);
        CellRecord rec;
        ASSERT_TRUE(parseCellRecord(lines[0], rec));
        EXPECT_EQ(rec.digest.hex(), digest0);

        JsonFields t = parsed(lines[1]);
        EXPECT_EQ(t["cached"].asU64(), 1u);
        EXPECT_EQ(t["simulated"].asU64(), 0u);
    }
    { // a bad query is rejected, the daemon stays up
        auto lines = query(server.socketPath(),
                           R"({"cmd":"cells","schemes":"NoSuch"})");
        ASSERT_GE(lines.size(), 1u);
        EXPECT_FALSE(parsed(lines.back())["ok"].asBool());
        EXPECT_TRUE(server.running());
    }
    { // stats reflect the lifetime counters
        auto lines = query(server.socketPath(), R"({"cmd":"stats"})");
        ASSERT_EQ(lines.size(), 1u);
        JsonFields s = parsed(lines[0]);
        EXPECT_TRUE(s["ok"].asBool());
        EXPECT_EQ(server.cellsServed(), 2u);
        EXPECT_EQ(server.cacheServed(), 1u);
        EXPECT_EQ(server.simulated(), 1u);
    }
    { // graceful drain: acked, then the listener exits and unlinks
        auto lines = query(server.socketPath(), R"({"cmd":"shutdown"})");
        ASSERT_GE(lines.size(), 1u);
        EXPECT_TRUE(parsed(lines[0])["ok"].asBool());
        server.wait();
        EXPECT_FALSE(server.running());
        struct stat st;
        EXPECT_NE(::stat(server.socketPath().c_str(), &st), 0);
    }
}

TEST(Sweepd, StartFailsOnUnusableSocketPath)
{
    SweepdConfig cfg;
    cfg.socketPath = "/nonexistent-dir/no/way/d.sock";
    cfg.cacheDir = makeTempDir() + "/cache";
    SweepdServer server(std::move(cfg));
    EXPECT_FALSE(server.start());
    EXPECT_FALSE(server.running());
}

TEST(Sweepd, RecoversFromStaleSocket)
{
    std::string dir = makeTempDir();
    std::string path = dir + "/stale.sock";

    // Fabricate an unclean shutdown: bind a socket at the path, then
    // close the fd without unlinking — the filesystem entry survives
    // and a naive bind() on it fails EADDRINUSE.
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strcpy(addr.sun_path, path.c_str());
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd);
        struct stat st{};
        ASSERT_EQ(::stat(path.c_str(), &st), 0);
    }

    SweepdConfig cfg;
    cfg.socketPath = path;
    cfg.cacheDir = dir + "/cache";
    cfg.experiment.instScale = 0.02;
    cfg.experiment.workers = 1;

    // The connect probe refuses (no listener) -> stale -> unlink+bind.
    SweepdServer server(std::move(cfg));
    ASSERT_TRUE(server.start());
    ASSERT_TRUE(server.running());

    auto lines = query(server.socketPath(), R"({"cmd":"ping"})");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(parsed(lines[0])["pong"].asBool());

    server.stop();
}

TEST(Sweepd, RefusesToStealLiveSocket)
{
    std::string dir = makeTempDir();

    SweepdConfig cfg_a;
    cfg_a.socketPath = dir + "/live.sock";
    cfg_a.cacheDir = dir + "/cache-a";
    cfg_a.experiment.instScale = 0.02;
    cfg_a.experiment.workers = 1;
    SweepdServer a(std::move(cfg_a));
    ASSERT_TRUE(a.start());

    // A second daemon on the same path must fail fast, not unlink the
    // live listener's socket out from under it.
    SweepdConfig cfg_b;
    cfg_b.socketPath = dir + "/live.sock";
    cfg_b.cacheDir = dir + "/cache-b";
    cfg_b.experiment.instScale = 0.02;
    cfg_b.experiment.workers = 1;
    SweepdServer b(std::move(cfg_b));
    EXPECT_FALSE(b.start());
    EXPECT_FALSE(b.running());

    // The first daemon is unharmed.
    auto lines = query(a.socketPath(), R"({"cmd":"ping"})");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(parsed(lines[0])["pong"].asBool());

    a.stop();
}
