/**
 * @file
 * Cell-cache tests: store/lookup round trip, corruption and
 * mis-addressing handled as counted misses, failed cells refused,
 * counter bookkeeping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sim/experiment.hh"
#include "sweep/cell_cache.hh"
#include "sweep/digest.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/eqx-cache-test-XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

CellResult
tinyCell()
{
    ExperimentConfig ec;
    ec.schemes = {"SingleBase"};
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.02;
    ExperimentRunner runner(ec);

    CellResult cell;
    cell.scheme = "SingleBase";
    cell.benchmark = ec.workloads[0].name;
    cell.result = runner.runOne(cell.scheme, ec.workloads[0]);
    cell.index = 0;
    return cell;
}

} // namespace

TEST(CellCache, StoreLookupRoundTrip)
{
    CellCache cache(makeTempDir() + "/nested/cache");
    CellResult cell = tinyCell();
    CellDigest d = digestBlob("cache-test-cell\n");

    CellResult out;
    EXPECT_FALSE(cache.lookup(d, out)); // cold
    cache.store(d, cell);
    ASSERT_TRUE(cache.lookup(d, out));
    EXPECT_EQ(cellJsonRecord(out), cellJsonRecord(cell));
    EXPECT_EQ(out.index, cell.index);
    EXPECT_TRUE(out.fromCache);

    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.stores(), 1u);
    EXPECT_EQ(cache.corrupt(), 0u);
}

TEST(CellCache, CorruptEntryIsACountedMiss)
{
    CellCache cache(makeTempDir());
    CellDigest d = digestBlob("corrupt-probe\n");
    cache.store(d, tinyCell());

    {
        std::ofstream f(cache.pathFor(d), std::ios::trunc);
        f << "{not a record\n";
    }
    CellResult out;
    EXPECT_FALSE(cache.lookup(d, out));
    EXPECT_EQ(cache.corrupt(), 1u);

    // Re-storing repairs the entry.
    cache.store(d, tinyCell());
    EXPECT_TRUE(cache.lookup(d, out));
}

TEST(CellCache, MisAddressedEntryIsCorrupt)
{
    // A record stored under the wrong digest (file copied/renamed by
    // hand) must not be served: the address IS the identity.
    CellCache cache(makeTempDir());
    CellDigest good = digestBlob("good\n");
    CellDigest other = digestBlob("other\n");
    cache.store(good, tinyCell());

    std::ifstream src(cache.pathFor(good), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(src)),
                      std::istreambuf_iterator<char>());
    // Place it at `other`'s address (ensure the fan-out dir exists by
    // storing there first, then overwriting).
    cache.store(other, tinyCell());
    {
        std::ofstream dst(cache.pathFor(other),
                          std::ios::trunc | std::ios::binary);
        dst << bytes;
    }

    CellResult out;
    EXPECT_FALSE(cache.lookup(other, out));
    EXPECT_EQ(cache.corrupt(), 1u);
}

TEST(CellCache, FailedCellsAreNeverStored)
{
    CellCache cache(makeTempDir());
    CellResult cell = tinyCell();
    cell.failed = true;
    cell.error = "timeout";
    CellDigest d = digestBlob("failed-cell\n");
    cache.store(d, cell);
    CellResult out;
    EXPECT_FALSE(cache.lookup(d, out));
    EXPECT_EQ(cache.stores(), 0u);
}

TEST(CellCache, ExportStats)
{
    CellCache cache(makeTempDir());
    CellDigest d = digestBlob("stats-probe\n");
    CellResult out;
    cache.lookup(d, out); // miss
    cache.store(d, tinyCell());
    cache.lookup(d, out); // hit

    StatGroup g;
    cache.exportStats(g);
    EXPECT_EQ(g.get("cache.hits"), 1.0);
    EXPECT_EQ(g.get("cache.misses"), 1.0);
    EXPECT_EQ(g.get("cache.corrupt"), 0.0);
    EXPECT_EQ(g.get("cache.stores"), 1.0);
}
