/**
 * @file
 * Record IO tests: the flat-JSON wire/record parser, and the exact
 * CellResult round trip the cache's byte-identity guarantee rests on
 * (parse(render(cell)) re-renders to the original bytes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "sim/experiment.hh"
#include "sweep/digest.hh"
#include "sweep/record_io.hh"
#include "workloads/profiles.hh"

using namespace eqx;

namespace {

/** A realistic simulated cell: metrics snapshot on, fault model
 *  armed, so the record carries every optional field group. */
CellResult
simulatedCell()
{
    ExperimentConfig ec;
    ec.schemes = {"SingleBase"};
    ec.workloads = workloadSubset(1);
    ec.instScale = 0.02;
    ec.collectMetrics = true;
    ec.fault.ratePerKTick = 4.0;
    ec.fault.seed = 3;
    ExperimentRunner runner(ec);

    CellResult cell;
    cell.scheme = "SingleBase";
    cell.benchmark = ec.workloads[0].name;
    cell.result = runner.runOne(cell.scheme, ec.workloads[0]);
    cell.attempts = 2;
    cell.wallMs = 12.5;
    cell.index = 4;
    return cell;
}

} // namespace

TEST(ParseFlatJson, ValueKinds)
{
    JsonFields f;
    ASSERT_TRUE(parseFlatJson(
        R"({"s":"hi","n":-1.5e3,"u":18446744073709551615,"t":true,)"
        R"("f":false,"z":null})",
        f));
    ASSERT_EQ(f.size(), 6u);
    EXPECT_EQ(f["s"].kind, JsonValue::Kind::String);
    EXPECT_EQ(f["s"].text, "hi");
    EXPECT_EQ(f["n"].asDouble(), -1500.0);
    EXPECT_EQ(f["u"].asU64(), 18446744073709551615ULL);
    EXPECT_TRUE(f["t"].asBool());
    EXPECT_FALSE(f["f"].asBool());
    EXPECT_EQ(f["z"].kind, JsonValue::Kind::Null);
    EXPECT_TRUE(std::isnan(f["z"].asDouble()));
}

TEST(ParseFlatJson, StringEscapes)
{
    JsonFields f;
    ASSERT_TRUE(parseFlatJson(
        R"({"e":"a\"b\\c\/d\n\t\r\b\f","u":"Aé€"})", f));
    EXPECT_EQ(f["e"].text, "a\"b\\c/d\n\t\r\b\f");
    EXPECT_EQ(f["u"].text, "A\xc3\xa9\xe2\x82\xac"); // A é €
}

TEST(ParseFlatJson, Rejections)
{
    JsonFields f;
    EXPECT_FALSE(parseFlatJson("", f));
    EXPECT_FALSE(parseFlatJson("not json", f));
    EXPECT_FALSE(parseFlatJson(R"({"a":1)", f));        // unterminated
    EXPECT_FALSE(parseFlatJson(R"({"a":1} x)", f));     // trailing junk
    EXPECT_FALSE(parseFlatJson(R"({"a":{"b":1}})", f)); // nested object
    EXPECT_FALSE(parseFlatJson(R"({"a":[1,2]})", f));   // array
    EXPECT_FALSE(parseFlatJson(R"({"a":01})", f));      // bad number
    EXPECT_FALSE(parseFlatJson(R"({"a":tru})", f));     // bad literal
    EXPECT_FALSE(parseFlatJson(R"({"a":"\ud800"})", f)); // lone surrogate
    EXPECT_FALSE(parseFlatJson(R"({a:1})", f));          // unquoted key
}

TEST(ParseFlatJson, EmptyObjectAndDuplicateKeys)
{
    JsonFields f;
    EXPECT_TRUE(parseFlatJson("{}", f));
    EXPECT_TRUE(f.empty());
    ASSERT_TRUE(parseFlatJson(R"({"k":1,"k":2})", f));
    EXPECT_EQ(f["k"].asInt(), 2); // last occurrence wins
}

TEST(RecordIO, ExactRoundTrip)
{
    CellRecord rec;
    rec.cell = simulatedCell();
    rec.digest = digestBlob("round-trip-probe\n");

    std::string line = cellRecordLine(rec);

    CellRecord back;
    ASSERT_TRUE(parseCellRecord(line, back));
    EXPECT_EQ(back.digest, rec.digest);
    EXPECT_EQ(back.schema, kSweepSchemaVersion);
    EXPECT_EQ(back.cell.index, rec.cell.index);
    EXPECT_FALSE(back.cell.failed);

    // The guarantee itself: re-rendering the parsed record reproduces
    // the original bytes, and the embedded public JSONL record is
    // byte-identical to what a live run would stream.
    EXPECT_EQ(cellRecordLine(back), line);
    EXPECT_EQ(cellJsonRecord(back.cell), cellJsonRecord(rec.cell));

    // Metrics survived (collectMetrics was on).
    EXPECT_TRUE(rec.cell.result.metrics.all().size() > 0);
    EXPECT_EQ(back.cell.result.metrics.all().size(),
              rec.cell.result.metrics.all().size());
}

TEST(RecordIO, StormAndCoherenceGroupsRoundTrip)
{
    // The optional storm / coherence field groups restore losslessly
    // — a cache hit must reproduce a storm run's counters exactly.
    CellRecord rec;
    rec.cell = simulatedCell();
    rec.digest = digestBlob("storm-probe\n");
    RunResult &r = rec.cell.result;
    r.stormArmed = true;
    r.stormOffered = 1000;
    r.stormInjected = 900;
    r.stormDelivered = 890;
    r.stormDropped = 100;
    r.cohArmed = true;
    r.cohInvalidations = 42;
    r.cohInvAcks = 42;

    std::string line = cellRecordLine(rec);
    CellRecord back;
    ASSERT_TRUE(parseCellRecord(line, back));
    const RunResult &b = back.cell.result;
    EXPECT_TRUE(b.stormArmed);
    EXPECT_EQ(b.stormOffered, 1000u);
    EXPECT_EQ(b.stormInjected, 900u);
    EXPECT_EQ(b.stormDelivered, 890u);
    EXPECT_EQ(b.stormDropped, 100u);
    EXPECT_TRUE(b.cohArmed);
    EXPECT_EQ(b.cohInvalidations, 42u);
    EXPECT_EQ(b.cohInvAcks, 42u);
    EXPECT_EQ(cellRecordLine(back), line);
}

TEST(RecordIO, RejectsBadHeaders)
{
    CellRecord rec;
    rec.cell = simulatedCell();
    rec.digest = digestBlob("probe\n");
    std::string line = cellRecordLine(rec);

    CellRecord out;
    EXPECT_FALSE(parseCellRecord("garbage", out));
    EXPECT_FALSE(parseCellRecord("{}", out));

    // Wrong schema version: the record is from another era.
    EXPECT_FALSE(parseCellRecord(line, out, kSweepSchemaVersion + 1));

    // Mangle the digest hex.
    std::string bad = line;
    std::size_t pos = bad.find("\"_digest\":\"");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos + 11, 4, "zzzz");
    EXPECT_FALSE(parseCellRecord(bad, out));
}

namespace {

/** Parse `{"v":<token>}` and hand back the value — the only way a
 *  JsonValue reaches the accessors in production is via the parser,
 *  so the accessors may assume grammar-valid number text. */
JsonValue
numberToken(const std::string &token)
{
    JsonFields f;
    EXPECT_TRUE(parseFlatJson("{\"v\":" + token + "}", f));
    return f["v"];
}

} // namespace

TEST(JsonNumber, U64PlainIntegersAreExact)
{
    // Full 64-bit precision — a double round trip would lose the low
    // bits of anything above 2^53.
    EXPECT_EQ(numberToken("0").asU64(), 0u);
    EXPECT_EQ(numberToken("9007199254740993").asU64(), 9007199254740993ULL);
    EXPECT_EQ(numberToken("18446744073709551615").asU64(),
              18446744073709551615ULL);
}

TEST(JsonNumber, U64RejectsNegativesInsteadOfWrapping)
{
    // strtoull would wrap "-3" to 18446744073709551613.
    EXPECT_EQ(numberToken("-3").asU64(), 0u);
    EXPECT_EQ(numberToken("-18446744073709551615").asU64(), 0u);
    EXPECT_EQ(numberToken("-1.5e3").asU64(), 0u);
}

TEST(JsonNumber, U64ConvertsExponentAndFractionForms)
{
    // strtoull would stop at the '.' and return 1.
    EXPECT_EQ(numberToken("1.5e3").asU64(), 1500u);
    EXPECT_EQ(numberToken("2e4").asU64(), 20000u);
    EXPECT_EQ(numberToken("2.5").asU64(), 2u); // truncates toward zero
    EXPECT_EQ(numberToken("0.99").asU64(), 0u);
}

TEST(JsonNumber, U64SaturatesOnOverflow)
{
    EXPECT_EQ(numberToken("18446744073709551616").asU64(),
              18446744073709551615ULL);
    EXPECT_EQ(numberToken("1e30").asU64(), 18446744073709551615ULL);
}

TEST(JsonNumber, I64PlainIntegersAreExact)
{
    EXPECT_EQ(numberToken("-9223372036854775808").asI64(),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(numberToken("9223372036854775807").asI64(),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(numberToken("-9007199254740993").asI64(), -9007199254740993LL);
}

TEST(JsonNumber, I64ConvertsExponentFormsAndSaturates)
{
    EXPECT_EQ(numberToken("1.5e3").asI64(), 1500);
    EXPECT_EQ(numberToken("-2.5e2").asI64(), -250);
    EXPECT_EQ(numberToken("-0.5").asI64(), 0);
    EXPECT_EQ(numberToken("9223372036854775808").asI64(),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(numberToken("-9223372036854775809").asI64(),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(numberToken("1e25").asI64(),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(numberToken("-1e25").asI64(),
              std::numeric_limits<std::int64_t>::min());
}

TEST(JsonNumber, NonNumbersReadAsZero)
{
    JsonFields f;
    ASSERT_TRUE(parseFlatJson(R"({"s":"12","z":null})", f));
    EXPECT_EQ(f["s"].asU64(), 0u);
    EXPECT_EQ(f["z"].asI64(), 0);
}
