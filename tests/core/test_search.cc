/** @file Search algorithms over the EIR design space. */

#include <gtest/gtest.h>

#include <set>

#include "core/nqueen.hh"
#include "core/search.hh"

namespace eqx {
namespace {

class SearchTest : public ::testing::Test
{
  protected:
    SearchTest()
        : cbs{{2, 0}, {5, 1}, {1, 2}, {4, 3}, {7, 4}, {0, 5}, {6, 6},
              {3, 7}},
          prob(8, 8, cbs, 3, 4), eval(&prob)
    {}

    std::vector<Coord> cbs;
    EirProblem prob;
    EirEvaluator eval;
};

TEST_F(SearchTest, RandomGroupIsAlwaysLegal)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        int cb = trial % prob.numCbs();
        auto g = randomGroup(prob, cb, {}, rng);
        EXPECT_LE(g.size(), 4u);
        std::set<int> octs;
        std::set<Coord> uniq;
        for (const auto &e : g) {
            EXPECT_TRUE(uniq.insert(e).second);
            EXPECT_TRUE(
                octs.insert(
                        directionOctant(
                            prob.cbs()[static_cast<std::size_t>(cb)], e))
                    .second);
        }
    }
}

TEST_F(SearchTest, RandomGroupRespectsTaken)
{
    Rng rng(2);
    auto cands = prob.candidates(3);
    std::vector<Coord> taken(cands.begin(), cands.end());
    auto g = randomGroup(prob, 3, taken, rng);
    EXPECT_TRUE(g.empty());
}

TEST_F(SearchTest, MctsProducesValidSelection)
{
    MctsParams mp;
    mp.iterationsPerLevel = 120;
    auto res = mctsSearch(prob, eval, mp);
    EXPECT_TRUE(prob.valid(res.selection));
    EXPECT_GT(res.evaluations, 0u);
    EXPECT_EQ(res.method, "mcts");
}

TEST_F(SearchTest, MctsDeterministicForSeed)
{
    MctsParams mp;
    mp.iterationsPerLevel = 80;
    mp.seed = 7;
    auto a = mctsSearch(prob, eval, mp);
    auto b = mctsSearch(prob, eval, mp);
    EXPECT_EQ(a.selection, b.selection);
}

TEST_F(SearchTest, MctsBeatsRandomOnAverage)
{
    MctsParams mp;
    mp.iterationsPerLevel = 250;
    auto m = mctsSearch(prob, eval, mp);
    auto r = randomSearch(prob, eval, 250, 3);
    EXPECT_LE(m.eval.score, r.eval.score * 1.05);
}

TEST_F(SearchTest, GreedyValidAndBetterThanNothing)
{
    auto g = greedySearch(prob, eval, 256);
    EXPECT_TRUE(prob.valid(g.selection));
    EXPECT_LT(g.eval.score, eval.score(EirSelection(8)));
}

TEST_F(SearchTest, AnnealImprovesOnItsStart)
{
    AnnealParams ap;
    ap.steps = 600;
    auto a = annealSearch(prob, eval, ap);
    EXPECT_TRUE(prob.valid(a.selection));
    auto r = randomSearch(prob, eval, 1, ap.seed); // the same start
    EXPECT_LE(a.eval.score, r.eval.score + 1e-9);
}

TEST_F(SearchTest, GeneticProducesValidSelection)
{
    GeneticParams gp;
    gp.population = 12;
    gp.generations = 10;
    auto g = geneticSearch(prob, eval, gp);
    EXPECT_TRUE(prob.valid(g.selection));
}

TEST_F(SearchTest, PolishNeverWorsens)
{
    auto start = randomSearch(prob, eval, 1, 11);
    auto p = polishSelection(prob, eval, start.selection, 3, 256);
    EXPECT_TRUE(prob.valid(p.selection));
    EXPECT_LE(p.eval.score, start.eval.score + 1e-9);
}

TEST_F(SearchTest, PolishFixedPointIsStable)
{
    auto p1 = polishSelection(prob, eval, EirSelection(8), 4, 256);
    auto p2 = polishSelection(prob, eval, p1.selection, 4, 256);
    EXPECT_NEAR(p1.eval.score, p2.eval.score, 1e-9);
}

} // namespace
} // namespace eqx
