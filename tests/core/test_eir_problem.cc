/** @file EIR candidate rules, group enumeration, selection validity. */

#include <gtest/gtest.h>

#include <set>

#include "core/eir_problem.hh"

namespace eqx {
namespace {

std::vector<Coord>
spreadCbs()
{
    return {{2, 0}, {5, 1}, {1, 2}, {4, 3}, {7, 4}, {0, 5}, {6, 6},
            {3, 7}};
}

TEST(Octant, EightDirections)
{
    Coord c{4, 4};
    EXPECT_EQ(directionOctant(c, {6, 4}), 0); // E
    EXPECT_EQ(directionOctant(c, {6, 2}), 1); // NE
    EXPECT_EQ(directionOctant(c, {4, 2}), 2); // N
    EXPECT_EQ(directionOctant(c, {2, 2}), 3); // NW
    EXPECT_EQ(directionOctant(c, {2, 4}), 4); // W
    EXPECT_EQ(directionOctant(c, {2, 6}), 5); // SW
    EXPECT_EQ(directionOctant(c, {4, 6}), 6); // S
    EXPECT_EQ(directionOctant(c, {6, 6}), 7); // SE
}

TEST(EirProblem, CandidatesRespectDistanceWindow)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    for (int i = 0; i < prob.numCbs(); ++i) {
        for (const auto &c : prob.candidates(i)) {
            int d = manhattan(prob.cbs()[static_cast<std::size_t>(i)], c);
            EXPECT_GE(d, 2);
            EXPECT_LE(d, 3);
        }
    }
}

TEST(EirProblem, CandidatesAvoidOwnHotZoneAndCbs)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    std::set<Coord> cbs(prob.cbs().begin(), prob.cbs().end());
    for (int i = 0; i < prob.numCbs(); ++i) {
        const Coord &own = prob.cbs()[static_cast<std::size_t>(i)];
        for (const auto &c : prob.candidates(i)) {
            EXPECT_GT(chebyshev(own, c), 1); // bypasses DAZ and CAZ
            EXPECT_EQ(cbs.count(c), 0u);
        }
    }
}

TEST(EirProblem, GroupsObeyOctantAndSizeRules)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    auto groups = prob.groupsFor(3, {});
    ASSERT_FALSE(groups.empty());
    const Coord &cb = prob.cbs()[3];
    for (const auto &g : groups) {
        EXPECT_LE(g.size(), 4u);
        std::set<int> octs;
        for (const auto &e : g)
            EXPECT_TRUE(octs.insert(directionOctant(cb, e)).second);
    }
    // Empty fallback group is present exactly once, at the end.
    EXPECT_TRUE(groups.back().empty());
}

TEST(EirProblem, GroupsExcludeTakenTiles)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    auto all = prob.candidates(3);
    ASSERT_FALSE(all.empty());
    Coord taken = all.front();
    auto groups = prob.groupsFor(3, {taken});
    for (const auto &g : groups)
        for (const auto &e : g)
            EXPECT_FALSE(e == taken);
}

TEST(EirProblem, ValidAcceptsLegalSelection)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    EirSelection sel;
    for (int i = 0; i < prob.numCbs(); ++i)
        sel.push_back(prob.groupsFor(i, {}).front());
    // Front groups may conflict across CBs; build incrementally.
    sel.clear();
    std::vector<Coord> taken;
    for (int i = 0; i < prob.numCbs(); ++i) {
        auto g = prob.groupsFor(i, taken).front();
        taken.insert(taken.end(), g.begin(), g.end());
        sel.push_back(std::move(g));
    }
    std::string why;
    EXPECT_TRUE(prob.valid(sel, &why)) << why;
}

TEST(EirProblem, ValidRejectsSharingAndBadTiles)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    EirSelection sel(static_cast<std::size_t>(prob.numCbs()));

    // Shared EIR between two CBs.
    Coord shared{3, 2}; // within 2..3 hops of cb2 (1,2) and cb3 (4,3)?
    sel[2] = {shared};
    sel[3] = {shared};
    std::string why;
    bool ok = prob.valid(sel, &why);
    EXPECT_FALSE(ok);

    // Illegal tile: a CB position.
    EirSelection sel2(static_cast<std::size_t>(prob.numCbs()));
    sel2[0] = {prob.cbs()[1]};
    EXPECT_FALSE(prob.valid(sel2));

    // Wrong number of groups.
    EirSelection sel3;
    EXPECT_FALSE(prob.valid(sel3));
}

TEST(EirProblem, LinkPlanMatchesSelection)
{
    EirProblem prob(8, 8, spreadCbs(), 3, 4);
    EirSelection sel(static_cast<std::size_t>(prob.numCbs()));
    sel[0] = {prob.candidates(0).front()};
    sel[4] = {prob.candidates(4).front()};
    LinkPlan plan = prob.linkPlan(sel);
    EXPECT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.links()[0].widthBits, 128);
    EXPECT_FALSE(plan.links()[0].bidirectional);
}

TEST(EirProblem, TooSmallHopLimitRejected)
{
    EXPECT_THROW(EirProblem(8, 8, spreadCbs(), 1, 4), std::logic_error);
}

} // namespace
} // namespace eqx
