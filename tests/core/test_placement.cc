/** @file Classic CB placements and their structural properties. */

#include <gtest/gtest.h>

#include <set>

#include "core/placement.hh"

namespace eqx {
namespace {

TEST(Placement, TopRowOnly)
{
    auto cbs = makePlacement(PlacementKind::Top, 8, 8, 8);
    ASSERT_EQ(cbs.size(), 8u);
    for (const auto &c : cbs)
        EXPECT_EQ(c.y, 0);
    std::set<int> xs;
    for (const auto &c : cbs)
        xs.insert(c.x);
    EXPECT_EQ(xs.size(), 8u);
}

TEST(Placement, SideSplitsColumns)
{
    auto cbs = makePlacement(PlacementKind::Side, 8, 8, 8);
    int left = 0, right = 0;
    for (const auto &c : cbs) {
        if (c.x == 0)
            ++left;
        else if (c.x == 7)
            ++right;
        else
            FAIL() << "side CB not on an edge column";
    }
    EXPECT_EQ(left, 4);
    EXPECT_EQ(right, 4);
}

TEST(Placement, DiagonalOnMainDiagonal)
{
    auto cbs = makePlacement(PlacementKind::Diagonal, 8, 8, 8);
    for (const auto &c : cbs)
        EXPECT_EQ(c.x, c.y);
    EXPECT_TRUE(isPermutationPlacement(cbs));
    EXPECT_TRUE(hasDiagonalAdjacency(cbs));
    EXPECT_FALSE(isDiagonalFree(cbs));
}

TEST(Placement, DiamondIsPermutationWithDiagonalAdjacency)
{
    // The two structural properties the paper's Section 4.2 analysis
    // of Diamond relies on.
    auto cbs = makePlacement(PlacementKind::Diamond, 8, 8, 8);
    EXPECT_TRUE(isPermutationPlacement(cbs));
    EXPECT_TRUE(hasDiagonalAdjacency(cbs));
}

TEST(Placement, ScalesToLargerMeshes)
{
    for (int n : {12, 16}) {
        for (auto kind : {PlacementKind::Top, PlacementKind::Side,
                          PlacementKind::Diagonal,
                          PlacementKind::Diamond}) {
            auto cbs = makePlacement(kind, n, n, 8);
            ASSERT_EQ(cbs.size(), 8u) << placementName(kind);
            std::set<Coord> uniq(cbs.begin(), cbs.end());
            EXPECT_EQ(uniq.size(), 8u);
            for (const auto &c : cbs) {
                EXPECT_GE(c.x, 0);
                EXPECT_LT(c.x, n);
                EXPECT_GE(c.y, 0);
                EXPECT_LT(c.y, n);
            }
        }
    }
}

TEST(Placement, NQueenKindMustUseSolver)
{
    EXPECT_THROW(makePlacement(PlacementKind::NQueen, 8, 8, 8),
                 std::runtime_error);
}

TEST(Placement, AsciiRendersCbs)
{
    auto cbs = makePlacement(PlacementKind::Diagonal, 4, 4, 4);
    std::string art = placementAscii(cbs, 4, 4);
    int count = 0;
    for (char ch : art)
        if (ch == 'C')
            ++count;
    EXPECT_EQ(count, 4);
}

TEST(Placement, PredicateCounterexamples)
{
    EXPECT_FALSE(isPermutationPlacement({{0, 0}, {0, 3}}));
    EXPECT_FALSE(isPermutationPlacement({{1, 2}, {5, 2}}));
    EXPECT_TRUE(isDiagonalFree({{0, 1}, {3, 2}}));
    EXPECT_FALSE(isDiagonalFree({{0, 0}, {2, 2}}));
    EXPECT_FALSE(hasDiagonalAdjacency({{0, 0}, {0, 1}})); // same col
    EXPECT_TRUE(hasDiagonalAdjacency({{0, 0}, {1, 1}}));
}

} // namespace
} // namespace eqx
