/** @file End-to-end EquiNox design flow (paper Section 4 / Fig. 7). */

#include <gtest/gtest.h>

#include <set>

#include "core/design_flow.hh"
#include "core/placement.hh"

namespace eqx {
namespace {

DesignParams
quickParams()
{
    DesignParams dp;
    dp.mcts.iterationsPerLevel = 150;
    dp.polishPasses = 2;
    return dp;
}

TEST(DesignFlow, ProducesPaperLikeDesignFor8x8)
{
    EquiNoxDesign d = buildEquiNoxDesign(quickParams());
    ASSERT_EQ(d.cbs.size(), 8u);
    EXPECT_TRUE(isDiagonalFree(d.cbs));
    EXPECT_TRUE(isPermutationPlacement(d.cbs));

    EirProblem prob(8, 8, d.cbs, 3, 4);
    EXPECT_TRUE(prob.valid(d.eirGroups));

    // Paper's headline attributes of the found design: a healthy EIR
    // population, no RDL crossings (one metal layer), and links within
    // the 1-cycle interposer reach.
    EXPECT_GE(d.numEirs(), 12);
    EXPECT_LE(d.rdl.crossings, 1);
    EXPECT_LE(d.rdl.layersNeeded, 2);
    EXPECT_FALSE(d.rdl.needsRepeaters);
    EXPECT_LE(d.rdl.maxHops, 3);
}

TEST(DesignFlow, MostEirsTwoHopsOut)
{
    EquiNoxDesign d = buildEquiNoxDesign(quickParams());
    int two = 0, total = 0;
    for (std::size_t i = 0; i < d.eirGroups.size(); ++i) {
        for (const auto &e : d.eirGroups[i]) {
            ++total;
            if (manhattan(d.cbs[i], e) == 2)
                ++two;
        }
    }
    ASSERT_GT(total, 0);
    EXPECT_GE(two * 2, total); // at least half strictly 2 hops
}

TEST(DesignFlow, DeterministicForSeed)
{
    DesignParams dp = quickParams();
    dp.seed = 9;
    EquiNoxDesign a = buildEquiNoxDesign(dp);
    EquiNoxDesign b = buildEquiNoxDesign(dp);
    EXPECT_EQ(a.cbs, b.cbs);
    EXPECT_EQ(a.eirGroups, b.eirGroups);
}

TEST(DesignFlow, FixedPlacementHonoured)
{
    DesignParams dp = quickParams();
    dp.fixedPlacement = makePlacement(PlacementKind::Diamond, 8, 8, 8);
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    EXPECT_EQ(d.cbs, dp.fixedPlacement);
}

TEST(DesignFlow, NodeMappingRoundTrips)
{
    EquiNoxDesign d = buildEquiNoxDesign(quickParams());
    auto groups = d.eirGroupsByNode();
    EXPECT_EQ(groups.size(), 8u);
    std::set<NodeId> all_eirs;
    for (const auto &[cb, eirs] : groups) {
        EXPECT_GE(cb, 0);
        EXPECT_LT(cb, 64);
        for (NodeId e : eirs) {
            EXPECT_NE(e, cb);
            EXPECT_TRUE(all_eirs.insert(e).second); // no sharing
        }
    }
    EXPECT_EQ(static_cast<int>(all_eirs.size()), d.numEirs());
    EXPECT_EQ(d.cbNodes().size(), 8u);
}

TEST(DesignFlow, AsciiShowsGroups)
{
    EquiNoxDesign d = buildEquiNoxDesign(quickParams());
    std::string art = d.ascii();
    EXPECT_NE(art.find('A'), std::string::npos);
    EXPECT_NE(art.find('a'), std::string::npos);
}

TEST(DesignFlow, AlternativeSearchMethodsProduceValidDesigns)
{
    for (SearchMethod m :
         {SearchMethod::Greedy, SearchMethod::Random,
          SearchMethod::Anneal, SearchMethod::Genetic}) {
        DesignParams dp = quickParams();
        dp.method = m;
        EquiNoxDesign d = buildEquiNoxDesign(dp);
        EirProblem prob(8, 8, d.cbs, 3, 4);
        EXPECT_TRUE(prob.valid(d.eirGroups)) << searchMethodName(m);
    }
}

TEST(DesignFlow, ScalesTo12x12)
{
    DesignParams dp = quickParams();
    dp.width = dp.height = 12;
    dp.mcts.iterationsPerLevel = 60;
    dp.polishPasses = 1;
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    EXPECT_EQ(d.cbs.size(), 8u); // still 8 HBM stacks
    EirProblem prob(12, 12, d.cbs, 3, 4);
    EXPECT_TRUE(prob.valid(d.eirGroups));
    EXPECT_GT(d.numEirs(), 8);
}

TEST(DesignFlow, KnightPathWhenMoreCbsThanN)
{
    DesignParams dp = quickParams();
    dp.numCbs = 10; // > N = 8 -> knight-move placement
    dp.mcts.iterationsPerLevel = 40;
    dp.polishPasses = 1;
    EquiNoxDesign d = buildEquiNoxDesign(dp);
    EXPECT_EQ(d.cbs.size(), 10u);
    EirProblem prob(8, 8, d.cbs, 3, 4);
    EXPECT_TRUE(prob.valid(d.eirGroups));
}

} // namespace
} // namespace eqx
