/** @file DAZ/CAZ hot zones and the scoring policy (paper Fig. 5). */

#include <gtest/gtest.h>

#include "core/hotzone.hh"

namespace eqx {
namespace {

TEST(HotZone, InteriorCbHasFourDazFourCaz)
{
    auto daz = dazTiles({4, 4}, 8, 8);
    auto caz = cazTiles({4, 4}, 8, 8);
    EXPECT_EQ(daz.size(), 4u);
    EXPECT_EQ(caz.size(), 4u);
    EXPECT_EQ(hotZoneTiles({4, 4}, 8, 8).size(), 8u);
}

TEST(HotZone, CornerCbClipped)
{
    EXPECT_EQ(dazTiles({0, 0}, 8, 8).size(), 2u);
    EXPECT_EQ(cazTiles({0, 0}, 8, 8).size(), 1u);
}

TEST(HotZone, CoverageCountsDistinctCbs)
{
    // Two CBs three apart: tile between them is in both hot zones.
    HotZoneMap map({{2, 2}, {4, 2}}, 8, 8);
    EXPECT_EQ(map.coverage({3, 2}), 2);
    EXPECT_TRUE(map.isOverlap({3, 2}));
    EXPECT_EQ(map.coverage({2, 1}), 1);
    EXPECT_FALSE(map.isOverlap({2, 1}));
    EXPECT_EQ(map.coverage({7, 7}), 0);
}

TEST(HotZone, TilePenaltyIsTriangular)
{
    // Paper: with m overlapping direct neighbours the penalty is
    // 1+2+..+m (the example with two overlaps scores 3).
    HotZoneMap map({{2, 2}, {4, 2}, {2, 4}}, 8, 8);
    // (3,3) is CAZ of (2,2)+(4,2)... construct the m=2 case directly:
    // neighbours of (3,3): (3,2) covers {2,2},{4,2} -> overlap;
    // (2,3) covers {2,2},{2,4} -> overlap.
    EXPECT_TRUE(map.isOverlap({3, 2}));
    EXPECT_TRUE(map.isOverlap({2, 3}));
    int m = 0;
    for (Coord n : {Coord{3, 2}, Coord{3, 4}, Coord{2, 3}, Coord{4, 3}})
        if (map.isOverlap(n))
            ++m;
    EXPECT_EQ(tilePenalty(map, {3, 3}), m * (m + 1) / 2);
}

TEST(HotZone, PenaltyZeroWhenCbsFarApart)
{
    EXPECT_EQ(placementPenalty({{1, 1}, {6, 6}}, 8, 8), 0);
}

TEST(HotZone, PenaltyGrowsWithCrowding)
{
    int spread = placementPenalty({{1, 1}, {6, 1}, {1, 6}, {6, 6}}, 8, 8);
    int crowded = placementPenalty({{2, 2}, {4, 2}, {2, 4}, {4, 4}}, 8, 8);
    EXPECT_LT(spread, crowded);
}

TEST(HotZone, OutOfBoundsCoverageIsZero)
{
    HotZoneMap map({{0, 0}}, 4, 4);
    EXPECT_EQ(map.coverage({-1, 0}), 0);
    EXPECT_EQ(map.coverage({4, 4}), 0);
}

} // namespace
} // namespace eqx
