/** @file The 4-metric MCTS evaluation function. */

#include <gtest/gtest.h>

#include "core/evaluation.hh"
#include "core/nqueen.hh"

namespace eqx {
namespace {

std::vector<Coord>
spreadCbs()
{
    return {{2, 0}, {5, 1}, {1, 2}, {4, 3}, {7, 4}, {0, 5}, {6, 6},
            {3, 7}};
}

class EvalTest : public ::testing::Test
{
  protected:
    EvalTest() : prob(8, 8, spreadCbs(), 3, 4), eval(&prob) {}

    EirProblem prob;
    EirEvaluator eval;
};

TEST_F(EvalTest, EmptySelectionIsAllLocal)
{
    EvalBreakdown b = eval.evaluate(EirSelection(8));
    // Every CB funnels all 56 PE flows through its local router.
    EXPECT_DOUBLE_EQ(b.maxLoad, 56.0);
    EXPECT_EQ(b.crossings, 0);
    EXPECT_DOUBLE_EQ(b.totalLength, 0.0);
    EXPECT_GT(b.avgHops, 0.0);
}

TEST_F(EvalTest, EirsReduceLoadAndHops)
{
    EirSelection sel(8);
    // Give CB 3 (interior, (4,3)) both x-axis EIRs two hops out.
    sel[3] = {{2, 3}, {6, 3}};
    EvalBreakdown with = eval.evaluate(sel);
    EvalBreakdown without = eval.evaluate(EirSelection(8));
    EXPECT_LT(with.avgHops, without.avgHops);
    EXPECT_LT(with.score, without.score);
}

TEST_F(EvalTest, CrossingsPenalized)
{
    // Same group shape, one with links that cross another CB's links.
    EirSelection base(8);
    base[3] = {{6, 3}};
    EvalBreakdown clean = eval.evaluate(base);
    EXPECT_EQ(clean.crossings, 0);

    // Force a crossing: CB1 (5,1) link south to (5,3) crosses CB3
    // (4,3) link east to (6,3).
    EirSelection crossed = base;
    crossed[1] = {{5, 3}};
    EvalBreakdown x = eval.evaluate(crossed);
    EXPECT_EQ(x.crossings, 1);
    // The crossing raises the score despite adding a useful EIR from a
    // pure load/hops standpoint more than a clean equivalent would.
    EirSelection clean2 = base;
    clean2[1] = {{7, 1}};
    EvalBreakdown c2 = eval.evaluate(clean2);
    EXPECT_GT(x.score - clean.score, c2.score - clean.score);
}

TEST_F(EvalTest, RepeaterLinksCostMore)
{
    EirSelection two(8), three(8);
    two[3] = {{6, 3}};  // 2 hops
    three[3] = {{7, 3}}; // 3 hops: needs a repeater
    EvalBreakdown b2 = eval.evaluate(two);
    EvalBreakdown b3 = eval.evaluate(three);
    EXPECT_GT(b3.score, b2.score - 0.3); // not wildly better
    // Isolate the length component: same load shape is not guaranteed,
    // but the span cost triples past the reach.
    EXPECT_GT(b3.totalLength, b2.totalLength);
}

TEST_F(EvalTest, PartialSelectionJudgesOnlyDecidedCbs)
{
    EirSelection partial;
    partial.push_back({{0, 0}, {4, 0}}); // CB0 (2,0) axis EIRs
    EvalBreakdown b = eval.evaluate(partial);
    // Only CB0 participates, so the max load reflects its split, not
    // the 56 of the undecided CBs.
    EXPECT_LT(b.maxLoad, 56.0);
}

TEST_F(EvalTest, ScoreMatchesEvaluate)
{
    EirSelection sel(8);
    sel[3] = {{6, 3}};
    EXPECT_DOUBLE_EQ(eval.score(sel), eval.evaluate(sel).score);
}

TEST_F(EvalTest, WeightsScaleTerms)
{
    EvalWeights heavy;
    heavy.crossings = 100.0;
    EirEvaluator heavy_eval(&prob, heavy);
    EirSelection crossed(8);
    crossed[3] = {{6, 3}};
    crossed[1] = {{5, 3}};
    EXPECT_GT(heavy_eval.score(crossed), eval.score(crossed));
}

} // namespace
} // namespace eqx
