/**
 * @file
 * The incremental-evaluation contract: EvalAccumulator scores must be
 * bit-identical doubles to the from-scratch EirEvaluator::evaluate()
 * path, at every prefix, under push/pop backtracking, under setGroup
 * in-place replacement, and regardless of whether a contribution is
 * served from the memo or recomputed (DESIGN.md §15).
 *
 * Every comparison below is EXPECT_EQ on doubles on purpose: the
 * design guarantee is exact equality, not closeness.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/eval_accumulator.hh"
#include "core/nqueen.hh"
#include "core/search.hh"

namespace eqx {
namespace {

EirProblem
paperProblem(int n, int num_cbs)
{
    Rng rng(7);
    auto placed = bestNQueenPlacement(n, num_cbs, rng);
    return EirProblem(n, n, placed.cbs);
}

/** Draw a random full selection, prefix by prefix. */
EirSelection
drawSelection(const EirProblem &prob, Rng &rng)
{
    EirSelection sel;
    TileMask taken(prob.width(), prob.height());
    for (int cb = 0; cb < prob.numCbs(); ++cb) {
        auto g = randomGroup(prob, cb, taken, rng);
        for (const auto &t : g)
            taken.add(t);
        sel.push_back(std::move(g));
    }
    return sel;
}

void
expectSameBreakdown(const EvalBreakdown &a, const EvalBreakdown &b)
{
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.maxLoad, b.maxLoad);
    EXPECT_EQ(a.avgHops, b.avgHops);
    EXPECT_EQ(a.crossings, b.crossings);
    EXPECT_EQ(a.totalLength, b.totalLength);
    EXPECT_EQ(a.repeaterFrac, b.repeaterFrac);
}

/** Incremental == from-scratch at every prefix of random selections. */
void
checkScale(int n, int num_cbs, int rounds)
{
    EirProblem prob = paperProblem(n, num_cbs);
    EirEvaluator eval(&prob);
    EvalAccumulator acc(&eval);
    Rng rng(42);

    for (int round = 0; round < rounds; ++round) {
        EirSelection sel = drawSelection(prob, rng);
        acc.reset();
        for (int cb = 0; cb < prob.numCbs(); ++cb) {
            acc.push(cb, sel[static_cast<std::size_t>(cb)]);
            // From-scratch reference on the same prefix (undecided
            // CBs = empty groups, exactly like the accumulator).
            EirSelection prefix(sel.begin(), sel.begin() + cb + 1);
            prefix.resize(static_cast<std::size_t>(prob.numCbs()));
            expectSameBreakdown(acc.evaluate(), eval.evaluate(prefix));
        }
    }
}

TEST(EvalIncremental, MatchesFromScratch6x6)
{
    checkScale(6, 4, 6);
}

TEST(EvalIncremental, MatchesFromScratchPaperScale8x8)
{
    checkScale(8, 8, 6);
}

TEST(EvalIncremental, MatchesFromScratch16x16)
{
    checkScale(16, 8, 3);
}

TEST(EvalIncremental, PushPopRestoresScoreBitExactly)
{
    EirProblem prob = paperProblem(8, 8);
    EirEvaluator eval(&prob);
    EvalAccumulator acc(&eval);
    Rng rng(3);

    EirSelection sel = drawSelection(prob, rng);
    for (int cb = 0; cb < 5; ++cb)
        acc.push(cb, sel[static_cast<std::size_t>(cb)]);
    double before = acc.score();
    EvalBreakdown before_b = acc.evaluate();

    // Descend three more levels, then backtrack.
    for (int cb = 5; cb < 8; ++cb)
        acc.push(cb, sel[static_cast<std::size_t>(cb)]);
    while (acc.depth() > 5)
        acc.pop();

    EXPECT_EQ(acc.score(), before);
    expectSameBreakdown(acc.evaluate(), before_b);
}

TEST(EvalIncremental, SetGroupRevertIsBitExact)
{
    EirProblem prob = paperProblem(8, 8);
    EirEvaluator eval(&prob);
    EvalAccumulator acc(&eval);
    Rng rng(11);

    EirSelection sel = drawSelection(prob, rng);
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        acc.push(cb, sel[static_cast<std::size_t>(cb)]);
    double before = acc.score();

    // Replace CB 3's group with a fresh draw, then revert: the
    // simulated-annealing reject path.
    std::vector<Coord> old_group = acc.group(3);
    acc.setGroup(3, {});
    acc.setGroup(3, randomGroup(prob, 3, acc.takenMask(), rng));
    EXPECT_EQ(acc.evaluate().score, eval.evaluate(acc.selection()).score);
    acc.setGroup(3, old_group);
    EXPECT_EQ(acc.score(), before);
}

TEST(EvalIncremental, MemoHitEqualsMemoMiss)
{
    EirProblem prob = paperProblem(8, 8);
    EirEvaluator eval(&prob);
    Rng rng(5);
    EirSelection sel = drawSelection(prob, rng);

    // Cold pass populates the memo; warm pass must be served from it
    // and produce the identical score.
    EvalAccumulator cold(&eval);
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        cold.push(cb, sel[static_cast<std::size_t>(cb)]);
    double cold_score = cold.score();
    std::uint64_t misses = eval.memoMisses();
    EXPECT_GT(misses, 0u);

    EvalAccumulator warm(&eval);
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        warm.push(cb, sel[static_cast<std::size_t>(cb)]);
    EXPECT_EQ(warm.score(), cold_score);
    EXPECT_EQ(eval.memoMisses(), misses); // all hits, no recompute
    EXPECT_GT(eval.memoHits(), 0u);
}

TEST(EvalIncremental, EmptyAccumulatorMatchesEmptySelections)
{
    EirProblem prob = paperProblem(8, 8);
    EirEvaluator eval(&prob);
    EvalAccumulator acc(&eval);

    EvalBreakdown scratch_sized =
        eval.evaluate(EirSelection(static_cast<std::size_t>(prob.numCbs())));
    EvalBreakdown scratch_empty = eval.evaluate(EirSelection{});
    expectSameBreakdown(acc.evaluate(), scratch_sized);
    expectSameBreakdown(acc.evaluate(), scratch_empty);

    // And after a full load/unload cycle.
    Rng rng(9);
    EirSelection sel = drawSelection(prob, rng);
    for (int cb = 0; cb < prob.numCbs(); ++cb)
        acc.push(cb, sel[static_cast<std::size_t>(cb)]);
    while (acc.depth() > 0)
        acc.pop();
    expectSameBreakdown(acc.evaluate(), scratch_sized);
}

TEST(EvalIncremental, SearchMethodsAgreeWithFromScratchFinalEval)
{
    // The converted search methods re-evaluate their final selection
    // from scratch; accumulator scoring must have led them to a
    // selection whose from-scratch score matches what they tracked.
    EirProblem prob = paperProblem(8, 8);
    EirEvaluator eval(&prob);

    SearchResult g = greedySearch(prob, eval);
    EXPECT_EQ(g.eval.score, eval.evaluate(g.selection).score);

    SearchResult a = annealSearch(prob, eval, {});
    EXPECT_EQ(a.eval.score, eval.evaluate(a.selection).score);

    SearchResult m = mctsSearch(prob, eval, {});
    EXPECT_EQ(m.eval.score, eval.evaluate(m.selection).score);
}

} // namespace
} // namespace eqx
