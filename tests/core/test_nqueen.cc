/** @file N-Queen solver, scored placement, knight-move extension. */

#include <gtest/gtest.h>

#include <set>

#include "core/hotzone.hh"
#include "core/nqueen.hh"
#include "core/placement.hh"

namespace eqx {
namespace {

/** The classic solution counts for small boards. */
struct CountCase
{
    int n;
    std::size_t count;
};

class NQueenCounts : public ::testing::TestWithParam<CountCase> {};

TEST_P(NQueenCounts, MatchesKnownSequence)
{
    EXPECT_EQ(countNQueenSolutions(GetParam().n, 1000000),
              GetParam().count);
}

INSTANTIATE_TEST_SUITE_P(
    Classic, NQueenCounts,
    ::testing::Values(CountCase{1, 1}, CountCase{4, 2}, CountCase{5, 10},
                      CountCase{6, 4}, CountCase{7, 40},
                      CountCase{8, 92}), // the paper's 92 for 8x8
    [](const auto &info) {
        return "N" + std::to_string(info.param.n);
    });

TEST(NQueen, SolutionsAreValid)
{
    for (const auto &sol : solveNQueens(8, 1000000)) {
        EXPECT_TRUE(isPermutationPlacement(sol));
        EXPECT_TRUE(isDiagonalFree(sol));
    }
}

TEST(NQueen, CapRespected)
{
    EXPECT_EQ(solveNQueens(8, 10).size(), 10u);
}

TEST(NQueen, SampledSolutionsValidAndDistinct)
{
    Rng rng(3);
    auto sols = sampleNQueens(12, 20, rng);
    EXPECT_GE(sols.size(), 10u);
    std::set<std::vector<int>> keys;
    for (const auto &sol : sols) {
        EXPECT_TRUE(isPermutationPlacement(sol));
        EXPECT_TRUE(isDiagonalFree(sol));
        std::vector<int> key;
        for (const auto &c : sol)
            key.push_back(c.x);
        EXPECT_TRUE(keys.insert(key).second);
    }
}

TEST(NQueen, BestPlacementBeatsClassicLayouts)
{
    // The paper's motivation: N-Queen placement scores lower than Top
    // on the hot-zone penalty policy.
    Rng rng(1);
    auto best = bestNQueenPlacement(8, 8, rng);
    int top = placementPenalty(
        makePlacement(PlacementKind::Top, 8, 8, 8), 8, 8);
    EXPECT_LE(best.penalty, top);
    EXPECT_EQ(best.cbs.size(), 8u);
    EXPECT_TRUE(isDiagonalFree(best.cbs));
    EXPECT_EQ(best.penalty, placementPenalty(best.cbs, 8, 8));
}

TEST(NQueen, TrimsToFewerCbs)
{
    Rng rng(1);
    auto p = bestNQueenPlacement(8, 6, rng);
    EXPECT_EQ(p.cbs.size(), 6u);
    EXPECT_TRUE(isDiagonalFree(p.cbs)); // deleting queens keeps property
}

TEST(NQueen, BestPlacementDeterministicForSeed)
{
    Rng a(5), b(5);
    auto pa = bestNQueenPlacement(8, 8, a);
    auto pb = bestNQueenPlacement(8, 8, b);
    EXPECT_EQ(pa.cbs, pb.cbs);
    EXPECT_EQ(pa.penalty, pb.penalty);
}

TEST(Knight, PlacesRequestedCount)
{
    auto cbs = knightPlacement(8, 12); // more CBs than N
    EXPECT_EQ(cbs.size(), 12u);
    std::set<Coord> uniq(cbs.begin(), cbs.end());
    EXPECT_EQ(uniq.size(), 12u);
}

TEST(Knight, LowSharingForModerateCounts)
{
    // Knight moves minimize same-row/column/diagonal occurrences: for
    // 8 CBs on 8x8 the walk keeps rows/cols nearly distinct.
    auto cbs = knightPlacement(8, 8);
    std::set<int> cols;
    for (const auto &c : cbs)
        cols.insert(c.x);
    EXPECT_GE(cols.size(), 6u);
}

} // namespace
} // namespace eqx
