/** @file DSENT-lite power/area model properties. */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace eqx {
namespace {

NetworkSpec
meshSpec(int w, int h)
{
    NetworkSpec spec;
    spec.params.width = w;
    spec.params.height = h;
    return spec;
}

TEST(PowerModel, RouterAreaGrowsWithPortsVcsWidth)
{
    PowerModel pm;
    double base = pm.routerAreaMm2(5, 5, 2, 5, 128);
    EXPECT_GT(base, 0.0);
    EXPECT_GT(pm.routerAreaMm2(7, 5, 2, 5, 128), base);  // more inputs
    EXPECT_GT(pm.routerAreaMm2(5, 5, 4, 5, 128), base);  // more VCs
    EXPECT_GT(pm.routerAreaMm2(5, 5, 2, 5, 256), base);  // wider
    EXPECT_LT(pm.routerAreaMm2(5, 5, 2, 5, 16), base);   // narrower
}

TEST(PowerModel, NiAreaGrowsWithBuffers)
{
    PowerModel pm;
    EXPECT_GT(pm.niAreaMm2(5, 5, 128), pm.niAreaMm2(1, 5, 128));
}

TEST(PowerModel, NetworkAreaCountsStructure)
{
    PowerModel pm;
    Network plain(meshSpec(4, 4));
    NetworkSpec eir_spec = meshSpec(4, 4);
    eir_spec.eirGroups[{5}] = {7, 13};
    Network eir(eir_spec);
    EXPECT_GT(pm.networkAreaMm2(eir), pm.networkAreaMm2(plain));
}

TEST(PowerModel, LeakageProportionalToArea)
{
    PowerModel pm;
    Network net(meshSpec(4, 4));
    EXPECT_NEAR(pm.networkLeakageMw(net),
                pm.networkAreaMm2(net) * pm.params().leakageMwPerMm2,
                1e-9);
}

TEST(PowerModel, IdleNetworkBurnsOnlyLeakage)
{
    PowerModel pm;
    Network net(meshSpec(4, 4));
    EnergyBreakdown e = pm.networkEnergyPj(net, 1000);
    EXPECT_DOUBLE_EQ(e.buffer, 0.0);
    EXPECT_DOUBLE_EQ(e.crossbar, 0.0);
    EXPECT_DOUBLE_EQ(e.links, 0.0);
    EXPECT_GT(e.leakage, 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.leakage);
}

TEST(PowerModel, TrafficAddsDynamicEnergy)
{
    PowerModel pm;
    Network net(meshSpec(4, 4));
    Cycle clock = 0;
    for (int i = 0; i < 10; ++i) {
        auto pkt = makePacket(PacketType::ReadReply, 0, 15, 640);
        while (!net.inject(0, pkt))
            net.coreTick(++clock);
    }
    for (int i = 0; i < 300; ++i)
        net.coreTick(++clock);
    EnergyBreakdown e = pm.networkEnergyPj(net, clock);
    EXPECT_GT(e.buffer, 0.0);
    EXPECT_GT(e.crossbar, 0.0);
    EXPECT_GT(e.links, 0.0);
    EXPECT_GT(e.allocators, 0.0);
    EXPECT_DOUBLE_EQ(e.interposerLinks, 0.0); // no interposer links
}

TEST(PowerModel, EirTrafficCountsInterposerEnergy)
{
    PowerModel pm;
    NetworkSpec spec = meshSpec(8, 8);
    spec.eirGroups[{27}] = {25, 29};
    Network net(spec);
    Cycle clock = 0;
    for (int i = 0; i < 10; ++i) {
        auto pkt = makePacket(PacketType::ReadReply, 27, 31, 640);
        while (!net.inject(27, pkt))
            net.coreTick(++clock);
    }
    for (int i = 0; i < 400; ++i)
        net.coreTick(++clock);
    EnergyBreakdown e = pm.networkEnergyPj(net, clock);
    EXPECT_GT(e.interposerLinks, 0.0);
}

TEST(PowerModel, CyclesToNsUsesClock)
{
    PowerModel pm;
    EXPECT_NEAR(pm.cyclesToNs(1126), 1000.0, 1.0); // 1126 MHz
    EXPECT_DOUBLE_EQ(PowerModel::edp(100.0, 10.0), 1000.0);
}

} // namespace
} // namespace eqx
