/** @file ubump accounting (paper Section 6.6 arithmetic). */

#include <gtest/gtest.h>

#include "interposer/link_plan.hh"
#include "interposer/ubump.hh"

namespace eqx {
namespace {

TEST(Ubump, PaperEquiNoxCount)
{
    // 24 unidirectional 128-bit links, 2 bumps per wire -> 6144.
    UbumpModel m;
    InterposerLink link{{0, 0}, {2, 0}, 128, false};
    int per_link = m.bumpsForLink(link, /*round_trip=*/true);
    EXPECT_EQ(per_link, 256);
    EXPECT_EQ(24 * per_link, 6144);
}

TEST(Ubump, PaperCMeshCount)
{
    // 128 unidirectional 256-bit attachment links, 1 bump per wire
    // at the processor die -> 32768.
    UbumpModel m;
    InterposerLink link{{0, 0}, {1, 0}, 256, false};
    int per_link = m.bumpsForLink(link, /*round_trip=*/false);
    EXPECT_EQ(per_link, 256);
    EXPECT_EQ(128 * per_link, 32768);
}

TEST(Ubump, PaperSavingIs81Percent)
{
    double saving = 1.0 - 6144.0 / 32768.0;
    EXPECT_NEAR(saving, 0.8125, 1e-9);
}

TEST(Ubump, AreaAt40umPitch)
{
    UbumpModel m;
    EXPECT_NEAR(m.bumpAreaMm2(), 0.0016, 1e-9); // (40 um)^2
    // A 128-bit bidirectional round-trip link: 512 bumps.
    InterposerLink link{{0, 0}, {2, 0}, 128, true};
    int bumps = m.bumpsForLink(link, true);
    EXPECT_EQ(bumps, 512);
    EXPECT_NEAR(m.areaForBumps(bumps), 0.8192, 1e-6);
}

TEST(Ubump, PitchScalesAreaQuadratically)
{
    UbumpModel fine;
    fine.pitchUm = 20.0;
    UbumpModel coarse;
    coarse.pitchUm = 40.0;
    EXPECT_NEAR(coarse.areaForBumps(100) / fine.areaForBumps(100), 4.0,
                1e-9);
}

} // namespace
} // namespace eqx
