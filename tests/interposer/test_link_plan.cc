/** @file Interposer link-plan geometry and physical-viability report. */

#include <gtest/gtest.h>

#include "interposer/link_plan.hh"

namespace eqx {
namespace {

TEST(LinkPlan, EmptyPlan)
{
    LinkPlan plan;
    EXPECT_EQ(plan.crossings(), 0);
    EXPECT_EQ(plan.layersNeeded(), 0);
    EXPECT_DOUBLE_EQ(plan.totalLengthHops(), 0);
    EXPECT_FALSE(plan.needsRepeaters());
    RdlReport r = plan.report();
    EXPECT_EQ(r.numLinks, 0);
    EXPECT_EQ(r.numUbumps, 0);
}

TEST(LinkPlan, SingleTwoHopLink)
{
    LinkPlan plan(2);
    plan.add({{2, 2}, {4, 2}, 128, false});
    EXPECT_EQ(plan.maxHops(), 2);
    EXPECT_FALSE(plan.needsRepeaters());
    RdlReport r = plan.report();
    EXPECT_EQ(r.numLinks, 1);
    EXPECT_EQ(r.numWires, 128);
    // Round-trip link: 2 bumps per wire.
    EXPECT_EQ(r.numUbumps, 256);
    EXPECT_EQ(r.layersNeeded, 1);
}

TEST(LinkPlan, ThreeHopLinkNeedsRepeaters)
{
    LinkPlan plan(2);
    plan.add({{0, 0}, {3, 0}, 128, false});
    EXPECT_TRUE(plan.needsRepeaters());
}

TEST(LinkPlan, BidirectionalDoublesWires)
{
    LinkPlan plan;
    plan.add({{0, 0}, {2, 0}, 128, true});
    RdlReport r = plan.report();
    EXPECT_EQ(r.numWires, 256);
    EXPECT_EQ(r.numUbumps, 512);
}

TEST(LinkPlan, CrossingLinksNeedTwoLayers)
{
    LinkPlan plan;
    plan.add({{0, 1}, {4, 1}, 128, false});
    plan.add({{2, 0}, {2, 3}, 128, false});
    EXPECT_EQ(plan.crossings(), 1);
    EXPECT_EQ(plan.layersNeeded(), 2);
}

TEST(LinkPlan, FanOutFromOneCbSharesLayer)
{
    // A CB fanning out to four EIRs: all share the source tile,
    // so no crossings and one RDL layer suffices (the paper's result).
    LinkPlan plan;
    Coord cb{4, 4};
    for (Coord e : {Coord{6, 4}, Coord{2, 4}, Coord{4, 6}, Coord{4, 2}})
        plan.add({cb, e, 128, false});
    EXPECT_EQ(plan.crossings(), 0);
    EXPECT_EQ(plan.layersNeeded(), 1);
    EXPECT_DOUBLE_EQ(plan.totalLengthHops(), 8.0);
}

TEST(LinkPlan, SelfLinkRejected)
{
    LinkPlan plan;
    EXPECT_THROW(plan.add({{1, 1}, {1, 1}, 128, false}),
                 std::logic_error);
}

TEST(LinkPlan, AsciiMapMarksEndpoints)
{
    LinkPlan plan;
    plan.add({{0, 0}, {2, 0}, 128, false});
    std::string map = plan.asciiMap(3, 1);
    EXPECT_NE(map.find('S'), std::string::npos);
    EXPECT_NE(map.find('E'), std::string::npos);
}

} // namespace
} // namespace eqx
