/** @file The 29-benchmark synthetic suite. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/profiles.hh"

namespace eqx {
namespace {

TEST(Profiles, SuiteHas29UniqueBenchmarks)
{
    const auto &suite = workloadSuite();
    EXPECT_EQ(suite.size(), 29u);
    std::set<std::string> names;
    for (const auto &p : suite)
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Profiles, PaperBenchmarksPresent)
{
    // Benchmarks the paper's Section 6 discusses by name.
    for (const char *name :
         {"kmeans", "heartwall", "monteCarlo", "particlefilter",
          "fastWalshTrans", "scan", "sortingNetworks", "gaussian",
          "myocyte"})
        EXPECT_NO_THROW(workloadByName(name)) << name;
}

TEST(Profiles, ParametersInSaneRanges)
{
    for (const auto &p : workloadSuite()) {
        EXPECT_GT(p.instsPerPe, 0u) << p.name;
        EXPECT_GE(p.memRatio, 0.0);
        EXPECT_LE(p.memRatio, 1.0);
        EXPECT_GE(p.readFrac, 0.0);
        EXPECT_LE(p.readFrac, 1.0);
        EXPECT_GT(p.privateLines, 0);
        EXPECT_GT(p.sharedLines, 0);
        EXPECT_GE(p.sharedFrac, 0.0);
        EXPECT_LE(p.sharedFrac, 1.0);
        EXPECT_GE(p.seqProb, 0.0);
        EXPECT_LE(p.seqProb, 1.0);
    }
}

TEST(Profiles, ComputeBoundAndMemoryBoundClassesExist)
{
    // myocyte is the paper's compute-bound outlier; kmeans is
    // memory-hungry.
    EXPECT_LT(workloadByName("myocyte").memRatio, 0.1);
    EXPECT_GT(workloadByName("kmeans").memRatio, 0.4);
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadByName("nosuchbenchmark"), std::runtime_error);
}

TEST(Profiles, SubsetTruncates)
{
    EXPECT_EQ(workloadSubset(5).size(), 5u);
    EXPECT_EQ(workloadSubset(100).size(), 29u);
    EXPECT_EQ(workloadSubset(5)[0].name, workloadSuite()[0].name);
}

} // namespace
} // namespace eqx
