/** @file The 29-benchmark synthetic suite. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/profiles.hh"

namespace eqx {
namespace {

TEST(Profiles, SuiteHas29UniqueBenchmarks)
{
    const auto &suite = workloadSuite();
    EXPECT_EQ(suite.size(), 29u);
    std::set<std::string> names;
    for (const auto &p : suite)
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Profiles, PaperBenchmarksPresent)
{
    // Benchmarks the paper's Section 6 discusses by name.
    for (const char *name :
         {"kmeans", "heartwall", "monteCarlo", "particlefilter",
          "fastWalshTrans", "scan", "sortingNetworks", "gaussian",
          "myocyte"})
        EXPECT_NO_THROW(workloadByName(name)) << name;
}

TEST(Profiles, ParametersInSaneRanges)
{
    for (const auto &p : workloadSuite()) {
        EXPECT_GT(p.instsPerPe, 0u) << p.name;
        EXPECT_GE(p.memRatio, 0.0);
        EXPECT_LE(p.memRatio, 1.0);
        EXPECT_GE(p.readFrac, 0.0);
        EXPECT_LE(p.readFrac, 1.0);
        EXPECT_GT(p.privateLines, 0);
        EXPECT_GT(p.sharedLines, 0);
        EXPECT_GE(p.sharedFrac, 0.0);
        EXPECT_LE(p.sharedFrac, 1.0);
        EXPECT_GE(p.seqProb, 0.0);
        EXPECT_LE(p.seqProb, 1.0);
    }
}

TEST(Profiles, ComputeBoundAndMemoryBoundClassesExist)
{
    // myocyte is the paper's compute-bound outlier; kmeans is
    // memory-hungry.
    EXPECT_LT(workloadByName("myocyte").memRatio, 0.1);
    EXPECT_GT(workloadByName("kmeans").memRatio, 0.4);
}

TEST(Profiles, FindWorkloadIsNullableLookup)
{
    const WorkloadProfile *p = findWorkload("kmeans");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name, "kmeans");
    EXPECT_EQ(findWorkload("nosuchbenchmark"), nullptr);
}

TEST(Profiles, NameListCoversTheSuite)
{
    std::string list = workloadNameList();
    for (const auto &wp : workloadSuite())
        EXPECT_NE(list.find(wp.name), std::string::npos) << wp.name;
}

TEST(Profiles, UnknownNameIsFatalWithKeyList)
{
    try {
        workloadByName("nosuchbenchmark");
        FAIL() << "unknown benchmark must be fatal";
    } catch (const std::runtime_error &e) {
        // The fatal message names the bad key and every valid one.
        std::string msg = e.what();
        EXPECT_NE(msg.find("nosuchbenchmark"), std::string::npos);
        EXPECT_NE(msg.find("kmeans"), std::string::npos);
        EXPECT_NE(msg.find("myocyte"), std::string::npos);
    }
}

TEST(Profiles, SubsetTruncates)
{
    EXPECT_EQ(workloadSubset(5).size(), 5u);
    EXPECT_EQ(workloadSubset(100).size(), 29u);
    EXPECT_EQ(workloadSubset(5)[0].name, workloadSuite()[0].name);
}

TEST(Profiles, NamedSubsetSelectsAndRejects)
{
    auto sel = workloadSubset({"gaussian", "kmeans"});
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0].name, "gaussian");
    EXPECT_EQ(sel[1].name, "kmeans");
    EXPECT_THROW(workloadSubset({"kmeans", "nosuchbenchmark"}),
                 std::runtime_error);
}

} // namespace
} // namespace eqx
