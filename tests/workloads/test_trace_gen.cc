/** @file Synthetic per-PE trace generation. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/trace_gen.hh"

namespace eqx {
namespace {

WorkloadProfile
base()
{
    WorkloadProfile wp;
    wp.instsPerPe = 1000;
    wp.memRatio = 0.5;
    wp.readFrac = 0.8;
    wp.privateLines = 64;
    wp.sharedLines = 32;
    wp.sharedFrac = 0.3;
    wp.seqProb = 0.5;
    return wp;
}

TEST(TraceGen, ProducesExactlyInstsPerPe)
{
    PeTraceGen gen(base(), 0, 1);
    TraceOp op;
    std::uint64_t n = 0;
    while (gen.next(op))
        ++n;
    EXPECT_EQ(n, 1000u);
    EXPECT_EQ(gen.remaining(), 0u);
    EXPECT_FALSE(gen.next(op));
}

TEST(TraceGen, DeterministicForSeedAndPe)
{
    PeTraceGen a(base(), 3, 42), b(base(), 3, 42);
    TraceOp oa, ob;
    for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(a.next(oa), b.next(ob));
        EXPECT_EQ(oa.isMem, ob.isMem);
        EXPECT_EQ(oa.isWrite, ob.isWrite);
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

TEST(TraceGen, DifferentPesDiverge)
{
    PeTraceGen a(base(), 0, 42), b(base(), 1, 42);
    TraceOp oa, ob;
    int same_addr = 0, mem = 0;
    for (int i = 0; i < 500; ++i) {
        a.next(oa);
        b.next(ob);
        if (oa.isMem && ob.isMem) {
            ++mem;
            if (oa.addr == ob.addr)
                ++same_addr;
        }
    }
    EXPECT_GT(mem, 0);
    EXPECT_LT(same_addr, mem); // private regions differ
}

TEST(TraceGen, MemRatioApproximatelyHonoured)
{
    WorkloadProfile wp = base();
    wp.instsPerPe = 20000;
    wp.memRatio = 0.3;
    PeTraceGen gen(wp, 0, 7);
    TraceOp op;
    int mem = 0;
    while (gen.next(op))
        if (op.isMem)
            ++mem;
    EXPECT_NEAR(mem / 20000.0, 0.3, 0.02);
}

TEST(TraceGen, ReadFractionApproximatelyHonoured)
{
    WorkloadProfile wp = base();
    wp.instsPerPe = 20000;
    wp.memRatio = 1.0;
    wp.readFrac = 0.75;
    PeTraceGen gen(wp, 0, 7);
    TraceOp op;
    int reads = 0, mem = 0;
    while (gen.next(op)) {
        if (op.isMem) {
            ++mem;
            if (!op.isWrite)
                ++reads;
        }
    }
    EXPECT_NEAR(static_cast<double>(reads) / mem, 0.75, 0.02);
}

TEST(TraceGen, AddressesLineAlignedAndInRegions)
{
    WorkloadProfile wp = base();
    wp.instsPerPe = 5000;
    wp.memRatio = 1.0;
    PeTraceGen gen(wp, 2, 9);
    Addr priv_base = static_cast<Addr>(3) << 30;
    TraceOp op;
    while (gen.next(op)) {
        if (!op.isMem)
            continue;
        EXPECT_EQ(op.addr % 64, 0u);
        bool in_shared =
            op.addr < static_cast<Addr>(wp.sharedLines) * 64;
        bool in_priv =
            op.addr >= priv_base &&
            op.addr < priv_base + static_cast<Addr>(wp.privateLines) * 64;
        EXPECT_TRUE(in_shared || in_priv) << op.addr;
    }
}

TEST(TraceGen, SharedFractionZeroStaysPrivate)
{
    WorkloadProfile wp = base();
    wp.sharedFrac = 0.0;
    wp.memRatio = 1.0;
    wp.instsPerPe = 2000;
    PeTraceGen gen(wp, 1, 3);
    Addr priv_base = static_cast<Addr>(2) << 30;
    TraceOp op;
    while (gen.next(op))
        if (op.isMem)
            EXPECT_GE(op.addr, priv_base);
}

TEST(TraceGen, FullSequentialWalksByOneLine)
{
    WorkloadProfile wp = base();
    wp.memRatio = 1.0;
    wp.seqProb = 1.0;
    wp.sharedFrac = 0.0;
    wp.instsPerPe = 50;
    PeTraceGen gen(wp, 0, 5);
    TraceOp op;
    ASSERT_TRUE(gen.next(op));
    Addr prev = op.addr;
    while (gen.next(op)) {
        Addr delta = (op.addr >= prev)
                         ? op.addr - prev
                         : prev - op.addr; // wrap-around case
        EXPECT_TRUE(delta == 64 ||
                    delta == static_cast<Addr>(wp.privateLines - 1) * 64);
        prev = op.addr;
    }
}

} // namespace
} // namespace eqx
