/** @file HBM stack: FR-FCFS, row-buffer behaviour, bandwidth cap. */

#include <gtest/gtest.h>

#include <vector>

#include "memory/hbm.hh"

namespace eqx {
namespace {

struct Harness
{
    explicit Harness(HbmParams p = {})
        : stack(p, [this](const MemRequest &r, Cycle c) {
              done.push_back({r, c});
          })
    {}

    void
    run(Cycle &clock, int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            stack.tick(++clock);
    }

    std::vector<std::pair<MemRequest, Cycle>> done;
    HbmStack stack;
};

TEST(Hbm, AddressDecompositionInterleavesChannels)
{
    Harness h;
    // Consecutive lines hit consecutive channels.
    int ch0 = h.stack.channelOf(0);
    int ch1 = h.stack.channelOf(64);
    EXPECT_NE(ch0, ch1);
    EXPECT_EQ(h.stack.channelOf(0), h.stack.channelOf(16 * 64));
}

TEST(Hbm, SingleReadCompletes)
{
    Harness h;
    Cycle clock = 0;
    ASSERT_TRUE(h.stack.canEnqueue(0x1000));
    h.stack.enqueue({0x1000, false, 7}, clock);
    EXPECT_EQ(h.stack.outstanding(), 1);
    h.run(clock, 100);
    ASSERT_EQ(h.done.size(), 1u);
    EXPECT_EQ(h.done[0].first.tag, 7u);
    EXPECT_EQ(h.stack.outstanding(), 0);
}

TEST(Hbm, RowHitFasterThanRowConflict)
{
    HbmParams p;
    Harness h(p);
    Cycle clock = 0;
    // Two accesses to the same row, then one to a different row in the
    // same bank.
    Addr a = 0;
    // Same channel (x16) and same bank (x8): the next line of row 0.
    Addr same_row = 64 * 16 * 8;
    h.stack.enqueue({a, false, 1}, clock);
    h.run(clock, 100);
    Cycle t0 = h.done[0].second;

    h.stack.enqueue({same_row, false, 2}, clock);
    h.run(clock, 100);
    Cycle hit_lat = h.done[1].second - t0;

    // Conflict: a line far enough to land in another row, same bank.
    Addr other_row = 64ull * 16 * 8 * 64 * 2;
    EXPECT_EQ(h.stack.channelOf(other_row), h.stack.channelOf(a));
    EXPECT_EQ(h.stack.bankOf(other_row), h.stack.bankOf(a));
    EXPECT_NE(h.stack.rowOf(other_row), h.stack.rowOf(a));
    Cycle t1 = h.done[1].second;
    h.stack.enqueue({other_row, false, 3}, clock);
    h.run(clock, 200);
    Cycle miss_lat = h.done[2].second - t1;
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_GT(h.stack.stats().get("row_hits"), 0.0);
    EXPECT_GT(h.stack.stats().get("row_conflicts"), 0.0);
}

TEST(Hbm, FrFcfsPrefersReadyRowHit)
{
    HbmParams p;
    p.channels = 1;
    p.banksPerChannel = 1;
    p.queueDepth = 8;
    Harness h(p);
    Cycle clock = 0;
    // Open row A, then enqueue row B (older) and row A (younger): the
    // row hit should finish first despite arriving later.
    h.stack.enqueue({0, false, 0}, clock);
    h.run(clock, 100);
    h.done.clear();
    Addr rowB = 64ull * 64 * 3;
    h.stack.enqueue({rowB, false, 1}, clock);
    h.stack.enqueue({64, false, 2}, clock); // same row as addr 0
    h.run(clock, 300);
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_EQ(h.done[0].first.tag, 2u); // the hit completed first
    EXPECT_EQ(h.done[1].first.tag, 1u);
}

TEST(Hbm, QueueDepthEnforced)
{
    HbmParams p;
    p.channels = 1;
    p.queueDepth = 2;
    Harness h(p);
    Cycle clock = 0;
    h.stack.enqueue({0, false, 0}, clock);
    h.stack.enqueue({64, false, 1}, clock);
    // The first may have issued at tick time 0? No ticks yet: both
    // queued, so the channel is full.
    EXPECT_FALSE(h.stack.canEnqueue(128));
    h.run(clock, 100);
    EXPECT_TRUE(h.stack.canEnqueue(128));
}

TEST(Hbm, WritesTakeRecoveryTime)
{
    HbmParams p;
    p.channels = 1;
    p.banksPerChannel = 1;
    Harness h(p);
    Cycle clock = 0;
    h.stack.enqueue({0, false, 0}, clock);
    h.run(clock, 200);
    Cycle start = clock;
    h.stack.enqueue({64, true, 1}, clock); // row hit write
    h.run(clock, 200);
    Cycle write_lat = h.done[1].second - start;
    EXPECT_GE(write_lat,
              static_cast<Cycle>(p.timing.tCL + p.timing.tBL +
                                 p.timing.tWR));
}

TEST(Hbm, ChannelBusSerializesBursts)
{
    HbmParams p;
    p.channels = 1;
    p.banksPerChannel = 8;
    Harness h(p);
    Cycle clock = 0;
    // 8 row-empty accesses to 8 different banks: bank-parallel but the
    // shared bus issues at most one burst per tBL.
    for (int b = 0; b < 8; ++b) {
        Addr addr = static_cast<Addr>(b) * 64;
        // channels=1 so lines map to consecutive banks
        h.stack.enqueue({addr, false, static_cast<std::uint64_t>(b)},
                        clock);
    }
    h.run(clock, 500);
    ASSERT_EQ(h.done.size(), 8u);
    // Completions must be spread by at least tBL apart on average.
    Cycle first = h.done.front().second;
    Cycle last = h.done.back().second;
    EXPECT_GE(last - first, static_cast<Cycle>(7 * p.timing.tBL));
}

TEST(Hbm, ThroughputScalesWithChannels)
{
    auto run_n = [](int channels) {
        HbmParams p;
        p.channels = channels;
        p.queueDepth = 64;
        Harness h(p);
        Cycle clock = 0;
        int sent = 0;
        for (int i = 0; i < 64; ++i) {
            Addr a = static_cast<Addr>(i) * 64;
            if (h.stack.canEnqueue(a)) {
                h.stack.enqueue({a, false, 0}, clock);
                ++sent;
            }
        }
        Cycle start = clock;
        while (h.stack.outstanding() > 0 && clock < start + 10000)
            h.stack.tick(++clock);
        return clock - start;
    };
    EXPECT_LT(run_n(16), run_n(2));
}

} // namespace
} // namespace eqx
