# Empty compiler generated dependencies file for full_system_run.
# This may be replaced when dependencies are built.
