file(REMOVE_RECURSE
  "CMakeFiles/full_system_run.dir/full_system_run.cpp.o"
  "CMakeFiles/full_system_run.dir/full_system_run.cpp.o.d"
  "full_system_run"
  "full_system_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
