file(REMOVE_RECURSE
  "CMakeFiles/fig05_nqueen_scoring.dir/fig05_nqueen_scoring.cc.o"
  "CMakeFiles/fig05_nqueen_scoring.dir/fig05_nqueen_scoring.cc.o.d"
  "fig05_nqueen_scoring"
  "fig05_nqueen_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_nqueen_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
