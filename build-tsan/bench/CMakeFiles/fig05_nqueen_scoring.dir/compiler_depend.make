# Empty compiler generated dependencies file for fig05_nqueen_scoring.
# This may be replaced when dependencies are built.
