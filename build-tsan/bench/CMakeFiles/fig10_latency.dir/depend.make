# Empty dependencies file for fig10_latency.
# This may be replaced when dependencies are built.
