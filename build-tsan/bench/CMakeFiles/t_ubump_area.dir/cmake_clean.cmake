file(REMOVE_RECURSE
  "CMakeFiles/t_ubump_area.dir/t_ubump_area.cc.o"
  "CMakeFiles/t_ubump_area.dir/t_ubump_area.cc.o.d"
  "t_ubump_area"
  "t_ubump_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_ubump_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
