# Empty dependencies file for t_ubump_area.
# This may be replaced when dependencies are built.
