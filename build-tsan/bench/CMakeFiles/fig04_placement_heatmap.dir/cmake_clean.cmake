file(REMOVE_RECURSE
  "CMakeFiles/fig04_placement_heatmap.dir/fig04_placement_heatmap.cc.o"
  "CMakeFiles/fig04_placement_heatmap.dir/fig04_placement_heatmap.cc.o.d"
  "fig04_placement_heatmap"
  "fig04_placement_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_placement_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
