# Empty dependencies file for fig04_placement_heatmap.
# This may be replaced when dependencies are built.
