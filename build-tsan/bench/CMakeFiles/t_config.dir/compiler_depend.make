# Empty compiler generated dependencies file for t_config.
# This may be replaced when dependencies are built.
