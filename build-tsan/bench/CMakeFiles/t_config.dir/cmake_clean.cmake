file(REMOVE_RECURSE
  "CMakeFiles/t_config.dir/t_config.cc.o"
  "CMakeFiles/t_config.dir/t_config.cc.o.d"
  "t_config"
  "t_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
