# Empty compiler generated dependencies file for abl_eir_count.
# This may be replaced when dependencies are built.
