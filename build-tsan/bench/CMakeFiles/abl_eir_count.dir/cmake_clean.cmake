file(REMOVE_RECURSE
  "CMakeFiles/abl_eir_count.dir/abl_eir_count.cc.o"
  "CMakeFiles/abl_eir_count.dir/abl_eir_count.cc.o.d"
  "abl_eir_count"
  "abl_eir_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eir_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
