
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_search_methods.cc" "bench/CMakeFiles/abl_search_methods.dir/abl_search_methods.cc.o" "gcc" "bench/CMakeFiles/abl_search_methods.dir/abl_search_methods.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/eqx_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/eqx_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gpu/CMakeFiles/eqx_gpu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/memory/CMakeFiles/eqx_memory.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/eqx_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/power/CMakeFiles/eqx_power.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/eqx_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interposer/CMakeFiles/eqx_interposer.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runner/CMakeFiles/eqx_runner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
