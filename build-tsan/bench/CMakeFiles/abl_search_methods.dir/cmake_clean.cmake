file(REMOVE_RECURSE
  "CMakeFiles/abl_search_methods.dir/abl_search_methods.cc.o"
  "CMakeFiles/abl_search_methods.dir/abl_search_methods.cc.o.d"
  "abl_search_methods"
  "abl_search_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_search_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
