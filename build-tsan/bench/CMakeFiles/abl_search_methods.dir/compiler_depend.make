# Empty compiler generated dependencies file for abl_search_methods.
# This may be replaced when dependencies are built.
