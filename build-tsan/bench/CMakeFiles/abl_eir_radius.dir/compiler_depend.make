# Empty compiler generated dependencies file for abl_eir_radius.
# This may be replaced when dependencies are built.
