file(REMOVE_RECURSE
  "CMakeFiles/abl_eir_radius.dir/abl_eir_radius.cc.o"
  "CMakeFiles/abl_eir_radius.dir/abl_eir_radius.cc.o.d"
  "abl_eir_radius"
  "abl_eir_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eir_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
