# Empty dependencies file for t_traffic_mix.
# This may be replaced when dependencies are built.
