file(REMOVE_RECURSE
  "CMakeFiles/t_traffic_mix.dir/t_traffic_mix.cc.o"
  "CMakeFiles/t_traffic_mix.dir/t_traffic_mix.cc.o.d"
  "t_traffic_mix"
  "t_traffic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t_traffic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
