# Empty compiler generated dependencies file for fig09_performance.
# This may be replaced when dependencies are built.
