file(REMOVE_RECURSE
  "CMakeFiles/fig09_performance.dir/fig09_performance.cc.o"
  "CMakeFiles/fig09_performance.dir/fig09_performance.cc.o.d"
  "fig09_performance"
  "fig09_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
