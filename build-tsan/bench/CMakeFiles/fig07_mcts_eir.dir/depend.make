# Empty dependencies file for fig07_mcts_eir.
# This may be replaced when dependencies are built.
