file(REMOVE_RECURSE
  "CMakeFiles/fig07_mcts_eir.dir/fig07_mcts_eir.cc.o"
  "CMakeFiles/fig07_mcts_eir.dir/fig07_mcts_eir.cc.o.d"
  "fig07_mcts_eir"
  "fig07_mcts_eir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mcts_eir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
