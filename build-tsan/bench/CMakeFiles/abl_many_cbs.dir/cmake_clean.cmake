file(REMOVE_RECURSE
  "CMakeFiles/abl_many_cbs.dir/abl_many_cbs.cc.o"
  "CMakeFiles/abl_many_cbs.dir/abl_many_cbs.cc.o.d"
  "abl_many_cbs"
  "abl_many_cbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_many_cbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
