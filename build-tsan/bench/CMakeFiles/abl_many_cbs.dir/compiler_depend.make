# Empty compiler generated dependencies file for abl_many_cbs.
# This may be replaced when dependencies are built.
