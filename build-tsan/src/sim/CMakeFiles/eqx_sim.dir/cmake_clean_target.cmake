file(REMOVE_RECURSE
  "libeqx_sim.a"
)
