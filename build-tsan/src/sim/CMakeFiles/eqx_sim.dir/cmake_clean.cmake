file(REMOVE_RECURSE
  "CMakeFiles/eqx_sim.dir/experiment.cc.o"
  "CMakeFiles/eqx_sim.dir/experiment.cc.o.d"
  "CMakeFiles/eqx_sim.dir/scheme.cc.o"
  "CMakeFiles/eqx_sim.dir/scheme.cc.o.d"
  "CMakeFiles/eqx_sim.dir/synthetic.cc.o"
  "CMakeFiles/eqx_sim.dir/synthetic.cc.o.d"
  "CMakeFiles/eqx_sim.dir/system.cc.o"
  "CMakeFiles/eqx_sim.dir/system.cc.o.d"
  "libeqx_sim.a"
  "libeqx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
