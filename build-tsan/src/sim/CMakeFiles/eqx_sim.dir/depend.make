# Empty dependencies file for eqx_sim.
# This may be replaced when dependencies are built.
