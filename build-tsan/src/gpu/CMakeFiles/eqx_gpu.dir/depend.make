# Empty dependencies file for eqx_gpu.
# This may be replaced when dependencies are built.
