file(REMOVE_RECURSE
  "CMakeFiles/eqx_gpu.dir/cache_bank.cc.o"
  "CMakeFiles/eqx_gpu.dir/cache_bank.cc.o.d"
  "CMakeFiles/eqx_gpu.dir/mshr.cc.o"
  "CMakeFiles/eqx_gpu.dir/mshr.cc.o.d"
  "CMakeFiles/eqx_gpu.dir/pe.cc.o"
  "CMakeFiles/eqx_gpu.dir/pe.cc.o.d"
  "CMakeFiles/eqx_gpu.dir/tag_array.cc.o"
  "CMakeFiles/eqx_gpu.dir/tag_array.cc.o.d"
  "libeqx_gpu.a"
  "libeqx_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
