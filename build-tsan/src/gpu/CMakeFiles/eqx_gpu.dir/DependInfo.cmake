
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cache_bank.cc" "src/gpu/CMakeFiles/eqx_gpu.dir/cache_bank.cc.o" "gcc" "src/gpu/CMakeFiles/eqx_gpu.dir/cache_bank.cc.o.d"
  "/root/repo/src/gpu/mshr.cc" "src/gpu/CMakeFiles/eqx_gpu.dir/mshr.cc.o" "gcc" "src/gpu/CMakeFiles/eqx_gpu.dir/mshr.cc.o.d"
  "/root/repo/src/gpu/pe.cc" "src/gpu/CMakeFiles/eqx_gpu.dir/pe.cc.o" "gcc" "src/gpu/CMakeFiles/eqx_gpu.dir/pe.cc.o.d"
  "/root/repo/src/gpu/tag_array.cc" "src/gpu/CMakeFiles/eqx_gpu.dir/tag_array.cc.o" "gcc" "src/gpu/CMakeFiles/eqx_gpu.dir/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/eqx_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/memory/CMakeFiles/eqx_memory.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workloads/CMakeFiles/eqx_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
