file(REMOVE_RECURSE
  "libeqx_gpu.a"
)
