file(REMOVE_RECURSE
  "CMakeFiles/eqx_core.dir/baselines.cc.o"
  "CMakeFiles/eqx_core.dir/baselines.cc.o.d"
  "CMakeFiles/eqx_core.dir/design_flow.cc.o"
  "CMakeFiles/eqx_core.dir/design_flow.cc.o.d"
  "CMakeFiles/eqx_core.dir/eir_problem.cc.o"
  "CMakeFiles/eqx_core.dir/eir_problem.cc.o.d"
  "CMakeFiles/eqx_core.dir/evaluation.cc.o"
  "CMakeFiles/eqx_core.dir/evaluation.cc.o.d"
  "CMakeFiles/eqx_core.dir/hotzone.cc.o"
  "CMakeFiles/eqx_core.dir/hotzone.cc.o.d"
  "CMakeFiles/eqx_core.dir/mcts.cc.o"
  "CMakeFiles/eqx_core.dir/mcts.cc.o.d"
  "CMakeFiles/eqx_core.dir/nqueen.cc.o"
  "CMakeFiles/eqx_core.dir/nqueen.cc.o.d"
  "CMakeFiles/eqx_core.dir/placement.cc.o"
  "CMakeFiles/eqx_core.dir/placement.cc.o.d"
  "libeqx_core.a"
  "libeqx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
