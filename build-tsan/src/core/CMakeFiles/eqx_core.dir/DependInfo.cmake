
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/eqx_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/design_flow.cc" "src/core/CMakeFiles/eqx_core.dir/design_flow.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/design_flow.cc.o.d"
  "/root/repo/src/core/eir_problem.cc" "src/core/CMakeFiles/eqx_core.dir/eir_problem.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/eir_problem.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/eqx_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/hotzone.cc" "src/core/CMakeFiles/eqx_core.dir/hotzone.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/hotzone.cc.o.d"
  "/root/repo/src/core/mcts.cc" "src/core/CMakeFiles/eqx_core.dir/mcts.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/mcts.cc.o.d"
  "/root/repo/src/core/nqueen.cc" "src/core/CMakeFiles/eqx_core.dir/nqueen.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/nqueen.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/eqx_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/eqx_core.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/interposer/CMakeFiles/eqx_interposer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
