file(REMOVE_RECURSE
  "libeqx_core.a"
)
