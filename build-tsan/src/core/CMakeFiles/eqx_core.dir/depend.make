# Empty dependencies file for eqx_core.
# This may be replaced when dependencies are built.
