file(REMOVE_RECURSE
  "libeqx_workloads.a"
)
