# Empty dependencies file for eqx_workloads.
# This may be replaced when dependencies are built.
