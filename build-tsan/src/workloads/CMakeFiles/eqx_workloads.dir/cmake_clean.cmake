file(REMOVE_RECURSE
  "CMakeFiles/eqx_workloads.dir/profiles.cc.o"
  "CMakeFiles/eqx_workloads.dir/profiles.cc.o.d"
  "CMakeFiles/eqx_workloads.dir/trace_gen.cc.o"
  "CMakeFiles/eqx_workloads.dir/trace_gen.cc.o.d"
  "libeqx_workloads.a"
  "libeqx_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
