# Empty dependencies file for eqx_noc.
# This may be replaced when dependencies are built.
