file(REMOVE_RECURSE
  "CMakeFiles/eqx_noc.dir/network.cc.o"
  "CMakeFiles/eqx_noc.dir/network.cc.o.d"
  "CMakeFiles/eqx_noc.dir/network_interface.cc.o"
  "CMakeFiles/eqx_noc.dir/network_interface.cc.o.d"
  "CMakeFiles/eqx_noc.dir/packet.cc.o"
  "CMakeFiles/eqx_noc.dir/packet.cc.o.d"
  "CMakeFiles/eqx_noc.dir/router.cc.o"
  "CMakeFiles/eqx_noc.dir/router.cc.o.d"
  "CMakeFiles/eqx_noc.dir/routing.cc.o"
  "CMakeFiles/eqx_noc.dir/routing.cc.o.d"
  "libeqx_noc.a"
  "libeqx_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
