
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cc" "src/noc/CMakeFiles/eqx_noc.dir/network.cc.o" "gcc" "src/noc/CMakeFiles/eqx_noc.dir/network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/noc/CMakeFiles/eqx_noc.dir/network_interface.cc.o" "gcc" "src/noc/CMakeFiles/eqx_noc.dir/network_interface.cc.o.d"
  "/root/repo/src/noc/packet.cc" "src/noc/CMakeFiles/eqx_noc.dir/packet.cc.o" "gcc" "src/noc/CMakeFiles/eqx_noc.dir/packet.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/noc/CMakeFiles/eqx_noc.dir/router.cc.o" "gcc" "src/noc/CMakeFiles/eqx_noc.dir/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/noc/CMakeFiles/eqx_noc.dir/routing.cc.o" "gcc" "src/noc/CMakeFiles/eqx_noc.dir/routing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
