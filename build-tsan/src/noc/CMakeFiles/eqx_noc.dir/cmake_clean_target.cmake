file(REMOVE_RECURSE
  "libeqx_noc.a"
)
