file(REMOVE_RECURSE
  "CMakeFiles/eqx_interposer.dir/link_plan.cc.o"
  "CMakeFiles/eqx_interposer.dir/link_plan.cc.o.d"
  "CMakeFiles/eqx_interposer.dir/ubump.cc.o"
  "CMakeFiles/eqx_interposer.dir/ubump.cc.o.d"
  "libeqx_interposer.a"
  "libeqx_interposer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_interposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
