file(REMOVE_RECURSE
  "libeqx_interposer.a"
)
