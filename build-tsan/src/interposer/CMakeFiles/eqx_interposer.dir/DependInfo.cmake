
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interposer/link_plan.cc" "src/interposer/CMakeFiles/eqx_interposer.dir/link_plan.cc.o" "gcc" "src/interposer/CMakeFiles/eqx_interposer.dir/link_plan.cc.o.d"
  "/root/repo/src/interposer/ubump.cc" "src/interposer/CMakeFiles/eqx_interposer.dir/ubump.cc.o" "gcc" "src/interposer/CMakeFiles/eqx_interposer.dir/ubump.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
