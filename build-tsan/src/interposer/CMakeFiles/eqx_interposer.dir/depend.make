# Empty dependencies file for eqx_interposer.
# This may be replaced when dependencies are built.
