file(REMOVE_RECURSE
  "CMakeFiles/eqx_runner.dir/job_pool.cc.o"
  "CMakeFiles/eqx_runner.dir/job_pool.cc.o.d"
  "CMakeFiles/eqx_runner.dir/jsonl.cc.o"
  "CMakeFiles/eqx_runner.dir/jsonl.cc.o.d"
  "libeqx_runner.a"
  "libeqx_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
