# Empty dependencies file for eqx_runner.
# This may be replaced when dependencies are built.
