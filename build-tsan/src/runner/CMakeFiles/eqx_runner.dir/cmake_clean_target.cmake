file(REMOVE_RECURSE
  "libeqx_runner.a"
)
