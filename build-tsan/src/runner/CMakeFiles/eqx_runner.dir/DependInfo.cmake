
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/job_pool.cc" "src/runner/CMakeFiles/eqx_runner.dir/job_pool.cc.o" "gcc" "src/runner/CMakeFiles/eqx_runner.dir/job_pool.cc.o.d"
  "/root/repo/src/runner/jsonl.cc" "src/runner/CMakeFiles/eqx_runner.dir/jsonl.cc.o" "gcc" "src/runner/CMakeFiles/eqx_runner.dir/jsonl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/eqx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
