file(REMOVE_RECURSE
  "libeqx_power.a"
)
