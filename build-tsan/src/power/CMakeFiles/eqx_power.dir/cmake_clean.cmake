file(REMOVE_RECURSE
  "CMakeFiles/eqx_power.dir/power_model.cc.o"
  "CMakeFiles/eqx_power.dir/power_model.cc.o.d"
  "libeqx_power.a"
  "libeqx_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
