# Empty dependencies file for eqx_power.
# This may be replaced when dependencies are built.
