file(REMOVE_RECURSE
  "CMakeFiles/eqx_memory.dir/hbm.cc.o"
  "CMakeFiles/eqx_memory.dir/hbm.cc.o.d"
  "libeqx_memory.a"
  "libeqx_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
