file(REMOVE_RECURSE
  "libeqx_memory.a"
)
