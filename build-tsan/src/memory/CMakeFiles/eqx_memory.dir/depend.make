# Empty dependencies file for eqx_memory.
# This may be replaced when dependencies are built.
