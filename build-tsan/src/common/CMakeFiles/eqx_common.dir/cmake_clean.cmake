file(REMOVE_RECURSE
  "CMakeFiles/eqx_common.dir/config.cc.o"
  "CMakeFiles/eqx_common.dir/config.cc.o.d"
  "CMakeFiles/eqx_common.dir/geometry.cc.o"
  "CMakeFiles/eqx_common.dir/geometry.cc.o.d"
  "CMakeFiles/eqx_common.dir/logging.cc.o"
  "CMakeFiles/eqx_common.dir/logging.cc.o.d"
  "CMakeFiles/eqx_common.dir/rng.cc.o"
  "CMakeFiles/eqx_common.dir/rng.cc.o.d"
  "CMakeFiles/eqx_common.dir/stats.cc.o"
  "CMakeFiles/eqx_common.dir/stats.cc.o.d"
  "CMakeFiles/eqx_common.dir/types.cc.o"
  "CMakeFiles/eqx_common.dir/types.cc.o.d"
  "libeqx_common.a"
  "libeqx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
