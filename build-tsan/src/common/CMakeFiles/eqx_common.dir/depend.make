# Empty dependencies file for eqx_common.
# This may be replaced when dependencies are built.
