file(REMOVE_RECURSE
  "libeqx_common.a"
)
