file(REMOVE_RECURSE
  "CMakeFiles/test_interposer.dir/interposer/test_link_plan.cc.o"
  "CMakeFiles/test_interposer.dir/interposer/test_link_plan.cc.o.d"
  "CMakeFiles/test_interposer.dir/interposer/test_ubump.cc.o"
  "CMakeFiles/test_interposer.dir/interposer/test_ubump.cc.o.d"
  "test_interposer"
  "test_interposer.pdb"
  "test_interposer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interposer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
