# Empty dependencies file for test_interposer.
# This may be replaced when dependencies are built.
