file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/test_cache_bank.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/test_cache_bank.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_mshr.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/test_mshr.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_pe.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/test_pe.cc.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_tag_array.cc.o"
  "CMakeFiles/test_gpu.dir/gpu/test_tag_array.cc.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
