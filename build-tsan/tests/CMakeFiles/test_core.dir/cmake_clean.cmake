file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_design_flow.cc.o"
  "CMakeFiles/test_core.dir/core/test_design_flow.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_eir_problem.cc.o"
  "CMakeFiles/test_core.dir/core/test_eir_problem.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_evaluation.cc.o"
  "CMakeFiles/test_core.dir/core/test_evaluation.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_hotzone.cc.o"
  "CMakeFiles/test_core.dir/core/test_hotzone.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_nqueen.cc.o"
  "CMakeFiles/test_core.dir/core/test_nqueen.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_search.cc.o"
  "CMakeFiles/test_core.dir/core/test_search.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
