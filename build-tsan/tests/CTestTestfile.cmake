# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_runner[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_interposer[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_noc[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_memory[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_gpu[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_power[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
