#include "gpu/tag_array.hh"

#include "common/logging.hh"

namespace eqx {

TagArray::TagArray(const CacheGeometry &geom)
    : geom_(geom), sets_(geom.numSets())
{
    eqx_assert(sets_ >= 1, "cache must have at least one set");
    eqx_assert(geom_.ways >= 1, "cache must have at least one way");
    eqx_assert(geom_.sizeBytes ==
                   static_cast<std::int64_t>(sets_) * geom_.ways *
                       geom_.lineBytes,
               "cache size must be sets*ways*line");
    entries_.resize(static_cast<std::size_t>(sets_ * geom_.ways));
}

TagArray::Entry *
TagArray::find(Addr line)
{
    int set = setOf(line);
    for (int w = 0; w < geom_.ways; ++w) {
        auto &e = entries_[static_cast<std::size_t>(set * geom_.ways + w)];
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

const TagArray::Entry *
TagArray::find(Addr line) const
{
    return const_cast<TagArray *>(this)->find(line);
}

bool
TagArray::contains(Addr line) const
{
    return find(line) != nullptr;
}

bool
TagArray::probe(Addr line)
{
    ++clock_;
    Entry *e = find(line);
    if (e) {
        e->lru = clock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

TagArray::Victim
TagArray::insert(Addr line, bool dirty)
{
    ++clock_;
    eqx_assert(!contains(line), "inserting a line already present");
    int set = setOf(line);
    Entry *slot = nullptr;
    for (int w = 0; w < geom_.ways; ++w) {
        auto &e = entries_[static_cast<std::size_t>(set * geom_.ways + w)];
        if (!e.valid) {
            slot = &e;
            break;
        }
        if (!slot || e.lru < slot->lru)
            slot = &e;
    }
    Victim v;
    if (slot->valid) {
        v.valid = true;
        v.line = slot->line;
        v.dirty = slot->dirty;
    }
    slot->valid = true;
    slot->line = line;
    slot->dirty = dirty;
    slot->lru = clock_;
    return v;
}

bool
TagArray::markDirty(Addr line)
{
    Entry *e = find(line);
    if (!e)
        return false;
    e->dirty = true;
    return true;
}

bool
TagArray::invalidate(Addr line, bool *was_dirty)
{
    Entry *e = find(line);
    if (!e)
        return false;
    if (was_dirty)
        *was_dirty = e->dirty;
    e->valid = false;
    e->dirty = false;
    return true;
}

} // namespace eqx
