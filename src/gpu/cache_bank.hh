/**
 * @file
 * Last-level cache bank (CB): the few side of the many-to-few-to-many
 * pattern. Ejects request packets from the request network through a
 * finite input queue, services them against a real L2 slice with MSHR
 * merging, fetches misses from its HBM stack, and injects reply
 * packets into the reply network through a finite reply queue — the
 * two finite queues propagate reply-injection backpressure into the
 * request network (the paper's parking-lot effect, Section 6.4).
 */

#ifndef EQX_GPU_CACHE_BANK_HH
#define EQX_GPU_CACHE_BANK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/endpoint.hh"
#include "gpu/tag_array.hh"
#include "memory/hbm.hh"
#include "noc/network_interface.hh"
#include "noc/params.hh"

namespace eqx {

/** CB microarchitecture parameters (paper Table 1 defaults). */
struct CbParams
{
    CacheGeometry l2{2 * 1024 * 1024, 64, 16}; ///< 2 MB per bank
    int mshrs = 32;
    int targetsPerMshr = 8;
    int inputQueuePackets = 8;
    int replyQueuePackets = 16;
    int l2HitLatency = 8;
    int requestsPerCycle = 1;
    HbmParams hbm;
};

/**
 * Coherence-style traffic knobs (traffic model "coherence"): the bank
 * tracks a sharer set per cache-line region and multicasts Invalidate
 * packets on writes to regions with other sharers. Derived from the
 * TrafficConfig by System (never set directly), so it is hashed via
 * the traffic.* digest keys rather than here.
 */
struct CoherenceParams
{
    int regionLines = 4; ///< cache lines per tracked region
};

/** One L2 bank with its memory controller and HBM stack. */
class CacheBank : public PacketSink
{
  public:
    CacheBank(NodeId node, const CbParams &params,
              PacketInjector *reply_injector, const PacketSizes *sizes);

    NodeId node() const { return node_; }

    /** Arm the sharer-set directory (coherence-style traffic). */
    void
    enableCoherence(const CoherenceParams &cp)
    {
        cohEnabled_ = true;
        coh_ = cp;
    }

    std::uint64_t invalidationsSent() const { return invSent_; }
    std::uint64_t invAcksReceived() const { return invAcks_; }

    /** Advance one core cycle. */
    void tick(Cycle now);

    /** No queued work anywhere in the bank. */
    bool drained() const;

    /**
     * Earliest core cycle after @p now at which this bank does real
     * work (global time wheel, DESIGN.md §14). Queued packets and
     * writebacks need a tick every cycle; an otherwise-empty bank is
     * due at its first L2 hit-pipeline completion or whenever its HBM
     * stack is. kNeverCycle when drained (woken only by accept()).
     */
    Cycle nextDueCycle(Cycle now) const;

    const TagArray &l2() const { return l2_; }
    const HbmStack &hbm() const { return hbm_; }
    const StatGroup &stats() const { return stats_; }

    // PacketSink (request ejection side).
    bool canAccept(const PacketPtr &pkt) override;
    void accept(const PacketPtr &pkt, Cycle core_now) override;

  private:
    struct DelayedReply
    {
        Cycle dueAt;
        PacketPtr reply;
    };

    /** Service the request at the input queue head; false = stall. */
    bool processRequest(const PacketPtr &req, Cycle now);

    /** Directory bookkeeping for one accepted request. */
    void updateSharers(const PacketPtr &req);

    PacketPtr makeReply(const PacketPtr &req) const;
    void onMemComplete(const MemRequest &mreq, Cycle now);

    NodeId node_;
    CbParams params_;
    PacketInjector *replyInjector_;
    const PacketSizes *sizes_;

    TagArray l2_;
    HbmStack hbm_;

    std::deque<PacketPtr> inputQueue_;
    std::deque<DelayedReply> hitPipeline_; ///< replies in the L2 pipeline
    std::deque<PacketPtr> replyQueue_;     ///< awaiting NoC injection
    std::deque<Addr> writebackQueue_;      ///< dirty victims to memory

    /** Outstanding misses: line -> requests merged onto the fetch. */
    std::map<Addr, std::vector<PacketPtr>> missTable_;

    // Coherence-style traffic (enableCoherence): region sharer sets
    // and the Invalidate fan-out awaiting reply-network injection.
    bool cohEnabled_ = false;
    CoherenceParams coh_;
    std::map<Addr, std::set<NodeId>> sharers_;
    std::deque<PacketPtr> invQueue_;
    std::uint64_t invSent_ = 0;
    std::uint64_t invAcks_ = 0;

    StatGroup stats_;
};

} // namespace eqx

#endif // EQX_GPU_CACHE_BANK_HH
