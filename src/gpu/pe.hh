/**
 * @file
 * Processing element (streaming multiprocessor) model: issues a
 * profile-driven instruction stream, filters memory operations through
 * a real L1 cache with MSHR merging, and tolerates memory latency up
 * to a bounded number of outstanding requests — the many side of the
 * many-to-few-to-many pattern.
 */

#ifndef EQX_GPU_PE_HH
#define EQX_GPU_PE_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/endpoint.hh"
#include "gpu/mshr.hh"
#include "gpu/tag_array.hh"
#include "noc/network_interface.hh"
#include "noc/params.hh"
#include "traffic/source.hh"
#include "workloads/trace_gen.hh"

namespace eqx {

/** PE microarchitecture parameters (paper Table 1 defaults). */
struct PeParams
{
    CacheGeometry l1{16 * 1024, 64, 4}; ///< 16 KB L1 per PE
    int l1Mshrs = 16;
    int l1TargetsPerMshr = 8;
    int maxOutstanding = 32; ///< latency-tolerance window
    int issueWidth = 2;      ///< instructions issued per cycle
};

/** One PE. Also the PacketSink for replies delivered at its node. */
class ProcessingElement : public PacketSink
{
  public:
    /** Drive the PE from any closed-loop traffic source. */
    ProcessingElement(NodeId node, const PeParams &params,
                      std::unique_ptr<TrafficSource> trace,
                      const AddressMap *amap, PacketInjector *injector,
                      const PacketSizes *sizes);

    /** Legacy convenience: wrap a PeTraceGen (the synthetic default). */
    ProcessingElement(NodeId node, const PeParams &params,
                      PeTraceGen trace, const AddressMap *amap,
                      PacketInjector *injector, const PacketSizes *sizes);

    NodeId node() const { return node_; }

    /** Advance one core cycle. */
    void tick(Cycle now);

    /** Stream exhausted and every outstanding access returned. */
    bool done() const;

    /**
     * Earliest core cycle after @p now at which this PE does real
     * work (global time wheel, DESIGN.md §14): the next cycle while
     * it still has instructions to issue or retry; kNeverCycle once
     * the stream is exhausted or the outstanding window is full —
     * tick() is then a guaranteed no-op until a reply arrives, and a
     * reply in flight means the network reports work of its own.
     * (The stall_window stat consequently counts only *stepped*
     * stalled cycles; it is not part of the exported determinism
     * contract.)
     */
    Cycle
    nextDueCycle(Cycle now) const
    {
        if (!pendingAcks_.empty())
            return now + 1; // an ack retry never depends on a reply
        if (outstanding_ >= params_.maxOutstanding)
            return kNeverCycle;
        if (trace_->remaining() != 0 || havePending_)
            return now + 1;
        return kNeverCycle;
    }

    std::uint64_t instsIssued() const { return instsIssued_; }
    int outstanding() const { return outstanding_; }
    const TagArray &l1() const { return l1_; }
    const StatGroup &stats() const { return stats_; }

    // PacketSink: replies are always consumed immediately.
    bool canAccept(const PacketPtr &pkt) override;
    void accept(const PacketPtr &pkt, Cycle core_now) override;

  private:
    /** Try to complete the pending memory op; false = stall. */
    bool processPendingMem();

    NodeId node_;
    PeParams params_;
    std::unique_ptr<TrafficSource> trace_;
    const AddressMap *amap_;
    PacketInjector *injector_;
    const PacketSizes *sizes_;

    TagArray l1_;
    MshrTable l1Mshr_;
    int outstanding_ = 0;

    bool havePending_ = false;
    TraceOp pending_;

    /** Coherence: InvAcks awaiting injection (fire-and-forget). */
    std::deque<PacketPtr> pendingAcks_;

    std::uint64_t instsIssued_ = 0;
    StatGroup stats_;
};

} // namespace eqx

#endif // EQX_GPU_PE_HH
