/**
 * @file
 * Miss Status Holding Registers with target merging: concurrent misses
 * to the same line share one entry; per-entry target lists bound the
 * merge fan-in.
 */

#ifndef EQX_GPU_MSHR_HH
#define EQX_GPU_MSHR_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace eqx {

/** MSHR table keyed by line address. */
class MshrTable
{
  public:
    MshrTable(int entries, int targets_per_entry)
        : maxEntries_(entries), maxTargets_(targets_per_entry)
    {}

    /** Outcome of an allocation attempt. */
    enum class Alloc
    {
        NewEntry, ///< first miss to the line: fetch must be issued
        Merged,   ///< appended to an existing entry's target list
        Full,     ///< table or target list full: retry later
    };

    /** Try to record a miss for @p line carrying opaque @p target. */
    Alloc allocate(Addr line, std::uint64_t target);

    /** Is a fetch for this line already pending? */
    bool pending(Addr line) const { return table_.count(line) > 0; }

    /** Complete a fetch: pops and returns all merged targets. */
    std::vector<std::uint64_t> complete(Addr line);

    int occupancy() const { return static_cast<int>(table_.size()); }
    bool full() const { return occupancy() >= maxEntries_; }
    int maxEntries() const { return maxEntries_; }
    int maxTargets() const { return maxTargets_; }

  private:
    int maxEntries_;
    int maxTargets_;
    std::map<Addr, std::vector<std::uint64_t>> table_;
};

} // namespace eqx

#endif // EQX_GPU_MSHR_HH
