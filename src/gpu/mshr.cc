#include "gpu/mshr.hh"

#include "common/logging.hh"

namespace eqx {

MshrTable::Alloc
MshrTable::allocate(Addr line, std::uint64_t target)
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        if (static_cast<int>(it->second.size()) >= maxTargets_)
            return Alloc::Full;
        it->second.push_back(target);
        return Alloc::Merged;
    }
    if (full())
        return Alloc::Full;
    table_[line].push_back(target);
    return Alloc::NewEntry;
}

std::vector<std::uint64_t>
MshrTable::complete(Addr line)
{
    auto it = table_.find(line);
    eqx_assert(it != table_.end(), "completing a non-pending MSHR line");
    std::vector<std::uint64_t> targets = std::move(it->second);
    table_.erase(it);
    return targets;
}

} // namespace eqx
