#include "gpu/cache_bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

CacheBank::CacheBank(NodeId node, const CbParams &params,
                     PacketInjector *reply_injector,
                     const PacketSizes *sizes)
    : node_(node), params_(params), replyInjector_(reply_injector),
      sizes_(sizes), l2_(params.l2),
      hbm_(params.hbm,
           [this](const MemRequest &r, Cycle now) { onMemComplete(r, now); })
{
    eqx_assert(replyInjector_ && sizes_, "cache bank needs its context");
}

bool
CacheBank::canAccept(const PacketPtr &pkt)
{
    eqx_assert(isRequest(pkt->type), "CB only sinks request packets");
    if (pkt->type == PacketType::InvAck)
        return true; // disposed on accept, never queued
    return static_cast<int>(inputQueue_.size()) <
           params_.inputQueuePackets;
}

void
CacheBank::updateSharers(const PacketPtr &req)
{
    Addr line = req->addr / static_cast<Addr>(params_.l2.lineBytes);
    Addr region = line / static_cast<Addr>(coh_.regionLines);
    auto &set = sharers_[region];
    if (req->type == PacketType::ReadRequest) {
        set.insert(req->src);
        return;
    }
    // Write: multicast Invalidate to every other sharer, then collapse
    // ownership to the writer. The protocol is relaxed (the write does
    // not wait for acks) — it reproduces MESI's traffic, not its
    // consistency guarantees.
    for (NodeId sharer : set) {
        if (sharer == req->src)
            continue;
        invQueue_.push_back(makePacket(PacketType::Invalidate, node_,
                                       sharer, sizes_->invalidateBits,
                                       req->addr, req->tag));
        ++invSent_;
        stats_.inc("invalidations_sent");
    }
    set.clear();
    set.insert(req->src);
}

void
CacheBank::accept(const PacketPtr &pkt, Cycle)
{
    if (pkt->type == PacketType::InvAck) {
        ++invAcks_;
        stats_.inc("inv_acks_received");
        return;
    }
    if (cohEnabled_)
        updateSharers(pkt);
    inputQueue_.push_back(pkt);
    stats_.inc(pkt->type == PacketType::ReadRequest ? "read_requests"
                                                    : "write_requests");
}

PacketPtr
CacheBank::makeReply(const PacketPtr &req) const
{
    bool is_read = req->type == PacketType::ReadRequest;
    return makePacket(is_read ? PacketType::ReadReply
                              : PacketType::WriteReply,
                      node_, req->src,
                      is_read ? sizes_->readReplyBits
                              : sizes_->writeReplyBits,
                      req->addr, req->tag);
}

bool
CacheBank::processRequest(const PacketPtr &req, Cycle now)
{
    Addr line = req->addr / static_cast<Addr>(params_.l2.lineBytes);
    bool is_write = req->type == PacketType::WriteRequest;

    if (l2_.probe(line)) {
        // Hit path gated by the reply queue: model the backpressure of
        // a stalled reply injection point.
        if (static_cast<int>(replyQueue_.size()) +
                static_cast<int>(hitPipeline_.size()) >=
            params_.replyQueuePackets) {
            stats_.inc("stall_reply_queue");
            return false;
        }
        if (is_write)
            l2_.markDirty(line);
        hitPipeline_.push_back(
            {now + static_cast<Cycle>(params_.l2HitLatency),
             makeReply(req)});
        stats_.inc(is_write ? "l2_write_hits" : "l2_read_hits");
        return true;
    }

    // Miss path: merge onto an in-flight fetch or start a new one.
    auto it = missTable_.find(line);
    if (it != missTable_.end()) {
        if (static_cast<int>(it->second.size()) >=
            params_.targetsPerMshr) {
            stats_.inc("stall_mshr_targets");
            return false;
        }
        it->second.push_back(req);
        stats_.inc("l2_miss_merges");
        return true;
    }
    if (static_cast<int>(missTable_.size()) >= params_.mshrs) {
        stats_.inc("stall_mshr_full");
        return false;
    }
    if (!hbm_.canEnqueue(req->addr)) {
        stats_.inc("stall_hbm_queue");
        return false;
    }
    hbm_.enqueue(MemRequest{req->addr, /*write=*/false, line}, now);
    missTable_[line].push_back(req);
    stats_.inc(is_write ? "l2_write_misses" : "l2_read_misses");
    return true;
}

void
CacheBank::onMemComplete(const MemRequest &mreq, Cycle)
{
    if (mreq.write) {
        stats_.inc("writebacks_done");
        return;
    }
    Addr line = mreq.tag;
    if (!l2_.contains(line)) {
        auto victim = l2_.insert(line, /*dirty=*/false);
        if (victim.valid && victim.dirty)
            writebackQueue_.push_back(victim.line);
    }
    auto it = missTable_.find(line);
    eqx_assert(it != missTable_.end(), "fill for unknown miss line");
    for (const auto &req : it->second) {
        if (req->type == PacketType::WriteRequest)
            l2_.markDirty(line);
        // Fills bypass the reply-queue cap: their population is bounded
        // by mshrs x targetsPerMshr, so the queue stays finite.
        replyQueue_.push_back(makeReply(req));
    }
    missTable_.erase(it);
    stats_.inc("fills");
}

void
CacheBank::tick(Cycle now)
{
    hbm_.tick(now);

    // Retry dirty-victim writebacks.
    while (!writebackQueue_.empty()) {
        Addr line = writebackQueue_.front();
        Addr addr = line * static_cast<Addr>(params_.l2.lineBytes);
        if (!hbm_.canEnqueue(addr))
            break;
        hbm_.enqueue(MemRequest{addr, /*write=*/true, 0}, now);
        writebackQueue_.pop_front();
    }

    // L2 pipeline -> reply queue.
    while (!hitPipeline_.empty() && hitPipeline_.front().dueAt <= now) {
        replyQueue_.push_back(hitPipeline_.front().reply);
        hitPipeline_.pop_front();
    }

    // Reply queue -> reply network. Scan past a blocked head so that a
    // single full NI (e.g. one DA2Mesh subnet) does not stall replies
    // bound for the others; replies to distinct PEs are unordered.
    constexpr int kDrainScan = 8;
    int scanned = 0;
    for (auto it = replyQueue_.begin();
         it != replyQueue_.end() && scanned < kDrainScan; ++scanned) {
        if (replyInjector_->tryInject(*it)) {
            it = replyQueue_.erase(it);
            stats_.inc("replies_injected");
        } else {
            ++it;
        }
    }

    // Invalidate fan-out -> reply network, behind the replies (the
    // same blocked-head scan; invalidations to distinct PEs are
    // unordered).
    scanned = 0;
    for (auto it = invQueue_.begin();
         it != invQueue_.end() && scanned < kDrainScan; ++scanned) {
        if (replyInjector_->tryInject(*it)) {
            it = invQueue_.erase(it);
            stats_.inc("invalidations_injected");
        } else {
            ++it;
        }
    }

    // Service requests.
    for (int i = 0; i < params_.requestsPerCycle; ++i) {
        if (inputQueue_.empty())
            break;
        if (!processRequest(inputQueue_.front(), now))
            break; // structural stall: head blocks the queue
        inputQueue_.pop_front();
    }
}

bool
CacheBank::drained() const
{
    return inputQueue_.empty() && hitPipeline_.empty() &&
           replyQueue_.empty() && writebackQueue_.empty() &&
           missTable_.empty() && invQueue_.empty() &&
           hbm_.outstanding() == 0;
}

Cycle
CacheBank::nextDueCycle(Cycle now) const
{
    // Queued packets retry every cycle (their stalls clear on events
    // inside other components: NoC credits, MSHR frees, HBM queue
    // space), so any backlog pins the bank to the next cycle.
    if (!inputQueue_.empty() || !replyQueue_.empty() ||
        !writebackQueue_.empty() || !invQueue_.empty())
        return now + 1;
    Cycle due = hbm_.nextDueCycle(now);
    if (!hitPipeline_.empty())
        due = std::min(due, std::max(hitPipeline_.front().dueAt, now + 1));
    // missTable_ entries always have their fetch inside hbm_, so the
    // stack's due cycle covers them.
    return due;
}

} // namespace eqx
