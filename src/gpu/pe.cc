#include "gpu/pe.hh"

#include "common/logging.hh"

namespace eqx {

ProcessingElement::ProcessingElement(NodeId node, const PeParams &params,
                                     std::unique_ptr<TrafficSource> trace,
                                     const AddressMap *amap,
                                     PacketInjector *injector,
                                     const PacketSizes *sizes)
    : node_(node), params_(params), trace_(std::move(trace)), amap_(amap),
      injector_(injector), sizes_(sizes), l1_(params.l1),
      l1Mshr_(params.l1Mshrs, params.l1TargetsPerMshr)
{
    eqx_assert(trace_ != nullptr, "PE needs a traffic source");
    eqx_assert(amap_ && injector_ && sizes_, "PE needs its context");
}

ProcessingElement::ProcessingElement(NodeId node, const PeParams &params,
                                     PeTraceGen trace,
                                     const AddressMap *amap,
                                     PacketInjector *injector,
                                     const PacketSizes *sizes)
    : ProcessingElement(node, params,
                        std::make_unique<SyntheticSource>(std::move(trace)),
                        amap, injector, sizes)
{
}

bool
ProcessingElement::processPendingMem()
{
    Addr line = amap_->lineOf(pending_.addr);

    if (!pending_.isWrite) {
        if (l1_.probe(line)) {
            stats_.inc("l1_read_hits");
            return true;
        }
        if (l1Mshr_.pending(line)) {
            auto r = l1Mshr_.allocate(line, 0);
            if (r == MshrTable::Alloc::Full) {
                stats_.inc("stall_mshr_targets");
                return false;
            }
            ++outstanding_;
            stats_.inc("l1_read_merges");
            return true;
        }
        if (l1Mshr_.full()) {
            stats_.inc("stall_mshr_full");
            return false;
        }
        PacketPtr pkt = makePacket(
            PacketType::ReadRequest, node_, amap_->cbNodeOf(pending_.addr),
            sizes_->readRequestBits, pending_.addr);
        if (!injector_->tryInject(pkt)) {
            stats_.inc("stall_inject");
            return false;
        }
        auto r = l1Mshr_.allocate(line, 0);
        eqx_assert(r == MshrTable::Alloc::NewEntry,
                   "expected a fresh MSHR entry");
        ++outstanding_;
        stats_.inc("l1_read_misses");
        return true;
    }

    // Write-through, no-allocate L1 (GPU-typical): every store goes to
    // the L2 bank; the write reply closes the outstanding window slot.
    PacketPtr pkt = makePacket(
        PacketType::WriteRequest, node_, amap_->cbNodeOf(pending_.addr),
        sizes_->writeRequestBits, pending_.addr);
    if (!injector_->tryInject(pkt)) {
        stats_.inc("stall_inject");
        return false;
    }
    if (l1_.contains(line))
        l1_.probe(line); // keep LRU state coherent with the update
    ++outstanding_;
    stats_.inc("writes_issued");
    return true;
}

void
ProcessingElement::tick(Cycle)
{
    // Coherence acks first: fire-and-forget control packets that must
    // not be starved by the issue loop's structural stalls.
    while (!pendingAcks_.empty()) {
        if (!injector_->tryInject(pendingAcks_.front())) {
            stats_.inc("stall_ack_inject");
            break;
        }
        pendingAcks_.pop_front();
        stats_.inc("inv_acks_sent");
    }
    for (int slot = 0; slot < params_.issueWidth; ++slot) {
        if (outstanding_ >= params_.maxOutstanding) {
            stats_.inc("stall_window");
            return;
        }
        if (!havePending_) {
            if (!trace_->next(pending_))
                return; // stream exhausted
            havePending_ = true;
        }
        if (!pending_.isMem) {
            ++instsIssued_;
            havePending_ = false;
            continue;
        }
        if (!processPendingMem())
            return; // structural stall: retry the same op next cycle
        ++instsIssued_;
        havePending_ = false;
    }
}

bool
ProcessingElement::done() const
{
    return trace_->remaining() == 0 && !havePending_ &&
           outstanding_ == 0 && pendingAcks_.empty();
}

bool
ProcessingElement::canAccept(const PacketPtr &)
{
    return true; // PEs always sink replies (guaranteed reply drain)
}

void
ProcessingElement::accept(const PacketPtr &pkt, Cycle)
{
    if (pkt->type == PacketType::ReadReply) {
        Addr line = amap_->lineOf(pkt->addr);
        auto targets = l1Mshr_.complete(line);
        eqx_assert(!targets.empty(), "read reply with no MSHR targets");
        if (!l1_.contains(line))
            l1_.insert(line, /*dirty=*/false); // write-through: clean
        outstanding_ -= static_cast<int>(targets.size());
        stats_.inc("read_replies");
    } else if (pkt->type == PacketType::WriteReply) {
        --outstanding_;
        stats_.inc("write_replies");
    } else if (pkt->type == PacketType::Invalidate) {
        // Coherence: drop the line and answer with a fire-and-forget
        // InvAck back to the CB. Not part of the outstanding window —
        // invalidations are unsolicited.
        Addr line = amap_->lineOf(pkt->addr);
        l1_.invalidate(line);
        stats_.inc("invalidations_received");
        pendingAcks_.push_back(makePacket(PacketType::InvAck, node_,
                                          pkt->src, sizes_->invAckBits,
                                          pkt->addr, pkt->tag));
        return; // no outstanding-window bookkeeping for control flows
    } else {
        eqx_panic("PE received a request packet");
    }
    eqx_assert(outstanding_ >= 0, "outstanding underflow at PE ", node_);
}

} // namespace eqx
