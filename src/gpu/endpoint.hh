/**
 * @file
 * Endpoint-side plumbing shared by PEs and cache banks: the injector
 * interface into whatever network scheme the system instantiated, and
 * the static address-to-cache-bank map.
 */

#ifndef EQX_GPU_ENDPOINT_HH
#define EQX_GPU_ENDPOINT_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/packet.hh"

namespace eqx {

/**
 * Abstracts "send this packet into the right network": the scheme
 * decides between request/reply networks, CMesh overlay, or DA2Mesh
 * subnets. Returns false when the NI cannot take the packet now.
 */
class PacketInjector
{
  public:
    virtual ~PacketInjector() = default;
    virtual bool tryInject(const PacketPtr &pkt) = 0;
};

/** Line-interleaved mapping of physical addresses to cache banks. */
struct AddressMap
{
    int lineBytes = 64;
    std::vector<NodeId> cbNodes;

    int
    cbIndexOf(Addr addr) const
    {
        eqx_assert(!cbNodes.empty(), "address map has no cache banks");
        return static_cast<int>(
            (addr / static_cast<Addr>(lineBytes)) %
            static_cast<Addr>(cbNodes.size()));
    }

    NodeId
    cbNodeOf(Addr addr) const
    {
        return cbNodes[static_cast<std::size_t>(cbIndexOf(addr))];
    }

    Addr
    lineOf(Addr addr) const
    {
        return addr / static_cast<Addr>(lineBytes);
    }
};

} // namespace eqx

#endif // EQX_GPU_ENDPOINT_HH
