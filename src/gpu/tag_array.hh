/**
 * @file
 * Set-associative tag array with true-LRU replacement, shared by the
 * PE L1 caches and the L2 cache banks.
 */

#ifndef EQX_GPU_TAG_ARRAY_HH
#define EQX_GPU_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace eqx {

/** Geometry of one cache structure. */
struct CacheGeometry
{
    std::int64_t sizeBytes = 16 * 1024;
    int lineBytes = 64;
    int ways = 4;

    int numSets() const
    {
        return static_cast<int>(sizeBytes / (lineBytes * ways));
    }
};

/** Tag store with LRU; operates on line addresses (addr / lineBytes). */
class TagArray
{
  public:
    explicit TagArray(const CacheGeometry &geom);

    /** Result of an insertion: the evicted victim, if any. */
    struct Victim
    {
        bool valid = false;
        Addr line = 0;
        bool dirty = false;
    };

    /** True if the line is present (no LRU update). */
    bool contains(Addr line) const;

    /** Present + LRU touch. */
    bool probe(Addr line);

    /** Insert a line (must not be present); returns the victim. */
    Victim insert(Addr line, bool dirty);

    /** Mark an existing line dirty; false if absent. */
    bool markDirty(Addr line);

    /** Invalidate a line if present; returns whether it was dirty. */
    bool invalidate(Addr line, bool *was_dirty = nullptr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const CacheGeometry &geometry() const { return geom_; }

  private:
    struct Entry
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    int setOf(Addr line) const
    {
        return static_cast<int>(line % static_cast<Addr>(sets_));
    }
    Entry *find(Addr line);
    const Entry *find(Addr line) const;

    CacheGeometry geom_;
    int sets_;
    std::vector<Entry> entries_; ///< sets_ x ways, row-major
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace eqx

#endif // EQX_GPU_TAG_ARRAY_HH
