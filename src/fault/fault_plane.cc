#include "fault/fault_plane.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

FaultPlane::FaultPlane(const FaultConfig &cfg, std::string net_name,
                       FaultPlaneHost *host)
    : cfg_(cfg), net_(std::move(net_name)), host_(host)
{
    eqx_assert(host_ != nullptr, "fault plane needs a host");
    eqx_assert(cfg_.retxTimeout >= 1, "retxTimeout must be >= 1 tick");
    if (cfg_.retxTimeoutCap < cfg_.retxTimeout)
        cfg_.retxTimeoutCap = cfg_.retxTimeout;
}

int
FaultPlane::addWire(NodeId ni, int buf, NodeId router, bool interposer,
                    int span_hops, Cycle credit_latency)
{
    Wire w;
    w.ni = ni;
    w.buf = buf;
    w.router = router;
    w.interposer = interposer;
    w.spanHops = span_hops;
    w.creditLatency = credit_latency >= 1 ? credit_latency : 1;
    wires_.push_back(w);
    return static_cast<int>(wires_.size()) - 1;
}

int
FaultPlane::findWire(NodeId ni, int buf) const
{
    for (std::size_t i = 0; i < wires_.size(); ++i)
        if (wires_[i].ni == ni && wires_[i].buf == buf)
            return static_cast<int>(i);
    return -1;
}

void
FaultPlane::finalize(std::uint64_t seed)
{
    eqx_assert(schedule_.empty() && nextEvent_ == 0,
               "fault plane finalized twice");

    // Explicit events first: filter by network, resolve wire targets.
    for (const FaultEvent &src : cfg_.events) {
        if (!src.net.empty() && src.net != net_)
            continue;
        FaultEvent e = src;
        if (e.wire == FaultEvent::kAnyInterposerWire) {
            e.wire = -1;
            for (std::size_t i = 0; i < wires_.size(); ++i) {
                if (wires_[i].interposer) {
                    e.wire = static_cast<int>(i);
                    break;
                }
            }
            if (e.wire < 0)
                continue; // no interposer wire on this network
        } else if (e.wire < 0) {
            e.wire = findWire(e.ni, e.buf);
            if (e.wire < 0)
                continue; // structure absent on this network
        }
        eqx_assert(e.wire < static_cast<int>(wires_.size()),
                   "fault event wire out of range");
        schedule_.push_back(std::move(e));
    }

    std::vector<FaultWireDesc> descs;
    descs.reserve(wires_.size());
    for (const Wire &w : wires_)
        descs.push_back({w.ni, w.buf, w.router, w.interposer, w.spanHops});
    for (FaultEvent &e : generateFaultSchedule(cfg_, descs, seed))
        schedule_.push_back(std::move(e));

    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.tick < b.tick;
                     });
}

void
FaultPlane::killWire(int wi, Cycle now)
{
    Wire &w = wires_[static_cast<std::size_t>(wi)];
    if (w.killed)
        return;
    w.killed = true;
    ++stats_.killEvents;
    // Detection is not instant: the NI keeps dispatching to the dead
    // port for detectLatency ticks (those worms drop and retransmit),
    // then masks it and redistributes.
    Cycle detect = cfg_.detectLatency >= 1 ? cfg_.detectLatency : 1;
    PlaneEvent pe;
    pe.kind = PlaneEvent::Kind::MaskBuffer;
    pe.ni = w.ni;
    pe.buf = w.buf;
    due_[now + detect].push_back(pe);
}

void
FaultPlane::applyEvent(const FaultEvent &e, Cycle now)
{
    int wi = e.wire;
    if (wi < 0)
        wi = findWire(e.ni, e.buf);
    if (wi < 0 || wi >= static_cast<int>(wires_.size()))
        return;
    Wire &w = wires_[static_cast<std::size_t>(wi)];
    switch (e.kind) {
      case FaultKind::TransientStall: {
        Cycle dur = e.duration >= 1 ? e.duration : 1;
        w.stallUntil = std::max(w.stallUntil, now + dur);
        ++stats_.stallEvents;
        break;
      }
      case FaultKind::TransientCorrupt:
        w.corruptWormsLeft += e.worms >= 1 ? e.worms : 1;
        ++stats_.corruptEvents;
        break;
      case FaultKind::PermanentLinkKill:
        killWire(wi, now);
        break;
      case FaultKind::PermanentRouterInjKill:
        // The router's injection front end dies: every registered wire
        // terminating there goes with it.
        for (std::size_t i = 0; i < wires_.size(); ++i)
            if (wires_[i].router == w.router)
                killWire(static_cast<int>(i), now);
        break;
    }
}

void
FaultPlane::tick(Cycle now)
{
    while (nextEvent_ < schedule_.size() &&
           schedule_[nextEvent_].tick <= now)
        applyEvent(schedule_[nextEvent_++], now);

    auto it = due_.begin();
    while (it != due_.end() && it->first <= now) {
        for (const PlaneEvent &pe : it->second) {
            switch (pe.kind) {
              case PlaneEvent::Kind::Ack:
                ++stats_.acks;
                host_->faultDeliverAck(pe.ni, pe.peer, pe.seq);
                break;
              case PlaneEvent::Kind::CreditReturn:
                ++stats_.creditsReconciled;
                host_->faultReturnCredit(pe.ni, pe.buf, pe.vc);
                break;
              case PlaneEvent::Kind::MaskBuffer:
                ++stats_.maskEvents;
                host_->faultMaskBuffer(pe.ni, pe.buf);
                break;
            }
        }
        it = due_.erase(it);
    }
}

void
FaultPlane::touchFlit(int wi, Flit &f)
{
    Wire &w = wires_[static_cast<std::size_t>(wi)];
    if (f.isHead) {
        // Drop decisions are taken at worm boundaries only: a fault
        // arming mid-worm lets the in-flight worm finish.
        w.dropWorm = w.killed || w.corruptWormsLeft > 0;
        if (w.dropWorm && !w.killed)
            --w.corruptWormsLeft;
    }
    if (w.dropWorm)
        f.fcs ^= 0x5a5a; // the corruption the checksum then detects
}

void
FaultPlane::onChecksumDrop(int wi, const Flit &f, Cycle now)
{
    const Wire &w = wires_[static_cast<std::size_t>(wi)];
    ++stats_.flitsDropped;
    if (f.isHead)
        ++stats_.wormsDropped;
    // Credit reconciliation: the sender debited a credit for this flit
    // but the router never buffered it, so no credit will ever come
    // back in-band. Restore it after the wire's round-trip latency or
    // the VC leaks a slot per drop and eventually deadlocks.
    PlaneEvent pe;
    pe.kind = PlaneEvent::Kind::CreditReturn;
    pe.ni = w.ni;
    pe.buf = w.buf;
    pe.vc = f.vc;
    due_[now + w.creditLatency].push_back(pe);
}

void
FaultPlane::scheduleAck(NodeId to, NodeId peer, std::uint32_t seq,
                        Cycle now)
{
    Cycle lat = cfg_.ackLatency >= 1 ? cfg_.ackLatency : 1;
    PlaneEvent pe;
    pe.kind = PlaneEvent::Kind::Ack;
    pe.ni = to;
    pe.peer = peer;
    pe.seq = seq;
    due_[now + lat].push_back(pe);
}

} // namespace eqx
