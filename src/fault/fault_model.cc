#include "fault/fault_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "interposer/ubump.hh"

namespace eqx {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::TransientStall:
        return "stall";
      case FaultKind::TransientCorrupt:
        return "corrupt";
      case FaultKind::PermanentLinkKill:
        return "link_kill";
      case FaultKind::PermanentRouterInjKill:
        return "router_kill";
    }
    return "?";
}

bool
parseFaultKinds(const std::string &spec, std::uint32_t &kinds_out)
{
    std::uint32_t kinds = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        if (tok == "stall")
            kinds |= faultBit(FaultKind::TransientStall);
        else if (tok == "corrupt")
            kinds |= faultBit(FaultKind::TransientCorrupt);
        else if (tok == "link_kill")
            kinds |= faultBit(FaultKind::PermanentLinkKill);
        else if (tok == "router_kill")
            kinds |= faultBit(FaultKind::PermanentRouterInjKill);
        else if (tok == "transient")
            kinds |= kTransientFaultKinds;
        else if (tok == "permanent")
            kinds |= kPermanentFaultKinds;
        else if (tok == "all")
            kinds |= kAllFaultKinds;
        else
            return false;
    }
    kinds_out = kinds;
    return true;
}

std::vector<FaultEvent>
generateFaultSchedule(const FaultConfig &cfg,
                      const std::vector<FaultWireDesc> &wires,
                      std::uint64_t seed)
{
    std::vector<FaultEvent> out;
    if (cfg.ratePerKTick <= 0 || wires.empty() || cfg.kinds == 0 ||
        cfg.horizonTicks == 0)
        return out;

    // Domain-separated streams: count, times, kinds and wire picks
    // each consume their own fork, so e.g. adding a kind to the mask
    // does not shift every event time.
    Rng base(seed);
    Rng countRng = base.fork();
    Rng timeRng = base.fork();
    Rng kindRng = base.fork();
    Rng wireRng = base.fork();

    double expected = cfg.ratePerKTick *
                      static_cast<double>(cfg.horizonTicks) / 1000.0;
    auto n = static_cast<std::uint64_t>(std::floor(expected));
    if (countRng.nextDouble() < expected - std::floor(expected))
        ++n;

    std::vector<FaultKind> kinds;
    for (int k = 0; k < 4; ++k)
        if (cfg.kinds & (std::uint32_t{1} << k))
            kinds.push_back(static_cast<FaultKind>(k));

    // Physical-exposure weights: an interposer wire's fault likelihood
    // scales with its ubump count and RDL span; on-die feeds weigh 1.
    UbumpModel ub;
    std::vector<double> weight(wires.size());
    bool any_interposer = false;
    for (std::size_t i = 0; i < wires.size(); ++i) {
        weight[i] = ub.faultExposureWeight(wires[i].interposer,
                                           wires[i].spanHops);
        any_interposer |= wires[i].interposer;
    }

    auto pickWire = [&](bool interposer_only) {
        double total = 0;
        for (std::size_t i = 0; i < wires.size(); ++i)
            if (!interposer_only || wires[i].interposer)
                total += weight[i];
        double r = wireRng.nextDouble() * total;
        for (std::size_t i = 0; i < wires.size(); ++i) {
            if (interposer_only && !wires[i].interposer)
                continue;
            r -= weight[i];
            if (r <= 0)
                return static_cast<int>(i);
        }
        // Floating-point slack: fall back to the last eligible wire.
        for (std::size_t i = wires.size(); i-- > 0;)
            if (!interposer_only || wires[i].interposer)
                return static_cast<int>(i);
        return 0;
    };

    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        FaultEvent e;
        e.tick = 1 + timeRng.next() % cfg.horizonTicks;
        e.kind = kinds[static_cast<std::size_t>(kindRng.next() %
                                                kinds.size())];
        bool permanent = faultBit(e.kind) & kPermanentFaultKinds;
        e.wire = pickWire(permanent && cfg.killOnlyInterposer &&
                          any_interposer);
        e.ni = wires[static_cast<std::size_t>(e.wire)].ni;
        e.buf = wires[static_cast<std::size_t>(e.wire)].buf;
        e.duration = cfg.stallTicks;
        e.worms = 1;
        out.push_back(std::move(e));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.tick < b.tick;
                     });
    return out;
}

} // namespace eqx
