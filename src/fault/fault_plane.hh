/**
 * @file
 * The per-network fault plane: applies a FaultSchedule to the
 * network's registered injection wires, tracks per-wire fault state
 * (stalled / corrupting / killed), and carries the out-of-band
 * recovery events — end-to-end acks, reconciliation credits and
 * port-mask notifications — on its own event wheel so they can never
 * collide with in-band channel traffic (DESIGN.md §11).
 *
 * The plane is passive: the owning Network drives it once per internal
 * tick and consults it on every arrival over a fault-enabled wire. It
 * is created only when faults are armed, so an un-armed network pays
 * a single null-pointer test per tick.
 */

#ifndef EQX_FAULT_FAULT_PLANE_HH
#define EQX_FAULT_FAULT_PLANE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_model.hh"
#include "noc/packet.hh"

namespace eqx {

/**
 * Callbacks the owning Network implements so the plane can deliver
 * recovery events without depending on network internals.
 */
class FaultPlaneHost
{
  public:
    virtual ~FaultPlaneHost() = default;
    /** End-to-end ack from @p peer reached NI @p ni for @p seq. */
    virtual void faultDeliverAck(NodeId ni, NodeId peer,
                                 std::uint32_t seq) = 0;
    /** Return one (buf, vc) credit to NI @p ni for a dropped flit. */
    virtual void faultReturnCredit(NodeId ni, int buf, int vc) = 0;
    /** Fault detection latched: NI @p ni must stop using @p buf. */
    virtual void faultMaskBuffer(NodeId ni, int buf) = 0;
};

class FaultPlane
{
  public:
    FaultPlane(const FaultConfig &cfg, std::string net_name,
               FaultPlaneHost *host);

    /** Register one injection wire (construction order = wire index
     *  order, which the schedule generator depends on). @return the
     *  plane wire index. */
    int addWire(NodeId ni, int buf, NodeId router, bool interposer,
                int span_hops, Cycle credit_latency);

    /** Resolve explicit events and generate the random schedule. Call
     *  once, after every addWire. */
    void finalize(std::uint64_t seed);

    /** Apply schedule entries due at @p now and fire matured recovery
     *  events. The Network calls this right after advancing its tick,
     *  before channel delivery, in both tick-loop flavours. */
    void tick(Cycle now);

    // ---- Receive-side wire filtering (Network delivery loops) ----
    /** Arrivals on @p wi are withheld this tick? A stall of duration D
     *  armed at tick T covers ticks [T, T + D). */
    bool
    wireStalled(int wi, Cycle now) const
    {
        return wires_[static_cast<std::size_t>(wi)].stallUntil > now;
    }
    /** Track worm boundaries on @p wi and corrupt the flit's checksum
     *  if the wire is faulting this worm. Faults take effect at worm
     *  granularity: a worm whose head already crossed cleanly
     *  completes, so a partial worm never wedges a VC. */
    void touchFlit(int wi, Flit &f);
    /** The network verified the checksum and is dropping the flit:
     *  account it and schedule the reconciliation credit. */
    void onChecksumDrop(int wi, const Flit &f, Cycle now);

    // ---- Protocol hooks (NIs) ----
    /** Queue the end-to-end ack @p to <- @p peer for @p seq. */
    void scheduleAck(NodeId to, NodeId peer, std::uint32_t seq,
                     Cycle now);

    const FaultConfig &config() const { return cfg_; }
    const std::string &netName() const { return net_; }
    int numWires() const { return static_cast<int>(wires_.size()); }
    const std::vector<FaultEvent> &schedule() const { return schedule_; }

    /** No recovery event in flight (drain condition: a pending ack or
     *  reconciliation credit is as real as a buffered flit). */
    bool quiescent() const { return due_.empty(); }

    FaultStats &stats() { return stats_; }
    const FaultStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    struct Wire
    {
        NodeId ni = kInvalidNode;
        int buf = 0;
        NodeId router = kInvalidNode;
        bool interposer = false;
        int spanHops = 0;
        Cycle creditLatency = 1;

        // Fault state.
        bool killed = false;
        Cycle stallUntil = 0;    ///< arrivals withheld while now <= this
        int corruptWormsLeft = 0;
        bool dropWorm = false;   ///< worm in progress is being dropped
    };

    struct PlaneEvent
    {
        enum class Kind : std::uint8_t { Ack, CreditReturn, MaskBuffer };
        Kind kind;
        NodeId ni = kInvalidNode;
        NodeId peer = kInvalidNode; ///< Ack: delivering endpoint
        std::uint32_t seq = 0;      ///< Ack
        int buf = 0;                ///< CreditReturn / MaskBuffer
        int vc = 0;                 ///< CreditReturn
    };

    void applyEvent(const FaultEvent &e, Cycle now);
    void killWire(int wi, Cycle now);
    int findWire(NodeId ni, int buf) const;

    FaultConfig cfg_;
    std::string net_;
    FaultPlaneHost *host_;

    std::vector<Wire> wires_;
    std::vector<FaultEvent> schedule_;
    std::size_t nextEvent_ = 0;

    /** Recovery-event wheel, keyed by due tick. Insertion order within
     *  a tick is preserved (determinism). */
    std::map<Cycle, std::vector<PlaneEvent>> due_;

    FaultStats stats_;
};

} // namespace eqx

#endif // EQX_FAULT_FAULT_PLANE_HH
