/**
 * @file
 * Fault taxonomy, configuration and deterministic schedule generation
 * for the NoC fault-injection subsystem (DESIGN.md §11).
 *
 * The fault domain is the set of *injection wires*: the NI-to-router
 * links that physically are ubump/RDL structures on the interposer
 * (EIR links) or on-die NI feeds (local injection ports). These are
 * exactly the structures with manufacturing / wear-out concerns the
 * paper's equivalence property provides redundancy for. Mesh links
 * between routers are left out of scope on purpose: a mesh-link fault
 * tests the routing function, not the injection redundancy EquiNox
 * claims.
 *
 * Everything here is strictly opt-in: a default FaultConfig is
 * disabled and the simulator behaves bit-identically to a build
 * without this subsystem.
 */

#ifndef EQX_FAULT_FAULT_MODEL_HH
#define EQX_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/packet.hh"

namespace eqx {

/** The modelled fault classes (DESIGN.md §11.1). */
enum class FaultKind : std::uint8_t
{
    /** Transient link stall: arrivals on the wire are withheld for a
     *  bounded number of ticks (particle strike on a repeater, a
     *  marginal ubump recovering). No flits are lost. */
    TransientStall = 0,
    /** Transient flit corruption: the next worm(s) crossing the wire
     *  arrive with a bad checksum and are dropped whole. */
    TransientCorrupt = 1,
    /** Permanent link kill: every subsequent worm on the wire is lost.
     *  Models an RDL trace / ubump open on an interposer link, or a
     *  broken on-die NI feed. */
    PermanentLinkKill = 2,
    /** Permanent router injection-port kill: every injection wire
     *  terminating at the same router dies (an EIR router losing its
     *  RemoteInj front end). */
    PermanentRouterInjKill = 3,
};

constexpr std::uint32_t
faultBit(FaultKind k)
{
    return std::uint32_t{1} << static_cast<int>(k);
}

constexpr std::uint32_t kTransientFaultKinds =
    faultBit(FaultKind::TransientStall) |
    faultBit(FaultKind::TransientCorrupt);
constexpr std::uint32_t kPermanentFaultKinds =
    faultBit(FaultKind::PermanentLinkKill) |
    faultBit(FaultKind::PermanentRouterInjKill);
constexpr std::uint32_t kAllFaultKinds =
    kTransientFaultKinds | kPermanentFaultKinds;

const char *faultKindName(FaultKind k);

/**
 * Parse a comma-separated kind list ("stall,corrupt", "link_kill",
 * "router_kill", or the groups "transient" / "permanent" / "all") into
 * a kind bitmask. Returns false on an unknown token.
 */
bool parseFaultKinds(const std::string &spec, std::uint32_t &kinds_out);

/** One scheduled fault event. */
struct FaultEvent
{
    /** Resolve `wire` to the network's first interposer injection wire
     *  (tests / CI target "some EIR link" without knowing indices).
     *  Networks without interposer wires drop the event. */
    static constexpr int kAnyInterposerWire = -2;

    Cycle tick = 0;          ///< internal network tick the fault arms
    FaultKind kind = FaultKind::TransientStall;
    /** Plane wire index; -1 resolves by (ni, buf), kAnyInterposerWire
     *  picks the first interposer wire. */
    int wire = -1;
    NodeId ni = kInvalidNode;///< owning NI (when wire == -1)
    int buf = -1;            ///< NI injection-buffer index (wire == -1)
    Cycle duration = 16;     ///< TransientStall: stall length in ticks
    int worms = 1;           ///< TransientCorrupt: worms to corrupt
    /** Restrict the event to the named network ("" = every armed
     *  network; a System arms all its networks with one config). */
    std::string net;
};

/** All knobs of the fault subsystem; default-constructed = disabled. */
struct FaultConfig
{
    /** Expected randomly generated fault events per 1000 internal
     *  ticks per network (0 = only explicit `events`). */
    double ratePerKTick = 0;
    /** Kind mask for generated events (explicit events ignore it). */
    std::uint32_t kinds = kTransientFaultKinds;
    /** Generated event times are drawn uniformly over [1, horizon]. */
    Cycle horizonTicks = 100'000;
    /** Schedule stream seed; 0 derives from the system seed so sweeps
     *  stay decorrelated per (seed, network) without extra plumbing. */
    std::uint64_t seed = 0;
    /** Restrict *generated* permanent kills to interposer wires (the
     *  structures with the real wear-out concern). Networks without
     *  any interposer wire fall back to all injection wires, so the
     *  baseline scheme still takes kills in comparison campaigns. */
    bool killOnlyInterposer = true;

    Cycle stallTicks = 16;   ///< duration of generated stall events

    // ---- End-to-end recovery protocol (DESIGN.md §11.3) ----
    /** Initial retransmission timeout in internal ticks. The timer
     *  starts at NI enqueue, so it must cover worst-case queueing
     *  delay under load — too small only costs spurious (deduped)
     *  retransmissions, never correctness. */
    Cycle retxTimeout = 512;
    /** Exponential-backoff cap on the timeout. */
    Cycle retxTimeoutCap = 4096;
    /** Retransmission attempts before declaring a packet lost;
     *  0 = unlimited (guaranteed eventual delivery under transient
     *  faults; permanent faults are recovered via port masking). */
    int retxMax = 0;
    /** Modelled latency of the out-of-band ack path, in ticks. */
    Cycle ackLatency = 8;
    /** Ticks from a permanent kill to the NI masking the port. */
    Cycle detectLatency = 8;

    /** Run the seq/ack/retransmission machinery even with no faults
     *  scheduled (protocol-overhead measurement, determinism tests). */
    bool forceProtocol = false;

    /** Explicit schedule, applied before any generated events. */
    std::vector<FaultEvent> events;

    bool
    enabled() const
    {
        return ratePerKTick > 0 || !events.empty() || forceProtocol;
    }
};

/** Static description of one registered injection wire. */
struct FaultWireDesc
{
    NodeId ni = kInvalidNode; ///< NI owning the injection buffer
    int buf = 0;              ///< buffer index within that NI
    NodeId router = kInvalidNode; ///< router the wire terminates at
    bool interposer = false;  ///< EIR link (ubump/RDL structure)
    int spanHops = 0;         ///< mesh distance the RDL wire spans
};

/**
 * Generate the random part of a fault schedule over @p wires,
 * deterministically from @p seed: event count, times, kinds and wire
 * targets each come from a domain-separated fork of one seeded stream,
 * so two networks armed with different seeds are fully decorrelated
 * while the same (config, wires, seed) triple always reproduces the
 * same schedule — independent of thread count or call order. Wire
 * selection is weighted by physical fault exposure (interposer wires
 * weigh in proportionally to their ubump count and RDL span, see
 * UbumpModel::faultExposureWeight). The result is sorted by tick.
 */
std::vector<FaultEvent>
generateFaultSchedule(const FaultConfig &cfg,
                      const std::vector<FaultWireDesc> &wires,
                      std::uint64_t seed);

/** Aggregate fault/recovery counters for one network. */
struct FaultStats
{
    std::uint64_t seqPackets = 0;     ///< packets entered the protocol
    std::uint64_t delivered = 0;      ///< unique packets delivered
    std::uint64_t duplicates = 0;     ///< dup deliveries discarded
    std::uint64_t retransmissions = 0;///< timeout-triggered re-sends
    std::uint64_t lost = 0;           ///< gave up after retxMax
    std::uint64_t acks = 0;           ///< end-to-end acks delivered
    std::uint64_t wormsDropped = 0;   ///< whole packets dropped on wires
    std::uint64_t flitsDropped = 0;
    std::uint64_t creditsReconciled = 0; ///< credits restored for drops
    std::uint64_t stallEvents = 0;
    std::uint64_t corruptEvents = 0;
    std::uint64_t killEvents = 0;     ///< wires permanently killed
    std::uint64_t maskEvents = 0;     ///< NI buffers masked

    void reset() { *this = FaultStats{}; }
};

/**
 * Per-flit checksum used on fault-enabled wires. Stamped by the NI
 * serializer, verified by the network on arrival; a faulty wire
 * perturbs the stored value so the mismatch is detected exactly where
 * real hardware would detect it.
 */
inline std::uint16_t
flitFcs(const Flit &f)
{
    std::uint64_t h = f.pkt ? f.pkt->id : 0;
    h ^= static_cast<std::uint64_t>(static_cast<unsigned>(f.index)) << 40;
    h ^= static_cast<std::uint64_t>(static_cast<unsigned>(f.vc)) << 32;
    h ^= (f.isHead ? 0x10000u : 0u) | (f.isTail ? 0x20000u : 0u);
    h *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint16_t>(h >> 48);
}

} // namespace eqx

#endif // EQX_FAULT_FAULT_MODEL_HH
