#include "noc/router.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "noc/routing.hh"

namespace eqx {

Router::Router(NodeId id, const Topology *topo, const NocParams *params,
               NetworkActivity *activity)
    : id_(id), topo_(topo), params_(params), activity_(activity)
{
    eqx_assert(topo_ && params_ && activity_, "router needs its context");
}

int
Router::addInputPort(PortKind kind, Dir dir, Channel<Credit> *credit_up)
{
    eqx_assert(kind != PortKind::LocalEj, "LocalEj is an output kind");
    eqx_assert((inputs_.size() + 1) *
                       static_cast<std::size_t>(params_->vcsPerPort) <=
                   64,
               "pending-VC bitmasks support at most 64 input VCs");
    InputPort p;
    p.kind = kind;
    p.dir = dir;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort),
                 VcBuffer(params_->vcDepthFlits));
    p.creditUp = credit_up;
    p.saArb.resize(params_->vcsPerPort);
    inputs_.push_back(std::move(p));
    return static_cast<int>(inputs_.size()) - 1;
}

int
Router::addOutputPort(PortKind kind, Dir dir, Channel<Flit> *out,
                      int downstream_depth, bool interposer)
{
    eqx_assert(kind == PortKind::Geo || kind == PortKind::LocalEj,
               "outputs connect to neighbours or the NI ejection side");
    OutputPort p;
    p.kind = kind;
    p.dir = dir;
    p.out = out;
    p.interposer = interposer;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort), OutputVc{});
    for (auto &vc : p.vcs)
        vc.credits = downstream_depth;
    p.vaArbs.assign(static_cast<std::size_t>(params_->vcsPerPort),
                    RoundRobinArbiter(0));
    eqx_assert(outputs_.size() < 32,
               "SA port bitmask supports at most 32 output ports");
    outputs_.push_back(std::move(p));
    int idx = static_cast<int>(outputs_.size()) - 1;
    if (kind == PortKind::LocalEj)
        ejPorts_.push_back(idx);
    return idx;
}

void
Router::acceptFlit(int in_port, Flit f, Cycle now)
{
    eqx_assert(in_port >= 0 && in_port < numInputPorts(),
               "bad input port ", in_port, " at router ", id_);
    auto &ip = inputs_[static_cast<std::size_t>(in_port)];
    eqx_assert(f.vc >= 0 && f.vc < static_cast<int>(ip.vcs.size()),
               "bad VC on arriving flit");
    f.arrived = now;
    int cls = isRequest(f.pkt->type) ? 0 : 1;
    lastSeenClass_[cls] = now;
    seenClass_[cls] = true;
    auto &vcb = ip.vcs[static_cast<std::size_t>(f.vc)];
    std::uint64_t bit = std::uint64_t{1}
                        << (in_port * params_->vcsPerPort + f.vc);
    if (vcb.state == VcState::Idle)
        rcPending_ |= bit; // fresh head flit awaiting route compute
    else if (vcb.state == VcState::Active)
        saPending_ |= bit; // body flit joins the switch competition
    vcb.push(std::move(f));
    ++bufferedFlits_;
    ++ip.flitsAccepted;
    ++activity_->bufferWrites;
}

void
Router::creditArrived(int out_port, int vc)
{
    auto &op = outputs_[static_cast<std::size_t>(out_port)];
    auto &ovc = op.vcs[static_cast<std::size_t>(vc)];
    ++ovc.credits;
}

int
Router::geoOutPort(Dir d) const
{
    for (int i = 0; i < numOutputPorts(); ++i) {
        if (outputs_[static_cast<std::size_t>(i)].kind == PortKind::Geo &&
            outputs_[static_cast<std::size_t>(i)].dir == d)
            return i;
    }
    return -1;
}

void
Router::classVcRange(PacketType t, int &lo, int &hi) const
{
    int v = params_->vcsPerPort;
    int half = v / 2;
    if (half == 0)
        half = 1;
    if (isRequest(t)) {
        lo = 0;
        hi = std::min(half, v) - 1;
    } else {
        lo = std::min(half, v - 1);
        hi = v - 1;
    }
}

bool
Router::monopolyAllowed(PacketType t, Cycle now) const
{
    if (!params_->vcMono)
        return false;
    // Only replies may monopolize request-class VCs: replies are always
    // sunk at PE NIs, so borrowed request VCs still drain. Letting
    // requests borrow reply VCs would close the classic request/reply
    // protocol-deadlock cycle.
    if (isRequest(t))
        return false;
    if (!seenClass_[0])
        return true;
    return now - lastSeenClass_[0] >
           static_cast<Cycle>(params_->vcMonoWindow);
}

void
Router::routeVc(VcBuffer &vcb, Coord here)
{
    const Flit &f = vcb.front();
    Coord dest = topo_->coord(f.pkt->dst);
    vcb.routeCandidates.clear();
    if (dest == here) {
        vcb.routeCandidates = ejPorts_;
        eqx_assert(!vcb.routeCandidates.empty(),
                   "router ", id_, " has no ejection port");
    } else if (params_->routing == RoutingMode::XY ||
               params_->classVcs) {
        int p = geoOutPort(xyDirection(here, dest));
        eqx_assert(p >= 0, "XY direction port missing");
        vcb.routeCandidates.push_back(p);
    } else {
        // Minimal adaptive: x-dimension candidate first so that
        // routeCandidates[0] is always the XY (escape) port.
        for (Dir d : minimalDirections(here, dest)) {
            int p = geoOutPort(d);
            eqx_assert(p >= 0, "minimal direction port missing");
            vcb.routeCandidates.push_back(p);
        }
    }
    vcb.state = VcState::RouteComputed;
}

void
Router::routeComputeStage(Cycle)
{
    if (!params_->exhaustiveTick && rcPending_ == 0)
        return;
    Coord here = coord();
    int v = params_->vcsPerPort;

    if (params_->exhaustiveTick) {
        // The pre-change scan: every (port, VC) pair, every tick. Kept
        // runnable as the measured "before" of the activity scheduler;
        // the pending masks are still maintained so both paths share
        // one set of invariants.
        for (int pi = 0; pi < numInputPorts(); ++pi) {
            auto &ip = inputs_[static_cast<std::size_t>(pi)];
            for (int vi = 0; vi < v; ++vi) {
                auto &vcb = ip.vcs[static_cast<std::size_t>(vi)];
                if (vcb.state != VcState::Idle || vcb.empty())
                    continue;
                if (!vcb.front().isHead)
                    continue;
                routeVc(vcb, here);
                std::uint64_t bit = std::uint64_t{1} << (pi * v + vi);
                rcPending_ &= ~bit;
                vaPending_ |= bit;
            }
        }
        return;
    }

    std::uint64_t m = rcPending_;
    while (m != 0) {
        int flat = std::countr_zero(m);
        m &= m - 1;
        std::uint64_t bit = std::uint64_t{1} << flat;
        auto &vcb = inputs_[static_cast<std::size_t>(flat / v)]
                        .vcs[static_cast<std::size_t>(flat % v)];
        if (vcb.state != VcState::Idle || vcb.empty()) {
            rcPending_ &= ~bit; // stale: the scan loop would skip it
            continue;
        }
        if (!vcb.front().isHead)
            continue;
        routeVc(vcb, here);
        rcPending_ &= ~bit;
        vaPending_ |= bit;
    }
}

bool
Router::chooseVcRequest(const InputPort &ip, int in_vc, Cycle now,
                        int &req_port, int &req_vc)
{
    const auto &vcb = ip.vcs[static_cast<std::size_t>(in_vc)];
    const Flit &f = vcb.front();
    PacketType t = f.pkt->type;
    int v = params_->vcsPerPort;

    auto available = [&](int port, int vc) {
        const auto &op = outputs_[static_cast<std::size_t>(port)];
        const auto &ovc = op.vcs[static_cast<std::size_t>(vc)];
        // Atomic VC buffers: require the downstream VC idle and empty.
        return !ovc.busy && ovc.credits >= params_->vcDepthFlits;
    };

    // Determine the permitted VC window on non-ejection ports.
    int lo = 0, hi = v - 1;
    bool adaptive = params_->routing == RoutingMode::MinimalAdaptive &&
                    !params_->classVcs;
    if (params_->classVcs && !monopolyAllowed(t, now))
        classVcRange(t, lo, hi);

    int best_port = -1, best_vc = -1, best_credits = -1;
    auto consider = [&](int port, int vc) {
        if (!available(port, vc))
            return;
        int c = outputs_[static_cast<std::size_t>(port)]
                    .vcs[static_cast<std::size_t>(vc)]
                    .credits;
        if (c > best_credits) {
            best_credits = c;
            best_port = port;
            best_vc = vc;
        }
    };

    bool ejecting =
        outputs_[static_cast<std::size_t>(vcb.routeCandidates.front())]
            .kind == PortKind::LocalEj;

    if (ejecting) {
        for (int port : vcb.routeCandidates)
            for (int vc = 0; vc < v; ++vc)
                consider(port, vc);
    } else if (adaptive) {
        if (in_vc == escapeVc() && v > 1) {
            // Escape discipline: stay on the escape VC along XY.
            consider(vcb.routeCandidates.front(), escapeVc());
        } else {
            for (int port : vcb.routeCandidates)
                for (int vc = 0; vc < std::max(1, v - 1); ++vc)
                    consider(port, vc);
            if (best_port < 0 && v > 1) {
                // Blocked on all adaptive VCs: fall into escape.
                consider(vcb.routeCandidates.front(), escapeVc());
            }
        }
    } else {
        for (int port : vcb.routeCandidates)
            for (int vc = lo; vc <= hi; ++vc)
                consider(port, vc);
    }

    if (best_port < 0)
        return false;
    req_port = best_port;
    req_vc = best_vc;
    return true;
}

void
Router::vcAllocStage(Cycle now)
{
    if (!params_->exhaustiveTick && vaPending_ == 0)
        return;
    int v = params_->vcsPerPort;
    int flat = numInputPorts() * v;

    // Input-first: each waiting input VC nominates one (port, vc).
    vaWants_.clear();
    if (params_->exhaustiveTick) {
        // Pre-change scan over every (port, VC) pair; a bit in
        // vaPending_ is exactly "state == RouteComputed", so both
        // paths nominate the same candidates in the same order.
        for (int pi = 0; pi < numInputPorts(); ++pi) {
            auto &ip = inputs_[static_cast<std::size_t>(pi)];
            for (int vi = 0; vi < v; ++vi) {
                if (ip.vcs[static_cast<std::size_t>(vi)].state !=
                    VcState::RouteComputed)
                    continue;
                int rp = -1, rv = -1;
                ++vaRequests_;
                if (chooseVcRequest(ip, vi, now, rp, rv))
                    vaWants_.push_back(VaWant{pi * v + vi, rp, rv});
            }
        }
    } else {
        std::uint64_t m = vaPending_;
        while (m != 0) {
            int f = std::countr_zero(m);
            m &= m - 1;
            auto &ip = inputs_[static_cast<std::size_t>(f / v)];
            int rp = -1, rv = -1;
            ++vaRequests_;
            if (chooseVcRequest(ip, f % v, now, rp, rv))
                vaWants_.push_back(VaWant{f, rp, rv});
        }
    }
    if (vaWants_.empty())
        return;

    // Output side: arbitrate per requested output VC.
    for (std::size_t i = 0; i < vaWants_.size(); ++i) {
        if (vaWants_[i].inFlat < 0)
            continue; // already resolved as part of an earlier group
        int po = vaWants_[i].port;
        int vo = vaWants_[i].vc;
        scratchReqs_.clear();
        for (std::size_t j = i; j < vaWants_.size(); ++j) {
            if (vaWants_[j].inFlat >= 0 && vaWants_[j].port == po &&
                vaWants_[j].vc == vo) {
                scratchReqs_.push_back(vaWants_[j].inFlat);
                vaWants_[j].inFlat = -1;
            }
        }
        auto &op = outputs_[static_cast<std::size_t>(po)];
        auto &arb = op.vaArbs[static_cast<std::size_t>(vo)];
        if (arb.numInputs() != flat)
            arb.resize(flat);
        int winner = arb.grantList(scratchReqs_);
        if (winner < 0)
            continue;
        auto &ip = inputs_[static_cast<std::size_t>(winner / v)];
        auto &vcb = ip.vcs[static_cast<std::size_t>(winner % v)];
        vcb.state = VcState::Active;
        vcb.outPort = po;
        vcb.outVc = vo;
        op.vcs[static_cast<std::size_t>(vo)].busy = true;
        vaPending_ &= ~(std::uint64_t{1} << winner);
        saPending_ |= std::uint64_t{1} << winner;
        ++vaGrants_;
        ++activity_->vaGrants;
    }
}

void
Router::switchAllocStage(Cycle now)
{
    int v = params_->vcsPerPort;
    int num_in = numInputPorts();

    // SA runs first each tick: sample buffered-flit occupancy here so
    // the accounting sees exactly one sample per internal tick. Ticks
    // since the last sample were skipped by the activity scheduler and
    // had zero occupancy by construction; they extend the sample count
    // without contributing flit-ticks.
    if (now > occLastTick_) {
        occSamples_ += now - occLastTick_;
        occLastTick_ = now;
    }
    if (params_->exhaustiveTick) {
        // Pre-change sampling scanned every VC; the sum equals the
        // running bufferedFlits_ counter, so the statistic is the
        // same — only the measured cost differs.
        std::uint64_t occ = 0;
        for (const auto &ip : inputs_)
            for (const auto &vcb : ip.vcs)
                occ += static_cast<std::uint64_t>(vcb.occupancy());
        occSumFlitTicks_ += occ;
    } else {
        occSumFlitTicks_ += static_cast<std::uint64_t>(bufferedFlits_);
    }

    std::uint32_t req_ports = 0;
    if (params_->exhaustiveTick) {
        // Pre-change phase 1: scan every (port, VC) pair and let
        // phase 2 visit every output port. A bit in saPending_ is
        // exactly "state == Active && !empty", so the candidate lists
        // (and the arbiter outcomes) match the mask walk.
        saChosenVc_.assign(static_cast<std::size_t>(num_in), -1);
        bool any = false;
        for (int pi = 0; pi < num_in; ++pi) {
            auto &ip = inputs_[static_cast<std::size_t>(pi)];
            scratchReqs_.clear();
            for (int vi = 0; vi < v; ++vi) {
                const auto &vcb = ip.vcs[static_cast<std::size_t>(vi)];
                if (vcb.state != VcState::Active || vcb.empty())
                    continue;
                ++saRequests_;
                const auto &ovc =
                    outputs_[static_cast<std::size_t>(vcb.outPort)]
                        .vcs[static_cast<std::size_t>(vcb.outVc)];
                if (ovc.credits <= 0) {
                    ++creditStallCycles_;
                    continue;
                }
                scratchReqs_.push_back(vi);
            }
            if (!scratchReqs_.empty()) {
                saChosenVc_[static_cast<std::size_t>(pi)] =
                    ip.saArb.grantList(scratchReqs_);
                any = true;
            }
        }
        if (!any)
            return;
        req_ports =
            (std::uint32_t{1} << numOutputPorts()) - 1;
    } else {
        // Phase 1: one candidate VC per input port, walking only
        // Active non-empty VCs (saPending_). Requested output ports
        // are tracked in a bitmask so phase 2 only visits contested
        // ports.
        std::uint64_t m = saPending_;
        if (m == 0)
            return;
        saChosenVc_.assign(static_cast<std::size_t>(num_in), -1);
        while (m != 0) {
            int pi = std::countr_zero(m) / v;
            auto &ip = inputs_[static_cast<std::size_t>(pi)];
            std::uint64_t port_bits =
                m & (((std::uint64_t{1} << v) - 1) << (pi * v));
            m ^= port_bits;
            scratchReqs_.clear();
            while (port_bits != 0) {
                int vi = std::countr_zero(port_bits) - pi * v;
                port_bits &= port_bits - 1;
                const auto &vcb = ip.vcs[static_cast<std::size_t>(vi)];
                ++saRequests_;
                const auto &ovc =
                    outputs_[static_cast<std::size_t>(vcb.outPort)]
                        .vcs[static_cast<std::size_t>(vcb.outVc)];
                if (ovc.credits <= 0) {
                    ++creditStallCycles_;
                    continue;
                }
                scratchReqs_.push_back(vi);
            }
            if (!scratchReqs_.empty()) {
                int vi = ip.saArb.grantList(scratchReqs_);
                saChosenVc_[static_cast<std::size_t>(pi)] = vi;
                req_ports |=
                    std::uint32_t{1}
                    << ip.vcs[static_cast<std::size_t>(vi)].outPort;
            }
        }
        if (req_ports == 0)
            return;
    }

    // Phase 2: one input per output port, ascending port order.
    while (req_ports != 0) {
        int po = std::countr_zero(req_ports);
        req_ports &= req_ports - 1;
        auto &op = outputs_[static_cast<std::size_t>(po)];
        scratchReqs_.clear();
        for (int pi = 0; pi < num_in; ++pi) {
            int vi = saChosenVc_[static_cast<std::size_t>(pi)];
            if (vi < 0)
                continue;
            const auto &vcb =
                inputs_[static_cast<std::size_t>(pi)]
                    .vcs[static_cast<std::size_t>(vi)];
            if (vcb.outPort == po)
                scratchReqs_.push_back(pi);
        }
        if (scratchReqs_.empty())
            continue;
        if (op.saArb.numInputs() != num_in)
            op.saArb.resize(num_in);
        int pi = op.saArb.grantList(scratchReqs_);
        if (pi < 0)
            continue;

        auto &ip = inputs_[static_cast<std::size_t>(pi)];
        int vi = saChosenVc_[static_cast<std::size_t>(pi)];
        auto &vcb = ip.vcs[static_cast<std::size_t>(vi)];
        Flit f = vcb.pop();
        if (vcb.empty())
            saPending_ &= ~(std::uint64_t{1} << (pi * v + vi));
        --bufferedFlits_;
        residence_.add(static_cast<double>(now - f.arrived + 1));
        ++flitsForwarded_;
        ++saGrants_;
        ++op.flitsSent;
        ++activity_->bufferReads;
        ++activity_->xbarTraversals;
        ++activity_->saGrants;
        if (op.kind == PortKind::Geo) {
            if (op.interposer)
                ++activity_->interposerLinkFlits;
            else
                ++activity_->linkFlits;
        }

        auto &ovc = op.vcs[static_cast<std::size_t>(vcb.outVc)];
        --ovc.credits;
        eqx_assert(ovc.credits >= 0, "credit underflow at router ", id_);

        bool tail = f.isTail;
        f.vc = vcb.outVc;
        eqx_assert(op.out, "output port without a channel");
        op.out->send(std::move(f), now);

        // Return a credit for the freed input slot.
        if (ip.creditUp) {
            ip.creditUp->send(Credit{pi, vi}, now);
            ++activity_->creditsSent;
        }

        if (tail) {
            ovc.busy = false;
            vcb.release();
        }
    }
}

double
Router::occupancyMean(Cycle now) const
{
    // Ticks between the last explicit sample and `now` were skipped
    // while idle: count them as zero-occupancy samples.
    std::uint64_t samples = occSamples_;
    if (now > occLastTick_)
        samples += now - occLastTick_;
    return samples ? static_cast<double>(occSumFlitTicks_) /
                         static_cast<double>(samples)
                   : 0.0;
}

void
Router::resetStats(Cycle now)
{
    residence_.reset();
    occSumFlitTicks_ = 0;
    occSamples_ = 0;
    occLastTick_ = now;
    flitsForwarded_ = 0;
    vaRequests_ = 0;
    vaGrants_ = 0;
    saRequests_ = 0;
    saGrants_ = 0;
    creditStallCycles_ = 0;
    for (auto &ip : inputs_)
        ip.flitsAccepted = 0;
    for (auto &op : outputs_)
        op.flitsSent = 0;
}

} // namespace eqx
