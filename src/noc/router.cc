#include "noc/router.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "noc/routing.hh"

namespace eqx {

Router::Router(NodeId id, const Topology *topo, const NocParams *params,
               NetworkActivity *activity)
    : id_(id), topo_(topo), params_(params), activity_(activity)
{
    eqx_assert(topo_ && params_ && activity_, "router needs its context");
    coord_ = topo_->routerCoord(id_);
    wrap_ = topo_->wraps();
    concentrated_ = topo_->concentrated();
}

int
Router::addInputPort(PortKind kind, Dir dir, Channel<Credit> *credit_up)
{
    eqx_assert(kind != PortKind::LocalEj, "LocalEj is an output kind");
    eqx_assert(inputs_.size() < kMaxInPorts,
               "per-input-port state supports at most 32 input ports");
    eqx_assert((inputs_.size() + 1) *
                       static_cast<std::size_t>(params_->vcsPerPort) <=
                   kMaxInVcs,
               "pending-VC bitmasks support at most 64 input VCs");
    InputPort p;
    p.kind = kind;
    p.dir = dir;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort),
                 VcBuffer(params_->vcDepthFlits));
    p.creditUp = credit_up;
    inputs_.push_back(std::move(p));
    int idx = static_cast<int>(inputs_.size()) - 1;
    creditUp_[idx] = credit_up;
    flitStore_.resize(inputs_.size() *
                      static_cast<std::size_t>(params_->vcsPerPort) *
                      static_cast<std::size_t>(params_->vcDepthFlits));
    return idx;
}

int
Router::addOutputPort(PortKind kind, Dir dir, Channel<Flit> *out,
                      int downstream_depth, bool interposer)
{
    eqx_assert(kind == PortKind::Geo || kind == PortKind::LocalEj,
               "outputs connect to neighbours or the NI ejection side");
    eqx_assert(outputs_.size() < kMaxOutPorts,
               "SA port bitmask supports at most 32 output ports");
    eqx_assert((outputs_.size() + 1) *
                       static_cast<std::size_t>(params_->vcsPerPort) <=
                   kMaxOutVcs,
               "flat output-VC state supports at most 64 output VCs");
    OutputPort p;
    p.kind = kind;
    p.dir = dir;
    p.out = out;
    p.interposer = interposer;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort), OutputVc{});
    for (auto &vc : p.vcs)
        vc.credits = downstream_depth;
    outputs_.push_back(std::move(p));
    int idx = static_cast<int>(outputs_.size()) - 1;
    if (downstream_depth != params_->vcDepthFlits)
        uniformCredit_ = false;
    eqx_assert(downstream_depth <= 127,
               "byte-wide credit counters cap downstream depth at 127");
    for (int vi = 0; vi < params_->vcsPerPort; ++vi) {
        int of = idx * params_->vcsPerPort + vi;
        outCredits_[of] = static_cast<std::int8_t>(downstream_depth);
        freeOutVcs_ |= std::uint64_t{1} << of;
    }
    outChan_[idx] = out;
    if (interposer)
        outInterposer_ |= std::uint32_t{1} << idx;
    if (kind == PortKind::Geo) {
        outIsGeo_ |= std::uint32_t{1} << idx;
        dirPort_[static_cast<int>(dir)] = static_cast<std::int8_t>(idx);
    } else if (concentrated_) {
        // Concentrated routers eject by destination tile slot
        // (destSub_ indexes ejPorts_ directly), so the fixed
        // candidate array — and its kMaxRouteCand cap, which a c x c
        // block of ejection ports would overflow — is not maintained.
        ejPorts_.push_back(idx);
    } else {
        ejPorts_.push_back(idx);
        eqx_assert(ejCandCount_ < kMaxRouteCand,
                   "too many ejection ports for the fixed candidate set");
        ejCand_[ejCandCount_++] = static_cast<std::int8_t>(idx);
    }
    return idx;
}

void
Router::setDirectWheel(WheelSlot *slots, std::uint32_t slot_mask)
{
    wheelSlots_ = slots;
    directWheelMask_ = slot_mask;
    if (!slots)
        return;
    for (int po = 0; po < numOutputPorts(); ++po) {
        eqx_assert(outChan_[po]->latency() <= 127,
                   "direct-wheel latency cache is byte-wide");
        outLat_[po] = static_cast<std::int8_t>(outChan_[po]->latency());
        outTag_[po] = outChan_[po]->tag();
    }
    for (int pi = 0; pi < numInputPorts(); ++pi) {
        if (!creditUp_[pi])
            continue;
        crLat_[pi] = static_cast<std::int8_t>(creditUp_[pi]->latency());
        crTag_[pi] = creditUp_[pi]->tag();
    }
}

void
Router::acceptFlit(int in_port, Flit f, Cycle now)
{
    eqx_assert(in_port >= 0 && in_port < numInputPorts(),
               "bad input port ", in_port, " at router ", id_);
    int v = params_->vcsPerPort;
    int depth = params_->vcDepthFlits;
    eqx_assert(f.vc >= 0 && f.vc < v, "bad VC on arriving flit");
    f.arrived = now;
    int flat = in_port * v + f.vc;
    // Class bookkeeping feeds classVcRange()/monopolyAllowed() only;
    // plain networks skip the packet dereference entirely.
    if (params_->classVcs || params_->vcMono) {
        int cls = packetVcClass(f.pkt->type, *params_);
        lastSeenClass_[cls] = now;
        seenClass_[cls] = true;
        if (vc_[flat].count == 0)
            vc_[flat].cls = static_cast<std::uint8_t>(cls);
    }
    std::uint64_t bit = std::uint64_t{1} << flat;
    if (vc_[flat].state == VcState::Idle) {
        rcPending_ |= bit; // fresh head flit awaiting route compute
        if (vc_[flat].count == 0) {
            // Cache the head-flit facts RC reads every visit, so the
            // stage walks never touch the Packet. Routing happens in
            // router space: identical to tile space except on
            // concentrated topologies, where the destination's tile
            // slot is kept alongside for slot-indexed ejection.
            Coord dest = concentrated_
                             ? topo_->routerCoordOf(f.pkt->dst)
                             : topo_->coord(f.pkt->dst);
            vc_[flat].destX = static_cast<std::int8_t>(dest.x);
            vc_[flat].destY = static_cast<std::int8_t>(dest.y);
            if (concentrated_)
                destSub_[flat] = static_cast<std::int8_t>(
                    topo_->tileSlot(f.pkt->dst));
            vc_[flat].headOk = f.isHead;
        }
    } else if (vc_[flat].state == VcState::Active) {
        saPending_ |= bit; // body flit joins the switch competition
    }
    eqx_assert(vc_[flat].count < depth,
               "VC buffer overflow at router ", id_);
    int slot = vc_[flat].head + vc_[flat].count;
    if (slot >= depth)
        slot -= depth;
    flitStore_[static_cast<std::size_t>(flat * depth + slot)] =
        std::move(f);
    ++vc_[flat].count;
    ++bufferedFlits_;
    ++inFlitsAccepted_[in_port];
    ++activity_->bufferWrites;
}

void
Router::classVcRange(int cls, int &lo, int &hi) const
{
    int v = params_->vcsPerPort;
    int coh = params_->coherenceVcs;
    if (cls == 2) {
        // Coherence class: the reserved top VCs (only reachable when
        // coherenceVcs > 0, enforced at packet classification).
        lo = v - coh;
        hi = v - 1;
        return;
    }
    // Request/reply split the remaining VCs exactly as before; with
    // coherenceVcs == 0 this is byte-identical to the legacy layout.
    int base = v - coh;
    int half = base / 2;
    if (half == 0)
        half = 1;
    if (cls == 0) {
        lo = 0;
        hi = std::min(half, base) - 1;
    } else {
        lo = std::min(half, base - 1);
        hi = base - 1;
    }
}

bool
Router::monopolyAllowed(int cls, Cycle now) const
{
    if (!params_->vcMono)
        return false;
    // Only replies may monopolize request-class VCs: replies are always
    // sunk at PE NIs, so borrowed request VCs still drain. Letting
    // requests borrow reply VCs would close the classic request/reply
    // protocol-deadlock cycle, and the coherence class stays pinned to
    // its reserved VCs so the fan-out can never starve either class.
    if (cls != 1)
        return false;
    if (!seenClass_[0])
        return true;
    return now - lastSeenClass_[0] >
           static_cast<Cycle>(params_->vcMonoWindow);
}

void
Router::routeVcFlat(int flat)
{
    Coord dest{vc_[flat].destX, vc_[flat].destY};
    int nc = 0;
    bool ejecting = dest == coord_;
    if (ejecting) {
        if (concentrated_) {
            // Slot-indexed ejection: the destination tile's rank
            // within this router's block picks its ejection port.
            int slot = destSub_[flat];
            eqx_assert(slot >= 0 &&
                           slot < static_cast<int>(ejPorts_.size()),
                       "router ", id_, " has no ejection port for "
                       "tile slot ", slot);
            vc_[flat].cand[nc++] = static_cast<std::int8_t>(
                ejPorts_[static_cast<std::size_t>(slot)]);
        } else {
            eqx_assert(ejCandCount_ > 0,
                       "router ", id_, " has no ejection port");
            for (int i = 0; i < ejCandCount_; ++i)
                vc_[flat].cand[nc++] = ejCand_[i];
        }
    } else if (wrap_) {
        // Wrap-aware route compute (torus): candidate 0 is always
        // the dimension-order escape direction; the head's dateline
        // class rides in vc_[flat].cls (free here — wrap topologies
        // exclude classVcs/vcMono) for the VC allocator's escape
        // window. Recomputed per hop: the class is a pure function of
        // (router, destination), so it stays valid while parked.
        RouteCandidates dirs = topo_->minimalRouterDirs(coord_, dest);
        eqx_assert(!dirs.empty(), "non-ejecting head with no route");
        bool adaptive =
            params_->routing == RoutingMode::MinimalAdaptive;
        int take = adaptive ? dirs.size() : 1;
        for (int i = 0; i < take; ++i) {
            std::int8_t p = dirPort_[static_cast<int>(dirs[i])];
            eqx_assert(p >= 0, "torus direction port missing");
            vc_[flat].cand[nc++] = p;
        }
        vc_[flat].cls = static_cast<std::uint8_t>(
            topo_->wrapClass(coord_, dest, dirs[0]));
    } else if (params_->routing == RoutingMode::XY || params_->classVcs) {
        std::int8_t p = dirPort_[static_cast<int>(
            xyDirection(coord_, dest))];
        eqx_assert(p >= 0, "XY direction port missing");
        vc_[flat].cand[nc++] = p;
    } else {
        // Minimal adaptive: x-dimension candidate first so that
        // candidate 0 is always the XY (escape) port.
        if (dest.x != coord_.x)
            vc_[flat].cand[nc++] =
                dirPort_[dest.x > coord_.x
                             ? static_cast<int>(Dir::East)
                             : static_cast<int>(Dir::West)];
        if (dest.y != coord_.y)
            vc_[flat].cand[nc++] =
                dirPort_[dest.y > coord_.y
                             ? static_cast<int>(Dir::South)
                             : static_cast<int>(Dir::North)];
        eqx_assert(nc > 0 && vc_[flat].cand[0] >= 0,
                   "minimal direction port missing");
    }
    vc_[flat].candCount = static_cast<std::uint8_t>(nc);
    vc_[flat].ejecting = ejecting;
    vc_[flat].state = VcState::RouteComputed;
}

void
Router::routeComputeStage(Cycle)
{
    if (!params_->exhaustiveTick && rcPending_ == 0)
        return;

    if (params_->exhaustiveTick) {
        // The pre-change scan: every (port, VC) pair, every tick. Kept
        // runnable as the measured "before" of the activity scheduler;
        // the pending masks are still maintained so both paths share
        // one set of invariants.
        int flats = numInputPorts() * params_->vcsPerPort;
        for (int flat = 0; flat < flats; ++flat) {
            if (vc_[flat].state != VcState::Idle || vc_[flat].count == 0)
                continue;
            if (!vc_[flat].headOk)
                continue;
            routeVcFlat(flat);
            std::uint64_t bit = std::uint64_t{1} << flat;
            rcPending_ &= ~bit;
            vaPending_ |= bit;
        }
        return;
    }

    std::uint64_t m = rcPending_;
    while (m != 0) {
        int flat = std::countr_zero(m);
        m &= m - 1;
        std::uint64_t bit = std::uint64_t{1} << flat;
        if (vc_[flat].state != VcState::Idle || vc_[flat].count == 0) {
            rcPending_ &= ~bit; // stale: the scan loop would skip it
            continue;
        }
        if (!vc_[flat].headOk)
            continue;
        routeVcFlat(flat);
        rcPending_ &= ~bit;
        vaPending_ |= bit;
    }
}

bool
Router::chooseVcRequest(int flat, Cycle now, int &req_port, int &req_vc)
{
    int v = params_->vcsPerPort;
    int depth = params_->vcDepthFlits;

    // Determine the permitted VC window on non-ejection ports.
    int lo = 0, hi = v - 1;
    bool adaptive = params_->routing == RoutingMode::MinimalAdaptive &&
                    !params_->classVcs;
    if (params_->classVcs && !monopolyAllowed(vc_[flat].cls, now))
        classVcRange(vc_[flat].cls, lo, hi);
    else if (wrap_ && !adaptive) {
        // Torus XY: split the VCs into dateline halves. Class 0
        // ("wrap link still ahead on the current ring") and class 1
        // never share a VC, which breaks every ring cycle
        // (DESIGN.md §17). Network asserts vcsPerPort >= 2 here.
        int half = v / 2;
        lo = vc_[flat].cls ? half : 0;
        hi = vc_[flat].cls ? v - 1 : half - 1;
    }

    const std::int8_t *cand = vc_[flat].cand;
    int nc = vc_[flat].candCount;

    if (uniformCredit_) {
        // Every free VC holds exactly `depth` credits (atomic VC
        // rule), so the max-credit tie-break degenerates to "first
        // free VC in scan order": one mask-and-scan per candidate
        // port replaces the credit-compare loop. freeOutVcs_ is
        // maintained at every busy/credit transition.
        auto firstFree = [&](int port, int lo_vc, int hi_vc) -> int {
            std::uint64_t m = (freeOutVcs_ >> (port * v)) &
                              ((std::uint64_t{2} << hi_vc) -
                               (std::uint64_t{1} << lo_vc));
            return m ? std::countr_zero(m) : -1;
        };
        if (vc_[flat].ejecting) {
            for (int i = 0; i < nc; ++i) {
                int vc = firstFree(cand[i], 0, v - 1);
                if (vc >= 0) {
                    req_port = cand[i];
                    req_vc = vc;
                    return true;
                }
            }
            return false;
        }
        if (adaptive) {
            if (wrap_) {
                // Torus escape discipline (Duato over the dateline
                // subnetwork): the top two VCs form the escape pair,
                // v-2 for class 0 (wrap link ahead) and v-1 for
                // class 1. The per-ring (position, class) order
                // strictly increases along escape hops, so the escape
                // subnetwork is cycle-free (DESIGN.md §17). Network
                // asserts vcsPerPort >= 3 here.
                int esc = v - 2 + vc_[flat].cls;
                if (flat % v >= v - 2) {
                    // Escape input: stay on the dateline pair, XY
                    // (candidate 0) only.
                    int vc = firstFree(cand[0], esc, esc);
                    if (vc < 0)
                        return false;
                    req_port = cand[0];
                    req_vc = vc;
                    return true;
                }
                for (int i = 0; i < nc; ++i) {
                    int vc = firstFree(cand[i], 0, v - 3);
                    if (vc >= 0) {
                        req_port = cand[i];
                        req_vc = vc;
                        return true;
                    }
                }
                // Blocked on all adaptive VCs: fall into escape.
                int vc = firstFree(cand[0], esc, esc);
                if (vc >= 0) {
                    req_port = cand[0];
                    req_vc = vc;
                    return true;
                }
                return false;
            }
            if (flat % v == escapeVc() && v > 1) {
                // Escape discipline: stay on the escape VC along XY.
                int vc = firstFree(cand[0], escapeVc(), escapeVc());
                if (vc < 0)
                    return false;
                req_port = cand[0];
                req_vc = vc;
                return true;
            }
            int adaptive_vcs = std::max(1, v - 1);
            for (int i = 0; i < nc; ++i) {
                int vc = firstFree(cand[i], 0, adaptive_vcs - 1);
                if (vc >= 0) {
                    req_port = cand[i];
                    req_vc = vc;
                    return true;
                }
            }
            if (v > 1) {
                // Blocked on all adaptive VCs: fall into escape.
                int vc = firstFree(cand[0], escapeVc(), escapeVc());
                if (vc >= 0) {
                    req_port = cand[0];
                    req_vc = vc;
                    return true;
                }
            }
            return false;
        }
        for (int i = 0; i < nc; ++i) {
            int vc = firstFree(cand[i], lo, hi);
            if (vc >= 0) {
                req_port = cand[i];
                req_vc = vc;
                return true;
            }
        }
        return false;
    }

    int best_port = -1, best_vc = -1, best_credits = -1;
    auto consider = [&](int port, int vc) {
        // Atomic VC buffers: require the downstream VC idle and empty.
        int of = port * v + vc;
        std::int32_t c = outCredits_[of];
        if (outBusy_[of] || c < depth)
            return;
        if (c > best_credits) {
            best_credits = c;
            best_port = port;
            best_vc = vc;
        }
    };

    if (vc_[flat].ejecting) {
        for (int i = 0; i < nc; ++i)
            for (int vc = 0; vc < v; ++vc)
                consider(cand[i], vc);
    } else if (adaptive) {
        if (wrap_) {
            // Torus escape pair (see the uniform-credit path above).
            int esc = v - 2 + vc_[flat].cls;
            if (flat % v >= v - 2) {
                // Escape input: stay on the dateline pair, XY only.
                consider(cand[0], esc);
            } else {
                for (int i = 0; i < nc; ++i)
                    for (int vc = 0; vc < v - 2; ++vc)
                        consider(cand[i], vc);
                if (best_port < 0) {
                    // Blocked on all adaptive VCs: fall into escape.
                    consider(cand[0], esc);
                }
            }
        } else if (flat % v == escapeVc() && v > 1) {
            // Escape discipline: stay on the escape VC along XY.
            consider(cand[0], escapeVc());
        } else {
            int adaptive_vcs = std::max(1, v - 1);
            for (int i = 0; i < nc; ++i)
                for (int vc = 0; vc < adaptive_vcs; ++vc)
                    consider(cand[i], vc);
            if (best_port < 0 && v > 1) {
                // Blocked on all adaptive VCs: fall into escape.
                consider(cand[0], escapeVc());
            }
        }
    } else {
        for (int i = 0; i < nc; ++i)
            for (int vc = lo; vc <= hi; ++vc)
                consider(cand[i], vc);
    }

    if (best_port < 0)
        return false;
    req_port = best_port;
    req_vc = best_vc;
    return true;
}

void
Router::vcAllocStage(Cycle now)
{
    if (!params_->exhaustiveTick && vaPending_ == 0)
        return;
    int v = params_->vcsPerPort;
    int flats = numInputPorts() * v;

    // Input-first: each waiting input VC nominates one (port, vc).
    // Nominations land in flat parallel arrays; groups with the same
    // requested output VC resolve in first-nomination order, exactly
    // as the pre-SoA want-list did.
    int want_flat[kMaxInVcs];
    std::int16_t want_of[kMaxInVcs];
    std::int8_t want_port[kMaxInVcs];
    int n_wants = 0;
    if (params_->exhaustiveTick) {
        // Pre-change scan over every (port, VC) pair; a bit in
        // vaPending_ is exactly "state == RouteComputed", so both
        // paths nominate the same candidates in the same order.
        for (int flat = 0; flat < flats; ++flat) {
            if (vc_[flat].state != VcState::RouteComputed)
                continue;
            int rp = -1, rv = -1;
            ++vaRequests_;
            if (chooseVcRequest(flat, now, rp, rv)) {
                want_flat[n_wants] = flat;
                want_of[n_wants] =
                    static_cast<std::int16_t>(rp * v + rv);
                want_port[n_wants] = static_cast<std::int8_t>(rp);
                ++n_wants;
            }
        }
    } else {
        // Nominations whose failure can only be cured by a free-VC
        // transition park on vaBlocked_ instead of re-polling every
        // tick; a woken bit first credits the request ticks it would
        // have issued while parked (exhaustive-loop accounting).
        bool park = uniformCredit_ && !params_->classVcs;
        std::uint64_t m = vaPending_;
        while (m != 0) {
            int flat = std::countr_zero(m);
            std::uint64_t bit = m & (~m + 1);
            m &= m - 1;
            int rp = -1, rv = -1;
            ++vaRequests_;
            if (vaWoken_ & bit) {
                vaRequests_ += now - vaBlockTick_[flat] - 1;
                vaWoken_ &= ~bit;
            }
            if (chooseVcRequest(flat, now, rp, rv)) {
                want_flat[n_wants] = flat;
                want_of[n_wants] =
                    static_cast<std::int16_t>(rp * v + rv);
                want_port[n_wants] = static_cast<std::int8_t>(rp);
                ++n_wants;
            } else if (park) {
                vaPending_ &= ~bit;
                vaBlocked_ |= bit;
                vaBlockTick_[flat] = now;
                for (int c = 0; c < vc_[flat].candCount; ++c)
                    vaWaiters_[vc_[flat].cand[c]] |= bit;
            }
        }
    }
    if (n_wants == 0)
        return;

    // Output side: arbitrate per requested output VC.
    for (int i = 0; i < n_wants; ++i) {
        if (want_of[i] < 0)
            continue; // already resolved as part of an earlier group
        std::int16_t of = want_of[i];
        std::uint64_t reqs = std::uint64_t{1} << want_flat[i];
        for (int j = i + 1; j < n_wants; ++j)
            if (want_of[j] == of) {
                reqs |= std::uint64_t{1} << want_flat[j];
                want_of[j] = -1;
            }
        int winner = rrGrant(reqs, vaLast_[of]);
        vc_[winner].state = VcState::Active;
        vc_[winner].outPort = want_port[i];
        vc_[winner].outFlat = of;
        outBusy_[of] = 1;
        freeOutVcs_ &= ~(std::uint64_t{1} << of);
        vaPending_ &= ~(std::uint64_t{1} << winner);
        saPending_ |= std::uint64_t{1} << winner;
        ++vaGrants_;
        ++activity_->vaGrants;
    }
}

void
Router::switchAllocStage(Cycle now)
{
    int v = params_->vcsPerPort;
    int depth = params_->vcDepthFlits;
    int num_in = numInputPorts();

    // SA runs first each tick: sample buffered-flit occupancy here so
    // the accounting sees exactly one sample per internal tick. Ticks
    // since the last sample were skipped by the activity scheduler and
    // had zero occupancy by construction; they extend the sample count
    // without contributing flit-ticks.
    if (now > occLastTick_) {
        occSamples_ += now - occLastTick_;
        occLastTick_ = now;
    }
    if (params_->exhaustiveTick) {
        // Pre-change sampling scanned every VC; the sum equals the
        // running bufferedFlits_ counter, so the statistic is the
        // same — only the measured cost differs.
        std::uint64_t occ = 0;
        for (int flat = 0; flat < num_in * v; ++flat)
            occ += vc_[flat].count;
        occSumFlitTicks_ += occ;
    } else {
        occSumFlitTicks_ += static_cast<std::uint64_t>(bufferedFlits_);
    }

    std::int8_t chosen_vc[kMaxInVcs];
    std::int8_t chosen_port[kMaxInVcs];
    std::uint32_t chosen_in = 0; ///< input ports with a phase-1 winner
    std::uint32_t req_ports = 0;
    if (params_->exhaustiveTick) {
        // Pre-change phase 1: scan every (port, VC) pair and let
        // phase 2 visit every output port. A bit in saPending_ is
        // exactly "state == Active && !empty", so the candidate lists
        // (and the arbiter outcomes) match the mask walk.
        bool any = false;
        for (int pi = 0; pi < num_in; ++pi) {
            std::uint64_t reqs = 0;
            for (int vi = 0; vi < v; ++vi) {
                int flat = pi * v + vi;
                if (vc_[flat].state != VcState::Active ||
                    vc_[flat].count == 0)
                    continue;
                ++saRequests_;
                if (outCredits_[vc_[flat].outFlat] <= 0) {
                    ++creditStallCycles_;
                    continue;
                }
                reqs |= std::uint64_t{1} << vi;
            }
            if (reqs != 0) {
                int vi = rrGrant(reqs, inSaLast_[pi]);
                chosen_vc[pi] = static_cast<std::int8_t>(vi);
                chosen_port[pi] = vc_[pi * v + vi].outPort;
                chosen_in |= std::uint32_t{1} << pi;
                any = true;
            }
        }
        if (!any)
            return;
        req_ports = (std::uint32_t{1} << numOutputPorts()) - 1;
    } else {
        // Phase 1: one candidate VC per input port, walking only
        // Active non-empty VCs (saPending_). Requested output ports
        // are tracked in a bitmask so phase 2 only visits contested
        // ports.
        std::uint64_t m = saPending_;
        if (m == 0)
            return;
        while (m != 0) {
            int pi = std::countr_zero(m) / v;
            std::uint64_t port_bits =
                m & (((std::uint64_t{1} << v) - 1) << (pi * v));
            m ^= port_bits;
            std::uint64_t reqs = 0;
            while (port_bits != 0) {
                int flat = std::countr_zero(port_bits);
                port_bits &= port_bits - 1;
                ++saRequests_;
                if (outCredits_[vc_[flat].outFlat] <= 0) {
                    ++creditStallCycles_;
                    continue;
                }
                reqs |= std::uint64_t{1} << (flat - pi * v);
            }
            if (reqs != 0) {
                int vi = rrGrant(reqs, inSaLast_[pi]);
                chosen_vc[pi] = static_cast<std::int8_t>(vi);
                chosen_port[pi] = vc_[pi * v + vi].outPort;
                chosen_in |= std::uint32_t{1} << pi;
                req_ports |= std::uint32_t{1} << chosen_port[pi];
            }
        }
        if (req_ports == 0)
            return;
    }

    // Phase 2: one input per output port, ascending port order.
    while (req_ports != 0) {
        int po = std::countr_zero(req_ports);
        req_ports &= req_ports - 1;
        std::uint64_t reqs = 0;
        std::uint32_t in_bits = chosen_in;
        while (in_bits != 0) {
            int pi = std::countr_zero(in_bits);
            in_bits &= in_bits - 1;
            if (chosen_port[pi] == po)
                reqs |= std::uint64_t{1} << pi;
        }
        if (reqs == 0)
            continue;
        int pi = rrGrant(reqs, outSaLast_[po]);

        int vi = chosen_vc[pi];
        int flat = pi * v + vi;
        int head = vc_[flat].head;
        Flit f = std::move(
            flitStore_[static_cast<std::size_t>(flat * depth + head)]);
        vc_[flat].head =
            static_cast<std::uint8_t>(head + 1 == depth ? 0 : head + 1);
        --vc_[flat].count;
        if (vc_[flat].count == 0)
            saPending_ &= ~(std::uint64_t{1} << flat);
        --bufferedFlits_;
        residence_.add(static_cast<double>(now - f.arrived + 1));
        ++flitsForwarded_;
        ++saGrants_;
        ++outFlitsSent_[po];
        ++activity_->bufferReads;
        ++activity_->xbarTraversals;
        ++activity_->saGrants;
        if (outIsGeo_ & (std::uint32_t{1} << po)) {
            if (outInterposer_ & (std::uint32_t{1} << po))
                ++activity_->interposerLinkFlits;
            else
                ++activity_->linkFlits;
        }

        std::int16_t of = vc_[flat].outFlat;
        --outCredits_[of];
        eqx_assert(outCredits_[of] >= 0,
                   "credit underflow at router ", id_);

        bool tail = f.isTail;
        f.vc = of - po * v;
        eqx_assert(outChan_[po], "output port without a channel");
        if (wheelSlots_) {
            wheelSlots_[(now + static_cast<Cycle>(outLat_[po])) &
                        directWheelMask_]
                .flits.push_back({outTag_[po], std::move(f)});
        } else {
            outChan_[po]->send(std::move(f), now);
        }

        // Return a credit for the freed input slot.
        if (creditUp_[pi]) {
            if (wheelSlots_) {
                wheelSlots_[(now + static_cast<Cycle>(crLat_[pi])) &
                            directWheelMask_]
                    .credits.push_back({crTag_[pi], Credit{pi, vi}});
            } else {
                creditUp_[pi]->send(Credit{pi, vi}, now);
            }
            ++activity_->creditsSent;
        }

        if (tail) {
            outBusy_[of] = 0;
            // The tail's credit is still outstanding (decremented just
            // above), so the VC can't be free yet; creditArrived()
            // will set the bit when the last credit returns. Kept as a
            // check rather than assumed:
            if (outCredits_[of] == params_->vcDepthFlits) {
                freeOutVcs_ |= std::uint64_t{1} << of;
                if (vaBlocked_ != 0)
                    wakeBlockedVa(po);
            }
            vc_[flat].state = VcState::Idle;
            vc_[flat].candCount = 0;
            vc_[flat].headOk = 0;
            vc_[flat].outPort = -1;
            vc_[flat].outFlat = -1;
        }
    }
}

double
Router::occupancyMean(Cycle now) const
{
    // Ticks between the last explicit sample and `now` were skipped
    // while idle: count them as zero-occupancy samples.
    std::uint64_t samples = occSamples_;
    if (now > occLastTick_)
        samples += now - occLastTick_;
    return samples ? static_cast<double>(occSumFlitTicks_) /
                         static_cast<double>(samples)
                   : 0.0;
}

void
Router::resetStats(Cycle now)
{
    residence_.reset();
    occSumFlitTicks_ = 0;
    occSamples_ = 0;
    occLastTick_ = now;
    flitsForwarded_ = 0;
    vaRequests_ = 0;
    vaGrants_ = 0;
    saRequests_ = 0;
    saGrants_ = 0;
    creditStallCycles_ = 0;
    for (int i = 0; i < numInputPorts(); ++i)
        inFlitsAccepted_[i] = 0;
    for (int i = 0; i < numOutputPorts(); ++i)
        outFlitsSent_[i] = 0;
    // Parked VA nominations re-base their deferred request accounting
    // at the reset boundary: only post-reset ticks may count.
    std::uint64_t m = vaBlocked_;
    while (m != 0) {
        int f = std::countr_zero(m);
        m &= m - 1;
        vaBlockTick_[f] = now;
    }
}

void
Router::syncInputPort(int i) const
{
    auto &ip = const_cast<Router *>(this)
                   ->inputs_[static_cast<std::size_t>(i)];
    int v = params_->vcsPerPort;
    ip.flitsAccepted = inFlitsAccepted_[i];
    for (int vi = 0; vi < v; ++vi) {
        int flat = i * v + vi;
        auto &vcb = ip.vcs[static_cast<std::size_t>(vi)];
        vcb.state = vc_[flat].state;
        if (vc_[flat].state == VcState::Active) {
            vcb.outPort = vc_[flat].outPort;
            vcb.outVc = vc_[flat].outFlat - vc_[flat].outPort * v;
        } else {
            vcb.outPort = -1;
            vcb.outVc = -1;
        }
        vcb.routeCandidates.clear();
        if (vc_[flat].state != VcState::Idle)
            for (int c = 0; c < vc_[flat].candCount; ++c)
                vcb.routeCandidates.push_back(vc_[flat].cand[c]);
    }
}

void
Router::syncOutputPort(int i) const
{
    auto &op = const_cast<Router *>(this)
                   ->outputs_[static_cast<std::size_t>(i)];
    int v = params_->vcsPerPort;
    op.flitsSent = outFlitsSent_[i];
    for (int vi = 0; vi < v; ++vi) {
        auto &ovc = op.vcs[static_cast<std::size_t>(vi)];
        ovc.credits = outCredits_[i * v + vi];
        ovc.busy = outBusy_[i * v + vi] != 0;
    }
}

const Router::InputPort &
Router::inputPort(int i) const
{
    syncInputPort(i);
    return inputs_[static_cast<std::size_t>(i)];
}

const Router::OutputPort &
Router::outputPort(int i) const
{
    syncOutputPort(i);
    return outputs_[static_cast<std::size_t>(i)];
}

bool
Router::pipelineStateConsistent() const
{
    int v = params_->vcsPerPort;
    int depth = params_->vcDepthFlits;
    int total = 0;
    for (int pi = 0; pi < numInputPorts(); ++pi) {
        for (int vi = 0; vi < v; ++vi) {
            int flat = pi * v + vi;
            std::uint64_t bit = std::uint64_t{1} << flat;
            if (vc_[flat].count > depth || vc_[flat].head >= depth)
                return false;
            total += vc_[flat].count;
            if (vc_[flat].state == VcState::Active) {
                std::int16_t of = vc_[flat].outFlat;
                if (vc_[flat].outPort < 0 ||
                    vc_[flat].outPort >= numOutputPorts())
                    return false;
                if (of < vc_[flat].outPort * v ||
                    of >= (vc_[flat].outPort + 1) * v)
                    return false;
                if (!outBusy_[of])
                    return false;
            } else if (vc_[flat].outPort != -1 ||
                       vc_[flat].outFlat != -1) {
                return false;
            }
            if (vc_[flat].state == VcState::RouteComputed &&
                vc_[flat].candCount == 0)
                return false;
            // Pending-mask membership per stage: VA and SA bits are
            // exact; an RC bit may be stale (cleared lazily) but every
            // routable head must be covered. A RouteComputed VC sits
            // on exactly one of vaPending_ / vaBlocked_ (parked
            // nominations are event-driven, DESIGN.md §14).
            if ((((vaPending_ | vaBlocked_) & bit) != 0) !=
                (vc_[flat].state == VcState::RouteComputed))
                return false;
            // A parked nomination must be registered with every one
            // of its candidate output ports, or a free-VC transition
            // there would never wake it.
            if ((vaBlocked_ & bit) != 0)
                for (int c = 0; c < vc_[flat].candCount; ++c)
                    if ((vaWaiters_[vc_[flat].cand[c]] & bit) == 0)
                        return false;
            if (((saPending_ & bit) != 0) !=
                (vc_[flat].state == VcState::Active &&
                 vc_[flat].count > 0))
                return false;
            if (vc_[flat].state == VcState::Idle && vc_[flat].count > 0 &&
                vc_[flat].headOk && (rcPending_ & bit) == 0)
                return false;
        }
    }
    if (total != bufferedFlits_)
        return false;
    if ((vaPending_ & vaBlocked_) != 0)
        return false;
    for (int of = 0; of < numOutputPorts() * v; ++of) {
        if (outCredits_[of] < 0)
            return false;
        if (outBusy_[of] > 1)
            return false;
        if (uniformCredit_ &&
            ((freeOutVcs_ >> of) & 1) !=
                (!outBusy_[of] && outCredits_[of] == depth ? 1u : 0u))
            return false;
        // Every busy output VC is owned by exactly one Active input VC.
        int owners = 0;
        for (int flat = 0; flat < numInputPorts() * v; ++flat)
            if (vc_[flat].state == VcState::Active &&
                vc_[flat].outFlat == of)
                ++owners;
        if (owners != (outBusy_[of] ? 1 : 0))
            return false;
    }
    return true;
}

} // namespace eqx
