#include "noc/packet.hh"

#include <atomic>

namespace eqx {

std::uint64_t
nextPacketId()
{
    // Atomic so concurrent System runs (JobPool workers) can allocate
    // ids without racing. Ids are debugging handles only — no
    // simulation decision reads them — so the cross-run interleaving
    // does not affect determinism of results.
    static std::atomic<std::uint64_t> id{0};
    return id.fetch_add(1, std::memory_order_relaxed) + 1;
}

PacketPtr
makePacket(PacketType type, NodeId src, NodeId dst, int bits, Addr addr,
           std::uint64_t tag)
{
    auto p = std::make_shared<Packet>();
    p->id = nextPacketId();
    p->type = type;
    p->src = src;
    p->dst = dst;
    p->bits = bits;
    p->addr = addr;
    p->tag = tag;
    return p;
}

} // namespace eqx
