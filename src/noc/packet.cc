#include "noc/packet.hh"

#include <atomic>
#include <memory>
#include <vector>

namespace eqx {

namespace {

/**
 * Thread-local freelist arena. Packets never cross threads (a JobPool
 * worker owns a whole System run end to end), so no locking and no
 * atomic refcounts are needed. Memory is carved in blocks and only
 * returned to the OS when the owning thread exits; the freelist is
 * LIFO so the hot loop keeps re-touching cache-warm packets.
 */
class PacketPool
{
  public:
    static constexpr std::size_t kBlockPackets = 256;

    Packet *
    allocate()
    {
        if (!free_) {
            blocks_.push_back(
                std::make_unique<Packet[]>(kBlockPackets));
            Packet *block = blocks_.back().get();
            for (std::size_t i = 0; i < kBlockPackets; ++i) {
                block[i].poolNext_ = free_;
                free_ = &block[i];
            }
        }
        Packet *p = free_;
        free_ = p->poolNext_;
        --freeCount_;
        // Recycled packets must be indistinguishable from fresh ones:
        // reset every simulation field to its default.
        *p = Packet{};
        return p;
    }

    void
    release(Packet *p)
    {
        p->poolNext_ = free_;
        free_ = p;
        ++freeCount_;
    }

    std::size_t
    freeCount() const
    {
        // blocks_ grow lazily, so count can go "negative" transiently
        // relative to capacity only if misused; it is a plain tally.
        return freeCount_;
    }

  private:
    Packet *free_ = nullptr;
    std::size_t freeCount_ = 0;
    std::vector<std::unique_ptr<Packet[]>> blocks_;
};

PacketPool &
pool()
{
    thread_local PacketPool p;
    return p;
}

} // namespace

namespace detail {

Packet *
allocatePacket()
{
    return pool().allocate();
}

void
releasePacket(Packet *p)
{
    pool().release(p);
}

} // namespace detail

std::size_t
packetPoolFreeCount()
{
    return pool().freeCount();
}

std::uint64_t
nextPacketId()
{
    // Atomic so concurrent System runs (JobPool workers) can allocate
    // ids without racing. Ids are debugging handles only — no
    // simulation decision reads them — so the cross-run interleaving
    // does not affect determinism of results.
    static std::atomic<std::uint64_t> id{0};
    return id.fetch_add(1, std::memory_order_relaxed) + 1;
}

PacketPtr
makePacket(PacketType type, NodeId src, NodeId dst, int bits, Addr addr,
           std::uint64_t tag)
{
    PacketPtr p = PacketPtr::adopt(detail::allocatePacket());
    p->id = nextPacketId();
    p->type = type;
    p->src = src;
    p->dst = dst;
    p->bits = bits;
    p->addr = addr;
    p->tag = tag;
    return p;
}

} // namespace eqx
