#include "noc/packet.hh"

namespace eqx {

std::uint64_t
nextPacketId()
{
    static std::uint64_t id = 0;
    return ++id;
}

PacketPtr
makePacket(PacketType type, NodeId src, NodeId dst, int bits, Addr addr,
           std::uint64_t tag)
{
    auto p = std::make_shared<Packet>();
    p->id = nextPacketId();
    p->type = type;
    p->src = src;
    p->dst = dst;
    p->bits = bits;
    p->addr = addr;
    p->tag = tag;
    return p;
}

} // namespace eqx
