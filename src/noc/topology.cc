#include "noc/topology.hh"

#include <cctype>

namespace eqx {

namespace {

/** Mesh-grid neighbor on an rw x rh router grid; -1 off the edge. */
int
gridNeighbor(int router, Dir d, int rw, int rh)
{
    Coord c{router % rw, router / rw};
    Coord step = dirStep(d);
    Coord n{c.x + step.x, c.y + step.y};
    if (n.x < 0 || n.x >= rw || n.y < 0 || n.y >= rh)
        return -1;
    return n.y * rw + n.x;
}

} // namespace

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Mesh:  return "mesh";
      case TopologyKind::Torus: return "torus";
      case TopologyKind::CMesh: return "cmesh";
    }
    return "?";
}

bool
parseTopologyKind(std::string_view s, TopologyKind &out)
{
    std::string low(s);
    for (char &c : low)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (low == "mesh") {
        out = TopologyKind::Mesh;
        return true;
    }
    if (low == "torus") {
        out = TopologyKind::Torus;
        return true;
    }
    if (low == "cmesh") {
        out = TopologyKind::CMesh;
        return true;
    }
    return false;
}

int
Mesh2D::neighbor(int router, Dir d) const
{
    return gridNeighbor(router, d, rw_, rh_);
}

int
Torus2D::neighbor(int router, Dir d) const
{
    Coord c{router % rw_, router / rw_};
    Coord step = dirStep(d);
    int x = (c.x + step.x + rw_) % rw_;
    int y = (c.y + step.y + rh_) % rh_;
    int n = y * rw_ + x;
    // A 2-wide ring would alias both directions onto one neighbor
    // (and a 1-wide ring onto itself); the Network constructor
    // rejects those sizes, but keep construction honest here too.
    eqx_assert(n != router, "degenerate torus ring (side < 2)");
    return n;
}

int
CMesh::neighbor(int router, Dir d) const
{
    return gridNeighbor(router, d, rw_, rh_);
}

std::unique_ptr<const Topology>
makeTopology(int width, int height, const TopoSpec &spec)
{
    switch (spec.kind) {
      case TopologyKind::Mesh:
        return std::make_unique<Mesh2D>(width, height);
      case TopologyKind::Torus:
        return std::make_unique<Torus2D>(width, height);
      case TopologyKind::CMesh:
        return std::make_unique<CMesh>(width, height,
                                       spec.concentration);
    }
    eqx_fatal("unknown topology kind ", static_cast<int>(spec.kind));
    return nullptr;
}

} // namespace eqx
