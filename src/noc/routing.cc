#include "noc/routing.hh"

#include "common/logging.hh"

namespace eqx {

Dir
xyDirection(const Coord &here, const Coord &dest)
{
    if (dest.x > here.x)
        return Dir::East;
    if (dest.x < here.x)
        return Dir::West;
    if (dest.y > here.y)
        return Dir::South;
    if (dest.y < here.y)
        return Dir::North;
    return Dir::Local;
}

RouteCandidates
minimalDirections(const Coord &here, const Coord &dest)
{
    RouteCandidates dirs;
    if (dest.x > here.x)
        dirs.push_back(Dir::East);
    else if (dest.x < here.x)
        dirs.push_back(Dir::West);
    if (dest.y > here.y)
        dirs.push_back(Dir::South);
    else if (dest.y < here.y)
        dirs.push_back(Dir::North);
    return dirs;
}

bool
isMinimalStep(const Coord &here, const Coord &dest, Dir d)
{
    Coord step = dirStep(d);
    Coord next{here.x + step.x, here.y + step.y};
    return manhattan(next, dest) < manhattan(here, dest);
}

} // namespace eqx
