/**
 * @file
 * Pluggable network topology layer (DESIGN.md §17). A Topology owns
 * every piece of fabric geometry the simulator used to hard-code as
 * 2D-mesh `Dir` arithmetic:
 *
 *  - the endpoint (tile) space: `coord`/`node` mapping, `numNodes()`;
 *  - the router space: `routerOf`/`tileSlot`/`routerCoord` — for the
 *    unconcentrated topologies the two spaces coincide, for CMesh a
 *    c x c block of tiles shares one router;
 *  - link wiring: `neighbor(router, dir)` drives Network channel
 *    construction, returning -1 where the mesh has an edge and the
 *    wrapped router id where the torus closes the ring;
 *  - routed hop distance: `distance(a, b)` between endpoint tiles,
 *    the single source of hop geometry for both the router/NI layer
 *    and the src/core EIR evaluator (so search scores stay consistent
 *    with what the NoC simulates);
 *  - route compute: `dimOrderDir` (the escape discipline) and
 *    `minimalRouterDirs` (the adaptive candidate set), plus
 *    `wrapClass` — the per-hop dateline VC class that keeps the torus
 *    escape sub-network acyclic (see DESIGN.md §17 for the proof).
 *
 * Hot queries are non-virtual and data-driven (a switch on the kind
 * enum over base-class fields) so the router's route-compute stage
 * pays no virtual dispatch; only construction-time wiring
 * (`neighbor`) and identity (`name`) are virtual.
 */

#ifndef EQX_NOC_TOPOLOGY_HH
#define EQX_NOC_TOPOLOGY_HH

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/routing.hh"

namespace eqx {

enum class TopologyKind : std::uint8_t { Mesh = 0, Torus = 1, CMesh = 2 };

/** Canonical lowercase kind name ("mesh", "torus", "cmesh"). */
const char *topologyKindName(TopologyKind k);

/** Parse a case-insensitive kind name; false on an unknown key. */
bool parseTopologyKind(std::string_view s, TopologyKind &out);

/** The per-network topology knobs a scheme or config can set. */
struct TopoSpec
{
    TopologyKind kind = TopologyKind::Mesh;
    /** CMesh concentration: a c x c tile block shares one router. */
    int concentration = 2;

    bool
    operator==(const TopoSpec &o) const
    {
        return kind == o.kind && concentration == o.concentration;
    }
    bool operator!=(const TopoSpec &o) const { return !(*this == o); }
};

class Topology
{
  public:
    virtual ~Topology() = default;

    virtual const char *name() const = 0;

    /**
     * The router reached by following @p d out of @p router, or -1
     * where the topology has no such link. Construction-time only:
     * Network's channel builder walks routers in ascending id and
     * directions in its fixed order, so for the mesh this reproduces
     * the pre-topology port wiring exactly.
     */
    virtual int neighbor(int router, Dir d) const = 0;

    TopologyKind kind() const { return kind_; }
    int width() const { return w_; }
    int height() const { return h_; }
    int concentration() const { return conc_; }

    /** Endpoint (tile) count — PEs/CBs/NIs live in this space. */
    int numNodes() const { return w_ * h_; }
    int routerCols() const { return rw_; }
    int routerRows() const { return rh_; }
    int numRouters() const { return rw_ * rh_; }

    bool wraps() const { return kind_ == TopologyKind::Torus; }
    bool concentrated() const { return conc_ > 1; }

    // ---- endpoint (tile) space ----

    Coord
    coord(NodeId n) const
    {
        return {static_cast<int>(n) % w_, static_cast<int>(n) / w_};
    }
    NodeId
    node(const Coord &c) const
    {
        return static_cast<NodeId>(c.y * w_ + c.x);
    }
    bool
    inBounds(const Coord &c) const
    {
        return c.x >= 0 && c.x < w_ && c.y >= 0 && c.y < h_;
    }

    // ---- router space ----

    /** The router serving endpoint @p tile. */
    NodeId
    routerOf(NodeId tile) const
    {
        if (conc_ == 1)
            return tile;
        Coord c = coord(tile);
        return static_cast<NodeId>((c.y / conc_) * rw_ + c.x / conc_);
    }

    /**
     * The rank of @p tile among its router's tiles in ascending
     * tile-id order — exactly the order Network attaches the tiles'
     * ejection ports, so a concentrated router can eject by indexing
     * its ejection-port list with the destination's slot.
     */
    int
    tileSlot(NodeId tile) const
    {
        if (conc_ == 1)
            return 0;
        Coord c = coord(tile);
        return (c.y % conc_) * conc_ + c.x % conc_;
    }

    Coord
    routerCoord(NodeId router) const
    {
        return {static_cast<int>(router) % rw_,
                static_cast<int>(router) / rw_};
    }

    /** Router-space coordinate of endpoint @p tile's router. */
    Coord
    routerCoordOf(NodeId tile) const
    {
        if (conc_ == 1)
            return coord(tile);
        Coord c = coord(tile);
        return {c.x / conc_, c.y / conc_};
    }

    // ---- routed hop geometry ----

    /**
     * Routed hop distance between two *router-space* coordinates:
     * Manhattan on grid topologies, wrapped per-ring minimum on the
     * torus.
     */
    int
    routerDistance(const Coord &a, const Coord &b) const
    {
        if (kind_ == TopologyKind::Torus) {
            int dx = a.x > b.x ? a.x - b.x : b.x - a.x;
            int dy = a.y > b.y ? a.y - b.y : b.y - a.y;
            return std::min(dx, rw_ - dx) + std::min(dy, rh_ - dy);
        }
        return manhattan(a, b);
    }

    /**
     * Routed hop distance between the routers serving endpoint tiles
     * at @p a and @p b: Manhattan on the mesh, wrapped per-ring
     * minimum on the torus, router-grid Manhattan on CMesh. This is
     * the hop metric the EIR evaluator and the NI buffer selection
     * share with the router's minimal route compute.
     */
    int
    distance(const Coord &a, const Coord &b) const
    {
        if (conc_ == 1)
            return routerDistance(a, b);
        return routerDistance({a.x / conc_, a.y / conc_},
                              {b.x / conc_, b.y / conc_});
    }

    /**
     * The dimension-order (escape) direction from router @p cur
     * toward router @p dest: x first, then y, taking the wrap link
     * when it is strictly shorter (even-ring ties break toward
     * East/South, matching the positive direction the mesh prefers).
     */
    Dir
    dimOrderDir(const Coord &cur, const Coord &dest) const
    {
        if (!wraps())
            return xyDirection(cur, dest);
        if (dest.x != cur.x) {
            int fwd = dest.x - cur.x;
            if (fwd < 0)
                fwd += rw_;
            return fwd <= rw_ - fwd ? Dir::East : Dir::West;
        }
        if (dest.y != cur.y) {
            int fwd = dest.y - cur.y;
            if (fwd < 0)
                fwd += rh_;
            return fwd <= rh_ - fwd ? Dir::South : Dir::North;
        }
        return Dir::Local;
    }

    /**
     * All minimal directions from router @p cur toward router
     * @p dest: at most one per dimension, x candidate first. On the
     * torus a wrap direction appears iff it is not longer than the
     * inward path (ties break to East/South, exactly as
     * dimOrderDir).
     */
    RouteCandidates
    minimalRouterDirs(const Coord &cur, const Coord &dest) const
    {
        if (!wraps())
            return minimalDirections(cur, dest);
        RouteCandidates out;
        if (dest.x != cur.x) {
            int fwd = dest.x - cur.x;
            if (fwd < 0)
                fwd += rw_;
            out.push_back(fwd <= rw_ - fwd ? Dir::East : Dir::West);
        }
        if (dest.y != cur.y) {
            int fwd = dest.y - cur.y;
            if (fwd < 0)
                fwd += rh_;
            out.push_back(fwd <= rh_ - fwd ? Dir::South : Dir::North);
        }
        return out;
    }

    /**
     * The dateline VC class of a packet at router @p cur heading for
     * router @p dest along @p d: 0 while the minimal path in @p d's
     * dimension still has the wrap link ahead of it, 1 once it does
     * not (or never did). Per ring the order
     * (router 0, class 0) < ... < (w-1, class 0) < (0, class 1) <
     * ... < (w-1, class 1) strictly increases along every escape
     * hop — class-1 packets never use the wrap link — so the escape
     * sub-network is acyclic (DESIGN.md §17). Non-wrapping
     * topologies are always class 1.
     */
    int
    wrapClass(const Coord &cur, const Coord &dest, Dir d) const
    {
        if (!wraps())
            return 1;
        switch (d) {
          case Dir::East:
            return dest.x < cur.x ? 0 : 1;
          case Dir::West:
            return dest.x > cur.x ? 0 : 1;
          case Dir::South:
            return dest.y < cur.y ? 0 : 1;
          case Dir::North:
            return dest.y > cur.y ? 0 : 1;
          default:
            return 1;
        }
    }

  protected:
    Topology(TopologyKind kind, int width, int height, int conc)
        : kind_(kind), w_(width), h_(height), conc_(conc),
          rw_(width / conc), rh_(height / conc)
    {
        eqx_assert(conc_ >= 1, "concentration must be positive");
        eqx_assert(w_ % conc_ == 0 && h_ % conc_ == 0,
                   "width and height must be multiples of the "
                   "concentration factor");
    }

    const TopologyKind kind_;
    const int w_;    ///< endpoint columns
    const int h_;    ///< endpoint rows
    const int conc_; ///< tiles per router side (1 unless CMesh)
    const int rw_;   ///< router columns
    const int rh_;   ///< router rows
};

/** The extracted default: the paper's 2D mesh, byte-identical. */
class Mesh2D final : public Topology
{
  public:
    Mesh2D(int width, int height)
        : Topology(TopologyKind::Mesh, width, height, 1)
    {
    }
    const char *name() const override { return "mesh"; }
    int neighbor(int router, Dir d) const override;
};

/** 2D torus: the mesh with per-ring wrap links. */
class Torus2D final : public Topology
{
  public:
    Torus2D(int width, int height)
        : Topology(TopologyKind::Torus, width, height, 1)
    {
    }
    const char *name() const override { return "torus"; }
    int neighbor(int router, Dir d) const override;
};

/** Concentrated mesh: one router per c x c block of endpoint tiles. */
class CMesh final : public Topology
{
  public:
    CMesh(int width, int height, int concentration)
        : Topology(TopologyKind::CMesh, width, height, concentration)
    {
        eqx_assert(concentration > 1,
                   "CMesh needs a concentration factor > 1");
    }
    const char *name() const override { return "cmesh"; }
    int neighbor(int router, Dir d) const override;
};

/** Build the topology @p spec describes over a w x h endpoint grid. */
std::unique_ptr<const Topology>
makeTopology(int width, int height, const TopoSpec &spec = {});

} // namespace eqx

#endif // EQX_NOC_TOPOLOGY_HH
