/**
 * @file
 * Configuration parameters for one physical network. A full-system
 * scheme (Section 5 of the paper) instantiates one or more networks,
 * each with its own NocParams.
 */

#ifndef EQX_NOC_PARAMS_HH
#define EQX_NOC_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "noc/topology.hh"

namespace eqx {

/** Routing algorithms supported by the router's route-compute stage. */
enum class RoutingMode : std::uint8_t
{
    /** Deterministic dimension-order (X then Y). */
    XY,
    /**
     * Minimal adaptive with a Duato-style escape VC: the highest VC
     * index is reserved for XY routing only; adaptive VCs may pick any
     * minimal direction and may drop into the escape VC when blocked.
     */
    MinimalAdaptive,
};

/** Which message classes a network carries. */
struct ClassMask
{
    bool request = true;
    bool reply = true;

    bool
    accepts(PacketType t) const
    {
        return isRequest(t) ? request : reply;
    }
};

/** Parameters of one physical mesh network (paper Table 1 defaults). */
struct NocParams
{
    std::string name = "net";

    int width = 8;             ///< mesh columns
    int height = 8;            ///< mesh rows

    int vcsPerPort = 2;        ///< virtual channels per port
    int vcDepthFlits = 5;      ///< buffer depth per VC (1 packet)
    int flitBits = 128;        ///< link/flit width

    RoutingMode routing = RoutingMode::MinimalAdaptive;

    /**
     * Fabric topology over the width x height endpoint grid
     * (DESIGN.md §17). Torus wraps every row/column ring and requires
     * vcsPerPort >= 2 (XY) or >= 3 (MinimalAdaptive) for the dateline
     * VC discipline; CMesh shares one router per
     * topo.concentration^2-tile block. Mesh is the byte-identical
     * default.
     */
    TopoSpec topo;

    /**
     * Single-network mode: VC classes are segregated (VC0.. for
     * requests, the rest for replies) and routing is forced to XY for
     * per-class deadlock freedom.
     */
    bool classVcs = false;

    /**
     * VC-Monopolization [Jang et al., DAC'15]: in classVcs mode, a
     * packet may allocate a VC of the other class when no flit of that
     * class has passed the router within vcMonoWindow cycles.
     */
    bool vcMono = false;
    int vcMonoWindow = 64;

    /**
     * Coherence multicast classes (traffic model "coherence"): in
     * classVcs mode, reserve the top coherenceVcs VCs as a third class
     * carrying Invalidate/InvAck packets, so the invalidation fan-out
     * cannot deadlock against the request/reply classes it crosses.
     * 0 (default) = coherence packets share the class of their
     * direction (InvAck with requests, Invalidate with replies).
     * Requires vcsPerPort >= coherenceVcs + 2 when set.
     */
    int coherenceVcs = 0;

    int channelLatencyCycles = 1; ///< router-to-router link latency

    /**
     * Mesh links routed through the interposer RDLs (the CMesh overlay
     * of Interposer-CMesh): counted as interposer traversals by the
     * power model.
     */
    bool geoLinksInterposer = false;

    /**
     * Disable activity-driven tick scheduling: every internal tick
     * visits every router, NI and wire exhaustively (the pre-scheduler
     * loop). Results are bit-identical either way (DESIGN.md §10);
     * kept for equivalence tests and before/after benchmarking.
     */
    bool exhaustiveTick = false;

    int niInjBufPackets = 2;   ///< default NI injection queue (packets)
    int niEjectQueuePackets = 4; ///< assembled packets awaiting the sink

    ClassMask classes;         ///< which packet classes are admitted

    /**
     * Internal network ticks per core cycle, alternating even/odd core
     * cycles. {1,1} = core clock; DA2Mesh subnets use {3,2} = 2.5x.
     */
    int ticksEvenCycle = 1;
    int ticksOddCycle = 1;

    int numNodes() const { return width * height; }
    /** Flits needed for a packet of the given payload size. */
    int
    flitsForBits(int bits) const
    {
        int f = (bits + flitBits - 1) / flitBits;
        return f < 1 ? 1 : f;
    }
    /** Average internal ticks per core cycle (e.g. 2.5 for DA2Mesh). */
    double
    clockRatio() const
    {
        return (ticksEvenCycle + ticksOddCycle) / 2.0;
    }
};

/**
 * VC class of a packet in a classVcs network: 0 = request, 1 = reply,
 * 2 = coherence (only when the network reserves coherence VCs —
 * otherwise Invalidate/InvAck fold into the class of their direction).
 */
inline int
packetVcClass(PacketType t, const NocParams &p)
{
    if (p.coherenceVcs > 0 && isCoherence(t))
        return 2;
    return isRequest(t) ? 0 : 1;
}

/** Payload sizes in bits for the packet types (64 B lines). */
struct PacketSizes
{
    int readRequestBits = 128;
    int writeRequestBits = 640;
    int readReplyBits = 640;
    int writeReplyBits = 128;
    int invalidateBits = 128; ///< coherence: address-only control packet
    int invAckBits = 128;     ///< coherence: address-only control packet

    int
    bitsFor(PacketType t) const
    {
        switch (t) {
          case PacketType::ReadRequest:  return readRequestBits;
          case PacketType::WriteRequest: return writeRequestBits;
          case PacketType::ReadReply:    return readReplyBits;
          case PacketType::WriteReply:   return writeReplyBits;
          case PacketType::Invalidate:   return invalidateBits;
          case PacketType::InvAck:       return invAckBits;
        }
        return 128;
    }
};

} // namespace eqx

#endif // EQX_NOC_PARAMS_HH
