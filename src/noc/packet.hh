/**
 * @file
 * Packets and flits. A packet is the unit endpoints exchange; the
 * network serializes it into flits sized to the link width.
 *
 * Packets are pool-allocated with a *non-atomic* intrusive refcount:
 * a packet is created, routed and sunk entirely on one thread (a
 * JobPool worker owns a whole System run; tests drive networks from
 * the calling thread), so the shared_ptr atomic refcount traffic the
 * flit hot path used to pay bought nothing. Each thread keeps its own
 * freelist arena; see DESIGN.md §10 for the lifetime rules.
 */

#ifndef EQX_NOC_PACKET_HH
#define EQX_NOC_PACKET_HH

#include <cstdint>
#include <cstddef>
#include <utility>

#include "common/types.hh"

namespace eqx {

/**
 * One in-flight message. Latency book-keeping fields are stamped by
 * the NI/network as the packet progresses, in *core* cycles.
 */
struct Packet
{
    std::uint64_t id = 0;
    PacketType type = PacketType::ReadRequest;
    NodeId src = kInvalidNode;    ///< logical source node (tile)
    NodeId dst = kInvalidNode;    ///< logical destination node (tile)
    Addr addr = 0;                ///< memory line address (for endpoints)
    int bits = 128;               ///< payload size

    /** Opaque tag endpoints may use to match replies to requests. */
    std::uint64_t tag = 0;

    Cycle cycleCreated = 0;   ///< enqueued at the source NI
    Cycle cycleInjected = 0;  ///< head flit entered the first router
    Cycle cycleEjected = 0;   ///< tail flit delivered to the sink

    /** Router the packet physically enters (EIR injection may differ
     *  from src); set by the NI. */
    NodeId entryRouter = kInvalidNode;

    /**
     * Final destination in the *tile* namespace when the packet rides
     * an overlay network whose own node ids differ (Interposer-CMesh):
     * dst then names the overlay exit router and finalDst the tile.
     */
    NodeId finalDst = kInvalidNode;

    /**
     * End-to-end delivery identity, stamped by the source NI only when
     * the fault-recovery protocol is armed (DESIGN.md §11.3): seqSrc
     * is the injecting NI and seq its per-destination sequence number.
     * A retransmitted clone carries the original identity so the
     * receiver can discard duplicates. seqSrc == kInvalidNode means
     * the packet is outside the protocol.
     */
    NodeId seqSrc = kInvalidNode;
    std::uint32_t seq = 0;

    Cycle queueLatency() const { return cycleInjected - cycleCreated; }
    Cycle networkLatency() const { return cycleEjected - cycleInjected; }
    Cycle totalLatency() const { return cycleEjected - cycleCreated; }

    /** Pool internals: live references and the freelist link. Not
     *  simulation state — managed exclusively by PacketPtr/the pool. */
    std::uint32_t poolRefs_ = 0;
    Packet *poolNext_ = nullptr;
};

namespace detail {
/** Return a zero-reference packet to its thread's freelist. */
void releasePacket(Packet *p);
/** Take a default-initialized packet from the thread's freelist. */
Packet *allocatePacket();
} // namespace detail

/**
 * Intrusive smart pointer over pooled packets. Copying bumps a plain
 * (non-atomic) counter; moving is pointer-steal only, so flits travel
 * through channels and VC buffers without touching the refcount.
 */
class PacketPtr
{
  public:
    PacketPtr() = default;
    PacketPtr(std::nullptr_t) {}

    PacketPtr(const PacketPtr &o) : p_(o.p_)
    {
        if (p_)
            ++p_->poolRefs_;
    }

    PacketPtr(PacketPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    PacketPtr &
    operator=(const PacketPtr &o)
    {
        if (o.p_)
            ++o.p_->poolRefs_;
        Packet *old = p_;
        p_ = o.p_;
        unref(old);
        return *this;
    }

    PacketPtr &
    operator=(PacketPtr &&o) noexcept
    {
        if (this != &o) {
            Packet *old = p_;
            p_ = o.p_;
            o.p_ = nullptr;
            unref(old);
        }
        return *this;
    }

    ~PacketPtr() { unref(p_); }

    Packet *operator->() const { return p_; }
    Packet &operator*() const { return *p_; }
    Packet *get() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    void
    reset()
    {
        Packet *old = p_;
        p_ = nullptr;
        unref(old);
    }

    /** Live references to the pointee (debug/test visibility). */
    std::uint32_t useCount() const { return p_ ? p_->poolRefs_ : 0; }

    friend bool
    operator==(const PacketPtr &a, const PacketPtr &b)
    {
        return a.p_ == b.p_;
    }
    friend bool
    operator!=(const PacketPtr &a, const PacketPtr &b)
    {
        return a.p_ != b.p_;
    }
    friend bool
    operator==(const PacketPtr &a, std::nullptr_t)
    {
        return a.p_ == nullptr;
    }
    friend bool
    operator!=(const PacketPtr &a, std::nullptr_t)
    {
        return a.p_ != nullptr;
    }

    /** Adopt a freshly allocated zero-ref packet (pool internal). */
    static PacketPtr
    adopt(Packet *p)
    {
        PacketPtr out;
        out.p_ = p;
        ++p->poolRefs_;
        return out;
    }

  private:
    static void
    unref(Packet *p)
    {
        if (p && --p->poolRefs_ == 0)
            detail::releasePacket(p);
    }

    Packet *p_ = nullptr;
};

/** One link-width slice of a packet. */
struct Flit
{
    PacketPtr pkt;

    /** Scratch: cycle this flit entered the current router's buffer
     *  (internal network ticks), for per-router residence stats. */
    Cycle arrived = 0;

    /** Position within the packet. Narrow on purpose: a flit is moved
     *  four times per hop (buffer -> SA -> wheel -> acceptFlit), so
     *  the struct is packed to 24 bytes. 128-bit flits cap packets at
     *  well under 64k flits. */
    std::uint16_t index = 0;
    std::int8_t vc = 0;       ///< VC on the current link / input buffer
    bool isHead = false;
    bool isTail = false;

    /** Per-flit checksum, stamped by the NI serializer only on
     *  fault-armed networks and verified where a wire delivers into a
     *  router; 0 and ignored otherwise (DESIGN.md §11.2). */
    std::uint16_t fcs = 0;
};

/** A flow-control credit returned upstream for one freed buffer slot. */
struct Credit
{
    int port = 0; ///< the *downstream receiver's* input port (upstream out port context)
    int vc = 0;
};

/** Process-wide packet id allocator (monotonic, thread safe). */
std::uint64_t nextPacketId();

/** Convenience constructor. */
PacketPtr makePacket(PacketType type, NodeId src, NodeId dst, int bits,
                     Addr addr = 0, std::uint64_t tag = 0);

/** Packets currently on this thread's freelist (test visibility). */
std::size_t packetPoolFreeCount();

} // namespace eqx

#endif // EQX_NOC_PACKET_HH
