/**
 * @file
 * Packets and flits. A packet is the unit endpoints exchange; the
 * network serializes it into flits sized to the link width.
 */

#ifndef EQX_NOC_PACKET_HH
#define EQX_NOC_PACKET_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace eqx {

/**
 * One in-flight message. Latency book-keeping fields are stamped by
 * the NI/network as the packet progresses, in *core* cycles.
 */
struct Packet
{
    std::uint64_t id = 0;
    PacketType type = PacketType::ReadRequest;
    NodeId src = kInvalidNode;    ///< logical source node (tile)
    NodeId dst = kInvalidNode;    ///< logical destination node (tile)
    Addr addr = 0;                ///< memory line address (for endpoints)
    int bits = 128;               ///< payload size

    /** Opaque tag endpoints may use to match replies to requests. */
    std::uint64_t tag = 0;

    Cycle cycleCreated = 0;   ///< enqueued at the source NI
    Cycle cycleInjected = 0;  ///< head flit entered the first router
    Cycle cycleEjected = 0;   ///< tail flit delivered to the sink

    /** Router the packet physically enters (EIR injection may differ
     *  from src); set by the NI. */
    NodeId entryRouter = kInvalidNode;

    /**
     * Final destination in the *tile* namespace when the packet rides
     * an overlay network whose own node ids differ (Interposer-CMesh):
     * dst then names the overlay exit router and finalDst the tile.
     */
    NodeId finalDst = kInvalidNode;

    Cycle queueLatency() const { return cycleInjected - cycleCreated; }
    Cycle networkLatency() const { return cycleEjected - cycleInjected; }
    Cycle totalLatency() const { return cycleEjected - cycleCreated; }
};

using PacketPtr = std::shared_ptr<Packet>;

/** One link-width slice of a packet. */
struct Flit
{
    PacketPtr pkt;
    int index = 0;            ///< position within the packet
    bool isHead = false;
    bool isTail = false;
    int vc = 0;               ///< VC on the current link / input buffer

    /** Scratch: cycle this flit entered the current router's buffer
     *  (internal network ticks), for per-router residence stats. */
    Cycle arrived = 0;
};

/** A flow-control credit returned upstream for one freed buffer slot. */
struct Credit
{
    int port = 0; ///< the *downstream receiver's* input port (upstream out port context)
    int vc = 0;
};

/** Process-wide packet id allocator (monotonic, thread safe). */
std::uint64_t nextPacketId();

/** Convenience constructor. */
PacketPtr makePacket(PacketType type, NodeId src, NodeId dst, int bits,
                     Addr addr = 0, std::uint64_t tag = 0);

} // namespace eqx

#endif // EQX_NOC_PACKET_HH
