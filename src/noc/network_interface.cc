#include "noc/network_interface.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

NetworkInterface::NetworkInterface(NodeId node, const Topology *topo,
                                   const NocParams *params,
                                   NetworkActivity *activity,
                                   LatencyStats *latency)
    : node_(node), topo_(topo), params_(params), activity_(activity),
      latency_(latency), coreCapacity_(params->niInjBufPackets)
{
    eqx_assert(coreCapacity_ >= 1, "NI core queue needs capacity");
}

int
NetworkInterface::addInjBuffer(int capacity_packets, Channel<Flit> *out,
                               NodeId target_router, bool interposer)
{
    InjBuffer b;
    b.capacityPackets = capacity_packets;
    b.out = out;
    b.targetRouter = target_router;
    b.targetCoord = topo_->coord(target_router);
    b.interposer = interposer;
    b.credits.assign(static_cast<std::size_t>(params_->vcsPerPort),
                     params_->vcDepthFlits);
    bufs_.push_back(std::move(b));
    return static_cast<int>(bufs_.size()) - 1;
}

int
NetworkInterface::addEjPort(Channel<Credit> *credit_up)
{
    EjPort p;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort),
                 VcBuffer(params_->vcDepthFlits));
    p.creditUp = credit_up;
    p.arb.resize(params_->vcsPerPort);
    ejPorts_.push_back(std::move(p));
    return static_cast<int>(ejPorts_.size()) - 1;
}

bool
NetworkInterface::canInject() const
{
    return static_cast<int>(coreQueue_.size()) < coreCapacity_;
}

bool
NetworkInterface::inject(const PacketPtr &pkt, Cycle now_ticks)
{
    eqx_assert(params_->classes.accepts(pkt->type),
               "packet class not admitted by network ", params_->name);
    if (!canInject())
        return false;
    pkt->cycleCreated = now_ticks;
    coreQueue_.push_back(pkt);
    return true;
}

void
NetworkInterface::creditArrived(int buf, int vc)
{
    auto &b = bufs_[static_cast<std::size_t>(buf)];
    ++b.credits[static_cast<std::size_t>(vc)];
    eqx_assert(b.credits[static_cast<std::size_t>(vc)] <=
                   params_->vcDepthFlits,
               "injection credit overflow");
}

void
NetworkInterface::acceptEjectedFlit(int ej_port, Flit f)
{
    auto &p = ejPorts_[static_cast<std::size_t>(ej_port)];
    p.vcs[static_cast<std::size_t>(f.vc)].push(std::move(f));
}

void
NetworkInterface::allowedVcs(PacketType t, int &lo, int &hi) const
{
    int v = params_->vcsPerPort;
    lo = 0;
    hi = v - 1;
    if (!params_->classVcs)
        return;
    int half = v / 2;
    if (half == 0)
        half = 1;
    if (isRequest(t)) {
        hi = std::min(half, v) - 1;
    } else {
        lo = std::min(half, v - 1);
    }
}

void
NetworkInterface::tickEjection(Cycle now_ticks)
{
    int v = params_->vcsPerPort;
    for (auto &p : ejPorts_) {
        if (static_cast<int>(delivered_.size()) >=
            params_->niEjectQueuePackets)
            return; // assembled-packet queue full: apply backpressure
        ejReqs_.clear();
        for (int i = 0; i < v; ++i)
            if (!p.vcs[static_cast<std::size_t>(i)].empty())
                ejReqs_.push_back(i);
        if (ejReqs_.empty())
            continue;
        // grantList picks the same winner grant() would (closest index
        // after the previous one in rotation) without the per-tick
        // vector<bool> allocation.
        int vc = p.arb.grantList(ejReqs_);
        Flit f = p.vcs[static_cast<std::size_t>(vc)].pop();
        if (p.creditUp)
            p.creditUp->send(Credit{0, vc}, now_ticks);
        if (f.isTail) {
            f.pkt->cycleEjected = now_ticks;
            int c = LatencyStats::classIdx(f.pkt->type);
            latency_->queueLat[c].add(
                static_cast<double>(f.pkt->queueLatency()));
            latency_->netLat[c].add(
                static_cast<double>(f.pkt->networkLatency()));
            latency_->totalLat[c].add(
                static_cast<double>(f.pkt->totalLatency()));
            latency_->totalHist[c].add(
                static_cast<double>(f.pkt->totalLatency()));
            ++latency_->packets[c];
            delivered_.push_back(f.pkt);
        }
    }
}

void
NetworkInterface::serializeBuffer(InjBuffer &b, Cycle now_ticks)
{
    if (!b.current) {
        if (b.queue.empty())
            return;
        b.current = b.queue.front();
        b.queue.pop_front();
        b.numFlits = params_->flitsForBits(b.current->bits);
        b.flitsSent = 0;
        b.vc = -1;
    }
    if (b.vc < 0) {
        // Atomic VC acquisition: the target input VC must be empty.
        int lo, hi;
        allowedVcs(b.current->type, lo, hi);
        for (int vc = lo; vc <= hi; ++vc) {
            if (b.credits[static_cast<std::size_t>(vc)] ==
                params_->vcDepthFlits) {
                b.vc = vc;
                break;
            }
        }
        if (b.vc < 0) {
            ++b.creditStallTicks;
            return; // all candidate VCs occupied: retry next tick
        }
    }
    if (b.credits[static_cast<std::size_t>(b.vc)] <= 0) {
        ++b.creditStallTicks;
        return;
    }

    Flit f;
    f.pkt = b.current;
    f.index = b.flitsSent;
    f.isHead = b.flitsSent == 0;
    f.isTail = b.flitsSent == b.numFlits - 1;
    f.vc = b.vc;
    if (f.isHead) {
        b.current->cycleInjected = now_ticks;
        b.current->entryRouter = b.targetRouter;
        ++b.packetsInjected;
        if (isRequest(b.current->type))
            activity_->requestBits += static_cast<std::uint64_t>(
                b.current->bits);
        else
            activity_->replyBits += static_cast<std::uint64_t>(
                b.current->bits);
    }
    ++b.flitsInjected;
    --b.credits[static_cast<std::size_t>(b.vc)];
    if (b.interposer)
        ++activity_->interposerLinkFlits;
    else
        ++activity_->linkFlits;
    bool tail = f.isTail;
    b.out->send(std::move(f), now_ticks);
    ++b.flitsSent;
    if (tail) {
        b.current.reset();
        b.vc = -1;
    }
}

void
NetworkInterface::tickInjection(Cycle now_ticks)
{
    // NI core logic dispatches at most one packet per tick to a buffer.
    if (!coreQueue_.empty()) {
        int idx = selectBuffer(coreQueue_.front());
        if (idx >= 0) {
            auto &b = bufs_[static_cast<std::size_t>(idx)];
            eqx_assert(static_cast<int>(b.queue.size()) <
                           b.capacityPackets,
                       "selectBuffer returned a full buffer");
            b.queue.push_back(coreQueue_.front());
            coreQueue_.pop_front();
        }
    }
    for (auto &b : bufs_)
        serializeBuffer(b, now_ticks);
}

void
NetworkInterface::tick(Cycle now_ticks, Cycle core_now)
{
    tickEjection(now_ticks);
    while (!delivered_.empty() && sink_ &&
           sink_->canAccept(delivered_.front())) {
        PacketPtr pkt = delivered_.front();
        delivered_.pop_front();
        sink_->accept(pkt, core_now);
    }
    if (!sink_) {
        // Pure traffic-sink mode: consume unconditionally.
        delivered_.clear();
    }
    tickInjection(now_ticks);
}

void
NetworkInterface::resetStats()
{
    for (auto &b : bufs_) {
        b.packetsInjected = 0;
        b.flitsInjected = 0;
        b.creditStallTicks = 0;
    }
}

bool
NetworkInterface::idle() const
{
    if (!coreQueue_.empty() || !delivered_.empty())
        return false;
    for (const auto &b : bufs_)
        if (!b.idle())
            return false;
    for (const auto &p : ejPorts_)
        for (const auto &vc : p.vcs)
            if (!vc.empty())
                return false;
    return true;
}

int
BasicNi::selectBuffer(const PacketPtr &)
{
    eqx_assert(!bufs_.empty(), "BasicNi has no buffer");
    auto &b = bufs_[0];
    return static_cast<int>(b.queue.size()) < b.capacityPackets ? 0 : -1;
}

int
MultiPortNi::selectBuffer(const PacketPtr &)
{
    int n = numInjBuffers();
    for (int i = 0; i < n; ++i) {
        int idx = (rr_ + 1 + i) % n;
        const auto &b = bufs_[static_cast<std::size_t>(idx)];
        if (static_cast<int>(b.queue.size()) < b.capacityPackets) {
            rr_ = idx;
            return idx;
        }
    }
    return -1;
}

int
EquiNoxNi::selectBuffer(const PacketPtr &pkt)
{
    // Buffer 0 = local router; buffers 1..n = EIRs over the interposer.
    Coord src = topo_->coord(node_);
    Coord dst = topo_->coord(pkt->dst);
    eqx_assert(!(src == dst), "CB does not send packets to itself");
    int base = manhattan(src, dst);

    // Collect EIR buffers that lie on a shortest path and are free.
    int free_eligible[2] = {-1, -1};
    int num_free = 0;
    for (int i = 1; i < numInjBuffers(); ++i) {
        const auto &b = bufs_[static_cast<std::size_t>(i)];
        Coord e = b.targetCoord;
        if (manhattan(src, e) + manhattan(e, dst) != base)
            continue;
        if (b.availableForDispatch() && num_free < 2)
            free_eligible[num_free++] = i;
    }

    bool on_axis = src.x == dst.x || src.y == dst.y;
    const auto &local = bufs_[0];
    bool local_free =
        static_cast<int>(local.queue.size()) < local.capacityPackets;

    if (on_axis) {
        // At most one shortest-path EIR exists; use it, else local.
        if (num_free >= 1)
            return free_eligible[0];
        return local_free ? 0 : -1;
    }
    // Quadrant destination: up to two shortest-path EIRs.
    if (num_free == 2) {
        rr_ ^= 1;
        return free_eligible[rr_];
    }
    if (num_free == 1)
        return free_eligible[0];
    return local_free ? 0 : -1;
}

} // namespace eqx
