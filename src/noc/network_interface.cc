#include "noc/network_interface.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

NetworkInterface::NetworkInterface(NodeId node, const Topology *topo,
                                   const NocParams *params,
                                   NetworkActivity *activity,
                                   LatencyStats *latency)
    : node_(node), topo_(topo), params_(params), activity_(activity),
      latency_(latency), coreCapacity_(params->niInjBufPackets)
{
    eqx_assert(coreCapacity_ >= 1, "NI core queue needs capacity");
}

int
NetworkInterface::addInjBuffer(int capacity_packets, Channel<Flit> *out,
                               NodeId target_router, bool interposer)
{
    InjBuffer b;
    b.capacityPackets = capacity_packets;
    b.out = out;
    b.targetRouter = target_router;
    b.targetCoord = topo_->routerCoord(target_router);
    b.interposer = interposer;
    b.credits.assign(static_cast<std::size_t>(params_->vcsPerPort),
                     params_->vcDepthFlits);
    bufs_.push_back(std::move(b));
    return static_cast<int>(bufs_.size()) - 1;
}

int
NetworkInterface::addEjPort(Channel<Credit> *credit_up)
{
    EjPort p;
    p.vcs.assign(static_cast<std::size_t>(params_->vcsPerPort),
                 VcBuffer(params_->vcDepthFlits));
    p.creditUp = credit_up;
    p.arb.resize(params_->vcsPerPort);
    ejPorts_.push_back(std::move(p));
    return static_cast<int>(ejPorts_.size()) - 1;
}

bool
NetworkInterface::canInject() const
{
    return static_cast<int>(coreQueue_.size()) < coreCapacity_;
}

bool
NetworkInterface::inject(const PacketPtr &pkt, Cycle now_ticks)
{
    eqx_assert(params_->classes.accepts(pkt->type),
               "packet class not admitted by network ", params_->name);
    if (!canInject())
        return false;
    pkt->cycleCreated = now_ticks;
    if (plane_) {
        // Enter the end-to-end protocol: stamp the delivery identity
        // and open a retransmission record (DESIGN.md §11.3).
        pkt->seqSrc = node_;
        pkt->seq = nextSeq_[pkt->dst]++;
        RetxRecord r;
        r.peer = pkt->dst;
        r.seq = pkt->seq;
        r.type = pkt->type;
        r.src = pkt->src;
        r.dst = pkt->dst;
        r.finalDst = pkt->finalDst;
        r.bits = pkt->bits;
        r.addr = pkt->addr;
        r.tag = pkt->tag;
        r.created = now_ticks;
        r.timeout = plane_->config().retxTimeout;
        r.deadline = now_ticks + r.timeout;
        retx_.push_back(std::move(r));
        ++plane_->stats().seqPackets;
    }
    coreQueue_.push_back(pkt);
    return true;
}

void
NetworkInterface::creditArrived(int buf, int vc)
{
    auto &b = bufs_[static_cast<std::size_t>(buf)];
    ++b.credits[static_cast<std::size_t>(vc)];
    eqx_assert(b.credits[static_cast<std::size_t>(vc)] <=
                   params_->vcDepthFlits,
               "injection credit overflow");
}

void
NetworkInterface::acceptEjectedFlit(int ej_port, Flit f)
{
    auto &p = ejPorts_[static_cast<std::size_t>(ej_port)];
    p.vcs[static_cast<std::size_t>(f.vc)].push(std::move(f));
}

void
NetworkInterface::allowedVcs(PacketType t, int &lo, int &hi) const
{
    int v = params_->vcsPerPort;
    lo = 0;
    hi = v - 1;
    if (!params_->classVcs)
        return;
    int cls = packetVcClass(t, *params_);
    if (cls == 2) {
        // Coherence class: the reserved top VCs.
        lo = v - params_->coherenceVcs;
        return;
    }
    int base = v - params_->coherenceVcs;
    int half = base / 2;
    if (half == 0)
        half = 1;
    if (cls == 0) {
        hi = std::min(half, base) - 1;
    } else {
        lo = std::min(half, base - 1);
        hi = base - 1;
    }
}

void
NetworkInterface::tickEjection(Cycle now_ticks)
{
    int v = params_->vcsPerPort;
    for (auto &p : ejPorts_) {
        if (static_cast<int>(delivered_.size()) >=
            params_->niEjectQueuePackets)
            return; // assembled-packet queue full: apply backpressure
        ejReqs_.clear();
        for (int i = 0; i < v; ++i)
            if (!p.vcs[static_cast<std::size_t>(i)].empty())
                ejReqs_.push_back(i);
        if (ejReqs_.empty())
            continue;
        // grantList picks the same winner grant() would (closest index
        // after the previous one in rotation) without the per-tick
        // vector<bool> allocation.
        int vc = p.arb.grantList(ejReqs_);
        Flit f = p.vcs[static_cast<std::size_t>(vc)].pop();
        if (p.creditUp)
            p.creditUp->send(Credit{0, vc}, now_ticks);
        if (f.isTail) {
            if (plane_ && f.pkt->seqSrc != kInvalidNode) {
                // Ack every tail (re-acking a duplicate is how a
                // sender whose first ack raced a timeout converges),
                // then discard duplicate deliveries.
                plane_->scheduleAck(f.pkt->seqSrc, node_, f.pkt->seq,
                                    now_ticks);
                if (!seen_[f.pkt->seqSrc].insert(f.pkt->seq)) {
                    ++plane_->stats().duplicates;
                    continue;
                }
                ++plane_->stats().delivered;
            }
            f.pkt->cycleEjected = now_ticks;
            int c = LatencyStats::classIdx(f.pkt->type);
            latency_->queueLat[c].add(
                static_cast<double>(f.pkt->queueLatency()));
            latency_->netLat[c].add(
                static_cast<double>(f.pkt->networkLatency()));
            latency_->totalLat[c].add(
                static_cast<double>(f.pkt->totalLatency()));
            latency_->totalHist[c].add(
                static_cast<double>(f.pkt->totalLatency()));
            ++latency_->packets[c];
            delivered_.push_back(f.pkt);
        }
    }
}

void
NetworkInterface::serializeBuffer(InjBuffer &b, Cycle now_ticks)
{
    if (!b.current) {
        if (b.queue.empty())
            return;
        b.current = b.queue.front();
        b.queue.pop_front();
        b.numFlits = params_->flitsForBits(b.current->bits);
        b.flitsSent = 0;
        b.vc = -1;
    }
    if (b.vc < 0) {
        // Atomic VC acquisition: the target input VC must be empty.
        int lo, hi;
        allowedVcs(b.current->type, lo, hi);
        for (int vc = lo; vc <= hi; ++vc) {
            if (b.credits[static_cast<std::size_t>(vc)] ==
                params_->vcDepthFlits) {
                b.vc = vc;
                break;
            }
        }
        if (b.vc < 0) {
            ++b.creditStallTicks;
            return; // all candidate VCs occupied: retry next tick
        }
    }
    if (b.credits[static_cast<std::size_t>(b.vc)] <= 0) {
        ++b.creditStallTicks;
        return;
    }

    Flit f;
    f.pkt = b.current;
    f.index = b.flitsSent;
    f.isHead = b.flitsSent == 0;
    f.isTail = b.flitsSent == b.numFlits - 1;
    f.vc = b.vc;
    if (plane_)
        f.fcs = flitFcs(f); // verified where the wire delivers
    if (f.isHead) {
        b.current->cycleInjected = now_ticks;
        b.current->entryRouter = b.targetRouter;
        ++b.packetsInjected;
        if (isRequest(b.current->type))
            activity_->requestBits += static_cast<std::uint64_t>(
                b.current->bits);
        else
            activity_->replyBits += static_cast<std::uint64_t>(
                b.current->bits);
    }
    ++b.flitsInjected;
    --b.credits[static_cast<std::size_t>(b.vc)];
    if (b.interposer)
        ++activity_->interposerLinkFlits;
    else
        ++activity_->linkFlits;
    bool tail = f.isTail;
    b.out->send(std::move(f), now_ticks);
    ++b.flitsSent;
    if (tail) {
        b.current.reset();
        b.vc = -1;
    }
}

void
NetworkInterface::tickInjection(Cycle now_ticks)
{
    // NI core logic dispatches at most one packet per tick to a buffer.
    if (!coreQueue_.empty()) {
        int idx = selectBuffer(coreQueue_.front());
        if (idx >= 0) {
            auto &b = bufs_[static_cast<std::size_t>(idx)];
            eqx_assert(static_cast<int>(b.queue.size()) <
                           b.capacityPackets,
                       "selectBuffer returned a full buffer");
            b.queue.push_back(coreQueue_.front());
            coreQueue_.pop_front();
        }
    }
    for (auto &b : bufs_)
        serializeBuffer(b, now_ticks);
}

void
NetworkInterface::tick(Cycle now_ticks, Cycle core_now)
{
    tickEjection(now_ticks);
    while (!delivered_.empty() && sink_ &&
           sink_->canAccept(delivered_.front())) {
        PacketPtr pkt = delivered_.front();
        delivered_.pop_front();
        sink_->accept(pkt, core_now);
    }
    if (!sink_) {
        // Pure traffic-sink mode: consume unconditionally.
        delivered_.clear();
    }
    if (plane_ && !retx_.empty())
        tickResilience(now_ticks);
    tickInjection(now_ticks);
}

void
NetworkInterface::tickResilience(Cycle now_ticks)
{
    const FaultConfig &fc = plane_->config();
    for (std::size_t i = 0; i < retx_.size();) {
        RetxRecord &r = retx_[i];
        if (now_ticks < r.deadline) {
            ++i;
            continue;
        }
        if (fc.retxMax > 0 && r.attempts >= fc.retxMax) {
            ++plane_->stats().lost;
            retx_.erase(retx_.begin() +
                        static_cast<std::ptrdiff_t>(i));
            continue;
        }
        // Rebuild a clone carrying the original delivery identity (the
        // receiver dedups, so a spurious timeout cannot deliver twice)
        // and the original creation time (latency-under-faults numbers
        // measure true end-to-end time, recovery included). It jumps
        // the core-queue capacity on purpose: the packet already held
        // a slot on its first attempt.
        PacketPtr clone =
            makePacket(r.type, r.src, r.dst, r.bits, r.addr, r.tag);
        clone->finalDst = r.finalDst;
        clone->seqSrc = node_;
        clone->seq = r.seq;
        clone->cycleCreated = r.created;
        coreQueue_.push_front(std::move(clone));
        ++r.attempts;
        r.timeout = std::min(r.timeout * 2, fc.retxTimeoutCap);
        r.deadline = now_ticks + r.timeout;
        ++plane_->stats().retransmissions;
        ++i;
    }
}

void
NetworkInterface::ackArrived(NodeId peer, std::uint32_t seq)
{
    for (std::size_t i = 0; i < retx_.size(); ++i) {
        if (retx_[i].peer == peer && retx_[i].seq == seq) {
            retx_.erase(retx_.begin() +
                        static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
    // A re-ack for an already-closed (or abandoned) record: ignore.
}

void
NetworkInterface::maskBuffer(int buf)
{
    auto &b = bufs_[static_cast<std::size_t>(buf)];
    if (!b.masked) {
        b.masked = true;
        ++maskedBufs_;
    }
}

void
NetworkInterface::resetStats()
{
    for (auto &b : bufs_) {
        b.packetsInjected = 0;
        b.flitsInjected = 0;
        b.creditStallTicks = 0;
    }
}

bool
NetworkInterface::idle() const
{
    // An open retransmission record is pending work: it keeps the NI
    // on the active set (so timeouts are polled) and the network
    // undrained (so a run cannot "finish" with a packet outstanding).
    if (!retx_.empty())
        return false;
    if (!coreQueue_.empty() || !delivered_.empty())
        return false;
    for (const auto &b : bufs_)
        if (!b.idle())
            return false;
    for (const auto &p : ejPorts_)
        for (const auto &vc : p.vcs)
            if (!vc.empty())
                return false;
    return true;
}

int
BasicNi::selectBuffer(const PacketPtr &)
{
    eqx_assert(!bufs_.empty(), "BasicNi has no buffer");
    auto &b = bufs_[0];
    return static_cast<int>(b.queue.size()) < b.capacityPackets ? 0 : -1;
}

int
MultiPortNi::selectBuffer(const PacketPtr &)
{
    int n = numInjBuffers();
    for (int i = 0; i < n; ++i) {
        int idx = (rr_ + 1 + i) % n;
        const auto &b = bufs_[static_cast<std::size_t>(idx)];
        if (b.masked)
            continue;
        if (static_cast<int>(b.queue.size()) < b.capacityPackets) {
            rr_ = idx;
            return idx;
        }
    }
    if (maskedBufs_ == n) {
        // Every port masked: dispatch anyway (last resort — the dead
        // wires drop, end-to-end recovery keeps the accounting sane).
        for (int i = 0; i < n; ++i) {
            int idx = (rr_ + 1 + i) % n;
            const auto &b = bufs_[static_cast<std::size_t>(idx)];
            if (static_cast<int>(b.queue.size()) < b.capacityPackets) {
                rr_ = idx;
                return idx;
            }
        }
    }
    return -1;
}

int
EquiNoxNi::selectBuffer(const PacketPtr &pkt)
{
    // Buffer 0 = local router; buffers 1..n = EIRs over the interposer.
    // All geometry is in router space and routed through the shared
    // Topology distance, so shortest-path eligibility matches what the
    // fabric (mesh or torus) actually routes.
    Coord src = topo_->routerCoordOf(node_);
    Coord dst = topo_->routerCoordOf(pkt->dst);
    eqx_assert(node_ != pkt->dst, "CB does not send packets to itself");
    int base = topo_->routerDistance(src, dst);

    // Collect EIR buffers that lie on a shortest path and are free,
    // skipping fault-masked ports (a no-op on a healthy NI, keeping
    // the fault-free policy bit-identical to the pre-fault one).
    int free_eligible[2] = {-1, -1};
    int num_free = 0;
    int sp_masked = 0;   ///< shortest-path EIRs lost to masking
    int sp_unmasked = 0; ///< shortest-path EIRs still in service
    for (int i = 1; i < numInjBuffers(); ++i) {
        const auto &b = bufs_[static_cast<std::size_t>(i)];
        Coord e = b.targetCoord;
        if (topo_->routerDistance(src, e) +
                topo_->routerDistance(e, dst) != base)
            continue;
        if (b.masked) {
            ++sp_masked;
            continue;
        }
        ++sp_unmasked;
        if (b.availableForDispatch() && num_free < 2)
            free_eligible[num_free++] = i;
    }

    bool on_axis = src.x == dst.x || src.y == dst.y;
    const auto &local = bufs_[0];
    bool local_free =
        static_cast<int>(local.queue.size()) < local.capacityPackets;

    if (on_axis) {
        // At most one shortest-path EIR exists; use it, else local.
        if (num_free >= 1)
            return free_eligible[0];
    } else {
        // Quadrant destination: up to two shortest-path EIRs.
        if (num_free == 2) {
            rr_ ^= 1;
            return free_eligible[rr_];
        }
        if (num_free == 1)
            return free_eligible[0];
    }

    // No dispatchable shortest-path EIR. The legacy fallback (local
    // port, else retry) applies while any shortest-path EIR is merely
    // busy — or never existed for this destination.
    if (sp_masked == 0 || sp_unmasked > 0)
        return local_free ? 0 : -1;

    // Degraded fail-over (DESIGN.md §11.4): masking removed every
    // shortest-path EIR, so equivalence is what's left — any surviving
    // EIR is still a valid injection point at the cost of a
    // non-minimal first hop. Rotate strictly over survivors so the
    // redistributed load stays fair.
    int n = numInjBuffers();
    for (int k = 1; k < n; ++k) {
        int i = 1 + (failRr_ + k) % (n - 1);
        const auto &b = bufs_[static_cast<std::size_t>(i)];
        if (b.masked)
            continue;
        if (b.availableForDispatch()) {
            failRr_ = i - 1;
            return i;
        }
    }
    // Survivors busy, or every EIR masked: the local port is the last
    // resort (never masked out of consideration — a CB with no usable
    // injection point at all would livelock the core queue).
    return local_free ? 0 : -1;
}

} // namespace eqx
