/**
 * @file
 * A complete mesh network: routers, channels, NIs and statistics.
 * One Network models one physical NoC; full-system schemes compose
 * several (request + reply, CMesh overlay, DA2Mesh subnets).
 */

#ifndef EQX_NOC_NETWORK_HH
#define EQX_NOC_NETWORK_HH

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault_model.hh"
#include "fault/fault_plane.hh"
#include "noc/channel.hh"
#include "noc/network_interface.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/router.hh"

namespace eqx {

/** NI microarchitecture choice per node. */
enum class NiKind : std::uint8_t { Basic, MultiPort, EquiNox };

/** Per-node structural customization. */
struct NodeMods
{
    NiKind kind = NiKind::Basic;
    int localInjPorts = 1; ///< >1 for MultiPort CB routers
    int localEjPorts = 1;  ///< >1 for MultiPort CB routers
};

/** Build-time description of one network. */
struct NetworkSpec
{
    NocParams params;
    /** Nodes that deviate from the default Basic 1-inj/1-ej NI. */
    std::map<NodeId, NodeMods> mods;
    /**
     * EquiNox EIR groups: CB node -> its equivalent injection routers.
     * Implies an EquiNoxNi at the CB and an extra RemoteInj input port
     * on every listed EIR, connected by a 1-cycle interposer channel.
     */
    std::map<NodeId, std::vector<NodeId>> eirGroups;
};

/**
 * The network proper. Owns all hardware, advances on coreTick(), and
 * exposes injection/ejection endpoints plus statistics.
 *
 * The internal tick loop is activity-driven (DESIGN.md §10): routers
 * and NIs sit on per-network active sets and are only visited while
 * they hold work; channel arrivals are drained through a pending-wire
 * event wheel instead of scanning every wire. An idle mesh costs
 * O(active components), not O(routers + wires), and results are
 * bit-identical to the exhaustive loop (params.exhaustiveTick keeps
 * the old loop available for equivalence tests and benchmarking).
 */
class Network : private ChannelScheduler, private FaultPlaneHost
{
  public:
    explicit Network(const NetworkSpec &spec);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NocParams &params() const { return params_; }
    const Topology &topology() const { return *topo_; }

    /** Advance by one core clock cycle (runs 1+ internal ticks). */
    void coreTick(Cycle core_cycle);

    /**
     * Earliest core cycle after @p core_now at which this network
     * does real work — the global time wheel query (DESIGN.md §14).
     * core_now + 1 while any router or NI is on an active set (or in
     * the exhaustive / fault-armed modes, which tick unconditionally);
     * otherwise the core cycle of the earliest in-flight channel
     * arrival in the pending wheel; kNeverCycle when fully drained.
     */
    Cycle nextDueCycle(Cycle core_now) const;

    /**
     * Fast-forward over core cycles (coreCycle_, @p core_target] that
     * nextDueCycle() proved dead: advances the internal tick counter
     * arithmetically by the even/odd tick schedule without running
     * the tick loop. Only valid while the network is idle with no
     * arrival due on or before the target.
     */
    void skipTo(Cycle core_target);

    /** Endpoint API. */
    bool inject(NodeId node, const PacketPtr &pkt);
    bool canInject(NodeId node) const;
    void setSink(NodeId node, PacketSink *sink);

    /** Statistics. */
    const NetworkActivity &activity() const { return activity_; }
    const LatencyStats &latency() const { return latency_; }
    Cycle currentTick() const { return tick_; }

    /**
     * Clear every measurement accumulator (activity, latency, per
     * router, per NI) without touching simulation state; called at the
     * warmup/measurement boundary so reported stats exclude cold-start
     * transients.
     */
    void resetStats();

    /**
     * Flatten the per-router / per-port / per-NI observability
     * counters into @p sg, each key prefixed "<prefix>." (DESIGN.md §9
     * documents the schema).
     */
    void exportStats(StatGroup &sg, const std::string &prefix) const;

    /** Per-router mean flit residence (Fig. 4 heat maps). */
    std::vector<double> routerResidenceMeans() const;
    /** Population variance of the per-router residence means. */
    double residenceVariance() const;

    /** True when no flit is buffered or in flight anywhere. */
    bool drained() const;

    int numRouters() const { return static_cast<int>(routers_.size()); }
    const Router &router(NodeId n) const
    {
        return routers_[static_cast<std::size_t>(n)];
    }
    const NetworkInterface &ni(NodeId n) const
    {
        return *nis_[static_cast<std::size_t>(n)];
    }

    /** Total extra (RemoteInj) ports added for EIRs. */
    int numRemoteInjPorts() const { return remoteInjPorts_; }

    /**
     * Arm fault injection (DESIGN.md §11): register every injection
     * wire with a new FaultPlane, resolve @p cfg's schedule against
     * them under @p seed, and attach the recovery protocol to all NIs.
     * Must run before the first tick; a disabled config is a no-op, so
     * un-faulted runs stay bit-identical to a build without faults.
     * @p name tags this network for FaultEvent::net filtering.
     */
    void armFaults(const FaultConfig &cfg, const std::string &name,
                   std::uint64_t seed);
    /** The armed fault plane, or nullptr. */
    const FaultPlane *faultPlane() const { return plane_.get(); }
    bool faultArmed() const { return plane_ != nullptr; }
    /** Injection buffers currently masked by fault detection. */
    int maskedInjBuffers() const;

    /**
     * Activity-scheduler invariant check (tests): every router holding
     * buffered flits and every non-idle NI must be on its active set.
     * Always true in exhaustive mode.
     */
    bool activeSetsConsistent() const;

  private:
    void internalTick();
    void internalTickExhaustive();
    void deliver();
    void deliverExhaustive();
    void deliverWire(std::uint32_t wire);

    /** ChannelScheduler: record a pending arrival for a wire. */
    void channelDue(std::uint32_t tag, Cycle due) override;
    /** (Re-)attach every channel to the wheel. Pass-through is used
     *  except when faults are armed: the fault plane needs flits to
     *  accumulate *inside* stalled channels. */
    void attachChannels(bool passthrough);

    // FaultPlaneHost: out-of-band recovery events land on the NIs. No
    // activation is needed — an NI with protocol state in flight is
    // non-idle and therefore already on the active set.
    void faultDeliverAck(NodeId ni, NodeId peer,
                         std::uint32_t seq) override;
    void faultReturnCredit(NodeId ni, int buf, int vc) override;
    void faultMaskBuffer(NodeId ni, int buf) override;

    void markRouterActive(NodeId r)
    {
        activeRouters_[static_cast<std::size_t>(r) >> 6] |=
            std::uint64_t{1} << (static_cast<std::size_t>(r) & 63);
    }
    void markNiActive(NodeId n)
    {
        activeNis_[static_cast<std::size_t>(n) >> 6] |=
            std::uint64_t{1} << (static_cast<std::size_t>(n) & 63);
    }

    Router &routerRef(NodeId n)
    {
        return routers_[static_cast<std::size_t>(n)];
    }

    NocParams params_;
    /** The fabric geometry (DESIGN.md §17), built from params_.topo. */
    std::unique_ptr<const Topology> topo_;
    NetworkActivity activity_;
    LatencyStats latency_;

    /** Contiguous router arena: reserved once at construction (never
     *  resized, so element addresses are stable) and referenced by
     *  index from the wire tables — the delivery and stage loops walk
     *  one flat allocation instead of chasing per-router pointers. */
    std::vector<Router> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;

    /** Channel arenas: deques give stable element addresses (ports
     *  hold raw pointers) while packing several channels per block,
     *  so the per-send channel-object touch usually stays in cache. */
    std::deque<Channel<Flit>> flitChans_;
    std::deque<Channel<Credit>> creditChans_;

    struct RouterFlitWire { Channel<Flit> *chan; int router; int port; };
    struct NiFlitWire { Channel<Flit> *chan; int ni; int ejPort; };
    struct RouterCreditWire { Channel<Credit> *chan; int router; int port; };
    struct NiCreditWire { Channel<Credit> *chan; int ni; int buf; };

    std::vector<RouterFlitWire> routerFlitWires_;
    std::vector<NiFlitWire> niFlitWires_;
    std::vector<RouterCreditWire> routerCreditWires_;
    std::vector<NiCreditWire> niCreditWires_;

    /** One NI-to-router injection wire: the fault domain (DESIGN.md
     *  §11.1). Recorded at construction so armFaults() can register
     *  them with the plane in deterministic build order. */
    struct InjWire
    {
        std::uint32_t wire;    ///< index into routerFlitWires_
        NodeId ni;
        int buf;               ///< NI injection-buffer index
        NodeId router;
        bool interposer;       ///< EIR link (ubump/RDL structure)
        int spanHops;
        Cycle creditLatency;
    };
    std::vector<InjWire> injWires_;

    std::unique_ptr<FaultPlane> plane_;
    /** routerFlitWires_ index -> plane wire id, or -1 (mesh links and
     *  any wire while un-armed are outside the fault domain). */
    std::vector<int> wireFault_;

    // ---- Activity-driven scheduling (DESIGN.md §10) ----
    /**
     * Active-set bitmasks, one bit per router / NI. Iteration is by
     * ascending index (bit scan), which reproduces the exhaustive
     * loop's component order exactly — required so per-network stat
     * accumulators see samples in the same order.
     */
    std::vector<std::uint64_t> activeRouters_;
    std::vector<std::uint64_t> activeNis_;

    /**
     * Pending-wire event wheel: slot (tick % size) holds what arrives
     * that tick. Channels post one event per send (they carry at most
     * one item per tick), so idle wires are never visited. Wire ids
     * index the four wire vectors: the flat order is [routerFlit |
     * niFlit | routerCredit | niCredit].
     *
     * Un-faulted adaptive networks run channels in pass-through mode:
     * the slot carries the payloads themselves (`flits` / `credits`)
     * and delivery dispatches straight to acceptFlit()/creditArrived()
     * without touching a channel object — sends append directly to
     * the slot (Channel::setWheel), no virtual dispatch. Fault-armed
     * networks fall back to tag events (`wires`) drained through the
     * channels, which the plane's stall/drop semantics need. Within
     * one channel FIFO order is preserved either way, and all
     * deliveries complete before the stage passes run, so the two
     * representations are observationally identical (DESIGN.md §14).
     * Size is a power of two (> max channel latency); slot index is
     * `due & wheelMask_`.
     */
    std::vector<WheelSlot> pendingWheel_;
    std::uint32_t wheelMask_ = 0;
    std::uint32_t niFlitBase_ = 0;
    std::uint32_t routerCreditBase_ = 0;
    std::uint32_t niCreditBase_ = 0;

    Cycle tick_ = 0;
    Cycle coreCycle_ = 0;
    int remoteInjPorts_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_NETWORK_HH
