/**
 * @file
 * A complete mesh network: routers, channels, NIs and statistics.
 * One Network models one physical NoC; full-system schemes compose
 * several (request + reply, CMesh overlay, DA2Mesh subnets).
 */

#ifndef EQX_NOC_NETWORK_HH
#define EQX_NOC_NETWORK_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/channel.hh"
#include "noc/network_interface.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/router.hh"

namespace eqx {

/** NI microarchitecture choice per node. */
enum class NiKind : std::uint8_t { Basic, MultiPort, EquiNox };

/** Per-node structural customization. */
struct NodeMods
{
    NiKind kind = NiKind::Basic;
    int localInjPorts = 1; ///< >1 for MultiPort CB routers
    int localEjPorts = 1;  ///< >1 for MultiPort CB routers
};

/** Build-time description of one network. */
struct NetworkSpec
{
    NocParams params;
    /** Nodes that deviate from the default Basic 1-inj/1-ej NI. */
    std::map<NodeId, NodeMods> mods;
    /**
     * EquiNox EIR groups: CB node -> its equivalent injection routers.
     * Implies an EquiNoxNi at the CB and an extra RemoteInj input port
     * on every listed EIR, connected by a 1-cycle interposer channel.
     */
    std::map<NodeId, std::vector<NodeId>> eirGroups;
};

/**
 * The network proper. Owns all hardware, advances on coreTick(), and
 * exposes injection/ejection endpoints plus statistics.
 */
class Network
{
  public:
    explicit Network(const NetworkSpec &spec);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NocParams &params() const { return params_; }
    const Topology &topology() const { return topo_; }

    /** Advance by one core clock cycle (runs 1+ internal ticks). */
    void coreTick(Cycle core_cycle);

    /** Endpoint API. */
    bool inject(NodeId node, const PacketPtr &pkt);
    bool canInject(NodeId node) const;
    void setSink(NodeId node, PacketSink *sink);

    /** Statistics. */
    const NetworkActivity &activity() const { return activity_; }
    const LatencyStats &latency() const { return latency_; }
    Cycle currentTick() const { return tick_; }

    /**
     * Clear every measurement accumulator (activity, latency, per
     * router, per NI) without touching simulation state; called at the
     * warmup/measurement boundary so reported stats exclude cold-start
     * transients.
     */
    void resetStats();

    /**
     * Flatten the per-router / per-port / per-NI observability
     * counters into @p sg, each key prefixed "<prefix>." (DESIGN.md §9
     * documents the schema).
     */
    void exportStats(StatGroup &sg, const std::string &prefix) const;

    /** Per-router mean flit residence (Fig. 4 heat maps). */
    std::vector<double> routerResidenceMeans() const;
    /** Population variance of the per-router residence means. */
    double residenceVariance() const;

    /** True when no flit is buffered or in flight anywhere. */
    bool drained() const;

    int numRouters() const { return static_cast<int>(routers_.size()); }
    const Router &router(NodeId n) const
    {
        return *routers_[static_cast<std::size_t>(n)];
    }
    const NetworkInterface &ni(NodeId n) const
    {
        return *nis_[static_cast<std::size_t>(n)];
    }

    /** Total extra (RemoteInj) ports added for EIRs. */
    int numRemoteInjPorts() const { return remoteInjPorts_; }

  private:
    void internalTick();
    void deliver();

    Router &routerRef(NodeId n)
    {
        return *routers_[static_cast<std::size_t>(n)];
    }

    NocParams params_;
    Topology topo_;
    NetworkActivity activity_;
    LatencyStats latency_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;

    std::vector<std::unique_ptr<Channel<Flit>>> flitChans_;
    std::vector<std::unique_ptr<Channel<Credit>>> creditChans_;

    struct RouterFlitWire { Channel<Flit> *chan; int router; int port; };
    struct NiFlitWire { Channel<Flit> *chan; int ni; int ejPort; };
    struct RouterCreditWire { Channel<Credit> *chan; int router; int port; };
    struct NiCreditWire { Channel<Credit> *chan; int ni; int buf; };

    std::vector<RouterFlitWire> routerFlitWires_;
    std::vector<NiFlitWire> niFlitWires_;
    std::vector<RouterCreditWire> routerCreditWires_;
    std::vector<NiCreditWire> niCreditWires_;

    Cycle tick_ = 0;
    Cycle coreCycle_ = 0;
    int remoteInjPorts_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_NETWORK_HH
