/**
 * @file
 * Fixed-latency pipelined channels for flits and credits. A channel
 * accepts at most one item per tick and delivers it latency ticks
 * later; interposer channels carry multi-hop spans in one tick.
 */

#ifndef EQX_NOC_CHANNEL_HH
#define EQX_NOC_CHANNEL_HH

#include <deque>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace eqx {

/**
 * Pipelined point-to-point channel. T is Flit or Credit. The owner
 * calls send() during a tick and drains arrivals at the start of the
 * next tick(s) via receive().
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(int latency = 1) : latency_(latency)
    {
        eqx_assert(latency >= 1, "channel latency must be >= 1");
    }

    /** Enqueue an item at tick @p now; it arrives at now + latency. */
    void
    send(T item, Cycle now)
    {
        inflight_.emplace_back(now + static_cast<Cycle>(latency_),
                               std::move(item));
    }

    /** Pop the next item that has arrived by tick @p now, if any. */
    bool
    receive(Cycle now, T &out)
    {
        if (inflight_.empty() || inflight_.front().first > now)
            return false;
        out = std::move(inflight_.front().second);
        inflight_.pop_front();
        return true;
    }

    bool empty() const { return inflight_.empty(); }
    std::size_t inflightCount() const { return inflight_.size(); }
    int latency() const { return latency_; }

  private:
    int latency_;
    std::deque<std::pair<Cycle, T>> inflight_;
};

} // namespace eqx

#endif // EQX_NOC_CHANNEL_HH
