/**
 * @file
 * Fixed-latency pipelined channels for flits and credits. A channel
 * accepts at most one item per tick (enforced by send()) and delivers
 * it latency ticks later; interposer channels carry multi-hop spans in
 * one tick.
 */

#ifndef EQX_NOC_CHANNEL_HH
#define EQX_NOC_CHANNEL_HH

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/packet.hh"

namespace eqx {

/**
 * Receives due-tick notifications from channels so the owner can
 * visit only channels that actually hold arrivals (the network's
 * pending-wire event wheel) instead of scanning every wire per tick.
 */
class ChannelScheduler
{
  public:
    virtual ~ChannelScheduler() = default;
    /** The channel tagged @p tag has an item arriving at tick @p due. */
    virtual void channelDue(std::uint32_t tag, Cycle due) = 0;
};

/**
 * One slot of a pending-arrival time wheel (slot index = due tick mod
 * wheel size). `wires` holds tag events for channels in store mode
 * (the item stays buffered in the channel); `flits`/`credits` carry
 * the payloads themselves for channels in pass-through mode
 * (DESIGN.md §14) — delivery then never touches the channel object.
 */
struct FlitWheelEvent
{
    std::uint32_t wire;
    Flit f;
};
struct CreditWheelEvent
{
    std::uint32_t wire;
    Credit c;
};
struct WheelSlot
{
    std::vector<std::uint32_t> wires;
    std::vector<FlitWheelEvent> flits;
    std::vector<CreditWheelEvent> credits;

    bool
    empty() const
    {
        return wires.empty() && flits.empty() && credits.empty();
    }
};

/**
 * Pipelined point-to-point channel. T is Flit or Credit. The owner
 * calls send() during a tick and drains arrivals at the start of the
 * next tick(s) via receive().
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(int latency = 1)
        : latency_(latency), buf_(static_cast<std::size_t>(latency) + 1)
    {
        eqx_assert(latency >= 1, "channel latency must be >= 1");
    }

    /**
     * Attach the owner's delivery scheduler; every send() then posts
     * one (tag, arrival-tick) event and the item stays buffered here
     * until receive(). Unscheduled channels (unit tests,
     * exhaustive-tick networks) behave exactly as before.
     */
    void
    setScheduler(ChannelScheduler *sched, std::uint32_t tag)
    {
        sched_ = sched;
        tag_ = tag;
        wheel_ = nullptr;
    }

    /**
     * Pass-through mode (Flit/Credit channels only): send() appends
     * the payload itself to wheel slot (now + latency) & @p slot_mask
     * — one vector append instead of a ring write, a tag event, and a
     * later pointer-chase back into this object. The wheel size must
     * be a power of two exceeding the maximum channel latency.
     * Latency semantics are identical: the item is due at now+latency.
     */
    void
    setWheel(WheelSlot *slots, std::uint32_t slot_mask, std::uint32_t tag)
    {
        wheel_ = slots;
        wheelMask_ = slot_mask;
        tag_ = tag;
        sched_ = nullptr;
    }

    /** Enqueue an item at tick @p now; it arrives at now + latency. */
    void
    send(T item, Cycle now)
    {
        // A physical link carries one item per tick. The event wheel
        // also relies on this: one send per (channel, tick) means one
        // due event per (channel, tick).
        eqx_assert(lastSendTick_ == kNeverSent || now > lastSendTick_,
                   "channel accepts at most one send per tick (tick ",
                   now, ")");
        lastSendTick_ = now;
        if constexpr (std::is_same_v<T, Flit>) {
            if (wheel_) {
                wheel_[(now + static_cast<Cycle>(latency_)) & wheelMask_]
                    .flits.push_back({tag_, std::move(item)});
                return;
            }
        } else if constexpr (std::is_same_v<T, Credit>) {
            if (wheel_) {
                wheel_[(now + static_cast<Cycle>(latency_)) & wheelMask_]
                    .credits.push_back({tag_, item});
                return;
            }
        }
        if (count_ == buf_.size())
            grow();
        std::size_t slot = head_ + count_;
        if (slot >= buf_.size())
            slot -= buf_.size();
        buf_[slot].first = now + static_cast<Cycle>(latency_);
        buf_[slot].second = std::move(item);
        ++count_;
        if (sched_)
            sched_->channelDue(tag_, now + static_cast<Cycle>(latency_));
    }

    /** Pop the next item that has arrived by tick @p now, if any. */
    bool
    receive(Cycle now, T &out)
    {
        if (count_ == 0 || buf_[head_].first > now)
            return false;
        out = std::move(buf_[head_].second);
        if (++head_ == buf_.size())
            head_ = 0;
        --count_;
        return true;
    }

    bool empty() const { return count_ == 0; }
    std::size_t inflightCount() const { return count_; }
    int latency() const { return latency_; }
    /** Wire tag assigned by the owner (setWheel / setScheduler). */
    std::uint32_t tag() const { return tag_; }

  private:
    static constexpr Cycle kNeverSent = ~static_cast<Cycle>(0);

    /**
     * Double the in-flight ring, preserving FIFO order. A drained-each-
     * tick channel never exceeds `latency` items, so the initial sizing
     * makes this cold; only tests that batch sends without receiving
     * ever grow.
     */
    void
    grow()
    {
        std::vector<std::pair<Cycle, T>> bigger(
            buf_.empty() ? 4 : buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i) {
            std::size_t src = head_ + i;
            if (src >= buf_.size())
                src -= buf_.size();
            bigger[i] = std::move(buf_[src]);
        }
        buf_ = std::move(bigger);
        head_ = 0;
    }

    int latency_;
    Cycle lastSendTick_ = kNeverSent;
    ChannelScheduler *sched_ = nullptr;
    WheelSlot *wheel_ = nullptr;
    std::uint32_t wheelMask_ = 0;
    std::uint32_t tag_ = 0;
    /** FIFO ring of (arrival tick, item), `count_` live from `head_`. */
    std::vector<std::pair<Cycle, T>> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_CHANNEL_HH
