/**
 * @file
 * Fixed-latency pipelined channels for flits and credits. A channel
 * accepts at most one item per tick (enforced by send()) and delivers
 * it latency ticks later; interposer channels carry multi-hop spans in
 * one tick.
 */

#ifndef EQX_NOC_CHANNEL_HH
#define EQX_NOC_CHANNEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace eqx {

/**
 * Receives due-tick notifications from channels so the owner can
 * visit only channels that actually hold arrivals (the network's
 * pending-wire event wheel) instead of scanning every wire per tick.
 */
class ChannelScheduler
{
  public:
    virtual ~ChannelScheduler() = default;
    /** The channel tagged @p tag has an item arriving at tick @p due. */
    virtual void channelDue(std::uint32_t tag, Cycle due) = 0;
};

/**
 * Pipelined point-to-point channel. T is Flit or Credit. The owner
 * calls send() during a tick and drains arrivals at the start of the
 * next tick(s) via receive().
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(int latency = 1)
        : latency_(latency), buf_(static_cast<std::size_t>(latency) + 1)
    {
        eqx_assert(latency >= 1, "channel latency must be >= 1");
    }

    /**
     * Attach the owner's delivery scheduler; every send() then posts
     * one (tag, arrival-tick) event. Unscheduled channels (unit tests,
     * exhaustive-tick networks) behave exactly as before.
     */
    void
    setScheduler(ChannelScheduler *sched, std::uint32_t tag)
    {
        sched_ = sched;
        tag_ = tag;
    }

    /** Enqueue an item at tick @p now; it arrives at now + latency. */
    void
    send(T item, Cycle now)
    {
        // A physical link carries one item per tick. The event wheel
        // also relies on this: one send per (channel, tick) means one
        // due event per (channel, tick).
        eqx_assert(lastSendTick_ == kNeverSent || now > lastSendTick_,
                   "channel accepts at most one send per tick (tick ",
                   now, ")");
        lastSendTick_ = now;
        if (count_ == buf_.size())
            grow();
        std::size_t slot = head_ + count_;
        if (slot >= buf_.size())
            slot -= buf_.size();
        buf_[slot].first = now + static_cast<Cycle>(latency_);
        buf_[slot].second = std::move(item);
        ++count_;
        if (sched_)
            sched_->channelDue(tag_, now + static_cast<Cycle>(latency_));
    }

    /** Pop the next item that has arrived by tick @p now, if any. */
    bool
    receive(Cycle now, T &out)
    {
        if (count_ == 0 || buf_[head_].first > now)
            return false;
        out = std::move(buf_[head_].second);
        if (++head_ == buf_.size())
            head_ = 0;
        --count_;
        return true;
    }

    bool empty() const { return count_ == 0; }
    std::size_t inflightCount() const { return count_; }
    int latency() const { return latency_; }

  private:
    static constexpr Cycle kNeverSent = ~static_cast<Cycle>(0);

    /**
     * Double the in-flight ring, preserving FIFO order. A drained-each-
     * tick channel never exceeds `latency` items, so the initial sizing
     * makes this cold; only tests that batch sends without receiving
     * ever grow.
     */
    void
    grow()
    {
        std::vector<std::pair<Cycle, T>> bigger(
            buf_.empty() ? 4 : buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i) {
            std::size_t src = head_ + i;
            if (src >= buf_.size())
                src -= buf_.size();
            bigger[i] = std::move(buf_[src]);
        }
        buf_ = std::move(bigger);
        head_ = 0;
    }

    int latency_;
    Cycle lastSendTick_ = kNeverSent;
    ChannelScheduler *sched_ = nullptr;
    std::uint32_t tag_ = 0;
    /** FIFO ring of (arrival tick, item), `count_` live from `head_`. */
    std::vector<std::pair<Cycle, T>> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_CHANNEL_HH
