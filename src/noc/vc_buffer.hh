/**
 * @file
 * Per-VC input buffer and its allocation state machine. Buffers are
 * atomic (one packet at a time), matching the paper's 1 pkt/VC
 * configuration.
 */

#ifndef EQX_NOC_VC_BUFFER_HH
#define EQX_NOC_VC_BUFFER_HH

#include <deque>
#include <vector>

#include "common/logging.hh"
#include "noc/packet.hh"

namespace eqx {

/** Allocation state of one input VC. */
enum class VcState : std::uint8_t
{
    Idle,           ///< no packet resident
    RouteComputed,  ///< head flit routed, waiting for VC allocation
    Active,         ///< output VC granted, flits competing for the switch
};

/** One virtual-channel FIFO plus routing/allocation bookkeeping. */
class VcBuffer
{
  public:
    explicit VcBuffer(int depth_flits = 5) : depth_(depth_flits) {}

    bool
    push(Flit f)
    {
        eqx_assert(static_cast<int>(fifo_.size()) < depth_,
                   "VC buffer overflow: flow control violated");
        fifo_.push_back(std::move(f));
        return true;
    }

    Flit
    pop()
    {
        eqx_assert(!fifo_.empty(), "pop from empty VC buffer");
        Flit f = std::move(fifo_.front());
        fifo_.pop_front();
        return f;
    }

    const Flit &front() const { return fifo_.front(); }
    bool empty() const { return fifo_.empty(); }
    bool full() const { return static_cast<int>(fifo_.size()) >= depth_; }
    int occupancy() const { return static_cast<int>(fifo_.size()); }
    int depth() const { return depth_; }

    VcState state = VcState::Idle;

    /** Route candidates computed by RC (output port indices). */
    std::vector<int> routeCandidates;
    /** Granted output port / VC once Active. */
    int outPort = -1;
    int outVc = -1;

    void
    release()
    {
        state = VcState::Idle;
        routeCandidates.clear();
        outPort = -1;
        outVc = -1;
    }

  private:
    int depth_;
    std::deque<Flit> fifo_;
};

/** Output-side VC bookkeeping: busy flag and downstream credits. */
struct OutputVc
{
    bool busy = false;  ///< a packet currently owns this downstream VC
    int credits = 0;    ///< free slots in the downstream input buffer
};

} // namespace eqx

#endif // EQX_NOC_VC_BUFFER_HH
