/**
 * @file
 * Per-VC input buffer and its allocation state machine. Buffers are
 * atomic (one packet at a time), matching the paper's 1 pkt/VC
 * configuration.
 */

#ifndef EQX_NOC_VC_BUFFER_HH
#define EQX_NOC_VC_BUFFER_HH

#include <vector>

#include "common/logging.hh"
#include "noc/packet.hh"

namespace eqx {

/** Allocation state of one input VC. */
enum class VcState : std::uint8_t
{
    Idle,           ///< no packet resident
    RouteComputed,  ///< head flit routed, waiting for VC allocation
    Active,         ///< output VC granted, flits competing for the switch
};

/**
 * One virtual-channel FIFO plus routing/allocation bookkeeping. The
 * FIFO is a fixed ring sized to the buffer depth — the flow-control
 * bound — so the hot push/front/pop path is plain indexed moves with
 * no node or block allocation.
 */
class VcBuffer
{
  public:
    explicit VcBuffer(int depth_flits = 5)
        : depth_(depth_flits),
          fifo_(static_cast<std::size_t>(depth_flits))
    {}

    bool
    push(Flit f)
    {
        eqx_assert(count_ < depth_,
                   "VC buffer overflow: flow control violated");
        int slot = head_ + count_;
        if (slot >= depth_)
            slot -= depth_;
        fifo_[static_cast<std::size_t>(slot)] = std::move(f);
        ++count_;
        return true;
    }

    Flit
    pop()
    {
        eqx_assert(count_ > 0, "pop from empty VC buffer");
        Flit f = std::move(fifo_[static_cast<std::size_t>(head_)]);
        if (++head_ == depth_)
            head_ = 0;
        --count_;
        return f;
    }

    const Flit &
    front() const
    {
        return fifo_[static_cast<std::size_t>(head_)];
    }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= depth_; }
    int occupancy() const { return count_; }
    int depth() const { return depth_; }

    VcState state = VcState::Idle;

    /** Route candidates computed by RC (output port indices). */
    std::vector<int> routeCandidates;
    /** Granted output port / VC once Active. */
    int outPort = -1;
    int outVc = -1;

    void
    release()
    {
        state = VcState::Idle;
        routeCandidates.clear();
        outPort = -1;
        outVc = -1;
    }

  private:
    int depth_;
    int head_ = 0;
    int count_ = 0;
    std::vector<Flit> fifo_;
};

/** Output-side VC bookkeeping: busy flag and downstream credits. */
struct OutputVc
{
    bool busy = false;  ///< a packet currently owns this downstream VC
    int credits = 0;    ///< free slots in the downstream input buffer
};

} // namespace eqx

#endif // EQX_NOC_VC_BUFFER_HH
