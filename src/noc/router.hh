/**
 * @file
 * Input-queued virtual-channel router with a two-stage pipeline
 * (RC+VA, SA+ST), credit-based flow control, atomic VC buffers and
 * separable input-first allocation — a BookSim-class model.
 *
 * Port layout is flexible: besides the four mesh directions and the
 * local NI port, a router may carry extra injection input ports (the
 * EIR extra port of EquiNox, or MultiPort's additional ports) and
 * extra ejection output ports (MultiPort).
 */

#ifndef EQX_NOC_ROUTER_HH
#define EQX_NOC_ROUTER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/arbiter.hh"
#include "noc/channel.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/topology.hh"
#include "noc/vc_buffer.hh"

namespace eqx {

/** What a router port connects to. */
enum class PortKind : std::uint8_t
{
    Geo,       ///< a neighbouring router (mesh link)
    LocalInj,  ///< the node's own NI injection buffer (input only)
    LocalEj,   ///< the node's own NI ejection buffer (output only)
    RemoteInj, ///< an interposer link from a remote CB NI (EIR port)
};

/** Aggregate activity counters shared across a network (power model). */
struct NetworkActivity
{
    std::uint64_t bufferWrites = 0;   ///< flits written into VC buffers
    std::uint64_t bufferReads = 0;    ///< flits read out of VC buffers
    std::uint64_t xbarTraversals = 0; ///< switch traversals
    std::uint64_t vaGrants = 0;
    std::uint64_t saGrants = 0;
    std::uint64_t linkFlits = 0;          ///< on-chip link traversals
    std::uint64_t interposerLinkFlits = 0;///< interposer link traversals
    std::uint64_t creditsSent = 0;
    std::uint64_t requestBits = 0;    ///< payload bits injected, by class
    std::uint64_t replyBits = 0;

    void
    merge(const NetworkActivity &o)
    {
        bufferWrites += o.bufferWrites;
        bufferReads += o.bufferReads;
        xbarTraversals += o.xbarTraversals;
        vaGrants += o.vaGrants;
        saGrants += o.saGrants;
        linkFlits += o.linkFlits;
        interposerLinkFlits += o.interposerLinkFlits;
        creditsSent += o.creditsSent;
        requestBits += o.requestBits;
        replyBits += o.replyBits;
    }

    void reset() { *this = NetworkActivity{}; }
};

/**
 * The router proper. The owning network wires channels to ports and
 * calls the pipeline stages each internal tick in the order
 * SA -> VA -> RC (so a stage's result is consumed one tick later).
 *
 * All state the pipeline stages read or write lives in flat
 * struct-of-arrays members inside the Router object itself
 * (DESIGN.md §14); the InputPort/OutputPort structs are observability
 * views refreshed from the SoA state when an accessor is called, so
 * the hot path never touches them.
 */
class Router
{
  public:
    struct InputPort
    {
        PortKind kind = PortKind::Geo;
        Dir dir = Dir::Local;          ///< for Geo: which neighbour side
        std::vector<VcBuffer> vcs;     ///< view: state/route/grant only
        Channel<Credit> *creditUp = nullptr; ///< credits back upstream
        std::uint64_t flitsAccepted = 0; ///< flits received on this port
    };

    struct OutputPort
    {
        PortKind kind = PortKind::Geo;
        Dir dir = Dir::Local;
        std::vector<OutputVc> vcs;     ///< view: busy/credits
        Channel<Flit> *out = nullptr;  ///< flits downstream
        bool interposer = false;       ///< counts as interposer traversal
        std::uint64_t flitsSent = 0;   ///< flits driven onto the link
    };

    /** Pending-VC bitmasks cover at most this many input VCs (and,
     *  since vcsPerPort >= 1, at most this many input ports). */
    static constexpr int kMaxInVcs = 64;
    /** Flat output-VC bound (ports are already capped at 32). */
    static constexpr int kMaxOutVcs = 64;
    static constexpr int kMaxInPorts = 32;
    static constexpr int kMaxOutPorts = 32;
    /** Route-compute candidate bound: <= 2 minimal directions, or the
     *  router's ejection ports (MultiPort CBs carry a few). */
    static constexpr int kMaxRouteCand = 4;

    Router(NodeId id, const Topology *topo, const NocParams *params,
           NetworkActivity *activity);

    NodeId id() const { return id_; }
    Coord coord() const { return coord_; }

    /** Add ports during network construction; returns the port index. */
    int addInputPort(PortKind kind, Dir dir, Channel<Credit> *credit_up);
    int addOutputPort(PortKind kind, Dir dir, Channel<Flit> *out,
                      int downstream_depth, bool interposer = false);

    int numInputPorts() const { return static_cast<int>(inputs_.size()); }
    int numOutputPorts() const { return static_cast<int>(outputs_.size()); }
    /** Observability views; synced from the SoA state on access. */
    const InputPort &inputPort(int i) const;
    const OutputPort &outputPort(int i) const;

    /** Deliver a flit arriving on an input port (from a channel). */
    void acceptFlit(int in_port, Flit f, Cycle now);

    /** Deliver a credit for (out_port, vc). */
    void
    creditArrived(int out_port, int vc)
    {
        int of = out_port * params_->vcsPerPort + vc;
        if (++outCredits_[of] == params_->vcDepthFlits &&
            !outBusy_[of]) {
            freeOutVcs_ |= std::uint64_t{1} << of;
            if (vaBlocked_ != 0)
                wakeBlockedVa(out_port);
        }
    }

    /**
     * Pass-through fast path (DESIGN.md §14): cache every attached
     * channel's wheel-push parameters (slot base, latency, wire tag)
     * so SA flit sends and credit returns append straight to the
     * network's wheel slot instead of chasing through the channel
     * objects. The skipped Channel::send bookkeeping is provably
     * redundant here: SA grants at most one flit per output port and
     * one credit per input port per tick, so the one-send-per-tick
     * invariant holds by construction. Passing @p slots == nullptr
     * reverts to Channel::send (store mode, fault-armed networks).
     * Must be called after the network (re)tags the channels.
     */
    void setDirectWheel(WheelSlot *slots, std::uint32_t slot_mask);

    /** Run all three pipeline stages in consumption order. */
    void
    tickStages(Cycle now)
    {
        switchAllocStage(now);
        vcAllocStage(now);
        routeComputeStage(now);
    }

    /** Pipeline stages; the network calls these once per internal tick. */
    void switchAllocStage(Cycle now);
    void vcAllocStage(Cycle now);
    void routeComputeStage(Cycle now);

    /** Mean cycles a flit spends resident in this router. */
    const RunningStat &residenceStat() const { return residence_; }

    /** Total flits forwarded through this router. */
    std::uint64_t flitsForwarded() const { return flitsForwarded_; }

    // Per-router observability counters (DESIGN.md §9).
    /**
     * Input VC nominations the VC allocator saw / granted, as of
     * internal tick @p now. Takes the tick because blocked
     * nominations are event-driven (DESIGN.md §14): a VC parked on
     * vaBlocked_ would have re-nominated every tick in the exhaustive
     * loop, so its deferred per-tick requests (now - block tick) are
     * added on read. Bit-identical to the exhaustive loop's count.
     */
    std::uint64_t
    vaRequests(Cycle now) const
    {
        std::uint64_t r = vaRequests_;
        std::uint64_t m = vaBlocked_;
        while (m != 0) {
            int f = std::countr_zero(m);
            m &= m - 1;
            r += now - vaBlockTick_[f];
        }
        return r;
    }
    std::uint64_t vaGrants() const { return vaGrants_; }
    /** Switch-allocator per-VC requests seen / crossings granted. */
    std::uint64_t saRequests() const { return saRequests_; }
    std::uint64_t saGrants() const { return saGrants_; }
    /** (VC, tick) occurrences of an Active VC starved of credits. */
    std::uint64_t creditStallCycles() const { return creditStallCycles_; }

    /**
     * Mean buffered input flits per internal tick over [stats reset,
     * @p now]. Kept as exact integers (flit-tick sum / tick count) so
     * ticks the activity scheduler skipped — which by construction had
     * zero occupancy — are reconstructed exactly: the active-set and
     * exhaustive tick loops report bit-identical means.
     */
    double occupancyMean(Cycle now) const;

    /** Clear all measurement state (warmup boundary); structure kept.
     *  @p now is the current internal tick (occupancy epoch start). */
    void resetStats(Cycle now = 0);

    /** True if any VC in any input port holds flits (drain check /
     *  active-set membership). O(1): a counter tracks push/pop. */
    bool hasBufferedFlits() const { return bufferedFlits_ > 0; }

    /**
     * Structure-of-arrays invariant check (tests): the per-stage
     * pending bitmasks, the per-VC state/count arrays, the flat
     * output-VC credit/busy state, and the aggregate buffered-flit
     * counter must all agree (DESIGN.md §14).
     */
    bool pipelineStateConsistent() const;

  private:
    /**
     * Re-arm parked VA nominations waiting on output port @p port
     * (a VC there just went free). Parking is gated off classVcs, so
     * a parked VC's permitted window is a fixed subset of its
     * candidate ports' VCs: port-granularity wakes can be early
     * (freed VC outside an escape/adaptive split) but never missed —
     * an early-woken VC re-nominates, fails, and re-parks with exact
     * deferred accounting either way.
     */
    void
    wakeBlockedVa(int port)
    {
        std::uint64_t w = vaWaiters_[port] & vaBlocked_;
        if (w == 0)
            return;
        vaPending_ |= w;
        vaWoken_ |= w;
        vaBlocked_ &= ~w;
        vaWaiters_[port] &= vaBlocked_;
    }

    /** Route-compute body over the SoA state: fill the candidate set
     *  of input VC @p flat and mark it RouteComputed. */
    void routeVcFlat(int flat);
    /** Output-port index for a geographic direction (-1 if absent). */
    int geoOutPort(Dir d) const { return dirPort_[static_cast<int>(d)]; }

    /** VC index of the escape VC (adaptive mode). */
    int escapeVc() const { return params_->vcsPerPort - 1; }

    /** Allowed output VC range for a packet class in classVcs mode. */
    void classVcRange(int cls, int &lo, int &hi) const;

    /** True when VC-Mono lets class @p cls borrow the other's VCs. */
    bool monopolyAllowed(int cls, Cycle now) const;

    /** Pick the (port, vc) request for input VC @p flat; false if
     *  none available this tick. Reads only the SoA state. */
    bool chooseVcRequest(int flat, Cycle now, int &req_port,
                         int &req_vc);

    /** Refresh one observability view from the SoA state. */
    void syncInputPort(int i) const;
    void syncOutputPort(int i) const;

    NodeId id_;
    const Topology *topo_;
    const NocParams *params_;
    NetworkActivity *activity_;
    Coord coord_;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    std::vector<int> ejPorts_;

    // ---- Packed pipeline state (DESIGN.md §14) ----
    // Everything the allocator stages touch per tick sits in flat,
    // cache-dense arrays — indexed by flat input-VC id
    // (port * vcsPerPort + vc) on the input side and flat output-VC id
    // on the output side — plus one contiguous per-router flit store,
    // instead of InputPort -> VcBuffer -> heap-ring pointer chases.
    // Members are ordered hottest-first so one tick's working set per
    // router spans a handful of consecutive cache lines.

    /**
     * Pending-work bitmasks over flat input-VC index (port * vcsPerPort
     * + vc), maintained at every state transition so the pipeline
     * stages visit only VCs that can act instead of scanning every
     * buffer. Bit-scan order equals the nested port/VC loop order, so
     * arbitration outcomes are unchanged.
     *  - rcPending_: Idle VCs holding an unrouted head flit.
     *  - vaPending_: VCs in RouteComputed awaiting an output VC.
     *  - saPending_: Active VCs currently holding flits.
     */
    std::uint64_t rcPending_ = 0;
    std::uint64_t vaPending_ = 0;
    std::uint64_t saPending_ = 0;
    /**
     * Event-driven VA retry (DESIGN.md §14): a nomination that found
     * every candidate output VC unavailable cannot succeed until some
     * output VC of this router frees, so its bit moves from
     * vaPending_ to vaBlocked_ instead of re-polling every tick. A
     * 0->1 transition of freeOutVcs_ on output port p wakes only the
     * parked bits registered in vaWaiters_[p] (spurious wakes
     * re-block with exact accounting). Only engaged when the success
     * condition depends solely on freeOutVcs_ (uniformCredit_ and no
     * class-window schedule); vaWoken_ marks bits whose skipped
     * per-tick vaRequests_ ticks still need crediting when VA next
     * processes them.
     */
    std::uint64_t vaBlocked_ = 0;
    std::uint64_t vaWoken_ = 0;
    /** Parked input VCs per candidate output port; bits outside
     *  vaBlocked_ are stale and masked off at wake time. */
    std::uint64_t vaWaiters_[kMaxOutPorts] = {};
    /**
     * Bit per flat output VC that is allocatable right now (!busy &&
     * credits == vcDepthFlits). Under the atomic-VC rule every free VC
     * holds exactly `vcDepthFlits` credits, so "most credits, first in
     * scan order" — the VA tie-break — reduces to "lowest set bit in
     * the candidate window": chooseVcRequest() is a couple of mask ops
     * instead of a per-candidate credit walk. Only valid while every
     * output port was added with downstream depth == vcDepthFlits
     * (uniformCredit_); otherwise the credit-compare loop is kept.
     */
    std::uint64_t freeOutVcs_ = 0;
    /** Total flits currently buffered across all input VCs. */
    int bufferedFlits_ = 0;
    bool uniformCredit_ = true;

    /**
     * All per-input-VC pipeline state, packed to one 16-byte record so
     * an RC/VA/SA visit touches a single cache line (four VCs per
     * line) instead of one line per parallel array.
     */
    struct VcLane
    {
        VcState state = VcState::Idle;
        std::uint8_t count = 0;     ///< buffered flits
        std::uint8_t head = 0;      ///< ring head slot
        std::uint8_t cls = 0;       ///< head class (0/1)
        std::uint8_t headOk = 0;    ///< front flit is a head
        std::uint8_t ejecting = 0;  ///< routed to LocalEj
        std::uint8_t candCount = 0;
        std::int8_t outPort = -1;   ///< granted port (-1)
        std::int8_t destX = 0;      ///< head dest coord
        std::int8_t destY = 0;
        std::int16_t outFlat = -1;  ///< granted flat out VC
        std::int8_t cand[kMaxRouteCand] = {};
    };
    static_assert(sizeof(VcLane) == 16, "VcLane must stay one half-line");
    VcLane vc_[kMaxInVcs] = {};

    /** Downstream credits / busy per flat output VC (credits bounded
     *  by the downstream depth, so a byte each keeps both arrays in
     *  one cache line apiece). */
    std::int8_t outCredits_[kMaxOutVcs] = {};
    std::uint8_t outBusy_[kMaxOutVcs] = {};
    /** Rotation cursors for the separable allocators: input-side SA
     *  (per input port, over its VCs), output-side SA (per output
     *  port, over input ports), VA (per flat output VC, over flat
     *  input VCs). Replaces a RoundRobinArbiter object per port. */
    std::uint8_t inSaLast_[kMaxInPorts] = {};
    std::uint8_t outSaLast_[kMaxOutPorts] = {};
    std::uint8_t vaLast_[kMaxOutVcs] = {};
    /** Direct wheel push (setDirectWheel): slot base/mask plus the
     *  per-port channel latency and wire tag, cached so the send hot
     *  path is one computed append with no channel-object access. */
    WheelSlot *wheelSlots_ = nullptr;
    std::uint32_t directWheelMask_ = 0;
    std::uint32_t outTag_[kMaxOutPorts] = {};
    std::uint32_t crTag_[kMaxInPorts] = {};
    std::int8_t outLat_[kMaxOutPorts] = {};
    std::int8_t crLat_[kMaxInPorts] = {};

    /** Geo direction -> output port (-1 when absent). */
    std::int8_t dirPort_[4] = {-1, -1, -1, -1};
    /** Ejection ports as a fixed candidate array (== ejPorts_). Not
     *  maintained on concentrated routers, whose ejection fan-out can
     *  exceed kMaxRouteCand — they eject via destSub_ instead. */
    std::int8_t ejCand_[kMaxRouteCand] = {};
    std::uint32_t outIsGeo_ = 0;       ///< bit per output port
    std::uint32_t outInterposer_ = 0;  ///< bit per output port
    int ejCandCount_ = 0;
    /** Topology facts cached off the hot path's pointer chase. */
    bool wrap_ = false;         ///< torus: wrap-aware RC + dateline VCs
    bool concentrated_ = false; ///< CMesh: eject by destination slot
    /** Concentrated ejection: the head packet's destination tile slot
     *  per input VC (indexes ejPorts_), written at route compute. */
    std::int8_t destSub_[kMaxInVcs] = {};

    std::uint64_t flitsForwarded_ = 0;
    std::uint64_t vaRequests_ = 0;
    std::uint64_t vaGrants_ = 0;
    std::uint64_t saRequests_ = 0;
    std::uint64_t saGrants_ = 0;
    std::uint64_t creditStallCycles_ = 0;
    /** Exact occupancy accounting: flit-ticks, ticks sampled, and the
     *  last tick accounted (gaps were provably-idle, occupancy 0). */
    std::uint64_t occSumFlitTicks_ = 0;
    std::uint64_t occSamples_ = 0;
    Cycle occLastTick_ = 0;

    /** Per-output-port downstream flit channel + per-input-port
     *  upstream credit channel (SA send / credit-return paths). */
    Channel<Flit> *outChan_[kMaxOutPorts] = {};
    Channel<Credit> *creditUp_[kMaxInPorts] = {};
    /** Per-port flit counters (exported via the port views). */
    std::uint64_t inFlitsAccepted_[kMaxInPorts] = {};
    std::uint64_t outFlitsSent_[kMaxOutPorts] = {};

    /** Flit storage for every input VC: ring @p flat occupies slots
     *  [flat * vcDepthFlits, (flat+1) * vcDepthFlits). One allocation
     *  per router — the whole buffered state is one contiguous run. */
    std::vector<Flit> flitStore_;

    /** Tick each vaBlocked_ bit parked at (deferred vaRequests_). */
    Cycle vaBlockTick_[kMaxInVcs] = {};

    /** Last tick a flit of each class (0=req, 1=reply) was seen. */
    Cycle lastSeenClass_[3] = {0, 0, 0};
    bool seenClass_[3] = {false, false, false};

    RunningStat residence_;
};

} // namespace eqx

#endif // EQX_NOC_ROUTER_HH
