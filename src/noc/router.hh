/**
 * @file
 * Input-queued virtual-channel router with a two-stage pipeline
 * (RC+VA, SA+ST), credit-based flow control, atomic VC buffers and
 * separable input-first allocation — a BookSim-class model.
 *
 * Port layout is flexible: besides the four mesh directions and the
 * local NI port, a router may carry extra injection input ports (the
 * EIR extra port of EquiNox, or MultiPort's additional ports) and
 * extra ejection output ports (MultiPort).
 */

#ifndef EQX_NOC_ROUTER_HH
#define EQX_NOC_ROUTER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "noc/arbiter.hh"
#include "noc/channel.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/vc_buffer.hh"

namespace eqx {

/** What a router port connects to. */
enum class PortKind : std::uint8_t
{
    Geo,       ///< a neighbouring router (mesh link)
    LocalInj,  ///< the node's own NI injection buffer (input only)
    LocalEj,   ///< the node's own NI ejection buffer (output only)
    RemoteInj, ///< an interposer link from a remote CB NI (EIR port)
};

/** Aggregate activity counters shared across a network (power model). */
struct NetworkActivity
{
    std::uint64_t bufferWrites = 0;   ///< flits written into VC buffers
    std::uint64_t bufferReads = 0;    ///< flits read out of VC buffers
    std::uint64_t xbarTraversals = 0; ///< switch traversals
    std::uint64_t vaGrants = 0;
    std::uint64_t saGrants = 0;
    std::uint64_t linkFlits = 0;          ///< on-chip link traversals
    std::uint64_t interposerLinkFlits = 0;///< interposer link traversals
    std::uint64_t creditsSent = 0;
    std::uint64_t requestBits = 0;    ///< payload bits injected, by class
    std::uint64_t replyBits = 0;

    void
    merge(const NetworkActivity &o)
    {
        bufferWrites += o.bufferWrites;
        bufferReads += o.bufferReads;
        xbarTraversals += o.xbarTraversals;
        vaGrants += o.vaGrants;
        saGrants += o.saGrants;
        linkFlits += o.linkFlits;
        interposerLinkFlits += o.interposerLinkFlits;
        creditsSent += o.creditsSent;
        requestBits += o.requestBits;
        replyBits += o.replyBits;
    }

    void reset() { *this = NetworkActivity{}; }
};

/** Node-id -> coordinate mapping provided by the owning network. */
class Topology
{
  public:
    Topology(int width, int height) : w_(width), h_(height) {}

    int width() const { return w_; }
    int height() const { return h_; }
    int numNodes() const { return w_ * h_; }

    Coord
    coord(NodeId n) const
    {
        return {static_cast<int>(n) % w_, static_cast<int>(n) / w_};
    }

    NodeId
    node(const Coord &c) const
    {
        return static_cast<NodeId>(c.y * w_ + c.x);
    }

    bool
    inBounds(const Coord &c) const
    {
        return c.x >= 0 && c.x < w_ && c.y >= 0 && c.y < h_;
    }

  private:
    int w_;
    int h_;
};

/**
 * The router proper. The owning network wires channels to ports and
 * calls the pipeline stages each internal tick in the order
 * SA -> VA -> RC (so a stage's result is consumed one tick later).
 */
class Router
{
  public:
    struct InputPort
    {
        PortKind kind = PortKind::Geo;
        Dir dir = Dir::Local;          ///< for Geo: which neighbour side
        std::vector<VcBuffer> vcs;
        Channel<Credit> *creditUp = nullptr; ///< credits back upstream
        RoundRobinArbiter saArb;
        std::uint64_t flitsAccepted = 0; ///< flits received on this port
    };

    struct OutputPort
    {
        PortKind kind = PortKind::Geo;
        Dir dir = Dir::Local;
        std::vector<OutputVc> vcs;
        Channel<Flit> *out = nullptr;  ///< flits downstream
        bool interposer = false;       ///< counts as interposer traversal
        std::vector<RoundRobinArbiter> vaArbs; ///< one per output VC
        RoundRobinArbiter saArb;
        std::uint64_t flitsSent = 0;   ///< flits driven onto the link
    };

    Router(NodeId id, const Topology *topo, const NocParams *params,
           NetworkActivity *activity);

    NodeId id() const { return id_; }
    Coord coord() const { return topo_->coord(id_); }

    /** Add ports during network construction; returns the port index. */
    int addInputPort(PortKind kind, Dir dir, Channel<Credit> *credit_up);
    int addOutputPort(PortKind kind, Dir dir, Channel<Flit> *out,
                      int downstream_depth, bool interposer = false);

    int numInputPorts() const { return static_cast<int>(inputs_.size()); }
    int numOutputPorts() const { return static_cast<int>(outputs_.size()); }
    const InputPort &inputPort(int i) const { return inputs_[i]; }
    const OutputPort &outputPort(int i) const { return outputs_[i]; }

    /** Deliver a flit arriving on an input port (from a channel). */
    void acceptFlit(int in_port, Flit f, Cycle now);

    /** Deliver a credit for (out_port, vc). */
    void creditArrived(int out_port, int vc);

    /** Pipeline stages; the network calls these once per internal tick. */
    void switchAllocStage(Cycle now);
    void vcAllocStage(Cycle now);
    void routeComputeStage(Cycle now);

    /** Mean cycles a flit spends resident in this router. */
    const RunningStat &residenceStat() const { return residence_; }

    /** Total flits forwarded through this router. */
    std::uint64_t flitsForwarded() const { return flitsForwarded_; }

    // Per-router observability counters (DESIGN.md §9).
    /** Input VC nominations the VC allocator saw / granted. */
    std::uint64_t vaRequests() const { return vaRequests_; }
    std::uint64_t vaGrants() const { return vaGrants_; }
    /** Switch-allocator per-VC requests seen / crossings granted. */
    std::uint64_t saRequests() const { return saRequests_; }
    std::uint64_t saGrants() const { return saGrants_; }
    /** (VC, tick) occurrences of an Active VC starved of credits. */
    std::uint64_t creditStallCycles() const { return creditStallCycles_; }

    /**
     * Mean buffered input flits per internal tick over [stats reset,
     * @p now]. Kept as exact integers (flit-tick sum / tick count) so
     * ticks the activity scheduler skipped — which by construction had
     * zero occupancy — are reconstructed exactly: the active-set and
     * exhaustive tick loops report bit-identical means.
     */
    double occupancyMean(Cycle now) const;

    /** Clear all measurement state (warmup boundary); structure kept.
     *  @p now is the current internal tick (occupancy epoch start). */
    void resetStats(Cycle now = 0);

    /** True if any VC in any input port holds flits (drain check /
     *  active-set membership). O(1): a counter tracks push/pop. */
    bool hasBufferedFlits() const { return bufferedFlits_ > 0; }

  private:
    /** Output-port index for a geographic direction (-1 if absent). */
    int geoOutPort(Dir d) const;
    /** All ejection output ports. */
    const std::vector<int> &ejectionPorts() const { return ejPorts_; }

    /** VC index of the escape VC (adaptive mode). */
    int escapeVc() const { return params_->vcsPerPort - 1; }

    /** Allowed output VC range for a packet class in classVcs mode. */
    void classVcRange(PacketType t, int &lo, int &hi) const;

    /** True when VC-Mono lets class @p t borrow the other class's VCs. */
    bool monopolyAllowed(PacketType t, Cycle now) const;

    /** Pick the (port, vc) request for an input VC; false if none. */
    bool chooseVcRequest(const InputPort &ip, int in_vc, Cycle now,
                         int &req_port, int &req_vc);

    /** RC body shared by the mask walk and the exhaustive scan:
     *  compute @p vcb's route candidates and mark it RouteComputed. */
    void routeVc(VcBuffer &vcb, Coord here);

    NodeId id_;
    const Topology *topo_;
    const NocParams *params_;
    NetworkActivity *activity_;

    std::vector<InputPort> inputs_;
    std::vector<OutputPort> outputs_;
    std::vector<int> ejPorts_;

    /** Last tick a flit of each class (0=req, 1=reply) was seen. */
    Cycle lastSeenClass_[2] = {0, 0};
    bool seenClass_[2] = {false, false};

    /**
     * Pending-work bitmasks over flat input-VC index (port * vcsPerPort
     * + vc), maintained at every state transition so the pipeline
     * stages visit only VCs that can act instead of scanning every
     * buffer. Bit-scan order equals the nested port/VC loop order, so
     * arbitration outcomes are unchanged.
     *  - rcPending_: Idle VCs holding an unrouted head flit.
     *  - vaPending_: VCs in RouteComputed awaiting an output VC.
     *  - saPending_: Active VCs currently holding flits.
     */
    std::uint64_t rcPending_ = 0;
    std::uint64_t vaPending_ = 0;
    std::uint64_t saPending_ = 0;

    RunningStat residence_;
    /** Exact occupancy accounting: flit-ticks, ticks sampled, and the
     *  last tick accounted (gaps were provably-idle, occupancy 0). */
    std::uint64_t occSumFlitTicks_ = 0;
    std::uint64_t occSamples_ = 0;
    Cycle occLastTick_ = 0;
    /** Total flits currently buffered across all input VCs. */
    int bufferedFlits_ = 0;
    std::uint64_t flitsForwarded_ = 0;
    std::uint64_t vaRequests_ = 0;
    std::uint64_t vaGrants_ = 0;
    std::uint64_t saRequests_ = 0;
    std::uint64_t saGrants_ = 0;
    std::uint64_t creditStallCycles_ = 0;

    /** Allocation-free scratch state for the allocator stages. */
    struct VaWant
    {
        int inFlat;
        int port;
        int vc;
    };
    std::vector<VaWant> vaWants_;
    std::vector<int> scratchReqs_;
    std::vector<int> saChosenVc_;
};

} // namespace eqx

#endif // EQX_NOC_ROUTER_HH
