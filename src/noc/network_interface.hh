/**
 * @file
 * Network interfaces: the boundary between endpoints (PEs, cache
 * banks) and the routers. Three injection-side microarchitectures are
 * modelled (paper Section 4.4):
 *
 *  - BasicNi: a single injection buffer feeding the local router;
 *  - MultiPortNi: k single-packet buffers all feeding extra injection
 *    ports of the *local* router (the MultiPort comparison scheme);
 *  - EquiNoxNi: five single-packet buffers — four feeding remote EIRs
 *    over 1-cycle interposer links plus one feeding the local router —
 *    steered by the paper's "Buffer Selection 1" policy.
 */

#ifndef EQX_NOC_NETWORK_INTERFACE_HH
#define EQX_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault_plane.hh"
#include "noc/channel.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/router.hh"
#include "noc/vc_buffer.hh"

namespace eqx {

/** Endpoint-side consumer of packets leaving the network at a node. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;
    /** May the NI hand over this packet right now? */
    virtual bool canAccept(const PacketPtr &pkt) = 0;
    /** Take ownership of a fully reassembled packet. */
    virtual void accept(const PacketPtr &pkt, Cycle core_now) = 0;
};

/** Per-class latency accumulators for one network (in network ticks). */
struct LatencyStats
{
    /** Histogram geometry: 4-tick buckets tracking up to 1024 ticks;
     *  longer latencies land in the overflow bucket and percentiles
     *  saturate at the range edge. */
    static constexpr double kHistBucketTicks = 4.0;
    static constexpr int kHistBuckets = 256;

    RunningStat queueLat[2];   ///< [0]=request, [1]=reply
    RunningStat netLat[2];
    RunningStat totalLat[2];
    /** Per-class total-latency distributions (p50/p95/p99 exports). */
    Histogram totalHist[2] = {
        Histogram(kHistBucketTicks, kHistBuckets),
        Histogram(kHistBucketTicks, kHistBuckets),
    };
    std::uint64_t packets[2] = {0, 0};

    static int classIdx(PacketType t) { return isRequest(t) ? 0 : 1; }

    void
    reset()
    {
        for (int c = 0; c < 2; ++c) {
            queueLat[c].reset();
            netLat[c].reset();
            totalLat[c].reset();
            totalHist[c].reset();
            packets[c] = 0;
        }
    }
};

/**
 * Base NI: ejection reassembly (common to all variants) plus a
 * dispatch/serialize injection engine over one or more buffers.
 */
class NetworkInterface
{
  public:
    /** One injection buffer and its serializer onto a router port. */
    struct InjBuffer
    {
        std::deque<PacketPtr> queue;
        int capacityPackets = 1;
        Channel<Flit> *out = nullptr;   ///< to a router injection port
        bool interposer = false;        ///< EIR link (energy accounting)
        NodeId targetRouter = kInvalidNode;
        Coord targetCoord;              ///< cached for buffer selection
        /** Fault detection masked this port: selectBuffer policies
         *  must route around it (DESIGN.md §11.4). */
        bool masked = false;

        PacketPtr current;              ///< packet mid-serialization
        int numFlits = 0;
        int flitsSent = 0;
        int vc = -1;                    ///< granted router input VC
        std::vector<int> credits;       ///< per-VC credits at the port

        // Per-buffer load observability: injected traffic through this
        // injection point (the simulated analogue of the MCTS
        // evaluator's per-EIR load), plus ticks spent credit-starved.
        std::uint64_t packetsInjected = 0;
        std::uint64_t flitsInjected = 0;
        std::uint64_t creditStallTicks = 0;

        bool
        availableForDispatch() const
        {
            return !current &&
                   static_cast<int>(queue.size()) < capacityPackets;
        }
        bool idle() const { return !current && queue.empty(); }
    };

    /** One ejection port fed by a router LocalEj output. */
    struct EjPort
    {
        std::vector<VcBuffer> vcs;
        Channel<Credit> *creditUp = nullptr;
        RoundRobinArbiter arb;
    };

    NetworkInterface(NodeId node, const Topology *topo,
                     const NocParams *params, NetworkActivity *activity,
                     LatencyStats *latency);
    virtual ~NetworkInterface() = default;

    NodeId node() const { return node_; }

    /** Wire an injection buffer (construction time). @return index. */
    int addInjBuffer(int capacity_packets, Channel<Flit> *out,
                     NodeId target_router, bool interposer);
    /** Wire an ejection port. @return index. */
    int addEjPort(Channel<Credit> *credit_up);

    /** Endpoint call: enqueue a packet for injection. */
    bool inject(const PacketPtr &pkt, Cycle now_ticks);
    /** Space available in the NI core queue? */
    bool canInject() const;

    void setSink(PacketSink *sink) { sink_ = sink; }

    /** Credit returned by the router for injection buffer @p buf. */
    void creditArrived(int buf, int vc);

    // ---- Fault-recovery protocol (active only when a plane is
    // attached; see DESIGN.md §11.3) ----
    /** Arm the end-to-end protocol: inject() stamps sequence numbers
     *  and opens retransmission records, ejection acks and dedups. */
    void attachFaultPlane(FaultPlane *plane) { plane_ = plane; }
    /** End-to-end ack from @p peer: close the (peer, seq) record. */
    void ackArrived(NodeId peer, std::uint32_t seq);
    /** Fault detection: stop dispatching to injection buffer @p buf. */
    void maskBuffer(int buf);
    int maskedBuffers() const { return maskedBufs_; }

    /** Flit arriving from a router ejection port. */
    void acceptEjectedFlit(int ej_port, Flit f);

    /** Run one network tick: ejection, sink delivery, injection. */
    void tick(Cycle now_ticks, Cycle core_now);

    /** True when nothing is queued, mid-flight or awaiting delivery. */
    bool idle() const;

    int numInjBuffers() const { return static_cast<int>(bufs_.size()); }
    const InjBuffer &injBuffer(int i) const
    {
        return bufs_[static_cast<std::size_t>(i)];
    }

    /** Clear per-buffer load counters (warmup boundary). */
    void resetStats();

  protected:
    /**
     * Pick the injection buffer for the packet at the head of the core
     * queue, or -1 to retry next tick. Variants implement the policy.
     */
    virtual int selectBuffer(const PacketPtr &pkt) = 0;

    /** Allowed VC window for a class (classVcs networks). */
    void allowedVcs(PacketType t, int &lo, int &hi) const;

    NodeId node_;
    const Topology *topo_;
    const NocParams *params_;
    NetworkActivity *activity_;
    LatencyStats *latency_;

    std::deque<PacketPtr> coreQueue_;
    int coreCapacity_;
    std::vector<InjBuffer> bufs_;
    std::vector<EjPort> ejPorts_;
    std::deque<PacketPtr> delivered_;
    PacketSink *sink_ = nullptr;
    FaultPlane *plane_ = nullptr;
    int maskedBufs_ = 0;

  private:
    /** One un-acked packet awaiting a possible retransmission. The
     *  record snapshots the fields needed to rebuild a clone, so a
     *  retransmit never aliases packet state an endpoint or stale
     *  in-network flit might still reference. */
    struct RetxRecord
    {
        NodeId peer = kInvalidNode; ///< destination NI
        std::uint32_t seq = 0;
        PacketType type = PacketType::ReadRequest;
        NodeId src = kInvalidNode;
        NodeId dst = kInvalidNode;
        NodeId finalDst = kInvalidNode;
        int bits = 0;
        Addr addr = 0;
        std::uint64_t tag = 0;
        Cycle created = 0;     ///< first-attempt timestamp (latency)
        Cycle deadline = 0;
        Cycle timeout = 0;     ///< current (backed-off) timeout
        int attempts = 0;      ///< retransmissions performed
    };

    /** Receive-side dedup window per source NI: everything below
     *  lowWater was delivered; out-of-order arrivals sit in `sparse`
     *  until the window closes behind them, keeping the set tiny. */
    struct SeqTracker
    {
        std::uint32_t lowWater = 0;
        std::set<std::uint32_t> sparse;

        /** @return true when first seen (deliver), false on a dup. */
        bool
        insert(std::uint32_t s)
        {
            if (s < lowWater)
                return false;
            if (!sparse.insert(s).second)
                return false;
            while (!sparse.empty() && *sparse.begin() == lowWater) {
                sparse.erase(sparse.begin());
                ++lowWater;
            }
            return true;
        }
    };

    void tickEjection(Cycle now_ticks);
    void tickInjection(Cycle now_ticks);
    void serializeBuffer(InjBuffer &b, Cycle now_ticks);
    /** Expire / retransmit overdue protocol records. */
    void tickResilience(Cycle now_ticks);

    /// Scratch list of occupied eject VCs, reused across ticks so the
    /// per-port arbitration allocates nothing on the hot path.
    std::vector<int> ejReqs_;

    // Protocol state (allocated lazily; empty unless plane_ is set).
    std::map<NodeId, std::uint32_t> nextSeq_; ///< per-destination
    std::vector<RetxRecord> retx_;
    std::map<NodeId, SeqTracker> seen_;       ///< per-source dedup
};

/** Single-buffer NI (baseline for PEs and non-EquiNox CBs). */
class BasicNi : public NetworkInterface
{
  public:
    using NetworkInterface::NetworkInterface;

  protected:
    int selectBuffer(const PacketPtr &pkt) override;
};

/** k buffers round-robined onto k local injection ports (MultiPort). */
class MultiPortNi : public NetworkInterface
{
  public:
    using NetworkInterface::NetworkInterface;

  protected:
    int selectBuffer(const PacketPtr &pkt) override;

  private:
    int rr_ = 0;
};

/**
 * The EquiNox CB NI: buffer 0 is the local router, buffers 1..n are
 * EIRs reached over interposer links. Dispatch follows the paper's
 * Buffer Selection 1 policy: only shortest-path EIRs are eligible;
 * quadrant destinations round-robin between the two eligible EIRs;
 * fall back to the local buffer; otherwise retry next cycle.
 *
 * Fail-over (DESIGN.md §11.4): when fault detection masks EIR ports,
 * unmasked shortest-path EIRs keep the legacy policy; once every
 * shortest-path EIR is masked, dispatch rotates round-robin over all
 * surviving EIRs — the equivalence property doing real work: any
 * surviving EIR is still a valid injection point, at the cost of a
 * non-minimal first hop. With every EIR masked, traffic degrades to
 * the local port.
 */
class EquiNoxNi : public NetworkInterface
{
  public:
    using NetworkInterface::NetworkInterface;

  protected:
    int selectBuffer(const PacketPtr &pkt) override;

  private:
    int rr_ = 0;
    /** Separate rotation cursor for degraded-mode fail-over so the
     *  un-masked policy's rr_ sequence stays bit-identical. */
    int failRr_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_NETWORK_INTERFACE_HH
