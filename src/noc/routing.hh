/**
 * @file
 * Route-compute helpers: XY and minimal-adaptive candidate sets on a
 * 2D mesh. Deadlock freedom for the adaptive mode comes from the
 * escape VC discipline enforced by the router's VC allocator.
 */

#ifndef EQX_NOC_ROUTING_HH
#define EQX_NOC_ROUTING_HH

#include <vector>

#include "common/types.hh"
#include "noc/params.hh"

namespace eqx {

/** The XY (dimension-order) direction from @p here toward @p dest. */
Dir xyDirection(const Coord &here, const Coord &dest);

/**
 * All minimal (productive) directions from @p here toward @p dest:
 * one or two entries; empty when already at the destination.
 */
std::vector<Dir> minimalDirections(const Coord &here, const Coord &dest);

/** True if stepping in @p d from @p here reduces distance to @p dest. */
bool isMinimalStep(const Coord &here, const Coord &dest, Dir d);

} // namespace eqx

#endif // EQX_NOC_ROUTING_HH
