/**
 * @file
 * Route-compute helpers: XY and minimal-adaptive candidate sets on a
 * 2D mesh. Deadlock freedom for the adaptive mode comes from the
 * escape VC discipline enforced by the router's VC allocator.
 * Wrap-aware (torus) candidate sets live on the Topology layer
 * (noc/topology.hh), which returns the same fixed-capacity
 * RouteCandidates type.
 */

#ifndef EQX_NOC_ROUTING_HH
#define EQX_NOC_ROUTING_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace eqx {

/**
 * Fixed-capacity minimal-route candidate set: at most one productive
 * direction per dimension, so capacity two covers every 2D topology.
 * Replaces the std::vector<Dir> return that allocated on the RC hot
 * path (see bench/micro_kernels BM_MinimalDirections*).
 */
struct RouteCandidates
{
    std::array<Dir, 2> dir{};
    std::uint8_t count = 0;

    void
    push_back(Dir d)
    {
        dir[count++] = d;
    }
    int size() const { return count; }
    bool empty() const { return count == 0; }
    Dir operator[](int i) const
    {
        return dir[static_cast<std::size_t>(i)];
    }
    const Dir *begin() const { return dir.data(); }
    const Dir *end() const { return dir.data() + count; }
};

/** The XY (dimension-order) direction from @p here toward @p dest. */
Dir xyDirection(const Coord &here, const Coord &dest);

/**
 * All minimal (productive) directions from @p here toward @p dest:
 * one or two entries; empty when already at the destination.
 */
RouteCandidates minimalDirections(const Coord &here, const Coord &dest);

/** True if stepping in @p d from @p here reduces distance to @p dest. */
bool isMinimalStep(const Coord &here, const Coord &dest, Dir d);

} // namespace eqx

#endif // EQX_NOC_ROUTING_HH
