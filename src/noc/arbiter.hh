/**
 * @file
 * Round-robin arbiter used by the separable input-first VC and switch
 * allocators (paper Table 1: "Separable input first").
 */

#ifndef EQX_NOC_ARBITER_HH
#define EQX_NOC_ARBITER_HH

#include <vector>

namespace eqx {

/**
 * Classic rotating-priority arbiter over a fixed number of requesters.
 * grant() scans from the slot after the last winner.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int num_inputs = 0)
        : numInputs_(num_inputs)
    {}

    void
    resize(int num_inputs)
    {
        numInputs_ = num_inputs;
        if (last_ >= num_inputs)
            last_ = 0;
    }

    /**
     * Pick one asserted requester, rotating priority. @return the
     * granted index, or -1 if no requests.
     */
    int
    grant(const std::vector<bool> &requests)
    {
        if (numInputs_ == 0)
            return -1;
        for (int i = 1; i <= numInputs_; ++i) {
            int idx = (last_ + i) % numInputs_;
            if (idx < static_cast<int>(requests.size()) && requests[idx]) {
                last_ = idx;
                return idx;
            }
        }
        return -1;
    }

    /**
     * Allocation-free variant: @p requesters lists the asserted input
     * indices (any order). Picks the one closest after the previous
     * winner in rotation. @return the granted index, or -1.
     */
    int
    grantList(const std::vector<int> &requesters)
    {
        if (numInputs_ == 0 || requesters.empty())
            return -1;
        int best = -1;
        int best_dist = numInputs_ + 1;
        for (int idx : requesters) {
            int dist = (idx - last_ - 1 + numInputs_) % numInputs_;
            if (dist < best_dist) {
                best_dist = dist;
                best = idx;
            }
        }
        if (best >= 0)
            last_ = best;
        return best;
    }

    int numInputs() const { return numInputs_; }

  private:
    int numInputs_ = 0;
    int last_ = 0;
};

} // namespace eqx

#endif // EQX_NOC_ARBITER_HH
