/**
 * @file
 * Round-robin arbiter used by the separable input-first VC and switch
 * allocators (paper Table 1: "Separable input first").
 */

#ifndef EQX_NOC_ARBITER_HH
#define EQX_NOC_ARBITER_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace eqx {

/**
 * Classic rotating-priority arbiter over a fixed number of requesters.
 * grant() scans from the slot after the last winner.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(int num_inputs = 0)
        : numInputs_(num_inputs)
    {}

    void
    resize(int num_inputs)
    {
        numInputs_ = num_inputs;
        if (last_ >= num_inputs)
            last_ = 0;
    }

    /**
     * Pick one asserted requester, rotating priority. @return the
     * granted index, or -1 if no requests.
     */
    int
    grant(const std::vector<bool> &requests)
    {
        if (numInputs_ == 0)
            return -1;
        for (int i = 1; i <= numInputs_; ++i) {
            int idx = (last_ + i) % numInputs_;
            if (idx < static_cast<int>(requests.size()) && requests[idx]) {
                last_ = idx;
                return idx;
            }
        }
        return -1;
    }

    /**
     * Allocation-free variant: @p requesters lists the asserted input
     * indices (any order). Picks the one closest after the previous
     * winner in rotation. @return the granted index, or -1.
     */
    int
    grantList(const std::vector<int> &requesters)
    {
        if (numInputs_ == 0 || requesters.empty())
            return -1;
        int best = -1;
        int best_dist = numInputs_ + 1;
        for (int idx : requesters) {
            // idx and last_ are both in [0, n), so the rotation
            // distance needs one conditional wrap, not a division.
            int dist = idx - last_ - 1;
            if (dist < 0)
                dist += numInputs_;
            if (dist < best_dist) {
                best_dist = dist;
                best = idx;
            }
        }
        if (best >= 0)
            last_ = best;
        return best;
    }

    /**
     * Bitmask variant for arbiters with at most 64 requesters: bit i of
     * @p requesters asserts input i. Picks the lowest asserted index
     * strictly after the previous winner, wrapping — exactly the
     * minimum-rotation-distance choice of grantList, in two bit scans.
     * @return the granted index, or -1 if the mask is empty.
     */
    int
    grantMask(std::uint64_t requesters)
    {
        if (numInputs_ == 0 || requesters == 0)
            return -1;
        std::uint64_t after =
            last_ + 1 >= 64 ? 0 : requesters >> (last_ + 1);
        int winner = after ? last_ + 1 + std::countr_zero(after)
                           : std::countr_zero(requesters);
        last_ = winner;
        return winner;
    }

    int numInputs() const { return numInputs_; }

  private:
    int numInputs_ = 0;
    int last_ = 0;
};

/**
 * Stateless round-robin grant over a requester bitmask with the
 * rotation cursor held externally (the router keeps one byte per
 * arbiter in its struct-of-arrays state instead of an arbiter object
 * per port). Same choice and cursor evolution as grantMask(): lowest
 * asserted index strictly after @p last, wrapping. @p requesters must
 * be non-zero.
 */
inline int
rrGrant(std::uint64_t requesters, std::uint8_t &last)
{
    std::uint64_t after = last + 1 >= 64 ? 0 : requesters >> (last + 1);
    int winner = after ? last + 1 + std::countr_zero(after)
                       : std::countr_zero(requesters);
    last = static_cast<std::uint8_t>(winner);
    return winner;
}

} // namespace eqx

#endif // EQX_NOC_ARBITER_HH
