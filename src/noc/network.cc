#include "noc/network.hh"

#include "common/logging.hh"

namespace eqx {

Network::Network(const NetworkSpec &spec)
    : params_(spec.params), topo_(spec.params.width, spec.params.height)
{
    eqx_assert(params_.width >= 2 && params_.height >= 2,
               "mesh must be at least 2x2");
    eqx_assert(params_.vcsPerPort >= 1, "need at least one VC");
    if (params_.classVcs)
        eqx_assert(params_.vcsPerPort >= 2,
                   "class-segregated VCs need >= 2 VCs");

    int n = topo_.numNodes();
    routers_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        routers_.push_back(
            std::make_unique<Router>(i, &topo_, &params_, &activity_));

    auto newFlitChan = [&](int latency) {
        flitChans_.push_back(std::make_unique<Channel<Flit>>(latency));
        return flitChans_.back().get();
    };
    auto newCreditChan = [&](int latency) {
        creditChans_.push_back(std::make_unique<Channel<Credit>>(latency));
        return creditChans_.back().get();
    };

    // Mesh links: for every directed neighbour pair A -> B, a flit
    // channel (A out -> B in) plus the reverse credit channel.
    int lat = params_.channelLatencyCycles;
    for (NodeId a = 0; a < n; ++a) {
        Coord ca = topo_.coord(a);
        for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
            Coord step = dirStep(d);
            Coord cb{ca.x + step.x, ca.y + step.y};
            if (!topo_.inBounds(cb))
                continue;
            NodeId b = topo_.node(cb);
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(b).addInputPort(PortKind::Geo,
                                                   opposite(d), cc);
            int out_idx = routerRef(a).addOutputPort(
                PortKind::Geo, d, fc, params_.vcDepthFlits,
                params_.geoLinksInterposer);
            routerFlitWires_.push_back({fc, b, in_idx});
            routerCreditWires_.push_back({cc, a, out_idx});
        }
    }

    // NIs.
    nis_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
        NodeMods mods;
        auto mit = spec.mods.find(i);
        if (mit != spec.mods.end())
            mods = mit->second;
        bool is_eir_cb = spec.eirGroups.count(i) > 0;
        if (is_eir_cb)
            mods.kind = NiKind::EquiNox;

        std::unique_ptr<NetworkInterface> ni;
        switch (mods.kind) {
          case NiKind::Basic:
            ni = std::make_unique<BasicNi>(i, &topo_, &params_,
                                           &activity_, &latency_);
            break;
          case NiKind::MultiPort:
            ni = std::make_unique<MultiPortNi>(i, &topo_, &params_,
                                               &activity_, &latency_);
            break;
          case NiKind::EquiNox:
            ni = std::make_unique<EquiNoxNi>(i, &topo_, &params_,
                                             &activity_, &latency_);
            break;
        }

        // Local injection port(s).
        for (int p = 0; p < mods.localInjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int in_idx = routerRef(i).addInputPort(PortKind::LocalInj,
                                                   Dir::Local, cc);
            int buf = ni->addInjBuffer(1, fc, i, /*interposer=*/false);
            routerFlitWires_.push_back({fc, i, in_idx});
            niCreditWires_.push_back({cc, i, buf});
        }

        // Ejection port(s).
        for (int p = 0; p < mods.localEjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int ej = ni->addEjPort(cc);
            int out_idx = routerRef(i).addOutputPort(
                PortKind::LocalEj, Dir::Local, fc, params_.vcDepthFlits);
            niFlitWires_.push_back({fc, i, ej});
            routerCreditWires_.push_back({cc, i, out_idx});
        }

        nis_.push_back(std::move(ni));
    }

    // EIR interposer links: CB NI buffer -> remote router extra port.
    // Spans within the 1-cycle interposer reach (2 hops) traverse in a
    // single cycle; longer links would need repeaters and take a cycle
    // per reach-length segment.
    for (const auto &[cb, eirs] : spec.eirGroups) {
        eqx_assert(cb >= 0 && cb < n, "EIR group CB out of range");
        for (NodeId e : eirs) {
            eqx_assert(e >= 0 && e < n, "EIR node out of range");
            eqx_assert(e != cb, "a CB cannot be its own EIR");
            int span = manhattan(topo_.coord(cb), topo_.coord(e));
            int lat = (span + 1) / 2;
            if (lat < 1)
                lat = 1;
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(e).addInputPort(PortKind::RemoteInj,
                                                   Dir::Local, cc);
            int buf = nis_[static_cast<std::size_t>(cb)]->addInjBuffer(
                1, fc, e, /*interposer=*/true);
            routerFlitWires_.push_back({fc, e, in_idx});
            niCreditWires_.push_back({cc, cb, buf});
            ++remoteInjPorts_;
        }
    }
}

void
Network::coreTick(Cycle core_cycle)
{
    coreCycle_ = core_cycle;
    int ticks = (core_cycle % 2 == 0) ? params_.ticksEvenCycle
                                      : params_.ticksOddCycle;
    for (int i = 0; i < ticks; ++i)
        internalTick();
}

void
Network::internalTick()
{
    ++tick_;
    deliver();
    for (auto &r : routers_)
        r->switchAllocStage(tick_);
    for (auto &r : routers_)
        r->vcAllocStage(tick_);
    for (auto &r : routers_)
        r->routeComputeStage(tick_);
    for (auto &ni : nis_)
        ni->tick(tick_, coreCycle_);
}

void
Network::deliver()
{
    Flit f;
    for (auto &w : routerFlitWires_)
        while (w.chan->receive(tick_, f))
            routers_[static_cast<std::size_t>(w.router)]->acceptFlit(
                w.port, std::move(f), tick_);
    for (auto &w : niFlitWires_)
        while (w.chan->receive(tick_, f))
            nis_[static_cast<std::size_t>(w.ni)]->acceptEjectedFlit(
                w.ejPort, std::move(f));
    Credit c;
    for (auto &w : routerCreditWires_)
        while (w.chan->receive(tick_, c))
            routers_[static_cast<std::size_t>(w.router)]->creditArrived(
                w.port, c.vc);
    for (auto &w : niCreditWires_)
        while (w.chan->receive(tick_, c))
            nis_[static_cast<std::size_t>(w.ni)]->creditArrived(w.buf,
                                                                c.vc);
}

bool
Network::inject(NodeId node, const PacketPtr &pkt)
{
    eqx_assert(node >= 0 && node < topo_.numNodes(), "inject: bad node");
    return nis_[static_cast<std::size_t>(node)]->inject(pkt, tick_);
}

bool
Network::canInject(NodeId node) const
{
    return nis_[static_cast<std::size_t>(node)]->canInject();
}

void
Network::setSink(NodeId node, PacketSink *sink)
{
    nis_[static_cast<std::size_t>(node)]->setSink(sink);
}

std::vector<double>
Network::routerResidenceMeans() const
{
    std::vector<double> means;
    means.reserve(routers_.size());
    for (const auto &r : routers_)
        means.push_back(r->residenceStat().mean());
    return means;
}

double
Network::residenceVariance() const
{
    RunningStat rs;
    for (double m : routerResidenceMeans())
        rs.add(m);
    return rs.variance();
}

bool
Network::drained() const
{
    for (const auto &r : routers_)
        if (r->hasBufferedFlits())
            return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    for (const auto &c : flitChans_)
        if (!c->empty())
            return false;
    return true;
}

} // namespace eqx
