#include "noc/network.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace eqx {

Network::Network(const NetworkSpec &spec)
    : params_(spec.params),
      topo_(makeTopology(spec.params.width, spec.params.height,
                         spec.params.topo))
{
    eqx_assert(params_.width >= 2 && params_.height >= 2,
               "mesh must be at least 2x2");
    eqx_assert(params_.vcsPerPort >= 1, "need at least one VC");
    if (params_.classVcs)
        eqx_assert(params_.vcsPerPort >= 2,
                   "class-segregated VCs need >= 2 VCs");
    if (params_.coherenceVcs > 0) {
        eqx_assert(params_.classVcs,
                   "coherence VCs require class-segregated VC mode");
        eqx_assert(params_.vcsPerPort >= params_.coherenceVcs + 2,
                   "coherence VCs need vcsPerPort >= coherenceVcs + 2");
    }
    if (topo_->wraps()) {
        // The dateline discipline (DESIGN.md §17) stores its ring
        // class in the per-VC class slot, so it composes with neither
        // class-segregated VCs nor VC monopolization.
        eqx_assert(!params_.classVcs && !params_.vcMono,
                   "wrap topologies exclude classVcs/vcMono");
        eqx_assert(topo_->routerCols() >= 3 && topo_->routerRows() >= 3,
                   "torus rings need >= 3 routers per side");
        int need = params_.routing == RoutingMode::XY ? 2 : 3;
        eqx_assert(params_.vcsPerPort >= need,
                   "torus dateline VCs need vcsPerPort >= ", need,
                   " for this routing mode");
    }
    if (topo_->concentrated())
        eqx_assert(topo_->routerCols() >= 2 && topo_->routerRows() >= 2,
                   "cmesh router grid must be at least 2x2");

    int n = topo_->numNodes();
    int nr = topo_->numRouters();
    routers_.reserve(static_cast<std::size_t>(nr));
    for (NodeId i = 0; i < nr; ++i)
        routers_.emplace_back(i, topo_.get(), &params_, &activity_);

    int max_chan_lat = 1;
    auto newFlitChan = [&](int latency) {
        max_chan_lat = std::max(max_chan_lat, latency);
        flitChans_.emplace_back(latency);
        return &flitChans_.back();
    };
    auto newCreditChan = [&](int latency) {
        max_chan_lat = std::max(max_chan_lat, latency);
        creditChans_.emplace_back(latency);
        return &creditChans_.back();
    };

    // Geo links: for every directed neighbour pair A -> B the topology
    // wires (mesh/cmesh grid edges, torus rings), a flit channel
    // (A out -> B in) plus the reverse credit channel. Routers ascend
    // and directions keep their fixed order, so mesh wiring is
    // byte-identical to the pre-topology builder.
    int lat = params_.channelLatencyCycles;
    for (NodeId a = 0; a < nr; ++a) {
        for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
            int b = topo_->neighbor(a, d);
            if (b < 0)
                continue;
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(b).addInputPort(PortKind::Geo,
                                                   opposite(d), cc);
            int out_idx = routerRef(a).addOutputPort(
                PortKind::Geo, d, fc, params_.vcDepthFlits,
                params_.geoLinksInterposer);
            routerFlitWires_.push_back({fc, b, in_idx});
            routerCreditWires_.push_back({cc, a, out_idx});
        }
    }

    // NIs: one per endpoint tile, wired to the tile's router (the
    // tile itself except under concentration). Tiles ascend, so a
    // concentrated router collects its block's ejection ports in
    // ascending tile-id order — exactly Topology::tileSlot order, the
    // invariant the router's slot-indexed ejection relies on.
    nis_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
        NodeMods mods;
        auto mit = spec.mods.find(i);
        if (mit != spec.mods.end())
            mods = mit->second;
        bool is_eir_cb = spec.eirGroups.count(i) > 0;
        if (is_eir_cb)
            mods.kind = NiKind::EquiNox;

        std::unique_ptr<NetworkInterface> ni;
        switch (mods.kind) {
          case NiKind::Basic:
            ni = std::make_unique<BasicNi>(i, topo_.get(), &params_,
                                           &activity_, &latency_);
            break;
          case NiKind::MultiPort:
            ni = std::make_unique<MultiPortNi>(i, topo_.get(), &params_,
                                               &activity_, &latency_);
            break;
          case NiKind::EquiNox:
            ni = std::make_unique<EquiNoxNi>(i, topo_.get(), &params_,
                                             &activity_, &latency_);
            break;
        }

        NodeId r = topo_->routerOf(i);

        // Local injection port(s).
        for (int p = 0; p < mods.localInjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int in_idx = routerRef(r).addInputPort(PortKind::LocalInj,
                                                   Dir::Local, cc);
            int buf = ni->addInjBuffer(1, fc, r, /*interposer=*/false);
            auto wi = static_cast<std::uint32_t>(routerFlitWires_.size());
            routerFlitWires_.push_back({fc, r, in_idx});
            niCreditWires_.push_back({cc, i, buf});
            injWires_.push_back({wi, i, buf, r, /*interposer=*/false,
                                 /*spanHops=*/0, /*creditLatency=*/1});
        }

        // Ejection port(s).
        for (int p = 0; p < mods.localEjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int ej = ni->addEjPort(cc);
            int out_idx = routerRef(r).addOutputPort(
                PortKind::LocalEj, Dir::Local, fc, params_.vcDepthFlits);
            niFlitWires_.push_back({fc, i, ej});
            routerCreditWires_.push_back({cc, r, out_idx});
        }

        nis_.push_back(std::move(ni));
    }

    // EIR interposer links: CB NI buffer -> remote router extra port.
    // Spans within the 1-cycle interposer reach (2 hops) traverse in a
    // single cycle; longer links would need repeaters and take a cycle
    // per reach-length segment.
    for (const auto &[cb, eirs] : spec.eirGroups) {
        eqx_assert(cb >= 0 && cb < n, "EIR group CB out of range");
        for (NodeId e : eirs) {
            eqx_assert(e >= 0 && e < n, "EIR node out of range");
            eqx_assert(e != cb, "a CB cannot be its own EIR");
            NodeId er = topo_->routerOf(e);
            int span = topo_->distance(topo_->coord(cb),
                                       topo_->coord(e));
            int lat = (span + 1) / 2;
            if (lat < 1)
                lat = 1;
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(er).addInputPort(PortKind::RemoteInj,
                                                    Dir::Local, cc);
            int buf = nis_[static_cast<std::size_t>(cb)]->addInjBuffer(
                1, fc, er, /*interposer=*/true);
            auto wi = static_cast<std::uint32_t>(routerFlitWires_.size());
            routerFlitWires_.push_back({fc, er, in_idx});
            niCreditWires_.push_back({cc, cb, buf});
            injWires_.push_back({wi, cb, buf, er, /*interposer=*/true,
                                 span, static_cast<Cycle>(lat)});
            ++remoteInjPorts_;
        }
    }

    // ---- Activity-driven scheduling state (DESIGN.md §10) ----
    activeRouters_.assign((static_cast<std::size_t>(nr) + 63) / 64, 0);
    activeNis_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
    // Power-of-two wheel so slot lookup is a mask, and so channels can
    // append payloads directly in pass-through mode (setWheel).
    std::size_t wheel_slots = std::bit_ceil(
        static_cast<std::size_t>(max_chan_lat) + 1);
    pendingWheel_.assign(wheel_slots, {});
    wheelMask_ = static_cast<std::uint32_t>(wheel_slots - 1);

    if (!params_.exhaustiveTick)
        attachChannels(/*passthrough=*/true);
}

void
Network::attachChannels(bool passthrough)
{
    // Tag every channel with its wire id and attach the pending
    // wheel. Wire ids flatten the four wire vectors in order;
    // exhaustive networks skip this and keep scanning.
    std::uint32_t tag = 0;
    auto attach = [&](auto *chan) {
        if (passthrough)
            chan->setWheel(pendingWheel_.data(), wheelMask_, tag++);
        else
            chan->setScheduler(this, tag++);
    };
    for (auto &w : routerFlitWires_)
        attach(w.chan);
    niFlitBase_ = tag;
    for (auto &w : niFlitWires_)
        attach(w.chan);
    routerCreditBase_ = tag;
    for (auto &w : routerCreditWires_)
        attach(w.chan);
    niCreditBase_ = tag;
    for (auto &w : niCreditWires_)
        attach(w.chan);
    // Pass-through networks also let routers push sends straight into
    // the wheel slots, skipping the channel objects on the hot path.
    for (auto &r : routers_)
        r.setDirectWheel(passthrough ? pendingWheel_.data() : nullptr,
                         wheelMask_);
}

void
Network::armFaults(const FaultConfig &cfg, const std::string &name,
                   std::uint64_t seed)
{
    eqx_assert(!plane_, "armFaults: faults already armed");
    eqx_assert(tick_ == 0, "armFaults: network already ticked");
    if (!cfg.enabled())
        return;
    plane_ = std::make_unique<FaultPlane>(
        cfg, name, static_cast<FaultPlaneHost *>(this));
    wireFault_.assign(routerFlitWires_.size(), -1);
    for (const auto &iw : injWires_) {
        int id = plane_->addWire(iw.ni, iw.buf, iw.router,
                                 iw.interposer, iw.spanHops,
                                 iw.creditLatency);
        wireFault_[iw.wire] = id;
    }
    plane_->finalize(seed);
    for (auto &ni : nis_)
        ni->attachFaultPlane(plane_.get());
    // Fault semantics (wire stalls, checksum drops) act on flits held
    // *inside* channels, so an armed network leaves pass-through mode.
    if (!params_.exhaustiveTick)
        attachChannels(/*passthrough=*/false);
}

void
Network::faultDeliverAck(NodeId ni, NodeId peer, std::uint32_t seq)
{
    nis_[static_cast<std::size_t>(ni)]->ackArrived(peer, seq);
}

void
Network::faultReturnCredit(NodeId ni, int buf, int vc)
{
    nis_[static_cast<std::size_t>(ni)]->creditArrived(buf, vc);
}

void
Network::faultMaskBuffer(NodeId ni, int buf)
{
    nis_[static_cast<std::size_t>(ni)]->maskBuffer(buf);
}

int
Network::maskedInjBuffers() const
{
    int total = 0;
    for (const auto &ni : nis_)
        total += ni->maskedBuffers();
    return total;
}

void
Network::coreTick(Cycle core_cycle)
{
    coreCycle_ = core_cycle;
    int ticks = (core_cycle % 2 == 0) ? params_.ticksEvenCycle
                                      : params_.ticksOddCycle;
    for (int i = 0; i < ticks; ++i)
        internalTick();
}

Cycle
Network::nextDueCycle(Cycle core_now) const
{
    eqx_assert(core_now == coreCycle_,
               "nextDueCycle: network at core cycle ", coreCycle_,
               " queried at ", core_now);
    // Exhaustive and fault-armed networks tick unconditionally: the
    // exhaustive loop is the bit-identity oracle and the fault plane
    // runs timers (stall windows, retransmission) every internal tick.
    if (params_.exhaustiveTick || plane_)
        return core_now + 1;
    int te = params_.ticksEvenCycle, to = params_.ticksOddCycle;
    if (te + to == 0)
        return kNeverCycle; // clockless network never ticks
    for (std::uint64_t w : activeRouters_)
        if (w != 0)
            return core_now + 1;
    for (std::uint64_t w : activeNis_)
        if (w != 0)
            return core_now + 1;
    // Idle sets: the only future work is in-flight channel arrivals
    // sitting in the pass-through wheel. Every buffered event is due
    // within one wheel revolution of the current tick.
    Cycle due_tick = kNeverCycle;
    for (std::size_t s = 0; s < pendingWheel_.size(); ++s) {
        if (pendingWheel_[s].empty())
            continue;
        Cycle d = tick_ +
                  ((static_cast<Cycle>(s) - tick_ - 1) & wheelMask_) + 1;
        due_tick = std::min(due_tick, d);
    }
    if (due_tick == kNeverCycle)
        return kNeverCycle;
    // Internal tick -> core cycle: walk the even/odd tick schedule
    // until the cumulative tick count reaches the due tick. Bounded by
    // one wheel revolution of ticks.
    Cycle c = core_now, t = tick_;
    while (t < due_tick)
        t += (++c % 2 == 0) ? static_cast<Cycle>(te)
                            : static_cast<Cycle>(to);
    return c;
}

void
Network::skipTo(Cycle core_target)
{
    eqx_assert(core_target >= coreCycle_, "skipTo going backwards");
    eqx_assert(!params_.exhaustiveTick && !plane_,
               "skipTo on an unconditionally-ticking network");
    eqx_assert(nextDueCycle(coreCycle_) > core_target,
               "skipTo over live work");
    // Even/odd core cycles in (coreCycle_, core_target].
    Cycle evens = core_target / 2 - coreCycle_ / 2;
    Cycle odds = (core_target - coreCycle_) - evens;
    tick_ += evens * static_cast<Cycle>(params_.ticksEvenCycle) +
             odds * static_cast<Cycle>(params_.ticksOddCycle);
    coreCycle_ = core_target;
}

namespace {

/**
 * Visit set bits of a word array in ascending index order, re-reading
 * each word live so bits set *during* the walk (e.g. an NI activated
 * by a synchronous sink injection) at positions not yet passed are
 * visited this tick — exactly what the exhaustive loop would do.
 * Bits set at already-passed positions stay set and run next tick.
 */
template <typename F>
inline void
forEachSetBitLive(std::vector<std::uint64_t> &words, F &&f)
{
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t processed = 0;
        for (;;) {
            std::uint64_t pending = words[w] & ~processed;
            if (!pending)
                break;
            int b = std::countr_zero(pending);
            processed |= std::uint64_t{1} << b;
            f((w << 6) + static_cast<std::size_t>(b));
        }
    }
}

} // namespace

void
Network::internalTick()
{
    if (params_.exhaustiveTick) {
        internalTickExhaustive();
        return;
    }
    ++tick_;
    if (plane_)
        plane_->tick(tick_);
    deliver();
    // One walk runs all three stages per router (SA, VA, RC — so a
    // stage's result is consumed one tick later). The exhaustive loop
    // makes three whole-network passes instead, but stages of distinct
    // routers cannot interact within a tick — every cross-router
    // effect rides a channel with latency >= 1 and lands in a later
    // deliver() — so the merged walk is outcome-identical while
    // touching each router's state once. The router active set cannot
    // grow during the walk (flits only arrive in deliver()), and a
    // router that drained deregisters inline: no buffered flits means
    // SA/VA/RC are provably no-ops until the next acceptFlit.
    forEachSetBitLive(activeRouters_, [&](std::size_t i) {
        auto &r = routers_[i];
        r.switchAllocStage(tick_);
        r.vcAllocStage(tick_);
        r.routeComputeStage(tick_);
        if (!r.hasBufferedFlits())
            activeRouters_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    });
    // NI pass with inline deregistration: an idle NI (nothing queued,
    // mid-serialization, delivered or awaiting reassembly) is a no-op
    // until inject()/acceptEjectedFlit() re-activates it.
    for (std::size_t w = 0; w < activeNis_.size(); ++w) {
        std::uint64_t processed = 0;
        for (;;) {
            std::uint64_t pending = activeNis_[w] & ~processed;
            if (!pending)
                break;
            int b = std::countr_zero(pending);
            std::uint64_t bit = std::uint64_t{1} << b;
            processed |= bit;
            auto &ni = nis_[(w << 6) + static_cast<std::size_t>(b)];
            ni->tick(tick_, coreCycle_);
            if (ni->idle())
                activeNis_[w] &= ~bit;
        }
    }
}

void
Network::internalTickExhaustive()
{
    ++tick_;
    if (plane_)
        plane_->tick(tick_);
    deliverExhaustive();
    for (auto &r : routers_)
        r.switchAllocStage(tick_);
    for (auto &r : routers_)
        r.vcAllocStage(tick_);
    for (auto &r : routers_)
        r.routeComputeStage(tick_);
    for (auto &ni : nis_)
        ni->tick(tick_, coreCycle_);
}

void
Network::channelDue(std::uint32_t tag, Cycle due)
{
    // One send per (channel, tick) — enforced by Channel::send — means
    // one event per (channel, tick): slots never hold duplicates.
    pendingWheel_[due & wheelMask_].wires.push_back(tag);
}

void
Network::deliverWire(std::uint32_t wire)
{
    if (wire < niFlitBase_) {
        auto &w = routerFlitWires_[wire];
        int fw = plane_ ? wireFault_[wire] : -1;
        if (fw >= 0) {
            if (plane_->wireStalled(fw, tick_)) {
                // Withheld: repost so the arrival is retried next tick
                // (flits keep accumulating in the channel meanwhile).
                // Reposts can momentarily duplicate a wire in a wheel
                // slot; the second visit's receive loop just finds the
                // channel drained.
                channelDue(wire, tick_ + 1);
                return;
            }
            Flit f;
            while (w.chan->receive(tick_, f)) {
                plane_->touchFlit(fw, f);
                if (f.fcs != flitFcs(f)) {
                    plane_->onChecksumDrop(fw, f, tick_);
                    continue;
                }
                routers_[static_cast<std::size_t>(w.router)].acceptFlit(
                    w.port, std::move(f), tick_);
            }
            markRouterActive(w.router);
            return;
        }
        Flit f;
        while (w.chan->receive(tick_, f))
            routers_[static_cast<std::size_t>(w.router)].acceptFlit(
                w.port, std::move(f), tick_);
        markRouterActive(w.router);
    } else if (wire < routerCreditBase_) {
        auto &w = niFlitWires_[wire - niFlitBase_];
        Flit f;
        while (w.chan->receive(tick_, f))
            nis_[static_cast<std::size_t>(w.ni)]->acceptEjectedFlit(
                w.ejPort, std::move(f));
        markNiActive(w.ni);
    } else if (wire < niCreditBase_) {
        auto &w = routerCreditWires_[wire - routerCreditBase_];
        Credit c;
        while (w.chan->receive(tick_, c))
            routers_[static_cast<std::size_t>(w.router)].creditArrived(
                w.port, c.vc);
        // Credits alone create no router work: no activation.
    } else {
        auto &w = niCreditWires_[wire - niCreditBase_];
        Credit c;
        while (w.chan->receive(tick_, c))
            nis_[static_cast<std::size_t>(w.ni)]->creditArrived(w.buf,
                                                                c.vc);
        // A credit-stalled NI is non-idle and already active.
    }
}

void
Network::deliver()
{
    auto &slot = pendingWheel_[tick_ & wheelMask_];
    for (std::uint32_t wire : slot.wires)
        deliverWire(wire);
    slot.wires.clear();
    // Pass-through payloads: dispatch directly, no channel access.
    // Flits first, then credits — credits only increment counters, and
    // every delivery lands before the stage passes, so the relative
    // order is unobservable. Arrival order scatters targets across the
    // arena, so each iteration prefetches the next event's router to
    // overlap the dependent-load latency.
    for (std::size_t k = 0; k < slot.flits.size(); ++k) {
        if (k + 1 < slot.flits.size()) {
            const auto &nx = slot.flits[k + 1];
            if (nx.wire < niFlitBase_)
                __builtin_prefetch(
                    &routers_[static_cast<std::size_t>(
                        routerFlitWires_[nx.wire].router)]);
        }
        auto &ev = slot.flits[k];
        if (ev.wire < niFlitBase_) {
            const auto &w = routerFlitWires_[ev.wire];
            routers_[static_cast<std::size_t>(w.router)].acceptFlit(
                w.port, std::move(ev.f), tick_);
            markRouterActive(w.router);
        } else {
            const auto &w = niFlitWires_[ev.wire - niFlitBase_];
            nis_[static_cast<std::size_t>(w.ni)]->acceptEjectedFlit(
                w.ejPort, std::move(ev.f));
            markNiActive(w.ni);
        }
    }
    slot.flits.clear();
    for (std::size_t k = 0; k < slot.credits.size(); ++k) {
        if (k + 1 < slot.credits.size()) {
            const auto &nx = slot.credits[k + 1];
            if (nx.wire < niCreditBase_)
                __builtin_prefetch(
                    &routers_[static_cast<std::size_t>(
                        routerCreditWires_[nx.wire - routerCreditBase_]
                            .router)]);
        }
        const auto &ev = slot.credits[k];
        if (ev.wire < niCreditBase_) {
            const auto &w =
                routerCreditWires_[ev.wire - routerCreditBase_];
            routers_[static_cast<std::size_t>(w.router)].creditArrived(
                w.port, ev.c.vc);
        } else {
            const auto &w = niCreditWires_[ev.wire - niCreditBase_];
            nis_[static_cast<std::size_t>(w.ni)]->creditArrived(w.buf,
                                                                ev.c.vc);
        }
    }
    slot.credits.clear();
}

void
Network::deliverExhaustive()
{
    Flit f;
    for (std::size_t i = 0; i < routerFlitWires_.size(); ++i) {
        auto &w = routerFlitWires_[i];
        int fw = plane_ ? wireFault_[i] : -1;
        if (fw >= 0) {
            if (plane_->wireStalled(fw, tick_))
                continue; // the exhaustive scan retries every tick
            while (w.chan->receive(tick_, f)) {
                plane_->touchFlit(fw, f);
                if (f.fcs != flitFcs(f)) {
                    plane_->onChecksumDrop(fw, f, tick_);
                    continue;
                }
                routers_[static_cast<std::size_t>(w.router)].acceptFlit(
                    w.port, std::move(f), tick_);
            }
            continue;
        }
        while (w.chan->receive(tick_, f))
            routers_[static_cast<std::size_t>(w.router)].acceptFlit(
                w.port, std::move(f), tick_);
    }
    for (auto &w : niFlitWires_)
        while (w.chan->receive(tick_, f))
            nis_[static_cast<std::size_t>(w.ni)]->acceptEjectedFlit(
                w.ejPort, std::move(f));
    Credit c;
    for (auto &w : routerCreditWires_)
        while (w.chan->receive(tick_, c))
            routers_[static_cast<std::size_t>(w.router)].creditArrived(
                w.port, c.vc);
    for (auto &w : niCreditWires_)
        while (w.chan->receive(tick_, c))
            nis_[static_cast<std::size_t>(w.ni)]->creditArrived(w.buf,
                                                                c.vc);
}

bool
Network::inject(NodeId node, const PacketPtr &pkt)
{
    eqx_assert(node >= 0 && node < topo_->numNodes(), "inject: bad node");
    if (!nis_[static_cast<std::size_t>(node)]->inject(pkt, tick_))
        return false;
    markNiActive(node);
    return true;
}

bool
Network::canInject(NodeId node) const
{
    return nis_[static_cast<std::size_t>(node)]->canInject();
}

void
Network::setSink(NodeId node, PacketSink *sink)
{
    nis_[static_cast<std::size_t>(node)]->setSink(sink);
}

std::vector<double>
Network::routerResidenceMeans() const
{
    std::vector<double> means;
    means.reserve(routers_.size());
    for (const auto &r : routers_)
        means.push_back(r.residenceStat().mean());
    return means;
}

double
Network::residenceVariance() const
{
    RunningStat rs;
    for (double m : routerResidenceMeans())
        rs.add(m);
    return rs.variance();
}

void
Network::resetStats()
{
    activity_.reset();
    latency_.reset();
    for (auto &r : routers_)
        r.resetStats(tick_);
    for (auto &ni : nis_)
        ni->resetStats();
    if (plane_)
        plane_->resetStats();
}

namespace {

/** Append a stable, human-readable key segment for a router port. */
void
appendPortLabel(std::string &key, PortKind kind, Dir dir,
                int nth_of_kind)
{
    switch (kind) {
      case PortKind::Geo:
        key += dirName(dir);
        return;
      case PortKind::LocalInj:
        key += "inj";
        break;
      case PortKind::LocalEj:
        key += "ej";
        break;
      case PortKind::RemoteInj:
        key += "rinj";
        break;
      default:
        key += 'p';
        break;
    }
    key += std::to_string(nth_of_kind);
}

} // namespace

void
Network::exportStats(StatGroup &sg, const std::string &prefix) const
{
    // One reusable key buffer for the whole export: every metric key
    // is built by truncating back to a mark and appending, instead of
    // allocating prefix + "." + key strings per metric per router.
    std::string key;
    key.reserve(prefix.size() + 64);
    key = prefix;
    key += '.';
    const std::size_t root = key.size();
    auto emit = [&](double v) { sg.set(key, v); };
    auto setAt = [&](std::size_t mark, const char *suffix, double v) {
        key.resize(mark);
        key += suffix;
        emit(v);
    };

    // Aggregate activity and per-class latency (ticks).
    setAt(root, "act.buffer_writes",
          static_cast<double>(activity_.bufferWrites));
    setAt(root, "act.xbar", static_cast<double>(activity_.xbarTraversals));
    setAt(root, "act.link_flits", static_cast<double>(activity_.linkFlits));
    setAt(root, "act.interposer_flits",
          static_cast<double>(activity_.interposerLinkFlits));
    // Fault/recovery counters, present only on armed networks so the
    // un-faulted export schema is untouched.
    if (plane_) {
        const FaultStats &fs = plane_->stats();
        key.resize(root);
        key += "fault.";
        const std::size_t fk = key.size();
        setAt(fk, "seq_packets", static_cast<double>(fs.seqPackets));
        setAt(fk, "delivered", static_cast<double>(fs.delivered));
        setAt(fk, "duplicates", static_cast<double>(fs.duplicates));
        setAt(fk, "retx", static_cast<double>(fs.retransmissions));
        setAt(fk, "lost", static_cast<double>(fs.lost));
        setAt(fk, "acks", static_cast<double>(fs.acks));
        setAt(fk, "worms_dropped",
              static_cast<double>(fs.wormsDropped));
        setAt(fk, "flits_dropped",
              static_cast<double>(fs.flitsDropped));
        setAt(fk, "credits_reconciled",
              static_cast<double>(fs.creditsReconciled));
        setAt(fk, "stall_events", static_cast<double>(fs.stallEvents));
        setAt(fk, "corrupt_events",
              static_cast<double>(fs.corruptEvents));
        setAt(fk, "kill_events", static_cast<double>(fs.killEvents));
        setAt(fk, "mask_events", static_cast<double>(fs.maskEvents));
        setAt(fk, "masked_ports",
              static_cast<double>(maskedInjBuffers()));
    }

    static const char *cls_name[2] = {"req", "rep"};
    for (int c = 0; c < 2; ++c) {
        key.resize(root);
        key += "lat.";
        key += cls_name[c];
        key += '.';
        const std::size_t cls = key.size();
        setAt(cls, "packets", static_cast<double>(latency_.packets[c]));
        setAt(cls, "mean", latency_.totalLat[c].mean());
        setAt(cls, "p50", latency_.totalHist[c].percentile(0.50));
        setAt(cls, "p95", latency_.totalHist[c].percentile(0.95));
        setAt(cls, "p99", latency_.totalHist[c].percentile(0.99));
    }

    // Per-router counters, ports keyed by direction / kind.
    for (const Router &r : routers_) {
        key.resize(root);
        key += "router.";
        key += std::to_string(r.id());
        key += '.';
        const std::size_t rk = key.size();
        setAt(rk, "flits", static_cast<double>(r.flitsForwarded()));
        setAt(rk, "va_req", static_cast<double>(r.vaRequests(tick_)));
        setAt(rk, "va_grant", static_cast<double>(r.vaGrants()));
        setAt(rk, "sa_req", static_cast<double>(r.saRequests()));
        setAt(rk, "sa_grant", static_cast<double>(r.saGrants()));
        setAt(rk, "credit_stall",
              static_cast<double>(r.creditStallCycles()));
        setAt(rk, "occ_mean", r.occupancyMean(tick_));
        setAt(rk, "residence_mean", r.residenceStat().mean());
        int nth[4] = {0, 0, 0, 0};
        for (int p = 0; p < r.numInputPorts(); ++p) {
            const auto &ip = r.inputPort(p);
            int k = static_cast<int>(ip.kind);
            key.resize(rk);
            key += "in.";
            appendPortLabel(key, ip.kind, ip.dir, nth[k]++);
            key += ".flits";
            emit(static_cast<double>(ip.flitsAccepted));
        }
        nth[0] = nth[1] = nth[2] = nth[3] = 0;
        for (int p = 0; p < r.numOutputPorts(); ++p) {
            const auto &op = r.outputPort(p);
            int k = static_cast<int>(op.kind);
            key.resize(rk);
            key += "out.";
            appendPortLabel(key, op.kind, op.dir, nth[k]++);
            key += ".flits";
            emit(static_cast<double>(op.flitsSent));
        }
    }

    // Per-NI injection-buffer loads. Buffer 0 is always the local
    // router; EquiNox CB NIs additionally carry one buffer per EIR, so
    // these keys are the measured per-injection-point loads the MCTS
    // evaluator predicts.
    for (const auto &nip : nis_) {
        const NetworkInterface &ni = *nip;
        key.resize(root);
        key += "ni.";
        key += std::to_string(ni.node());
        key += ".buf";
        const std::size_t nk = key.size();
        for (int b = 0; b < ni.numInjBuffers(); ++b) {
            const auto &buf = ni.injBuffer(b);
            key.resize(nk);
            key += std::to_string(b);
            key += '.';
            const std::size_t bk = key.size();
            setAt(bk, "router", static_cast<double>(buf.targetRouter));
            setAt(bk, "packets",
                  static_cast<double>(buf.packetsInjected));
            setAt(bk, "flits", static_cast<double>(buf.flitsInjected));
            setAt(bk, "stall",
                  static_cast<double>(buf.creditStallTicks));
        }
    }
}

bool
Network::drained() const
{
    for (const auto &r : routers_)
        if (r.hasBufferedFlits())
            return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    for (const auto &c : flitChans_)
        if (!c.empty())
            return false;
    for (const auto &slot : pendingWheel_)
        if (!slot.flits.empty()) // pass-through in-flight flits
            return false;
    // A pending recovery event (ack, reconciliation credit, mask) is
    // as real as a buffered flit.
    if (plane_ && !plane_->quiescent())
        return false;
    return true;
}

bool
Network::activeSetsConsistent() const
{
    if (params_.exhaustiveTick)
        return true;
    for (std::size_t i = 0; i < routers_.size(); ++i) {
        bool active = (activeRouters_[i >> 6] >>
                       (i & 63)) & 1;
        if (routers_[i].hasBufferedFlits() && !active)
            return false;
    }
    for (std::size_t i = 0; i < nis_.size(); ++i) {
        bool active = (activeNis_[i >> 6] >> (i & 63)) & 1;
        if (!nis_[i]->idle() && !active)
            return false;
    }
    return true;
}

} // namespace eqx
