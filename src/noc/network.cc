#include "noc/network.hh"

#include "common/logging.hh"

namespace eqx {

Network::Network(const NetworkSpec &spec)
    : params_(spec.params), topo_(spec.params.width, spec.params.height)
{
    eqx_assert(params_.width >= 2 && params_.height >= 2,
               "mesh must be at least 2x2");
    eqx_assert(params_.vcsPerPort >= 1, "need at least one VC");
    if (params_.classVcs)
        eqx_assert(params_.vcsPerPort >= 2,
                   "class-segregated VCs need >= 2 VCs");

    int n = topo_.numNodes();
    routers_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i)
        routers_.push_back(
            std::make_unique<Router>(i, &topo_, &params_, &activity_));

    auto newFlitChan = [&](int latency) {
        flitChans_.push_back(std::make_unique<Channel<Flit>>(latency));
        return flitChans_.back().get();
    };
    auto newCreditChan = [&](int latency) {
        creditChans_.push_back(std::make_unique<Channel<Credit>>(latency));
        return creditChans_.back().get();
    };

    // Mesh links: for every directed neighbour pair A -> B, a flit
    // channel (A out -> B in) plus the reverse credit channel.
    int lat = params_.channelLatencyCycles;
    for (NodeId a = 0; a < n; ++a) {
        Coord ca = topo_.coord(a);
        for (Dir d : {Dir::North, Dir::East, Dir::South, Dir::West}) {
            Coord step = dirStep(d);
            Coord cb{ca.x + step.x, ca.y + step.y};
            if (!topo_.inBounds(cb))
                continue;
            NodeId b = topo_.node(cb);
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(b).addInputPort(PortKind::Geo,
                                                   opposite(d), cc);
            int out_idx = routerRef(a).addOutputPort(
                PortKind::Geo, d, fc, params_.vcDepthFlits,
                params_.geoLinksInterposer);
            routerFlitWires_.push_back({fc, b, in_idx});
            routerCreditWires_.push_back({cc, a, out_idx});
        }
    }

    // NIs.
    nis_.reserve(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
        NodeMods mods;
        auto mit = spec.mods.find(i);
        if (mit != spec.mods.end())
            mods = mit->second;
        bool is_eir_cb = spec.eirGroups.count(i) > 0;
        if (is_eir_cb)
            mods.kind = NiKind::EquiNox;

        std::unique_ptr<NetworkInterface> ni;
        switch (mods.kind) {
          case NiKind::Basic:
            ni = std::make_unique<BasicNi>(i, &topo_, &params_,
                                           &activity_, &latency_);
            break;
          case NiKind::MultiPort:
            ni = std::make_unique<MultiPortNi>(i, &topo_, &params_,
                                               &activity_, &latency_);
            break;
          case NiKind::EquiNox:
            ni = std::make_unique<EquiNoxNi>(i, &topo_, &params_,
                                             &activity_, &latency_);
            break;
        }

        // Local injection port(s).
        for (int p = 0; p < mods.localInjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int in_idx = routerRef(i).addInputPort(PortKind::LocalInj,
                                                   Dir::Local, cc);
            int buf = ni->addInjBuffer(1, fc, i, /*interposer=*/false);
            routerFlitWires_.push_back({fc, i, in_idx});
            niCreditWires_.push_back({cc, i, buf});
        }

        // Ejection port(s).
        for (int p = 0; p < mods.localEjPorts; ++p) {
            auto *fc = newFlitChan(1);
            auto *cc = newCreditChan(1);
            int ej = ni->addEjPort(cc);
            int out_idx = routerRef(i).addOutputPort(
                PortKind::LocalEj, Dir::Local, fc, params_.vcDepthFlits);
            niFlitWires_.push_back({fc, i, ej});
            routerCreditWires_.push_back({cc, i, out_idx});
        }

        nis_.push_back(std::move(ni));
    }

    // EIR interposer links: CB NI buffer -> remote router extra port.
    // Spans within the 1-cycle interposer reach (2 hops) traverse in a
    // single cycle; longer links would need repeaters and take a cycle
    // per reach-length segment.
    for (const auto &[cb, eirs] : spec.eirGroups) {
        eqx_assert(cb >= 0 && cb < n, "EIR group CB out of range");
        for (NodeId e : eirs) {
            eqx_assert(e >= 0 && e < n, "EIR node out of range");
            eqx_assert(e != cb, "a CB cannot be its own EIR");
            int span = manhattan(topo_.coord(cb), topo_.coord(e));
            int lat = (span + 1) / 2;
            if (lat < 1)
                lat = 1;
            auto *fc = newFlitChan(lat);
            auto *cc = newCreditChan(lat);
            int in_idx = routerRef(e).addInputPort(PortKind::RemoteInj,
                                                   Dir::Local, cc);
            int buf = nis_[static_cast<std::size_t>(cb)]->addInjBuffer(
                1, fc, e, /*interposer=*/true);
            routerFlitWires_.push_back({fc, e, in_idx});
            niCreditWires_.push_back({cc, cb, buf});
            ++remoteInjPorts_;
        }
    }
}

void
Network::coreTick(Cycle core_cycle)
{
    coreCycle_ = core_cycle;
    int ticks = (core_cycle % 2 == 0) ? params_.ticksEvenCycle
                                      : params_.ticksOddCycle;
    for (int i = 0; i < ticks; ++i)
        internalTick();
}

void
Network::internalTick()
{
    ++tick_;
    deliver();
    for (auto &r : routers_)
        r->switchAllocStage(tick_);
    for (auto &r : routers_)
        r->vcAllocStage(tick_);
    for (auto &r : routers_)
        r->routeComputeStage(tick_);
    for (auto &ni : nis_)
        ni->tick(tick_, coreCycle_);
}

void
Network::deliver()
{
    Flit f;
    for (auto &w : routerFlitWires_)
        while (w.chan->receive(tick_, f))
            routers_[static_cast<std::size_t>(w.router)]->acceptFlit(
                w.port, std::move(f), tick_);
    for (auto &w : niFlitWires_)
        while (w.chan->receive(tick_, f))
            nis_[static_cast<std::size_t>(w.ni)]->acceptEjectedFlit(
                w.ejPort, std::move(f));
    Credit c;
    for (auto &w : routerCreditWires_)
        while (w.chan->receive(tick_, c))
            routers_[static_cast<std::size_t>(w.router)]->creditArrived(
                w.port, c.vc);
    for (auto &w : niCreditWires_)
        while (w.chan->receive(tick_, c))
            nis_[static_cast<std::size_t>(w.ni)]->creditArrived(w.buf,
                                                                c.vc);
}

bool
Network::inject(NodeId node, const PacketPtr &pkt)
{
    eqx_assert(node >= 0 && node < topo_.numNodes(), "inject: bad node");
    return nis_[static_cast<std::size_t>(node)]->inject(pkt, tick_);
}

bool
Network::canInject(NodeId node) const
{
    return nis_[static_cast<std::size_t>(node)]->canInject();
}

void
Network::setSink(NodeId node, PacketSink *sink)
{
    nis_[static_cast<std::size_t>(node)]->setSink(sink);
}

std::vector<double>
Network::routerResidenceMeans() const
{
    std::vector<double> means;
    means.reserve(routers_.size());
    for (const auto &r : routers_)
        means.push_back(r->residenceStat().mean());
    return means;
}

double
Network::residenceVariance() const
{
    RunningStat rs;
    for (double m : routerResidenceMeans())
        rs.add(m);
    return rs.variance();
}

void
Network::resetStats()
{
    activity_.reset();
    latency_.reset();
    for (auto &r : routers_)
        r->resetStats();
    for (auto &ni : nis_)
        ni->resetStats();
}

namespace {

/** Stable, human-readable key segment for a router port. */
std::string
portLabel(PortKind kind, Dir dir, int nth_of_kind)
{
    switch (kind) {
      case PortKind::Geo:
        return dirName(dir);
      case PortKind::LocalInj:
        return "inj" + std::to_string(nth_of_kind);
      case PortKind::LocalEj:
        return "ej" + std::to_string(nth_of_kind);
      case PortKind::RemoteInj:
        return "rinj" + std::to_string(nth_of_kind);
    }
    return "p" + std::to_string(nth_of_kind);
}

} // namespace

void
Network::exportStats(StatGroup &sg, const std::string &prefix) const
{
    auto set = [&](const std::string &key, double v) {
        sg.set(prefix + "." + key, v);
    };

    // Aggregate activity and per-class latency (ticks).
    set("act.buffer_writes", static_cast<double>(activity_.bufferWrites));
    set("act.xbar", static_cast<double>(activity_.xbarTraversals));
    set("act.link_flits", static_cast<double>(activity_.linkFlits));
    set("act.interposer_flits",
        static_cast<double>(activity_.interposerLinkFlits));
    static const char *cls_name[2] = {"req", "rep"};
    for (int c = 0; c < 2; ++c) {
        std::string k = std::string("lat.") + cls_name[c];
        set(k + ".packets", static_cast<double>(latency_.packets[c]));
        set(k + ".mean", latency_.totalLat[c].mean());
        set(k + ".p50", latency_.totalHist[c].percentile(0.50));
        set(k + ".p95", latency_.totalHist[c].percentile(0.95));
        set(k + ".p99", latency_.totalHist[c].percentile(0.99));
    }

    // Per-router counters, ports keyed by direction / kind.
    for (const auto &rp : routers_) {
        const Router &r = *rp;
        std::string rk = "router." + std::to_string(r.id());
        set(rk + ".flits", static_cast<double>(r.flitsForwarded()));
        set(rk + ".va_req", static_cast<double>(r.vaRequests()));
        set(rk + ".va_grant", static_cast<double>(r.vaGrants()));
        set(rk + ".sa_req", static_cast<double>(r.saRequests()));
        set(rk + ".sa_grant", static_cast<double>(r.saGrants()));
        set(rk + ".credit_stall",
            static_cast<double>(r.creditStallCycles()));
        set(rk + ".occ_mean", r.vcOccupancy().mean());
        set(rk + ".residence_mean", r.residenceStat().mean());
        int nth[4] = {0, 0, 0, 0};
        for (int p = 0; p < r.numInputPorts(); ++p) {
            const auto &ip = r.inputPort(p);
            int k = static_cast<int>(ip.kind);
            set(rk + ".in." + portLabel(ip.kind, ip.dir, nth[k]++) +
                    ".flits",
                static_cast<double>(ip.flitsAccepted));
        }
        nth[0] = nth[1] = nth[2] = nth[3] = 0;
        for (int p = 0; p < r.numOutputPorts(); ++p) {
            const auto &op = r.outputPort(p);
            int k = static_cast<int>(op.kind);
            set(rk + ".out." + portLabel(op.kind, op.dir, nth[k]++) +
                    ".flits",
                static_cast<double>(op.flitsSent));
        }
    }

    // Per-NI injection-buffer loads. Buffer 0 is always the local
    // router; EquiNox CB NIs additionally carry one buffer per EIR, so
    // these keys are the measured per-injection-point loads the MCTS
    // evaluator predicts.
    for (const auto &nip : nis_) {
        const NetworkInterface &ni = *nip;
        std::string nk = "ni." + std::to_string(ni.node());
        for (int b = 0; b < ni.numInjBuffers(); ++b) {
            const auto &buf = ni.injBuffer(b);
            std::string bk = nk + ".buf" + std::to_string(b);
            set(bk + ".router", static_cast<double>(buf.targetRouter));
            set(bk + ".packets",
                static_cast<double>(buf.packetsInjected));
            set(bk + ".flits", static_cast<double>(buf.flitsInjected));
            set(bk + ".stall",
                static_cast<double>(buf.creditStallTicks));
        }
    }
}

bool
Network::drained() const
{
    for (const auto &r : routers_)
        if (r->hasBufferedFlits())
            return false;
    for (const auto &ni : nis_)
        if (!ni->idle())
            return false;
    for (const auto &c : flitChans_)
        if (!c->empty())
            return false;
    return true;
}

} // namespace eqx
