/**
 * @file
 * HBM stack model (Ramulator-class abstraction): channels with
 * banked DRAM timing (row activate / precharge / CAS / burst), an
 * FR-FCFS scheduler per channel, and a data-bus occupancy model that
 * caps per-stack bandwidth (paper Table 1: 256 GB/s per stack,
 * 16 channels, 4 dies per stack).
 */

#ifndef EQX_MEMORY_HBM_HH
#define EQX_MEMORY_HBM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace eqx {

/** DRAM timing in core clock cycles (1126 MHz domain). */
struct DramTiming
{
    int tRCD = 16; ///< activate -> column access
    int tRP = 16;  ///< precharge
    int tCL = 16;  ///< CAS latency
    int tBL = 4;   ///< data burst occupancy on the channel bus
    int tWR = 18;  ///< write recovery (adds to write completion)
};

/** Geometry and policy parameters of one HBM stack. */
struct HbmParams
{
    int channels = 16;      ///< channels per stack (8 ch x 2 pseudo)
    int banksPerChannel = 8;
    int queueDepth = 16;    ///< per-channel scheduler queue
    int lineBytes = 64;
    DramTiming timing;
};

/** One memory access presented to the stack. */
struct MemRequest
{
    Addr addr = 0;
    bool write = false;
    std::uint64_t tag = 0;
};

/**
 * One HBM stack with FR-FCFS scheduling. The owner ticks it once per
 * core cycle; completions fire the callback with the original request.
 */
class HbmStack
{
  public:
    using Callback = std::function<void(const MemRequest &, Cycle)>;

    explicit HbmStack(const HbmParams &params, Callback on_complete);

    /** Is there queue space for the channel this address maps to? */
    bool canEnqueue(Addr addr) const;

    /** Add a request (caller must have checked canEnqueue). */
    void enqueue(const MemRequest &req, Cycle now);

    /** Advance one core cycle: issue per channel, fire completions. */
    void tick(Cycle now);

    /**
     * Earliest core cycle after @p now at which this stack does real
     * work — the global time wheel query (DESIGN.md §14): the next
     * in-flight completion, or for each backlogged channel the first
     * cycle its bus is free and some queued request's bank is ready.
     * kNeverCycle when fully idle (woken only by enqueue()).
     */
    Cycle nextDueCycle(Cycle now) const;

    /** Requests accepted but not yet completed. */
    int outstanding() const { return outstanding_; }

    const StatGroup &stats() const { return stats_; }

    /** Address decomposition helpers (line-interleaved channels). */
    int channelOf(Addr addr) const;
    int bankOf(Addr addr) const;
    std::int64_t rowOf(Addr addr) const;

  private:
    struct Bank
    {
        std::int64_t openRow = -1;
        Cycle readyAt = 0;
    };

    struct Channel
    {
        std::deque<MemRequest> queue;
        std::vector<Bank> banks;
        Cycle busFreeAt = 0;
    };

    struct Inflight
    {
        Cycle finishAt;
        MemRequest req;
        bool operator>(const Inflight &o) const
        {
            return finishAt > o.finishAt;
        }
    };

    void issueChannel(Channel &ch, Cycle now);

    HbmParams params_;
    Callback onComplete_;
    std::vector<Channel> channels_;
    std::priority_queue<Inflight, std::vector<Inflight>,
                        std::greater<Inflight>>
        inflight_;
    int outstanding_ = 0;
    StatGroup stats_;
};

} // namespace eqx

#endif // EQX_MEMORY_HBM_HH
