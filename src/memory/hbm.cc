#include "memory/hbm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace eqx {

HbmStack::HbmStack(const HbmParams &params, Callback on_complete)
    : params_(params), onComplete_(std::move(on_complete))
{
    eqx_assert(params_.channels >= 1 && params_.banksPerChannel >= 1,
               "HBM geometry must be positive");
    channels_.resize(static_cast<std::size_t>(params_.channels));
    for (auto &ch : channels_)
        ch.banks.resize(static_cast<std::size_t>(params_.banksPerChannel));
}

int
HbmStack::channelOf(Addr addr) const
{
    return static_cast<int>((addr / static_cast<Addr>(params_.lineBytes)) %
                            static_cast<Addr>(params_.channels));
}

int
HbmStack::bankOf(Addr addr) const
{
    Addr line = addr / static_cast<Addr>(params_.lineBytes);
    return static_cast<int>((line / static_cast<Addr>(params_.channels)) %
                            static_cast<Addr>(params_.banksPerChannel));
}

std::int64_t
HbmStack::rowOf(Addr addr) const
{
    Addr line = addr / static_cast<Addr>(params_.lineBytes);
    // 64 lines (4 KiB rows at 64 B lines) per row.
    return static_cast<std::int64_t>(
        line / static_cast<Addr>(params_.channels) /
        static_cast<Addr>(params_.banksPerChannel) / 64);
}

bool
HbmStack::canEnqueue(Addr addr) const
{
    const auto &ch = channels_[static_cast<std::size_t>(channelOf(addr))];
    return static_cast<int>(ch.queue.size()) < params_.queueDepth;
}

void
HbmStack::enqueue(const MemRequest &req, Cycle)
{
    auto &ch = channels_[static_cast<std::size_t>(channelOf(req.addr))];
    eqx_assert(static_cast<int>(ch.queue.size()) < params_.queueDepth,
               "HBM channel queue overflow");
    ch.queue.push_back(req);
    ++outstanding_;
    stats_.inc(req.write ? "writes" : "reads");
}

void
HbmStack::issueChannel(Channel &ch, Cycle now)
{
    if (ch.queue.empty() || ch.busFreeAt > now)
        return;
    const DramTiming &t = params_.timing;

    // FR-FCFS: first ready row-hit; otherwise the oldest ready request.
    auto ready = [&](const MemRequest &r) {
        const Bank &b =
            ch.banks[static_cast<std::size_t>(bankOf(r.addr))];
        return b.readyAt <= now;
    };
    auto rowHit = [&](const MemRequest &r) {
        const Bank &b =
            ch.banks[static_cast<std::size_t>(bankOf(r.addr))];
        return b.openRow == rowOf(r.addr);
    };

    std::size_t pick = ch.queue.size();
    for (std::size_t i = 0; i < ch.queue.size(); ++i) {
        if (ready(ch.queue[i]) && rowHit(ch.queue[i])) {
            pick = i;
            break;
        }
    }
    if (pick == ch.queue.size()) {
        for (std::size_t i = 0; i < ch.queue.size(); ++i) {
            if (ready(ch.queue[i])) {
                pick = i;
                break;
            }
        }
    }
    if (pick == ch.queue.size())
        return;

    MemRequest req = ch.queue[pick];
    ch.queue.erase(ch.queue.begin() +
                   static_cast<std::ptrdiff_t>(pick));

    Bank &bank = ch.banks[static_cast<std::size_t>(bankOf(req.addr))];
    std::int64_t row = rowOf(req.addr);
    int access_lat;
    if (bank.openRow == row) {
        access_lat = t.tCL + t.tBL;
        stats_.inc("row_hits");
    } else if (bank.openRow >= 0) {
        access_lat = t.tRP + t.tRCD + t.tCL + t.tBL;
        stats_.inc("row_conflicts");
    } else {
        access_lat = t.tRCD + t.tCL + t.tBL;
        stats_.inc("row_empty");
    }
    bank.openRow = row;

    Cycle finish = now + static_cast<Cycle>(access_lat) +
                   static_cast<Cycle>(req.write ? t.tWR : 0);
    bank.readyAt = finish;
    ch.busFreeAt = now + static_cast<Cycle>(t.tBL);
    inflight_.push(Inflight{finish, req});
}

Cycle
HbmStack::nextDueCycle(Cycle now) const
{
    Cycle due = kNeverCycle;
    if (!inflight_.empty())
        due = std::max(inflight_.top().finishAt, now + 1);
    for (const auto &ch : channels_) {
        if (ch.queue.empty())
            continue;
        // FR-FCFS can issue once the bus is free and *some* queued
        // request's bank is ready; which one it picks doesn't change
        // the earliest cycle anything can happen.
        Cycle bank_ready = kNeverCycle;
        for (const auto &r : ch.queue) {
            const Bank &b =
                ch.banks[static_cast<std::size_t>(bankOf(r.addr))];
            bank_ready = std::min(bank_ready, b.readyAt);
        }
        Cycle issue = std::max({now + 1, ch.busFreeAt, bank_ready});
        due = std::min(due, issue);
    }
    return due;
}

void
HbmStack::tick(Cycle now)
{
    while (!inflight_.empty() && inflight_.top().finishAt <= now) {
        MemRequest req = inflight_.top().req;
        inflight_.pop();
        --outstanding_;
        stats_.inc("completions");
        onComplete_(req, now);
    }
    for (auto &ch : channels_)
        issueChannel(ch, now);
}

} // namespace eqx
