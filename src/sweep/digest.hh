/**
 * @file
 * Content-addressed cell identity for the sweep fabric (DESIGN.md
 * §13). A cell's digest is a 128-bit hash over the canonical
 * serialization (src/sim/config_serial) of everything that determines
 * its RunResult — the post-tweak SystemConfig and post-scale
 * WorkloadProfile — salted with a schema version. Two cells with the
 * same digest are the same simulation; bumping the schema version
 * invalidates every previously cached entry at the key level (old
 * entries simply stop being addressed).
 */

#ifndef EQX_SWEEP_DIGEST_HH
#define EQX_SWEEP_DIGEST_HH

#include <cstdint>
#include <string>

#include "sim/experiment.hh"

namespace eqx {

/**
 * Version of the (serialization schema, record schema) pair. Bump it
 * whenever the canonical serialization changes meaning (a knob is
 * added/renamed) or the cache record format changes incompatibly —
 * every old cache/journal entry then misses instead of aliasing.
 */
constexpr int kSweepSchemaVersion = 3;

/** A 128-bit content digest, rendered as 32 lowercase hex chars. */
struct CellDigest
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    std::string hex() const;
    /** Parse 32 hex chars; returns false on malformed input. */
    static bool fromHex(const std::string &s, CellDigest &out);

    bool operator==(const CellDigest &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const CellDigest &o) const { return !(*this == o); }
};

/**
 * Hash a canonical blob (KvBlob::canonical()) under the given schema
 * salt. Exposed separately from cellDigest so tests can probe salt
 * sensitivity directly.
 */
CellDigest digestBlob(const std::string &canonical_blob,
                      int schema_version = kSweepSchemaVersion);

/**
 * The digest of one (scheme, benchmark) cell of @p runner's matrix:
 * prepare the cell exactly as runOne would, serialize it canonically,
 * hash. Non-const because preparing an EquiNox cell may lazily build
 * the shared design (single-threaded callers only; runMatrix-spawned
 * workers are safe because the design is prebuilt).
 */
CellDigest cellDigest(ExperimentRunner &runner, const std::string &scheme,
                      const WorkloadProfile &profile,
                      int schema_version = kSweepSchemaVersion);

} // namespace eqx

#endif // EQX_SWEEP_DIGEST_HH
