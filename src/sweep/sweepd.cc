#include "sweep/sweepd.hh"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "workloads/profiles.hh"

namespace eqx {

namespace {

/** Blocking full write; MSG_NOSIGNAL so a vanished client is an error
 *  return, not a SIGPIPE. This blocking is the backpressure: a slow
 *  reader stalls the stream (and through the serialized onCell hook,
 *  the sweep) instead of growing an unbounded buffer. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeLine(int fd, const std::string &line)
{
    return writeAll(fd, line + '\n');
}

void
writeError(int fd, const std::string &msg)
{
    JsonObject o;
    o.field("ok", false).field("error", msg);
    writeLine(fd, o.str());
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string item = s.substr(pos, comma - pos);
        while (!item.empty() && item.front() == ' ')
            item.erase(item.begin());
        while (!item.empty() && item.back() == ' ')
            item.pop_back();
        if (!item.empty())
            out.push_back(std::move(item));
        pos = comma + 1;
    }
    return out;
}

} // namespace

SweepdServer::SweepdServer(SweepdConfig cfg) : cfg_(std::move(cfg))
{
    eqx_assert(!cfg_.cacheDir.empty(), "sweepd requires a cache dir");
}

SweepdServer::~SweepdServer()
{
    stop();
}

bool
SweepdServer::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.empty() ||
        cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        eqx_warn("sweepd: bad socket path '", cfg_.socketPath, "'");
        return false;
    }
    std::strcpy(addr.sun_path, cfg_.socketPath.c_str());

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        eqx_warn("sweepd: socket(): ", std::strerror(errno));
        return false;
    }
    // A socket file may already sit at the path: either a live daemon
    // (in which case we must NOT steal the path — unconditionally
    // unlinking here would silently orphan the running instance) or a
    // stale leftover from an unclean shutdown (graceful stop()
    // unlinks, a crash does not, and the next bind() then fails
    // EADDRINUSE). Disambiguate with a connect probe: a live listener
    // accepts, a stale file refuses (ECONNREFUSED).
    if (::access(cfg_.socketPath.c_str(), F_OK) == 0) {
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            bool live = ::connect(probe,
                                  reinterpret_cast<sockaddr *>(&addr),
                                  sizeof(addr)) == 0;
            ::close(probe);
            if (live) {
                eqx_warn("sweepd: another daemon is live on ",
                         cfg_.socketPath, "; refusing to start");
                ::close(listenFd_);
                listenFd_ = -1;
                return false;
            }
        }
        eqx_inform("sweepd: removing stale socket ", cfg_.socketPath);
        ::unlink(cfg_.socketPath.c_str());
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 8) != 0) {
        eqx_warn("sweepd: cannot listen on ", cfg_.socketPath, ": ",
                 std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    running_.store(true);
    stopping_.store(false);
    thread_ = std::thread([this] { acceptLoop(); });
    eqx_inform("sweepd listening on ", cfg_.socketPath);
    return true;
}

void
SweepdServer::requestStop()
{
    stopping_.store(true);
}

void
SweepdServer::wait()
{
    if (thread_.joinable())
        thread_.join();
}

void
SweepdServer::stop()
{
    requestStop();
    wait();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(cfg_.socketPath.c_str());
    }
}

void
SweepdServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, /*timeout ms=*/200);
        if (r < 0 && errno != EINTR)
            break;
        if (r <= 0 || !(pfd.revents & POLLIN))
            continue; // timeout tick: re-check stopping_
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        connections_.fetch_add(1, std::memory_order_relaxed);
        handleConnection(fd);
        ::close(fd);
    }
    // The loop owns the socket once it is running: a client-initiated
    // shutdown must not leave a stale socket file behind. stop() sees
    // listenFd_ == -1 afterwards (it joins the thread first).
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());
    running_.store(false);
}

void
SweepdServer::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        // Wake periodically so a shutdown requested elsewhere (API
        // call, another client) closes idle connections too.
        pollfd pfd{fd, POLLIN, 0};
        int r = ::poll(&pfd, 1, 200);
        if (r < 0 && errno != EINTR)
            return;
        if (r <= 0) {
            if (stopping_.load())
                return;
            continue;
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return; // client closed (or error)
        buf.append(chunk, static_cast<std::size_t>(n));

        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (!handleQuery(fd, line))
                return;
        }
    }
}

bool
SweepdServer::handleQuery(int fd, const std::string &line)
{
    queries_.fetch_add(1, std::memory_order_relaxed);

    JsonFields q;
    if (!parseFlatJson(line, q)) {
        writeError(fd, "malformed query (one flat JSON object per line)");
        return true;
    }
    auto it = q.find("cmd");
    if (it == q.end() || it->second.kind != JsonValue::Kind::String) {
        writeError(fd, "missing \"cmd\"");
        return true;
    }
    const std::string &cmd = it->second.text;

    if (cmd == "ping") {
        JsonObject o;
        o.field("ok", true).field("pong", true);
        writeLine(fd, o.str());
        return true;
    }
    if (cmd == "stats") {
        JsonObject o;
        o.field("ok", true)
            .field("connections", connections())
            .field("queries", queries())
            .field("cells_served", cellsServed())
            .field("cache_served", cacheServed())
            .field("simulated", simulated());
        writeLine(fd, o.str());
        return true;
    }
    if (cmd == "shutdown") {
        JsonObject o;
        o.field("ok", true).field("stopping", true);
        writeLine(fd, o.str());
        stopping_.store(true);
        return false;
    }
    if (cmd == "cells") {
        handleCells(fd, q);
        return true;
    }
    writeError(fd, "unknown cmd \"" + cmd + "\"");
    return true;
}

void
SweepdServer::handleCells(int fd, const JsonFields &q)
{
    auto strField = [&](const char *k) {
        auto i = q.find(k);
        return i == q.end() || i->second.kind != JsonValue::Kind::String
                   ? std::string()
                   : i->second.text;
    };

    ExperimentConfig ec = cfg_.experiment;

    std::string schemes = strField("schemes");
    if (!schemes.empty()) {
        ec.schemes = splitCsv(schemes);
        if (ec.schemes.empty()) {
            writeError(fd, "empty \"schemes\" list");
            return;
        }
    }
    for (const auto &key : ec.schemes)
        if (!SchemeRegistry::instance().find(key)) {
            writeError(fd, "unknown scheme \"" + key + "\" (known: " +
                               SchemeRegistry::instance().keyList() + ")");
            return;
        }

    std::string benchmarks = strField("benchmarks");
    if (!benchmarks.empty()) {
        ec.workloads.clear();
        for (const auto &name : splitCsv(benchmarks)) {
            const WorkloadProfile *wp = findWorkload(name);
            if (!wp) {
                writeError(fd, "unknown benchmark \"" + name + "\"");
                return;
            }
            ec.workloads.push_back(*wp);
        }
    }
    if (ec.workloads.empty()) {
        writeError(fd, "no benchmarks selected");
        return;
    }

    if (auto i = q.find("seed"); i != q.end())
        ec.seed = i->second.asU64();

    SweepOptions so;
    so.cacheDir = cfg_.cacheDir;
    bool clientGone = false;
    so.onCell = [&](const CellDigest &d, const CellResult &c) {
        cellsServed_.fetch_add(1, std::memory_order_relaxed);
        if (c.fromCache)
            cacheServed_.fetch_add(1, std::memory_order_relaxed);
        else
            simulated_.fetch_add(1, std::memory_order_relaxed);
        if (clientGone)
            // Keep the sweep running — its results still land in the
            // cache for the next query — but stop writing.
            return;
        CellRecord rec;
        rec.digest = d;
        rec.cell = c;
        if (!writeLine(fd, cellRecordLine(rec)))
            clientGone = true;
    };

    SweepOutcome out = runSweep(ec, so);

    if (clientGone)
        return;
    JsonObject o;
    o.field("done", true)
        .field("ok", true)
        .field("cells", static_cast<std::uint64_t>(out.shardCells))
        .field("cached", static_cast<std::uint64_t>(out.cacheHits))
        .field("simulated", static_cast<std::uint64_t>(out.simulated))
        .field("failed", static_cast<std::uint64_t>(out.failed));
    writeLine(fd, o.str());
}

} // namespace eqx
