#include "sweep/cell_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace eqx {

namespace {

/** mkdir -p for the two-level layouts used here. */
bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    if (errno != ENOENT)
        return false;
    auto slash = path.find_last_of('/');
    if (slash == std::string::npos || slash == 0)
        return false;
    if (!ensureDir(path.substr(0, slash)))
        return false;
    return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace

CellCache::CellCache(std::string dir) : dir_(std::move(dir))
{
    eqx_assert(!dir_.empty(), "cell cache needs a directory");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
    if (!ensureDir(dir_))
        eqx_fatal("cannot create cell cache directory '", dir_,
                  "': ", std::strerror(errno));
}

std::string
CellCache::pathFor(const CellDigest &digest) const
{
    std::string hex = digest.hex();
    return dir_ + '/' + hex.substr(0, 2) + '/' + hex + ".json";
}

bool
CellCache::lookup(const CellDigest &digest, CellResult &out)
{
    std::string text;
    if (!readWholeFile(pathFor(digest), text)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    // Strip the trailing newline the writer appends.
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();

    CellRecord rec;
    if (!parseCellRecord(text, rec) || rec.digest != digest) {
        // Wrong schema, torn write that dodged the rename discipline,
        // or a record filed under the wrong address: all corrupt.
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    out = std::move(rec.cell);
    out.fromCache = true; // not serialized, so round-trips stay exact
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
CellCache::store(const CellDigest &digest, const CellResult &cell)
{
    if (cell.failed)
        return;

    CellRecord rec;
    rec.digest = digest;
    rec.cell = cell;
    std::string line = cellRecordLine(rec);

    std::string path = pathFor(digest);
    auto slash = path.find_last_of('/');
    if (!ensureDir(path.substr(0, slash))) {
        eqx_warn("cell cache: cannot create shard dir for ", path);
        return;
    }

    // Unique temp name per (process, store) so concurrent writers of
    // the same digest never interleave; rename makes it visible whole.
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + '.' +
                      std::to_string(tmpSeq_.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        eqx_warn("cell cache: cannot open ", tmp, ": ",
                 std::strerror(errno));
        return;
    }
    bool ok = std::fputs(line.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
        eqx_warn("cell cache: failed to publish ", path, ": ",
                 std::strerror(errno));
        ::unlink(tmp.c_str());
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
}

void
CellCache::exportStats(StatGroup &g) const
{
    g.set("cache.hits", static_cast<double>(hits()));
    g.set("cache.misses", static_cast<double>(misses()));
    g.set("cache.corrupt", static_cast<double>(corrupt()));
    g.set("cache.stores", static_cast<double>(stores()));
}

} // namespace eqx
