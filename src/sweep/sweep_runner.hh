/**
 * @file
 * The sweep fabric front door (DESIGN.md §13): runs an experiment
 * matrix through the content-addressed cell cache, the write-ahead
 * journal, and the deterministic shard filter, by wiring the three
 * ExperimentConfig sweep hooks (cellFilter / cellLookup / cellDone).
 *
 * Lookup order per cell: journal (this shard's own recovered work)
 * first, then the shared cache; a miss simulates on the JobPool as
 * usual. Every successful cell is journaled and stored back, so a
 * resumed or repeated sweep re-simulates nothing that already ran —
 * the second identical sweep is 100% cache-served.
 */

#ifndef EQX_SWEEP_SWEEP_RUNNER_HH
#define EQX_SWEEP_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "sweep/digest.hh"

namespace eqx {

/** How one sweep run uses the fabric. Default-constructed options
 *  (no cache, no journal, one shard) reduce runSweep to runMatrix. */
struct SweepOptions
{
    /** Cell cache root ("" = no cache). */
    std::string cacheDir;
    /** This shard's journal path ("" = no journal). */
    std::string journalPath;
    /** Recover an existing journal instead of truncating it. */
    bool resume = false;
    /** This process owns cells with shard == shardIndex of shardCount. */
    int shardIndex = 0;
    int shardCount = 1;
    /**
     * Called (serialized) after every finished cell with its digest —
     * the sweepd streaming point. Runs after the cell is journaled
     * and stored, so a crash mid-callback loses no work.
     */
    std::function<void(const CellDigest &, const CellResult &)> onCell;

    bool enabled() const
    {
        return !cacheDir.empty() || !journalPath.empty() || shardCount > 1;
    }
};

/** One cell's identity, as listed by the digest= dry run. */
struct CellId
{
    std::size_t index = 0; ///< canonical matrix index
    std::string scheme;    ///< canonical registry name
    std::string benchmark;
    CellDigest digest;
    int shard = 0; ///< owner under the given shard count
};

/** Everything a fabric-routed sweep produced. */
struct SweepOutcome
{
    /** This shard's cells, canonical order (== runMatrix output). */
    std::vector<CellResult> cells;

    std::size_t totalCells = 0;  ///< unsharded matrix size
    std::size_t shardCells = 0;  ///< cells this shard owned
    std::size_t journalHits = 0; ///< served from the recovered journal
    std::size_t cacheHits = 0;   ///< served from the cell cache
    std::size_t simulated = 0;   ///< actually run (includes failed)
    std::size_t failed = 0;      ///< permanently failed cells
    std::size_t stored = 0;      ///< new cache entries written

    /** cache.* and sweep.* counters, exportStats style. */
    StatGroup stats;
};

/**
 * Run @p config's matrix through the fabric. Digests are computed up
 * front (cheap: config serialization, no simulation), then the matrix
 * runs with lookups short-circuiting the pool. Hooks already present
 * in @p config compose: its cellFilter is ANDed with the shard
 * predicate, its cellLookup is consulted after journal and cache
 * miss, its cellDone runs after the fabric's.
 */
SweepOutcome runSweep(const ExperimentConfig &config,
                      const SweepOptions &opt);

/**
 * The digest= dry run: every cell's identity, canonical order,
 * nothing simulated. @p shard_count annotates each cell with its
 * owning shard (1 = unsharded, every cell shard 0).
 */
std::vector<CellId> listCellDigests(const ExperimentConfig &config,
                                    int shard_count = 1);

} // namespace eqx

#endif // EQX_SWEEP_SWEEP_RUNNER_HH
