#include "sweep/shard.hh"

#include <cstdlib>
#include <map>

#include "runner/jsonl.hh"
#include "runner/stream_seed.hh"
#include "sim/experiment.hh"
#include "sweep/journal.hh"

namespace eqx {

bool
parseShardSpec(const std::string &spec, int &index, int &count)
{
    auto slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= spec.size())
        return false;
    for (std::size_t i = 0; i < spec.size(); ++i)
        if (i != slash && (spec[i] < '0' || spec[i] > '9'))
            return false;
    long i = std::strtol(spec.substr(0, slash).c_str(), nullptr, 10);
    long n = std::strtol(spec.substr(slash + 1).c_str(), nullptr, 10);
    if (n < 1 || i < 0 || i >= n)
        return false;
    index = static_cast<int>(i);
    count = static_cast<int>(n);
    return true;
}

int
cellShard(std::uint64_t seed, const std::string &scheme,
          const std::string &benchmark, int shard_count)
{
    if (shard_count <= 1)
        return 0;
    std::uint64_t h = deriveStreamSeed(seed, "shard", scheme, benchmark);
    return static_cast<int>(h % static_cast<std::uint64_t>(shard_count));
}

MergeResult
mergeJournals(const std::vector<std::string> &inputs,
              const std::string &out_path, bool allow_gaps)
{
    MergeResult res;
    // index -> record, deduplicated by digest.
    std::map<std::size_t, CellRecord> byIndex;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t>
        byDigest;

    for (const auto &in : inputs) {
        JournalLoad load = loadJournal(in);
        if (!load.existed) {
            res.error = "cannot read journal '" + in + "'";
            return res;
        }
        ++res.inputs;
        for (auto &rec : load.records) {
            auto dkey = std::make_pair(rec.digest.hi, rec.digest.lo);
            auto dit = byDigest.find(dkey);
            if (dit != byDigest.end()) {
                // Same cell journaled twice (overlapping shard runs,
                // or the same journal listed twice): same simulation,
                // but flag a digest that claims two matrix slots.
                if (dit->second != rec.cell.index) {
                    res.error = "digest " + rec.digest.hex() +
                                " maps to indices " +
                                std::to_string(dit->second) + " and " +
                                std::to_string(rec.cell.index);
                    return res;
                }
                continue;
            }
            auto iit = byIndex.find(rec.cell.index);
            if (iit != byIndex.end()) {
                // Two different simulations in the same slot: the
                // inputs come from different matrices.
                res.error = "index " + std::to_string(rec.cell.index) +
                            " claimed by digests " +
                            iit->second.digest.hex() + " and " +
                            rec.digest.hex();
                return res;
            }
            byDigest.emplace(dkey, rec.cell.index);
            byIndex.emplace(rec.cell.index, std::move(rec));
        }
    }

    if (!allow_gaps && !byIndex.empty()) {
        // A complete shard set covers exactly 0..n-1.
        std::size_t expect = 0;
        for (const auto &[idx, rec] : byIndex) {
            if (idx != expect) {
                res.error = "missing cell index " + std::to_string(expect) +
                            " (incomplete shard set?)";
                return res;
            }
            ++expect;
        }
    }

    JsonlWriter out(out_path);
    for (const auto &[idx, rec] : byIndex)
        out.write(cellJsonRecord(rec.cell));
    res.cells = byIndex.size();
    return res;
}

} // namespace eqx
