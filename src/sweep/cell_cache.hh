/**
 * @file
 * The on-disk content-addressed cell store (DESIGN.md §13). One
 * record file per digest under `<dir>/<hh>/<digest>.json` (hh = the
 * first two hex chars, a fan-out that keeps directories small at
 * design-space scale). Writes go through a temp file + atomic rename,
 * so concurrent writers — pool workers, parallel shards on a shared
 * filesystem, a live sweepd — can race on the same digest and every
 * reader still sees a complete record. Unparseable or mis-addressed
 * entries count as corrupt and behave as misses; a schema-version
 * bump changes every digest, so stale-schema entries are simply never
 * addressed again.
 */

#ifndef EQX_SWEEP_CELL_CACHE_HH
#define EQX_SWEEP_CELL_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "sweep/record_io.hh"

namespace eqx {

class CellCache
{
  public:
    /** Opens (creating if needed) the cache root; fatal on failure. */
    explicit CellCache(std::string dir);

    CellCache(const CellCache &) = delete;
    CellCache &operator=(const CellCache &) = delete;

    /**
     * Look a digest up. On a hit the stored CellResult is restored
     * into @p out (exact round-trip: re-rendering it reproduces the
     * cached record's bytes). Thread-safe; a corrupt entry counts in
     * corrupt() and reports a miss.
     */
    bool lookup(const CellDigest &digest, CellResult &out);

    /**
     * Store one finished cell under its digest. Failed cells are
     * refused (a retry next run may succeed; caching the failure
     * would pin it). Overwrites any existing entry atomically.
     */
    void store(const CellDigest &digest, const CellResult &cell);

    // exportStats-style counters (this process's view).
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t corrupt() const { return corrupt_.load(); }
    std::uint64_t stores() const { return stores_.load(); }

    /** Append the counters to @p g under "cache." keys. */
    void exportStats(StatGroup &g) const;

    const std::string &dir() const { return dir_; }
    /** The record path a digest addresses (exposed for tests). */
    std::string pathFor(const CellDigest &digest) const;

  private:
    std::string dir_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> tmpSeq_{0};
};

} // namespace eqx

#endif // EQX_SWEEP_CELL_CACHE_HH
