/**
 * @file
 * Per-shard write-ahead journal (DESIGN.md §13). Every successfully
 * finished cell is appended as one CellRecord line before the sweep
 * moves on, so a crash — kill -9, OOM, power loss mid-write — loses
 * at most the record being written. Resume loads the journal back,
 * truncates a torn trailing record, and re-opens the file in append
 * mode; cells whose digest is already journaled are served from the
 * recovered records instead of being re-simulated.
 *
 * Interior corruption (a complete line that does not parse — bit rot,
 * a concurrent writer on the same path) is survivable too: the intact
 * records are kept and the journal is rewritten from them.
 */

#ifndef EQX_SWEEP_JOURNAL_HH
#define EQX_SWEEP_JOURNAL_HH

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runner/jsonl.hh"
#include "sweep/record_io.hh"

namespace eqx {

/** What loadJournal recovered from an existing journal file. */
struct JournalLoad
{
    /** Intact records, file order, deduplicated by digest (first
     *  occurrence wins; a duplicate digest is the same simulation). */
    std::vector<CellRecord> records;
    /** Byte length of the intact prefix. A torn trailing record —
     *  the crash signature — lies beyond this offset. */
    std::size_t validBytes = 0;
    /** A complete interior line failed to parse: the prefix is not
     *  trustworthy as-is and the journal must be rewritten from
     *  `records` instead of truncated to validBytes. */
    bool needsRewrite = false;
    /** The file existed (an absent journal is a valid empty load). */
    bool existed = false;
};

/**
 * Read a journal tolerantly. Never fails: unreadable or absent files
 * load as empty, torn tails are excluded via validBytes, interior
 * corruption sets needsRewrite.
 */
JournalLoad loadJournal(const std::string &path,
                        int expect_schema = kSweepSchemaVersion);

/** The open journal of one running sweep shard. */
class SweepJournal
{
  public:
    /**
     * Open @p path for writing. With resume = false any existing file
     * is truncated. With resume = true the existing records are
     * recovered first (see loadJournal), the file is repaired —
     * truncated past a torn tail, or rewritten on interior corruption
     * — and writes append after them.
     */
    SweepJournal(const std::string &path, bool resume);

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Records recovered at open (empty unless resuming). */
    const std::vector<CellRecord> &recovered() const { return recovered_; }

    /** Find a recovered record by digest (nullptr if absent). */
    const CellRecord *find(const CellDigest &digest) const;

    /**
     * Append one record. Thread-safe (the underlying writer locks and
     * flushes per line); callers serialize per digest naturally since
     * each cell finishes once.
     */
    void append(const CellRecord &rec);

    /** Records appended by this process (excludes recovered ones). */
    std::size_t appended() const { return appended_.load(); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<CellRecord> recovered_;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t>
        byDigest_;
    std::unique_ptr<JsonlWriter> writer_;
    std::atomic<std::size_t> appended_{0};
};

} // namespace eqx

#endif // EQX_SWEEP_JOURNAL_HH
