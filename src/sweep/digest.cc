#include "sweep/digest.hh"

#include <cstdio>

#include "runner/stream_seed.hh"
#include "sim/config_serial.hh"

namespace eqx {

namespace {

/** FNV-1a 64 over bytes from an arbitrary offset basis, avalanched. */
std::uint64_t
fnvMix(const std::string &data, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL; // FNV prime
    }
    return detail::mix64(h);
}

} // namespace

std::string
CellDigest::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

bool
CellDigest::fromHex(const std::string &s, CellDigest &out)
{
    if (s.size() != 32)
        return false;
    std::uint64_t parts[2] = {0, 0};
    for (int half = 0; half < 2; ++half)
        for (int i = 0; i < 16; ++i) {
            char c = s[static_cast<std::size_t>(half * 16 + i)];
            std::uint64_t v;
            if (c >= '0' && c <= '9')
                v = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v = static_cast<std::uint64_t>(c - 'a' + 10);
            else
                return false;
            parts[half] = (parts[half] << 4) | v;
        }
    out.hi = parts[0];
    out.lo = parts[1];
    return true;
}

CellDigest
digestBlob(const std::string &canonical_blob, int schema_version)
{
    // The schema salt prefixes the hashed stream, so a version bump
    // changes every digest (and therefore every cache address).
    std::string salted = "eqx-sweep-schema-v";
    salted += std::to_string(schema_version);
    salted += '\n';
    salted += canonical_blob;

    CellDigest d;
    // Two independent offset bases give 128 bits from one stream; each
    // half is a full-avalanche 64-bit hash on its own.
    d.hi = fnvMix(salted, 0xcbf29ce484222325ULL);
    d.lo = fnvMix(salted, 0x6c62272e07bb0142ULL);
    return d;
}

CellDigest
cellDigest(ExperimentRunner &runner, const std::string &scheme,
           const WorkloadProfile &profile, int schema_version)
{
    PreparedCell cell = runner.prepareCell(scheme, profile);
    KvBlob blob;
    serializeSystemConfig(cell.sc, blob);
    serializeWorkloadProfile(cell.wp, blob);
    return digestBlob(blob.canonical(), schema_version);
}

} // namespace eqx
