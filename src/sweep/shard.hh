/**
 * @file
 * Deterministic matrix sharding and journal merging (DESIGN.md §13).
 *
 * A cell's shard is a pure function of (sweep seed, canonical scheme
 * name, benchmark name) through deriveStreamSeed — the same identity
 * hash the decorrelated-seed machinery uses — so shard i of N owns a
 * fixed, disjoint subset of the matrix no matter which machine runs
 * it, how many workers it uses, or in what order cells finish.
 * Indices stay canonical (unsharded), which is what lets mergeJournals
 * interleave shard outputs back into the exact single-process order.
 */

#ifndef EQX_SWEEP_SHARD_HH
#define EQX_SWEEP_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eqx {

/** Parse "i/N" (0 <= i < N, N >= 1); returns false on anything else. */
bool parseShardSpec(const std::string &spec, int &index, int &count);

/**
 * The shard that owns cell (scheme, benchmark) under @p seed. Callers
 * pass the *canonical* scheme name (CellResult::scheme) so aliases
 * land on the same shard.
 */
int cellShard(std::uint64_t seed, const std::string &scheme,
              const std::string &benchmark, int shard_count);

/** Outcome of a journal merge. */
struct MergeResult
{
    std::size_t cells = 0;   ///< records in the merged output
    std::size_t inputs = 0;  ///< journal files read
    std::string error;       ///< empty on success

    bool ok() const { return error.empty(); }
};

/**
 * Merge shard journals into canonical sweep JSONL: read every input
 * tolerantly (loadJournal), deduplicate by digest, order by canonical
 * matrix index, and write one public JSONL record (cellJsonRecord
 * schema — the fabric-private fields are stripped) per cell to
 * @p out_path. The output is byte-identical to the jsonlPath stream a
 * single-process sweep of the same matrix writes, modulo wall_ms and
 * record order (the single-process stream is completion-ordered; the
 * merge is canonical-ordered — compare through `sweep merge` on both
 * sides, which canonicalizes order too).
 *
 * Errors (reported, nothing written): two records with the same
 * digest but different indices or result bytes, two different digests
 * claiming the same index, or a non-contiguous index set (a missing
 * shard) unless @p allow_gaps.
 */
MergeResult mergeJournals(const std::vector<std::string> &inputs,
                          const std::string &out_path,
                          bool allow_gaps = false);

} // namespace eqx

#endif // EQX_SWEEP_SHARD_HH
