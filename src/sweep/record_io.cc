#include "sweep/record_io.hh"

namespace eqx {

std::string
cellRecordLine(const CellRecord &rec)
{
    const RunResult &r = rec.cell.result;
    JsonObject o;
    o.field("_digest", rec.digest.hex())
        .field("_schema", rec.schema)
        .field("_cell", static_cast<std::uint64_t>(rec.cell.index))
        // Energy breakdown rides along under private keys: it is part
        // of RunResult but not of the public sweep JSONL schema, and a
        // cache hit must restore it for benches that read it.
        .field("_e_buffer", r.energy.buffer)
        .field("_e_crossbar", r.energy.crossbar)
        .field("_e_alloc", r.energy.allocators)
        .field("_e_links", r.energy.links)
        .field("_e_ilinks", r.energy.interposerLinks)
        .field("_e_leak", r.energy.leakage)
        .merge(cellJsonObject(rec.cell));
    return o.str();
}

bool
parseCellRecord(const std::string &line, CellRecord &out,
                int expect_schema)
{
    JsonFields f;
    if (!parseFlatJson(line, f))
        return false;

    auto it = f.find("_digest");
    if (it == f.end() ||
        !CellDigest::fromHex(it->second.text, out.digest))
        return false;
    it = f.find("_schema");
    if (it == f.end() || it->second.kind != JsonValue::Kind::Number)
        return false;
    out.schema = it->second.asInt();
    if (out.schema != expect_schema)
        return false;
    it = f.find("_cell");
    if (it == f.end() || it->second.kind != JsonValue::Kind::Number)
        return false;

    if (!f.count("benchmark") || !f.count("scheme") ||
        !f.count("completed"))
        return false;

    auto str = [&](const char *k) {
        auto i = f.find(k);
        return i == f.end() ? std::string() : i->second.text;
    };
    auto num = [&](const char *k) {
        auto i = f.find(k);
        return i == f.end() ? 0.0 : i->second.asDouble();
    };
    auto u64 = [&](const char *k) -> std::uint64_t {
        auto i = f.find(k);
        return i == f.end() ? 0 : i->second.asU64();
    };
    auto boolean = [&](const char *k) {
        auto i = f.find(k);
        return i != f.end() && i->second.asBool();
    };

    CellResult &c = out.cell;
    c = CellResult{};
    c.index = static_cast<std::size_t>(f["_cell"].asU64());
    c.benchmark = str("benchmark");
    c.scheme = str("scheme");
    c.failed = boolean("failed");
    c.attempts = static_cast<int>(u64("attempts"));
    c.wallMs = num("wall_ms");
    c.error = str("error");

    RunResult &r = c.result;
    r.completed = boolean("completed");
    r.cycles = u64("cycles");
    r.execNs = num("exec_ns");
    r.totalInsts = u64("total_insts");
    r.ipc = num("ipc");
    r.energyPj = num("energy_pj");
    r.edp = num("edp");
    r.areaMm2 = num("area_mm2");
    r.reqQueueNs = num("req_queue_ns");
    r.reqNetNs = num("req_net_ns");
    r.repQueueNs = num("rep_queue_ns");
    r.repNetNs = num("rep_net_ns");
    r.reqPackets = u64("req_packets");
    r.repPackets = u64("rep_packets");
    r.requestBits = u64("request_bits");
    r.replyBits = u64("reply_bits");
    r.reqP50Ns = num("req_p50_ns");
    r.reqP95Ns = num("req_p95_ns");
    r.reqP99Ns = num("req_p99_ns");
    r.repP50Ns = num("rep_p50_ns");
    r.repP95Ns = num("rep_p95_ns");
    r.repP99Ns = num("rep_p99_ns");
    r.maxEirLoadPackets = u64("max_eir_load");

    r.energy.buffer = num("_e_buffer");
    r.energy.crossbar = num("_e_crossbar");
    r.energy.allocators = num("_e_alloc");
    r.energy.links = num("_e_links");
    r.energy.interposerLinks = num("_e_ilinks");
    r.energy.leakage = num("_e_leak");

    if (f.count("fault_armed")) {
        r.faultArmed = boolean("fault_armed");
        r.degraded = boolean("degraded");
        r.faultSeqPackets = u64("fault_seq_packets");
        r.faultDelivered = u64("fault_delivered");
        r.faultDuplicates = u64("fault_dups");
        r.faultRetx = u64("fault_retx");
        r.faultLost = u64("fault_lost");
        r.faultWormsDropped = u64("fault_worms_dropped");
        r.faultFlitsDropped = u64("fault_flits_dropped");
        r.faultCreditsReconciled = u64("fault_credits_reconciled");
        r.faultMaskedPorts = static_cast<int>(u64("fault_masked_ports"));
        // delivered_ratio / retx_rate are derived columns; the
        // re-render recomputes them from the counters above.
    }

    if (f.count("storm_armed")) {
        r.stormArmed = boolean("storm_armed");
        r.stormOffered = u64("storm_offered");
        r.stormInjected = u64("storm_injected");
        r.stormDelivered = u64("storm_delivered");
        r.stormDropped = u64("storm_dropped");
        // delivered_ratio / storm_saturated are derived columns.
    }
    if (f.count("coh_armed")) {
        r.cohArmed = boolean("coh_armed");
        r.cohInvalidations = u64("coh_invalidations");
        r.cohInvAcks = u64("coh_inv_acks");
    }

    for (const auto &[k, v] : f)
        if (k.size() > 2 && k[0] == 'm' && k[1] == '.')
            r.metrics.set(k.substr(2), v.asDouble());

    return true;
}

} // namespace eqx
