#include "sweep/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/logging.hh"

namespace eqx {

JournalLoad
loadJournal(const std::string &path, int expect_schema)
{
    JournalLoad load;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return load;
    load.existed = true;

    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    std::map<std::pair<std::uint64_t, std::uint64_t>, bool> seen;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            // No terminating newline: the torn tail of a crashed
            // append. Everything before `pos` stands; this does not.
            break;
        }
        std::string line = text.substr(pos, nl - pos);
        CellRecord rec;
        if (!parseCellRecord(line, rec, expect_schema)) {
            // A *complete* line that does not parse is interior
            // corruption, not a crash artifact — flag for rewrite but
            // keep scanning: later records are still good data.
            load.needsRewrite = true;
            pos = nl + 1;
            continue;
        }
        auto key = std::make_pair(rec.digest.hi, rec.digest.lo);
        if (!seen.emplace(key, true).second) {
            // Duplicate digest (an interrupted run resumed and
            // re-journaled): same simulation, keep the first.
            pos = nl + 1;
            if (!load.needsRewrite)
                load.validBytes = pos;
            continue;
        }
        load.records.push_back(std::move(rec));
        pos = nl + 1;
        if (!load.needsRewrite)
            load.validBytes = pos;
    }
    return load;
}

SweepJournal::SweepJournal(const std::string &path, bool resume)
    : path_(path)
{
    if (resume) {
        JournalLoad load = loadJournal(path_);
        recovered_ = std::move(load.records);
        if (load.needsRewrite) {
            eqx_warn("journal ", path_, ": interior corruption, "
                     "rewriting ", recovered_.size(), " intact records");
            writer_ = std::make_unique<JsonlWriter>(path_);
            for (const auto &rec : recovered_)
                writer_->write(cellRecordLine(rec));
        } else {
            if (load.existed) {
                // Drop a torn trailing record so the append stream
                // starts on a clean line boundary.
                if (::truncate(path_.c_str(),
                               static_cast<off_t>(load.validBytes)) != 0)
                    eqx_fatal("cannot truncate journal ", path_, ": ",
                              std::strerror(errno));
            }
            writer_ = std::make_unique<JsonlWriter>(path_,
                                                    /*append=*/true);
        }
    } else {
        writer_ = std::make_unique<JsonlWriter>(path_);
    }

    for (std::size_t i = 0; i < recovered_.size(); ++i)
        byDigest_[{recovered_[i].digest.hi, recovered_[i].digest.lo}] = i;
}

const CellRecord *
SweepJournal::find(const CellDigest &digest) const
{
    auto it = byDigest_.find({digest.hi, digest.lo});
    return it == byDigest_.end() ? nullptr : &recovered_[it->second];
}

void
SweepJournal::append(const CellRecord &rec)
{
    writer_->write(cellRecordLine(rec));
    appended_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace eqx
