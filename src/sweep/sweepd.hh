/**
 * @file
 * sweepd: a long-lived sweep query service over a Unix-domain socket
 * (DESIGN.md §13). Clients send one flat-JSON query per line; the
 * server answers cells straight from the content-addressed cache and
 * schedules only the deltas — cells no query has computed before —
 * on the JobPool. Responses stream one record line per finished cell
 * (cache-served cells arrive first, simulated ones as they finish)
 * followed by a {"done":...} trailer, over a blocking socket, so a
 * slow client exerts backpressure on the sweep instead of ballooning
 * a buffer.
 *
 * Queries:
 *   {"cmd":"ping"}                          liveness check
 *   {"cmd":"stats"}                         lifetime counters
 *   {"cmd":"cells","schemes":"a,b",
 *    "benchmarks":"x,y"[,"seed":N]}         run/serve a sub-matrix
 *   {"cmd":"shutdown"}                      graceful drain + exit
 *
 * Connections are served sequentially: one accept loop, one query at
 * a time, each query free to use every pool worker. Shutdown drains —
 * the in-flight query finishes and streams its trailer before the
 * listener closes.
 */

#ifndef EQX_SWEEP_SWEEPD_HH
#define EQX_SWEEP_SWEEPD_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "sim/experiment.hh"
#include "sweep/record_io.hh"
#include "sweep/sweep_runner.hh"

namespace eqx {

/** Server configuration. */
struct SweepdConfig
{
    /** Socket path; bound at start(), unlinked at exit. */
    std::string socketPath;
    /**
     * The experiment template: geometry, seed, workers, tweaks.
     * A "cells" query selects schemes/benchmarks (and may override
     * the seed) inside this template; everything else is fixed for
     * the daemon's lifetime so digests stay comparable.
     */
    ExperimentConfig experiment;
    /** Cell cache root backing every answer (required). */
    std::string cacheDir;
};

class SweepdServer
{
  public:
    explicit SweepdServer(SweepdConfig cfg);
    ~SweepdServer();

    SweepdServer(const SweepdServer &) = delete;
    SweepdServer &operator=(const SweepdServer &) = delete;

    /**
     * Bind, listen, and spawn the accept loop. Returns false (with a
     * warning) when the socket cannot be set up.
     */
    bool start();

    /** Ask the loop to exit after the in-flight connection drains. */
    void requestStop();

    /** Block until the accept loop has exited. */
    void wait();

    /** requestStop() + wait(). Idempotent; the destructor calls it. */
    void stop();

    bool running() const { return running_.load(); }
    const std::string &socketPath() const { return cfg_.socketPath; }

    // Lifetime counters (across all connections).
    std::uint64_t connections() const { return connections_.load(); }
    std::uint64_t queries() const { return queries_.load(); }
    std::uint64_t cellsServed() const { return cellsServed_.load(); }
    std::uint64_t cacheServed() const { return cacheServed_.load(); }
    std::uint64_t simulated() const { return simulated_.load(); }

  private:
    void acceptLoop();
    void handleConnection(int fd);
    /** Handle one query line; returns false to close the connection. */
    bool handleQuery(int fd, const std::string &line);
    void handleCells(int fd, const JsonFields &q);

    SweepdConfig cfg_;
    int listenFd_ = -1;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> cellsServed_{0};
    std::atomic<std::uint64_t> cacheServed_{0};
    std::atomic<std::uint64_t> simulated_{0};
};

} // namespace eqx

#endif // EQX_SWEEP_SWEEPD_HH
