#include "sweep/sweep_runner.hh"

#include <memory>
#include <optional>

#include "common/logging.hh"
#include "sweep/cell_cache.hh"
#include "sweep/journal.hh"
#include "sweep/shard.hh"

namespace eqx {

namespace {

/** Where a finished cell's result came from. */
enum CellSource : std::uint8_t
{
    kSimulated = 0,
    kJournal,
    kCache,
};

/**
 * State shared between the hooks. The hooks are installed into the
 * ExperimentConfig *before* the runner copies it, but the digests are
 * only filled in after the runner exists (computing them needs
 * prepareCell) — a shared_ptr bridges that.
 */
struct FabricState
{
    std::vector<CellDigest> digests; ///< canonical index -> digest
    std::vector<std::uint8_t> source; ///< canonical index -> CellSource
    CellCache *cache = nullptr;
    SweepJournal *journal = nullptr;
};

} // namespace

SweepOutcome
runSweep(const ExperimentConfig &config, const SweepOptions &opt)
{
    eqx_assert(opt.shardCount >= 1 && opt.shardIndex >= 0 &&
                   opt.shardIndex < opt.shardCount,
               "bad shard spec ", opt.shardIndex, "/", opt.shardCount);

    std::optional<CellCache> cache;
    std::optional<SweepJournal> journal;
    auto state = std::make_shared<FabricState>();
    if (!opt.cacheDir.empty()) {
        cache.emplace(opt.cacheDir);
        state->cache = &*cache;
    }
    if (!opt.journalPath.empty()) {
        journal.emplace(opt.journalPath, opt.resume);
        state->journal = &*journal;
    }

    ExperimentConfig ec = config;

    if (opt.shardCount > 1) {
        auto prev = ec.cellFilter;
        int idx = opt.shardIndex;
        int cnt = opt.shardCount;
        std::uint64_t seed = ec.seed;
        ec.cellFilter = [prev, seed, idx, cnt](const CellResult &c) {
            if (prev && !prev(c))
                return false;
            return cellShard(seed, c.scheme, c.benchmark, cnt) == idx;
        };
    }

    if (state->cache || state->journal) {
        auto prev = ec.cellLookup;
        ec.cellLookup = [state, prev](CellResult &c) {
            const CellDigest &d = state->digests[c.index];
            std::size_t idx = c.index;
            if (state->journal) {
                if (const CellRecord *rec = state->journal->find(d)) {
                    c = rec->cell;
                    c.index = idx;
                    state->source[idx] = kJournal;
                    return true;
                }
            }
            if (state->cache) {
                CellResult hit;
                if (state->cache->lookup(d, hit)) {
                    hit.index = idx;
                    c = std::move(hit);
                    state->source[idx] = kCache;
                    return true;
                }
            }
            return prev ? prev(c) : false;
        };
    }

    {
        auto prev = ec.cellDone;
        auto onCell = opt.onCell;
        ec.cellDone = [state, onCell, prev](const CellResult &c) {
            const CellDigest &d = state->digests[c.index];
            std::uint8_t src = state->source[c.index];
            if (!c.failed) {
                // Journal every owned success — including cache-served
                // cells, so each shard's journal alone is a complete
                // record of its cells and merges need no cache access.
                if (state->journal && src != kJournal) {
                    CellRecord rec;
                    rec.digest = d;
                    rec.cell = c;
                    state->journal->append(rec);
                }
                // Store back unless the cache itself served it; this
                // also warms the cache from journal-recovered cells.
                if (state->cache && src != kCache)
                    state->cache->store(d, c);
            }
            if (onCell)
                onCell(d, c);
            if (prev)
                prev(c);
        };
    }

    ExperimentRunner runner(ec);

    // Digests in canonical (workload-major, scheme-minor) order,
    // including cells other shards own: hooks index this vector by
    // the cell's canonical index. Single-threaded on purpose — the
    // first EquiNox cell lazily builds the shared design here.
    state->digests.reserve(ec.workloads.size() * ec.schemes.size());
    for (const auto &wp : ec.workloads)
        for (const auto &key : ec.schemes)
            state->digests.push_back(cellDigest(runner, key, wp));
    state->source.assign(state->digests.size(), kSimulated);

    SweepOutcome out;
    out.totalCells = state->digests.size();
    out.cells = runner.runMatrix();
    out.shardCells = out.cells.size();

    for (const auto &c : out.cells) {
        switch (state->source[c.index]) {
          case kJournal: ++out.journalHits; break;
          case kCache:   ++out.cacheHits;  break;
          default:       ++out.simulated;  break;
        }
        if (c.failed)
            ++out.failed;
    }
    if (cache)
        out.stored = cache->stores();

    out.stats.set("sweep.total_cells",
                  static_cast<double>(out.totalCells));
    out.stats.set("sweep.shard_cells",
                  static_cast<double>(out.shardCells));
    out.stats.set("sweep.journal_hits",
                  static_cast<double>(out.journalHits));
    out.stats.set("sweep.cache_hits",
                  static_cast<double>(out.cacheHits));
    out.stats.set("sweep.simulated", static_cast<double>(out.simulated));
    out.stats.set("sweep.failed", static_cast<double>(out.failed));
    if (cache)
        cache->exportStats(out.stats);
    return out;
}

std::vector<CellId>
listCellDigests(const ExperimentConfig &config, int shard_count)
{
    eqx_assert(shard_count >= 1, "bad shard count ", shard_count);

    ExperimentRunner runner(config);
    std::vector<CellId> ids;
    ids.reserve(config.workloads.size() * config.schemes.size());
    for (const auto &wp : config.workloads)
        for (const auto &key : config.schemes) {
            CellId id;
            id.index = ids.size();
            id.scheme = SchemeRegistry::instance().byName(key).name();
            id.benchmark = wp.name;
            id.digest = cellDigest(runner, key, wp);
            id.shard = cellShard(config.seed, id.scheme, id.benchmark,
                                 shard_count);
            ids.push_back(std::move(id));
        }
    return ids;
}

} // namespace eqx
