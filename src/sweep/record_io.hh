/**
 * @file
 * Cache/journal record IO: the on-disk record schema of the sweep
 * fabric and an exact round-trip between it and CellResult.
 *
 * A record is one flat JSON object: the sweep JSONL record
 * (cellJsonObject) prefixed with fabric metadata (`_digest`,
 * `_schema`, `_cell`) and the energy-breakdown extras (`_e_*`) the
 * public JSONL schema does not carry. The round trip is exact:
 * re-rendering a parsed record reproduces the original bytes
 * (doubles are written with to_chars(general, 17) — the C-locale
 * %.17g bytes, independent of LC_NUMERIC — and re-parsed with
 * from_chars), which is
 * what lets a fully cache-served sweep emit JSONL byte-identical —
 * modulo wall_ms — to the run that populated the cache.
 *
 * The flat-JSON value model and parser live in runner/flat_json.hh
 * (shared with the traffic trace wire format); this header pulls them
 * in so existing record_io users compile unchanged. parseFlatJson is
 * also the wire parser of the sweepd query protocol.
 */

#ifndef EQX_SWEEP_RECORD_IO_HH
#define EQX_SWEEP_RECORD_IO_HH

#include <cstdint>
#include <string>

#include "runner/flat_json.hh"
#include "sim/experiment.hh"
#include "sweep/digest.hh"

namespace eqx {

/** One cache/journal record. */
struct CellRecord
{
    CellDigest digest;
    int schema = kSweepSchemaVersion;
    CellResult cell; ///< cell.index carries the canonical matrix index
};

/** Render a record (see file header for the schema). */
std::string cellRecordLine(const CellRecord &rec);

/**
 * Parse a record line. Returns false on malformed JSON, a missing or
 * malformed `_digest`/`_schema`/`_cell` header, or a schema version
 * other than @p expect_schema — all of which the cache counts as
 * corrupt entries.
 */
bool parseCellRecord(const std::string &line, CellRecord &out,
                     int expect_schema = kSweepSchemaVersion);

} // namespace eqx

#endif // EQX_SWEEP_RECORD_IO_HH
