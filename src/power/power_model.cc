#include "power/power_model.hh"

namespace eqx {

PowerModel::PowerModel(PowerParams params) : params_(params) {}

double
PowerModel::routerAreaMm2(int in_ports, int out_ports, int vcs,
                          int vc_depth_flits, int flit_bits) const
{
    double xbar = params_.aXbarPerPortBit * in_ports * out_ports *
                  flit_bits;
    double bufs = params_.aBufPerBit * in_ports * vcs * vc_depth_flits *
                  flit_bits;
    double alloc = params_.aAllocPerReq *
                   static_cast<double>(in_ports + out_ports) *
                   (in_ports + out_ports) * vcs * vcs;
    double vcctl = params_.aVcControlPerBit * in_ports * vcs * flit_bits;
    return xbar + bufs + alloc + vcctl;
}

double
PowerModel::niAreaMm2(int num_buffers, int vc_depth_flits,
                      int flit_bits) const
{
    double bufs = params_.aBufPerBit * num_buffers * vc_depth_flits *
                  flit_bits;
    return params_.aNiLogicPerBit * flit_bits +
           params_.aNiPerBuffer * num_buffers + bufs;
}

double
PowerModel::networkAreaMm2(const Network &net) const
{
    const NocParams &p = net.params();
    const Topology &topo = net.topology();
    double area = 0;
    // Routers and NIs live in different spaces once the topology is
    // concentrated (one router per c x c tile block, one NI per tile).
    // Keep the per-tile router+NI interleaving where the spaces
    // coincide: float summation order is part of the byte-identity
    // contract on the mesh.
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        if (!topo.concentrated() || topo.tileSlot(n) == 0) {
            const Router &r = net.router(topo.routerOf(n));
            area += routerAreaMm2(r.numInputPorts(), r.numOutputPorts(),
                                  p.vcsPerPort, p.vcDepthFlits,
                                  p.flitBits);
        }
        area += niAreaMm2(net.ni(n).numInjBuffers(), p.vcDepthFlits,
                          p.flitBits);
    }
    return area;
}

double
PowerModel::networkLeakageMw(const Network &net) const
{
    return networkAreaMm2(net) * params_.leakageMwPerMm2;
}

EnergyBreakdown
PowerModel::networkEnergyPj(const Network &net, Cycle core_cycles,
                            double intp_link_hops) const
{
    const NocParams &p = net.params();
    const NetworkActivity &a = net.activity();
    double bits = p.flitBits;

    EnergyBreakdown e;
    e.buffer = (a.bufferWrites * params_.eBufWritePerBit +
                a.bufferReads * params_.eBufReadPerBit) *
               bits;
    e.crossbar = a.xbarTraversals * params_.eXbarPerBit * bits;
    e.allocators = (a.vaGrants + a.saGrants) * params_.eAllocPerGrant;

    double hop_mm = params_.tilePitchMm;
    e.links = a.linkFlits * params_.eLinkPerBitMm * bits * hop_mm;
    e.interposerLinks = a.interposerLinkFlits *
                        params_.eIntpLinkPerBitMm * bits *
                        (intp_link_hops * hop_mm);

    double time_ns = cyclesToNs(core_cycles);
    e.leakage = networkLeakageMw(net) * time_ns; // mW * ns = pJ
    return e;
}

double
PowerModel::cyclesToNs(Cycle cycles) const
{
    return static_cast<double>(cycles) / params_.freqGhz;
}

} // namespace eqx
