/**
 * @file
 * DSENT-lite analytical power and area model for the NoC (28 nm-class
 * constants). Follows DSENT's component decomposition — input buffers,
 * crossbar, allocators, links (on-chip and interposer), leakage — and
 * is driven by the activity counters the networks collect, so relative
 * comparisons across schemes mirror the paper's methodology.
 */

#ifndef EQX_POWER_POWER_MODEL_HH
#define EQX_POWER_POWER_MODEL_HH

#include "noc/network.hh"

namespace eqx {

/** Technology / circuit constants. */
struct PowerParams
{
    double freqGhz = 1.126;   ///< PE/NoC clock (paper Table 1)
    double tilePitchMm = 1.2; ///< mesh hop wire length

    // Dynamic energy (pJ per bit unless noted).
    double eBufWritePerBit = 0.015;
    double eBufReadPerBit = 0.012;
    double eXbarPerBit = 0.020;
    double eAllocPerGrant = 0.50;      ///< pJ per VA/SA grant
    double eLinkPerBitMm = 0.060;      ///< on-chip RC wire
    double eIntpLinkPerBitMm = 0.045;  ///< interposer RDL wire

    // Area (mm^2 per unit).
    double aXbarPerPortBit = 1.6e-5;   ///< x inPorts x outPorts x bits
    double aBufPerBit = 3.1e-6;
    double aAllocPerReq = 6.0e-6;      ///< x ports^2 x vcs^2
    double aVcControlPerBit = 1.0e-6;  ///< x ports x vcs x bits
    double aNiLogicPerBit = 3.1e-5;    ///< NI core datapath, x flit bits
    double aNiPerBuffer = 0.001;       ///< demux/selector per buffer

    // Leakage: proportional to area.
    double leakageMwPerMm2 = 15.0;
};

/** One network's energy decomposition, in pJ. */
struct EnergyBreakdown
{
    double buffer = 0;
    double crossbar = 0;
    double allocators = 0;
    double links = 0;
    double interposerLinks = 0;
    double leakage = 0;

    double
    total() const
    {
        return buffer + crossbar + allocators + links + interposerLinks +
               leakage;
    }
};

/** Analytic model over constructed Network objects. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params = {});

    const PowerParams &params() const { return params_; }

    /** Area of one router from its structure. */
    double routerAreaMm2(int in_ports, int out_ports, int vcs,
                         int vc_depth_flits, int flit_bits) const;

    /** Area of one NI from its buffer count and flit width. */
    double niAreaMm2(int num_buffers, int vc_depth_flits,
                     int flit_bits) const;

    /** Total area of a constructed network (routers + NIs). */
    double networkAreaMm2(const Network &net) const;

    /** Leakage power of a network, mW. */
    double networkLeakageMw(const Network &net) const;

    /**
     * Dynamic + leakage energy of a network over elapsed core cycles.
     * Interposer link span defaults to 2 mesh hops (the EIR links).
     */
    EnergyBreakdown networkEnergyPj(const Network &net,
                                    Cycle core_cycles,
                                    double intp_link_hops = 2.0) const;

    /** Core cycles -> nanoseconds at the configured clock. */
    double cyclesToNs(Cycle cycles) const;

    /** Energy-delay product in pJ*ns. */
    static double
    edp(double energy_pj, double time_ns)
    {
        return energy_pj * time_ns;
    }

  private:
    PowerParams params_;
};

} // namespace eqx

#endif // EQX_POWER_POWER_MODEL_HH
