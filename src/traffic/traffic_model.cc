#include "traffic/traffic_model.hh"

#include "common/logging.hh"
#include "traffic/storm.hh"

namespace eqx {

std::unique_ptr<TrafficSource>
TrafficInstance::makeSource(int pe_index)
{
    eqx_panic("traffic model is open-loop: no per-PE source for PE ",
              pe_index);
}

std::unique_ptr<StormEndpoint>
TrafficInstance::makeEndpoint(int, NodeId node, PacketInjector *,
                              const AddressMap *, const PacketSizes *)
{
    eqx_panic("traffic model is closed-loop: no storm endpoint at node ",
              node);
}

} // namespace eqx
