/**
 * @file
 * Process-wide registry of TrafficModels, mirroring the SchemeRegistry
 * contract: case-insensitive string keys (canonical names + aliases),
 * explicit registration in registration.hh order, byName fatal with
 * the registered key list. A default-constructed registry is empty,
 * for tests.
 */

#ifndef EQX_TRAFFIC_TRAFFIC_REGISTRY_HH
#define EQX_TRAFFIC_TRAFFIC_REGISTRY_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "traffic/traffic_model.hh"

namespace eqx {

class TrafficRegistry
{
  public:
    /** The global registry, populated with every built-in model. */
    static TrafficRegistry &instance();

    /** An empty registry (tests build private ones). */
    TrafficRegistry() = default;

    TrafficRegistry(const TrafficRegistry &) = delete;
    TrafficRegistry &operator=(const TrafficRegistry &) = delete;
    TrafficRegistry(TrafficRegistry &&) = default;
    TrafficRegistry &operator=(TrafficRegistry &&) = default;

    /**
     * Register a model under its name and aliases. Rejects (returns
     * false, registers nothing) when any key collides with an earlier
     * registration.
     */
    bool add(std::unique_ptr<TrafficModel> model);

    /** Case-insensitive lookup by name or alias; null when unknown. */
    const TrafficModel *find(std::string_view key) const;

    /** Like find(), but fatal (listing the registered keys). */
    const TrafficModel &byName(std::string_view key) const;

    /** Every registered model, in registration order. */
    const std::vector<const TrafficModel *> &models() const
    {
        return order_;
    }

    /** Canonical names, registration order. */
    std::vector<std::string> names() const;

    /** "synthetic, storm-diurnal, ..." — for errors and usage. */
    std::string keyList() const;

  private:
    std::vector<std::unique_ptr<TrafficModel>> owned_;
    std::vector<const TrafficModel *> order_;
    std::map<std::string, const TrafficModel *, std::less<>> byKey_;
};

/** Canonical names of every registered traffic model. */
std::vector<std::string> allTrafficModelNames();

} // namespace eqx

#endif // EQX_TRAFFIC_TRAFFIC_REGISTRY_HH
