/**
 * @file
 * Traffic subsystem knobs carried inside SystemConfig. Plain data so
 * sim/scheme.hh can include it without linking eqx_traffic; every
 * field is hashed by serializeTrafficConfig (config_serial.cc) so
 * sweep-cache cells from different traffic models can never collide.
 */

#ifndef EQX_TRAFFIC_TRAFFIC_CONFIG_HH
#define EQX_TRAFFIC_TRAFFIC_CONFIG_HH

#include <cstdint>
#include <string>

namespace eqx {

/** Configuration of the traffic model driving the endpoints. */
struct TrafficConfig
{
    /** Registered model name ("" = "synthetic", the legacy default). */
    std::string model;

    /**
     * Trace hook: "" (off), "capture:<path>" (record the op stream the
     * PEs consume), or "replay:<path>" (drive the PEs from a captured
     * file instead of the synthetic generator). Composes with the
     * closed-loop models only.
     */
    std::string trace;

    // ---- open-loop storm knobs (storm-* models) ----

    /** Peak offered load: packet arrivals per 1000 core cycles per
     *  injector tile. The profile shapes rate(t) below this ceiling. */
    double stormRatePerK = 64.0;

    /** Cycles of arrival generation; the run then drains and ends. */
    std::uint64_t stormHorizon = 50'000;

    /** Per-tile backlog cap (packets); arrivals beyond it are dropped
     *  — the open-loop loss signal under saturation. */
    int stormQueueCap = 64;

    /** Trough fraction of the peak rate (diurnal floor / flash base). */
    double stormTrough = 0.25;

    /** Fraction of storm requests that are writes. */
    double stormWriteFrac = 0.2;

    /** Hotspot model: how many CBs are hot and what fraction of the
     *  arrivals concentrate on them. */
    int stormHotCbs = 1;
    double stormHotFrac = 0.9;

    // ---- coherence-style multi-flow knobs (coherence model) ----

    /** Reserve this many top VCs as a third VC class for the
     *  Invalidate/InvAck multicast flows (classVcs networks only;
     *  needs vcsPerPort >= coherenceVcs + 2). 0 = share the
     *  direction's class. */
    int coherenceVcs = 0;

    /** Sharer-set granularity: cache lines per tracked region. */
    int cohRegionLines = 4;

    /** True when every knob still holds its default (the legacy
     *  synthetic path, byte-identical to pre-traffic builds). */
    bool
    isDefault() const
    {
        return (model.empty() || model == "synthetic") && trace.empty() &&
               coherenceVcs == 0;
    }
};

} // namespace eqx

#endif // EQX_TRAFFIC_TRAFFIC_CONFIG_HH
