/**
 * @file
 * Adversarial hotspot storm: constant peak-rate offered load with a
 * configurable fraction of arrivals concentrated on a few hot CBs —
 * the worst case for few-side ejection and EIR load balance.
 */

#include "traffic/registration.hh"
#include "traffic/storm.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

class StormHotspotModel final : public TrafficModel
{
  public:
    std::string name() const override { return "storm-hotspot"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"hotspot"};
    }

    std::string
    describe() const override
    {
        return "open-loop constant peak rate with stormHotFrac of "
               "arrivals aimed at the first stormHotCbs cache banks";
    }

    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const override
    {
        return std::make_unique<StormInstance>(b, StormShape::Hotspot);
    }
};

} // namespace

void
registerStormHotspotTraffic(TrafficRegistry &r)
{
    r.add(std::make_unique<StormHotspotModel>());
}

} // namespace eqx
