/**
 * @file
 * Diurnal-ramp storm: offered load ramps linearly from the trough up
 * to the peak at mid-horizon and back — the "day cycle" of a
 * million-user service, compressed into one run.
 */

#include "traffic/registration.hh"
#include "traffic/storm.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

class StormDiurnalModel final : public TrafficModel
{
  public:
    std::string name() const override { return "storm-diurnal"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"diurnal"};
    }

    std::string
    describe() const override
    {
        return "open-loop triangle ramp: trough -> peak -> trough "
               "offered load over the storm horizon";
    }

    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const override
    {
        return std::make_unique<StormInstance>(b, StormShape::Diurnal);
    }
};

} // namespace

void
registerStormDiurnalTraffic(TrafficRegistry &r)
{
    r.add(std::make_unique<StormDiurnalModel>());
}

} // namespace eqx
