/**
 * @file
 * Open-loop storm machinery shared by the storm-* traffic models: a
 * rate-driven arrival process per non-CB tile, decoupled from the PE
 * latency-tolerance window. Arrivals accumulate through a fractional
 * accumulator (no libm, bit-exact everywhere), queue in a bounded
 * backlog against NI admission backpressure, and are *dropped* — the
 * open-loop loss signal — when the backlog is full. Request/reply
 * bookkeeping measures delivered ratio and saturation.
 */

#ifndef EQX_TRAFFIC_STORM_HH
#define EQX_TRAFFIC_STORM_HH

#include <cstdint>
#include <deque>

#include "common/rng.hh"
#include "noc/network_interface.hh"
#include "traffic/traffic_model.hh"

namespace eqx {

/** Rate-profile shape of a storm model. */
enum class StormShape
{
    Diurnal, ///< triangle ramp: trough -> peak -> trough over horizon
    Flash,   ///< flash crowd: trough base, peak step in [0.4h, 0.6h)
    Hotspot, ///< constant peak, arrivals concentrated on hot CBs
};

/** Packet::tag sentinel marking storm-generated traffic. */
inline constexpr std::uint64_t kStormTag = 0x53544f524dULL; // "STORM"

/**
 * One tile's open-loop injector + reply sink. Replaces the PE at a
 * non-CB tile when a storm model is active.
 */
class StormEndpoint final : public PacketSink
{
  public:
    StormEndpoint(NodeId node, StormShape shape, const TrafficConfig &tc,
                  std::uint64_t stream_seed, PacketInjector *inj,
                  const AddressMap *amap, const PacketSizes *sizes);

    NodeId node() const { return node_; }

    /** Advance one core cycle: generate arrivals, push the backlog. */
    void tick(Cycle now);

    /** Horizon passed, backlog flushed, every reply returned. */
    bool done() const;

    /** Global time wheel (DESIGN.md §14). */
    Cycle
    nextDueCycle(Cycle now) const
    {
        if (now < horizon_ || !backlog_.empty())
            return now + 1;
        return kNeverCycle;
    }

    std::uint64_t offered() const { return offered_; }
    std::uint64_t injected() const { return injected_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t dropped() const { return dropped_; }

    // PacketSink: replies are always consumed immediately.
    bool canAccept(const PacketPtr &) override { return true; }
    void accept(const PacketPtr &pkt, Cycle core_now) override;

  private:
    /** Offered arrivals per core cycle at @p now (profile-shaped). */
    double ratePerCycle(Cycle now) const;

    /** Pick the target line address (hotspot concentrates on hot CBs). */
    Addr pickAddr();

    NodeId node_;
    StormShape shape_;
    TrafficConfig tc_;
    PacketInjector *injector_;
    const AddressMap *amap_;
    const PacketSizes *sizes_;
    Rng rng_;

    Cycle horizon_;
    Cycle lastNow_ = 0;
    double acc_ = 0; ///< fractional arrival accumulator

    std::deque<PacketPtr> backlog_;
    int outstanding_ = 0;

    std::uint64_t offered_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

/** TrafficInstance shared by the three storm model TUs. */
class StormInstance final : public TrafficInstance
{
  public:
    StormInstance(const TrafficBuild &b, StormShape shape);

    bool openLoop() const override { return true; }

    std::unique_ptr<StormEndpoint>
    makeEndpoint(int pe_index, NodeId node, PacketInjector *inj,
                 const AddressMap *amap,
                 const PacketSizes *sizes) override;

  private:
    TrafficConfig tc_;
    std::uint64_t seed_;
    StormShape shape_;
};

} // namespace eqx

#endif // EQX_TRAFFIC_STORM_HH
