/**
 * @file
 * The default traffic model: the legacy closed-loop PeTraceGen path
 * behind the registry. Byte-identical to the pre-registry wiring —
 * each PE gets a SyntheticSource seeded exactly as System used to
 * seed PeTraceGen directly.
 */

#include "traffic/registration.hh"
#include "traffic/traffic_model.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

class SyntheticInstance final : public TrafficInstance
{
  public:
    SyntheticInstance(const WorkloadProfile &profile, std::uint64_t seed)
        : profile_(profile), seed_(seed)
    {
    }

    std::unique_ptr<TrafficSource>
    makeSource(int pe_index) override
    {
        return std::make_unique<SyntheticSource>(
            PeTraceGen(profile_, pe_index, seed_));
    }

  private:
    WorkloadProfile profile_;
    std::uint64_t seed_;
};

class SyntheticModel final : public TrafficModel
{
  public:
    std::string name() const override { return "synthetic"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"default"};
    }

    std::string
    describe() const override
    {
        return "closed-loop per-PE synthetic streams (the workload "
               "profiles; the legacy default)";
    }

    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const override
    {
        return std::make_unique<SyntheticInstance>(b.profile, b.seed);
    }
};

} // namespace

void
registerSyntheticTraffic(TrafficRegistry &r)
{
    r.add(std::make_unique<SyntheticModel>());
}

} // namespace eqx
