#include "traffic/traffic_registry.hh"

#include <cctype>

#include "common/logging.hh"
#include "traffic/registration.hh"

namespace eqx {

namespace {

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

TrafficRegistry &
TrafficRegistry::instance()
{
    static TrafficRegistry reg = [] {
        TrafficRegistry r;
        registerSyntheticTraffic(r);
        registerStormDiurnalTraffic(r);
        registerStormFlashTraffic(r);
        registerStormHotspotTraffic(r);
        registerCoherenceTraffic(r);
        return r;
    }();
    return reg;
}

bool
TrafficRegistry::add(std::unique_ptr<TrafficModel> model)
{
    std::vector<std::string> keys;
    keys.push_back(lowered(model->name()));
    for (const auto &a : model->aliases())
        keys.push_back(lowered(a));
    for (const auto &k : keys)
        if (byKey_.count(k))
            return false;

    const TrafficModel *m = model.get();
    owned_.push_back(std::move(model));
    order_.push_back(m);
    for (const auto &k : keys)
        byKey_[k] = m;
    return true;
}

const TrafficModel *
TrafficRegistry::find(std::string_view key) const
{
    auto it = byKey_.find(lowered(key));
    return it == byKey_.end() ? nullptr : it->second;
}

const TrafficModel &
TrafficRegistry::byName(std::string_view key) const
{
    const TrafficModel *m = find(key);
    if (!m)
        eqx_fatal("unknown traffic model '", std::string(key),
                  "'; registered models: ", keyList());
    return *m;
}

std::vector<std::string>
TrafficRegistry::names() const
{
    std::vector<std::string> out;
    for (const TrafficModel *m : order_)
        out.push_back(m->name());
    return out;
}

std::string
TrafficRegistry::keyList() const
{
    std::string out;
    for (const TrafficModel *m : order_) {
        if (!out.empty())
            out += ", ";
        out += m->name();
    }
    return out;
}

std::vector<std::string>
allTrafficModelNames()
{
    return TrafficRegistry::instance().names();
}

} // namespace eqx
