/**
 * @file
 * Trace capture/replay wire format and sources (DESIGN.md §16). A
 * trace file is flat-JSON lines — rendered by the JsonObject builder
 * and parsed by the strict parseFlatJson, the same canonical format
 * as the sweep records — so capture -> replay -> capture reproduces
 * the original bytes exactly:
 *
 *   {"_eqx_trace":1,"pes":N,"workload":"bfs"}        header
 *   {"pe":0,"gap":3,"w":0,"addr":262144}             one mem op
 *   ...                                              (grouped by PE)
 *   {"pe":0,"tail":5,"mem":123,"insts":1000}         per-PE footer
 *   ...
 *   {"_eqx_trace_end":N}                             end marker
 *
 * `gap` counts the non-mem instructions issued before the op; `tail`
 * the non-mem instructions after the last op. Ops are grouped by PE
 * (PE 0's ops, then PE 1's, ...) so capture bytes are a pure function
 * of the op streams — identical across schemes, tick modes and
 * interleavings. The end marker plus per-PE footers (with op/inst
 * counts) make truncation detectable at any cut point.
 */

#ifndef EQX_TRAFFIC_TRACE_IO_HH
#define EQX_TRAFFIC_TRACE_IO_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "traffic/source.hh"

namespace eqx {

/** One captured memory op: its pre-gap and the access itself. */
struct TraceMemOp
{
    std::uint64_t gap = 0; ///< non-mem instructions before this op
    bool isWrite = false;
    Addr addr = 0;
};

/** One PE's captured stream. */
struct PeTrace
{
    std::vector<TraceMemOp> ops;
    std::uint64_t tail = 0;  ///< trailing non-mem instructions
    std::uint64_t insts = 0; ///< total instructions (gaps + ops + tail)
};

/** A parsed trace file. */
struct TraceData
{
    std::string workload;
    std::vector<PeTrace> pes;
};

/**
 * Parsed trace= spec: comma-separated "capture:<path>" / "replay:<path>"
 * directives (at most one of each; both allowed, which is how the
 * round-trip test re-captures a replayed stream). Fatal on anything
 * else.
 */
struct TraceSpec
{
    std::string capturePath;
    std::string replayPath;
};

TraceSpec parseTraceSpec(const std::string &spec);

/**
 * Load a trace file. Returns false with a clear @p err (naming the
 * offending line) on IO errors, malformed JSON, header/footer
 * mismatches, or truncation. Counting checks make any cut file fail:
 * every PE needs a footer whose op/inst counts match its op lines,
 * and the end marker must close the file.
 */
bool readTraceFile(const std::string &path, TraceData &out,
                   std::string &err);

/** Accumulates the op streams the PEs consume; written at run end. */
class TraceCapture
{
  public:
    TraceCapture(int num_pes, std::string workload);

    /** Record one consumed instruction of @p pe. */
    void record(int pe, const TraceOp &op);

    /** Render and write the file; false with @p err on IO failure. */
    bool writeFile(const std::string &path, std::string &err) const;

  private:
    std::string workload_;
    std::vector<PeTrace> pes_;
    std::vector<std::uint64_t> pendingGap_;
};

/** Pass-through source that records every consumed op. */
class CaptureSource final : public TrafficSource
{
  public:
    CaptureSource(std::unique_ptr<TrafficSource> inner,
                  TraceCapture *capture, int pe)
        : inner_(std::move(inner)), capture_(capture), pe_(pe)
    {
    }

    bool
    next(TraceOp &op) override
    {
        if (!inner_->next(op))
            return false;
        capture_->record(pe_, op);
        return true;
    }

    std::uint64_t remaining() const override { return inner_->remaining(); }
    std::uint64_t total() const override { return inner_->total(); }

  private:
    std::unique_ptr<TrafficSource> inner_;
    TraceCapture *capture_;
    int pe_;
};

/** Replays one PE's captured stream, instruction for instruction. */
class ReplaySource final : public TrafficSource
{
  public:
    explicit ReplaySource(const PeTrace *t)
        : t_(t), remaining_(t->insts),
          gapLeft_(t->ops.empty() ? 0 : t->ops.front().gap)
    {
    }

    bool next(TraceOp &op) override;
    std::uint64_t remaining() const override { return remaining_; }
    std::uint64_t total() const override { return t_->insts; }

  private:
    const PeTrace *t_;
    std::uint64_t remaining_;
    std::uint64_t gapLeft_;
    std::size_t idx_ = 0;
};

} // namespace eqx

#endif // EQX_TRAFFIC_TRACE_IO_HH
