/**
 * @file
 * Closed-loop traffic source: the per-PE op stream a ProcessingElement
 * consumes through its issue/L1/MSHR pipeline. Header-only so eqx_gpu
 * can hold sources without linking eqx_traffic; the concrete models
 * (synthetic, trace replay/capture) live in the traffic library.
 */

#ifndef EQX_TRAFFIC_SOURCE_HH
#define EQX_TRAFFIC_SOURCE_HH

#include <cstdint>
#include <utility>

#include "workloads/trace_gen.hh"

namespace eqx {

/** One PE's instruction stream (closed-loop models). */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Produce the next instruction; false when the stream is done. */
    virtual bool next(TraceOp &op) = 0;

    /** Instructions left to issue. */
    virtual std::uint64_t remaining() const = 0;

    /** Stream length (instructions). */
    virtual std::uint64_t total() const = 0;
};

/** The legacy default: a PeTraceGen behind the source interface. */
class SyntheticSource final : public TrafficSource
{
  public:
    explicit SyntheticSource(PeTraceGen gen) : gen_(std::move(gen)) {}

    bool next(TraceOp &op) override { return gen_.next(op); }
    std::uint64_t remaining() const override { return gen_.remaining(); }
    std::uint64_t total() const override { return gen_.total(); }

  private:
    PeTraceGen gen_;
};

} // namespace eqx

#endif // EQX_TRAFFIC_SOURCE_HH
