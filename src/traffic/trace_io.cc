#include "traffic/trace_io.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/logging.hh"
#include "runner/flat_json.hh"
#include "runner/jsonl.hh"

namespace eqx {

TraceSpec
parseTraceSpec(const std::string &spec)
{
    TraceSpec out;
    if (spec.empty())
        eqx_fatal("empty trace spec; expected capture:<path>, "
                  "replay:<path>, or both comma-separated");
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string part = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (part.rfind("capture:", 0) == 0) {
            std::string p = part.substr(8);
            if (p.empty())
                eqx_fatal("trace capture directive needs a path: '",
                          spec, "'");
            if (!out.capturePath.empty())
                eqx_fatal("trace spec '", spec,
                          "' has more than one capture directive");
            out.capturePath = p;
        } else if (part.rfind("replay:", 0) == 0) {
            std::string p = part.substr(7);
            if (p.empty())
                eqx_fatal("trace replay directive needs a path: '",
                          spec, "'");
            if (!out.replayPath.empty())
                eqx_fatal("trace spec '", spec,
                          "' has more than one replay directive");
            out.replayPath = p;
        } else {
            eqx_fatal("bad trace directive '", part, "' in spec '", spec,
                      "'; expected capture:<path> or replay:<path>");
        }
    }
    return out;
}

TraceCapture::TraceCapture(int num_pes, std::string workload)
    : workload_(std::move(workload)),
      pes_(static_cast<std::size_t>(num_pes)),
      pendingGap_(static_cast<std::size_t>(num_pes), 0)
{
}

void
TraceCapture::record(int pe, const TraceOp &op)
{
    auto i = static_cast<std::size_t>(pe);
    ++pes_[i].insts;
    if (!op.isMem) {
        ++pendingGap_[i];
        return;
    }
    pes_[i].ops.push_back(TraceMemOp{pendingGap_[i], op.isWrite, op.addr});
    pendingGap_[i] = 0;
}

bool
TraceCapture::writeFile(const std::string &path, std::string &err) const
{
    // Temp-file + atomic rename (the cell-cache idiom): concurrent
    // captures to one path — e.g. a multi-scheme matrix where every
    // cell records the same scheme-independent bytes — never expose a
    // torn file. The counter disambiguates pool threads in-process.
    static std::atomic<std::uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
        err = "cannot open trace file '" + tmp + "' for writing";
        return false;
    }
    JsonObject header;
    header.field("_eqx_trace", 1)
        .field("pes", static_cast<std::uint64_t>(pes_.size()))
        .field("workload", workload_);
    f << header.str() << '\n';
    for (std::size_t i = 0; i < pes_.size(); ++i) {
        for (const TraceMemOp &m : pes_[i].ops) {
            JsonObject o;
            o.field("pe", static_cast<std::uint64_t>(i))
                .field("gap", m.gap)
                .field("w", m.isWrite ? 1 : 0)
                .field("addr", static_cast<std::uint64_t>(m.addr));
            f << o.str() << '\n';
        }
        JsonObject footer;
        footer.field("pe", static_cast<std::uint64_t>(i))
            .field("tail", pendingGap_[i])
            .field("mem", static_cast<std::uint64_t>(pes_[i].ops.size()))
            .field("insts", pes_[i].insts);
        f << footer.str() << '\n';
    }
    JsonObject end;
    end.field("_eqx_trace_end", static_cast<std::uint64_t>(pes_.size()));
    f << end.str() << '\n';
    f.close();
    if (!f) {
        err = "write error on trace file '" + tmp + "'";
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = "cannot rename trace file '" + tmp + "' to '" + path + "'";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

namespace {

bool
fieldU64(const JsonFields &f, const char *key, std::uint64_t &out)
{
    auto it = f.find(key);
    if (it == f.end() || it->second.kind != JsonValue::Kind::Number)
        return false;
    out = it->second.asU64();
    return true;
}

} // namespace

bool
readTraceFile(const std::string &path, TraceData &out, std::string &err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err = "cannot open trace file '" + path + "'";
        return false;
    }
    out = TraceData{};

    auto fail = [&](std::size_t lineno, const std::string &what) {
        err = "trace file '" + path + "' line " +
              std::to_string(lineno) + ": " + what;
        return false;
    };

    std::string line;
    std::size_t lineno = 0;

    // Header.
    if (!std::getline(f, line))
        return fail(1, "empty file (missing header)");
    ++lineno;
    JsonFields fields;
    if (!parseFlatJson(line, fields))
        return fail(lineno, "malformed JSON");
    std::uint64_t version = 0, num_pes = 0;
    if (!fieldU64(fields, "_eqx_trace", version) || version != 1)
        return fail(lineno, "not a version-1 trace header");
    if (!fieldU64(fields, "pes", num_pes) || num_pes == 0)
        return fail(lineno, "header missing a positive 'pes' count");
    if (auto it = fields.find("workload"); it != fields.end())
        out.workload = it->second.text;
    out.pes.resize(num_pes);

    // Op lines and footers, grouped by PE in order.
    std::vector<bool> closed(num_pes, false);
    bool saw_end = false;
    while (std::getline(f, line)) {
        ++lineno;
        if (!parseFlatJson(line, fields))
            return fail(lineno, "malformed JSON");
        std::uint64_t end_pes = 0;
        if (fieldU64(fields, "_eqx_trace_end", end_pes)) {
            if (end_pes != num_pes)
                return fail(lineno, "end marker PE count mismatch");
            saw_end = true;
            if (std::getline(f, line))
                return fail(lineno + 1, "data after the end marker");
            break;
        }
        std::uint64_t pe = 0;
        if (!fieldU64(fields, "pe", pe) || pe >= num_pes)
            return fail(lineno, "missing or out-of-range 'pe'");
        if (closed[pe])
            return fail(lineno, "op after PE footer");
        PeTrace &t = out.pes[pe];
        std::uint64_t tail = 0;
        if (fieldU64(fields, "tail", tail)) {
            // Footer: validate the counting invariants now so a file
            // truncated inside this PE's ops cannot pass.
            std::uint64_t mem = 0, insts = 0;
            if (!fieldU64(fields, "mem", mem) ||
                !fieldU64(fields, "insts", insts))
                return fail(lineno, "footer missing 'mem'/'insts'");
            if (mem != t.ops.size())
                return fail(lineno, "footer op count mismatch");
            std::uint64_t gaps = tail;
            for (const TraceMemOp &m : t.ops)
                gaps += m.gap;
            if (insts != gaps + t.ops.size())
                return fail(lineno, "footer instruction count mismatch");
            t.tail = tail;
            t.insts = insts;
            closed[pe] = true;
            continue;
        }
        std::uint64_t gap = 0, w = 0, addr = 0;
        if (!fieldU64(fields, "gap", gap) || !fieldU64(fields, "w", w) ||
            !fieldU64(fields, "addr", addr) || w > 1)
            return fail(lineno, "malformed op line");
        t.ops.push_back(
            TraceMemOp{gap, w == 1, static_cast<Addr>(addr)});
    }

    if (!saw_end)
        return fail(lineno, "truncated: missing end marker");
    for (std::uint64_t i = 0; i < num_pes; ++i)
        if (!closed[i])
            return fail(lineno,
                        "truncated: missing footer for PE " +
                            std::to_string(i));
    return true;
}

bool
ReplaySource::next(TraceOp &op)
{
    if (remaining_ == 0)
        return false;
    --remaining_;
    op = TraceOp{};
    if (idx_ >= t_->ops.size())
        return true; // tail non-mem instructions
    if (gapLeft_ > 0) {
        --gapLeft_;
        return true;
    }
    const TraceMemOp &m = t_->ops[idx_];
    op.isMem = true;
    op.isWrite = m.isWrite;
    op.addr = m.addr;
    ++idx_;
    gapLeft_ = idx_ < t_->ops.size() ? t_->ops[idx_].gap : 0;
    return true;
}

} // namespace eqx
