#include "traffic/storm.hh"

#include "common/logging.hh"
#include "runner/stream_seed.hh"

namespace eqx {

namespace {

/** Line-index space per CB: 2^20 lines (64 MB) keeps the L2 missing. */
constexpr std::uint64_t kStormLinesPerCb = 1ULL << 20;

} // namespace

StormEndpoint::StormEndpoint(NodeId node, StormShape shape,
                             const TrafficConfig &tc,
                             std::uint64_t stream_seed,
                             PacketInjector *inj, const AddressMap *amap,
                             const PacketSizes *sizes)
    : node_(node), shape_(shape), tc_(tc), injector_(inj), amap_(amap),
      sizes_(sizes), rng_(stream_seed),
      horizon_(static_cast<Cycle>(tc.stormHorizon))
{
    eqx_assert(tc_.stormRatePerK > 0, "storm rate must be positive");
    eqx_assert(tc_.stormQueueCap >= 1, "storm queue cap must be >= 1");
}

double
StormEndpoint::ratePerCycle(Cycle now) const
{
    double peak = tc_.stormRatePerK / 1000.0;
    double trough = tc_.stormTrough;
    switch (shape_) {
      case StormShape::Diurnal: {
          // Piecewise-linear triangle (no libm: bit-exact everywhere):
          // trough at the horizon's edges, peak at its midpoint.
          double phase = static_cast<double>(now) /
                         static_cast<double>(horizon_);
          double tri = phase < 0.5 ? 2.0 * phase : 2.0 - 2.0 * phase;
          return peak * (trough + (1.0 - trough) * tri);
      }
      case StormShape::Flash: {
          // Flash crowd: a step spike over the middle fifth.
          Cycle lo = horizon_ * 2 / 5, hi = horizon_ * 3 / 5;
          return peak * (now >= lo && now < hi ? 1.0 : trough);
      }
      case StormShape::Hotspot:
          return peak;
    }
    return peak;
}

Addr
StormEndpoint::pickAddr()
{
    auto num_cbs = static_cast<std::uint64_t>(amap_->cbNodes.size());
    std::uint64_t cb;
    if (shape_ == StormShape::Hotspot) {
        auto hot = static_cast<std::uint64_t>(tc_.stormHotCbs);
        if (hot > num_cbs)
            hot = num_cbs;
        cb = rng_.chance(tc_.stormHotFrac) ? rng_.nextBounded(hot)
                                           : rng_.nextBounded(num_cbs);
    } else {
        cb = rng_.nextBounded(num_cbs);
    }
    std::uint64_t line = rng_.nextBounded(kStormLinesPerCb) * num_cbs + cb;
    return line * static_cast<Addr>(amap_->lineBytes);
}

void
StormEndpoint::tick(Cycle now)
{
    lastNow_ = now;
    if (now < horizon_) {
        acc_ += ratePerCycle(now);
        while (acc_ >= 1.0) {
            acc_ -= 1.0;
            ++offered_;
            if (static_cast<int>(backlog_.size()) >= tc_.stormQueueCap) {
                ++dropped_; // open-loop loss: the backlog is saturated
                continue;
            }
            bool is_write = rng_.chance(tc_.stormWriteFrac);
            Addr addr = pickAddr();
            PacketType t = is_write ? PacketType::WriteRequest
                                    : PacketType::ReadRequest;
            backlog_.push_back(makePacket(t, node_, amap_->cbNodeOf(addr),
                                          sizes_->bitsFor(t), addr,
                                          kStormTag));
        }
    }
    // Open-loop NI admission: push until the NI refuses — the backlog
    // (not a latency-tolerance window) is the only throttle.
    while (!backlog_.empty() && injector_->tryInject(backlog_.front())) {
        backlog_.pop_front();
        ++injected_;
        ++outstanding_;
    }
}

bool
StormEndpoint::done() const
{
    return lastNow_ >= horizon_ && backlog_.empty() && outstanding_ == 0;
}

void
StormEndpoint::accept(const PacketPtr &pkt, Cycle)
{
    eqx_assert(isReply(pkt->type),
               "storm endpoint received a request packet");
    eqx_assert(pkt->tag == kStormTag,
               "non-storm reply delivered to a storm endpoint");
    ++delivered_;
    --outstanding_;
}

StormInstance::StormInstance(const TrafficBuild &b, StormShape shape)
    : tc_(b.traffic), seed_(b.seed), shape_(shape)
{
}

std::unique_ptr<StormEndpoint>
StormInstance::makeEndpoint(int, NodeId node, PacketInjector *inj,
                            const AddressMap *amap,
                            const PacketSizes *sizes)
{
    // Per-node decorrelated stream, hashed (not forked) so the arrival
    // pattern is independent of endpoint construction order.
    return std::make_unique<StormEndpoint>(
        node, shape_, tc_,
        deriveStreamSeed(seed_, "storm", static_cast<std::uint64_t>(node)),
        inj, amap, sizes);
}

} // namespace eqx
