/**
 * @file
 * Pluggable traffic models (DESIGN.md §16). A TrafficModel is a
 * stateless factory registered once with the TrafficRegistry; building
 * it against one run's configuration yields a TrafficInstance, which
 * hands the System either per-PE closed-loop sources (makeSource) or
 * rate-driven open-loop storm endpoints (makeEndpoint) that replace
 * the PEs at non-CB tiles.
 */

#ifndef EQX_TRAFFIC_TRAFFIC_MODEL_HH
#define EQX_TRAFFIC_TRAFFIC_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/endpoint.hh"
#include "noc/params.hh"
#include "traffic/source.hh"
#include "traffic/traffic_config.hh"
#include "workloads/profiles.hh"

namespace eqx {

class StormEndpoint;

/** Everything a model sees when instantiated for one run. */
struct TrafficBuild
{
    const TrafficConfig &traffic;
    const WorkloadProfile &profile;
    std::uint64_t seed = 1;
    int numPes = 0; ///< non-CB tiles (injector endpoints)
    int numCbs = 0;
};

/** One run's worth of traffic state. */
class TrafficInstance
{
  public:
    virtual ~TrafficInstance() = default;

    /** Open-loop models build storm endpoints instead of PE sources. */
    virtual bool openLoop() const { return false; }

    /** Coherence-style models arm the CB sharer directory. */
    virtual bool wantsCoherence() const { return false; }

    /** Per-PE op stream (closed-loop models; panics when open-loop). */
    virtual std::unique_ptr<TrafficSource> makeSource(int pe_index);

    /** Per-tile storm endpoint (open-loop models only). */
    virtual std::unique_ptr<StormEndpoint>
    makeEndpoint(int pe_index, NodeId node, PacketInjector *inj,
                 const AddressMap *amap, const PacketSizes *sizes);
};

/** A registered traffic model (stateless factory). */
class TrafficModel
{
  public:
    virtual ~TrafficModel() = default;

    /** Canonical name, e.g. "storm-flash". */
    virtual std::string name() const = 0;

    /** Extra lookup keys (case-insensitive, like the name). */
    virtual std::vector<std::string> aliases() const { return {}; }

    /** One-line description for usage text. */
    virtual std::string describe() const = 0;

    /** Instantiate for one run. */
    virtual std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const = 0;
};

} // namespace eqx

#endif // EQX_TRAFFIC_TRAFFIC_MODEL_HH
