/**
 * @file
 * Registration hooks of the built-in traffic models, one translation
 * unit per model (the SchemeRegistry pattern): the registry calls
 * these explicitly instead of relying on static-initializer order.
 */

#ifndef EQX_TRAFFIC_REGISTRATION_HH
#define EQX_TRAFFIC_REGISTRATION_HH

namespace eqx {

class TrafficRegistry;

void registerSyntheticTraffic(TrafficRegistry &r);   // synthetic.cc
void registerStormDiurnalTraffic(TrafficRegistry &r); // storm_diurnal.cc
void registerStormFlashTraffic(TrafficRegistry &r);   // storm_flash.cc
void registerStormHotspotTraffic(TrafficRegistry &r); // storm_hotspot.cc
void registerCoherenceTraffic(TrafficRegistry &r);    // coherence.cc

} // namespace eqx

#endif // EQX_TRAFFIC_REGISTRATION_HH
