/**
 * @file
 * Flash-crowd storm: trough-level background load with a full-rate
 * step spike over the middle fifth of the horizon — the sudden
 * stampede that probes saturation headroom and recovery.
 */

#include "traffic/registration.hh"
#include "traffic/storm.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

class StormFlashModel final : public TrafficModel
{
  public:
    std::string name() const override { return "storm-flash"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"flash", "flash-crowd"};
    }

    std::string
    describe() const override
    {
        return "open-loop flash crowd: trough base rate with a peak "
               "step over the middle fifth of the horizon";
    }

    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const override
    {
        return std::make_unique<StormInstance>(b, StormShape::Flash);
    }
};

} // namespace

void
registerStormFlashTraffic(TrafficRegistry &r)
{
    r.add(std::make_unique<StormFlashModel>());
}

} // namespace eqx
