/**
 * @file
 * Coherence-style multi-flow traffic, modeled on the sesc-pleasetm
 * MESI traffic shape: the closed-loop synthetic streams run as usual,
 * but the CBs track a sharer set per cache-line region and every
 * write to a region with other sharers fans out Invalidate packets
 * (reply direction) that the sharer PEs answer with InvAcks (request
 * direction) — a multicast third flow that stresses reply injection
 * very differently than request/reply pairs. The protocol is
 * relaxed (writes do not wait for acks): it reproduces the *traffic*,
 * not MESI's consistency guarantees.
 */

#include "traffic/registration.hh"
#include "traffic/traffic_model.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

class CoherenceInstance final : public TrafficInstance
{
  public:
    CoherenceInstance(const WorkloadProfile &profile, std::uint64_t seed)
        : profile_(profile), seed_(seed)
    {
    }

    bool wantsCoherence() const override { return true; }

    std::unique_ptr<TrafficSource>
    makeSource(int pe_index) override
    {
        // Same closed-loop streams as the synthetic default; the
        // coherence flows are CB-side reactions to them.
        return std::make_unique<SyntheticSource>(
            PeTraceGen(profile_, pe_index, seed_));
    }

  private:
    WorkloadProfile profile_;
    std::uint64_t seed_;
};

class CoherenceModel final : public TrafficModel
{
  public:
    std::string name() const override { return "coherence"; }

    std::vector<std::string>
    aliases() const override
    {
        return {"mesi"};
    }

    std::string
    describe() const override
    {
        return "closed-loop streams plus CB sharer-set directories: "
               "writes multicast Invalidates, sharers answer InvAcks";
    }

    std::unique_ptr<TrafficInstance>
    build(const TrafficBuild &b) const override
    {
        return std::make_unique<CoherenceInstance>(b.profile, b.seed);
    }
};

} // namespace

void
registerCoherenceTraffic(TrafficRegistry &r)
{
    r.add(std::make_unique<CoherenceModel>());
}

} // namespace eqx
