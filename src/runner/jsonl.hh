/**
 * @file
 * Minimal JSON-object building and thread-safe JSONL streaming, used
 * by the sweep engine to export one self-describing record per
 * completed (scheme, benchmark) cell while the sweep is still
 * running. No external JSON dependency: records are flat objects of
 * strings, numbers and booleans, which this builder covers.
 */

#ifndef EQX_RUNNER_JSONL_HH
#define EQX_RUNNER_JSONL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace eqx {

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Builds one flat JSON object, preserving field insertion order. */
class JsonObject
{
  public:
    JsonObject &field(const std::string &key, const std::string &v);
    JsonObject &field(const std::string &key, const char *v);
    JsonObject &field(const std::string &key, double v);
    JsonObject &field(const std::string &key, std::uint64_t v);
    JsonObject &field(const std::string &key, std::int64_t v);
    JsonObject &field(const std::string &key, int v);
    JsonObject &field(const std::string &key, bool v);

    /** Splice every field of @p other in after this object's own
     *  (caller keeps keys disjoint; duplicates are not checked). */
    JsonObject &merge(const JsonObject &other);

    bool empty() const { return first_; }

    /** The finished object, e.g. {"a":1,"b":"x"}. */
    std::string str() const;

  private:
    void key(const std::string &k);

    std::string body_;
    bool first_ = true;
};

/**
 * Append-only JSONL file: one JSON object per line, each write
 * serialized by a mutex and flushed so a crashed or killed sweep
 * still leaves every completed record on disk.
 */
class JsonlWriter
{
  public:
    /**
     * Opens (truncates) the file; fatal if it cannot be created. With
     * append = true existing records are kept and writes extend the
     * file — the journaled-resume mode of src/sweep (the caller is
     * responsible for truncating any torn trailing record first).
     */
    explicit JsonlWriter(const std::string &path, bool append = false);
    ~JsonlWriter();

    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    /** Write one record (the object's str(), no trailing newline). */
    void write(const std::string &json_object);

    std::size_t lines() const;
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *f_ = nullptr;
    mutable std::mutex mu_;
    std::size_t lines_ = 0;
};

} // namespace eqx

#endif // EQX_RUNNER_JSONL_HH
