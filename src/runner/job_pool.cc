#include "runner/job_pool.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace eqx {

using Clock = std::chrono::steady_clock;

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::TimedOut:
        return "timed-out";
      case JobStatus::Failed:
        return "failed";
    }
    return "?";
}

int
resolveWorkerCount(int requested)
{
    if (requested > 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/**
 * What the watchdog inspects: the deadline of the attempt currently
 * running on this worker, and the token it should trip. The worker
 * publishes a deadline before each attempt and clears it after.
 */
struct JobPool::WorkerSlot
{
    CancelToken token;
    /** Deadline as Clock ticks since epoch; 0 = no attempt running. */
    std::atomic<Clock::rep> deadline{0};
};

JobPool::JobPool(JobPoolConfig cfg) : cfg_(std::move(cfg))
{
    eqx_assert(cfg_.retries >= 0, "retries must be non-negative");
}

void
JobPool::workerLoop(int worker_id, std::size_t count, const JobFn &fn,
                    std::vector<JobReport> &reports,
                    std::vector<WorkerSlot> &slots)
{
    WorkerSlot &slot = slots[static_cast<std::size_t>(worker_id)];
    const bool watchdogged = cfg_.timeoutSec > 0;

    for (;;) {
        std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count)
            break;

        JobReport rep;
        if (cfg_.shortCircuit) {
            auto t0 = Clock::now();
            bool served = false;
            try {
                served = cfg_.shortCircuit(i);
            } catch (const std::exception &e) {
                eqx_warn("job ", i, " short-circuit hook threw: ",
                         e.what(), " — running the job instead");
            }
            if (served) {
                rep.status = JobStatus::Ok;
                rep.attempts = 0;
                rep.shortCircuited = true;
                rep.wallMs = std::chrono::duration<double, std::milli>(
                                 Clock::now() - t0)
                                 .count();
                reports[i] = rep;
                done_.fetch_add(1, std::memory_order_relaxed);
                if (cfg_.onJobDone) {
                    std::lock_guard<std::mutex> lock(doneMu_);
                    cfg_.onJobDone(i, rep);
                }
                continue;
            }
        }
        int max_attempts = 1 + cfg_.retries;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            slot.token.reset();
            if (watchdogged) {
                auto deadline =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(cfg_.timeoutSec));
                slot.deadline.store(deadline.time_since_epoch().count(),
                                    std::memory_order_release);
            }

            JobContext ctx;
            ctx.index = i;
            ctx.attempt = attempt;
            ctx.cancel = &slot.token;

            auto t0 = Clock::now();
            bool completed = false;
            rep.error.clear();
            try {
                completed = fn(ctx);
            } catch (const std::exception &e) {
                rep.error = e.what();
            } catch (...) {
                rep.error = "unknown exception";
            }
            auto t1 = Clock::now();
            slot.deadline.store(0, std::memory_order_release);

            rep.attempts = attempt + 1;
            rep.wallMs =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();
            if (completed) {
                rep.status = JobStatus::Ok;
                break;
            }
            rep.status = slot.token.cancelled() ? JobStatus::TimedOut
                                                : JobStatus::Failed;
            if (attempt + 1 < max_attempts)
                eqx_warn("job ", i, " ", jobStatusName(rep.status),
                         rep.error.empty() ? "" : ": ", rep.error,
                         " — retrying (attempt ", attempt + 2, "/",
                         max_attempts, ")");
        }

        reports[i] = rep;
        done_.fetch_add(1, std::memory_order_relaxed);
        if (!rep.ok())
            failed_.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.onJobDone) {
            std::lock_guard<std::mutex> lock(doneMu_);
            cfg_.onJobDone(i, rep);
        }
    }
}

std::vector<JobReport>
JobPool::run(std::size_t count, const JobFn &fn)
{
    eqx_assert(fn, "JobPool needs a job function");
    std::vector<JobReport> reports(count);
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    failed_.store(0, std::memory_order_relaxed);
    total_.store(count, std::memory_order_relaxed);
    if (count == 0)
        return reports;

    int workers = resolveWorkerCount(cfg_.workers);
    if (static_cast<std::size_t>(workers) > count)
        workers = static_cast<int>(count);

    std::vector<WorkerSlot> slots(static_cast<std::size_t>(workers));

    // Service threads (watchdog, ticker) park on this condvar so the
    // end of the batch wakes them immediately instead of after their
    // poll interval.
    std::mutex svc_mu;
    std::condition_variable svc_cv;
    bool batch_done = false;

    auto svc_sleep = [&](std::chrono::milliseconds period) {
        std::unique_lock<std::mutex> lock(svc_mu);
        return !svc_cv.wait_for(lock, period,
                                [&] { return batch_done; });
    };

    std::vector<std::jthread> service;
    if (cfg_.timeoutSec > 0) {
        service.emplace_back([&] {
            while (svc_sleep(std::chrono::milliseconds(20))) {
                auto now = Clock::now().time_since_epoch().count();
                for (auto &slot : slots) {
                    auto dl =
                        slot.deadline.load(std::memory_order_acquire);
                    if (dl != 0 && now > dl)
                        slot.token.cancel();
                }
            }
        });
    }
    if (cfg_.progressEveryMs > 0) {
        service.emplace_back([&] {
            do {
                std::fprintf(stderr, "\r%s: %zu/%zu done, %zu failed   ",
                             cfg_.progressLabel.c_str(), completed(),
                             count, failed());
                std::fflush(stderr);
            } while (svc_sleep(
                std::chrono::milliseconds(cfg_.progressEveryMs)));
            std::fprintf(stderr, "\r%s: %zu/%zu done, %zu failed   \n",
                         cfg_.progressLabel.c_str(), completed(), count,
                         failed());
        });
    }

    {
        std::vector<std::jthread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back([&, w] {
                workerLoop(w, count, fn, reports, slots);
            });
    } // jthread dtors join every worker

    {
        std::lock_guard<std::mutex> lock(svc_mu);
        batch_done = true;
    }
    svc_cv.notify_all();
    service.clear(); // join watchdog/ticker

    return reports;
}

} // namespace eqx
