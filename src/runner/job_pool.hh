/**
 * @file
 * Thread-pooled execution of independent simulation jobs.
 *
 * The pool runs `count` jobs over N worker threads pulling indices
 * from a shared atomic ticket (a degenerate shared-queue scheduler:
 * jobs are identified by index, so "the queue" is just the next
 * unclaimed index). Results are deterministic regardless of worker
 * count because each job writes only into its own slot and derives
 * all randomness from job-local state — the pool itself introduces no
 * shared mutable state a job can observe.
 *
 * Robustness: an optional wall-clock watchdog cancels jobs that
 * exceed `timeoutSec` via a per-worker CancelToken (polled
 * cooperatively by the job), non-completing jobs are retried up to
 * `retries` times, and failures are reported per job instead of
 * aborting the batch.
 *
 * Observability: atomic completed/failed counters readable from any
 * thread, an optional stderr progress ticker, and a serialized
 * per-job completion callback.
 */

#ifndef EQX_RUNNER_JOB_POOL_HH
#define EQX_RUNNER_JOB_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.hh"

namespace eqx {

/** Terminal state of one job after all attempts. */
enum class JobStatus : std::uint8_t
{
    Ok = 0,   ///< job function returned true
    TimedOut, ///< last attempt was cancelled by the watchdog
    Failed,   ///< job reported non-completion or threw
};

const char *jobStatusName(JobStatus s);

/** Handed to the job function on every attempt. */
struct JobContext
{
    std::size_t index = 0;         ///< which job (0..count-1)
    int attempt = 0;               ///< 0 first try, 1 first retry, ...
    const CancelToken *cancel = nullptr; ///< poll and wind down when set
};

/** Per-job outcome record. */
struct JobReport
{
    JobStatus status = JobStatus::Ok;
    int attempts = 0;    ///< attempts actually made (0 if short-circuited)
    double wallMs = 0;   ///< wall-clock of the final attempt (or lookup)
    std::string error;   ///< exception text, when status == Failed
    /** Satisfied by the shortCircuit hook without running the job. */
    bool shortCircuited = false;

    bool ok() const { return status == JobStatus::Ok; }
};

struct JobPoolConfig
{
    /** Worker threads; 0 resolves to the hardware concurrency. */
    int workers = 0;
    /** Per-attempt wall-clock timeout in seconds; 0 disables the
     *  watchdog (required for bit-for-bit deterministic batches). */
    double timeoutSec = 0;
    /** Extra attempts after a non-completing first try. */
    int retries = 1;
    /** Print a progress ticker to stderr every this many ms (0 = off). */
    int progressEveryMs = 0;
    /** Label prefixing the ticker line. */
    std::string progressLabel = "jobs";
    /** Called (serialized, from worker threads) after each job ends. */
    std::function<void(std::size_t index, const JobReport &)> onJobDone;
    /**
     * Result-cache hook, consulted before a job's first attempt:
     * return true to satisfy the job without running it (the hook is
     * expected to deposit the result wherever the job function would
     * have). Short-circuited jobs count as completed, report
     * attempts == 0, and still fire onJobDone. Must be safe to call
     * concurrently for distinct indices.
     */
    std::function<bool(std::size_t index)> shortCircuit;
};

/** Clamp a requested worker count to something sane. */
int resolveWorkerCount(int requested);

/**
 * The pool itself. `run` is blocking and may be called repeatedly;
 * workers live only for the duration of one batch.
 */
class JobPool
{
  public:
    /**
     * A job: do the work for `ctx.index`, polling `ctx.cancel`.
     * Return true on completion; false requests a retry (and marks
     * the job Failed/TimedOut once attempts are exhausted). Must be
     * safe to call concurrently for distinct indices.
     */
    using JobFn = std::function<bool(const JobContext &)>;

    explicit JobPool(JobPoolConfig cfg = {});

    /** Execute jobs 0..count-1; returns one report per job, in order. */
    std::vector<JobReport> run(std::size_t count, const JobFn &fn);

    // Atomic progress counters, readable from any thread mid-batch.
    std::size_t completed() const
    {
        return done_.load(std::memory_order_relaxed);
    }
    std::size_t failed() const
    {
        return failed_.load(std::memory_order_relaxed);
    }
    std::size_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    const JobPoolConfig &config() const { return cfg_; }

  private:
    struct WorkerSlot;

    void workerLoop(int worker_id, std::size_t count, const JobFn &fn,
                    std::vector<JobReport> &reports,
                    std::vector<WorkerSlot> &slots);

    JobPoolConfig cfg_;
    std::mutex doneMu_; ///< serializes the onJobDone callback
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<std::size_t> failed_{0};
    std::atomic<std::size_t> total_{0};
};

} // namespace eqx

#endif // EQX_RUNNER_JOB_POOL_HH
