/**
 * @file
 * Strict flat-JSON value model and parser, shared by every on-disk
 * line format in the tree: the sweep cache/journal records and the
 * sweepd wire protocol (src/sweep/record_io) and the traffic trace
 * capture/replay files (src/traffic/trace_io).
 *
 * The parser handles exactly what the JsonObject builder (jsonl.hh)
 * emits: one flat object of string / number / bool / null values —
 * no nesting, no arrays. Number text is kept raw so integer fields
 * round-trip without passing through a double, and all conversions
 * are locale-independent (from_chars, never strtod), which is what
 * lets re-rendering a parsed line reproduce the original bytes.
 */

#ifndef EQX_RUNNER_FLAT_JSON_HH
#define EQX_RUNNER_FLAT_JSON_HH

#include <cstdint>
#include <map>
#include <string>

namespace eqx {

/** One parsed flat-JSON value. Number text is kept raw so integer
 *  fields round-trip without passing through a double. */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        String,
        Number,
        Bool,
        Null,
    };
    Kind kind = Kind::Null;
    std::string text; ///< unescaped string, or raw number token
    bool boolean = false;

    double asDouble() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    int asInt() const { return static_cast<int>(asI64()); }
    bool asBool() const { return kind == Kind::Bool && boolean; }
};

/** Field map of one flat JSON object, in key order of appearance. */
using JsonFields = std::map<std::string, JsonValue>;

/**
 * Parse one flat JSON object (no nesting, no arrays). Returns false
 * on any syntax error or on nested values. Duplicate keys keep the
 * last occurrence.
 */
bool parseFlatJson(const std::string &line, JsonFields &out);

} // namespace eqx

#endif // EQX_RUNNER_FLAT_JSON_HH
