#include "runner/jsonl.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace eqx {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonObject::key(const std::string &k)
{
    if (!first_)
        body_ += ',';
    first_ = false;
    body_ += '"';
    body_ += jsonEscape(k);
    body_ += "\":";
}

JsonObject &
JsonObject::field(const std::string &k, const std::string &v)
{
    key(k);
    body_ += '"';
    body_ += jsonEscape(v);
    body_ += '"';
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

JsonObject &
JsonObject::field(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        char buf[40];
        // to_chars(general, 17) round-trips every finite double and
        // emits exactly the C-locale %.17g bytes regardless of
        // LC_NUMERIC — JSONL output must never grow a comma decimal.
        auto r = std::to_chars(buf, buf + sizeof(buf), v,
                               std::chars_format::general, 17);
        body_.append(buf, r.ptr);
    } else {
        body_ += "null"; // JSON has no NaN/Inf
    }
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, std::uint64_t v)
{
    key(k);
    body_ += std::to_string(v);
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, std::int64_t v)
{
    key(k);
    body_ += std::to_string(v);
    return *this;
}

JsonObject &
JsonObject::field(const std::string &k, int v)
{
    return field(k, static_cast<std::int64_t>(v));
}

JsonObject &
JsonObject::field(const std::string &k, bool v)
{
    key(k);
    body_ += v ? "true" : "false";
    return *this;
}

JsonObject &
JsonObject::merge(const JsonObject &other)
{
    if (other.first_)
        return *this;
    if (!first_)
        body_ += ',';
    first_ = false;
    body_ += other.body_;
    return *this;
}

std::string
JsonObject::str() const
{
    return "{" + body_ + "}";
}

JsonlWriter::JsonlWriter(const std::string &path, bool append)
    : path_(path)
{
    f_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (!f_)
        eqx_fatal("cannot open '", path, "' for JSONL streaming");
}

JsonlWriter::~JsonlWriter()
{
    if (f_)
        std::fclose(f_);
}

void
JsonlWriter::write(const std::string &json_object)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::fputs(json_object.c_str(), f_);
    std::fputc('\n', f_);
    std::fflush(f_);
    ++lines_;
}

std::size_t
JsonlWriter::lines() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
}

} // namespace eqx
