/**
 * @file
 * Deterministic per-job seed derivation. Every sweep cell that wants
 * its own decorrelated Rng stream hashes (base seed, tags...) through
 * this instead of forking a shared generator — forking would make the
 * stream depend on job *execution order*, which a thread pool does
 * not preserve, whereas hashing the cell's identity is order-free.
 */

#ifndef EQX_RUNNER_STREAM_SEED_HH
#define EQX_RUNNER_STREAM_SEED_HH

#include <cstdint>
#include <string_view>

namespace eqx {

namespace detail {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace detail

/** Absorb one string tag (FNV-1a over bytes, then avalanche). */
constexpr std::uint64_t
seedAbsorb(std::uint64_t state, std::string_view tag)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis
    for (char c : tag) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL; // FNV prime
    }
    return detail::mix64(state ^ detail::mix64(h + 0x9e3779b97f4a7c15ULL));
}

/** Absorb one integer tag. */
constexpr std::uint64_t
seedAbsorb(std::uint64_t state, std::uint64_t tag)
{
    return detail::mix64(state ^ detail::mix64(tag + 0x9e3779b97f4a7c15ULL));
}

/**
 * Derive the seed of one job's private Rng stream from the sweep's
 * base seed and the job's identity tags, e.g.
 *   deriveStreamSeed(seed, schemeName(s), profile.name)
 * Same inputs always give the same seed; any tag change decorrelates.
 */
template <typename... Tags>
constexpr std::uint64_t
deriveStreamSeed(std::uint64_t base, Tags &&...tags)
{
    std::uint64_t state = detail::mix64(base ^ 0x6a09e667f3bcc909ULL);
    ((state = seedAbsorb(state, std::forward<Tags>(tags))), ...);
    return state;
}

} // namespace eqx

#endif // EQX_RUNNER_STREAM_SEED_HH
