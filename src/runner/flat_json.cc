#include "runner/flat_json.hh"

#include <charconv>
#include <cmath>
#include <limits>

namespace eqx {

namespace {

/** True when a validated JSON number carries a '.' or exponent part. */
bool
hasFractionOrExponent(const std::string &t)
{
    return t.find_first_of(".eE") != std::string::npos;
}

} // namespace

double
JsonValue::asDouble() const
{
    if (kind == Kind::Number) {
        // from_chars is locale-independent (strtod honors LC_NUMERIC,
        // which would mis-parse "1.5" under a comma-decimal locale).
        double v = 0.0;
        std::from_chars(text.data(), text.data() + text.size(), v);
        return v;
    }
    if (kind == Kind::Bool)
        return boolean ? 1.0 : 0.0;
    // null carries a non-finite double (the writer emits null for
    // NaN/Inf), so null -> NaN -> null round-trips.
    return std::nan("");
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number)
        return 0;
    // The parser has already enforced the JSON number grammar, so the
    // only cases are: plain non-negative integer (exact via from_chars,
    // saturating on overflow), negative (rejected to 0 instead of
    // wrapping), and fraction/exponent forms ("1.5e3") converted
    // through double instead of truncating at the first non-digit.
    if (!text.empty() && text[0] == '-')
        return 0;
    if (!hasFractionOrExponent(text)) {
        std::uint64_t v = 0;
        auto r = std::from_chars(text.data(), text.data() + text.size(), v);
        if (r.ec == std::errc::result_out_of_range)
            return std::numeric_limits<std::uint64_t>::max();
        return v;
    }
    double d = asDouble();
    if (!(d > 0.0))
        return 0;
    if (d >= 18446744073709551616.0) // 2^64
        return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(d);
}

std::int64_t
JsonValue::asI64() const
{
    if (kind != Kind::Number)
        return 0;
    if (!hasFractionOrExponent(text)) {
        std::int64_t v = 0;
        auto r = std::from_chars(text.data(), text.data() + text.size(), v);
        if (r.ec == std::errc::result_out_of_range)
            return text[0] == '-' ? std::numeric_limits<std::int64_t>::min()
                                  : std::numeric_limits<std::int64_t>::max();
        return v;
    }
    double d = asDouble();
    if (d >= 9223372036854775808.0) // 2^63
        return std::numeric_limits<std::int64_t>::max();
    if (d < -9223372036854775808.0)
        return std::numeric_limits<std::int64_t>::min();
    return static_cast<std::int64_t>(d);
}

namespace {

void
skipWs(const std::string &s, std::size_t &p)
{
    while (p < s.size() &&
           (s[p] == ' ' || s[p] == '\t' || s[p] == '\r' || s[p] == '\n'))
        ++p;
}

/** Parse a JSON string literal starting at the opening quote. */
bool
parseString(const std::string &s, std::size_t &p, std::string &out)
{
    if (p >= s.size() || s[p] != '"')
        return false;
    ++p;
    out.clear();
    while (p < s.size()) {
        char c = s[p];
        if (c == '"') {
            ++p;
            return true;
        }
        if (c == '\\') {
            if (p + 1 >= s.size())
                return false;
            char e = s[p + 1];
            p += 2;
            switch (e) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                  if (p + 4 > s.size())
                      return false;
                  unsigned v = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = s[p + static_cast<std::size_t>(i)];
                      v <<= 4;
                      if (h >= '0' && h <= '9')
                          v |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          v |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          v |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return false;
                  }
                  p += 4;
                  // The writer only emits \u00xx control escapes;
                  // decode the BMP anyway, reject surrogates.
                  if (v >= 0xd800 && v <= 0xdfff)
                      return false;
                  if (v < 0x80) {
                      out += static_cast<char>(v);
                  } else if (v < 0x800) {
                      out += static_cast<char>(0xc0 | (v >> 6));
                      out += static_cast<char>(0x80 | (v & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (v >> 12));
                      out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
                      out += static_cast<char>(0x80 | (v & 0x3f));
                  }
                  break;
              }
              default:
                  return false;
            }
            continue;
        }
        out += c;
        ++p;
    }
    return false; // unterminated
}

bool
parseValue(const std::string &s, std::size_t &p, JsonValue &out)
{
    if (p >= s.size())
        return false;
    char c = s[p];
    if (c == '"') {
        out.kind = JsonValue::Kind::String;
        return parseString(s, p, out.text);
    }
    if (s.compare(p, 4, "true") == 0) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        p += 4;
        return true;
    }
    if (s.compare(p, 5, "false") == 0) {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        p += 5;
        return true;
    }
    if (s.compare(p, 4, "null") == 0) {
        out.kind = JsonValue::Kind::Null;
        p += 4;
        return true;
    }
    // Number: the strict JSON grammar
    // -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? — strtod alone
    // would admit non-JSON spellings like "01", "+1", ".5" or "0x1".
    std::size_t start = p;
    auto digits = [&s, &p] {
        std::size_t n = 0;
        while (p < s.size() && s[p] >= '0' && s[p] <= '9')
            ++p, ++n;
        return n;
    };
    if (p < s.size() && s[p] == '-')
        ++p;
    if (p < s.size() && s[p] == '0')
        ++p; // a leading zero stands alone
    else if (digits() == 0)
        return false;
    if (p < s.size() && s[p] == '.') {
        ++p;
        if (digits() == 0)
            return false;
    }
    if (p < s.size() && (s[p] == 'e' || s[p] == 'E')) {
        ++p;
        if (p < s.size() && (s[p] == '-' || s[p] == '+'))
            ++p;
        if (digits() == 0)
            return false;
    }
    out.kind = JsonValue::Kind::Number;
    out.text = s.substr(start, p - start);
    return true;
}

} // namespace

bool
parseFlatJson(const std::string &line, JsonFields &out)
{
    out.clear();
    std::size_t p = 0;
    skipWs(line, p);
    if (p >= line.size() || line[p] != '{')
        return false;
    ++p;
    skipWs(line, p);
    if (p < line.size() && line[p] == '}') {
        ++p;
        skipWs(line, p);
        return p == line.size();
    }
    for (;;) {
        skipWs(line, p);
        std::string key;
        if (!parseString(line, p, key))
            return false;
        skipWs(line, p);
        if (p >= line.size() || line[p] != ':')
            return false;
        ++p;
        skipWs(line, p);
        JsonValue v;
        if (!parseValue(line, p, v))
            return false;
        out[key] = std::move(v);
        skipWs(line, p);
        if (p >= line.size())
            return false;
        if (line[p] == ',') {
            ++p;
            continue;
        }
        if (line[p] == '}') {
            ++p;
            skipWs(line, p);
            return p == line.size();
        }
        return false;
    }
}

} // namespace eqx
