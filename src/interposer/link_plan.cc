#include "interposer/link_plan.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "interposer/ubump.hh"

namespace eqx {

LinkPlan::LinkPlan(int one_cycle_reach_hops) : reach_(one_cycle_reach_hops)
{
    eqx_assert(reach_ >= 1, "one-cycle reach must be at least one hop");
}

void
LinkPlan::add(const InterposerLink &link)
{
    eqx_assert(link.src != link.dst, "interposer link must span two tiles");
    eqx_assert(link.widthBits > 0, "link width must be positive");
    links_.push_back(link);
}

std::vector<Segment>
LinkPlan::segments() const
{
    std::vector<Segment> segs;
    segs.reserve(links_.size());
    for (const auto &l : links_)
        segs.push_back(l.segment());
    return segs;
}

int
LinkPlan::crossings() const
{
    return countCrossings(segments());
}

int
LinkPlan::layersNeeded() const
{
    return rdlLayersNeeded(segments());
}

double
LinkPlan::totalLengthHops() const
{
    double total = 0;
    for (const auto &l : links_)
        total += l.hops();
    return total;
}

int
LinkPlan::maxHops() const
{
    int m = 0;
    for (const auto &l : links_)
        m = std::max(m, l.hops());
    return m;
}

bool
LinkPlan::needsRepeaters() const
{
    return maxHops() > reach_;
}

RdlReport
LinkPlan::report() const
{
    UbumpModel bumps;
    RdlReport r;
    r.numLinks = static_cast<int>(links_.size());
    for (const auto &l : links_)
        r.numWires += l.widthBits * (l.bidirectional ? 2 : 1);
    r.crossings = crossings();
    r.layersNeeded = layersNeeded();
    r.totalLengthHops = totalLengthHops();
    r.maxHops = maxHops();
    r.needsRepeaters = needsRepeaters();
    for (const auto &l : links_)
        r.numUbumps += bumps.bumpsForLink(l, /*round_trip=*/true);
    r.ubumpAreaMm2 = bumps.areaForBumps(r.numUbumps);
    return r;
}

std::string
LinkPlan::asciiMap(int width, int height) const
{
    // Mark link endpoints; sources as 'S', destinations as 'E', both 'B'.
    std::vector<char> grid(static_cast<std::size_t>(width * height), '.');
    auto at = [&](const Coord &c) -> char & {
        return grid[static_cast<std::size_t>(c.y * width + c.x)];
    };
    for (const auto &l : links_) {
        if (l.src.x >= 0 && l.src.x < width && l.src.y >= 0 &&
            l.src.y < height)
            at(l.src) = at(l.src) == 'E' ? 'B' : 'S';
        if (l.dst.x >= 0 && l.dst.x < width && l.dst.y >= 0 &&
            l.dst.y < height)
            at(l.dst) = at(l.dst) == 'S' ? 'B' : 'E';
    }
    std::ostringstream os;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x)
            os << grid[static_cast<std::size_t>(y * width + x)] << ' ';
        os << '\n';
    }
    return os.str();
}

} // namespace eqx
