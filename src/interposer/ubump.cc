#include "interposer/ubump.hh"

#include "interposer/link_plan.hh"

namespace eqx {

double
UbumpModel::bumpAreaMm2() const
{
    double pitch_mm = pitchUm / 1000.0;
    return pitch_mm * pitch_mm;
}

int
UbumpModel::bumpsForLink(const InterposerLink &link, bool round_trip) const
{
    int wires = link.widthBits * (link.bidirectional ? 2 : 1);
    int per_wire = round_trip ? bumpsPerWireRoundTrip
                              : bumpsPerWireSingleDrop;
    return wires * per_wire;
}

double
UbumpModel::areaForBumps(int bumps) const
{
    return bumps * bumpAreaMm2();
}

double
UbumpModel::faultExposureWeight(bool interposer, int span_hops) const
{
    if (!interposer)
        return 1.0;
    return static_cast<double>(bumpsPerWireRoundTrip) +
           static_cast<double>(span_hops < 0 ? 0 : span_hops);
}

} // namespace eqx
