/**
 * @file
 * Micro-bump (ubump) accounting for 2.5D face-down integration.
 * Every interposer wire consumes ubumps on the top die(s); at a 40 um
 * pitch this area is a first-order cost (paper Sections 3.2.3, 6.6).
 */

#ifndef EQX_INTERPOSER_UBUMP_HH
#define EQX_INTERPOSER_UBUMP_HH

namespace eqx {

struct InterposerLink;

/** Parameters and formulas for ubump area accounting. */
struct UbumpModel
{
    /** Bump pitch in micrometres (paper uses 40 um [22]). */
    double pitchUm = 40.0;

    /**
     * Bumps consumed at each end of a wire that lands on a die.
     * A processor-die-to-processor-die RDL wire (EquiNox CB->EIR link)
     * descends and re-ascends, so it needs 2 bumps per wire; the
     * paper's Interposer-CMesh accounting charges 1 per wire.
     */
    int bumpsPerWireRoundTrip = 2;
    int bumpsPerWireSingleDrop = 1;

    /** Area of one bump site at the given pitch, in mm^2. */
    double bumpAreaMm2() const;

    /** Bumps for one link; round_trip selects the 2-bump rule. */
    int bumpsForLink(const InterposerLink &link, bool round_trip) const;

    /** Total area for a bump count, in mm^2. */
    double areaForBumps(int bumps) const;

    /**
     * Relative fault exposure of one injection wire, used to weight
     * random fault-site selection (fault subsystem, DESIGN.md §11).
     * An interposer wire is exposed through each ubump it lands on
     * plus its RDL run (one unit per mesh hop spanned); an on-die NI
     * feed has unit exposure.
     */
    double faultExposureWeight(bool interposer, int span_hops) const;
};

} // namespace eqx

#endif // EQX_INTERPOSER_UBUMP_HH
