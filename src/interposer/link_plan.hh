/**
 * @file
 * Physical plan for the interposer redistribution layers (RDLs): the
 * set of die-to-die wires a design needs, with geometric analysis of
 * crossings, layer count, wire length and repeater requirements
 * (paper Sections 3.2.3 and 4.3).
 */

#ifndef EQX_INTERPOSER_LINK_PLAN_HH
#define EQX_INTERPOSER_LINK_PLAN_HH

#include <string>
#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"

namespace eqx {

/**
 * One interposer link: a point-to-point RDL wire bundle between two
 * tiles of the processor die (routed under the die).
 */
struct InterposerLink
{
    /** Source tile (where the driving ubump sits). */
    Coord src;
    /** Destination tile. */
    Coord dst;
    /** Bundle width in bits (one wire per bit). */
    int widthBits = 128;
    /** True if the link carries traffic both ways. */
    bool bidirectional = false;

    /** Manhattan span in hops (used for the repeater rule). */
    int hops() const { return manhattan(src, dst); }
    Segment segment() const { return {src, dst}; }
};

/** Summary of the physical viability analysis of a link plan. */
struct RdlReport
{
    int numLinks = 0;
    int numWires = 0;          ///< total signal wires (bits x directions)
    int crossings = 0;         ///< pairwise RDL cross-points
    int layersNeeded = 0;      ///< metal layers after crossing colouring
    double totalLengthHops = 0; ///< sum of Manhattan link spans
    int maxHops = 0;           ///< longest link span
    bool needsRepeaters = false; ///< any link longer than the 1-cycle reach
    int numUbumps = 0;         ///< see UbumpModel
    double ubumpAreaMm2 = 0.0;
};

/**
 * A collection of interposer links plus the geometry/viability queries
 * the MCTS evaluation and the Section 6.6 comparison need.
 */
class LinkPlan
{
  public:
    /** @param one_cycle_reach_hops longest span that fits one cycle
     *         without repeaters (paper: 2 hops). */
    explicit LinkPlan(int one_cycle_reach_hops = 2);

    void add(const InterposerLink &link);
    const std::vector<InterposerLink> &links() const { return links_; }
    std::size_t size() const { return links_.size(); }
    void clear() { links_.clear(); }

    /** Pairwise crossing count over all link segments. */
    int crossings() const;

    /** RDL metal layers needed (>=1 when any link exists). */
    int layersNeeded() const;

    /** Sum of Manhattan spans, in hops. */
    double totalLengthHops() const;

    /** Longest Manhattan span. */
    int maxHops() const;

    /** True if any link exceeds the one-cycle reach. */
    bool needsRepeaters() const;

    /** Full physical report, including ubump accounting. */
    RdlReport report() const;

    /** Render an ASCII map of the plan on a w x h grid (debug aid). */
    std::string asciiMap(int width, int height) const;

  private:
    std::vector<Segment> segments() const;

    std::vector<InterposerLink> links_;
    int reach_;
};

} // namespace eqx

#endif // EQX_INTERPOSER_LINK_PLAN_HH
