#include "common/geometry.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace eqx {

std::int64_t
orient(const Coord &a, const Coord &b, const Coord &c)
{
    std::int64_t abx = b.x - a.x;
    std::int64_t aby = b.y - a.y;
    std::int64_t acx = c.x - a.x;
    std::int64_t acy = c.y - a.y;
    return abx * acy - aby * acx;
}

bool
onSegment(const Coord &a, const Coord &b, const Coord &c)
{
    return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
           std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

bool
segmentsIntersect(const Segment &s, const Segment &t)
{
    std::int64_t d1 = orient(s.a, s.b, t.a);
    std::int64_t d2 = orient(s.a, s.b, t.b);
    std::int64_t d3 = orient(t.a, t.b, s.a);
    std::int64_t d4 = orient(t.a, t.b, s.b);

    if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
        ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)))
        return true;

    if (d1 == 0 && onSegment(s.a, s.b, t.a))
        return true;
    if (d2 == 0 && onSegment(s.a, s.b, t.b))
        return true;
    if (d3 == 0 && onSegment(t.a, t.b, s.a))
        return true;
    if (d4 == 0 && onSegment(t.a, t.b, s.b))
        return true;
    return false;
}

namespace {

bool
sharedEndpointOnly(const Segment &s, const Segment &t)
{
    // Count distinct shared endpoints.
    bool aa = s.a == t.a, ab = s.a == t.b, ba = s.b == t.a, bb = s.b == t.b;
    if (!(aa || ab || ba || bb))
        return false;
    // They share an endpoint; the intersection is *only* that endpoint
    // if neither of the other endpoints lies on the opposite segment.
    Coord shared = aa || ab ? s.a : s.b;
    Coord sOther = aa || ab ? s.b : s.a;
    Coord tOther = aa || ba ? t.b : t.a;
    if (orient(s.a, s.b, tOther) == 0 && onSegment(s.a, s.b, tOther) &&
        tOther != shared)
        return false;
    if (orient(t.a, t.b, sOther) == 0 && onSegment(t.a, t.b, sOther) &&
        sOther != shared)
        return false;
    return true;
}

} // namespace

bool
segmentsCross(const Segment &s, const Segment &t)
{
    if (!segmentsIntersect(s, t))
        return false;
    return !sharedEndpointOnly(s, t);
}

int
countCrossings(const std::vector<Segment> &segs)
{
    int crossings = 0;
    for (std::size_t i = 0; i < segs.size(); ++i)
        for (std::size_t j = i + 1; j < segs.size(); ++j)
            if (segmentsCross(segs[i], segs[j]))
                ++crossings;
    return crossings;
}

int
rdlLayersNeeded(const std::vector<Segment> &segs)
{
    if (segs.empty())
        return 0;
    std::size_t n = segs.size();
    std::vector<int> layer(n, -1);
    int layers = 1;
    for (std::size_t i = 0; i < n; ++i) {
        // Greedy: lowest layer with no crossing against already-placed
        // wires in that layer.
        for (int l = 0;; ++l) {
            bool ok = true;
            for (std::size_t j = 0; j < i && ok; ++j) {
                if (layer[j] == l && segmentsCross(segs[i], segs[j]))
                    ok = false;
            }
            if (ok) {
                layer[i] = l;
                layers = std::max(layers, l + 1);
                break;
            }
        }
    }
    return layers;
}

double
segmentLength(const Segment &s)
{
    double dx = s.b.x - s.a.x;
    double dy = s.b.y - s.a.y;
    return std::sqrt(dx * dx + dy * dy);
}

int
CrossingLedger::against(int slot, const std::vector<Segment> &segs) const
{
    int n = 0;
    for (std::size_t o = 0; o < slots_.size(); ++o) {
        if (static_cast<int>(o) == slot)
            continue;
        for (const auto &other : slots_[o])
            for (const auto &s : segs)
                if (segmentsCross(s, other))
                    ++n;
    }
    return n;
}

void
CrossingLedger::add(int slot, std::vector<Segment> segs)
{
    eqx_assert(slot >= 0, "ledger slot must be non-negative");
    if (static_cast<std::size_t>(slot) >= slots_.size())
        slots_.resize(static_cast<std::size_t>(slot) + 1);
    auto &dst = slots_[static_cast<std::size_t>(slot)];
    eqx_assert(dst.empty(), "ledger slot already occupied");
    count_ += against(slot, segs);
    for (std::size_t i = 0; i < segs.size(); ++i)
        for (std::size_t j = i + 1; j < segs.size(); ++j)
            if (segmentsCross(segs[i], segs[j]))
                ++count_;
    total_ += segs.size();
    dst = std::move(segs);
}

void
CrossingLedger::remove(int slot)
{
    eqx_assert(slot >= 0 &&
                   static_cast<std::size_t>(slot) < slots_.size(),
               "removing an unknown ledger slot");
    auto &segs = slots_[static_cast<std::size_t>(slot)];
    count_ -= against(slot, segs);
    for (std::size_t i = 0; i < segs.size(); ++i)
        for (std::size_t j = i + 1; j < segs.size(); ++j)
            if (segmentsCross(segs[i], segs[j]))
                --count_;
    total_ -= segs.size();
    segs.clear();
    eqx_assert(count_ >= 0, "ledger crossing count went negative");
}

bool
CrossingLedger::occupied(int slot) const
{
    return slot >= 0 && static_cast<std::size_t>(slot) < slots_.size() &&
           !slots_[static_cast<std::size_t>(slot)].empty();
}

void
CrossingLedger::clear()
{
    slots_.clear();
    total_ = 0;
    count_ = 0;
}

} // namespace eqx
