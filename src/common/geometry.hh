/**
 * @file
 * 2D geometry on the tile grid: exact integer segment-intersection
 * predicates used to count RDL wire crossings in the interposer.
 */

#ifndef EQX_COMMON_GEOMETRY_HH
#define EQX_COMMON_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace eqx {

/** A straight wire segment between two tile centres. */
struct Segment
{
    Coord a;
    Coord b;
};

/** Signed orientation of (a, b, c): >0 counter-clockwise, 0 collinear. */
std::int64_t orient(const Coord &a, const Coord &b, const Coord &c);

/** True if c lies on the closed segment [a, b] (assumes collinear). */
bool onSegment(const Coord &a, const Coord &b, const Coord &c);

/**
 * True if the two closed segments intersect at any point, including
 * endpoints and collinear overlap.
 */
bool segmentsIntersect(const Segment &s, const Segment &t);

/**
 * True if the segments *cross* in the RDL sense: they share at least
 * one point that is not a shared endpoint. Two wires fanning out from
 * the same ubump do not need an extra metal layer; wires that touch or
 * overlap anywhere else do.
 */
bool segmentsCross(const Segment &s, const Segment &t);

/** Number of crossing pairs among a set of segments (RDL cross-points). */
int countCrossings(const std::vector<Segment> &segs);

/**
 * Minimum number of RDL metal layers needed so no two wires in the
 * same layer cross: a greedy colouring of the crossing graph.
 * Returns at least 1 for a non-empty set.
 */
int rdlLayersNeeded(const std::vector<Segment> &segs);

/** Euclidean length of a segment in tile pitches. */
double segmentLength(const Segment &s);

} // namespace eqx

#endif // EQX_COMMON_GEOMETRY_HH
