/**
 * @file
 * 2D geometry on the tile grid: exact integer segment-intersection
 * predicates used to count RDL wire crossings in the interposer.
 */

#ifndef EQX_COMMON_GEOMETRY_HH
#define EQX_COMMON_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace eqx {

/** A straight wire segment between two tile centres. */
struct Segment
{
    Coord a;
    Coord b;
};

/** Signed orientation of (a, b, c): >0 counter-clockwise, 0 collinear. */
std::int64_t orient(const Coord &a, const Coord &b, const Coord &c);

/** True if c lies on the closed segment [a, b] (assumes collinear). */
bool onSegment(const Coord &a, const Coord &b, const Coord &c);

/**
 * True if the two closed segments intersect at any point, including
 * endpoints and collinear overlap.
 */
bool segmentsIntersect(const Segment &s, const Segment &t);

/**
 * True if the segments *cross* in the RDL sense: they share at least
 * one point that is not a shared endpoint. Two wires fanning out from
 * the same ubump do not need an extra metal layer; wires that touch or
 * overlap anywhere else do.
 */
bool segmentsCross(const Segment &s, const Segment &t);

/** Number of crossing pairs among a set of segments (RDL cross-points). */
int countCrossings(const std::vector<Segment> &segs);

/**
 * Minimum number of RDL metal layers needed so no two wires in the
 * same layer cross: a greedy colouring of the crossing graph.
 * Returns at least 1 for a non-empty set.
 */
int rdlLayersNeeded(const std::vector<Segment> &segs);

/** Euclidean length of a segment in tile pitches. */
double segmentLength(const Segment &s);

/**
 * Incrementally maintained pairwise crossing count over slot-grouped
 * segments. Adding a slot's segments costs O(new x existing) cross
 * tests instead of recounting all pairs; removing a slot subtracts
 * exactly what its addition contributed, so the running count always
 * equals countCrossings() over the union of the present segments
 * (same segmentsCross predicate, integer arithmetic, no drift).
 */
class CrossingLedger
{
  public:
    /**
     * Install @p segs as slot @p slot (which must currently be empty)
     * and add their crossings with every present segment — including
     * the pairs internal to @p segs — to the running count.
     */
    void add(int slot, std::vector<Segment> segs);

    /** Remove slot @p slot's segments and their crossings. */
    void remove(int slot);

    /** True if the slot currently holds segments. */
    bool occupied(int slot) const;

    /** Current pairwise crossing count over all present segments. */
    int crossings() const { return count_; }

    /** Total number of present segments. */
    std::size_t size() const { return total_; }

    /** Drop every slot. */
    void clear();

  private:
    /** Crossings between @p segs and every *other* slot's segments. */
    int against(int slot, const std::vector<Segment> &segs) const;

    std::vector<std::vector<Segment>> slots_;
    std::size_t total_ = 0;
    int count_ = 0;
};

} // namespace eqx

#endif // EQX_COMMON_GEOMETRY_HH
