#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace eqx {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(o.n_);
    double delta = o.mean_ - mean_;
    double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    sum_ += o.sum_;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double bucket_width, int num_buckets)
    : width_(bucket_width), buckets_(static_cast<std::size_t>(num_buckets), 0)
{
    eqx_assert(bucket_width > 0 && num_buckets > 0,
               "histogram needs positive geometry");
}

void
Histogram::add(double x)
{
    ++total_;
    if (!(x >= 0)) // negatives and NaN land in bucket 0
        x = 0;
    // Range-check as a double before converting: casting a quotient
    // beyond the size_t range is undefined behaviour.
    if (x >= width_ * static_cast<double>(buckets_.size())) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>(x / width_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

std::uint64_t
Histogram::bucket(int i) const
{
    eqx_assert(i >= 0 && i < numBuckets(), "bucket index out of range");
    return buckets_[static_cast<std::size_t>(i)];
}

double
Histogram::percentile(double q) const
{
    if (total_ == 0)
        return 0.0;
    if (!(q > 0.0)) // also catches NaN
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    double target = q * static_cast<double>(total_);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double b = static_cast<double>(buckets_[i]);
        if (seen + b >= target && b > 0) {
            double frac = (target - seen) / b;
            return (static_cast<double>(i) + frac) * width_;
        }
        seen += b;
    }
    // The quantile falls in the overflow bucket (or every sample
    // does): the tracked-range upper edge is the tightest bound known.
    return static_cast<double>(buckets_.size()) * width_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

void
Histogram::merge(const Histogram &o)
{
    eqx_assert(o.width_ == width_ && o.buckets_.size() == buckets_.size(),
               "histogram merge needs identical geometry");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    overflow_ += o.overflow_;
    total_ += o.total_;
}

void
StatGroup::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatGroup::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatGroup::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

void
StatGroup::merge(const StatGroup &o)
{
    for (const auto &[k, v] : o.values_)
        values_[k] += v;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    int n = 0;
    for (double x : xs) {
        if (x > 0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0.0;
}

} // namespace eqx
