/**
 * @file
 * A small typed key/value configuration table with defaults, so every
 * experiment binary can override simulator parameters uniformly
 * (e.g. from "key=value" command-line arguments).
 */

#ifndef EQX_COMMON_CONFIG_HH
#define EQX_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace eqx {

/** String-keyed configuration with typed accessors and defaults. */
class Config
{
  public:
    Config() = default;

    /** Set a value, overriding any previous one. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, long value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** Typed getters returning the fallback when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    long getInt(const std::string &key, long fallback = 0) const;
    double getDouble(const std::string &key, double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    bool has(const std::string &key) const;

    /** Parse "key=value" tokens (e.g. argv tail); bad tokens -> fatal. */
    void parseArgs(const std::vector<std::string> &tokens);

    const std::map<std::string, std::string> &all() const { return kv_; }

  private:
    std::map<std::string, std::string> kv_;
};

} // namespace eqx

#endif // EQX_COMMON_CONFIG_HH
