#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace eqx {

namespace {
int gVerbosity = 1;
} // namespace

void
setVerbosity(int level)
{
    gVerbosity = level;
}

int
verbosity()
{
    return gVerbosity;
}

namespace detail {

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so tests can observe fatal conditions.
    throw std::runtime_error("fatal: " + msg);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::logic_error("panic: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gVerbosity > 0)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace eqx
