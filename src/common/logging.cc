#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace eqx {

namespace {

std::atomic<int> gVerbosity{1};

/**
 * Serializes warn/inform output so concurrent jobs (JobPool workers)
 * never shear lines. fatal/panic also take it: their message should
 * land intact before the exception unwinds.
 */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

void
setVerbosity(int level)
{
    gVerbosity.store(level, std::memory_order_relaxed);
}

int
verbosity()
{
    return gVerbosity.load(std::memory_order_relaxed);
}

namespace detail {

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    // Throw instead of exit(1) so tests can observe fatal conditions.
    throw std::runtime_error("fatal: " + msg);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    throw std::logic_error("panic: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verbosity() > 0) {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stdout, "info: %s\n", msg.c_str());
    }
}

} // namespace detail
} // namespace eqx
