#include "common/types.hh"

namespace eqx {

const char *
dirName(Dir d)
{
    switch (d) {
      case Dir::North: return "N";
      case Dir::East:  return "E";
      case Dir::South: return "S";
      case Dir::West:  return "W";
      case Dir::Local: return "L";
    }
    return "?";
}

const char *
packetTypeName(PacketType t)
{
    switch (t) {
      case PacketType::ReadRequest:  return "ReadReq";
      case PacketType::WriteRequest: return "WriteReq";
      case PacketType::ReadReply:    return "ReadReply";
      case PacketType::WriteReply:   return "WriteReply";
      case PacketType::Invalidate:   return "Invalidate";
      case PacketType::InvAck:       return "InvAck";
    }
    return "?";
}

} // namespace eqx
