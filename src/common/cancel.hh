/**
 * @file
 * Cooperative cancellation for long-running simulation jobs. A
 * CancelToken is shared between the party that may abort the work
 * (e.g. the JobPool watchdog) and the work itself (System::step polls
 * it once per core cycle). Cancellation is advisory: the job observes
 * the flag and winds down at a safe point, so no locks are held and
 * no state is torn.
 */

#ifndef EQX_COMMON_CANCEL_HH
#define EQX_COMMON_CANCEL_HH

#include <atomic>

namespace eqx {

/** A resettable, thread-safe cancellation flag. */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation (any thread). */
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    /** Has cancellation been requested? Cheap enough to poll per cycle. */
    bool cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    /** Re-arm the token (between retry attempts of the same job). */
    void reset() { flag_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> flag_{false};
};

} // namespace eqx

#endif // EQX_COMMON_CANCEL_HH
