/**
 * @file
 * Fundamental value types shared by every EquiNox module: cycles,
 * node/tile coordinates, mesh directions and message classes.
 */

#ifndef EQX_COMMON_TYPES_HH
#define EQX_COMMON_TYPES_HH

#include <cstdint>
#include <functional>
#include <string>

namespace eqx {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/**
 * "No scheduled work, ever" sentinel for next-due-cycle queries
 * (TimeWheel, DESIGN.md §14): a component returning this is woken
 * only by another component's activity, never by the passage of time.
 */
constexpr Cycle kNeverCycle = ~static_cast<Cycle>(0);

/** Flat node (tile) identifier inside one mesh. */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = -1;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/**
 * Integer tile coordinate on the processor die grid. x grows east,
 * y grows south (row-major, matching the paper's figures).
 */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const { return x == o.x && y == o.y; }
    bool operator!=(const Coord &o) const { return !(*this == o); }
    bool
    operator<(const Coord &o) const
    {
        return y != o.y ? y < o.y : x < o.x;
    }
};

/** Manhattan distance between two tiles. */
inline int
manhattan(const Coord &a, const Coord &b)
{
    int dx = a.x - b.x;
    int dy = a.y - b.y;
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/** Chebyshev (king-move) distance between two tiles. */
inline int
chebyshev(const Coord &a, const Coord &b)
{
    int dx = a.x - b.x;
    int dy = a.y - b.y;
    dx = dx < 0 ? -dx : dx;
    dy = dy < 0 ? -dy : dy;
    return dx > dy ? dx : dy;
}

/**
 * Mesh port directions. Local is the NI injection/ejection port;
 * router port vectors may append extra injection ports after these.
 */
enum class Dir : std::uint8_t { North = 0, East, South, West, Local };

/** Number of geographic directions (excluding Local). */
constexpr int kNumGeoDirs = 4;

/** Unit step for a geographic direction. */
inline Coord
dirStep(Dir d)
{
    switch (d) {
      case Dir::North: return {0, -1};
      case Dir::East:  return {1, 0};
      case Dir::South: return {0, 1};
      case Dir::West:  return {-1, 0};
      default:         return {0, 0};
    }
}

/** Opposite geographic direction. */
inline Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::North: return Dir::South;
      case Dir::East:  return Dir::West;
      case Dir::South: return Dir::North;
      case Dir::West:  return Dir::East;
      default:         return Dir::Local;
    }
}

/** Human-readable direction name. */
const char *dirName(Dir d);

/**
 * Message classes carried by the NoC. Read/write requests travel
 * PE -> CB on the request network; replies travel CB -> PE on the
 * reply network (or on dedicated VC classes in single-network schemes).
 */
enum class PacketType : std::uint8_t
{
    ReadRequest = 0,
    WriteRequest,
    ReadReply,
    WriteReply,
    Invalidate, ///< CB -> sharer PE (coherence traffic, reply-class)
    InvAck,     ///< sharer PE -> CB (coherence traffic, request-class)
};

/** True for the types that travel PE -> CB (request direction). */
inline bool
isRequest(PacketType t)
{
    return t == PacketType::ReadRequest || t == PacketType::WriteRequest ||
           t == PacketType::InvAck;
}

/** True for the types that travel CB -> PE (reply direction). */
inline bool
isReply(PacketType t)
{
    return !isRequest(t);
}

/** True for the coherence multicast classes (Invalidate / InvAck). */
inline bool
isCoherence(PacketType t)
{
    return t == PacketType::Invalidate || t == PacketType::InvAck;
}

/** Human-readable packet type name. */
const char *packetTypeName(PacketType t);

} // namespace eqx

namespace std {

template <>
struct hash<eqx::Coord>
{
    size_t
    operator()(const eqx::Coord &c) const noexcept
    {
        return (static_cast<size_t>(c.y) << 20) ^ static_cast<size_t>(c.x);
    }
};

} // namespace std

#endif // EQX_COMMON_TYPES_HH
