/**
 * @file
 * Lightweight statistics primitives: counters, running mean/variance
 * accumulators, and fixed-bucket histograms. These back every
 * experiment table in the bench harness.
 */

#ifndef EQX_COMMON_STATS_HH
#define EQX_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eqx {

/**
 * Streaming mean/variance via Welford's algorithm. Numerically stable
 * for the long accumulations a multi-million-cycle run produces.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStat &o);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /**
     * Exact running sum (carried separately; reconstructing it as
     * mean * n loses low-order bits over long accumulations, which
     * packet-weighted latency aggregation is sensitive to).
     */
    double sum() const { return sum_; }

    void reset();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram over [0, bucketWidth * numBuckets) with an overflow
 * bucket; used for latency distributions.
 */
class Histogram
{
  public:
    Histogram(double bucket_width, int num_buckets);

    void add(double x);
    std::uint64_t count() const { return total_; }
    std::uint64_t bucket(int i) const;
    std::uint64_t overflow() const { return overflow_; }
    int numBuckets() const { return static_cast<int>(buckets_.size()); }
    double bucketWidth() const { return width_; }
    /**
     * Value below which fraction q of samples fall (linear interp).
     * Empty histograms report 0; quantiles that land in the overflow
     * bucket report the tracked-range upper edge (the tightest lower
     * bound the histogram knows).
     */
    double percentile(double q) const;

    /** Clear all buckets (same geometry); warmup-phase reset. */
    void reset();
    /** Merge a histogram of identical geometry. */
    void merge(const Histogram &o);

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named bag of scalar statistics; components register counters here
 * and the experiment runner dumps them uniformly.
 */
class StatGroup
{
  public:
    /** Increment a named counter. */
    void inc(const std::string &name, double delta = 1.0);
    /** Set a named value outright. */
    void set(const std::string &name, double value);
    /** Read a named value (0 if absent). */
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, double> &all() const { return values_; }
    void merge(const StatGroup &o);
    void reset() { values_.clear(); }

  private:
    std::map<std::string, double> values_;
};

/** Geometric mean of a vector (ignores non-positive entries). */
double geomean(const std::vector<double> &xs);

} // namespace eqx

#endif // EQX_COMMON_STATS_HH
