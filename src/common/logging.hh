/**
 * @file
 * gem5-style status and error reporting. fatal() is for user error
 * (bad configuration), panic() for internal invariant violations.
 */

#ifndef EQX_COMMON_LOGGING_HH
#define EQX_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace eqx {

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity: 0 silences inform(), warnings always print. */
void setVerbosity(int level);
int verbosity();

} // namespace eqx

/** Abort with an error attributable to the user (bad config, bad args). */
#define eqx_fatal(...) \
    ::eqx::detail::fatalImpl(::eqx::detail::concat(__VA_ARGS__), __FILE__, \
                             __LINE__)

/** Abort on an internal invariant violation (a simulator bug). */
#define eqx_panic(...) \
    ::eqx::detail::panicImpl(::eqx::detail::concat(__VA_ARGS__), __FILE__, \
                             __LINE__)

/** Non-fatal warning about questionable behaviour. */
#define eqx_warn(...) \
    ::eqx::detail::warnImpl(::eqx::detail::concat(__VA_ARGS__))

/** Informational status message (suppressed at verbosity 0). */
#define eqx_inform(...) \
    ::eqx::detail::informImpl(::eqx::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define eqx_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::eqx::detail::panicImpl(                                      \
                ::eqx::detail::concat("assertion failed: " #cond " ",      \
                                      ##__VA_ARGS__),                      \
                __FILE__, __LINE__);                                       \
        }                                                                  \
    } while (0)

#endif // EQX_COMMON_LOGGING_HH
