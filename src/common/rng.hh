/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 * Every stochastic component takes an explicit Rng so experiments are
 * reproducible bit-for-bit from a single seed.
 */

#ifndef EQX_COMMON_RNG_HH
#define EQX_COMMON_RNG_HH

#include <cstdint>
#include <utility>

namespace eqx {

/**
 * xoshiro256** generator. Small, fast, and good enough for
 * simulation-grade randomness; not cryptographic.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) with rejection (unbiased). */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Geometric-ish burst length >= 1 with continuation probability p. */
    int burstLength(double p, int cap);

    /** Fork a decorrelated child stream (for per-component seeding). */
    Rng fork();

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Vec>
    void
    shuffle(Vec &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
};

} // namespace eqx

#endif // EQX_COMMON_RNG_HH
