#include "common/config.hh"

#include <charconv>
#include <cstdlib>

#include "common/logging.hh"

namespace eqx {

void
Config::set(const std::string &key, const std::string &value)
{
    kv_[key] = value;
}

void
Config::set(const std::string &key, long value)
{
    kv_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    kv_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    kv_[key] = value ? "true" : "false";
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
}

long
Config::getInt(const std::string &key, long fallback) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return fallback;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        eqx_fatal("config key '", key, "' is not an integer: ", it->second);
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return fallback;
    // from_chars: config values parse identically no matter the
    // process LC_NUMERIC (strtod would reject "1.5" under a
    // comma-decimal locale). A leading '+' stays accepted for
    // compatibility with the old strtod behavior.
    const std::string &s = it->second;
    const char *first = s.c_str();
    const char *last = first + s.size();
    if (first != last && *first == '+')
        ++first;
    double v = 0.0;
    auto r = std::from_chars(first, last, v);
    if (r.ptr == first || r.ptr != last)
        eqx_fatal("config key '", key, "' is not a number: ", it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = kv_.find(key);
    if (it == kv_.end())
        return fallback;
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes")
        return true;
    if (s == "false" || s == "0" || s == "no")
        return false;
    eqx_fatal("config key '", key, "' is not a boolean: ", s);
}

bool
Config::has(const std::string &key) const
{
    return kv_.count(key) > 0;
}

void
Config::parseArgs(const std::vector<std::string> &tokens)
{
    for (const auto &tok : tokens) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            eqx_fatal("expected key=value argument, got '", tok, "'");
        kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
}

} // namespace eqx
