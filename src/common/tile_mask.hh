/**
 * @file
 * A count-based W x H tile occupancy mask. The EIR search loops ask
 * "is this tile already taken?" millions of times per run; a flat
 * counter grid answers in O(1) and supports exact removal, which the
 * incremental evaluation accumulator needs when groups are popped or
 * replaced. Counts (rather than bits) make add/remove safe even if
 * two tracked groups transiently share a tile.
 */

#ifndef EQX_COMMON_TILE_MASK_HH
#define EQX_COMMON_TILE_MASK_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace eqx {

/** Occupancy counters over a W x H tile grid. */
class TileMask
{
  public:
    TileMask(int width, int height)
        : w_(width), h_(height),
          cnt_(static_cast<std::size_t>(width * height), 0)
    {
        eqx_assert(width > 0 && height > 0, "mask needs a positive grid");
    }

    int width() const { return w_; }
    int height() const { return h_; }

    /** True if at least one holder occupies the tile. */
    bool
    test(const Coord &c) const
    {
        return cnt_[index(c)] != 0;
    }

    /** Register one holder of the tile. */
    void
    add(const Coord &c)
    {
        ++cnt_[index(c)];
    }

    /** Unregister one holder of the tile. */
    void
    remove(const Coord &c)
    {
        std::size_t i = index(c);
        eqx_assert(cnt_[i] > 0, "removing from an empty tile");
        --cnt_[i];
    }

    /** Drop every holder. */
    void
    clear()
    {
        std::fill(cnt_.begin(), cnt_.end(), 0);
    }

  private:
    std::size_t
    index(const Coord &c) const
    {
        eqx_assert(c.x >= 0 && c.x < w_ && c.y >= 0 && c.y < h_,
                   "tile out of bounds");
        return static_cast<std::size_t>(c.y * w_ + c.x);
    }

    int w_;
    int h_;
    std::vector<std::uint16_t> cnt_;
};

} // namespace eqx

#endif // EQX_COMMON_TILE_MASK_HH
