#include "common/rng.hh"

#include "common/logging.hh"

namespace eqx {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix cannot produce it
    // for four consecutive outputs, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    eqx_assert(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling on the top bits to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    eqx_assert(lo <= hi, "nextRange requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

int
Rng::burstLength(double p, int cap)
{
    int len = 1;
    while (len < cap && chance(p))
        ++len;
    return len;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace eqx
