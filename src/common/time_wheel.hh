/**
 * @file
 * Global time wheel (DESIGN.md §14): the system-level generalization
 * of the NoC's pending-wire event wheel. Each core cycle the owner
 * (System) opens an epoch at the current cycle, every subsystem posts
 * the earliest future cycle at which it has scheduled work — HBM bank
 * timings, L2 hit-pipeline completions, NoC channel arrivals — and
 * the owner then reads the global minimum and fast-forwards over the
 * provably dead cycles in between.
 *
 * Representation: a 64-cycle near horizon kept as one occupancy
 * bitmap relative to the epoch (bit k = "work at now + 1 + k"), plus
 * a single far-minimum for posts beyond the horizon. nextDue() is a
 * count-trailing-zeros on the bitmap, so both post and query are
 * O(1); DRAM latencies and channel spans all fit the near window in
 * practice, and anything farther only ever needs its minimum.
 */

#ifndef EQX_COMMON_TIME_WHEEL_HH
#define EQX_COMMON_TIME_WHEEL_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace eqx {

class TimeWheel
{
  public:
    /** Near-horizon width in cycles (one bitmap word). */
    static constexpr Cycle kHorizon = 64;

    /** Start a consultation epoch at cycle @p now; drops all posts. */
    void
    beginEpoch(Cycle now)
    {
        now_ = now;
        near_ = 0;
        far_ = kNeverCycle;
    }

    /**
     * Post a wake-up at cycle @p due (> the epoch cycle). Posting
     * kNeverCycle is a no-op so components can return their
     * next-due-cycle queries straight through.
     */
    void
    post(Cycle due)
    {
        if (due == kNeverCycle)
            return;
        eqx_assert(due > now_, "TimeWheel: wake-up at ", due,
                   " not after epoch cycle ", now_);
        Cycle ahead = due - now_;
        if (ahead <= kHorizon)
            near_ |= std::uint64_t{1} << (ahead - 1);
        else if (due < far_)
            far_ = due;
    }

    /** Earliest posted wake-up this epoch; kNeverCycle if none. */
    Cycle
    nextDue() const
    {
        if (near_ != 0)
            return now_ + 1 + static_cast<Cycle>(std::countr_zero(near_));
        return far_;
    }

    /** True when nothing was posted this epoch. */
    bool empty() const { return near_ == 0 && far_ == kNeverCycle; }

    /** The cycle the current epoch was opened at. */
    Cycle epoch() const { return now_; }

  private:
    Cycle now_ = 0;
    std::uint64_t near_ = 0;
    Cycle far_ = kNeverCycle;
};

} // namespace eqx

#endif // EQX_COMMON_TIME_WHEEL_HH
