#include "sim/scheme.hh"

namespace eqx {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::SingleBase:      return "SingleBase";
      case Scheme::VcMono:          return "VC-Mono";
      case Scheme::InterposerCMesh: return "Interposer-CMesh";
      case Scheme::SeparateBase:    return "SeparateBase";
      case Scheme::Da2Mesh:         return "DA2Mesh";
      case Scheme::MultiPort:       return "MultiPort";
      case Scheme::EquiNox:         return "EquiNox";
    }
    return "?";
}

std::vector<Scheme>
allSchemes()
{
    return {Scheme::SingleBase,   Scheme::VcMono,
            Scheme::InterposerCMesh, Scheme::SeparateBase,
            Scheme::Da2Mesh,      Scheme::MultiPort,
            Scheme::EquiNox};
}

bool
isSingleNetwork(Scheme s)
{
    return s == Scheme::SingleBase || s == Scheme::VcMono ||
           s == Scheme::InterposerCMesh;
}

} // namespace eqx
