#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/placement.hh"
#include "runner/stream_seed.hh"

namespace eqx {

namespace {

/** Injects at a fixed node of a fixed network. */
class DirectInjector : public PacketInjector
{
  public:
    DirectInjector(Network *net, NodeId node) : net_(net), node_(node) {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        return net_->inject(node_, pkt);
    }

  private:
    Network *net_;
    NodeId node_;
};

/** Stripes reply packets across the DA2Mesh subnets by destination. */
class SubnetInjector : public PacketInjector
{
  public:
    SubnetInjector(std::vector<Network *> subnets, NodeId node)
        : subnets_(std::move(subnets)), node_(node)
    {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        auto idx = static_cast<std::size_t>(pkt->dst) % subnets_.size();
        return subnets_[idx]->inject(node_, pkt);
    }

  private:
    std::vector<Network *> subnets_;
    NodeId node_;
};

/** CMesh tile -> overlay node mapping (2x2 concentration). */
struct CmeshMap
{
    int tileW;
    int cmW;

    NodeId
    overlayNode(NodeId tile) const
    {
        int x = static_cast<int>(tile) % tileW;
        int y = static_cast<int>(tile) / tileW;
        return static_cast<NodeId>((y / 2) * cmW + x / 2);
    }
};

/**
 * Interposer-CMesh injection: distant destinations ride the overlay,
 * near ones (or an overlay-full fallback) take the mesh.
 */
class OverlayInjector : public PacketInjector
{
  public:
    OverlayInjector(Network *mesh, Network *overlay, NodeId node,
                    CmeshMap map, int min_hops)
        : mesh_(mesh), overlay_(overlay), node_(node), map_(map),
          minHops_(min_hops)
    {}

    bool
    tryInject(const PacketPtr &pkt) override
    {
        const Topology &t = mesh_->topology();
        int dist = manhattan(t.coord(node_), t.coord(pkt->dst));
        NodeId entry = map_.overlayNode(node_);
        NodeId exit = map_.overlayNode(pkt->dst);
        if (dist >= minHops_ && entry != exit) {
            NodeId tile_dst = pkt->dst;
            pkt->finalDst = tile_dst;
            pkt->dst = exit;
            if (overlay_->inject(entry, pkt))
                return true;
            pkt->dst = tile_dst; // fall back to the mesh
            pkt->finalDst = kInvalidNode;
        }
        return mesh_->inject(node_, pkt);
    }

  private:
    Network *mesh_;
    Network *overlay_;
    NodeId node_;
    CmeshMap map_;
    int minHops_;
};

/** Overlay exit: hands packets to the endpoint of their finalDst tile. */
class CmeshExitSink : public PacketSink
{
  public:
    explicit CmeshExitSink(const std::vector<PacketSink *> *tile_sinks)
        : tileSinks_(tile_sinks)
    {}

    bool
    canAccept(const PacketPtr &pkt) override
    {
        return sinkOf(pkt)->canAccept(pkt);
    }

    void
    accept(const PacketPtr &pkt, Cycle core_now) override
    {
        PacketSink *s = sinkOf(pkt);
        // Restore the tile-namespace destination for the endpoint.
        pkt->dst = pkt->finalDst;
        s->accept(pkt, core_now);
    }

  private:
    PacketSink *
    sinkOf(const PacketPtr &pkt) const
    {
        eqx_assert(pkt->finalDst != kInvalidNode,
                   "overlay packet without finalDst");
        PacketSink *s =
            (*tileSinks_)[static_cast<std::size_t>(pkt->finalDst)];
        eqx_assert(s, "overlay packet for a tile without an endpoint");
        return s;
    }

    const std::vector<PacketSink *> *tileSinks_;
};

} // namespace

System::System(const SystemConfig &config, const WorkloadProfile &profile)
    : cfg_(config)
{
    eqx_assert(cfg_.numCbs >= 1, "need at least one cache bank");
    buildPlacement();
    buildNetworks();
    buildEndpoints(profile);
}

System::~System() = default;

void
System::buildPlacement()
{
    if (cfg_.scheme == Scheme::EquiNox) {
        if (cfg_.preDesign) {
            designUsed_ = cfg_.preDesign;
        } else {
            DesignParams dp = cfg_.design;
            dp.width = cfg_.width;
            dp.height = cfg_.height;
            dp.numCbs = cfg_.numCbs;
            dp.seed = cfg_.seed;
            ownedDesign_ = buildEquiNoxDesign(dp);
            designUsed_ = &ownedDesign_;
        }
        eqx_assert(designUsed_->width == cfg_.width &&
                       designUsed_->height == cfg_.height,
                   "EquiNox design size mismatch");
        cbCoords_ = designUsed_->cbs;
    } else {
        cbCoords_ = makePlacement(PlacementKind::Diamond, cfg_.width,
                                  cfg_.height, cfg_.numCbs);
    }
}

void
System::buildNetworks()
{
    auto base = [&](const std::string &name) {
        NocParams p;
        p.name = name;
        p.width = cfg_.width;
        p.height = cfg_.height;
        p.vcsPerPort = cfg_.vcsPerPort;
        p.vcDepthFlits = cfg_.vcDepthFlits;
        p.flitBits = cfg_.flitBits;
        p.exhaustiveTick = cfg_.exhaustiveNocTick;
        return p;
    };

    std::vector<NodeId> cb_nodes;
    for (const auto &c : cbCoords_)
        cb_nodes.push_back(
            static_cast<NodeId>(c.y * cfg_.width + c.x));

    switch (cfg_.scheme) {
      case Scheme::SingleBase:
      case Scheme::VcMono: {
        NetworkSpec spec;
        spec.params = base("single");
        spec.params.classVcs = true;
        spec.params.routing = RoutingMode::XY;
        spec.params.vcMono = cfg_.scheme == Scheme::VcMono;
        nets_.push_back(std::make_unique<Network>(spec));
        break;
      }
      case Scheme::InterposerCMesh: {
        NetworkSpec mesh;
        mesh.params = base("single");
        mesh.params.classVcs = true;
        mesh.params.routing = RoutingMode::XY;
        nets_.push_back(std::make_unique<Network>(mesh));

        NetworkSpec overlay;
        overlay.params = base("cmesh");
        overlay.params.width = (cfg_.width + 1) / 2;
        overlay.params.height = (cfg_.height + 1) / 2;
        overlay.params.flitBits = cfg_.cmeshFlitBits;
        overlay.params.classVcs = true;
        overlay.params.routing = RoutingMode::XY;
        overlay.params.geoLinksInterposer = true;
        for (NodeId n = 0; n < overlay.params.numNodes(); ++n) {
            NodeMods m;
            m.kind = NiKind::MultiPort;
            m.localInjPorts = 4; // one per concentrated tile
            m.localEjPorts = 4;
            overlay.mods[n] = m;
        }
        nets_.push_back(std::make_unique<Network>(overlay));
        break;
      }
      case Scheme::SeparateBase:
      case Scheme::Da2Mesh:
      case Scheme::MultiPort:
      case Scheme::EquiNox: {
        NetworkSpec req;
        req.params = base("request");
        req.params.classes = {true, false};
        req.params.routing = RoutingMode::MinimalAdaptive;
        if (cfg_.scheme == Scheme::MultiPort) {
            for (NodeId n : cb_nodes) {
                NodeMods m;
                m.localEjPorts = cfg_.multiPortEjPorts;
                req.mods[n] = m;
            }
        }
        nets_.push_back(std::make_unique<Network>(req));

        if (cfg_.scheme == Scheme::Da2Mesh) {
            for (int s = 0; s < cfg_.da2Subnets; ++s) {
                NetworkSpec sub;
                sub.params = base("reply-sub" + std::to_string(s));
                sub.params.classes = {false, true};
                sub.params.flitBits =
                    std::max(1, cfg_.flitBits / cfg_.da2Subnets);
                sub.params.routing = RoutingMode::XY;
                // Narrow wormhole buffers: packets span several
                // routers rather than fitting one VC, which is how the
                // original DA2Mesh keeps its subnets cheap.
                sub.params.vcDepthFlits = 8;
                // 2.5x clock: 3 ticks on even core cycles, 2 on odd.
                sub.params.ticksEvenCycle = 3;
                sub.params.ticksOddCycle = 2;
                nets_.push_back(std::make_unique<Network>(sub));
            }
            break;
        }

        NetworkSpec rep;
        rep.params = base("reply");
        rep.params.classes = {false, true};
        rep.params.routing = RoutingMode::MinimalAdaptive;
        if (cfg_.scheme == Scheme::MultiPort) {
            for (NodeId n : cb_nodes) {
                NodeMods m;
                m.kind = NiKind::MultiPort;
                m.localInjPorts = cfg_.multiPortInjPorts;
                rep.mods[n] = m;
            }
        }
        if (cfg_.scheme == Scheme::EquiNox)
            rep.eirGroups = designUsed_->eirGroupsByNode();
        nets_.push_back(std::make_unique<Network>(rep));
        break;
      }
    }

    if (cfg_.fault.enabled()) {
        std::uint64_t base = cfg_.fault.seed ? cfg_.fault.seed
                                             : cfg_.seed;
        for (auto &net : nets_)
            net->armFaults(cfg_.fault, net->params().name,
                           deriveStreamSeed(base, "fault",
                                            net->params().name));
    }
}

void
System::buildEndpoints(const WorkloadProfile &profile)
{
    int num_nodes = cfg_.width * cfg_.height;
    std::vector<bool> is_cb(static_cast<std::size_t>(num_nodes), false);
    amap_.lineBytes = 64;
    amap_.cbNodes.clear();
    for (const auto &c : cbCoords_) {
        NodeId n = static_cast<NodeId>(c.y * cfg_.width + c.x);
        is_cb[static_cast<std::size_t>(n)] = true;
        amap_.cbNodes.push_back(n);
    }

    Network *net0 = nets_[0].get();
    Network *reply_net =
        (!isSingleNetwork(cfg_.scheme) && cfg_.scheme != Scheme::Da2Mesh)
            ? nets_[1].get()
            : nullptr;

    // Tile-indexed sink table (used by the CMesh exit sinks too).
    tileSinks_.assign(static_cast<std::size_t>(num_nodes), nullptr);

    CmeshMap cmap{cfg_.width, (cfg_.width + 1) / 2};

    auto makeInjector = [&](NodeId node, bool for_reply)
        -> PacketInjector * {
        std::unique_ptr<PacketInjector> inj;
        switch (cfg_.scheme) {
          case Scheme::SingleBase:
          case Scheme::VcMono:
            inj = std::make_unique<DirectInjector>(net0, node);
            break;
          case Scheme::InterposerCMesh:
            inj = std::make_unique<OverlayInjector>(
                net0, nets_[1].get(), node, cmap, cfg_.cmeshMinHops);
            break;
          case Scheme::SeparateBase:
          case Scheme::MultiPort:
          case Scheme::EquiNox:
            inj = std::make_unique<DirectInjector>(
                for_reply ? reply_net : net0, node);
            break;
          case Scheme::Da2Mesh:
            if (for_reply) {
                std::vector<Network *> subs;
                for (std::size_t i = 1; i < nets_.size(); ++i)
                    subs.push_back(nets_[i].get());
                inj = std::make_unique<SubnetInjector>(std::move(subs),
                                                       node);
            } else {
                inj = std::make_unique<DirectInjector>(net0, node);
            }
            break;
        }
        injectors_.push_back(std::move(inj));
        return injectors_.back().get();
    };

    // Endpoints.
    int pe_index = 0;
    for (NodeId n = 0; n < num_nodes; ++n) {
        if (is_cb[static_cast<std::size_t>(n)]) {
            auto *inj = makeInjector(n, /*for_reply=*/true);
            cbs_.push_back(std::make_unique<CacheBank>(n, cfg_.cb, inj,
                                                       &cfg_.sizes));
            tileSinks_[static_cast<std::size_t>(n)] = cbs_.back().get();
        } else {
            auto *inj = makeInjector(n, /*for_reply=*/false);
            PeTraceGen gen(profile, pe_index, cfg_.seed);
            pes_.push_back(std::make_unique<ProcessingElement>(
                n, cfg_.pe, std::move(gen), &amap_, inj, &cfg_.sizes));
            tileSinks_[static_cast<std::size_t>(n)] = pes_.back().get();
            ++pe_index;
        }
    }

    // Wire sinks to the networks.
    for (NodeId n = 0; n < num_nodes; ++n) {
        PacketSink *s = tileSinks_[static_cast<std::size_t>(n)];
        if (isSingleNetwork(cfg_.scheme)) {
            net0->setSink(n, s);
        } else {
            // Requests eject at CBs; replies eject at PEs.
            if (is_cb[static_cast<std::size_t>(n)]) {
                net0->setSink(n, s);
            } else {
                for (std::size_t i = 1; i < nets_.size(); ++i)
                    nets_[i]->setSink(n, s);
            }
        }
    }

    if (cfg_.scheme == Scheme::InterposerCMesh) {
        auto sink = std::make_unique<CmeshExitSink>(&tileSinks_);
        for (NodeId n = 0; n < nets_[1]->topology().numNodes(); ++n)
            nets_[1]->setSink(n, sink.get());
        overlaySinks_.push_back(std::move(sink));
    }
}

void
System::step()
{
    // Cooperative cancellation: one relaxed load per core cycle is
    // noise next to ticking every router, and lets the JobPool
    // watchdog stop a runaway job at a cycle boundary.
    if (cfg_.cancel && cfg_.cancel->cancelled())
        cancelled_ = true;
    ++cycle_;
    for (auto &net : nets_)
        net->coreTick(cycle_);
    for (auto &cb : cbs_)
        cb->tick(cycle_);
    for (auto &pe : pes_)
        pe->tick(cycle_);
    // Warmup/measurement boundary: discard the cold-start transient.
    if (cfg_.warmupCycles > 0 && cycle_ == cfg_.warmupCycles)
        resetStats();
}

void
System::resetStats()
{
    for (auto &net : nets_)
        net->resetStats();
}

bool
System::finished() const
{
    for (const auto &pe : pes_)
        if (!pe->done())
            return false;
    for (const auto &cb : cbs_)
        if (!cb->drained())
            return false;
    for (const auto &net : nets_)
        if (!net->drained())
            return false;
    return true;
}

double
System::areaMm2() const
{
    double area = 0;
    for (const auto &net : nets_)
        area += power_.networkAreaMm2(*net);
    return area;
}

void
System::collect(RunResult &out) const
{
    out.cycles = cycle_;
    out.execNs = power_.cyclesToNs(cycle_);
    out.totalInsts = 0;
    for (const auto &pe : pes_)
        out.totalInsts += pe->instsIssued();
    out.ipc = cycle_ ? static_cast<double>(out.totalInsts) / cycle_ : 0;

    out.energy = EnergyBreakdown{};
    for (const auto &net : nets_) {
        EnergyBreakdown e = power_.networkEnergyPj(*net, cycle_);
        out.energy.buffer += e.buffer;
        out.energy.crossbar += e.crossbar;
        out.energy.allocators += e.allocators;
        out.energy.links += e.links;
        out.energy.interposerLinks += e.interposerLinks;
        out.energy.leakage += e.leakage;
    }
    out.energyPj = out.energy.total();
    out.edp = PowerModel::edp(out.energyPj, out.execNs);
    out.areaMm2 = areaMm2();

    // Latency, converted to ns per network clock and packet-weighted.
    double freq = power_.params().freqGhz;
    double rq = 0, rn = 0, pq = 0, pn = 0;
    std::uint64_t rpk = 0, ppk = 0;
    for (const auto &net : nets_) {
        double tick_ns = 1.0 / (freq * net->params().clockRatio());
        const LatencyStats &ls = net->latency();
        rq += ls.queueLat[0].sum() * tick_ns;
        rn += ls.netLat[0].sum() * tick_ns;
        pq += ls.queueLat[1].sum() * tick_ns;
        pn += ls.netLat[1].sum() * tick_ns;
        rpk += ls.packets[0];
        ppk += ls.packets[1];
        out.requestBits += net->activity().requestBits;
        out.replyBits += net->activity().replyBits;
    }
    out.reqPackets = rpk;
    out.repPackets = ppk;
    out.reqQueueNs = rpk ? rq / rpk : 0;
    out.reqNetNs = rpk ? rn / rpk : 0;
    out.repQueueNs = ppk ? pq / ppk : 0;
    out.repNetNs = ppk ? pn / ppk : 0;

    // Total-latency percentiles: merge the per-network tick histograms
    // per class. Every network carrying a given class runs at the same
    // clock ratio in all seven schemes (DA2Mesh subnets are uniformly
    // 2.5x), so one tick->ns factor per class is exact.
    for (int c = 0; c < 2; ++c) {
        Histogram merged(LatencyStats::kHistBucketTicks,
                         LatencyStats::kHistBuckets);
        double tick_ns = 0;
        for (const auto &net : nets_) {
            if (net->latency().packets[c] == 0)
                continue;
            merged.merge(net->latency().totalHist[c]);
            if (tick_ns == 0)
                tick_ns = 1.0 / (freq * net->params().clockRatio());
        }
        double p50 = merged.percentile(0.50) * tick_ns;
        double p95 = merged.percentile(0.95) * tick_ns;
        double p99 = merged.percentile(0.99) * tick_ns;
        if (c == 0) {
            out.reqP50Ns = p50;
            out.reqP95Ns = p95;
            out.reqP99Ns = p99;
        } else {
            out.repP50Ns = p50;
            out.repP95Ns = p95;
            out.repP99Ns = p99;
        }
    }

    // Measured max per-injection-point load of the EquiNox reply
    // network (the simulated check of the MCTS evaluator's maxLoad):
    // max over every NI injection buffer, local ports included. Only
    // CB NIs inject replies, so PE-side buffers contribute zero.
    if (cfg_.scheme == Scheme::EquiNox && nets_.size() > 1) {
        const Network &rep = *nets_[1];
        for (NodeId n = 0; n < rep.topology().numNodes(); ++n) {
            const NetworkInterface &ni = rep.ni(n);
            for (int b = 0; b < ni.numInjBuffers(); ++b)
                out.maxEirLoadPackets =
                    std::max(out.maxEirLoadPackets,
                             ni.injBuffer(b).packetsInjected);
        }
    }

    for (const auto &net : nets_) {
        if (!net->faultArmed())
            continue;
        out.faultArmed = true;
        const FaultStats &fs = net->faultPlane()->stats();
        out.faultSeqPackets += fs.seqPackets;
        out.faultDelivered += fs.delivered;
        out.faultDuplicates += fs.duplicates;
        out.faultRetx += fs.retransmissions;
        out.faultLost += fs.lost;
        out.faultWormsDropped += fs.wormsDropped;
        out.faultFlitsDropped += fs.flitsDropped;
        out.faultCreditsReconciled += fs.creditsReconciled;
        out.faultMaskedPorts += net->maskedInjBuffers();
    }
    out.degraded = out.faultMaskedPorts > 0;

    if (cfg_.collectMetrics) {
        out.metrics.reset();
        for (const auto &net : nets_)
            net->exportStats(out.metrics, net->params().name);
    }
}

RunResult
System::run()
{
    while (!finished() && !cancelled_ && cycle_ < cfg_.maxCycles)
        step();
    RunResult out;
    out.completed = finished();
    collect(out);
    if (cancelled_)
        eqx_warn("system run cancelled at cycle ", cycle_, " (",
                 schemeName(cfg_.scheme), ")");
    else if (!out.completed)
        eqx_warn("system run hit maxCycles=", cfg_.maxCycles,
                 " before draining (", schemeName(cfg_.scheme), ")");
    return out;
}

} // namespace eqx
