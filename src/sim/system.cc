#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runner/stream_seed.hh"
#include "schemes/scheme_registry.hh"
#include "traffic/traffic_registry.hh"

namespace eqx {

namespace {

const SchemeModel &
resolveModel(const SystemConfig &cfg)
{
    if (!cfg.schemeKey.empty())
        return SchemeRegistry::instance().byName(cfg.schemeKey);
    return SchemeRegistry::instance().byEnum(cfg.scheme);
}

} // namespace

System::System(const SystemConfig &config, const WorkloadProfile &profile)
    : cfg_(config), model_(&resolveModel(cfg_))
{
    eqx_assert(cfg_.numCbs >= 1, "need at least one cache bank");
    buildPlacement();
    buildNetworks();
    buildEndpoints(profile);
}

System::~System() = default;

void
System::buildPlacement()
{
    designUsed_ = model_->placeCbs(cfg_, ownedDesign_, cbCoords_);
    // The CB-node table every later build step (and the model) shares.
    cbNodes_.clear();
    for (const auto &c : cbCoords_)
        cbNodes_.push_back(static_cast<NodeId>(c.y * cfg_.width + c.x));
}

void
System::buildNetworks()
{
    SchemeBuild build{cfg_, cbCoords_, cbNodes_, designUsed_};
    for (auto &spec : model_->networkSpecs(build))
        nets_.push_back(std::make_unique<Network>(spec));

    if (cfg_.fault.enabled()) {
        std::uint64_t base = cfg_.fault.seed ? cfg_.fault.seed
                                             : cfg_.seed;
        for (auto &net : nets_)
            net->armFaults(cfg_.fault, net->params().name,
                           deriveStreamSeed(base, "fault",
                                            net->params().name));
    }
}

void
System::buildEndpoints(const WorkloadProfile &profile)
{
    int num_nodes = cfg_.width * cfg_.height;
    std::vector<bool> is_cb(static_cast<std::size_t>(num_nodes), false);
    amap_.lineBytes = 64;
    amap_.cbNodes = cbNodes_;
    for (NodeId n : cbNodes_)
        is_cb[static_cast<std::size_t>(n)] = true;

    // Tile-indexed sink table (used by overlay exit sinks too).
    tileSinks_.assign(static_cast<std::size_t>(num_nodes), nullptr);

    SchemeBuild build{cfg_, cbCoords_, cbNodes_, designUsed_};
    auto make_injector = [&](NodeId node, bool for_reply)
        -> PacketInjector * {
        injectors_.push_back(
            model_->makeInjector(build, nets_, node, for_reply));
        return injectors_.back().get();
    };

    // Traffic model resolution (DESIGN.md §16): empty means the legacy
    // closed-loop synthetic path, byte-identical to the pre-registry
    // wiring.
    int num_cbs = static_cast<int>(cbNodes_.size());
    const TrafficModel &tm = TrafficRegistry::instance().byName(
        cfg_.traffic.model.empty() ? "synthetic" : cfg_.traffic.model);
    TrafficBuild tb{cfg_.traffic, profile, cfg_.seed,
                    num_nodes - num_cbs, num_cbs};
    traffic_ = tm.build(tb);

    // Trace capture/replay composes with closed-loop models only: the
    // wire format records PE op streams, which storms do not have.
    TraceSpec trace;
    if (!cfg_.traffic.trace.empty()) {
        trace = parseTraceSpec(cfg_.traffic.trace);
        if (traffic_->openLoop())
            eqx_fatal("trace= requires a closed-loop traffic model, "
                      "not '", tm.name(), "'");
    }
    if (!trace.replayPath.empty()) {
        replay_ = std::make_unique<TraceData>();
        std::string err;
        if (!readTraceFile(trace.replayPath, *replay_, err))
            eqx_fatal("trace replay: ", err);
        if (static_cast<int>(replay_->pes.size()) != tb.numPes)
            eqx_fatal("trace replay: '", trace.replayPath, "' holds ",
                      replay_->pes.size(), " PE streams but this system "
                      "has ", tb.numPes, " PEs");
    }
    if (!trace.capturePath.empty()) {
        capturePath_ = trace.capturePath;
        capture_ = std::make_unique<TraceCapture>(
            tb.numPes, replay_ ? replay_->workload : profile.name);
    }

    // Endpoints.
    int pe_index = 0;
    bool open_loop = traffic_->openLoop();
    for (NodeId n = 0; n < num_nodes; ++n) {
        if (is_cb[static_cast<std::size_t>(n)]) {
            auto *inj = make_injector(n, /*for_reply=*/true);
            cbs_.push_back(std::make_unique<CacheBank>(n, cfg_.cb, inj,
                                                       &cfg_.sizes));
            if (traffic_->wantsCoherence())
                cbs_.back()->enableCoherence(
                    {cfg_.traffic.cohRegionLines});
            tileSinks_[static_cast<std::size_t>(n)] = cbs_.back().get();
        } else if (open_loop) {
            auto *inj = make_injector(n, /*for_reply=*/false);
            storms_.push_back(traffic_->makeEndpoint(
                pe_index, n, inj, &amap_, &cfg_.sizes));
            tileSinks_[static_cast<std::size_t>(n)] = storms_.back().get();
            ++pe_index;
        } else {
            auto *inj = make_injector(n, /*for_reply=*/false);
            std::unique_ptr<TrafficSource> src =
                replay_
                    ? std::make_unique<ReplaySource>(
                          &replay_->pes[static_cast<std::size_t>(pe_index)])
                    : traffic_->makeSource(pe_index);
            if (capture_)
                src = std::make_unique<CaptureSource>(
                    std::move(src), capture_.get(), pe_index);
            pes_.push_back(std::make_unique<ProcessingElement>(
                n, cfg_.pe, std::move(src), &amap_, inj, &cfg_.sizes));
            tileSinks_[static_cast<std::size_t>(n)] = pes_.back().get();
            ++pe_index;
        }
    }

    model_->wireSinks(build, nets_, tileSinks_, overlaySinks_);
}

void
System::step()
{
    // Cooperative cancellation: one relaxed load per core cycle is
    // noise next to ticking every router, and lets the JobPool
    // watchdog stop a runaway job at a cycle boundary.
    if (cfg_.cancel && cfg_.cancel->cancelled())
        cancelled_ = true;
    ++cycle_;
    for (auto &net : nets_)
        net->coreTick(cycle_);
    for (auto &cb : cbs_)
        cb->tick(cycle_);
    for (auto &pe : pes_)
        pe->tick(cycle_);
    for (auto &s : storms_)
        s->tick(cycle_);
    // Warmup/measurement boundary: discard the cold-start transient.
    if (cfg_.warmupCycles > 0 && cycle_ == cfg_.warmupCycles)
        resetStats();
}

Cycle
System::maybeSkip()
{
    if (!cfg_.timeSkip || cycle_ + 1 >= cfg_.maxCycles)
        return 0;
    // Exhaustive-tick and fault-armed networks tick unconditionally
    // (oracle loop / fault timers), so the whole system must step.
    for (const auto &net : nets_)
        if (net->params().exhaustiveTick || net->faultArmed())
            return 0;

    // One wheel epoch per consultation: every subsystem posts its
    // next due cycle. Components likeliest to have immediate work go
    // first so a loaded system bails out after one query.
    wheel_.beginEpoch(cycle_);
    for (const auto &pe : pes_) {
        Cycle due = pe->nextDueCycle(cycle_);
        if (due == cycle_ + 1)
            return 0;
        wheel_.post(due);
    }
    for (const auto &s : storms_) {
        Cycle due = s->nextDueCycle(cycle_);
        if (due == cycle_ + 1)
            return 0;
        wheel_.post(due);
    }
    for (const auto &cb : cbs_) {
        Cycle due = cb->nextDueCycle(cycle_);
        if (due == cycle_ + 1)
            return 0;
        wheel_.post(due);
    }
    for (const auto &net : nets_) {
        Cycle due = net->nextDueCycle(cycle_);
        if (due == cycle_ + 1)
            return 0;
        wheel_.post(due);
    }

    Cycle next = wheel_.nextDue();
    if (next == kNeverCycle || next <= cycle_ + 1)
        return 0; // drained (run() exits) or due immediately
    // Land one cycle short so the due cycle itself runs a full
    // step(), clamped so the warmup-reset and maxCycles boundaries
    // are still crossed by explicit steps.
    Cycle target = next - 1;
    if (cfg_.warmupCycles > cycle_)
        target = std::min(target, cfg_.warmupCycles - 1);
    target = std::min(target, cfg_.maxCycles - 1);
    if (target <= cycle_)
        return 0;
    for (auto &net : nets_)
        net->skipTo(target);
    Cycle skipped = target - cycle_;
    cycle_ = target;
    cyclesSkipped_ += skipped;
    return skipped;
}

void
System::resetStats()
{
    for (auto &net : nets_)
        net->resetStats();
}

bool
System::finished() const
{
    for (const auto &pe : pes_)
        if (!pe->done())
            return false;
    for (const auto &s : storms_)
        if (!s->done())
            return false;
    for (const auto &cb : cbs_)
        if (!cb->drained())
            return false;
    for (const auto &net : nets_)
        if (!net->drained())
            return false;
    return true;
}

double
System::areaMm2() const
{
    double area = 0;
    for (const auto &net : nets_)
        area += power_.networkAreaMm2(*net);
    return area;
}

void
System::collect(RunResult &out) const
{
    out.cycles = cycle_;
    out.execNs = power_.cyclesToNs(cycle_);
    out.totalInsts = 0;
    for (const auto &pe : pes_)
        out.totalInsts += pe->instsIssued();
    out.ipc = cycle_ ? static_cast<double>(out.totalInsts) / cycle_ : 0;

    out.energy = EnergyBreakdown{};
    for (const auto &net : nets_) {
        EnergyBreakdown e = power_.networkEnergyPj(*net, cycle_);
        out.energy.buffer += e.buffer;
        out.energy.crossbar += e.crossbar;
        out.energy.allocators += e.allocators;
        out.energy.links += e.links;
        out.energy.interposerLinks += e.interposerLinks;
        out.energy.leakage += e.leakage;
    }
    out.energyPj = out.energy.total();
    out.edp = PowerModel::edp(out.energyPj, out.execNs);
    out.areaMm2 = areaMm2();

    // Latency, converted to ns per network clock and packet-weighted.
    double freq = power_.params().freqGhz;
    double rq = 0, rn = 0, pq = 0, pn = 0;
    std::uint64_t rpk = 0, ppk = 0;
    for (const auto &net : nets_) {
        double tick_ns = 1.0 / (freq * net->params().clockRatio());
        const LatencyStats &ls = net->latency();
        rq += ls.queueLat[0].sum() * tick_ns;
        rn += ls.netLat[0].sum() * tick_ns;
        pq += ls.queueLat[1].sum() * tick_ns;
        pn += ls.netLat[1].sum() * tick_ns;
        rpk += ls.packets[0];
        ppk += ls.packets[1];
        out.requestBits += net->activity().requestBits;
        out.replyBits += net->activity().replyBits;
    }
    out.reqPackets = rpk;
    out.repPackets = ppk;
    out.reqQueueNs = rpk ? rq / rpk : 0;
    out.reqNetNs = rpk ? rn / rpk : 0;
    out.repQueueNs = ppk ? pq / ppk : 0;
    out.repNetNs = ppk ? pn / ppk : 0;

    // Total-latency percentiles: merge the per-network tick histograms
    // per class. Every network carrying a given class runs at the same
    // clock ratio in all seven schemes (DA2Mesh subnets are uniformly
    // 2.5x), so one tick->ns factor per class is exact.
    for (int c = 0; c < 2; ++c) {
        Histogram merged(LatencyStats::kHistBucketTicks,
                         LatencyStats::kHistBuckets);
        double tick_ns = 0;
        for (const auto &net : nets_) {
            if (net->latency().packets[c] == 0)
                continue;
            merged.merge(net->latency().totalHist[c]);
            if (tick_ns == 0)
                tick_ns = 1.0 / (freq * net->params().clockRatio());
        }
        double p50 = merged.percentile(0.50) * tick_ns;
        double p95 = merged.percentile(0.95) * tick_ns;
        double p99 = merged.percentile(0.99) * tick_ns;
        if (c == 0) {
            out.reqP50Ns = p50;
            out.reqP95Ns = p95;
            out.reqP99Ns = p99;
        } else {
            out.repP50Ns = p50;
            out.repP95Ns = p95;
            out.repP99Ns = p99;
        }
    }

    // Scheme-specific result fields (EquiNox's max-EIR load, say).
    SchemeBuild build{cfg_, cbCoords_, cbNodes_, designUsed_};
    model_->collectSchemeStats(build, nets_, out);

    for (const auto &net : nets_) {
        if (!net->faultArmed())
            continue;
        out.faultArmed = true;
        const FaultStats &fs = net->faultPlane()->stats();
        out.faultSeqPackets += fs.seqPackets;
        out.faultDelivered += fs.delivered;
        out.faultDuplicates += fs.duplicates;
        out.faultRetx += fs.retransmissions;
        out.faultLost += fs.lost;
        out.faultWormsDropped += fs.wormsDropped;
        out.faultFlitsDropped += fs.flitsDropped;
        out.faultCreditsReconciled += fs.creditsReconciled;
        out.faultMaskedPorts += net->maskedInjBuffers();
    }
    out.degraded = out.faultMaskedPorts > 0;

    if (!storms_.empty()) {
        out.stormArmed = true;
        for (const auto &s : storms_) {
            out.stormOffered += s->offered();
            out.stormInjected += s->injected();
            out.stormDelivered += s->delivered();
            out.stormDropped += s->dropped();
        }
    }
    if (traffic_ && traffic_->wantsCoherence()) {
        out.cohArmed = true;
        for (const auto &cb : cbs_) {
            out.cohInvalidations += cb->invalidationsSent();
            out.cohInvAcks += cb->invAcksReceived();
        }
    }

    if (cfg_.collectMetrics) {
        out.metrics.reset();
        for (const auto &net : nets_)
            net->exportStats(out.metrics, net->params().name);
    }
}

RunResult
System::run()
{
    while (!finished() && !cancelled_ && cycle_ < cfg_.maxCycles) {
        step();
        maybeSkip();
    }
    RunResult out;
    out.completed = finished();
    collect(out);
    // Trace capture finalization: the file is a pure function of the
    // op streams, so it is written whole at run end.
    if (capture_) {
        std::string err;
        if (!capture_->writeFile(capturePath_, err))
            eqx_fatal("trace capture: ", err);
    }
    if (cancelled_)
        eqx_warn("system run cancelled at cycle ", cycle_, " (",
                 model_->name(), ")");
    else if (!out.completed)
        eqx_warn("system run hit maxCycles=", cfg_.maxCycles,
                 " before draining (", model_->name(), ")");
    return out;
}

} // namespace eqx
